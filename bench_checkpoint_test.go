// Durability benchmarks (ROADMAP item 1): checkpoint latency as a
// function of how many sources are dirty — the incremental-checkpoint
// property means cost should track the dirty count, not the corpus —
// and recovery time as a function of corpus size, for both a fully
// checkpointed directory (segment loads) and a pure WAL tail (replay).
//
// Run with:
//
//	go test -bench 'Checkpoint|Recovery' -benchtime 1x .
//
// Set BENCH_JSON=1 to (re)generate BENCH_checkpoint.json, the tracked
// perf record (TestWriteCheckpointBenchJSON).
package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/store"
)

func durableBenchOpts() core.Options {
	return core.Options{OntologySources: []string{"go"}}
}

// durableBenchSystem builds a durable system over the full synthetic
// corpus in dir.
func durableBenchSystem(b *testing.B, dir string, proteins int) (*core.System, *store.Dir) {
	b.Helper()
	d, err := store.OpenDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	sys := core.New(durableBenchOpts())
	sys.AttachDurable(d)
	corpus := datagen.Generate(datagen.Config{Seed: 99, Proteins: proteins})
	for _, src := range corpus.Sources {
		if _, err := sys.AddSource(src); err != nil {
			b.Fatalf("integrating %s: %v", src.Name, err)
		}
	}
	return sys, d
}

func benchCheckpoint(b *testing.B, sys *core.System) {
	b.Helper()
	cp, err := sys.BeginCheckpoint()
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.WriteCheckpoint(cp); err != nil {
		b.Fatal(err)
	}
}

// dirtyUpdates builds one single-row, value-preserving UPDATE per source
// — the cheapest journaled mutation that marks a source dirty.
func dirtyUpdates(b *testing.B, sys *core.System, n int) []string {
	b.Helper()
	wh := sys.WarehouseSnapshot()
	var stmts []string
	for _, m := range sys.Repo.Sources() {
		if len(stmts) == n {
			break
		}
		table := strings.ToLower(m.Name) + "_" + strings.ToLower(m.Structure.Primary)
		col := strings.ToLower(m.Structure.PrimaryAccession)
		r := wh.Relation(table)
		if r == nil || col == "" || len(r.Tuples) == 0 {
			continue
		}
		v := r.Tuples[0][r.Schema.Index(col)].AsString()
		stmts = append(stmts, fmt.Sprintf("UPDATE %s SET %s = '%s' WHERE %s = '%s'", table, col, v, col, v))
	}
	if len(stmts) != n {
		b.Fatalf("only %d of %d sources have a usable primary relation", len(stmts), n)
	}
	return stmts
}

// checkpointDirtyBench measures one checkpoint cycle with exactly
// `dirty` of the 6 corpus sources dirtied per iteration.
func checkpointDirtyBench(dirty, proteins int) func(b *testing.B) {
	return func(b *testing.B) {
		sys, d := durableBenchSystem(b, b.TempDir(), proteins)
		defer d.Close()
		benchCheckpoint(b, sys) // fold the integration WAL; all clean now
		stmts := dirtyUpdates(b, sys, dirty)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			for _, sql := range stmts {
				if _, err := sys.Exec(sql); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			benchCheckpoint(b, sys)
		}
	}
}

// recoveryBench measures core.Recover of a 6-source corpus directory.
// When checkpointed, recovery loads segments; otherwise it replays the
// integration WAL through the full pipeline-restore path.
func recoveryBench(proteins int, checkpointed bool) func(b *testing.B) {
	return func(b *testing.B) {
		dir := b.TempDir()
		sys, d := durableBenchSystem(b, dir, proteins)
		if checkpointed {
			benchCheckpoint(b, sys)
		}
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, err := store.OpenDir(dir)
			if err != nil {
				b.Fatal(err)
			}
			rsys, _, err := core.Recover(durableBenchOpts(), d)
			if err != nil {
				b.Fatal(err)
			}
			if len(rsys.Sources()) != 6 {
				b.Fatal("recovery incomplete")
			}
			d.Close()
		}
	}
}

func BenchmarkCheckpointDirtySources(b *testing.B) {
	for _, dirty := range []int{1, 3, 6} {
		b.Run(fmt.Sprintf("dirty=%d", dirty), checkpointDirtyBench(dirty, 24))
	}
}

func BenchmarkRecovery(b *testing.B) {
	for _, proteins := range []int{8, 24, 48} {
		b.Run(fmt.Sprintf("proteins=%d/checkpointed", proteins), recoveryBench(proteins, true))
		b.Run(fmt.Sprintf("proteins=%d/wal-replay", proteins), recoveryBench(proteins, false))
	}
}

// TestWriteCheckpointBenchJSON regenerates BENCH_checkpoint.json, the
// tracked durability perf record (set BENCH_JSON=1; CI runs it).
func TestWriteCheckpointBenchJSON(t *testing.T) {
	if os.Getenv("BENCH_JSON") == "" {
		t.Skip("set BENCH_JSON=1 to regenerate BENCH_checkpoint.json")
	}
	type entry struct {
		Name         string  `json:"name"`
		DirtySources int     `json:"dirty_sources,omitempty"`
		Proteins     int     `json:"proteins"`
		Mode         string  `json:"mode,omitempty"`
		NsPerOp      int64   `json:"ns_per_op"`
		MsPerOp      float64 `json:"ms_per_op"`
	}
	out := struct {
		Benchmark string  `json:"benchmark"`
		Go        string  `json:"go"`
		Sources   int     `json:"corpus_sources"`
		Entries   []entry `json:"entries"`
	}{Benchmark: "checkpoint", Go: runtime.Version(), Sources: 6}

	add := func(e entry, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		e.NsPerOp = r.NsPerOp()
		e.MsPerOp = float64(r.NsPerOp()) / 1e6
		out.Entries = append(out.Entries, e)
		t.Logf("%s: %v", e.Name, r)
	}
	for _, dirty := range []int{1, 3, 6} {
		add(entry{Name: fmt.Sprintf("checkpoint/dirty=%d", dirty), DirtySources: dirty, Proteins: 24},
			checkpointDirtyBench(dirty, 24))
	}
	for _, proteins := range []int{8, 24, 48} {
		add(entry{Name: fmt.Sprintf("recovery/proteins=%d/checkpointed", proteins), Proteins: proteins, Mode: "checkpointed"},
			recoveryBench(proteins, true))
		add(entry{Name: fmt.Sprintf("recovery/proteins=%d/wal-replay", proteins), Proteins: proteins, Mode: "wal-replay"},
			recoveryBench(proteins, false))
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_checkpoint.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
