// Query-engine benchmarks (ROADMAP: cost-based optimizer + morsel
// parallelism): morsel-parallel scans and joins against their serial
// plans, and the greedy join reorderer against the parse-order plan of
// PR 5 over the 200-protein corpus. Run with:
//
//	go test -bench 'ParallelScan|ParallelJoin|JoinReorder' -benchtime 1x .
//
// Set BENCH_JSON=1 to (re)generate BENCH_query.json, the tracked perf
// record (TestWriteQueryBenchJSON).
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/rel"
	"repro/internal/sqlx"
)

// parallelQueryDB caches a fact/dimension pair big enough that eligible
// scans split into many morsels (the warehouse relations are all
// smaller than one morsel).
var parallelQueryDB *rel.Database

const parallelFactRows = 16*1024 + 17

func bigQueryDB(b *testing.B) *rel.Database {
	b.Helper()
	if parallelQueryDB == nil {
		db := rel.NewDatabase("bench")
		intCol := func(name string) rel.Column { return rel.Column{Name: name, Kind: rel.KindInt} }
		fact := db.Create("fact", rel.NewSchema(intCol("id"), intCol("grp"), intCol("dim_id"),
			rel.Column{Name: "note", Kind: rel.KindString}))
		dim := db.Create("dim", rel.NewSchema(intCol("id"),
			rel.Column{Name: "name", Kind: rel.KindString}))
		for i := 0; i < 64; i++ {
			dim.Append(rel.Tuple{rel.Int(int64(i)), rel.Str(fmt.Sprintf("dim %d", i))})
		}
		for i := 0; i < parallelFactRows; i++ {
			fact.Append(rel.Tuple{rel.Int(int64(i)), rel.Int(int64(i % 7)),
				rel.Int(int64(i % 64)), rel.Str(fmt.Sprintf("note %d", i%13))})
		}
		parallelQueryDB = db
	}
	return parallelQueryDB
}

// parallelWorkerCounts: serial, plus the host's parallel degree (at
// least 2 so the exchange machinery is exercised even on one CPU).
func parallelWorkerCounts() []int {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	return []int{1, n}
}

// benchParallelQuery opens and drains one plan per iteration at the
// given parallelism and checks the row count stays exact.
func benchParallelQuery(b *testing.B, db *rel.Database, q string, workers, wantRows int) {
	b.Helper()
	ctx := context.Background()
	plan, err := sqlx.Prepare(db, q)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := plan.OpenParallel(ctx, db, workers)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for {
			_, err := cur.Next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			rows++
		}
		cur.Close()
		if rows != wantRows {
			b.Fatalf("got %d rows, want %d", rows, wantRows)
		}
	}
}

func countFact(pred func(i int) bool) int {
	n := 0
	for i := 0; i < parallelFactRows; i++ {
		if pred(i) {
			n++
		}
	}
	return n
}

const (
	parallelScanQuery = `SELECT id, note FROM fact WHERE grp = 3`
	parallelJoinQuery = `SELECT f.id, d.name FROM fact f JOIN dim d ON f.dim_id = d.id WHERE d.id < 32`
	distinctQuery     = `SELECT DISTINCT grp, dim_id FROM fact`
	groupByQuery      = `SELECT grp, COUNT(*), SUM(id) FROM fact GROUP BY grp`
)

// BenchmarkParallelScan: a filtered scan over a 16-morsel fact table,
// serial vs morsel-parallel. Rows come back bit-identical in both modes
// (TestParallelMatchesSerial pins that); here only wall time differs.
func BenchmarkParallelScan(b *testing.B) {
	db := bigQueryDB(b)
	want := countFact(func(i int) bool { return i%7 == 3 })
	for _, w := range parallelWorkerCounts() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			benchParallelQuery(b, db, parallelScanQuery, w, want)
		})
	}
}

// BenchmarkParallelJoin: a hash join probing the shared build side from
// every morsel worker, serial vs morsel-parallel.
func BenchmarkParallelJoin(b *testing.B) {
	db := bigQueryDB(b)
	want := countFact(func(i int) bool { return i%64 < 32 })
	for _, w := range parallelWorkerCounts() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			benchParallelQuery(b, db, parallelJoinQuery, w, want)
		})
	}
}

// BenchmarkDistinct: multi-column DISTINCT over the whole fact table —
// the row-deduplication hash path (448 distinct (grp, dim_id) pairs out
// of 16K+ rows), where the zero-allocation tuple set shows up directly
// in allocs/op.
func BenchmarkDistinct(b *testing.B) {
	db := bigQueryDB(b)
	benchParallelQuery(b, db, distinctQuery, 1, 7*64)
}

// BenchmarkGroupBy: hash aggregation over the whole fact table (7
// groups), exercising the composite-key group table.
func BenchmarkGroupBy(b *testing.B) {
	db := bigQueryDB(b)
	benchParallelQuery(b, db, groupByQuery, 1, 7)
}

// joinReorderQuery names the filtered table in the middle of the chain,
// so the parse-order plan (PR 5 behaviour) scans all 400 dbref rows
// first while the reordered plan starts from the one protein the
// accession filter selects.
const joinReorderQuery = `
	SELECT d.ref_value, s.pdb_code
	FROM swissprot_dbref d
	JOIN swissprot_protein p ON d.protein_id = p.protein_id
	JOIN pdb_structure s ON s.structure_id = p.protein_id
	WHERE p.accession = 'P10042'`

// BenchmarkJoinReorder: the 3-way join over the 200-protein corpus with
// the cost-based reorderer off (parse order) and on. benchCursorQuery
// reports scanned-tuples/op, where the plan change shows up even when
// timings jitter.
func BenchmarkJoinReorder(b *testing.B) {
	indexed, _ := indexedAndScanWarehouses(b)
	defer func() { sqlx.ReorderJoins = true }()
	b.Run("parse-order", func(b *testing.B) {
		sqlx.ReorderJoins = false
		benchCursorQuery(b, indexed, joinReorderQuery, 2)
	})
	b.Run("reordered", func(b *testing.B) {
		sqlx.ReorderJoins = true
		benchCursorQuery(b, indexed, joinReorderQuery, 2)
	})
}

// TestWriteQueryBenchJSON regenerates BENCH_query.json, the tracked
// query-engine perf record (set BENCH_JSON=1; CI runs it).
func TestWriteQueryBenchJSON(t *testing.T) {
	if os.Getenv("BENCH_JSON") == "" {
		t.Skip("set BENCH_JSON=1 to regenerate BENCH_query.json")
	}
	type entry struct {
		Name        string  `json:"name"`
		Workers     int     `json:"workers,omitempty"`
		Mode        string  `json:"mode,omitempty"`
		NsPerOp     int64   `json:"ns_per_op"`
		MsPerOp     float64 `json:"ms_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
	}
	out := struct {
		Benchmark string  `json:"benchmark"`
		Go        string  `json:"go"`
		FactRows  int     `json:"fact_rows"`
		Proteins  int     `json:"corpus_proteins"`
		Entries   []entry `json:"entries"`
	}{Benchmark: "query", Go: runtime.Version(), FactRows: parallelFactRows, Proteins: 200}

	add := func(e entry, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		e.NsPerOp = r.NsPerOp()
		e.MsPerOp = float64(r.NsPerOp()) / 1e6
		e.AllocsPerOp = r.AllocsPerOp()
		e.BytesPerOp = r.AllocedBytesPerOp()
		out.Entries = append(out.Entries, e)
		t.Logf("%s: %v %v", e.Name, r, r.MemString())
	}

	var db *rel.Database
	testing.Benchmark(func(b *testing.B) { db = bigQueryDB(b) })
	scanWant := countFact(func(i int) bool { return i%7 == 3 })
	joinWant := countFact(func(i int) bool { return i%64 < 32 })
	for _, w := range parallelWorkerCounts() {
		add(entry{Name: fmt.Sprintf("parallel-scan/workers-%d", w), Workers: w},
			func(b *testing.B) { benchParallelQuery(b, db, parallelScanQuery, w, scanWant) })
		add(entry{Name: fmt.Sprintf("parallel-join/workers-%d", w), Workers: w},
			func(b *testing.B) { benchParallelQuery(b, db, parallelJoinQuery, w, joinWant) })
	}
	add(entry{Name: "distinct/workers-1", Workers: 1},
		func(b *testing.B) { benchParallelQuery(b, db, distinctQuery, 1, 7*64) })
	add(entry{Name: "group-by/workers-1", Workers: 1},
		func(b *testing.B) { benchParallelQuery(b, db, groupByQuery, 1, 7) })
	var indexed *rel.Database
	testing.Benchmark(func(b *testing.B) { indexed, _ = indexedAndScanWarehouses(b) })
	defer func() { sqlx.ReorderJoins = true }()
	for _, mode := range []struct {
		name    string
		reorder bool
	}{{"parse-order", false}, {"reordered", true}} {
		sqlx.ReorderJoins = mode.reorder
		add(entry{Name: "join-reorder/" + mode.name, Mode: mode.name},
			func(b *testing.B) { benchCursorQuery(b, indexed, joinReorderQuery, 2) })
	}
	sqlx.ReorderJoins = true

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_query.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
