package repro

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metadata"
)

// buildParity integrates three generated sources with the given worker
// count and returns the system. A fresh corpus is generated per system so
// the two runs share no state.
func buildParity(t *testing.T, workers int) *core.System {
	t.Helper()
	corpus := datagen.Generate(datagen.Config{Seed: 7, Proteins: 30})
	sys := core.New(core.Options{OntologySources: []string{"go"}, Workers: workers})
	for _, name := range []string{"swissprot", "pdb", "pir"} {
		if _, err := sys.AddSource(corpus.Source(name)); err != nil {
			t.Fatalf("workers=%d AddSource(%s): %v", workers, name, err)
		}
	}
	return sys
}

// TestParallelSerialParity is the end-to-end smoke test of the concurrent
// pipeline: integrating the same three sources with Workers=1 and
// Workers=8 must discover the identical link and duplicate sets. Run
// under -race (as CI does) this also exercises every parallel inner loop
// for data races.
func TestParallelSerialParity(t *testing.T) {
	serial := buildParity(t, 1)
	parallel := buildParity(t, 8)

	ss, ps := serial.Repo.Stats(), parallel.Repo.Stats()
	if ss.Links == 0 {
		t.Fatal("serial run discovered no links")
	}
	if ss.Links != ps.Links {
		t.Errorf("total links: serial %d, parallel %d", ss.Links, ps.Links)
	}
	for _, typ := range []string{"xref", "sequence", "text", "ontology", "duplicate"} {
		if ss.LinksByType[typ] != ps.LinksByType[typ] {
			t.Errorf("%s links: serial %d, parallel %d", typ, ss.LinksByType[typ], ps.LinksByType[typ])
		}
	}
	if ss.LinksByType["duplicate"] == 0 {
		t.Error("no duplicates flagged (swissprot/pir overlap expected)")
	}

	// Beyond counts: every link must match, endpoint for endpoint.
	// Confidence is compared with an epsilon: scores are summed in map
	// iteration order (e.g. textmine.Cosine), so the last ulp differs
	// between runs — serial or parallel alike.
	sl, pl := serial.Repo.AllLinks(), parallel.Repo.AllLinks()
	metadata.SortLinks(sl)
	metadata.SortLinks(pl)
	if len(sl) != len(pl) {
		t.Fatalf("link list length: serial %d, parallel %d", len(sl), len(pl))
	}
	for i := range sl {
		a, b := sl[i], pl[i]
		sameEndpoints := a.Type == b.Type && a.From == b.From && a.To == b.To
		if !sameEndpoints || math.Abs(a.Confidence-b.Confidence) > 1e-9 {
			t.Fatalf("link %d differs:\n  serial:   %+v\n  parallel: %+v", i, a, b)
		}
	}
}
