// Streaming-ingestion benchmarks (the ingest subsystem's perf record):
// end-to-end records/sec and allocations per record for the same flat
// file ingested two ways — streamed through IngestSource in bounded
// batches versus parsed whole and integrated with one AddSource. The
// streaming path shares tuple pointers on append instead of deep-cloning
// into the warehouse, so it should win on allocs/record as well as keep
// peak memory bounded by the batch size.
//
// Run with:
//
//	go test -bench Ingest -benchtime 1x .
//
// Set BENCH_JSON=1 to (re)generate BENCH_ingest.json, the tracked perf
// record (TestWriteIngestBenchJSON).
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/aladin"
	"repro/internal/datagen"
	"repro/internal/flatfile"
)

const ingestBenchSeed = 21

// fastaCorpus renders the benchmark flat file once per benchmark.
func fastaCorpus(b *testing.B, records int) string {
	b.Helper()
	var sb strings.Builder
	if err := datagen.FastaText(&sb, records, ingestBenchSeed); err != nil {
		b.Fatal(err)
	}
	return sb.String()
}

// streamingIngestBench measures IngestSource over a fresh in-memory
// database per iteration: parse, batch, link/dup analysis and commit all
// inside the timer — the full cost of making the file queryable.
func streamingIngestBench(records, batch int) func(b *testing.B) {
	return func(b *testing.B) {
		input := fastaCorpus(b, records)
		ctx := context.Background()
		b.SetBytes(int64(len(input)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			db, err := aladin.Open()
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			rep, err := db.IngestSource(ctx, "seqs", "fasta", strings.NewReader(input),
				aladin.WithBatchRecords(batch))
			if err != nil || rep.Records != records {
				b.Fatalf("ingest: %v (%+v)", err, rep)
			}
			b.StopTimer()
			db.Close()
			b.StartTimer()
		}
	}
}

// monolithicIngestBench is the whole-file control: flatfile.Parse
// collects every record into one database, AddSource integrates it in a
// single pipeline run.
func monolithicIngestBench(records int) func(b *testing.B) {
	return func(b *testing.B) {
		input := fastaCorpus(b, records)
		ctx := context.Background()
		b.SetBytes(int64(len(input)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			db, err := aladin.Open()
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			parsed, err := flatfile.Parse("fasta", strings.NewReader(input), "seqs")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := db.AddSource(ctx, parsed); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			db.Close()
			b.StartTimer()
		}
	}
}

func BenchmarkIngestStreaming(b *testing.B) {
	for _, c := range []struct{ records, batch int }{
		{20_000, 2000},
		{100_000, 5000},
	} {
		b.Run(fmt.Sprintf("records=%d/batch=%d", c.records, c.batch),
			streamingIngestBench(c.records, c.batch))
	}
}

func BenchmarkIngestMonolithic(b *testing.B) {
	for _, records := range []int{20_000, 100_000} {
		b.Run(fmt.Sprintf("records=%d", records), monolithicIngestBench(records))
	}
}

// TestWriteIngestBenchJSON regenerates BENCH_ingest.json, the tracked
// ingestion perf record (set BENCH_JSON=1; CI smoke-runs the
// benchmarks). It also enforces the subsystem's headline property:
// streaming strictly fewer allocations per record than the monolithic
// path at the 100k-record scale.
func TestWriteIngestBenchJSON(t *testing.T) {
	if os.Getenv("BENCH_JSON") == "" {
		t.Skip("set BENCH_JSON=1 to regenerate BENCH_ingest.json")
	}
	type entry struct {
		Name            string  `json:"name"`
		Records         int     `json:"records"`
		Batch           int     `json:"batch,omitempty"`
		NsPerOp         int64   `json:"ns_per_op"`
		RecordsPerSec   float64 `json:"records_per_sec"`
		AllocsPerRecord float64 `json:"allocs_per_record"`
		BytesPerRecord  float64 `json:"bytes_per_record"`
	}
	out := struct {
		Benchmark string  `json:"benchmark"`
		Go        string  `json:"go"`
		Format    string  `json:"format"`
		Entries   []entry `json:"entries"`
	}{Benchmark: "ingest", Go: runtime.Version(), Format: "fasta"}

	add := func(e entry, fn func(b *testing.B)) entry {
		r := testing.Benchmark(fn)
		e.NsPerOp = r.NsPerOp()
		e.RecordsPerSec = float64(e.Records) / (float64(r.NsPerOp()) / 1e9)
		e.AllocsPerRecord = float64(r.AllocsPerOp()) / float64(e.Records)
		e.BytesPerRecord = float64(r.AllocedBytesPerOp()) / float64(e.Records)
		out.Entries = append(out.Entries, e)
		t.Logf("%s: %v, %.0f rec/s, %.1f allocs/rec", e.Name, r, e.RecordsPerSec, e.AllocsPerRecord)
		return e
	}
	var stream100k, mono100k entry
	for _, c := range []struct{ records, batch int }{{20_000, 2000}, {100_000, 5000}} {
		e := add(entry{Name: fmt.Sprintf("streaming/records=%d/batch=%d", c.records, c.batch),
			Records: c.records, Batch: c.batch}, streamingIngestBench(c.records, c.batch))
		if c.records == 100_000 {
			stream100k = e
		}
	}
	for _, records := range []int{20_000, 100_000} {
		e := add(entry{Name: fmt.Sprintf("monolithic/records=%d", records), Records: records},
			monolithicIngestBench(records))
		if records == 100_000 {
			mono100k = e
		}
	}
	if stream100k.AllocsPerRecord >= mono100k.AllocsPerRecord {
		t.Errorf("streaming allocs/record %.1f not below monolithic %.1f",
			stream100k.AllocsPerRecord, mono100k.AllocsPerRecord)
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_ingest.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
