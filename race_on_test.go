//go:build race

package repro

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation inflates allocation counts, so alloc-budget tests
// skip themselves under -race.
const raceEnabled = true
