package metadata

import (
	"fmt"
	"testing"
	"testing/quick"
)

func ref(src, acc string) ObjectRef {
	return ObjectRef{Source: src, Relation: "main", Accession: acc}
}

func TestRegisterAndLookupSource(t *testing.T) {
	r := NewRepo()
	r.RegisterSource(&SourceMeta{Name: "swissprot", TupleCount: 100})
	r.RegisterSource(&SourceMeta{Name: "pdb", TupleCount: 50})
	if got := r.Source("SwissProt"); got == nil || got.TupleCount != 100 {
		t.Errorf("lookup = %+v", got)
	}
	ss := r.Sources()
	if len(ss) != 2 || ss[0].Name != "swissprot" || ss[0].Seq != 1 || ss[1].Seq != 2 {
		t.Errorf("sources = %+v", ss)
	}
}

func TestRegisterReplacePreservesSeq(t *testing.T) {
	r := NewRepo()
	r.RegisterSource(&SourceMeta{Name: "a"})
	r.RegisterSource(&SourceMeta{Name: "b"})
	r.RegisterSource(&SourceMeta{Name: "a", TupleCount: 7})
	if got := r.Source("a"); got.Seq != 1 || got.TupleCount != 7 {
		t.Errorf("replaced = %+v", got)
	}
	if len(r.Sources()) != 2 {
		t.Errorf("sources = %d", len(r.Sources()))
	}
}

func TestAddLinkDeduplicates(t *testing.T) {
	r := NewRepo()
	l := Link{Type: LinkXRef, From: ref("a", "X1"), To: ref("b", "Y1"), Confidence: 0.8}
	if !r.AddLink(l) {
		t.Fatal("first add should store")
	}
	if r.AddLink(l) {
		t.Error("duplicate add should not store")
	}
	// Reversed endpoints are the same undirected link.
	rev := Link{Type: LinkXRef, From: ref("b", "Y1"), To: ref("a", "X1"), Confidence: 0.5}
	if r.AddLink(rev) {
		t.Error("reversed duplicate should not store")
	}
	if n := r.LinkCount(LinkXRef); n != 1 {
		t.Errorf("count = %d", n)
	}
}

func TestAddLinkKeepsHigherConfidence(t *testing.T) {
	r := NewRepo()
	r.AddLink(Link{Type: LinkText, From: ref("a", "1"), To: ref("b", "2"), Confidence: 0.4, Method: "weak"})
	r.AddLink(Link{Type: LinkText, From: ref("a", "1"), To: ref("b", "2"), Confidence: 0.9, Method: "strong"})
	ls := r.Links(LinkText)
	if len(ls) != 1 || ls[0].Confidence != 0.9 || ls[0].Method != "strong" {
		t.Errorf("links = %+v", ls)
	}
}

func TestAddLinkTrackedAndRevertUpgrades(t *testing.T) {
	r := NewRepo()
	orig := Link{Type: LinkText, From: ref("a", "1"), To: ref("b", "2"), Confidence: 0.4, Method: "weak"}
	if stored, _, _ := r.AddLinkTracked(orig); !stored {
		t.Fatal("first add should store")
	}
	stored, upgraded, prev := r.AddLinkTracked(Link{
		Type: LinkText, From: ref("a", "1"), To: ref("b", "2"), Confidence: 0.9, Method: "strong",
	})
	if stored || !upgraded {
		t.Fatalf("stored=%v upgraded=%v", stored, upgraded)
	}
	if prev.Confidence != 0.4 || prev.Method != "weak" {
		t.Errorf("prev = %+v", prev)
	}
	// A lower-confidence re-add neither stores nor upgrades.
	if s, u, _ := r.AddLinkTracked(orig); s || u {
		t.Errorf("low-confidence re-add: stored=%v upgraded=%v", s, u)
	}
	r.RevertUpgrades([]Link{prev})
	ls := r.Links(LinkText)
	if len(ls) != 1 || ls[0].Confidence != 0.4 || ls[0].Method != "weak" {
		t.Errorf("after revert: %+v", ls)
	}
}

func TestDropLinksDoesNotBlockReAdd(t *testing.T) {
	r := NewRepo()
	l := Link{Type: LinkXRef, From: ref("a", "1"), To: ref("b", "2"), Confidence: 0.7}
	r.AddLink(l)
	r.DropLinks([]Link{l})
	if n := r.LinkCount(-1); n != 0 {
		t.Fatalf("count after drop = %d", n)
	}
	// Unlike RemoveLink (user feedback), a dropped pair may come back.
	if !r.AddLink(l) {
		t.Error("re-add after DropLinks should store")
	}
	if n := r.LinkCount(-1); n != 1 {
		t.Errorf("count after re-add = %d", n)
	}
}

func TestDifferentTypesAreSeparateLinks(t *testing.T) {
	r := NewRepo()
	r.AddLink(Link{Type: LinkXRef, From: ref("a", "1"), To: ref("b", "2"), Confidence: 1})
	r.AddLink(Link{Type: LinkDuplicate, From: ref("a", "1"), To: ref("b", "2"), Confidence: 1})
	if n := r.LinkCount(-1); n != 2 {
		t.Errorf("count = %d", n)
	}
}

func TestLinksOf(t *testing.T) {
	r := NewRepo()
	r.AddLink(Link{Type: LinkXRef, From: ref("a", "1"), To: ref("b", "2"), Confidence: 1})
	r.AddLink(Link{Type: LinkXRef, From: ref("a", "1"), To: ref("c", "3"), Confidence: 1})
	r.AddLink(Link{Type: LinkXRef, From: ref("b", "9"), To: ref("c", "3"), Confidence: 1})
	if n := len(r.LinksOf(ref("a", "1"))); n != 2 {
		t.Errorf("a:1 links = %d", n)
	}
	if n := len(r.LinksOf(ref("c", "3"))); n != 2 {
		t.Errorf("c:3 links = %d", n)
	}
	if n := len(r.LinksOf(ref("zz", "nope"))); n != 0 {
		t.Errorf("missing object links = %d", n)
	}
}

func TestRemoveLinkFeedback(t *testing.T) {
	r := NewRepo()
	l := Link{Type: LinkText, From: ref("a", "1"), To: ref("b", "2"), Confidence: 0.5}
	r.AddLink(l)
	if !r.RemoveLink(l) {
		t.Fatal("remove should find the link")
	}
	if n := r.LinkCount(-1); n != 0 {
		t.Errorf("count after removal = %d", n)
	}
	if len(r.LinksOf(ref("a", "1"))) != 0 {
		t.Error("removed link still visible via object index")
	}
	// §6.2: a re-run of discovery must not resurrect it.
	if r.AddLink(l) {
		t.Error("removed link must not be re-addable")
	}
	if r.Stats().RemovedLinks != 1 {
		t.Errorf("stats removed = %d", r.Stats().RemovedLinks)
	}
}

func TestRemoveMissingLink(t *testing.T) {
	r := NewRepo()
	l := Link{Type: LinkText, From: ref("a", "1"), To: ref("b", "2")}
	if r.RemoveLink(l) {
		t.Error("removing a missing link should report false")
	}
	// ...but still block future additions.
	if r.AddLink(l) {
		t.Error("pre-emptively removed link must not be addable")
	}
}

func TestChangeThresholdPolicy(t *testing.T) {
	r := NewRepo()
	r.RegisterSource(&SourceMeta{Name: "src", TupleCount: 100})
	r.RecordChanges("src", 5)
	if r.NeedsReanalysis("src", 0.10) {
		t.Error("5% churn should not trip a 10% threshold")
	}
	r.RecordChanges("src", 6)
	if !r.NeedsReanalysis("src", 0.10) {
		t.Error("11% churn should trip a 10% threshold")
	}
	r.ResetChanges("src")
	if r.NeedsReanalysis("src", 0.10) {
		t.Error("reset should clear the counter")
	}
}

func TestChangeThresholdUnknownSource(t *testing.T) {
	r := NewRepo()
	if r.NeedsReanalysis("nope", 0.1) {
		t.Error("unknown source should not need re-analysis")
	}
	if r.RecordChanges("nope", 3) != 0 {
		t.Error("RecordChanges on unknown source should return 0")
	}
}

func TestStats(t *testing.T) {
	r := NewRepo()
	r.RegisterSource(&SourceMeta{Name: "a"})
	r.AddLink(Link{Type: LinkXRef, From: ref("a", "1"), To: ref("b", "2"), Confidence: 1})
	r.AddLink(Link{Type: LinkDuplicate, From: ref("a", "1"), To: ref("b", "3"), Confidence: 1})
	s := r.Stats()
	if s.Sources != 1 || s.Links != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.LinksByType["xref"] != 1 || s.LinksByType["duplicate"] != 1 {
		t.Errorf("by type = %v", s.LinksByType)
	}
}

func TestSortLinksDeterministic(t *testing.T) {
	ls := []Link{
		{Type: LinkText, From: ref("b", "2"), To: ref("c", "1")},
		{Type: LinkXRef, From: ref("a", "1"), To: ref("b", "2")},
		{Type: LinkXRef, From: ref("a", "0"), To: ref("b", "9")},
	}
	SortLinks(ls)
	if ls[0].Type != LinkXRef || ls[0].From.Accession != "0" {
		t.Errorf("sorted = %+v", ls)
	}
	if ls[2].Type != LinkText {
		t.Errorf("text link should sort last: %+v", ls)
	}
}

// Property: adding n distinct links yields count n, and each is findable
// from both endpoints.
func TestLinkIndexConsistency(t *testing.T) {
	f := func(n uint8) bool {
		r := NewRepo()
		for i := 0; i < int(n); i++ {
			r.AddLink(Link{
				Type: LinkXRef,
				From: ref("a", fmt.Sprintf("x%d", i)),
				To:   ref("b", fmt.Sprintf("y%d", i)),
			})
		}
		if r.LinkCount(-1) != int(n) {
			return false
		}
		for i := 0; i < int(n); i++ {
			if len(r.LinksOf(ref("a", fmt.Sprintf("x%d", i)))) != 1 {
				return false
			}
			if len(r.LinksOf(ref("b", fmt.Sprintf("y%d", i)))) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRepo()
	r.RegisterSource(&SourceMeta{Name: "src", TupleCount: 1000})
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 100; i++ {
				r.AddLink(Link{
					Type: LinkXRef,
					From: ref("a", fmt.Sprintf("g%d-%d", g, i)),
					To:   ref("b", fmt.Sprintf("g%d-%d", g, i)),
				})
				r.LinksOf(ref("a", "g0-0"))
				r.RecordChanges("src", 1)
			}
			done <- true
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if n := r.LinkCount(-1); n != 400 {
		t.Errorf("concurrent adds = %d want 400", n)
	}
}
