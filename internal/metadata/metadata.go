// Package metadata implements ALADIN's central metadata repository (§3):
// "it contains not only known and discovered schemata, but also
// information about primary and secondary relations, statistical metadata,
// and sample data ... a large part of storage space will be consumed by
// the discovered links on the object level."
//
// The repository also records user feedback removing false links (§6.2),
// and per-source change counters backing the re-analysis threshold policy.
package metadata

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/discovery"
	"repro/internal/profile"
)

// LinkType classifies an object-level link.
type LinkType int

const (
	// LinkXRef is an explicit cross-reference discovered in the data
	// (§4.4, "explicit links").
	LinkXRef LinkType = iota
	// LinkSequence is an implicit link from sequence homology.
	LinkSequence
	// LinkText is an implicit link from textual similarity or recognized
	// entity names.
	LinkText
	// LinkOntology is an implicit link from a shared controlled-vocabulary
	// term.
	LinkOntology
	// LinkDuplicate flags two objects as representing the same real-world
	// object (§4.5; duplicates are flagged, never merged).
	LinkDuplicate
)

// String names the link type.
func (t LinkType) String() string {
	switch t {
	case LinkXRef:
		return "xref"
	case LinkSequence:
		return "sequence"
	case LinkText:
		return "text"
	case LinkOntology:
		return "ontology"
	case LinkDuplicate:
		return "duplicate"
	}
	return fmt.Sprintf("LinkType(%d)", int(t))
}

// ObjectRef identifies a primary object: a source, its primary relation,
// and the object's accession value (the only stable public ID, §1).
type ObjectRef struct {
	Source    string
	Relation  string
	Accession string
}

// String renders "source:relation:accession".
func (r ObjectRef) String() string {
	return r.Source + ":" + r.Relation + ":" + r.Accession
}

// Key returns a canonical lower-cased key for maps.
func (r ObjectRef) Key() string {
	return strings.ToLower(r.Source) + "\x00" + strings.ToLower(r.Relation) + "\x00" + r.Accession
}

// Link is one discovered object-level link, stored with the certainty
// value the access engine uses for ranking (§4.6).
type Link struct {
	Type       LinkType
	From, To   ObjectRef
	Confidence float64
	// Method records how the link was found (e.g. "xref:dbref.ref_accession",
	// "seq:identity=0.93"), the lineage shown while browsing.
	Method string
}

// pairKey canonicalizes the undirected endpoint pair plus type.
func (l Link) pairKey() string {
	a, b := l.From.Key(), l.To.Key()
	if b < a {
		a, b = b, a
	}
	return fmt.Sprintf("%d\x00%s\x00%s", l.Type, a, b)
}

// SourceMeta is everything the repository knows about one data source.
type SourceMeta struct {
	Name string
	// Seq is the registration sequence number (import order).
	Seq int
	// Structure is the output of discovery steps 2+3.
	Structure *discovery.Structure
	// Profiles holds the column statistics, reused when later sources are
	// added (§3).
	Profiles map[string]*profile.ColumnProfile
	// TupleCount snapshots the source size at analysis time.
	TupleCount int
	// ChangedTuples counts data changes since the last analysis, for the
	// §6.2 re-analysis threshold.
	ChangedTuples int
}

// Repo is the thread-safe metadata repository.
type Repo struct {
	mu      sync.RWMutex
	sources map[string]*SourceMeta
	order   []string

	links []Link
	// byObject indexes link positions by endpoint object key.
	byObject map[string][]int
	// present dedupes links by pairKey.
	present map[string]int
	// removed records user-feedback deletions (§6.2) so re-runs of
	// discovery do not resurrect known-false links; removedLinks keeps
	// the link values for persistence.
	removed      map[string]bool
	removedLinks []Link
}

// NewRepo creates an empty repository.
func NewRepo() *Repo {
	return &Repo{
		sources:  make(map[string]*SourceMeta),
		byObject: make(map[string][]int),
		present:  make(map[string]int),
		removed:  make(map[string]bool),
	}
}

// RegisterSource stores (or replaces) a source's discovered metadata.
func (r *Repo) RegisterSource(m *SourceMeta) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(m.Name)
	if _, ok := r.sources[key]; !ok {
		r.order = append(r.order, key)
		m.Seq = len(r.order)
	} else {
		m.Seq = r.sources[key].Seq
	}
	r.sources[key] = m
}

// Source returns the metadata of one source, or nil.
func (r *Repo) Source(name string) *SourceMeta {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sources[strings.ToLower(name)]
}

// Sources returns all source metadata in registration order.
func (r *Repo) Sources() []*SourceMeta {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*SourceMeta, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.sources[k])
	}
	return out
}

// AddLink stores a link unless an equivalent link exists or the pair was
// removed by user feedback. It reports whether the link was stored.
func (r *Repo) AddLink(l Link) bool {
	stored, _, _ := r.AddLinkTracked(l)
	return stored
}

// AddLinkTracked stores a link like AddLink, additionally reporting when
// an existing equivalent link was upgraded in place to higher-confidence
// evidence — returning the pre-upgrade value so a failed source addition
// can revert the mutation (see RevertUpgrades).
func (r *Repo) AddLinkTracked(l Link) (stored, upgraded bool, prev Link) {
	r.mu.Lock()
	defer r.mu.Unlock()
	pk := l.pairKey()
	if r.removed[pk] {
		return false, false, Link{}
	}
	if i, ok := r.present[pk]; ok {
		// Keep the higher-confidence evidence.
		if l.Confidence > r.links[i].Confidence {
			prev = r.links[i]
			r.links[i].Confidence = l.Confidence
			r.links[i].Method = l.Method
			return false, true, prev
		}
		return false, false, Link{}
	}
	idx := len(r.links)
	r.links = append(r.links, l)
	r.present[pk] = idx
	r.byObject[l.From.Key()] = append(r.byObject[l.From.Key()], idx)
	r.byObject[l.To.Key()] = append(r.byObject[l.To.Key()], idx)
	return true, false, Link{}
}

// RevertUpgrades restores the pre-upgrade confidence/method of links
// upgraded in place by AddLinkTracked — the unwind path for a failed
// source addition. Reversing the order handles a pair upgraded twice
// within one addition.
func (r *Repo) RevertUpgrades(prevs []Link) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(prevs) - 1; i >= 0; i-- {
		p := prevs[i]
		if j, ok := r.present[p.pairKey()]; ok {
			r.links[j].Confidence = p.Confidence
			r.links[j].Method = p.Method
		}
	}
}

// Removed reports whether the link's pair was deleted by user feedback
// (such links are refused by AddLink and must not seed derived links).
func (r *Repo) Removed(l Link) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.removed[l.pairKey()]
}

// AddLinks stores a batch and returns how many were new.
func (r *Repo) AddLinks(ls []Link) int {
	n := 0
	for _, l := range ls {
		if r.AddLink(l) {
			n++
		}
	}
	return n
}

// RemoveLink deletes a link (user feedback, §6.2) and blocks it from
// being re-added. Reports whether a link was actually present.
func (r *Repo) RemoveLink(l Link) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	pk := l.pairKey()
	if !r.removed[pk] {
		r.removed[pk] = true
		r.removedLinks = append(r.removedLinks, l)
	}
	i, ok := r.present[pk]
	if !ok {
		return false
	}
	delete(r.present, pk)
	// Mark the slot dead; index slices keep positions, readers skip dead.
	r.links[i].Confidence = -1
	return true
}

// DropLinks deletes links without recording user feedback — unlike
// RemoveLink, a dropped pair may be re-added later. It is the unwind path
// for a failed source addition: only the exact links stored during that
// addition are dropped.
func (r *Repo) DropLinks(ls []Link) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, l := range ls {
		pk := l.pairKey()
		if i, ok := r.present[pk]; ok {
			delete(r.present, pk)
			r.links[i].Confidence = -1
		}
	}
}

// LinksOf returns all live links touching the given object.
func (r *Repo) LinksOf(ref ObjectRef) []Link {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Link
	for _, i := range r.byObject[ref.Key()] {
		if r.links[i].Confidence >= 0 {
			out = append(out, r.links[i])
		}
	}
	return out
}

// Links returns all live links, optionally filtered by type (pass -1 for
// all types).
func (r *Repo) Links(t LinkType) []Link {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Link
	for _, l := range r.links {
		if l.Confidence < 0 {
			continue
		}
		if t >= 0 && l.Type != t {
			continue
		}
		out = append(out, l)
	}
	return out
}

// AllLinks returns every live link.
func (r *Repo) AllLinks() []Link { return r.Links(-1) }

// LinkCount returns the number of live links of a type (-1 for all).
func (r *Repo) LinkCount(t LinkType) int { return len(r.Links(t)) }

// RemovedLinks returns the links deleted by user feedback, for
// persistence (restored systems must keep honoring the feedback, §6.2).
func (r *Repo) RemovedLinks() []Link {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Link, len(r.removedLinks))
	copy(out, r.removedLinks)
	return out
}

// RecordChanges adds n changed tuples to a source's change counter and
// returns the new total.
func (r *Repo) RecordChanges(source string, n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.sources[strings.ToLower(source)]
	if m == nil {
		return 0
	}
	m.ChangedTuples += n
	return m.ChangedTuples
}

// NeedsReanalysis applies the §6.2 threshold policy: re-analyze once the
// changed fraction of a source exceeds threshold (e.g. 0.1 = 10%).
func (r *Repo) NeedsReanalysis(source string, threshold float64) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m := r.sources[strings.ToLower(source)]
	if m == nil || m.TupleCount == 0 {
		return false
	}
	return float64(m.ChangedTuples)/float64(m.TupleCount) > threshold
}

// ResetChanges zeroes a source's change counter after re-analysis.
func (r *Repo) ResetChanges(source string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.sources[strings.ToLower(source)]; m != nil {
		m.ChangedTuples = 0
	}
}

// Stats summarizes repository contents.
type Stats struct {
	Sources      int
	Links        int
	LinksByType  map[string]int
	RemovedLinks int
}

// Stats returns a snapshot of repository statistics.
func (r *Repo) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Stats{
		Sources:      len(r.sources),
		LinksByType:  make(map[string]int),
		RemovedLinks: len(r.removed),
	}
	for _, l := range r.links {
		if l.Confidence < 0 {
			continue
		}
		s.Links++
		s.LinksByType[l.Type.String()]++
	}
	return s
}

// SortLinks orders links deterministically (by type, then endpoints) for
// stable reporting.
func SortLinks(ls []Link) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Type != ls[j].Type {
			return ls[i].Type < ls[j].Type
		}
		if ls[i].From.Key() != ls[j].From.Key() {
			return ls[i].From.Key() < ls[j].From.Key()
		}
		return ls[i].To.Key() < ls[j].To.Key()
	})
}
