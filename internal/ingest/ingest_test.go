package ingest

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/flatfile"
	"repro/internal/rel"
)

// fastaInput renders n deterministic FASTA records.
func fastaInput(t testing.TB, n int) string {
	t.Helper()
	var sb strings.Builder
	if err := datagen.FastaText(&sb, n, 7); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// runFasta drains n FASTA records through a Runner with the given batch
// size, collecting every committed batch.
func runFasta(t *testing.T, n, batchRecords int, commit Commit) (*Summary, error) {
	t.Helper()
	sc, err := flatfile.NewScanner("fasta", strings.NewReader(fastaInput(t, n)))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Scanner: sc, Commit: commit, Opts: Options{BatchRecords: batchRecords}}
	return r.Run(context.Background())
}

func TestRunnerBatches(t *testing.T) {
	var sizes []int
	var accs []string
	sum, err := runFasta(t, 25, 10, func(ctx context.Context, batch *rel.Database) (CommitInfo, error) {
		r := batch.Relation("fasta")
		sizes = append(sizes, len(r.Tuples))
		for _, tup := range r.Tuples {
			accs = append(accs, tup[1].AsString())
		}
		return CommitInfo{Seq: uint64(len(sizes)), Links: 2}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{10, 10, 5}; len(sizes) != 3 || sizes[0] != want[0] || sizes[1] != want[1] || sizes[2] != want[2] {
		t.Fatalf("batch sizes = %v, want %v", sizes, want)
	}
	if sum.Records != 25 || sum.Tuples != 25 || sum.Batches != 3 || sum.Links != 6 || sum.LastSeq != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	// Order and completeness: the batches partition the input in order.
	if len(accs) != 25 || accs[0] != "SQ000001" || accs[24] != "SQ000025" {
		t.Fatalf("accessions = %d first=%s last=%s", len(accs), accs[0], accs[len(accs)-1])
	}
}

func TestRunnerProgress(t *testing.T) {
	var progress []Progress
	sc, err := flatfile.NewScanner("fasta", strings.NewReader(fastaInput(t, 12)))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{
		Scanner: sc,
		Commit: func(ctx context.Context, batch *rel.Database) (CommitInfo, error) {
			return CommitInfo{Seq: 42}, nil
		},
		Opts: Options{BatchRecords: 5, Progress: func(p Progress) { progress = append(progress, p) }},
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(progress) != 3 {
		t.Fatalf("progress events = %d, want 3", len(progress))
	}
	last := progress[2]
	if last.Batch != 3 || last.Records != 12 || last.Seq != 42 {
		t.Fatalf("final progress = %+v", last)
	}
}

func TestRunnerCommitErrorStopsRun(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	sum, err := runFasta(t, 30, 10, func(ctx context.Context, batch *rel.Database) (CommitInfo, error) {
		calls++
		if calls == 2 {
			return CommitInfo{}, boom
		}
		return CommitInfo{Seq: uint64(calls)}, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("commit calls = %d, want 2 (run must stop)", calls)
	}
	// The summary describes the committed prefix: one batch of 10.
	if sum.Batches != 1 || sum.LastSeq != 1 {
		t.Fatalf("summary after failure = %+v", sum)
	}
}

func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	committed := 0
	sc, err := flatfile.NewScanner("fasta", strings.NewReader(fastaInput(t, 30)))
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{
		Scanner: sc,
		Commit: func(ctx context.Context, batch *rel.Database) (CommitInfo, error) {
			committed++
			cancel() // cancel after the first commit
			return CommitInfo{}, nil
		},
		Opts: Options{BatchRecords: 10},
	}
	sum, err := r.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if committed != 1 || sum.Batches != 1 {
		t.Fatalf("committed = %d, summary = %+v; an interrupted run ends on a batch boundary", committed, sum)
	}
}

func TestCountingReader(t *testing.T) {
	cr := &CountingReader{R: strings.NewReader("hello world")}
	buf := make([]byte, 5)
	cr.Read(buf)
	if cr.Bytes() != 5 {
		t.Fatalf("bytes = %d, want 5", cr.Bytes())
	}
	io.Copy(io.Discard, cr)
	if cr.Bytes() != 11 {
		t.Fatalf("bytes = %d, want 11", cr.Bytes())
	}
}

func TestTailReaderDeliversThenEOFOnCancel(t *testing.T) {
	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	tr := NewTailReader(ctx, pr, time.Millisecond)
	go func() {
		pw.Write([]byte("data"))
		pw.Close() // underlying EOF: the tail must keep polling, not stop
	}()
	buf := make([]byte, 16)
	n, err := tr.Read(buf)
	if err != nil || string(buf[:n]) != "data" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
	// The source is exhausted but the tail polls on until cancellation.
	done := make(chan struct{})
	var tailErr error
	go func() {
		_, tailErr = tr.Read(buf)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("tail read returned before cancellation")
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("tail read did not return after cancellation")
	}
	if tailErr != io.EOF {
		t.Fatalf("tail err = %v, want io.EOF", tailErr)
	}
}
