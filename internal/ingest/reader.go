package ingest

import (
	"context"
	"io"
	"sync/atomic"
	"time"
)

// CountingReader counts the bytes read through it. Wrap the input
// before constructing the scanner so Progress.Bytes tracks consumption.
// The count is read concurrently by HTTP progress writers, hence atomic.
type CountingReader struct {
	R io.Reader
	N int64
}

// Read implements io.Reader, counting n.
func (c *CountingReader) Read(p []byte) (int, error) {
	n, err := c.R.Read(p)
	atomic.AddInt64(&c.N, int64(n))
	return n, err
}

// Bytes returns the count, safe for concurrent use.
func (c *CountingReader) Bytes() int64 { return atomic.LoadInt64(&c.N) }

// TailReader turns a growing file into a blocking stream: at end of
// data it polls until more bytes arrive, and only reports io.EOF once
// ctx is canceled — the reader behind `aladin live` mode. Note the
// FASTA scanner holds its last record open until the stream ends, so in
// live mode the final record of the file commits at cancellation.
type TailReader struct {
	ctx  context.Context
	r    io.Reader
	poll time.Duration
}

// NewTailReader wraps r (typically an *os.File); poll <= 0 defaults to
// 200ms.
func NewTailReader(ctx context.Context, r io.Reader, poll time.Duration) *TailReader {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	return &TailReader{ctx: ctx, r: r, poll: poll}
}

// Read implements io.Reader with tail-follow semantics.
func (t *TailReader) Read(p []byte) (int, error) {
	for {
		n, err := t.r.Read(p)
		if n > 0 || (err != nil && err != io.EOF) {
			return n, err
		}
		select {
		case <-t.ctx.Done():
			return 0, io.EOF
		case <-time.After(t.poll):
		}
	}
}
