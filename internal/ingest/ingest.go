// Package ingest drives high-throughput streaming ingestion: it drains a
// flatfile.Scanner into bounded batches and hands each batch to a commit
// function. Memory stays bounded by the batch size — one batch of
// records is in flight at any time, and the commit runs synchronously,
// so a slow committer backpressures the parser instead of letting
// batches pile up. A logical record's rows (primary + dependents) always
// land in the same batch: the scanner yields whole records, so ownership
// propagation and duplicate detection per batch see complete objects.
package ingest

import (
	"context"
	"io"
	"time"

	"repro/internal/flatfile"
	"repro/internal/rel"
)

// Progress reports the state after one committed batch.
type Progress struct {
	// Batch is the 1-based ordinal of the batch just committed.
	Batch int
	// Records and Tuples are cumulative counts over the run.
	Records int
	Tuples  int
	// Bytes is the input bytes consumed so far (0 without a counter).
	Bytes int64
	// Seq is the global mutation sequence the batch committed at.
	Seq uint64
}

// CommitInfo is what a Commit reports back: the commit's global sequence
// and its per-stage wall times, aggregated into the run's Summary.
type CommitInfo struct {
	Seq uint64
	// Link/Dup/Index/Commit split the batch pipeline: link discovery,
	// duplicate detection, index+browse+journal preparation, and the
	// write-locked publish.
	Link   time.Duration
	Dup    time.Duration
	Index  time.Duration
	Commit time.Duration
	// Links is the number of new links the batch stored.
	Links int
}

// Commit persists one batch. The batch database holds one relation per
// scanner spec (possibly empty). Returning an error stops the run; the
// records of the failed batch are not retried.
type Commit func(ctx context.Context, batch *rel.Database) (CommitInfo, error)

// Options tunes a Runner.
type Options struct {
	// BatchRecords is the number of logical records per batch
	// (default 1000).
	BatchRecords int
	// Progress, when non-nil, is invoked after every committed batch.
	Progress func(Progress)
	// Counter, when non-nil, supplies Progress.Bytes — wrap the input in
	// a CountingReader before constructing the scanner.
	Counter *CountingReader
	// FlushStall, when > 0, commits a partial batch once no record has
	// arrived for this long — live tail mode, where records should become
	// visible shortly after they are written rather than waiting for a
	// full batch. Zero (the default) flushes only on full batches and at
	// end of input.
	FlushStall time.Duration
}

func (o *Options) fill() {
	if o.BatchRecords <= 0 {
		o.BatchRecords = 1000
	}
}

// Summary aggregates one ingestion run.
type Summary struct {
	Records int
	Tuples  int
	Batches int
	Bytes   int64
	Links   int
	// LastSeq is the global sequence of the final committed batch.
	LastSeq uint64
	// Per-stage wall times summed over the run: Parse is scanner time,
	// Batch is batch assembly (pooled tuple appends), the rest aggregate
	// the committers' CommitInfo.
	Parse  time.Duration
	Batch  time.Duration
	Link   time.Duration
	Dup    time.Duration
	Index  time.Duration
	Commit time.Duration
}

// Runner drains a Scanner into bounded batches and commits each one.
type Runner struct {
	Scanner flatfile.Scanner
	Commit  Commit
	Opts    Options
}

// Run ingests until the scanner is exhausted or a commit fails. The
// final partial batch is committed before returning. Cancellation is
// observed between records; a canceled ctx also fails the next commit,
// so an interrupted run always ends on a batch boundary. The returned
// Summary is valid (describing the committed prefix) even on error.
func (r *Runner) Run(ctx context.Context) (*Summary, error) {
	opts := r.Opts
	opts.fill()
	specs := r.Scanner.Relations()
	sum := &Summary{}
	alloc := &rel.TupleAlloc{}
	defer alloc.Release()

	newBatch := func() (*rel.Database, []*rel.Relation) {
		db := rel.NewDatabase("batch")
		rels := make([]*rel.Relation, len(specs))
		for i, sp := range specs {
			rels[i] = db.Create(sp.Name, rel.TextSchema(sp.Columns...))
		}
		return db, rels
	}
	batch, rels := newBatch()
	n := 0

	flush := func() error {
		if n == 0 {
			return nil
		}
		info, err := r.Commit(ctx, batch)
		if err != nil {
			return err
		}
		sum.Batches++
		sum.LastSeq = info.Seq
		sum.Link += info.Link
		sum.Dup += info.Dup
		sum.Index += info.Index
		sum.Commit += info.Commit
		sum.Links += info.Links
		if opts.Counter != nil {
			sum.Bytes = opts.Counter.Bytes()
		}
		if opts.Progress != nil {
			opts.Progress(Progress{
				Batch:   sum.Batches,
				Records: sum.Records,
				Tuples:  sum.Tuples,
				Bytes:   sum.Bytes,
				Seq:     info.Seq,
			})
		}
		batch, rels = newBatch()
		n = 0
		return nil
	}

	consume := func(rec flatfile.Record) {
		t0 := time.Now()
		for _, row := range rec.Rows {
			rels[row.Relation].AppendPooled(alloc, row.Fields)
		}
		sum.Batch += time.Since(t0)
		sum.Records++
		sum.Tuples += len(rec.Rows)
		n++
	}

	if opts.FlushStall > 0 {
		pending := func() int { return n }
		if err := r.runStalling(ctx, opts, sum, pending, consume, flush); err != nil {
			return sum, err
		}
	} else {
		for {
			if err := ctx.Err(); err != nil {
				return sum, err
			}
			t0 := time.Now()
			rec, err := r.Scanner.Next()
			sum.Parse += time.Since(t0)
			if err == io.EOF {
				break
			}
			if err != nil {
				return sum, err
			}
			consume(rec)
			if n >= opts.BatchRecords {
				if err := flush(); err != nil {
					return sum, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return sum, err
	}
	if opts.Counter != nil {
		sum.Bytes = opts.Counter.Bytes()
	}
	return sum, nil
}

// runStalling is the live-tail record loop: the scanner runs in its own
// goroutine (Next blocks inside the tail reader's poll), records flow
// over an unbuffered channel with an acknowledge handshake preserving
// the scanner's not-concurrent contract, and a partial batch commits
// whenever no record has arrived for FlushStall. Returns at end of
// input with the final partial batch NOT yet flushed (the caller's
// common flush handles it) or with the first error.
func (r *Runner) runStalling(ctx context.Context, opts Options, sum *Summary, pending func() int, consume func(flatfile.Record), flush func() error) error {
	type scanned struct {
		rec   flatfile.Record
		err   error
		parse time.Duration
	}
	recCh := make(chan scanned)
	ack := make(chan struct{})
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			t0 := time.Now()
			rec, err := r.Scanner.Next()
			s := scanned{rec, err, time.Since(t0)}
			select {
			case recCh <- s:
			case <-done:
				return
			}
			if err != nil {
				return
			}
			select {
			case <-ack:
			case <-done:
				return
			}
		}
	}()
	for {
		// Arm the stall timer only while a partial batch is pending.
		var stall <-chan time.Time
		if pending() > 0 {
			stall = time.After(opts.FlushStall)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case s := <-recCh:
			sum.Parse += s.parse
			if s.err == io.EOF {
				return nil
			}
			if s.err != nil {
				return s.err
			}
			consume(s.rec)
			ack <- struct{}{}
			if pending() >= opts.BatchRecords {
				if err := flush(); err != nil {
					return err
				}
			}
		case <-stall:
			if err := flush(); err != nil {
				return err
			}
		}
	}
}
