package ontology

import (
	"testing"
	"testing/quick"

	"repro/internal/rel"
)

// sampleHierarchy builds:
//
//	        root
//	       /    \
//	   binding  activity
//	    /   \       \
//	 dna    rna    catalytic
//	 /
//	promoter
func sampleHierarchy() *Hierarchy {
	h := New()
	h.AddTerm("GO:1", "root")
	h.AddTerm("GO:2", "binding")
	h.AddTerm("GO:3", "activity")
	h.AddTerm("GO:4", "dna binding")
	h.AddTerm("GO:5", "rna binding")
	h.AddTerm("GO:6", "catalytic activity")
	h.AddTerm("GO:7", "promoter binding")
	h.AddIsA("GO:2", "GO:1")
	h.AddIsA("GO:3", "GO:1")
	h.AddIsA("GO:4", "GO:2")
	h.AddIsA("GO:5", "GO:2")
	h.AddIsA("GO:6", "GO:3")
	h.AddIsA("GO:7", "GO:4")
	return h
}

func TestAncestorsDescendants(t *testing.T) {
	h := sampleHierarchy()
	anc := h.Ancestors("GO:7")
	want := []string{"GO:1", "GO:2", "GO:4"}
	if len(anc) != len(want) {
		t.Fatalf("ancestors = %v", anc)
	}
	for i := range want {
		if anc[i] != want[i] {
			t.Errorf("ancestors = %v want %v", anc, want)
		}
	}
	desc := h.Descendants("GO:2")
	if len(desc) != 3 {
		t.Errorf("descendants = %v", desc)
	}
	if len(h.Ancestors("GO:1")) != 0 {
		t.Error("root has ancestors")
	}
}

func TestRootsAndDepth(t *testing.T) {
	h := sampleHierarchy()
	roots := h.Roots()
	if len(roots) != 1 || roots[0] != "GO:1" {
		t.Fatalf("roots = %v", roots)
	}
	cases := map[string]int{"GO:1": 0, "GO:2": 1, "GO:4": 2, "GO:7": 3}
	for acc, want := range cases {
		if got := h.Depth(acc); got != want {
			t.Errorf("Depth(%s) = %d want %d", acc, got, want)
		}
	}
	if h.Depth("GO:999") != -1 {
		t.Error("unknown term depth should be -1")
	}
}

func TestLCA(t *testing.T) {
	h := sampleHierarchy()
	cases := []struct{ a, b, want string }{
		{"GO:4", "GO:5", "GO:2"}, // siblings -> parent
		{"GO:7", "GO:5", "GO:2"}, // nephew/uncle -> binding
		{"GO:4", "GO:6", "GO:1"}, // across branches -> root
		{"GO:7", "GO:4", "GO:4"}, // ancestor relationship -> the ancestor
		{"GO:4", "GO:4", "GO:4"}, // identity
	}
	for _, c := range cases {
		if got := h.LCA(c.a, c.b); got != c.want {
			t.Errorf("LCA(%s,%s) = %q want %q", c.a, c.b, got, c.want)
		}
	}
	if h.LCA("GO:4", "GO:999") != "" {
		t.Error("unknown term LCA should be empty")
	}
}

func TestSimilarity(t *testing.T) {
	h := sampleHierarchy()
	if s := h.Similarity("GO:4", "GO:4"); s != 1 {
		t.Errorf("self similarity = %v", s)
	}
	sib := h.Similarity("GO:4", "GO:5")  // lca depth 1, depths 2+2 -> 0.5
	far := h.Similarity("GO:4", "GO:6")  // lca depth 0 -> 0
	near := h.Similarity("GO:7", "GO:4") // lca GO:4 depth 2, depths 3+2 -> 0.8
	if sib != 0.5 {
		t.Errorf("sibling similarity = %v", sib)
	}
	if far != 0 {
		t.Errorf("cross-branch similarity = %v", far)
	}
	if near != 0.8 {
		t.Errorf("ancestor similarity = %v", near)
	}
	if !(near > sib && sib > far) {
		t.Error("similarity ordering violated")
	}
}

func TestFromRelationsWithSurrogateIDs(t *testing.T) {
	term := rel.NewRelation("term", rel.TextSchema("term_id", "go_acc", "term_name"))
	term.AppendRaw("1", "GO:0001", "root")
	term.AppendRaw("2", "GO:0002", "child a")
	term.AppendRaw("3", "GO:0003", "child b")
	isa := rel.NewRelation("term_isa", rel.TextSchema("isa_id", "term_id", "parent_term_id"))
	isa.AppendRaw("700", "2", "1")
	isa.AppendRaw("701", "3", "1")
	h, err := FromRelations(term, "go_acc", "term_name", isa, "term_id", "parent_term_id", "term_id")
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 3 {
		t.Fatalf("terms = %d", h.Len())
	}
	if anc := h.Ancestors("GO:0002"); len(anc) != 1 || anc[0] != "GO:0001" {
		t.Errorf("ancestors = %v", anc)
	}
	if h.Name("GO:0003") != "child b" {
		t.Errorf("name = %q", h.Name("GO:0003"))
	}
	if s := h.Similarity("GO:0002", "GO:0003"); s != 0 {
		// Both at depth 1, lca root at depth 0 -> 0.
		t.Errorf("sibling-under-root similarity = %v", s)
	}
}

func TestFromRelationsErrors(t *testing.T) {
	term := rel.NewRelation("term", rel.TextSchema("a"))
	if _, err := FromRelations(term, "nope", "", nil, "", "", ""); err == nil {
		t.Error("missing accession column should fail")
	}
	term2 := rel.NewRelation("term", rel.TextSchema("acc"))
	isa := rel.NewRelation("isa", rel.TextSchema("x"))
	if _, err := FromRelations(term2, "acc", "", isa, "child", "parent", ""); err == nil {
		t.Error("missing is_a columns should fail")
	}
}

func TestCycleTermination(t *testing.T) {
	h := New()
	h.AddIsA("A1", "B1")
	h.AddIsA("B1", "A1") // malformed cycle
	// Must terminate and assign depths.
	if d := h.Depth("A1"); d < 0 {
		t.Errorf("depth = %d", d)
	}
	_ = h.Ancestors("A1")
	_ = h.LCA("A1", "B1")
}

func TestSelfLoopIgnored(t *testing.T) {
	h := New()
	h.AddIsA("X1", "X1")
	if len(h.Ancestors("X1")) != 0 {
		t.Error("self loop created ancestry")
	}
}

// Property: similarity is symmetric and within [0,1].
func TestSimilaritySymmetry(t *testing.T) {
	h := sampleHierarchy()
	terms := []string{"GO:1", "GO:2", "GO:3", "GO:4", "GO:5", "GO:6", "GO:7"}
	f := func(i, j uint8) bool {
		a := terms[int(i)%len(terms)]
		b := terms[int(j)%len(terms)]
		s1, s2 := h.Similarity(a, b), h.Similarity(b, a)
		return s1 == s2 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
