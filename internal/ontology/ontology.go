// Package ontology provides term-hierarchy utilities over integrated
// controlled vocabularies. §4.4 notes that ontology values "make
// excellent links ... provided that the ontologies are themselves
// integrated as data sources"; because ontologies are hierarchies
// (Gene Ontology is_a relations), two objects annotated with *different*
// terms are still related when the terms share a close ancestor. This
// package builds the hierarchy from an imported ontology source and
// offers ancestor closures and a depth-based term-similarity measure
// (Wu-Palmer style) for hierarchy-aware link derivation.
package ontology

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rel"
)

// Hierarchy is a DAG of ontology terms keyed by accession.
type Hierarchy struct {
	parents  map[string][]string
	children map[string][]string
	names    map[string]string
	// depth memoizes the minimal distance from a root.
	depth map[string]int
}

// New creates an empty hierarchy.
func New() *Hierarchy {
	return &Hierarchy{
		parents:  make(map[string][]string),
		children: make(map[string][]string),
		names:    make(map[string]string),
	}
}

// AddTerm registers a term accession with a display name.
func (h *Hierarchy) AddTerm(acc, name string) {
	acc = strings.TrimSpace(acc)
	if acc == "" {
		return
	}
	if _, ok := h.parents[acc]; !ok {
		h.parents[acc] = nil
	}
	if name != "" {
		h.names[acc] = name
	}
	h.depth = nil
}

// AddIsA records child is_a parent.
func (h *Hierarchy) AddIsA(child, parent string) {
	child, parent = strings.TrimSpace(child), strings.TrimSpace(parent)
	if child == "" || parent == "" || child == parent {
		return
	}
	h.AddTerm(child, "")
	h.AddTerm(parent, "")
	h.parents[child] = append(h.parents[child], parent)
	h.children[parent] = append(h.children[parent], child)
	h.depth = nil
}

// Len returns the number of known terms.
func (h *Hierarchy) Len() int { return len(h.parents) }

// Name returns a term's display name ("" if unknown).
func (h *Hierarchy) Name(acc string) string { return h.names[acc] }

// Has reports whether the term is known.
func (h *Hierarchy) Has(acc string) bool {
	_, ok := h.parents[acc]
	return ok
}

// FromRelations builds a hierarchy from an integrated ontology source:
// a term relation carrying (accession, name) plus an is_a relation
// carrying (child accession or id, parent accession or id). When the is_a
// relation stores surrogate ids, idColumn/accColumn of the term relation
// translate them.
func FromRelations(term *rel.Relation, accCol, nameCol string,
	isa *rel.Relation, childCol, parentCol string,
	termIDCol string) (*Hierarchy, error) {

	h := New()
	ai := term.Schema.Index(accCol)
	if ai < 0 {
		return nil, fmt.Errorf("ontology: term relation has no column %q", accCol)
	}
	ni := term.Schema.Index(nameCol)
	idToAcc := make(map[string]string)
	var idi int = -1
	if termIDCol != "" {
		idi = term.Schema.Index(termIDCol)
	}
	for _, t := range term.Tuples {
		if t[ai].IsNull() {
			continue
		}
		acc := t[ai].AsString()
		name := ""
		if ni >= 0 && !t[ni].IsNull() {
			name = t[ni].AsString()
		}
		h.AddTerm(acc, name)
		if idi >= 0 && !t[idi].IsNull() {
			idToAcc[t[idi].Key()] = acc
		}
	}
	if isa != nil {
		ci := isa.Schema.Index(childCol)
		pi := isa.Schema.Index(parentCol)
		if ci < 0 || pi < 0 {
			return nil, fmt.Errorf("ontology: is_a relation missing columns %q/%q", childCol, parentCol)
		}
		for _, t := range isa.Tuples {
			if t[ci].IsNull() || t[pi].IsNull() {
				continue
			}
			child, parent := t[ci].AsString(), t[pi].AsString()
			// Translate surrogate ids when a mapping exists.
			if a, ok := idToAcc[t[ci].Key()]; ok {
				child = a
			}
			if a, ok := idToAcc[t[pi].Key()]; ok {
				parent = a
			}
			h.AddIsA(child, parent)
		}
	}
	return h, nil
}

// Ancestors returns the transitive is_a closure of a term (excluding the
// term itself), sorted.
func (h *Hierarchy) Ancestors(acc string) []string {
	seen := make(map[string]bool)
	var walk func(string)
	walk = func(a string) {
		for _, p := range h.parents[a] {
			if !seen[p] {
				seen[p] = true
				walk(p)
			}
		}
	}
	walk(acc)
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Descendants returns the transitive children closure, sorted.
func (h *Hierarchy) Descendants(acc string) []string {
	seen := make(map[string]bool)
	var walk func(string)
	walk = func(a string) {
		for _, c := range h.children[a] {
			if !seen[c] {
				seen[c] = true
				walk(c)
			}
		}
	}
	walk(acc)
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Roots returns the terms without parents, sorted.
func (h *Hierarchy) Roots() []string {
	var out []string
	for a, ps := range h.parents {
		if len(ps) == 0 {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// Depth returns the minimal root distance of a term (0 for roots, -1 for
// unknown terms).
func (h *Hierarchy) Depth(acc string) int {
	if !h.Has(acc) {
		return -1
	}
	h.computeDepths()
	return h.depth[acc]
}

func (h *Hierarchy) computeDepths() {
	if h.depth != nil {
		return
	}
	h.depth = make(map[string]int, len(h.parents))
	// BFS from all roots; cycles (malformed input) terminate because each
	// term is assigned once.
	queue := h.Roots()
	for _, r := range queue {
		h.depth[r] = 0
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range h.children[cur] {
			if _, done := h.depth[c]; !done {
				h.depth[c] = h.depth[cur] + 1
				queue = append(queue, c)
			}
		}
	}
	// Terms unreachable from any root (cycles) get depth 0.
	for a := range h.parents {
		if _, ok := h.depth[a]; !ok {
			h.depth[a] = 0
		}
	}
}

// LCA returns the deepest common ancestor of two terms ("" when none),
// considering the terms themselves as their own ancestors.
func (h *Hierarchy) LCA(a, b string) string {
	if !h.Has(a) || !h.Has(b) {
		return ""
	}
	ancA := map[string]bool{a: true}
	for _, x := range h.Ancestors(a) {
		ancA[x] = true
	}
	h.computeDepths()
	best, bestDepth := "", -1
	consider := append(h.Ancestors(b), b)
	for _, x := range consider {
		if ancA[x] && h.depth[x] > bestDepth {
			best, bestDepth = x, h.depth[x]
		}
	}
	return best
}

// Similarity computes Wu-Palmer similarity: 2*depth(lca) /
// (depth(a)+depth(b)), in [0,1]; identical terms score 1, unrelated 0.
func (h *Hierarchy) Similarity(a, b string) float64 {
	if a == b && h.Has(a) {
		return 1
	}
	lca := h.LCA(a, b)
	if lca == "" {
		return 0
	}
	h.computeDepths()
	da, db, dl := h.depth[a], h.depth[b], h.depth[lca]
	if da+db == 0 {
		return 1
	}
	return 2 * float64(dl) / float64(da+db)
}
