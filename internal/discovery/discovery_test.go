package discovery

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/rel"
)

// biosqlDB builds the Figure 3 BioSQL fragment the paper's §5 case study
// walks through: BioEntry is the primary relation, `accession` its
// accession-number candidate; taxon_id is non-unique, bioentry_id digits
// only, and name has varying length, so all three are correctly rejected.
func biosqlDB() *rel.Database {
	db := rel.NewDatabase("biosql")

	bioentry := db.Create("bioentry", rel.TextSchema(
		"bioentry_id", "accession", "name", "taxon_id", "description"))
	names := []string{"HBA", "MYG_HUMAN", "INS", "K1C9_MOUSE", "CYC_BOVIN",
		"ALBU", "LYSC_CHICK", "TRY", "CATA_HUMAN", "P53"}
	for i := 0; i < 10; i++ {
		bioentry.AppendRaw(
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("P%05d", 10000+i),
			names[i],
			fmt.Sprintf("%d", 9606+(i%3)),
			fmt.Sprintf("functional description of protein number %d with several words", i),
		)
	}

	taxon := db.Create("taxon", rel.TextSchema("taxon_id", "scientific_name"))
	for i := 0; i < 3; i++ {
		taxon.AppendRaw(fmt.Sprintf("%d", 9606+i), fmt.Sprintf("Species %d", i))
	}

	biosequence := db.Create("biosequence", rel.TextSchema("bioentry_id", "biosequence_str"))
	for i := 0; i < 10; i++ {
		biosequence.AppendRaw(fmt.Sprintf("%d", i+1), seqFor(i))
	}

	comment := db.Create("comment", rel.TextSchema("comment_id", "bioentry_id", "comment_text"))
	for i := 0; i < 25; i++ {
		comment.AppendRaw(fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", (i%10)+1),
			fmt.Sprintf("curator remark number %d about the entry", i))
	}

	dbref := db.Create("dbref", rel.TextSchema("dbref_id", "bioentry_id", "dbname", "ref_accession"))
	for i := 0; i < 20; i++ {
		dbref.AppendRaw(fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", (i%10)+1),
			"PDB", fmt.Sprintf("1AB%d", i))
	}

	ontologyterm := db.Create("ontologyterm", rel.TextSchema("term_id", "term_name", "term_definition"))
	for i := 0; i < 6; i++ {
		ontologyterm.AppendRaw(fmt.Sprintf("%d", i+1), fmt.Sprintf("GO:000%d100", i),
			fmt.Sprintf("a molecular function involving catalytic activity type %d", i))
	}

	bioentryterm := db.Create("bioentry_term", rel.TextSchema("bioentry_id", "term_id"))
	for i := 0; i < 18; i++ {
		bioentryterm.AppendRaw(fmt.Sprintf("%d", (i%10)+1), fmt.Sprintf("%d", (i%6)+1))
	}
	return db
}

func seqFor(i int) string {
	bases := "ACGT"
	out := make([]byte, 120)
	for j := range out {
		out[j] = bases[(i*7+j*13)%4]
	}
	return string(out)
}

func analyze(t *testing.T, db *rel.Database, opts Options) *Structure {
	t.Helper()
	profs, err := profile.ProfileDatabase(db, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Analyze(db, profs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBioSQLPrimaryRelation(t *testing.T) {
	s := analyze(t, biosqlDB(), DefaultOptions())
	if s.Primary != "bioentry" {
		t.Fatalf("primary = %q want bioentry (scores %v, indeg %v)", s.Primary, s.PrimaryScores, s.InDegree)
	}
	if s.PrimaryAccession != "accession" {
		t.Errorf("accession column = %q", s.PrimaryAccession)
	}
}

func TestBioSQLCandidateRejections(t *testing.T) {
	// §5: "The other fields in BioEntry are either non-unique (e.g.
	// taxon_id), have no alphanumeric character (e.g. bioentry_id), or
	// have varying length (e.g. name)."
	db := biosqlDB()
	profs, _ := profile.ProfileDatabase(db, profile.Options{})
	r := db.Relation("bioentry")
	cand, ok := accessionCandidate(r, profs, DefaultAccessionRules())
	if !ok {
		t.Fatal("no candidate found in bioentry")
	}
	if cand.Column != "accession" {
		t.Errorf("candidate = %q want accession", cand.Column)
	}
	// Verify each named rejection reason on the profiles directly.
	if profs[profile.Key("bioentry", "taxon_id")].Unique {
		t.Error("taxon_id must be non-unique")
	}
	if profs[profile.Key("bioentry", "bioentry_id")].AllValuesHaveNonDigit {
		t.Error("bioentry_id must be digits only")
	}
	if profs[profile.Key("bioentry", "name")].LenSpreadRatio <= 0.20 {
		t.Error("name must have varying length above the 20% threshold")
	}
}

func TestBioSQLInDegree(t *testing.T) {
	s := analyze(t, biosqlDB(), DefaultOptions())
	// bioentry is referenced by biosequence, comment, dbref, bioentry_term
	// (on bioentry_id) — it must have the highest in-degree among
	// candidate tables.
	if s.InDegree["bioentry"] < 3 {
		t.Errorf("bioentry in-degree = %d; want >= 3 (INDs: %v)", s.InDegree["bioentry"], s.INDs)
	}
}

func TestSecondaryPathsReachAllRelations(t *testing.T) {
	s := analyze(t, biosqlDB(), DefaultOptions())
	if len(s.Unreachable) != 0 {
		t.Errorf("unreachable relations: %v (paths: %v)", s.Unreachable, s.Paths)
	}
	// comment must be reachable via one FK edge.
	paths := s.Paths["comment"]
	if len(paths) == 0 {
		t.Fatal("no path to comment")
	}
	if len(paths[0].Steps) != 1 {
		t.Errorf("shortest path to comment has %d steps", len(paths[0].Steps))
	}
}

func TestTransitivePaths(t *testing.T) {
	s := analyze(t, biosqlDB(), DefaultOptions())
	// ontologyterm is two hops away: bioentry <- bioentry_term -> ontologyterm.
	paths := s.Paths["ontologyterm"]
	if len(paths) == 0 {
		t.Fatal("no path to ontologyterm")
	}
	if len(paths[0].Steps) != 2 {
		t.Errorf("shortest path to ontologyterm = %v (len %d, want 2)", paths[0], len(paths[0].Steps))
	}
}

func TestPathString(t *testing.T) {
	s := analyze(t, biosqlDB(), DefaultOptions())
	p := s.Paths["comment"][0]
	if got := p.String(); got != "bioentry -> comment" {
		t.Errorf("Path.String = %q", got)
	}
}

func TestUnreachablePartitionDetected(t *testing.T) {
	db := biosqlDB()
	orphan := db.Create("island", rel.TextSchema("island_id", "stuff"))
	for i := 0; i < 5; i++ {
		orphan.AppendRaw(fmt.Sprintf("zz%d", i+100), fmt.Sprintf("data %d", i))
	}
	s := analyze(t, db, DefaultOptions())
	found := false
	for _, u := range s.Unreachable {
		if u == "island" {
			found = true
		}
	}
	if !found {
		t.Errorf("island should be unreachable; got %v", s.Unreachable)
	}
}

func TestNoPrimaryWhenNoCandidates(t *testing.T) {
	db := rel.NewDatabase("digitsonly")
	r := db.Create("t", rel.TextSchema("id", "n"))
	for i := 0; i < 5; i++ {
		r.AppendRaw(fmt.Sprintf("%d", i), fmt.Sprintf("%d", i*2))
	}
	s := analyze(t, db, DefaultOptions())
	if s.Primary != "" {
		t.Errorf("primary = %q; want none", s.Primary)
	}
}

func TestAccessionRuleAblation(t *testing.T) {
	db := biosqlDB()
	profs, _ := profile.ProfileDatabase(db, profile.Options{})
	r := db.Relation("bioentry")

	// Without the non-digit rule, bioentry_id (unique, fixed length at
	// one digit... actually variable 1-2 digits) could compete; with
	// MinLength=4 disabled and non-digit disabled, more candidates appear.
	rules := DefaultAccessionRules()
	rules.RequireNonDigit = false
	rules.MinLength = 0
	rules.MaxLenSpread = 0 // disable spread check (0 disables)
	cand, ok := accessionCandidate(r, profs, rules)
	if !ok {
		t.Fatal("no candidate with relaxed rules")
	}
	// Without the length-spread rule, the variable-length `name` column
	// wins on mean length — demonstrating that the 20% spread rule is the
	// one that rejects it (the paper's stated reason).
	if cand.Column != "name" {
		t.Errorf("relaxed rules candidate = %q; want name", cand.Column)
	}
	// Re-enabling the spread rule restores the correct choice.
	rules.MaxLenSpread = 0.20
	cand, ok = accessionCandidate(r, profs, rules)
	if !ok || cand.Column != "accession" {
		t.Errorf("spread rule should restore accession; got %v %v", cand, ok)
	}

	// With uniqueness not required, name could qualify if spread allowed.
	rules = AccessionRules{RequireUnique: false, RequireNonDigit: true, MinLength: 3, MaxLenSpread: 0}
	cand, ok = accessionCandidate(r, profs, rules)
	if !ok {
		t.Fatal("no candidate")
	}
	if cand.Column == "bioentry_id" {
		t.Error("digits-only column must never qualify while RequireNonDigit")
	}
}

func TestMetricAboveMean(t *testing.T) {
	opts := DefaultOptions()
	opts.Metric = MetricInDegreeAboveMean
	s := analyze(t, biosqlDB(), opts)
	if s.Primary != "bioentry" {
		t.Errorf("above-mean metric primary = %q", s.Primary)
	}
}

func TestMetricNameHint(t *testing.T) {
	opts := DefaultOptions()
	opts.Metric = MetricInDegreeWithNameHint
	s := analyze(t, biosqlDB(), opts)
	if s.Primary != "bioentry" {
		t.Errorf("name-hint metric primary = %q", s.Primary)
	}
	// The hint bonus must be reflected in the score: bioentry_id columns
	// appear in 4 other tables.
	if s.PrimaryScores["bioentry"] <= float64(s.InDegree["bioentry"]) {
		t.Errorf("name hint should add bonus: score=%v indeg=%d",
			s.PrimaryScores["bioentry"], s.InDegree["bioentry"])
	}
}

func TestPrimaryRelationsMultiPrimary(t *testing.T) {
	// Build an EnsEmbl-like source with two hub tables (clone and gene).
	db := rel.NewDatabase("ensembl")
	clone := db.Create("clone", rel.TextSchema("clone_id", "clone_acc"))
	gene := db.Create("gene", rel.TextSchema("gene_id", "gene_acc"))
	for i := 0; i < 10; i++ {
		clone.AppendRaw(fmt.Sprintf("%d", i+1), fmt.Sprintf("AC%06d", i))
		gene.AppendRaw(fmt.Sprintf("%d", i+1), fmt.Sprintf("ENSG%08d", i))
	}
	for n := 0; n < 3; n++ {
		rc := db.Create(fmt.Sprintf("clone_dep%d", n), rel.TextSchema("id", "clone_id", "x"))
		rg := db.Create(fmt.Sprintf("gene_dep%d", n), rel.TextSchema("id", "gene_id", "y"))
		for i := 0; i < 20; i++ {
			rc.AppendRaw(fmt.Sprintf("%d", i+1+n*100), fmt.Sprintf("%d", (i%10)+1), fmt.Sprintf("cx%d", i))
			rg.AppendRaw(fmt.Sprintf("%d", i+1+n*100), fmt.Sprintf("%d", (i%10)+1), fmt.Sprintf("gy%d", i))
		}
	}
	s := analyze(t, db, DefaultOptions())
	multi := s.PrimaryRelations(0.5)
	has := func(name string) bool {
		for _, m := range multi {
			if m == name {
				return true
			}
		}
		return false
	}
	if !has("clone") || !has("gene") {
		t.Errorf("multi-primary should include both hubs: %v (scores %v)", multi, s.PrimaryScores)
	}
}

func TestMaxPathsCap(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxPathsPerRelation = 1
	s := analyze(t, biosqlDB(), opts)
	for relName, ps := range s.Paths {
		if len(ps) > 1 {
			t.Errorf("relation %s has %d paths, cap was 1", relName, len(ps))
		}
	}
}

func TestStatsPropagated(t *testing.T) {
	s := analyze(t, biosqlDB(), DefaultOptions())
	if s.INDStats.PairsConsidered == 0 {
		t.Error("IND stats should be propagated")
	}
}

func TestReportRendering(t *testing.T) {
	s := analyze(t, biosqlDB(), DefaultOptions())
	rep := s.Report()
	for _, want := range []string{
		"source biosql",
		"primary relation: bioentry (accession column accession)",
		"accession candidates:",
		"guessed foreign keys:",
		"secondary-object paths:",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestReportNoPrimary(t *testing.T) {
	db := rel.NewDatabase("digitsonly")
	r := db.Create("t", rel.TextSchema("id"))
	for i := 0; i < 3; i++ {
		r.AppendRaw(fmt.Sprintf("%d", i))
	}
	s := analyze(t, db, DefaultOptions())
	if !strings.Contains(s.Report(), "no primary relation found") {
		t.Errorf("report = %q", s.Report())
	}
}

// TestRawINDGraphAblation demonstrates why the FK-selection refinements
// exist: with the raw §4.2 inclusion dependencies as the FK graph,
// surrogate-key range nesting inflates in-degrees and the primary
// relation can be misidentified (DESIGN.md §4).
func TestRawINDGraphAblation(t *testing.T) {
	opts := DefaultOptions()
	opts.RawINDGraph = true
	s := analyze(t, biosqlDB(), opts)
	refined := analyze(t, biosqlDB(), DefaultOptions())
	// The raw graph must be strictly larger (over-connected).
	if len(s.ForeignKeys) <= len(refined.ForeignKeys) {
		t.Errorf("raw FK graph (%d) should exceed refined (%d)",
			len(s.ForeignKeys), len(refined.ForeignKeys))
	}
	// And the refined graph yields the correct primary.
	if refined.Primary != "bioentry" {
		t.Errorf("refined primary = %q", refined.Primary)
	}
}
