package discovery

import (
	"fmt"
	"sort"
	"strings"
)

// Report renders the discovered structure of a source as human-readable
// text — the summary a curator reviews after hands-off integration.
func (s *Structure) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "source %s\n", s.Source)
	if s.Primary == "" {
		sb.WriteString("  no primary relation found (no accession-number candidates)\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "  primary relation: %s (accession column %s)\n", s.Primary, s.PrimaryAccession)

	if len(s.Candidates) > 0 {
		var keys []string
		for k := range s.Candidates {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("  accession candidates:\n")
		for _, k := range keys {
			c := s.Candidates[k]
			marker := ""
			if strings.EqualFold(c.Relation, s.Primary) {
				marker = "  <- primary"
			}
			fmt.Fprintf(&sb, "    %s.%s (mean len %.1f, in-degree %d)%s\n",
				c.Relation, c.Column, c.MeanLen, s.InDegree[k], marker)
		}
	}
	if len(s.ForeignKeys) > 0 {
		sb.WriteString("  guessed foreign keys:\n")
		for _, fk := range s.ForeignKeys {
			fmt.Fprintf(&sb, "    %s\n", fk)
		}
	}
	if len(s.Paths) > 0 {
		var keys []string
		for k := range s.Paths {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("  secondary-object paths:\n")
		for _, k := range keys {
			if len(s.Paths[k]) == 0 {
				continue
			}
			extra := ""
			if n := len(s.Paths[k]); n > 1 {
				extra = fmt.Sprintf("  (+%d alternative paths)", n-1)
			}
			fmt.Fprintf(&sb, "    %s%s\n", s.Paths[k][0], extra)
		}
	}
	if len(s.Unreachable) > 0 {
		fmt.Fprintf(&sb, "  unreachable relations: %s\n", strings.Join(s.Unreachable, ", "))
	}
	return sb.String()
}
