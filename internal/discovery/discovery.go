// Package discovery implements ALADIN's steps 2 and 3: the discovery of
// primary relations (§4.2) and of secondary relations (§4.3).
//
// The §4.2 pipeline, reproduced faithfully:
//
//  1. Detect "unique" attributes by checking every attribute without a
//     declared UNIQUE constraint.
//  2. Mark accession-number candidates: unique attributes whose every
//     value contains at least one non-digit character, is at least four
//     characters long, and whose value lengths differ by at most 20%.
//     Each table keeps at most one candidate — the one with the longer
//     average field length.
//  3. Deduce foreign-key relationships and cardinalities (delegated to
//     package ind).
//  4. Choose as primary relation the table with the highest in-degree of
//     all tables containing an accession-number candidate.
//
// §4.3 then computes the paths from the primary relation to every other
// relation "using transitivity of relationships, ignoring direction and
// cardinality", storing all paths found.
package discovery

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/ind"
	"repro/internal/profile"
	"repro/internal/rel"
)

// AccessionRules parameterizes the §4.2 accession-candidate heuristics.
// Each rule can be disabled for the ablation study (DESIGN.md §4).
type AccessionRules struct {
	RequireUnique   bool
	RequireNonDigit bool
	// MinLength is the minimum value length; the paper uses 4 ("the
	// shortest accession numbers we are aware of, used in the PDB").
	MinLength int
	// MaxLenSpread is the maximal allowed (max-min)/max length spread;
	// the paper allows values "to differ by at most 20 percent in length".
	MaxLenSpread float64
}

// DefaultAccessionRules returns the paper's rule set.
func DefaultAccessionRules() AccessionRules {
	return AccessionRules{
		RequireUnique:   true,
		RequireNonDigit: true,
		MinLength:       4,
		MaxLenSpread:    0.20,
	}
}

// PrimaryMetric selects how the primary relation is chosen among
// accession-candidate tables.
type PrimaryMetric int

const (
	// MetricInDegree is the paper's default: highest in-degree wins.
	MetricInDegree PrimaryMetric = iota
	// MetricInDegreeAboveMean uses in-degree minus the mean in-degree,
	// the refinement §4.2 suggests for multi-primary sources.
	MetricInDegreeAboveMean
	// MetricInDegreeWithNameHint adds a bonus when other relations carry
	// columns whose names embed the candidate table's name or "ID"
	// (§4.2: "schema elements containing the substring 'ID' ... could
	// also help").
	MetricInDegreeWithNameHint
)

// Options configures structural analysis.
type Options struct {
	Accession AccessionRules
	Metric    PrimaryMetric
	IND       ind.Options
	// MaxPathLen caps the length of secondary-object paths (edges).
	MaxPathLen int
	// MaxPathsPerRelation caps how many alternative paths are stored.
	MaxPathsPerRelation int
	// RawINDGraph skips the FK-selection refinements and uses the raw
	// inclusion dependencies as the FK graph — the paper's literal §4.2
	// rule, kept as an ablation (DESIGN.md §4: surrogate-range nesting
	// over-connects the graph without the refinements).
	RawINDGraph bool
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{
		Accession:           DefaultAccessionRules(),
		Metric:              MetricInDegree,
		MaxPathLen:          4,
		MaxPathsPerRelation: 8,
	}
}

// Candidate is an accession-number candidate attribute.
type Candidate struct {
	Relation string
	Column   string
	MeanLen  float64
}

// PathStep is one traversed relationship edge; Forward indicates whether
// the edge was traversed in FK direction (from referencing to referenced).
type PathStep struct {
	Edge    ind.IND
	Forward bool
}

// Path is a sequence of steps from the primary relation to a target.
type Path struct {
	Target string
	Steps  []PathStep
}

// String renders "primary -> a -> b". A Forward step moves from the
// referencing table to the referenced table.
func (p Path) String() string {
	var sb strings.Builder
	for i, s := range p.Steps {
		if i == 0 {
			if s.Forward {
				sb.WriteString(s.Edge.From.FromRelation)
			} else {
				sb.WriteString(s.Edge.From.ToRelation)
			}
		}
		sb.WriteString(" -> ")
		if s.Forward {
			sb.WriteString(s.Edge.From.ToRelation)
		} else {
			sb.WriteString(s.Edge.From.FromRelation)
		}
	}
	return sb.String()
}

// Structure is the discovered internal structure of one data source: the
// output of steps 2 and 3, and the input to link discovery.
type Structure struct {
	Source string

	// UniqueColumns lists attributes found unique (relation -> columns).
	UniqueColumns map[string][]string
	// Candidates holds the single accession-number candidate per relation
	// (relation name, lower-cased → candidate).
	Candidates map[string]Candidate
	// INDs are all discovered/declared inclusion dependencies.
	INDs []ind.IND
	// ForeignKeys is the guessed FK graph: for every source attribute the
	// single most plausible target (highest target coverage). Raw
	// inclusion dependencies over-connect the schema because surrogate-key
	// integer ranges nest (1..n ⊆ 1..m); an FK attribute references
	// exactly one table, so each source attribute votes once. This is the
	// disambiguation the paper alludes to in §4.2's dictionary-table
	// discussion (see DESIGN.md).
	ForeignKeys []ind.IND
	// INDStats reports discovery work for performance experiments.
	INDStats ind.Stats
	// InDegree counts incoming IND edges per relation.
	InDegree map[string]int
	// Primary is the chosen primary relation ("" if none found).
	Primary string
	// PrimaryAccession is the accession column of the primary relation.
	PrimaryAccession string
	// PrimaryScores records the metric value for each candidate table.
	PrimaryScores map[string]float64
	// Paths maps each non-primary relation to the stored join paths from
	// the primary relation (§4.3).
	Paths map[string][]Path
	// Unreachable lists relations with no path from the primary relation
	// (the "non-overlapping partitions" case the paper says it has yet to
	// encounter).
	Unreachable []string
}

// Analyze performs steps 2 and 3 on one imported source.
func Analyze(db *rel.Database, profs map[string]*profile.ColumnProfile, opts Options) (*Structure, error) {
	return AnalyzeContext(context.Background(), db, profs, opts)
}

// AnalyzeContext is Analyze with cancellation: when ctx is canceled
// during IND discovery the partial result is discarded and ctx.Err() is
// returned.
func AnalyzeContext(ctx context.Context, db *rel.Database, profs map[string]*profile.ColumnProfile, opts Options) (*Structure, error) {
	if opts.MaxPathLen == 0 {
		opts.MaxPathLen = 4
	}
	if opts.MaxPathsPerRelation == 0 {
		opts.MaxPathsPerRelation = 8
	}
	s := &Structure{
		Source:        db.Name,
		UniqueColumns: make(map[string][]string),
		Candidates:    make(map[string]Candidate),
		InDegree:      make(map[string]int),
		PrimaryScores: make(map[string]float64),
		Paths:         make(map[string][]Path),
	}
	// Step 2a: unique attributes.
	for _, r := range db.Relations() {
		for _, c := range r.Schema.Columns {
			p := profs[profile.Key(r.Name, c.Name)]
			if p == nil {
				return nil, fmt.Errorf("discovery: missing profile for %s.%s", r.Name, c.Name)
			}
			if p.Unique {
				s.UniqueColumns[lower(r.Name)] = append(s.UniqueColumns[lower(r.Name)], c.Name)
			}
		}
	}
	// Step 2b: accession-number candidates.
	for _, r := range db.Relations() {
		best, ok := accessionCandidate(r, profs, opts.Accession)
		if ok {
			s.Candidates[lower(r.Name)] = best
		}
	}
	// Step 2c: foreign keys / cardinalities.
	inds, stats, err := ind.DiscoverContext(ctx, db, profs, opts.IND)
	if err != nil {
		return nil, err
	}
	s.INDs = inds
	s.INDStats = stats
	if opts.RawINDGraph {
		s.ForeignKeys = inds
	} else {
		s.ForeignKeys = chooseForeignKeys(inds, profs)
	}
	for _, d := range s.ForeignKeys {
		s.InDegree[lower(d.From.ToRelation)]++
	}
	// Step 2d: primary relation selection.
	s.Primary, s.PrimaryScores = choosePrimary(db, s, opts.Metric)
	if s.Primary != "" {
		s.PrimaryAccession = s.Candidates[lower(s.Primary)].Column
	}
	// Step 3: secondary-object paths.
	if s.Primary != "" {
		s.computePaths(db, opts)
	}
	return s, nil
}

// accessionCandidate applies the rule set to every column of r and picks
// at most one candidate ("only the one with the longer average field
// length is considered").
func accessionCandidate(r *rel.Relation, profs map[string]*profile.ColumnProfile, rules AccessionRules) (Candidate, bool) {
	var best Candidate
	found := false
	for _, c := range r.Schema.Columns {
		p := profs[profile.Key(r.Name, c.Name)]
		if p == nil || p.Distinct == 0 {
			continue
		}
		if rules.RequireUnique && !p.Unique {
			continue
		}
		if rules.RequireNonDigit && !p.AllValuesHaveNonDigit {
			continue
		}
		if rules.MinLength > 0 && p.MinLen < rules.MinLength {
			continue
		}
		if rules.MaxLenSpread > 0 && p.LenSpreadRatio > rules.MaxLenSpread {
			continue
		}
		// Exclude obvious free-text fields (an accession is a single
		// token) and sequence fields (long fixed-alphabet strings are
		// typed as sequences by the profiler, §4.4).
		if p.MeanTokens > 1.0 || p.IsSequenceField() {
			continue
		}
		if !found || p.MeanLen > best.MeanLen {
			best = Candidate{Relation: r.Name, Column: c.Name, MeanLen: p.MeanLen}
			found = true
		}
	}
	return best, found
}

// chooseForeignKeys reduces the raw IND set to a guessed FK graph. Raw
// inclusion dependencies over-connect life-science schemas because
// parser-generated surrogate-key ranges nest (1..n ⊆ 1..m) — the very
// confusion §4.2 discusses for dictionary tables. Two refinements, both
// standard in the FK-discovery literature that followed this paper
// (see DESIGN.md §4):
//
//  1. Evidence filter: a candidate edge survives only with name evidence
//     (source column named like the target column or target relation) or
//     very high coverage of the target's value set (>= 0.9).
//  2. Single vote: an FK attribute references exactly one table, so per
//     source attribute only the best surviving edge is kept, scored by
//     coverage plus a name-evidence bonus.
//
// Declared FKs always win for their source attribute.
func chooseForeignKeys(inds []ind.IND, profs map[string]*profile.ColumnProfile) []ind.IND {
	const (
		minBlindCoverage = 0.9
		nameBonus        = 0.5
		// pkBonus favors targets that look like their own relation's
		// primary key (FKs reference PKs): column name embeds the target
		// relation's name, or is literally "id".
		pkBonus = 0.25
	)
	type scoredIND struct {
		d       ind.IND
		score   float64
		tgtSize int
	}
	best := make(map[string]scoredIND)
	var order []string
	for _, d := range inds {
		if !d.Declared {
			// Intra-relation edges carry no structural information for
			// primary-relation selection or secondary paths.
			if lower(d.From.FromRelation) == lower(d.From.ToRelation) {
				continue
			}
			// A relation's own PK-named column being contained elsewhere
			// is almost always the mirror image of a real FK pointing the
			// other way (1:1 set equality produces both directions); the
			// kept direction is the one whose source is NOT its own PK.
			if pkLike(d.From.FromColumn, d.From.FromRelation) {
				continue
			}
		}
		srcKey := lower(d.From.FromRelation) + "." + lower(d.From.FromColumn)
		srcProf := profs[profile.Key(d.From.FromRelation, d.From.FromColumn)]
		tgtProf := profs[profile.Key(d.From.ToRelation, d.From.ToColumn)]
		cov := 0.0
		tgtSize := 0
		if srcProf != nil && tgtProf != nil && tgtProf.Distinct > 0 {
			inter := d.Containment * float64(srcProf.Distinct)
			cov = inter / float64(tgtProf.Distinct)
			tgtSize = tgtProf.Distinct
		}
		hasName := nameEvidence(d.From)
		if !d.Declared && !hasName && cov < minBlindCoverage {
			continue
		}
		score := cov
		if hasName {
			score += nameBonus
		}
		if pkLike(d.From.ToColumn, d.From.ToRelation) {
			score += pkBonus
		}
		cur, seen := best[srcKey]
		if !seen {
			order = append(order, srcKey)
			best[srcKey] = scoredIND{d, score, tgtSize}
			continue
		}
		if cur.d.Declared {
			continue // declared edges are never displaced
		}
		replace := false
		switch {
		case d.Declared:
			replace = true
		case score > cur.score:
			replace = true
		case score == cur.score && tgtSize < cur.tgtSize:
			replace = true
		case score == cur.score && tgtSize == cur.tgtSize &&
			lower(d.From.ToRelation) < lower(cur.d.From.ToRelation):
			replace = true
		}
		if replace {
			best[srcKey] = scoredIND{d, score, tgtSize}
		}
	}
	out := make([]ind.IND, 0, len(best))
	for _, k := range order {
		out = append(out, best[k].d)
	}
	return out
}

// pkLike reports whether a column name looks like its own relation's
// primary key: literally "id", or embedding the relation's name (e.g.
// "bioentry_id" in relation "bioentry").
func pkLike(column, relation string) bool {
	c := lower(column)
	return c == "id" || strings.Contains(c, lower(relation))
}

// nameEvidence reports whether the source column's name suggests the
// target: equal column names, or the source column embeds the target
// relation's name (e.g. "bioentry_id" referencing relation "bioentry").
func nameEvidence(fk rel.ForeignKey) bool {
	src := lower(fk.FromColumn)
	if src == lower(fk.ToColumn) {
		return true
	}
	return strings.Contains(src, lower(fk.ToRelation))
}

// choosePrimary scores every accession-candidate table and returns the
// winner. Ties break toward higher cardinality, then lexicographic name,
// for determinism.
func choosePrimary(db *rel.Database, s *Structure, metric PrimaryMetric) (string, map[string]float64) {
	scores := make(map[string]float64)
	if len(s.Candidates) == 0 {
		return "", scores
	}
	// Mean in-degree over all relations (for the above-mean metric).
	var totalIn float64
	for _, r := range db.Relations() {
		totalIn += float64(s.InDegree[lower(r.Name)])
	}
	meanIn := totalIn / float64(db.Len())

	for key := range s.Candidates {
		in := float64(s.InDegree[key])
		switch metric {
		case MetricInDegree:
			scores[key] = in
		case MetricInDegreeAboveMean:
			scores[key] = in - meanIn
		case MetricInDegreeWithNameHint:
			scores[key] = in + nameHintBonus(db, key)
		}
	}
	type scored struct {
		name  string
		score float64
		card  int
	}
	var list []scored
	for key, sc := range scores {
		card := 0
		if r := db.Relation(key); r != nil {
			card = r.Cardinality()
		}
		list = append(list, scored{key, sc, card})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].score != list[j].score {
			return list[i].score > list[j].score
		}
		if list[i].card != list[j].card {
			return list[i].card > list[j].card
		}
		return list[i].name < list[j].name
	})
	winner := list[0].name
	if r := db.Relation(winner); r != nil {
		return r.Name, scores
	}
	return winner, scores
}

// nameHintBonus grants +0.5 for every column elsewhere whose name embeds
// this relation's name plus "id" (e.g. "bioentry_id" hints at bioentry).
func nameHintBonus(db *rel.Database, relName string) float64 {
	bonus := 0.0
	needle := lower(relName)
	for _, r := range db.Relations() {
		if lower(r.Name) == needle {
			continue
		}
		for _, c := range r.Schema.Columns {
			cn := lower(c.Name)
			if strings.Contains(cn, needle) && strings.Contains(cn, "id") {
				bonus += 0.5
			}
		}
	}
	return bonus
}

// computePaths runs a bounded BFS/DFS over the undirected IND graph from
// the primary relation, collecting up to MaxPathsPerRelation simple paths
// of length <= MaxPathLen per relation (§4.3).
func (s *Structure) computePaths(db *rel.Database, opts Options) {
	type edge struct {
		d       ind.IND
		forward bool // traversal direction: forward = from source side to target side
		next    string
	}
	adj := make(map[string][]edge)
	for _, d := range s.ForeignKeys {
		from, to := lower(d.From.FromRelation), lower(d.From.ToRelation)
		// Traversing from the referencing table to the referenced table
		// follows the FK direction (forward).
		adj[from] = append(adj[from], edge{d: d, forward: true, next: to})
		adj[to] = append(adj[to], edge{d: d, forward: false, next: from})
	}
	start := lower(s.Primary)
	reached := map[string]bool{start: true}
	var dfs func(node string, steps []PathStep, visited map[string]bool)
	dfs = func(node string, steps []PathStep, visited map[string]bool) {
		if len(steps) > 0 {
			if len(s.Paths[node]) < opts.MaxPathsPerRelation {
				cp := make([]PathStep, len(steps))
				copy(cp, steps)
				s.Paths[node] = append(s.Paths[node], Path{Target: node, Steps: cp})
				reached[node] = true
			}
		}
		if len(steps) >= opts.MaxPathLen {
			return
		}
		for _, e := range adj[node] {
			if visited[e.next] {
				continue
			}
			visited[e.next] = true
			// PathStep.Forward records whether we moved WITH the FK
			// direction (from the referencing to the referenced table).
			step := PathStep{Edge: e.d, Forward: e.forward}
			dfs(e.next, append(steps, step), visited)
			delete(visited, e.next)
		}
	}
	dfs(start, nil, map[string]bool{start: true})
	for _, r := range db.Relations() {
		if !reached[lower(r.Name)] {
			s.Unreachable = append(s.Unreachable, r.Name)
		}
	}
	sort.Strings(s.Unreachable)
	// Deterministic path order: shortest first.
	for k := range s.Paths {
		sort.SliceStable(s.Paths[k], func(i, j int) bool {
			return len(s.Paths[k][i].Steps) < len(s.Paths[k][j].Steps)
		})
	}
}

// PrimaryRelations returns all relations whose primary score exceeds the
// mean score by stddevs standard deviations — the multi-primary variant
// sketched in §4.2 for sources like EnsEmbl with two primary relations.
func (s *Structure) PrimaryRelations(stddevs float64) []string {
	if len(s.PrimaryScores) == 0 {
		return nil
	}
	var mean, m2 float64
	n := 0.0
	for _, v := range s.PrimaryScores {
		n++
		delta := v - mean
		mean += delta / n
		m2 += delta * (v - mean)
	}
	sd := 0.0
	if n > 1 {
		sd = m2 / (n - 1)
	}
	if sd > 0 {
		sd = math.Sqrt(sd)
	}
	var out []string
	for k, v := range s.PrimaryScores {
		if v >= mean+stddevs*sd {
			out = append(out, k)
		}
	}
	if len(out) == 0 && s.Primary != "" {
		out = append(out, lower(s.Primary))
	}
	sort.Strings(out)
	return out
}

func lower(s string) string { return strings.ToLower(s) }
