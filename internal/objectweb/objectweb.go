// Package objectweb implements ALADIN's browsing access mode (§4.6): the
// integrated warehouse "is best explained in analogy to the Web: the
// discovered objects correspond to Web pages, and the discovered links
// correspond to HTML links". Users traverse four relationship types:
//
//  1. Same relation — neighboring objects within a relation,
//  2. Dependency — secondary objects annotating a primary object,
//  3. Duplicates — flagged same-real-world-object links,
//  4. Linked — cross-reference and implicit links to other sources.
//
// The package also provides the link crawler feeding the search index and
// the [BLM+04] result ranking "based on the number, consistency, and
// length of different paths between two objects".
package objectweb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/discovery"
	"repro/internal/metadata"
	"repro/internal/rel"
)

// Annotation is one secondary-object row attached to a primary object.
type Annotation struct {
	Relation string
	// Fields maps column -> value for the dependent row.
	Fields map[string]string
}

// ObjectView is everything the browser displays for one object.
type ObjectView struct {
	Ref metadata.ObjectRef
	// Fields are the primary-relation attribute values.
	Fields map[string]string
	// Annotations are the dependent secondary-object rows, grouped by the
	// §4.3 paths.
	Annotations []Annotation
	// SameRelation holds the previous and next accession within the
	// primary relation (browse relationship 1).
	PrevAccession, NextAccession string
	// Duplicates and Linked are the repository links touching the object
	// (browse relationships 3 and 4).
	Duplicates []metadata.Link
	Linked     []metadata.Link
}

type sourceData struct {
	db        *rel.Database
	structure *discovery.Structure
	// accIdx/accOrder support same-relation navigation.
	accOrder []string
	accPos   map[string]int
}

// Web is the object-web browse engine over the warehouse and the metadata
// repository.
type Web struct {
	repo    *metadata.Repo
	sources map[string]*sourceData
}

// New creates a Web over a metadata repository.
func New(repo *metadata.Repo) *Web {
	return &Web{repo: repo, sources: make(map[string]*sourceData)}
}

// Prepared is browse data for one source, built by Prepare and not yet
// visible to readers until Install.
type Prepared struct {
	key string
	sd  *sourceData
}

// Prepare validates a source and builds its browse data without
// registering it — the compute half of a snapshot-then-commit source
// addition. Prepare only reads w, so it may run concurrently with
// browsing; Install publishes the result under the caller's write lock.
func (w *Web) Prepare(db *rel.Database, s *discovery.Structure) (*Prepared, error) {
	if s == nil || s.Primary == "" {
		return nil, fmt.Errorf("objectweb: source %q has no primary relation", db.Name)
	}
	sd := &sourceData{db: db, structure: s, accPos: make(map[string]int)}
	pr := db.Relation(s.Primary)
	if pr == nil {
		return nil, fmt.Errorf("objectweb: source %q: missing primary relation %q", db.Name, s.Primary)
	}
	ai := pr.Schema.Index(s.PrimaryAccession)
	if ai < 0 {
		return nil, fmt.Errorf("objectweb: source %q: missing accession column %q", db.Name, s.PrimaryAccession)
	}
	for _, t := range pr.Tuples {
		if t[ai].IsNull() {
			continue
		}
		sd.accOrder = append(sd.accOrder, t[ai].AsString())
	}
	sort.Strings(sd.accOrder)
	for i, a := range sd.accOrder {
		sd.accPos[a] = i
	}
	return &Prepared{key: strings.ToLower(db.Name), sd: sd}, nil
}

// PrepareAppend builds the browse data for a registered source grown by a
// batch of appended primary objects: the added accessions are merged into
// a fresh sorted order while the database and structure pointers are
// shared with the installed sourceData — appended relations become
// visible through the shared database when the caller publishes its
// append branches. Like Prepare this only reads w (callers serialize
// integrations, so the read of w.sources races with nothing); Install
// publishes the result under the caller's write lock.
func (w *Web) PrepareAppend(source string, added []string) (*Prepared, error) {
	key := strings.ToLower(source)
	old := w.sources[key]
	if old == nil {
		return nil, fmt.Errorf("objectweb: append to unknown source %q", source)
	}
	sd := &sourceData{
		db:        old.db,
		structure: old.structure,
		accOrder:  make([]string, 0, len(old.accOrder)+len(added)),
		accPos:    make(map[string]int, len(old.accOrder)+len(added)),
	}
	sd.accOrder = append(sd.accOrder, old.accOrder...)
	for _, a := range added {
		if a != "" {
			sd.accOrder = append(sd.accOrder, a)
		}
	}
	sort.Strings(sd.accOrder)
	for i, a := range sd.accOrder {
		sd.accPos[a] = i
	}
	return &Prepared{key: key, sd: sd}, nil
}

// Install publishes a prepared source to the browse web.
func (w *Web) Install(p *Prepared) {
	w.sources[p.key] = p.sd
}

// AddSource registers an analyzed source for browsing.
func (w *Web) AddSource(db *rel.Database, s *discovery.Structure) error {
	p, err := w.Prepare(db, s)
	if err != nil {
		return err
	}
	w.Install(p)
	return nil
}

// Objects lists all primary-object refs of a source in accession order.
func (w *Web) Objects(source string) []metadata.ObjectRef {
	sd := w.sources[strings.ToLower(source)]
	if sd == nil {
		return nil
	}
	out := make([]metadata.ObjectRef, 0, len(sd.accOrder))
	for _, a := range sd.accOrder {
		out = append(out, metadata.ObjectRef{
			Source: sd.db.Name, Relation: sd.structure.Primary, Accession: a,
		})
	}
	return out
}

// Object assembles the browse view of one object.
func (w *Web) Object(ref metadata.ObjectRef) (*ObjectView, error) {
	sd := w.sources[strings.ToLower(ref.Source)]
	if sd == nil {
		return nil, fmt.Errorf("objectweb: unknown source %q", ref.Source)
	}
	pr := sd.db.Relation(sd.structure.Primary)
	ai := pr.Schema.Index(sd.structure.PrimaryAccession)
	tIdx := lookupAccession(pr, ai, sd.structure.PrimaryAccession, ref.Accession)
	if tIdx < 0 {
		return nil, fmt.Errorf("objectweb: no object %q in %s", ref.Accession, ref.Source)
	}
	view := &ObjectView{
		Ref:    metadata.ObjectRef{Source: sd.db.Name, Relation: pr.Name, Accession: ref.Accession},
		Fields: make(map[string]string),
	}
	for i, c := range pr.Schema.Columns {
		if pr.Tuples[tIdx][i].IsNull() {
			continue
		}
		view.Fields[strings.ToLower(c.Name)] = pr.Tuples[tIdx][i].AsString()
	}
	// Relationship 1: same-relation neighbors.
	if pos, ok := sd.accPos[ref.Accession]; ok {
		if pos > 0 {
			view.PrevAccession = sd.accOrder[pos-1]
		}
		if pos+1 < len(sd.accOrder) {
			view.NextAccession = sd.accOrder[pos+1]
		}
	}
	// Relationship 2: dependent secondary objects via the §4.3 paths.
	view.Annotations = w.annotations(sd, tIdx)
	// Relationships 3 and 4: repository links.
	for _, l := range w.repo.LinksOf(view.Ref) {
		if l.Type == metadata.LinkDuplicate {
			view.Duplicates = append(view.Duplicates, l)
		} else {
			view.Linked = append(view.Linked, l)
		}
	}
	metadata.SortLinks(view.Duplicates)
	metadata.SortLinks(view.Linked)
	return view, nil
}

// lookupAccession finds the position of the primary tuple whose
// accession column renders as acc: an O(1) probe of the column's hash
// index when the integration pipeline built one, a scan otherwise. The
// stored value may be typed (numeric accessions parse as integers), so
// the probe tries the parsed value and falls back to the raw string.
func lookupAccession(pr *rel.Relation, ai int, column, acc string) int {
	candidates := []rel.Value{rel.Parse(acc)}
	if s := rel.Str(acc); s.Key() != candidates[0].Key() {
		candidates = append(candidates, s)
	}
	if ix := pr.HashIndex(column); ix != nil {
		for _, v := range candidates {
			if positions := ix.Lookup(v); len(positions) > 0 {
				return positions[0]
			}
		}
		return -1
	}
	for i, t := range pr.Tuples {
		if !t[ai].IsNull() && t[ai].AsString() == acc {
			return i
		}
	}
	return -1
}

// maxAnnotationRows caps dependent rows per relation in a view.
const maxAnnotationRows = 32

// annotations walks each stored path forward from the primary tuple and
// collects the joined dependent rows.
func (w *Web) annotations(sd *sourceData, primaryTupleIdx int) []Annotation {
	var out []Annotation
	targets := make([]string, 0, len(sd.structure.Paths))
	for relName := range sd.structure.Paths {
		targets = append(targets, relName)
	}
	sort.Strings(targets)
	for _, relName := range targets {
		paths := sd.structure.Paths[relName]
		if len(paths) == 0 {
			continue
		}
		rows := w.walkForward(sd, paths[0], primaryTupleIdx)
		target := sd.db.Relation(relName)
		if target == nil {
			continue
		}
		for _, ti := range rows {
			a := Annotation{Relation: target.Name, Fields: make(map[string]string)}
			for i, c := range target.Schema.Columns {
				v := target.Tuples[ti][i]
				if v.IsNull() {
					continue
				}
				a.Fields[strings.ToLower(c.Name)] = v.AsString()
			}
			out = append(out, a)
		}
	}
	return out
}

// walkForward follows one §4.3 path from a primary tuple to the target
// relation, returning matching tuple positions there.
func (w *Web) walkForward(sd *sourceData, path discovery.Path, primaryTupleIdx int) []int {
	curRel := sd.db.Relation(sd.structure.Primary)
	frontier := []int{primaryTupleIdx}
	for _, step := range path.Steps {
		var nextRelName, curCol, nextCol string
		if step.Forward {
			// The path moved referencing -> referenced; walking from the
			// primary side we are at the referencing relation... no: the
			// path starts AT the primary. A Forward step means the edge
			// points from the relation closer to the primary to the next
			// one (closer relation holds the FK).
			curCol = step.Edge.From.FromColumn
			nextRelName = step.Edge.From.ToRelation
			nextCol = step.Edge.From.ToColumn
		} else {
			curCol = step.Edge.From.ToColumn
			nextRelName = step.Edge.From.FromRelation
			nextCol = step.Edge.From.FromColumn
		}
		ci := curRel.Schema.Index(curCol)
		nextRel := sd.db.Relation(nextRelName)
		if ci < 0 || nextRel == nil {
			return nil
		}
		ni := nextRel.Schema.Index(nextCol)
		if ni < 0 {
			return nil
		}
		// Join frontier tuples to the next relation, probing its hash
		// index when the pipeline built one (the FK endpoints of every
		// discovered path are indexed during PrepareAdd) instead of
		// scanning every tuple.
		want := make(map[string]bool)
		var probes []rel.Value
		for _, ti := range frontier {
			v := curRel.Tuples[ti][ci]
			if !v.IsNull() && !want[v.Key()] {
				want[v.Key()] = true
				probes = append(probes, v)
			}
		}
		var next []int
		if idx := nextRel.HashIndex(nextCol); idx != nil {
			for _, v := range probes {
				next = append(next, idx.Lookup(v)...)
			}
			// Restore tuple order (map iteration is unordered) so views
			// match the scan path, then apply the same cap.
			sort.Ints(next)
			if len(next) > maxAnnotationRows {
				next = next[:maxAnnotationRows]
			}
		} else {
			for ti, t := range nextRel.Tuples {
				if t[ni].IsNull() {
					continue
				}
				if want[t[ni].Key()] {
					next = append(next, ti)
					if len(next) >= maxAnnotationRows {
						break
					}
				}
			}
		}
		if len(next) == 0 {
			return nil
		}
		frontier = next
		curRel = nextRel
	}
	return frontier
}

// Crawl walks the link graph breadth-first from start, following all link
// types, up to maxDepth hops — the "specialized search engine can crawl
// the links" behaviour of §1. It returns objects in visit order.
func (w *Web) Crawl(start metadata.ObjectRef, maxDepth int) []metadata.ObjectRef {
	type qitem struct {
		ref   metadata.ObjectRef
		depth int
	}
	visited := map[string]bool{start.Key(): true}
	queue := []qitem{{start, 0}}
	var out []metadata.ObjectRef
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur.ref)
		if cur.depth >= maxDepth {
			continue
		}
		var nbrs []metadata.ObjectRef
		for _, l := range w.repo.LinksOf(cur.ref) {
			other := l.To
			if other.Key() == cur.ref.Key() {
				other = l.From
			}
			nbrs = append(nbrs, other)
		}
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i].Key() < nbrs[j].Key() })
		for _, n := range nbrs {
			if !visited[n.Key()] {
				visited[n.Key()] = true
				queue = append(queue, qitem{n, cur.depth + 1})
			}
		}
	}
	return out
}

// PathRankResult explains the ranking of one object pair.
type PathRankResult struct {
	Paths int
	// Score sums 1/length over distinct simple paths, weighted by the
	// product of link confidences along the path — the "number,
	// consistency, and length of different paths" criterion of [BLM+04].
	Score float64
	// ShortestLen is the length of the shortest connecting path (0 when
	// unconnected).
	ShortestLen int
}

// PathRank scores the connection strength between two objects over the
// link graph, exploring simple paths up to maxLen edges.
func (w *Web) PathRank(a, b metadata.ObjectRef, maxLen int) PathRankResult {
	if maxLen <= 0 {
		maxLen = 3
	}
	var res PathRankResult
	target := b.Key()
	visited := map[string]bool{a.Key(): true}
	var dfs func(cur metadata.ObjectRef, depth int, conf float64)
	dfs = func(cur metadata.ObjectRef, depth int, conf float64) {
		if depth >= maxLen {
			return
		}
		for _, l := range w.repo.LinksOf(cur) {
			other := l.To
			if other.Key() == cur.Key() {
				other = l.From
			}
			c := conf * clamp01(l.Confidence)
			if other.Key() == target {
				res.Paths++
				plen := depth + 1
				res.Score += c / float64(plen)
				if res.ShortestLen == 0 || plen < res.ShortestLen {
					res.ShortestLen = plen
				}
				continue
			}
			if visited[other.Key()] {
				continue
			}
			visited[other.Key()] = true
			dfs(other, depth+1, c)
			delete(visited, other.Key())
		}
	}
	dfs(a, 0, 1)
	return res
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// RankRelated returns the objects best connected to start, ordered by
// PathRank score — the ranked "related objects" view.
func (w *Web) RankRelated(start metadata.ObjectRef, maxLen, limit int) []ScoredRef {
	// Collect candidates within maxLen hops via crawl, then rank each.
	cands := w.Crawl(start, maxLen)
	var out []ScoredRef
	for _, c := range cands {
		if c.Key() == start.Key() {
			continue
		}
		r := w.PathRank(start, c, maxLen)
		out = append(out, ScoredRef{Ref: c, Score: r.Score, Paths: r.Paths})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Ref.Key() < out[j].Ref.Key()
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// ScoredRef is one ranked related object.
type ScoredRef struct {
	Ref   metadata.ObjectRef
	Score float64
	Paths int
}
