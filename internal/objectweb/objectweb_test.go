package objectweb

import (
	"fmt"
	"testing"

	"repro/internal/discovery"
	"repro/internal/metadata"
	"repro/internal/profile"
	"repro/internal/rel"
)

// buildSource creates a small analyzed source with a primary "entry"
// relation and a dependent "note" relation.
func buildSource(t *testing.T, name, accPrefix string, n int) (*rel.Database, *discovery.Structure) {
	t.Helper()
	db := rel.NewDatabase(name)
	entry := db.Create("entry", rel.TextSchema("entry_id", "acc", "label"))
	note := db.Create("note", rel.TextSchema("note_id", "entry_id", "note_text"))
	for i := 0; i < n; i++ {
		entry.AppendRaw(fmt.Sprintf("%d", i+1), fmt.Sprintf("%s%04d", accPrefix, i),
			fmt.Sprintf("object %d label text", i))
		note.AppendRaw(fmt.Sprintf("%d", 2*i+1), fmt.Sprintf("%d", i+1), fmt.Sprintf("first note about %d", i))
		note.AppendRaw(fmt.Sprintf("%d", 2*i+2), fmt.Sprintf("%d", i+1), fmt.Sprintf("second note about %d", i))
	}
	profs, err := profile.ProfileDatabase(db, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := discovery.Analyze(db, profs, discovery.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Primary != "entry" {
		t.Fatalf("%s primary = %q", name, st.Primary)
	}
	return db, st
}

func ref(src, acc string) metadata.ObjectRef {
	return metadata.ObjectRef{Source: src, Relation: "entry", Accession: acc}
}

func setup(t *testing.T) (*Web, *metadata.Repo) {
	t.Helper()
	repo := metadata.NewRepo()
	w := New(repo)
	dbA, stA := buildSource(t, "srca", "AA", 5)
	dbB, stB := buildSource(t, "srcb", "BB", 5)
	if err := w.AddSource(dbA, stA); err != nil {
		t.Fatal(err)
	}
	if err := w.AddSource(dbB, stB); err != nil {
		t.Fatal(err)
	}
	// Cross links: AA000i <-> BB000i, plus one duplicate.
	for i := 0; i < 5; i++ {
		repo.AddLink(metadata.Link{
			Type:       metadata.LinkXRef,
			From:       ref("srca", fmt.Sprintf("AA%04d", i)),
			To:         ref("srcb", fmt.Sprintf("BB%04d", i)),
			Confidence: 1.0, Method: "test",
		})
	}
	repo.AddLink(metadata.Link{
		Type:       metadata.LinkDuplicate,
		From:       ref("srca", "AA0000"),
		To:         ref("srcb", "BB0000"),
		Confidence: 0.9, Method: "dup",
	})
	return w, repo
}

func TestObjectViewFields(t *testing.T) {
	w, _ := setup(t)
	v, err := w.Object(ref("srca", "AA0002"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Fields["label"] != "object 2 label text" {
		t.Errorf("fields = %v", v.Fields)
	}
}

func TestObjectViewAnnotationsDependency(t *testing.T) {
	w, _ := setup(t)
	v, err := w.Object(ref("srca", "AA0002"))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Annotations) != 2 {
		t.Fatalf("annotations = %+v", v.Annotations)
	}
	for _, a := range v.Annotations {
		if a.Relation != "note" {
			t.Errorf("annotation relation = %q", a.Relation)
		}
		if a.Fields["note_text"] == "" {
			t.Errorf("annotation fields = %v", a.Fields)
		}
	}
}

func TestObjectViewSameRelationNeighbors(t *testing.T) {
	w, _ := setup(t)
	v, _ := w.Object(ref("srca", "AA0002"))
	if v.PrevAccession != "AA0001" || v.NextAccession != "AA0003" {
		t.Errorf("neighbors = %q / %q", v.PrevAccession, v.NextAccession)
	}
	first, _ := w.Object(ref("srca", "AA0000"))
	if first.PrevAccession != "" {
		t.Errorf("first object prev = %q", first.PrevAccession)
	}
	last, _ := w.Object(ref("srca", "AA0004"))
	if last.NextAccession != "" {
		t.Errorf("last object next = %q", last.NextAccession)
	}
}

func TestObjectViewLinksAndDuplicates(t *testing.T) {
	w, _ := setup(t)
	v, _ := w.Object(ref("srca", "AA0000"))
	if len(v.Linked) != 1 || v.Linked[0].Type != metadata.LinkXRef {
		t.Errorf("linked = %+v", v.Linked)
	}
	if len(v.Duplicates) != 1 {
		t.Errorf("duplicates = %+v", v.Duplicates)
	}
}

func TestObjectErrors(t *testing.T) {
	w, _ := setup(t)
	if _, err := w.Object(ref("nosrc", "X")); err == nil {
		t.Error("unknown source should error")
	}
	if _, err := w.Object(ref("srca", "NOPE")); err == nil {
		t.Error("unknown accession should error")
	}
}

func TestObjects(t *testing.T) {
	w, _ := setup(t)
	objs := w.Objects("srca")
	if len(objs) != 5 || objs[0].Accession != "AA0000" {
		t.Errorf("objects = %v", objs)
	}
	if w.Objects("nope") != nil {
		t.Error("unknown source should return nil")
	}
}

func TestCrawl(t *testing.T) {
	w, _ := setup(t)
	visited := w.Crawl(ref("srca", "AA0000"), 2)
	// Depth 2 from AA0000: itself, BB0000 (xref+dup), and nothing else
	// (BB0000 only links back).
	if len(visited) != 2 {
		t.Errorf("crawl = %v", visited)
	}
	if visited[0].Accession != "AA0000" {
		t.Errorf("crawl order = %v", visited)
	}
}

func TestCrawlChain(t *testing.T) {
	repo := metadata.NewRepo()
	w := New(repo)
	// Chain a-b-c-d; crawl depth 2 from a reaches a,b,c but not d.
	mk := func(a, b string) metadata.Link {
		return metadata.Link{Type: metadata.LinkXRef,
			From: ref("s", a), To: ref("s", b), Confidence: 1}
	}
	repo.AddLink(mk("a", "b"))
	repo.AddLink(mk("b", "c"))
	repo.AddLink(mk("c", "d"))
	visited := w.Crawl(ref("s", "a"), 2)
	if len(visited) != 3 {
		t.Errorf("crawl = %v", visited)
	}
}

func TestPathRankDirect(t *testing.T) {
	w, _ := setup(t)
	r := w.PathRank(ref("srca", "AA0000"), ref("srcb", "BB0000"), 3)
	// Two direct paths: xref (conf 1.0) and duplicate (conf 0.9).
	if r.Paths != 2 {
		t.Errorf("paths = %d", r.Paths)
	}
	if r.ShortestLen != 1 {
		t.Errorf("shortest = %d", r.ShortestLen)
	}
	want := 1.0 + 0.9
	if r.Score != want {
		t.Errorf("score = %v want %v", r.Score, want)
	}
}

func TestPathRankUnconnected(t *testing.T) {
	w, _ := setup(t)
	r := w.PathRank(ref("srca", "AA0001"), ref("srcb", "BB0003"), 3)
	if r.Paths != 0 || r.Score != 0 || r.ShortestLen != 0 {
		t.Errorf("unconnected rank = %+v", r)
	}
}

func TestPathRankLongerPathsScoreLess(t *testing.T) {
	repo := metadata.NewRepo()
	w := New(repo)
	mk := func(a, b string) metadata.Link {
		return metadata.Link{Type: metadata.LinkXRef, From: ref("s", a), To: ref("s", b), Confidence: 1}
	}
	// direct: a-b. indirect: a-x-y-b.
	repo.AddLink(mk("a", "b"))
	repo.AddLink(mk("a", "x"))
	repo.AddLink(mk("x", "y"))
	repo.AddLink(mk("y", "b"))
	r := w.PathRank(ref("s", "a"), ref("s", "b"), 3)
	if r.Paths != 2 {
		t.Errorf("paths = %d", r.Paths)
	}
	// Score = 1/1 + 1/3.
	if r.Score <= 1.0 || r.Score >= 1.5 {
		t.Errorf("score = %v", r.Score)
	}
	if r.ShortestLen != 1 {
		t.Errorf("shortest = %d", r.ShortestLen)
	}
}

func TestRankRelated(t *testing.T) {
	w, _ := setup(t)
	related := w.RankRelated(ref("srca", "AA0000"), 2, 10)
	if len(related) != 1 {
		t.Fatalf("related = %v", related)
	}
	if related[0].Ref.Accession != "BB0000" {
		t.Errorf("top related = %v", related[0])
	}
	// Two parallel paths (xref + duplicate) -> Paths == 2.
	if related[0].Paths != 2 {
		t.Errorf("paths = %d", related[0].Paths)
	}
}

func TestRankRelatedOrdersByConnectionStrength(t *testing.T) {
	repo := metadata.NewRepo()
	w := New(repo)
	mk := func(a, b string, conf float64) metadata.Link {
		return metadata.Link{Type: metadata.LinkXRef, From: ref("s", a), To: ref("s", b), Confidence: conf}
	}
	repo.AddLink(mk("start", "weak", 0.3))
	repo.AddLink(mk("start", "strong", 0.95))
	related := w.RankRelated(ref("s", "start"), 2, 10)
	if len(related) != 2 {
		t.Fatalf("related = %v", related)
	}
	if related[0].Ref.Accession != "strong" {
		t.Errorf("order = %v", related)
	}
}

func TestAddSourceValidation(t *testing.T) {
	w := New(metadata.NewRepo())
	db := rel.NewDatabase("x")
	if err := w.AddSource(db, nil); err == nil {
		t.Error("nil structure should be rejected")
	}
	if err := w.AddSource(db, &discovery.Structure{}); err == nil {
		t.Error("empty primary should be rejected")
	}
}

func TestRemovedLinkInvisibleInBrowse(t *testing.T) {
	w, repo := setup(t)
	l := metadata.Link{
		Type:       metadata.LinkXRef,
		From:       ref("srca", "AA0000"),
		To:         ref("srcb", "BB0000"),
		Confidence: 1.0, Method: "test",
	}
	repo.RemoveLink(l)
	v, _ := w.Object(ref("srca", "AA0000"))
	if len(v.Linked) != 0 {
		t.Errorf("removed link still browsable: %+v", v.Linked)
	}
}

func TestWebStats(t *testing.T) {
	w, _ := setup(t)
	st := w.Stats()
	if st.Objects != 10 {
		t.Errorf("objects = %d want 10", st.Objects)
	}
	// 5 xref pairs + 1 duplicate: 10 linked objects, 6 links.
	if st.Links != 6 {
		t.Errorf("links = %d", st.Links)
	}
	if st.LinkedObjects != 10 {
		t.Errorf("linked objects = %d", st.LinkedObjects)
	}
	// Each AA000i~BB000i pair is its own component: 5 components of size 2.
	if st.Components != 5 {
		t.Errorf("components = %d", st.Components)
	}
	if st.LargestComponent != 2 {
		t.Errorf("largest = %d", st.LargestComponent)
	}
	if st.MeanDegree <= 1 {
		t.Errorf("mean degree = %v", st.MeanDegree)
	}
	if st.DegreeHistogram[1] == 0 {
		t.Errorf("degree histogram = %v", st.DegreeHistogram)
	}
}

func TestWebStatsEmpty(t *testing.T) {
	w := New(metadata.NewRepo())
	st := w.Stats()
	if st.Objects != 0 || st.Links != 0 || st.Components != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}
