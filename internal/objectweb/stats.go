package objectweb

import (
	"sort"

	"repro/internal/metadata"
)

// WebStats summarizes the discovered object web — the "web of biological
// objects" the paper's introduction describes. Connectivity statistics
// tell a curator at a glance how well a new source got linked in.
type WebStats struct {
	// Objects is the number of primary objects across all sources.
	Objects int
	// LinkedObjects counts objects with at least one repository link.
	LinkedObjects int
	// Links is the number of live links.
	Links int
	// Components is the number of connected components among linked
	// objects (isolated objects are not counted as components).
	Components int
	// LargestComponent is the size of the biggest component.
	LargestComponent int
	// MeanDegree is the average link degree over linked objects.
	MeanDegree float64
	// DegreeHistogram maps degree -> object count (degree >= 1).
	DegreeHistogram map[int]int
}

// Stats computes connectivity statistics over the registered sources and
// the link repository.
func (w *Web) Stats() WebStats {
	st := WebStats{DegreeHistogram: make(map[int]int)}
	// Collect all objects.
	var names []string
	for name := range w.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	var all []metadata.ObjectRef
	for _, name := range names {
		objs := w.Objects(w.sources[name].db.Name)
		st.Objects += len(objs)
		all = append(all, objs...)
	}
	// Degree per object and union-find over link endpoints.
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) {
		if _, ok := parent[a]; !ok {
			parent[a] = a
		}
		if _, ok := parent[b]; !ok {
			parent[b] = b
		}
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	totalDegree := 0
	for _, obj := range all {
		links := w.repo.LinksOf(obj)
		d := len(links)
		if d == 0 {
			continue
		}
		st.LinkedObjects++
		totalDegree += d
		st.DegreeHistogram[d]++
		for _, l := range links {
			union(l.From.Key(), l.To.Key())
		}
	}
	st.Links = w.repo.LinkCount(-1)
	if st.LinkedObjects > 0 {
		st.MeanDegree = float64(totalDegree) / float64(st.LinkedObjects)
	}
	sizes := make(map[string]int)
	for k := range parent {
		sizes[find(k)]++
	}
	for _, n := range sizes {
		st.Components++
		if n > st.LargestComponent {
			st.LargestComponent = n
		}
	}
	return st
}
