package linkdisc

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/discovery"
	"repro/internal/metadata"
	"repro/internal/ontology"
	"repro/internal/profile"
	"repro/internal/rel"
)

// makeSource runs profiling + structural discovery over a database.
func makeSource(t *testing.T, db *rel.Database) *Source {
	t.Helper()
	profs, err := profile.ProfileDatabase(db, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := discovery.Analyze(db, profs, discovery.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return &Source{DB: db, Structure: st, Profiles: profs}
}

// protSeq produces a deterministic pseudo-random protein-ish DNA sequence.
func protSeq(seed, n int) string {
	bases := "ACGT"
	b := make([]byte, n)
	x := uint32(seed*2654435761 + 1)
	for i := range b {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		b[i] = bases[x%4]
	}
	return string(b)
}

// mutateSeq flips roughly rate*len positions deterministically.
func mutateSeq(s string, seed int, rate float64) string {
	bases := "ACGT"
	b := []byte(s)
	x := uint32(seed*1103515245 + 12345)
	step := int(1 / rate)
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(b); i += step {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		b[i] = bases[x%4]
	}
	return string(b)
}

// uniprotLike builds a Swiss-Prot-style source: protein primary relation
// with description + sequence, and a dbref table with composite-encoded
// cross-references to PDB.
func uniprotLike(t *testing.T) *Source {
	db := rel.NewDatabase("uniprot")
	protein := db.Create("protein", rel.TextSchema("protein_id", "accession", "entry_name", "description"))
	seqrel := db.Create("sequence", rel.TextSchema("protein_id", "seq"))
	dbref := db.Create("dbref", rel.TextSchema("dbref_id", "protein_id", "target"))
	descs := []string{
		"Hemoglobin subunit alpha transports oxygen in red blood cells",
		"Myoglobin stores oxygen within muscle tissue fibers",
		"Insulin hormone regulates blood glucose concentration levels",
		"Keratin structural protein of hair nails and skin",
		"Cytochrome c participates in the electron transport chain",
		"Lysozyme enzyme degrades bacterial cell wall peptidoglycan",
		"Trypsin serine protease digests dietary proteins in gut",
		"Catalase enzyme decomposes hydrogen peroxide to water",
		"Tumor suppressor protein regulates the cell division cycle",
		"Albumin carrier protein maintains blood osmotic pressure",
	}
	// Entry names vary in length like real Swiss-Prot names (HBA_HUMAN,
	// K1C9_MOUSE), so the 20% length-spread rule rejects them.
	entryNames := []string{"HBA_HUMAN", "MYG_HUMAN", "INS_RAT", "K1C9_MOUSE",
		"CYC_BOVIN", "ALBU_HUMAN", "LYSC_CHICK", "TRY_PIG", "CATA_HUMAN", "P53_HUMAN"}
	for i := 0; i < 10; i++ {
		acc := fmt.Sprintf("P%05d", 10000+i)
		protein.AppendRaw(fmt.Sprintf("%d", i+1), acc, entryNames[i], descs[i])
		seqrel.AppendRaw(fmt.Sprintf("%d", i+1), protSeq(i, 200))
		// Composite-encoded xref to PDB ("PDB:1AB0" style).
		dbref.AppendRaw(fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", i+1), fmt.Sprintf("PDB:%dXY%d", i+1, i))
	}
	return makeSource(t, db)
}

// pdbLike builds a PDB-style source: structures with accession "1XY0"...,
// mutated copies of the uniprot sequences, and paraphrased descriptions.
func pdbLike(t *testing.T) *Source {
	db := rel.NewDatabase("pdb")
	structure := db.Create("structure", rel.TextSchema("structure_id", "pdb_code", "title"))
	chains := db.Create("chain", rel.TextSchema("chain_id", "structure_id", "chain_seq"))
	titles := []string{
		"Crystal structure of hemoglobin alpha oxygen transport protein",
		"Solution structure of myoglobin oxygen storage muscle protein",
		"Insulin hormone crystal form regulating glucose levels",
		"Keratin filament structural protein fragment",
		"Cytochrome c electron transport chain component structure",
		"Lysozyme bacterial cell wall degrading enzyme structure",
		"Trypsin protease structure with bound inhibitor",
		"Catalase hydrogen peroxide decomposition enzyme",
		"Cell cycle tumor suppressor DNA binding domain",
		"Serum albumin carrier protein crystal structure",
	}
	for i := 0; i < 10; i++ {
		code := fmt.Sprintf("%dXY%d", i+1, i)
		structure.AppendRaw(fmt.Sprintf("%d", i+1), code, titles[i])
		chains.AppendRaw(fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", i+1), mutateSeq(protSeq(i, 200), i, 0.05))
	}
	return makeSource(t, db)
}

// goLike builds a small ontology source.
func goLike(t *testing.T) *Source {
	db := rel.NewDatabase("go")
	term := db.Create("term", rel.TextSchema("term_id", "go_acc", "term_name"))
	for i := 0; i < 5; i++ {
		term.AppendRaw(fmt.Sprintf("%d", i+1), fmt.Sprintf("GO:00%05d", 1000+i),
			fmt.Sprintf("molecular function class %d", i))
	}
	return makeSource(t, db)
}

func TestFixtureStructures(t *testing.T) {
	up := uniprotLike(t)
	if up.Structure.Primary != "protein" {
		t.Fatalf("uniprot primary = %q (scores %v)", up.Structure.Primary, up.Structure.PrimaryScores)
	}
	if up.Structure.PrimaryAccession != "accession" {
		t.Fatalf("uniprot accession col = %q", up.Structure.PrimaryAccession)
	}
	pdb := pdbLike(t)
	if pdb.Structure.Primary != "structure" {
		t.Fatalf("pdb primary = %q (scores %v)", pdb.Structure.Primary, pdb.Structure.PrimaryScores)
	}
}

func newEngine(t *testing.T, opts Options, sources ...*Source) *Engine {
	t.Helper()
	e := New(opts)
	for _, s := range sources {
		if err := e.AddSource(s); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestXRefDiscoveryComposite(t *testing.T) {
	e := newEngine(t, Options{DisableSequenceLinks: true, DisableTextLinks: true, DisableEntityLinks: true},
		uniprotLike(t), pdbLike(t))
	links, xattrs, stats := e.DiscoverAll()
	// The dbref.target attribute must be found as a composite xref.
	found := false
	for _, x := range xattrs {
		if x.FromSource == "uniprot" && x.FromRelation == "dbref" && x.FromColumn == "target" && x.ToSource == "pdb" {
			found = true
			if !x.Composite {
				t.Error("dbref.target should be recognized as composite-encoded")
			}
			if x.MatchFrac < 0.99 {
				t.Errorf("match fraction = %v", x.MatchFrac)
			}
		}
	}
	if !found {
		t.Fatalf("dbref.target xref attribute not found: %+v (stats %+v)", xattrs, stats)
	}
	// All ten object links must be present, linking P1000i -> iXYi.
	xrefLinks := 0
	for _, l := range links {
		if l.Type != metadata.LinkXRef {
			continue
		}
		if l.From.Source == "uniprot" && l.To.Source == "pdb" {
			xrefLinks++
			wantTo := strings.TrimPrefix(l.To.Accession, "")
			if !strings.Contains(wantTo, "XY") {
				t.Errorf("unexpected target accession %q", l.To.Accession)
			}
		}
	}
	if xrefLinks != 10 {
		t.Errorf("uniprot->pdb xref links = %d want 10", xrefLinks)
	}
}

func TestXRefOwnersResolvedThroughPath(t *testing.T) {
	// dbref is a secondary relation: links must be attributed to the
	// owning protein accession, not to dbref surrogate ids.
	e := newEngine(t, Options{DisableSequenceLinks: true, DisableTextLinks: true, DisableEntityLinks: true},
		uniprotLike(t), pdbLike(t))
	links, _, _ := e.DiscoverAll()
	for _, l := range links {
		if l.Type == metadata.LinkXRef && l.From.Source == "uniprot" {
			if !strings.HasPrefix(l.From.Accession, "P1") {
				t.Errorf("xref from-object should be a protein accession, got %q", l.From.Accession)
			}
			if l.From.Relation != "protein" {
				t.Errorf("from relation = %q", l.From.Relation)
			}
		}
	}
}

func TestSequenceLinkDiscovery(t *testing.T) {
	e := newEngine(t, Options{DisableTextLinks: true, DisableEntityLinks: true, MinSeqIdentity: 0.75},
		uniprotLike(t), pdbLike(t))
	links, _, _ := e.DiscoverAll()
	seqLinks := map[string]string{}
	for _, l := range links {
		if l.Type == metadata.LinkSequence && l.From.Source == "uniprot" {
			seqLinks[l.From.Accession] = l.To.Accession
		}
	}
	if len(seqLinks) < 8 {
		t.Fatalf("sequence links = %d want >= 8 (%v)", len(seqLinks), seqLinks)
	}
	// Check correct pairing for a sample: P10000's sequence mutated into
	// structure 1XY0.
	if got := seqLinks["P10000"]; got != "1XY0" {
		t.Errorf("P10000 homolog = %q want 1XY0", got)
	}
}

func TestTextLinkDiscovery(t *testing.T) {
	e := newEngine(t, Options{DisableSequenceLinks: true, DisableEntityLinks: true, MinTextCosine: 0.3},
		uniprotLike(t), pdbLike(t))
	links, _, stats := e.DiscoverAll()
	textLinks := 0
	correct := 0
	for _, l := range links {
		if l.Type != metadata.LinkText {
			continue
		}
		textLinks++
		// Description i and title i share topic words; matched pairs
		// should mostly be the aligned indexes.
		var fi, ti int
		if l.From.Source == "uniprot" {
			fmt.Sscanf(l.From.Accession, "P%d", &fi)
			fi -= 10000
			fmt.Sscanf(strings.TrimRight(l.To.Accession[:1], "XY"), "%d", &ti)
			ti--
		} else {
			continue
		}
		if fi == ti {
			correct++
		}
	}
	if textLinks == 0 {
		t.Fatalf("no text links (stats %+v)", stats)
	}
	if correct == 0 {
		t.Errorf("no correctly aligned text links out of %d", textLinks)
	}
	if stats.TextComparisons == 0 {
		t.Error("text comparisons not counted")
	}
}

func TestEntityLinkDiscovery(t *testing.T) {
	// Build a disease source whose text mentions uniprot entry names.
	db := rel.NewDatabase("omim")
	disease := db.Create("disease", rel.TextSchema("disease_id", "mim_acc", "disease_text"))
	disease.AppendRaw("1", "MIM00001", "Anemia involves the HBA_HUMAN gene product in erythrocytes")
	disease.AppendRaw("2", "MIM00002", "Diabetes relates to INS_RAT hormone signaling pathway")
	disease.AppendRaw("3", "MIM00003", "This disease mentions no known protein names at all here")
	omim := makeSource(t, db)
	if omim.Structure.Primary != "disease" {
		t.Fatalf("omim primary = %q", omim.Structure.Primary)
	}
	e := newEngine(t, Options{DisableSequenceLinks: true, DisableTextLinks: true},
		omim, uniprotLike(t))
	links, _, _ := e.DiscoverAll()
	entity := map[string]string{}
	for _, l := range links {
		if l.Type == metadata.LinkText && strings.HasPrefix(l.Method, "entity:") {
			entity[l.From.Accession] = l.To.Accession
		}
	}
	if entity["MIM00001"] != "P10000" {
		t.Errorf("MIM00001 should link to P10000 via ENTRY0_HUMAN: %v", entity)
	}
	if entity["MIM00002"] != "P10002" {
		t.Errorf("MIM00002 should link to P10002: %v", entity)
	}
	if _, ok := entity["MIM00003"]; ok {
		t.Error("MIM00003 has no entity mentions but got a link")
	}
}

func TestOntologyDerivedLinks(t *testing.T) {
	// Two sources whose objects xref the same GO terms.
	mk := func(name, accPrefix string) *Source {
		db := rel.NewDatabase(name)
		main := db.Create("main", rel.TextSchema("main_id", "acc", "go_ref"))
		for i := 0; i < 6; i++ {
			// Objects i and i+1 share term GO:0001000+i/2*... simpler:
			// object i references term i%3.
			main.AppendRaw(fmt.Sprintf("%d", i+1),
				fmt.Sprintf("%s%04d", accPrefix, i),
				fmt.Sprintf("GO:00%05d", 1000+(i%3)))
		}
		return makeSource(t, db)
	}
	a, b, g := mk("srca", "AA"), mk("srcb", "BB"), goLike(t)
	e := newEngine(t, Options{DisableSequenceLinks: true, DisableTextLinks: true, DisableEntityLinks: true},
		a, b, g)
	links, _, _ := e.DiscoverAll()
	derived := e.DeriveOntologyLinks(links, "go")
	if len(derived) == 0 {
		t.Fatalf("no derived ontology links; base links: %d", len(links))
	}
	crossOnly := true
	for _, l := range derived {
		if l.Type != metadata.LinkOntology {
			t.Errorf("wrong type %v", l.Type)
		}
		if strings.EqualFold(l.From.Source, l.To.Source) {
			crossOnly = false
		}
	}
	if !crossOnly {
		t.Error("derived links must connect different sources")
	}
}

func TestOntologyFanoutCap(t *testing.T) {
	// A hub term referenced by many objects must be skipped.
	var links []metadata.Link
	for i := 0; i < 30; i++ {
		links = append(links, metadata.Link{
			Type: metadata.LinkXRef,
			From: metadata.ObjectRef{Source: fmt.Sprintf("s%d", i%2), Relation: "m", Accession: fmt.Sprintf("A%d", i)},
			To:   metadata.ObjectRef{Source: "go", Relation: "term", Accession: "GO:HUB"},
		})
	}
	e := New(Options{MaxSharedTermFanout: 25})
	derived := e.DeriveOntologyLinks(links, "go")
	if len(derived) != 0 {
		t.Errorf("hub term should be skipped, got %d links", len(derived))
	}
}

func TestPruningAblation(t *testing.T) {
	up, pdb := uniprotLike(t), pdbLike(t)
	e1 := newEngine(t, Options{DisableSequenceLinks: true, DisableTextLinks: true, DisableEntityLinks: true}, up, pdb)
	_, _, with := e1.DiscoverAll()
	e2 := newEngine(t, Options{DisablePruning: true, DisableSequenceLinks: true, DisableTextLinks: true, DisableEntityLinks: true}, up, pdb)
	_, _, without := e2.DiscoverAll()
	if with.AttributePairsChecked >= without.AttributePairsChecked {
		t.Errorf("pruning should reduce checked pairs: with=%d without=%d",
			with.AttributePairsChecked, without.AttributePairsChecked)
	}
	if with.AttributePairsPruned == 0 {
		t.Error("pruned counter not incremented")
	}
}

func TestDiscoverForIncremental(t *testing.T) {
	up, pdb := uniprotLike(t), pdbLike(t)
	e := newEngine(t, Options{DisableSequenceLinks: true, DisableTextLinks: true, DisableEntityLinks: true}, up, pdb)
	links, _, _, err := e.DiscoverFor("pdb")
	if err != nil {
		t.Fatal(err)
	}
	// Incremental discovery for pdb must find the same uniprot->pdb links
	// as the full run (both directions are tried).
	n := 0
	for _, l := range links {
		if l.Type == metadata.LinkXRef && l.From.Source == "uniprot" {
			n++
		}
	}
	if n != 10 {
		t.Errorf("incremental xref links = %d want 10", n)
	}
	if _, _, _, err := e.DiscoverFor("nope"); err == nil {
		t.Error("unknown source should error")
	}
}

func TestAddSourceValidation(t *testing.T) {
	e := New(Options{})
	if err := e.AddSource(&Source{DB: rel.NewDatabase("x")}); err == nil {
		t.Error("source without structure should be rejected")
	}
	s := uniprotLike(t)
	if err := e.AddSource(s); err != nil {
		t.Fatal(err)
	}
	dup := uniprotLike(t)
	if err := e.AddSource(dup); err == nil {
		t.Error("duplicate source name should be rejected")
	}
}

func TestCompositeParts(t *testing.T) {
	cases := []struct {
		in   string
		want string // expected extractable accession part
	}{
		{"Uniprot:P11140", "P11140"},
		{"PDB/1ABC", "1ABC"},
		{"db|X99999", "X99999"},
		{"acc=GO123", "GO123"},
		{"plain", "plain"},
	}
	for _, c := range cases {
		parts := CompositeParts(c.in)
		found := false
		for _, p := range parts {
			if p == c.want {
				found = true
			}
		}
		if !found {
			t.Errorf("CompositeParts(%q) = %v; missing %q", c.in, parts, c.want)
		}
	}
	if parts := CompositeParts("  "); parts != nil {
		t.Errorf("blank input = %v", parts)
	}
}

func TestResolverPrimaryAndSecondary(t *testing.T) {
	up := uniprotLike(t)
	up.resolver = newResolver(up.DB, up.Structure)
	// Primary relation tuple 0 -> its own accession.
	owners := up.resolver.owners("protein", 0)
	if len(owners) != 1 || owners[0] != "P10000" {
		t.Errorf("primary owners = %v", owners)
	}
	// dbref tuple 3 belongs to protein 4 (P10003).
	owners = up.resolver.owners("dbref", 3)
	if len(owners) != 1 || owners[0] != "P10003" {
		t.Errorf("dbref owners = %v", owners)
	}
}

func TestResolverMissingRelation(t *testing.T) {
	up := uniprotLike(t)
	up.resolver = newResolver(up.DB, up.Structure)
	if owners := up.resolver.owners("nosuch", 0); owners != nil {
		t.Errorf("missing relation owners = %v", owners)
	}
}

// TestResolverTwoHopOwnership checks ownership resolution through a
// bridge table: primary <- bridge -> leaf; a tuple in leaf must resolve
// to the primary objects that reference it through the bridge.
func TestResolverTwoHopOwnership(t *testing.T) {
	db := rel.NewDatabase("twohop")
	protein := db.Create("protein", rel.TextSchema("protein_id", "acc"))
	bridge := db.Create("protein_term", rel.TextSchema("protein_id", "term_id"))
	term := db.Create("term", rel.TextSchema("term_id", "term_label"))
	for i := 1; i <= 6; i++ {
		protein.AppendRaw(fmt.Sprintf("%d", i), fmt.Sprintf("AC%04d", i))
	}
	for i := 1; i <= 3; i++ {
		term.AppendRaw(fmt.Sprintf("%d", 70+i), fmt.Sprintf("label-%d", i))
	}
	// proteins 1,4 -> term 71; 2,5 -> 72; 3,6 -> 73.
	for i := 1; i <= 6; i++ {
		bridge.AppendRaw(fmt.Sprintf("%d", i), fmt.Sprintf("%d", 70+((i-1)%3)+1))
	}
	src := makeSource(t, db)
	if src.Structure.Primary != "protein" {
		t.Fatalf("primary = %q", src.Structure.Primary)
	}
	src.resolver = newResolver(db, src.Structure)
	// term tuple 0 (term 71) is owned by proteins 1 and 4.
	owners := src.resolver.owners("term", 0)
	if len(owners) != 2 {
		t.Fatalf("owners = %v", owners)
	}
	want := map[string]bool{"AC0001": true, "AC0004": true}
	for _, o := range owners {
		if !want[o] {
			t.Errorf("unexpected owner %q", o)
		}
	}
	// bridge tuple 1 (protein 2) -> single owner AC0002.
	owners = src.resolver.owners("protein_term", 1)
	if len(owners) != 1 || owners[0] != "AC0002" {
		t.Errorf("bridge owners = %v", owners)
	}
}

// TestHierarchicalOntologyLinks links objects whose terms differ but are
// close in the is_a hierarchy.
func TestHierarchicalOntologyLinks(t *testing.T) {
	h := ontology.New()
	h.AddIsA("GO:CHILD1", "GO:PARENT")
	h.AddIsA("GO:CHILD2", "GO:PARENT")
	h.AddIsA("GO:PARENT", "GO:ROOT")
	h.AddIsA("GO:FAR", "GO:ROOT")

	mkRef := func(src, acc string) metadata.ObjectRef {
		return metadata.ObjectRef{Source: src, Relation: "m", Accession: acc}
	}
	links := []metadata.Link{
		{Type: metadata.LinkXRef, From: mkRef("s1", "A1"), To: mkRef("go", "GO:CHILD1")},
		{Type: metadata.LinkXRef, From: mkRef("s2", "B1"), To: mkRef("go", "GO:CHILD2")},
		{Type: metadata.LinkXRef, From: mkRef("s2", "B2"), To: mkRef("go", "GO:FAR")},
	}
	e := New(Options{})
	derived := e.DeriveOntologyLinksHierarchical(links, "go", h, 0.5)
	// CHILD1~CHILD2 similarity: lca PARENT depth 1, depths 2+2 -> 0.5 >= 0.5.
	found := false
	for _, l := range derived {
		if l.Type != metadata.LinkOntology {
			t.Errorf("type = %v", l.Type)
		}
		pair := l.From.Accession + "~" + l.To.Accession
		if pair == "A1~B1" || pair == "B1~A1" {
			found = true
			if l.Confidence != 0.5 {
				t.Errorf("confidence = %v", l.Confidence)
			}
		}
		if strings.Contains(pair, "B2") {
			t.Errorf("far term should not link: %v", l)
		}
	}
	if !found {
		t.Errorf("sibling-term link missing: %v", derived)
	}
	// Without the hierarchy, no links (no exact shared terms).
	if plain := e.DeriveOntologyLinks(links, "go"); len(plain) != 0 {
		t.Errorf("plain derivation should find nothing: %v", plain)
	}
}
