// Package linkdisc implements ALADIN's link discovery step (§4.4): it
// finds explicit cross-references between data sources (accession values
// of one source appearing — possibly inside composite strings such as
// "Uniprot:P11140" — in attributes of another) and implicit links based on
// sequence homology, text similarity, recognized entity names, and shared
// ontology terms. Discovered links are object-level and are stored in the
// metadata repository "to avoid repeated discovery and computation at
// query time".
package linkdisc

import (
	"strings"
	"sync"

	"repro/internal/discovery"
	"repro/internal/rel"
)

// resolver maps any tuple of a source to the accession(s) of the primary
// object(s) that own it, by walking the discovered secondary-object paths
// (§4.3) backwards from the tuple's relation to the primary relation.
// It is safe for concurrent use: the lazily built column indexes are the
// only mutable state and are guarded by mu.
type resolver struct {
	db        *rel.Database
	structure *discovery.Structure
	// accIdx is the primary relation's accession column index.
	accIdx int
	// mu guards indexes, which concurrent link-discovery workers populate
	// lazily.
	mu sync.Mutex
	// indexes caches hash indexes on (relation, column) pairs.
	indexes map[string]map[string][]int
}

func newResolver(db *rel.Database, s *discovery.Structure) *resolver {
	r := &resolver{db: db, structure: s, accIdx: -1, indexes: make(map[string]map[string][]int)}
	if s.Primary != "" {
		if pr := db.Relation(s.Primary); pr != nil {
			r.accIdx = pr.Schema.Index(s.PrimaryAccession)
		}
	}
	return r
}

// index returns (building lazily) a hash index value-key -> tuple positions
// for one relation column. The returned index is never mutated again, so
// callers may read it without holding the lock.
func (r *resolver) index(relName, col string) map[string][]int {
	key := strings.ToLower(relName) + "." + strings.ToLower(col)
	r.mu.Lock()
	defer r.mu.Unlock()
	if ix, ok := r.indexes[key]; ok {
		return ix
	}
	ix := make(map[string][]int)
	rr := r.db.Relation(relName)
	if rr != nil {
		ci := rr.Schema.Index(col)
		if ci >= 0 {
			for ti, t := range rr.Tuples {
				v := t[ci]
				if v.IsNull() {
					continue
				}
				ix[v.Key()] = append(ix[v.Key()], ti)
			}
		}
	}
	r.indexes[key] = ix
	return ix
}

// maxOwners caps fan-out while walking paths backwards.
const maxOwners = 16

// owners returns the accession values of the primary objects owning the
// tuple at position tupleIdx of relName. For the primary relation itself
// this is the tuple's own accession.
func (r *resolver) owners(relName string, tupleIdx int) []string {
	if r.structure == nil || r.structure.Primary == "" || r.accIdx < 0 {
		return nil
	}
	rr := r.db.Relation(relName)
	if rr == nil || tupleIdx >= len(rr.Tuples) {
		return nil
	}
	if strings.EqualFold(relName, r.structure.Primary) {
		v := rr.Tuples[tupleIdx][r.accIdx]
		if v.IsNull() {
			return nil
		}
		return []string{v.AsString()}
	}
	paths := r.structure.Paths[strings.ToLower(relName)]
	if len(paths) == 0 {
		return nil
	}
	// Use the shortest path (paths are sorted by length).
	path := paths[0]
	// Current frontier: tuple positions in the current relation; walk the
	// path backwards toward the primary relation.
	frontier := []int{tupleIdx}
	curRel := rr
	for i := len(path.Steps) - 1; i >= 0; i-- {
		step := path.Steps[i]
		var prevRelName, curCol, prevCol string
		if step.Forward {
			// Edge was traversed referencing -> referenced, i.e. the
			// previous relation on the path is the referencing side.
			prevRelName = step.Edge.From.FromRelation
			prevCol = step.Edge.From.FromColumn
			curCol = step.Edge.From.ToColumn
		} else {
			prevRelName = step.Edge.From.ToRelation
			prevCol = step.Edge.From.ToColumn
			curCol = step.Edge.From.FromColumn
		}
		curColIdx := curRel.Schema.Index(curCol)
		if curColIdx < 0 {
			return nil
		}
		ix := r.index(prevRelName, prevCol)
		var next []int
		seen := make(map[int]bool)
		for _, ti := range frontier {
			v := curRel.Tuples[ti][curColIdx]
			if v.IsNull() {
				continue
			}
			for _, pi := range ix[v.Key()] {
				if !seen[pi] {
					seen[pi] = true
					next = append(next, pi)
					if len(next) >= maxOwners {
						break
					}
				}
			}
			if len(next) >= maxOwners {
				break
			}
		}
		if len(next) == 0 {
			return nil
		}
		frontier = next
		curRel = r.db.Relation(prevRelName)
		if curRel == nil {
			return nil
		}
	}
	// curRel is now the primary relation.
	var out []string
	seen := make(map[string]bool)
	for _, ti := range frontier {
		v := curRel.Tuples[ti][r.accIdx]
		if v.IsNull() {
			continue
		}
		s := v.AsString()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
