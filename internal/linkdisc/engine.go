package linkdisc

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/discovery"
	"repro/internal/metadata"
	"repro/internal/ontology"
	"repro/internal/parallel"
	"repro/internal/profile"
	"repro/internal/rel"
	"repro/internal/seq"
	"repro/internal/textmine"
)

// Source bundles one imported data source with its discovered structure
// and statistics — the inputs link discovery needs.
type Source struct {
	DB        *rel.Database
	Structure *discovery.Structure
	Profiles  map[string]*profile.ColumnProfile

	resolver *resolver
}

// Name returns the source name.
func (s *Source) Name() string { return s.DB.Name }

// Options tunes link discovery.
type Options struct {
	// MinXRefMatchFrac is the fraction of a candidate attribute's distinct
	// values that must resolve to accessions of a target source before the
	// attribute pair is declared a cross-reference (default 0.05: xref
	// columns routinely mix targets of many databases, as Swiss-Prot's DR
	// lines do, so per-target fractions are small; §5 matches values, not
	// whole attributes).
	MinXRefMatchFrac float64
	// MinXRefMatchCount additionally requires this many distinct values to
	// resolve, suppressing coincidental single-value collisions
	// (default 3).
	MinXRefMatchCount int
	// MinSeqIdentity is the identity threshold for sequence links
	// (default 0.7).
	MinSeqIdentity float64
	// SeqMinScore is the minimal alignment score (default 40).
	SeqMinScore int
	// SeqKmer is the seeding k-mer length (default 8).
	SeqKmer int
	// SeqBothStrands searches the reverse complement too, linking
	// sequences stored on opposite DNA strands.
	SeqBothStrands bool
	// MinTextCosine is the TF-IDF cosine threshold for text links
	// (default 0.55).
	MinTextCosine float64
	// MaxSharedTermFanout skips ontology terms referenced by more than
	// this many objects when deriving term-sharing links (default 25).
	MaxSharedTermFanout int
	// DisablePruning turns off the §4.4 attribute pruning rules (numeric
	// exclusion, low-distinct exclusion, key-target-only) for the E10
	// ablation.
	DisablePruning bool
	// DisableSequenceLinks, DisableTextLinks, DisableEntityLinks,
	// DisableOntologyLinks switch off individual implicit-link channels.
	DisableSequenceLinks bool
	DisableTextLinks     bool
	DisableEntityLinks   bool
	DisableOntologyLinks bool
	// Workers bounds the worker pool parallelizing the per-attribute and
	// per-tuple inner loops of each discovery channel. Values <= 1 run
	// serially; results are identical for any worker count.
	Workers int
}

func (o *Options) fill() {
	if o.MinXRefMatchFrac <= 0 {
		o.MinXRefMatchFrac = 0.05
	}
	if o.MinXRefMatchCount <= 0 {
		o.MinXRefMatchCount = 3
	}
	if o.MinSeqIdentity <= 0 {
		o.MinSeqIdentity = 0.7
	}
	if o.SeqMinScore <= 0 {
		o.SeqMinScore = 40
	}
	if o.SeqKmer <= 0 {
		o.SeqKmer = 8
	}
	if o.MinTextCosine <= 0 {
		o.MinTextCosine = 0.55
	}
	if o.MaxSharedTermFanout <= 0 {
		o.MaxSharedTermFanout = 25
	}
}

// Stats reports the work link discovery performed.
type Stats struct {
	AttributePairsConsidered int
	AttributePairsPruned     int
	AttributePairsChecked    int
	XRefAttributePairs       int
	SequenceComparisons      int
	TextComparisons          int
	Links                    int
}

// XRefAttribute records one discovered cross-reference attribute pair:
// values of From (in some relation of the From source) point at accessions
// of the To source's primary relation.
type XRefAttribute struct {
	FromSource   string
	FromRelation string
	FromColumn   string
	ToSource     string
	// MatchFrac is the fraction of distinct source values resolving to
	// target accessions.
	MatchFrac float64
	// Composite is true when values embed the accession in a composite
	// string ("Uniprot:P11140") rather than matching directly.
	Composite bool
}

// Engine discovers links between sources.
type Engine struct {
	opts    Options
	sources []*Source
	byName  map[string]*Source
}

// New creates an engine.
func New(opts Options) *Engine {
	opts.fill()
	return &Engine{opts: opts, byName: make(map[string]*Source)}
}

// AddSource registers a source for linking. Sources must have completed
// discovery steps 2+3 (Structure non-nil).
func (e *Engine) AddSource(s *Source) error {
	if s.Structure == nil {
		return fmt.Errorf("linkdisc: source %q has no discovered structure", s.DB.Name)
	}
	if s.resolver == nil {
		s.resolver = newResolver(s.DB, s.Structure)
	}
	key := strings.ToLower(s.DB.Name)
	if _, dup := e.byName[key]; dup {
		return fmt.Errorf("linkdisc: source %q already added", s.DB.Name)
	}
	e.sources = append(e.sources, s)
	e.byName[key] = s
	return nil
}

// Source returns a registered source by name.
func (e *Engine) Source(name string) *Source { return e.byName[strings.ToLower(name)] }

// RemoveSource deregisters a source (the unwind path when integration
// fails after the source was added). It reports whether the source was
// registered.
func (e *Engine) RemoveSource(name string) bool {
	key := strings.ToLower(name)
	src, ok := e.byName[key]
	if !ok {
		return false
	}
	delete(e.byName, key)
	for i, s := range e.sources {
		if s == src {
			e.sources = append(e.sources[:i], e.sources[i+1:]...)
			break
		}
	}
	return true
}

// DiscoverAll runs link discovery between every ordered pair of distinct
// sources and returns the links plus per-pair xref attributes.
func (e *Engine) DiscoverAll() ([]metadata.Link, []XRefAttribute, Stats) {
	ctx := context.Background()
	var links []metadata.Link
	var xattrs []XRefAttribute
	var stats Stats
	for _, from := range e.sources {
		for _, to := range e.sources {
			if from == to {
				continue
			}
			ls, xs, st, _ := e.discoverPair(ctx, from, to)
			links = append(links, ls...)
			xattrs = append(xattrs, xs...)
			addStats(&stats, st)
		}
	}
	stats.Links = len(links)
	return links, xattrs, stats
}

// DiscoverFor runs link discovery between one (newly added) source and all
// other registered sources, in both directions — the incremental addition
// mode of §3.
func (e *Engine) DiscoverFor(name string) ([]metadata.Link, []XRefAttribute, Stats, error) {
	return e.DiscoverForContext(context.Background(), name)
}

// DiscoverForContext is DiscoverFor with cancellation: when ctx is
// canceled the partial result is discarded and ctx.Err() is returned.
func (e *Engine) DiscoverForContext(ctx context.Context, name string) ([]metadata.Link, []XRefAttribute, Stats, error) {
	nu := e.Source(name)
	if nu == nil {
		return nil, nil, Stats{}, fmt.Errorf("linkdisc: unknown source %q", name)
	}
	return e.discoverBothWays(ctx, nu)
}

// DiscoverAgainst runs link discovery between a candidate source and all
// registered sources — in both directions — WITHOUT registering the
// candidate. This is the compute half of a snapshot-then-commit source
// addition: the engine's registered set is only read, so arbitrarily many
// readers may use the engine concurrently while a candidate is analyzed,
// and registration (AddSource) happens later under the caller's write
// lock. The candidate's resolver is built here if missing.
func (e *Engine) DiscoverAgainst(ctx context.Context, nu *Source) ([]metadata.Link, []XRefAttribute, Stats, error) {
	if nu.Structure == nil {
		return nil, nil, Stats{}, fmt.Errorf("linkdisc: source %q has no discovered structure", nu.DB.Name)
	}
	if s := e.Source(nu.DB.Name); s != nil {
		return nil, nil, Stats{}, fmt.Errorf("linkdisc: source %q already added", nu.DB.Name)
	}
	if nu.resolver == nil {
		nu.resolver = newResolver(nu.DB, nu.Structure)
	}
	return e.discoverBothWays(ctx, nu)
}

// DiscoverAppended runs link discovery between a batch of records being
// appended to an already-registered source and all *other* registered
// sources, in both directions. nu carries the batch tuples only (its DB
// holds just the appended records) under the registered source's name,
// structure, and profiles; links against the registered copy of the same
// source are skipped — those would be intra-source links, which ALADIN
// does not model. Like DiscoverAgainst this only reads the registered
// set, so it runs off-lock in the prepare half of a batch commit.
func (e *Engine) DiscoverAppended(ctx context.Context, nu *Source) ([]metadata.Link, []XRefAttribute, Stats, error) {
	if nu.Structure == nil {
		return nil, nil, Stats{}, fmt.Errorf("linkdisc: source %q has no discovered structure", nu.DB.Name)
	}
	if e.Source(nu.DB.Name) == nil {
		return nil, nil, Stats{}, fmt.Errorf("linkdisc: append to unregistered source %q", nu.DB.Name)
	}
	if nu.resolver == nil {
		nu.resolver = newResolver(nu.DB, nu.Structure)
	}
	return e.discoverBothWays(ctx, nu)
}

// RefreshResolver rebuilds a registered source's resolver after tuples
// were appended to its relations, so the next discovery resolves against
// the grown relations. Cheap: the constructor is O(1) and the per-column
// indexes rebuild lazily on next use.
func (e *Engine) RefreshResolver(name string) {
	if s := e.Source(name); s != nil {
		s.resolver = newResolver(s.DB, s.Structure)
	}
}

// discoverBothWays discovers links between nu and every *other* registered
// source, in both directions. A registered source with nu's name is also
// skipped, so an append batch (DiscoverAppended) is never linked against
// the source it extends.
func (e *Engine) discoverBothWays(ctx context.Context, nu *Source) ([]metadata.Link, []XRefAttribute, Stats, error) {
	var links []metadata.Link
	var xattrs []XRefAttribute
	var stats Stats
	for _, other := range e.sources {
		if other == nu || strings.EqualFold(other.DB.Name, nu.DB.Name) {
			continue
		}
		ls, xs, st, err := e.discoverPair(ctx, nu, other)
		if err != nil {
			return nil, nil, Stats{}, err
		}
		links = append(links, ls...)
		xattrs = append(xattrs, xs...)
		addStats(&stats, st)
		ls, xs, st, err = e.discoverPair(ctx, other, nu)
		if err != nil {
			return nil, nil, Stats{}, err
		}
		links = append(links, ls...)
		xattrs = append(xattrs, xs...)
		addStats(&stats, st)
	}
	stats.Links = len(links)
	return links, xattrs, stats, nil
}

func addStats(dst *Stats, s Stats) {
	dst.AttributePairsConsidered += s.AttributePairsConsidered
	dst.AttributePairsPruned += s.AttributePairsPruned
	dst.AttributePairsChecked += s.AttributePairsChecked
	dst.XRefAttributePairs += s.XRefAttributePairs
	dst.SequenceComparisons += s.SequenceComparisons
	dst.TextComparisons += s.TextComparisons
}

// discoverPair finds links from objects of `from` to objects of `to`.
func (e *Engine) discoverPair(ctx context.Context, from, to *Source) ([]metadata.Link, []XRefAttribute, Stats, error) {
	var links []metadata.Link
	var stats Stats
	xls, xattrs, xst, err := e.discoverXRefs(ctx, from, to)
	if err != nil {
		return nil, nil, Stats{}, err
	}
	links = append(links, xls...)
	addStats(&stats, xst)
	if !e.opts.DisableSequenceLinks {
		sls, n, err := e.discoverSequenceLinks(ctx, from, to)
		if err != nil {
			return nil, nil, Stats{}, err
		}
		links = append(links, sls...)
		stats.SequenceComparisons += n
	}
	if !e.opts.DisableTextLinks {
		tls, n, err := e.discoverTextLinks(ctx, from, to)
		if err != nil {
			return nil, nil, Stats{}, err
		}
		links = append(links, tls...)
		stats.TextComparisons += n
	}
	if !e.opts.DisableEntityLinks {
		els, err := e.discoverEntityLinks(ctx, from, to)
		if err != nil {
			return nil, nil, Stats{}, err
		}
		links = append(links, els...)
	}
	return links, xattrs, stats, nil
}

// primaryRef builds an ObjectRef for a primary object of s.
func primaryRef(s *Source, accession string) metadata.ObjectRef {
	return metadata.ObjectRef{
		Source:    s.DB.Name,
		Relation:  s.Structure.Primary,
		Accession: accession,
	}
}

// accessionSet returns the distinct accession values of a source's
// primary relation as a set, plus the list form.
func accessionSet(s *Source) map[string]bool {
	out := make(map[string]bool)
	if s.Structure.Primary == "" {
		return out
	}
	p := s.Profiles[profile.Key(s.Structure.Primary, s.Structure.PrimaryAccession)]
	if p != nil && p.DistinctValues != nil {
		for _, v := range p.DistinctValues {
			out[v.AsString()] = true
		}
		return out
	}
	pr := s.DB.Relation(s.Structure.Primary)
	if pr == nil {
		return out
	}
	vals, err := pr.DistinctValues(s.Structure.PrimaryAccession)
	if err != nil {
		return out
	}
	for _, v := range vals {
		out[v.AsString()] = true
	}
	return out
}

// CompositeParts returns the accession candidates embedded in a raw
// cross-reference value: the value itself plus the trailing segment after
// common separators (":", "/", "|", "=") — handling encodings such as
// "Uniprot:P11140" (§4.4).
func CompositeParts(v string) []string {
	v = strings.TrimSpace(v)
	if v == "" {
		return nil
	}
	parts := []string{v}
	for _, sep := range []string{":", "/", "|", "="} {
		if i := strings.LastIndex(v, sep); i >= 0 && i+1 < len(v) {
			parts = append(parts, strings.TrimSpace(v[i+1:]))
		}
	}
	return parts
}

// discoverXRefs implements explicit link discovery: candidate targets are
// the accession fields of primary relations of other sources; candidate
// sources are all attributes, pruned per §4.4.
func (e *Engine) discoverXRefs(ctx context.Context, from, to *Source) ([]metadata.Link, []XRefAttribute, Stats, error) {
	var stats Stats
	var links []metadata.Link
	var xattrs []XRefAttribute
	if to.Structure.Primary == "" || from.Structure.Primary == "" {
		return nil, nil, stats, nil
	}
	targetAcc := accessionSet(to)
	if len(targetAcc) == 0 {
		return nil, nil, stats, nil
	}
	// Candidate generation and §4.4 pruning are cheap and stay serial; the
	// value scans checking each surviving attribute run on the worker
	// pool, writing into indexed slots so output order stays the serial
	// order.
	type task struct {
		r   *rel.Relation
		col string
	}
	var tasks []task
	for _, r := range from.DB.Relations() {
		for _, c := range r.Schema.Columns {
			p := from.Profiles[profile.Key(r.Name, c.Name)]
			if p == nil {
				continue
			}
			stats.AttributePairsConsidered++
			if !e.opts.DisablePruning {
				// §4.4 pruning: exclude purely numeric attributes (to
				// avoid misinterpreting surrogate keys), attributes with
				// few distinct values, and long free-text / sequence
				// fields (handled by the implicit channels).
				if p.PurelyNumeric || p.Distinct < 2 || p.IsSequenceField() || p.IsTextField() {
					stats.AttributePairsPruned++
					continue
				}
			}
			tasks = append(tasks, task{r, c.Name})
		}
	}
	stats.AttributePairsChecked = len(tasks)

	type taskResult struct {
		hit       bool
		xattr     XRefAttribute
		taskLinks []metadata.Link
	}
	results := make([]taskResult, len(tasks))
	if err := parallel.For(ctx, e.opts.Workers, len(tasks), func(i int) {
		t := tasks[i]
		matchFrac, matched, composite := xrefMatchFraction(t.r, t.col, targetAcc)
		if matchFrac < e.opts.MinXRefMatchFrac || matched < e.opts.MinXRefMatchCount {
			return
		}
		results[i] = taskResult{
			hit: true,
			xattr: XRefAttribute{
				FromSource: from.DB.Name, FromRelation: t.r.Name, FromColumn: t.col,
				ToSource: to.DB.Name, MatchFrac: matchFrac, Composite: composite,
			},
			taskLinks: e.xrefObjectLinks(from, to, t.r, t.col, targetAcc, matchFrac),
		}
	}); err != nil {
		return nil, nil, Stats{}, err
	}
	for _, res := range results {
		if !res.hit {
			continue
		}
		stats.XRefAttributePairs++
		xattrs = append(xattrs, res.xattr)
		links = append(links, res.taskLinks...)
	}
	return links, xattrs, stats, nil
}

// xrefMatchFraction computes the fraction and count of distinct values of
// r.col that resolve (directly or via composite parts) to target
// accessions.
func xrefMatchFraction(r *rel.Relation, col string, targetAcc map[string]bool) (float64, int, bool) {
	vals, err := r.DistinctValues(col)
	if err != nil || len(vals) == 0 {
		return 0, 0, false
	}
	direct, viaComposite := 0, 0
	for _, v := range vals {
		s := v.AsString()
		if targetAcc[s] {
			direct++
			continue
		}
		for _, part := range CompositeParts(s)[1:] {
			if targetAcc[part] {
				viaComposite++
				break
			}
		}
	}
	frac := float64(direct+viaComposite) / float64(len(vals))
	return frac, direct + viaComposite, viaComposite > direct
}

// xrefObjectLinks emits the object-level links for one discovered xref
// attribute pair.
func (e *Engine) xrefObjectLinks(from, to *Source, r *rel.Relation, col string,
	targetAcc map[string]bool, matchFrac float64) []metadata.Link {

	ci := r.Schema.Index(col)
	if ci < 0 {
		return nil
	}
	method := fmt.Sprintf("xref:%s.%s", r.Name, col)
	var out []metadata.Link
	seen := make(map[string]bool)
	for ti, t := range r.Tuples {
		v := t[ci]
		if v.IsNull() {
			continue
		}
		var acc string
		for _, part := range CompositeParts(v.AsString()) {
			if targetAcc[part] {
				acc = part
				break
			}
		}
		if acc == "" {
			continue
		}
		owners := from.resolver.owners(r.Name, ti)
		for _, owner := range owners {
			k := owner + "\x00" + acc
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, metadata.Link{
				Type:       metadata.LinkXRef,
				From:       primaryRef(from, owner),
				To:         primaryRef(to, acc),
				Confidence: matchFrac,
				Method:     method,
			})
		}
	}
	return out
}

// sequenceColumns lists (relation, column) pairs holding sequences.
func sequenceColumns(s *Source) [][2]string {
	var out [][2]string
	for _, r := range s.DB.Relations() {
		for _, c := range r.Schema.Columns {
			p := s.Profiles[profile.Key(r.Name, c.Name)]
			if p != nil && p.IsSequenceField() {
				out = append(out, [2]string{r.Name, c.Name})
			}
		}
	}
	return out
}

// discoverSequenceLinks builds a k-mer index over the target source's
// sequence fields and queries it with the new source's sequences.
func (e *Engine) discoverSequenceLinks(ctx context.Context, from, to *Source) ([]metadata.Link, int, error) {
	fromCols := sequenceColumns(from)
	toCols := sequenceColumns(to)
	if len(fromCols) == 0 || len(toCols) == 0 {
		return nil, 0, nil
	}
	// Index all target sequences, labeled by owning primary accession.
	ix := seq.NewIndex(e.opts.SeqKmer)
	for _, rc := range toCols {
		r := to.DB.Relation(rc[0])
		ci := r.Schema.Index(rc[1])
		for ti, t := range r.Tuples {
			v := t[ci]
			if v.IsNull() {
				continue
			}
			for _, owner := range to.resolver.owners(rc[0], ti) {
				ix.Add(owner, v.AsString())
			}
		}
	}
	// Each query tuple's seeded search + Smith-Waterman alignments are
	// independent — the dominant cost of this channel — so they fan out
	// over the worker pool; the cross-tuple link dedupe reduces serially
	// in tuple order.
	type query struct {
		rel string
		ti  int
		val string
	}
	var queries []query
	for _, rc := range fromCols {
		r := from.DB.Relation(rc[0])
		ci := r.Schema.Index(rc[1])
		for ti, t := range r.Tuples {
			v := t[ci]
			if v.IsNull() {
				continue
			}
			queries = append(queries, query{rel: rc[0], ti: ti, val: v.AsString()})
		}
	}
	type queryResult struct {
		hits   []seq.Hit
		owners []string
	}
	results := make([]queryResult, len(queries))
	if err := parallel.For(ctx, e.opts.Workers, len(queries), func(i int) {
		q := queries[i]
		hits := ix.Search(q.val, seq.SearchOptions{
			MinScore:    e.opts.SeqMinScore,
			MinIdentity: e.opts.MinSeqIdentity,
			BothStrands: e.opts.SeqBothStrands,
		})
		if len(hits) == 0 {
			return
		}
		results[i] = queryResult{hits: hits, owners: from.resolver.owners(q.rel, q.ti)}
	}); err != nil {
		return nil, 0, err
	}
	comparisons := 0
	var out []metadata.Link
	seen := make(map[string]bool)
	for _, res := range results {
		comparisons += len(res.hits)
		for _, h := range res.hits {
			for _, owner := range res.owners {
				k := owner + "\x00" + h.TargetID
				if seen[k] {
					continue
				}
				seen[k] = true
				out = append(out, metadata.Link{
					Type:       metadata.LinkSequence,
					From:       primaryRef(from, owner),
					To:         primaryRef(to, h.TargetID),
					Confidence: h.Alignment.Identity,
					Method:     fmt.Sprintf("seq:identity=%.2f score=%d", h.Alignment.Identity, h.Alignment.Score),
				})
			}
		}
	}
	return out, comparisons, nil
}

// textDoc is one primary object's concatenated free-text annotation.
type textDoc struct {
	accession string
	text      string
}

// textDocs collects, per primary object, the concatenation of text-field
// values of the primary relation.
func textDocs(s *Source) []textDoc {
	if s.Structure.Primary == "" {
		return nil
	}
	r := s.DB.Relation(s.Structure.Primary)
	if r == nil {
		return nil
	}
	accIdx := r.Schema.Index(s.Structure.PrimaryAccession)
	if accIdx < 0 {
		return nil
	}
	var textCols []int
	for i, c := range r.Schema.Columns {
		p := s.Profiles[profile.Key(r.Name, c.Name)]
		if p != nil && p.IsTextField() {
			textCols = append(textCols, i)
		}
	}
	if len(textCols) == 0 {
		return nil
	}
	var out []textDoc
	for _, t := range r.Tuples {
		acc := t[accIdx]
		if acc.IsNull() {
			continue
		}
		var parts []string
		for _, ci := range textCols {
			if !t[ci].IsNull() {
				parts = append(parts, t[ci].AsString())
			}
		}
		if len(parts) == 0 {
			continue
		}
		out = append(out, textDoc{accession: acc.AsString(), text: strings.Join(parts, " ")})
	}
	return out
}

// discoverTextLinks compares free-text annotation of primary objects
// across the two sources with TF-IDF cosine, using a shared-term inverted
// index for candidate generation instead of the full cross product.
func (e *Engine) discoverTextLinks(ctx context.Context, from, to *Source) ([]metadata.Link, int, error) {
	fromDocs := textDocs(from)
	toDocs := textDocs(to)
	if len(fromDocs) == 0 || len(toDocs) == 0 {
		return nil, 0, nil
	}
	corpus := textmine.NewCorpus()
	for _, d := range fromDocs {
		corpus.AddDoc(d.text)
	}
	for _, d := range toDocs {
		corpus.AddDoc(d.text)
	}
	// Inverted index over target docs, skipping very common terms.
	maxDF := len(toDocs) / 4
	if maxDF < 2 {
		maxDF = 2
	}
	toVecs := make([]map[string]float64, len(toDocs))
	inv := make(map[string][]int)
	for i, d := range toDocs {
		toVecs[i] = corpus.Vector(d.text)
		for term := range toVecs[i] {
			if len(inv[term]) <= maxDF {
				inv[term] = append(inv[term], i)
			}
		}
	}
	// Per-document vectorization and candidate scoring fan out over the
	// worker pool; candidate indices are sorted so each document's links
	// come out in a deterministic order (the serial map iteration did not
	// guarantee one).
	type docResult struct {
		comparisons int
		links       []metadata.Link
	}
	results := make([]docResult, len(fromDocs))
	if err := parallel.For(ctx, e.opts.Workers, len(fromDocs), func(di int) {
		d := fromDocs[di]
		v := corpus.Vector(d.text)
		cands := make(map[int]bool)
		for term := range v {
			if posts, ok := inv[term]; ok && len(posts) <= maxDF {
				for _, i := range posts {
					cands[i] = true
				}
			}
		}
		order := make([]int, 0, len(cands))
		for i := range cands {
			order = append(order, i)
		}
		sort.Ints(order)
		res := docResult{comparisons: len(order)}
		for _, i := range order {
			sim := textmine.Cosine(v, toVecs[i])
			if sim < e.opts.MinTextCosine {
				continue
			}
			res.links = append(res.links, metadata.Link{
				Type:       metadata.LinkText,
				From:       primaryRef(from, d.accession),
				To:         primaryRef(to, toDocs[i].accession),
				Confidence: sim,
				Method:     fmt.Sprintf("text:cosine=%.2f", sim),
			})
		}
		results[di] = res
	}); err != nil {
		return nil, 0, err
	}
	comparisons := 0
	var out []metadata.Link
	for _, res := range results {
		comparisons += res.comparisons
		out = append(out, res.links...)
	}
	return out, comparisons, nil
}

// discoverEntityLinks extracts entity mentions from the new source's text
// fields and matches them against accessions and unique name fields of the
// target's primary relation (§4.4: "methods for finding names of
// biological entities in natural text ... matched with unique fields of
// primary relations").
func (e *Engine) discoverEntityLinks(ctx context.Context, from, to *Source) ([]metadata.Link, error) {
	if to.Structure.Primary == "" {
		return nil, nil
	}
	toRel := to.DB.Relation(to.Structure.Primary)
	if toRel == nil {
		return nil, nil
	}
	// Dictionary: values of all unique columns of the target's primary
	// relation, mapped back to the owning accession.
	accIdx := toRel.Schema.Index(to.Structure.PrimaryAccession)
	if accIdx < 0 {
		return nil, nil
	}
	nameToAcc := make(map[string]string)
	for _, colName := range to.Structure.UniqueColumns[strings.ToLower(toRel.Name)] {
		ci := toRel.Schema.Index(colName)
		if ci < 0 {
			continue
		}
		for _, t := range toRel.Tuples {
			v, acc := t[ci], t[accIdx]
			if v.IsNull() || acc.IsNull() {
				continue
			}
			s := v.AsString()
			// §4.4 numeric exclusion: purely numeric unique values are
			// surrogate keys, not entity names; very short values match
			// by coincidence.
			if len(s) < 3 {
				continue
			}
			if _, numeric := v.AsFloat(); numeric {
				continue
			}
			nameToAcc[strings.ToLower(s)] = acc.AsString()
		}
	}
	if len(nameToAcc) == 0 {
		return nil, nil
	}
	dict := make([]string, 0, len(nameToAcc))
	for n := range nameToAcc {
		dict = append(dict, n)
	}
	er := textmine.NewEntityRecognizer(dict)

	// Mention extraction per document is independent; the cross-document
	// dedupe reduces serially in document order.
	docs := textDocs(from)
	results := make([][]metadata.Link, len(docs))
	if err := parallel.For(ctx, e.opts.Workers, len(docs), func(di int) {
		d := docs[di]
		var ls []metadata.Link
		for _, m := range er.Extract(d.text) {
			acc, ok := nameToAcc[strings.ToLower(m.Text)]
			if !ok {
				continue
			}
			if acc == d.accession {
				continue
			}
			ls = append(ls, metadata.Link{
				Type:       metadata.LinkText,
				From:       primaryRef(from, d.accession),
				To:         primaryRef(to, acc),
				Confidence: 0.9,
				Method:     fmt.Sprintf("entity:%s", m.Text),
			})
		}
		results[di] = ls
	}); err != nil {
		return nil, err
	}
	var out []metadata.Link
	seen := make(map[string]bool)
	for _, ls := range results {
		for _, l := range ls {
			k := l.From.Accession + "\x00" + l.To.Accession
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, l)
		}
	}
	return out, nil
}

// DeriveOntologyLinksHierarchical extends DeriveOntologyLinks with term
// subsumption: objects referencing *similar* terms (Wu-Palmer similarity
// over the ontology's is_a hierarchy >= minSim) are linked even when the
// terms differ — the hierarchy-aware reading of §4.4's "connecting
// proteins with similar function". Exact shared-term pairs keep
// confidence from DeriveOntologyLinks; subsumption pairs carry the term
// similarity as confidence.
func (e *Engine) DeriveOntologyLinksHierarchical(links []metadata.Link,
	ontologySource string, h *ontology.Hierarchy, minSim float64) []metadata.Link {

	out := e.DeriveOntologyLinks(links, ontologySource)
	if e.opts.DisableOntologyLinks || h == nil || minSim <= 0 {
		return out
	}
	key := strings.ToLower(ontologySource)
	byTerm := make(map[string][]metadata.ObjectRef)
	for _, l := range links {
		if l.Type != metadata.LinkXRef {
			continue
		}
		if strings.ToLower(l.To.Source) == key {
			byTerm[l.To.Accession] = append(byTerm[l.To.Accession], l.From)
		}
	}
	terms := make([]string, 0, len(byTerm))
	for t := range byTerm {
		if h.Has(t) && len(byTerm[t]) <= e.opts.MaxSharedTermFanout {
			terms = append(terms, t)
		}
	}
	sort.Strings(terms)
	seen := make(map[string]bool)
	for _, l := range out {
		seen[l.From.Key()+"\x00"+l.To.Key()] = true
		seen[l.To.Key()+"\x00"+l.From.Key()] = true
	}
	for i := 0; i < len(terms); i++ {
		for j := i + 1; j < len(terms); j++ {
			sim := h.Similarity(terms[i], terms[j])
			if sim < minSim {
				continue
			}
			for _, a := range byTerm[terms[i]] {
				for _, b := range byTerm[terms[j]] {
					if strings.EqualFold(a.Source, b.Source) {
						continue
					}
					k := a.Key() + "\x00" + b.Key()
					if seen[k] {
						continue
					}
					seen[k] = true
					seen[b.Key()+"\x00"+a.Key()] = true
					out = append(out, metadata.Link{
						Type:       metadata.LinkOntology,
						From:       a,
						To:         b,
						Confidence: sim,
						Method:     fmt.Sprintf("term-similarity:%s~%s=%.2f", terms[i], terms[j], sim),
					})
				}
			}
		}
	}
	return out
}

// DeriveOntologyLinks post-processes discovered xref links: objects from
// different sources referencing the same term of an ontology source are
// linked directly ("the resulting values make excellent links, connecting
// proteins with similar function", §4.4). Terms referenced by more than
// MaxSharedTermFanout objects are skipped to avoid hub blowup.
func (e *Engine) DeriveOntologyLinks(links []metadata.Link, ontologySource string) []metadata.Link {
	if e.opts.DisableOntologyLinks {
		return nil
	}
	key := strings.ToLower(ontologySource)
	byTerm := make(map[string][]metadata.ObjectRef)
	for _, l := range links {
		if l.Type != metadata.LinkXRef {
			continue
		}
		if strings.ToLower(l.To.Source) == key {
			byTerm[l.To.Accession] = append(byTerm[l.To.Accession], l.From)
		}
	}
	var out []metadata.Link
	seen := make(map[string]bool)
	terms := make([]string, 0, len(byTerm))
	for t := range byTerm {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, term := range terms {
		refs := byTerm[term]
		if len(refs) < 2 || len(refs) > e.opts.MaxSharedTermFanout {
			continue
		}
		for i := 0; i < len(refs); i++ {
			for j := i + 1; j < len(refs); j++ {
				a, b := refs[i], refs[j]
				if strings.EqualFold(a.Source, b.Source) {
					continue
				}
				k := a.Key() + "\x00" + b.Key()
				if seen[k] {
					continue
				}
				seen[k] = true
				out = append(out, metadata.Link{
					Type:       metadata.LinkOntology,
					From:       a,
					To:         b,
					Confidence: 1.0 / float64(len(refs)-1),
					Method:     fmt.Sprintf("shared-term:%s:%s", ontologySource, term),
				})
			}
		}
	}
	return out
}
