package textmine_test

import (
	"fmt"

	"repro/internal/textmine"
)

func ExampleCorpus() {
	c := textmine.NewCorpus()
	docs := []string{
		"hemoglobin transports oxygen in blood",
		"myoglobin stores oxygen in muscle",
		"ribosome synthesizes protein chains",
	}
	for _, d := range docs {
		c.AddDoc(d)
	}
	v0 := c.Vector(docs[0])
	fmt.Printf("sim(0,1)=%.2f sim(0,2)=%.2f\n",
		textmine.Cosine(v0, c.Vector(docs[1])),
		textmine.Cosine(v0, c.Vector(docs[2])))
	// Output:
	// sim(0,1)=0.05 sim(0,2)=0.00
}

func ExampleJaroWinkler() {
	fmt.Printf("%.3f\n", textmine.JaroWinkler("MARTHA", "MARHTA"))
	// Output:
	// 0.961
}

func ExampleEntityRecognizer() {
	er := textmine.NewEntityRecognizer([]string{"hemoglobin", "insulin receptor"})
	for _, m := range er.Extract("Hemoglobin binds the insulin receptor near TP53.") {
		fmt.Printf("%s (%s)\n", m.Text, m.Source)
	}
	// Output:
	// Hemoglobin (dict)
	// insulin receptor (dict)
	// TP53 (pattern)
}

func ExampleEditDistance() {
	fmt.Println(textmine.EditDistance("kitten", "sitting"))
	// Output:
	// 3
}
