// Package textmine provides the text-mining substrate for ALADIN's
// implicit link discovery (§4.4): tokenization, TF-IDF vectors with
// cosine similarity for comparing textual annotation fields, classic
// string-distance measures for duplicate detection (§4.5), and a
// dictionary/pattern-based biomedical entity recognizer standing in for
// gene-name recognition systems such as GAPSCORE [CSA04].
package textmine

import (
	"math"
	"slices"
	"sort"
	"strings"
	"unicode"
)

// stopwords are high-frequency English words excluded from token vectors.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "has": true,
	"have": true, "in": true, "is": true, "it": true, "its": true,
	"of": true, "on": true, "or": true, "that": true, "the": true,
	"this": true, "to": true, "was": true, "which": true, "with": true,
}

// Tokenize lower-cases s and splits it into alphanumeric tokens, dropping
// stopwords and single characters.
func Tokenize(s string) []string {
	var out []string
	var sb strings.Builder
	flush := func() {
		if sb.Len() == 0 {
			return
		}
		tok := sb.String()
		sb.Reset()
		if len(tok) < 2 || stopwords[tok] {
			return
		}
		out = append(out, tok)
	}
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			sb.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// TermFreq counts token occurrences.
func TermFreq(tokens []string) map[string]int {
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	return tf
}

// Corpus accumulates document frequencies to weight terms by IDF.
type Corpus struct {
	docs int
	df   map[string]int
}

// NewCorpus creates an empty corpus.
func NewCorpus() *Corpus { return &Corpus{df: make(map[string]int)} }

// AddDoc folds one document's tokens into the document-frequency table.
func (c *Corpus) AddDoc(text string) {
	c.docs++
	seen := make(map[string]bool)
	for _, t := range Tokenize(text) {
		if !seen[t] {
			seen[t] = true
			c.df[t]++
		}
	}
}

// Docs returns the number of added documents.
func (c *Corpus) Docs() int { return c.docs }

// IDF returns the smoothed inverse document frequency of a term.
func (c *Corpus) IDF(term string) float64 {
	return math.Log(float64(c.docs+1) / float64(c.df[term]+1))
}

// Vector computes the L2-normalized TF-IDF vector of a text.
func (c *Corpus) Vector(text string) map[string]float64 {
	tf := TermFreq(Tokenize(text))
	v := make(map[string]float64, len(tf))
	var norm float64
	for t, f := range tf {
		w := float64(f) * c.IDF(t)
		v[t] = w
		norm += w * w
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for t := range v {
			v[t] /= norm
		}
	}
	return v
}

// Cosine computes the dot product of two normalized vectors.
func Cosine(a, b map[string]float64) float64 {
	if len(b) < len(a) {
		a, b = b, a
	}
	var dot float64
	for t, w := range a {
		dot += w * b[t]
	}
	return dot
}

// Jaccard computes token-set Jaccard similarity of two strings.
func Jaccard(a, b string) float64 {
	sa := make(map[string]bool)
	for _, t := range Tokenize(a) {
		sa[t] = true
	}
	sb := make(map[string]bool)
	for _, t := range Tokenize(b) {
		sb[t] = true
	}
	if len(sa) == 0 && len(sb) == 0 {
		return 0
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}

// EditDistance computes the Levenshtein distance between a and b.
func EditDistance(a, b string) int {
	if a == b {
		return 0
	}
	n, m := len(a), len(b)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	prev := make([]int, m+1)
	curr := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		curr[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			curr[j] = min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[m]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// EditSimilarity normalizes edit distance into [0,1]: 1 - d/max(len).
func EditSimilarity(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	maxLen := len(a)
	if len(b) > maxLen {
		maxLen = len(b)
	}
	return 1 - float64(EditDistance(a, b))/float64(maxLen)
}

// Jaro computes the Jaro similarity of two strings.
func Jaro(a, b string) float64 {
	if a == b {
		if a == "" {
			return 1
		}
		return 1
	}
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	aMatch := make([]bool, la)
	bMatch := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if bMatch[j] || a[i] != b[j] {
				continue
			}
			aMatch[i] = true
			bMatch[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !aMatch[i] {
			continue
		}
		for !bMatch[j] {
			j++
		}
		if a[i] != b[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler boosts Jaro similarity for shared prefixes (up to 4 chars,
// scaling factor 0.1), the standard variant used in duplicate detection.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < 4 && a[prefix] == b[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// QGrams returns the multiset of character q-grams of s (with boundary
// padding), as counts.
func QGrams(s string, q int) map[string]int {
	if q < 1 {
		q = 2
	}
	if s == "" {
		return map[string]int{}
	}
	padded := strings.Repeat("#", q-1) + strings.ToLower(s) + strings.Repeat("#", q-1)
	out := make(map[string]int)
	for i := 0; i+q <= len(padded); i++ {
		out[padded[i:i+q]]++
	}
	return out
}

// QGramSimilarity computes Dice similarity over q-gram multisets.
func QGramSimilarity(a, b string, q int) float64 {
	if q >= 1 && q <= 8 {
		// Hot path (duplicate detection compares every candidate pair's
		// long fields this way): grams packed into integers, multiset
		// overlap by sorted merge — no maps, no per-gram strings.
		return qgramSimilarityPacked(a, b, q)
	}
	ga, gb := QGrams(a, q), QGrams(b, q)
	var sizeA, sizeB, overlap int
	for g, ca := range ga {
		sizeA += ca
		if cb, ok := gb[g]; ok {
			if ca < cb {
				overlap += ca
			} else {
				overlap += cb
			}
		}
	}
	for _, cb := range gb {
		sizeB += cb
	}
	if sizeA+sizeB == 0 {
		return 0
	}
	return 2 * float64(overlap) / float64(sizeA+sizeB)
}

// QGramCodes packs the padded lower-cased q-grams of s into uint64s
// (q bytes each, q <= 8), sorted — the multiset QGrams builds, in a
// representation two calls can intersect without hashing. Callers that
// compare the same value many times can hold the codes and pass them to
// DiceCodes directly.
func QGramCodes(s string, q int) []uint64 {
	if s == "" {
		return nil
	}
	pad := strings.Repeat("#", q-1)
	padded := pad + strings.ToLower(s) + pad
	n := len(padded) - q + 1
	codes := make([]uint64, n)
	for i := 0; i < n; i++ {
		var c uint64
		for j := 0; j < q; j++ {
			c = c<<8 | uint64(padded[i+j])
		}
		codes[i] = c
	}
	slices.Sort(codes)
	return codes
}

// qgramSimilarityPacked is Dice similarity over q-gram multisets via
// sorted merge; identical results to the map-based form for q <= 8.
func qgramSimilarityPacked(a, b string, q int) float64 {
	return DiceCodes(QGramCodes(a, q), QGramCodes(b, q))
}

// DiceCodes is Dice similarity over two sorted gram-code multisets from
// QGramCodes.
func DiceCodes(ca, cb []uint64) float64 {
	if len(ca)+len(cb) == 0 {
		return 0
	}
	overlap, i, j := 0, 0, 0
	for i < len(ca) && j < len(cb) {
		switch {
		case ca[i] < cb[j]:
			i++
		case ca[i] > cb[j]:
			j++
		default:
			v := ca[i]
			ri, rj := 0, 0
			for i < len(ca) && ca[i] == v {
				i++
				ri++
			}
			for j < len(cb) && cb[j] == v {
				j++
				rj++
			}
			if ri < rj {
				overlap += ri
			} else {
				overlap += rj
			}
		}
	}
	return 2 * float64(overlap) / float64(len(ca)+len(cb))
}

// EntityRecognizer extracts candidate biomedical entity names from free
// text: dictionary hits against names harvested from unique fields of
// primary relations (§4.4: "extracting names that are matched with unique
// fields of primary relations"), plus pattern-based accession-shaped and
// gene-symbol-shaped tokens.
type EntityRecognizer struct {
	dict map[string]bool
}

// NewEntityRecognizer builds a recognizer over a dictionary of known
// entity names (case-insensitive).
func NewEntityRecognizer(names []string) *EntityRecognizer {
	d := make(map[string]bool, len(names))
	for _, n := range names {
		n = strings.ToLower(strings.TrimSpace(n))
		if n != "" {
			d[n] = true
		}
	}
	return &EntityRecognizer{dict: d}
}

// AddName extends the dictionary.
func (er *EntityRecognizer) AddName(name string) {
	name = strings.ToLower(strings.TrimSpace(name))
	if name != "" {
		er.dict[name] = true
	}
}

// Mention is one recognized entity occurrence.
type Mention struct {
	Text string
	// Source is "dict" for dictionary hits or "pattern" for shape-based
	// recognition.
	Source string
}

// Extract returns the entity mentions found in text, deduplicated,
// dictionary hits first.
func (er *EntityRecognizer) Extract(text string) []Mention {
	seen := make(map[string]bool)
	var out []Mention
	// Dictionary pass over raw whitespace tokens and 2-grams, preserving
	// original casing in the mention text.
	raw := strings.Fields(text)
	clean := make([]string, len(raw))
	for i, w := range raw {
		clean[i] = strings.Trim(w, ".,;:()[]{}\"'")
	}
	add := func(text, source string) {
		key := strings.ToLower(text)
		if key == "" || seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Mention{Text: text, Source: source})
	}
	for i, w := range clean {
		if er.dict[strings.ToLower(w)] {
			add(w, "dict")
		}
		if i+1 < len(clean) {
			two := w + " " + clean[i+1]
			if er.dict[strings.ToLower(two)] {
				add(two, "dict")
			}
		}
	}
	for _, w := range clean {
		if seen[strings.ToLower(w)] {
			continue
		}
		if LooksLikeAccession(w) {
			add(w, "pattern")
		} else if looksLikeGeneSymbol(w) {
			add(w, "pattern")
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source == "dict"
		}
		return false
	})
	return out
}

// LooksLikeAccession applies the §4.2 accession shape to a single token:
// length >= 4, contains both a letter and a digit, no lowercase run
// longer than the typical accession mixes.
func LooksLikeAccession(w string) bool {
	if len(w) < 4 || len(w) > 20 {
		return false
	}
	hasLetter, hasDigit := false, false
	for _, r := range w {
		switch {
		case unicode.IsDigit(r):
			hasDigit = true
		case unicode.IsLetter(r):
			hasLetter = true
		case r == '_' || r == ':' || r == '.' || r == '-':
			// common inside composite identifiers
		default:
			return false
		}
	}
	return hasLetter && hasDigit
}

// looksLikeGeneSymbol matches short all-caps symbols like "BRCA1", "TP53",
// "HBA" — at least two uppercase letters, length 2..10, no lowercase.
func looksLikeGeneSymbol(w string) bool {
	if len(w) < 2 || len(w) > 10 {
		return false
	}
	upper := 0
	for _, r := range w {
		switch {
		case unicode.IsUpper(r):
			upper++
		case unicode.IsDigit(r):
		default:
			return false
		}
	}
	return upper >= 2
}
