package textmine

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	toks := Tokenize("The Hemoglobin, subunit-alpha (HBA1) binds O2.")
	want := []string{"hemoglobin", "subunit", "alpha", "hba1", "binds", "o2"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("token %d = %q want %q", i, toks[i], want[i])
		}
	}
}

func TestTokenizeDropsStopwordsAndSingles(t *testing.T) {
	toks := Tokenize("a protein of the cell")
	if len(toks) != 2 || toks[0] != "protein" || toks[1] != "cell" {
		t.Errorf("tokens = %v", toks)
	}
}

func TestCorpusIDFWeighting(t *testing.T) {
	c := NewCorpus()
	c.AddDoc("protein binds oxygen")
	c.AddDoc("protein folds quickly")
	c.AddDoc("protein degrades slowly")
	// "protein" appears everywhere: low IDF; "oxygen" once: high IDF.
	if c.IDF("protein") >= c.IDF("oxygen") {
		t.Errorf("IDF(protein)=%v should be < IDF(oxygen)=%v", c.IDF("protein"), c.IDF("oxygen"))
	}
}

func TestCosineSimilarity(t *testing.T) {
	c := NewCorpus()
	docs := []string{
		"hemoglobin oxygen transport blood",
		"hemoglobin oxygen binding protein in red blood cells",
		"ribosomal translation machinery",
	}
	for _, d := range docs {
		c.AddDoc(d)
	}
	v0 := c.Vector(docs[0])
	v1 := c.Vector(docs[1])
	v2 := c.Vector(docs[2])
	simClose := Cosine(v0, v1)
	simFar := Cosine(v0, v2)
	if simClose <= simFar {
		t.Errorf("related docs %v should exceed unrelated %v", simClose, simFar)
	}
	if self := Cosine(v0, v0); math.Abs(self-1.0) > 1e-9 {
		t.Errorf("self-cosine = %v", self)
	}
}

func TestCosineEmpty(t *testing.T) {
	c := NewCorpus()
	c.AddDoc("x y")
	if got := Cosine(c.Vector(""), c.Vector("anything here")); got != 0 {
		t.Errorf("empty cosine = %v", got)
	}
}

func TestJaccard(t *testing.T) {
	if j := Jaccard("protein kinase domain", "kinase domain structure"); j <= 0.3 || j >= 1 {
		t.Errorf("jaccard = %v", j)
	}
	if j := Jaccard("alpha beta", "alpha beta"); j != 1 {
		t.Errorf("identical jaccard = %v", j)
	}
	if j := Jaccard("", ""); j != 0 {
		t.Errorf("empty jaccard = %v", j)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"P12345", "P12345", 0},
		{"P12345", "P12346", 1},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditSimilarity(t *testing.T) {
	if s := EditSimilarity("", ""); s != 1 {
		t.Errorf("empty = %v", s)
	}
	if s := EditSimilarity("abcd", "abcd"); s != 1 {
		t.Errorf("identical = %v", s)
	}
	if s := EditSimilarity("abcd", "wxyz"); s != 0 {
		t.Errorf("disjoint = %v", s)
	}
}

func TestJaroWinkler(t *testing.T) {
	if jw := JaroWinkler("MARTHA", "MARHTA"); jw < 0.95 {
		t.Errorf("MARTHA/MARHTA = %v; classic value ~0.961", jw)
	}
	if jw := JaroWinkler("abc", "abc"); jw != 1 {
		t.Errorf("identical = %v", jw)
	}
	if jw := JaroWinkler("abc", "xyz"); jw != 0 {
		t.Errorf("disjoint = %v", jw)
	}
	// Prefix boost: common prefix should rank higher than common suffix.
	pre := JaroWinkler("hemoglobin", "hemoglobine")
	suf := JaroWinkler("ahemoglobin", "hemoglobin")
	if pre <= suf {
		t.Errorf("prefix boost: pre=%v suf=%v", pre, suf)
	}
}

func TestQGramSimilarity(t *testing.T) {
	if s := QGramSimilarity("hemoglobin", "hemoglobin", 3); s != 1 {
		t.Errorf("identical = %v", s)
	}
	near := QGramSimilarity("hemoglobin", "hemoglobine", 3)
	far := QGramSimilarity("hemoglobin", "ribosome", 3)
	if near <= far {
		t.Errorf("near=%v far=%v", near, far)
	}
	if s := QGramSimilarity("", "", 3); s != 0 {
		t.Errorf("empty = %v", s)
	}
}

func TestEntityRecognizerDictionary(t *testing.T) {
	er := NewEntityRecognizer([]string{"hemoglobin", "insulin receptor"})
	ms := er.Extract("Binding of Hemoglobin to the insulin receptor was observed.")
	var dict []string
	for _, m := range ms {
		if m.Source == "dict" {
			dict = append(dict, strings.ToLower(m.Text))
		}
	}
	if len(dict) != 2 {
		t.Fatalf("dict mentions = %v", ms)
	}
	if dict[0] != "hemoglobin" && dict[1] != "hemoglobin" {
		t.Errorf("missing hemoglobin: %v", dict)
	}
	has2gram := false
	for _, d := range dict {
		if d == "insulin receptor" {
			has2gram = true
		}
	}
	if !has2gram {
		t.Errorf("missing 2-gram dictionary hit: %v", dict)
	}
}

func TestEntityRecognizerPatterns(t *testing.T) {
	er := NewEntityRecognizer(nil)
	ms := er.Extract("Mutations in TP53 and accession P12345 were reported, but not in water.")
	found := map[string]bool{}
	for _, m := range ms {
		found[m.Text] = true
	}
	if !found["TP53"] {
		t.Errorf("gene symbol TP53 not recognized: %v", ms)
	}
	if !found["P12345"] {
		t.Errorf("accession P12345 not recognized: %v", ms)
	}
	if found["water"] || found["Mutations"] {
		t.Errorf("common words misrecognized: %v", ms)
	}
}

func TestEntityRecognizerDeduplicates(t *testing.T) {
	er := NewEntityRecognizer([]string{"brca1"})
	ms := er.Extract("BRCA1 interacts with BRCA1 in brca1-null cells")
	count := 0
	for _, m := range ms {
		if strings.EqualFold(m.Text, "brca1") {
			count++
		}
	}
	if count != 1 {
		t.Errorf("BRCA1 mentioned %d times in output", count)
	}
}

func TestLooksLikeAccession(t *testing.T) {
	yes := []string{"P12345", "ENSG00000042753", "1ABC", "GO:0005524", "Uniprot:P11140"}
	no := []string{"abc", "12345", "protein", "P1", "hello-world"}
	for _, w := range yes {
		if !LooksLikeAccession(w) {
			t.Errorf("%q should look like an accession", w)
		}
	}
	for _, w := range no {
		if LooksLikeAccession(w) {
			t.Errorf("%q should not look like an accession", w)
		}
	}
}

// Property: edit distance is a metric — symmetric, zero iff equal, and
// obeys the triangle inequality on small random strings.
func TestEditDistanceMetricProperties(t *testing.T) {
	clamp := func(s string) string {
		if len(s) > 12 {
			return s[:12]
		}
		return s
	}
	f := func(a, b, c string) bool {
		a, b, c = clamp(a), clamp(b), clamp(c)
		dab := EditDistance(a, b)
		dba := EditDistance(b, a)
		if dab != dba {
			return false
		}
		if (dab == 0) != (a == b) {
			return false
		}
		return EditDistance(a, c) <= dab+EditDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: JaroWinkler stays in [0,1] and equals 1 for identical strings.
func TestJaroWinklerRange(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		jw := JaroWinkler(a, b)
		if jw < 0 || jw > 1 {
			return false
		}
		return JaroWinkler(a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: cosine of any vector pair is within [0, 1+eps].
func TestCosineRange(t *testing.T) {
	c := NewCorpus()
	c.AddDoc("alpha beta gamma delta")
	f := func(a, b string) bool {
		got := Cosine(c.Vector(a), c.Vector(b))
		return got >= 0 && got <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
