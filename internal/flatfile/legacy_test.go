package flatfile

// Verbatim copies of the pre-streaming whole-file parsers. The public
// Parse entry points are now collect-all wrappers over the streaming
// scanners; these copies preserve the original record-at-once
// implementations as the parity oracle for the FuzzFlatfile targets —
// scanner stream output must equal legacy output on arbitrary bytes.

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/rel"
)

func legacyParseEMBL(r io.Reader, dbName string) (*rel.Database, error) {
	db := rel.NewDatabase(dbName)
	entry := db.Create("entry", rel.TextSchema("entry_id", "accession", "entry_name", "description", "organism"))
	dbref := db.Create("dbref", rel.TextSchema("dbref_id", "entry_id", "dbname", "ref_accession"))
	keyword := db.Create("keyword", rel.TextSchema("keyword_id", "entry_id", "keyword"))
	comment := db.Create("comment", rel.TextSchema("comment_id", "entry_id", "comment_text"))
	seqrel := db.Create("sequence", rel.TextSchema("entry_id", "seq"))

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	type record struct {
		name, organism string
		desc           []string
		acc            []string
		drs            [][2]string
		kws            []string
		ccs            []string
		seq            strings.Builder
	}
	var cur *record
	inSeq := false
	entrySeq, dbrefSeq, kwSeq, ccSeq := 0, 0, 0, 0
	lineNo := 0

	flush := func() error {
		if cur == nil {
			return nil
		}
		if len(cur.acc) == 0 {
			return fmt.Errorf("flatfile: record ending before line %d has no AC line", lineNo)
		}
		entrySeq++
		eid := strconv.Itoa(entrySeq)
		entry.AppendRaw(eid, cur.acc[0], cur.name, strings.Join(cur.desc, " "), cur.organism)
		for _, dr := range cur.drs {
			dbrefSeq++
			dbref.AppendRaw(strconv.Itoa(dbrefSeq), eid, dr[0], dr[1])
		}
		for _, kw := range cur.kws {
			kwSeq++
			keyword.AppendRaw(strconv.Itoa(kwSeq), eid, kw)
		}
		for _, cc := range cur.ccs {
			ccSeq++
			comment.AppendRaw(strconv.Itoa(ccSeq), eid, cc)
		}
		if cur.seq.Len() > 0 {
			seqrel.AppendRaw(eid, cur.seq.String())
		}
		cur = nil
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.HasPrefix(line, "//") {
			if err := flush(); err != nil {
				return nil, err
			}
			inSeq = false
			continue
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if inSeq {
			if strings.HasPrefix(line, " ") || !hasLineCode(line) {
				if cur != nil {
					cur.seq.WriteString(stripSeqLine(line))
				}
				continue
			}
			inSeq = false
		}
		if len(line) < 2 {
			return nil, fmt.Errorf("flatfile: malformed line %d: %q", lineNo, line)
		}
		code := line[:2]
		rest := ""
		if len(line) > 2 {
			rest = strings.TrimSpace(line[2:])
		}
		if cur == nil {
			if code != "ID" {
				return nil, fmt.Errorf("flatfile: line %d: record must start with ID, got %q", lineNo, code)
			}
			cur = &record{}
		}
		switch code {
		case "ID":
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				cur.name = fields[0]
			}
		case "AC":
			for _, a := range strings.Split(rest, ";") {
				a = strings.TrimSpace(a)
				if a != "" {
					cur.acc = append(cur.acc, a)
				}
			}
		case "DE":
			cur.desc = append(cur.desc, rest)
		case "OS":
			if cur.organism == "" {
				cur.organism = strings.TrimSuffix(rest, ".")
			}
		case "DR":
			parts := strings.Split(rest, ";")
			if len(parts) >= 2 {
				cur.drs = append(cur.drs, [2]string{
					strings.TrimSpace(parts[0]),
					strings.TrimSuffix(strings.TrimSpace(parts[1]), "."),
				})
			}
		case "KW":
			for _, k := range strings.Split(strings.TrimSuffix(rest, "."), ";") {
				k = strings.TrimSpace(k)
				if k != "" {
					cur.kws = append(cur.kws, k)
				}
			}
		case "CC":
			cur.ccs = append(cur.ccs, strings.TrimPrefix(rest, "-!- "))
		case "SQ":
			inSeq = true
		default:
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		if err := flush(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func legacyParseFASTA(r io.Reader, dbName string) (*rel.Database, error) {
	db := rel.NewDatabase(dbName)
	rec := db.Create("fasta", rel.TextSchema("fasta_id", "accession", "description", "seq"))
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var acc, desc string
	var seq strings.Builder
	n := 0
	flush := func() {
		if acc == "" {
			return
		}
		n++
		rec.AppendRaw(strconv.Itoa(n), acc, desc, seq.String())
		acc, desc = "", ""
		seq.Reset()
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ">") {
			flush()
			header := strings.TrimSpace(line[1:])
			if header == "" {
				return nil, fmt.Errorf("flatfile: empty FASTA header at line %d", lineNo)
			}
			if i := strings.IndexAny(header, " \t"); i >= 0 {
				acc, desc = header[:i], strings.TrimSpace(header[i:])
			} else {
				acc = header
			}
			continue
		}
		if acc == "" {
			return nil, fmt.Errorf("flatfile: sequence data before first FASTA header at line %d", lineNo)
		}
		seq.WriteString(strings.ToUpper(line))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return db, nil
}

func legacyParseCSV(r io.Reader, dbName, table string, comma rune) (*rel.Database, error) {
	db := rel.NewDatabase(dbName)
	cr := csv.NewReader(r)
	cr.Comma = comma
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("flatfile: reading CSV header: %w", err)
	}
	for i := range header {
		header[i] = strings.TrimSpace(header[i])
		if header[i] == "" {
			header[i] = fmt.Sprintf("col%d", i+1)
		}
	}
	relo := db.Create(table, rel.TextSchema(header...))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("flatfile: reading CSV row: %w", err)
		}
		relo.AppendRaw(rec...)
	}
	return db, nil
}

func legacyParseGenBank(r io.Reader, dbName string) (*rel.Database, error) {
	db := rel.NewDatabase(dbName)
	entry := db.Create("entry", rel.TextSchema("entry_id", "accession", "locus_name", "definition", "organism"))
	dbxref := db.Create("dbxref", rel.TextSchema("dbxref_id", "entry_id", "xref"))
	seqrel := db.Create("sequence", rel.TextSchema("entry_id", "seq"))

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	type record struct {
		locus, accession, organism string
		definition                 []string
		xrefs                      []string
		seq                        strings.Builder
	}
	var cur *record
	section := ""
	entrySeq, xrefSeq := 0, 0
	lineNo := 0

	flush := func() error {
		if cur == nil {
			return nil
		}
		if cur.accession == "" {
			return fmt.Errorf("flatfile: GenBank record ending before line %d has no ACCESSION", lineNo)
		}
		entrySeq++
		eid := strconv.Itoa(entrySeq)
		entry.AppendRaw(eid, cur.accession, cur.locus,
			strings.TrimSuffix(strings.Join(cur.definition, " "), "."), cur.organism)
		for _, x := range cur.xrefs {
			xrefSeq++
			dbxref.AppendRaw(strconv.Itoa(xrefSeq), eid, x)
		}
		if cur.seq.Len() > 0 {
			seqrel.AppendRaw(eid, cur.seq.String())
		}
		cur = nil
		section = ""
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.HasPrefix(line, "//") {
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if line[0] != ' ' {
			fields := strings.SplitN(line, " ", 2)
			keyword := fields[0]
			rest := ""
			if len(fields) > 1 {
				rest = strings.TrimSpace(fields[1])
			}
			if cur == nil {
				if keyword != "LOCUS" {
					return nil, fmt.Errorf("flatfile: line %d: GenBank record must start with LOCUS, got %q", lineNo, keyword)
				}
				cur = &record{}
			}
			section = keyword
			switch keyword {
			case "LOCUS":
				if f := strings.Fields(rest); len(f) > 0 {
					cur.locus = f[0]
				}
			case "DEFINITION":
				cur.definition = append(cur.definition, rest)
			case "ACCESSION":
				if f := strings.Fields(rest); len(f) > 0 {
					cur.accession = f[0]
				}
			case "SOURCE":
				cur.organism = rest
			case "ORIGIN":
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("flatfile: line %d: continuation before first LOCUS", lineNo)
		}
		trimmed := strings.TrimSpace(line)
		switch section {
		case "DEFINITION":
			cur.definition = append(cur.definition, trimmed)
		case "FEATURES":
			if strings.HasPrefix(trimmed, "/db_xref=") {
				v := strings.Trim(strings.TrimPrefix(trimmed, "/db_xref="), `"`)
				if v != "" {
					cur.xrefs = append(cur.xrefs, v)
				}
			}
		case "ORIGIN":
			cur.seq.WriteString(stripSeqLine(line))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		if err := flush(); err != nil {
			return nil, err
		}
	}
	return db, nil
}
