package flatfile

import (
	"strings"
	"testing"
)

const sampleEMBL = `ID   HBA_HUMAN   Reviewed;   141 AA.
AC   P69905; P01922;
DE   Hemoglobin subunit alpha.
DE   (Alpha-globin)
OS   Homo sapiens (Human).
DR   PDB; 1ABC; X-ray.
DR   GO; GO:0005344; oxygen carrier.
KW   Oxygen transport; Transport.
CC   -!- FUNCTION: Involved in oxygen transport from the lung.
SQ   SEQUENCE   24 AA;
     MVLSPADKTN VKAAWGKVGA HAGE
//
ID   MYG_HUMAN   Reviewed;   154 AA.
AC   P02144;
DE   Myoglobin.
OS   Homo sapiens (Human).
DR   PDB; 2DEF; NMR.
KW   Muscle protein.
SQ   SEQUENCE   20 AA;
     MGLSDGEWQL VLNVWGKVEA
//
`

func TestParseEMBL(t *testing.T) {
	db, err := ParseEMBL(strings.NewReader(sampleEMBL), "swissprot")
	if err != nil {
		t.Fatal(err)
	}
	entry := db.Relation("entry")
	if entry.Cardinality() != 2 {
		t.Fatalf("entries = %d", entry.Cardinality())
	}
	row := entry.Tuples[0]
	get := func(col string) string {
		return row[entry.Schema.Index(col)].AsString()
	}
	if get("accession") != "P69905" {
		t.Errorf("accession = %q", get("accession"))
	}
	if get("entry_name") != "HBA_HUMAN" {
		t.Errorf("entry_name = %q", get("entry_name"))
	}
	if !strings.Contains(get("description"), "Hemoglobin subunit alpha") ||
		!strings.Contains(get("description"), "Alpha-globin") {
		t.Errorf("description = %q (continuation lines must concatenate)", get("description"))
	}
	if get("organism") != "Homo sapiens (Human)" {
		t.Errorf("organism = %q", get("organism"))
	}
}

func TestParseEMBLDependentTables(t *testing.T) {
	db, err := ParseEMBL(strings.NewReader(sampleEMBL), "swissprot")
	if err != nil {
		t.Fatal(err)
	}
	dbref := db.Relation("dbref")
	if dbref.Cardinality() != 3 {
		t.Fatalf("dbrefs = %d", dbref.Cardinality())
	}
	r0 := dbref.Tuples[0]
	if r0[dbref.Schema.Index("dbname")].AsString() != "PDB" ||
		r0[dbref.Schema.Index("ref_accession")].AsString() != "1ABC" {
		t.Errorf("dbref row = %v", r0)
	}
	kw := db.Relation("keyword")
	if kw.Cardinality() != 3 {
		t.Errorf("keywords = %d", kw.Cardinality())
	}
	cc := db.Relation("comment")
	if cc.Cardinality() != 1 {
		t.Errorf("comments = %d", cc.Cardinality())
	}
	if !strings.HasPrefix(cc.Tuples[0][cc.Schema.Index("comment_text")].AsString(), "FUNCTION:") {
		t.Errorf("comment = %v", cc.Tuples[0])
	}
}

func TestParseEMBLSequenceBlock(t *testing.T) {
	db, _ := ParseEMBL(strings.NewReader(sampleEMBL), "swissprot")
	seq := db.Relation("sequence")
	if seq.Cardinality() != 2 {
		t.Fatalf("sequences = %d", seq.Cardinality())
	}
	s := seq.Tuples[0][seq.Schema.Index("seq")].AsString()
	if s != "MVLSPADKTNVKAAWGKVGAHAGE" {
		t.Errorf("seq = %q (blanks/numbers must be stripped)", s)
	}
}

func TestParseEMBLErrors(t *testing.T) {
	if _, err := ParseEMBL(strings.NewReader("DE  no id line\n//\n"), "x"); err == nil {
		t.Error("record not starting with ID should fail")
	}
	if _, err := ParseEMBL(strings.NewReader("ID  X\nDE  something\n//\n"), "x"); err == nil {
		t.Error("record without AC should fail")
	}
}

func TestParseEMBLEmptyInput(t *testing.T) {
	db, err := ParseEMBL(strings.NewReader(""), "x")
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("entry").Cardinality() != 0 {
		t.Error("empty input should produce no entries")
	}
}

const sampleFASTA = `>P69905 Hemoglobin subunit alpha
MVLSPADKTN
VKAAWGKVGA
>P02144 Myoglobin
mglsdgewql
`

func TestParseFASTA(t *testing.T) {
	db, err := ParseFASTA(strings.NewReader(sampleFASTA), "fastadb")
	if err != nil {
		t.Fatal(err)
	}
	fa := db.Relation("fasta")
	if fa.Cardinality() != 2 {
		t.Fatalf("records = %d", fa.Cardinality())
	}
	if fa.Tuples[0][1].AsString() != "P69905" {
		t.Errorf("acc = %v", fa.Tuples[0][1])
	}
	if fa.Tuples[0][3].AsString() != "MVLSPADKTNVKAAWGKVGA" {
		t.Errorf("seq = %v", fa.Tuples[0][3])
	}
	if fa.Tuples[1][3].AsString() != "MGLSDGEWQL" {
		t.Errorf("lowercase seq not upcased: %v", fa.Tuples[1][3])
	}
	if fa.Tuples[0][2].AsString() != "Hemoglobin subunit alpha" {
		t.Errorf("desc = %v", fa.Tuples[0][2])
	}
}

func TestParseFASTAErrors(t *testing.T) {
	if _, err := ParseFASTA(strings.NewReader("ACGT\n"), "x"); err == nil {
		t.Error("sequence before header should fail")
	}
	if _, err := ParseFASTA(strings.NewReader(">\nACGT\n"), "x"); err == nil {
		t.Error("empty header should fail")
	}
}

const sampleOBO = `format-version: 1.2

[Term]
id: GO:0000001
name: mitochondrion inheritance
namespace: biological_process
def: "The distribution of mitochondria." [GOC:mcc]
is_a: GO:0048308 ! organelle inheritance
is_a: GO:0048311 ! mitochondrion distribution

[Term]
id: GO:0048308
name: organelle inheritance
namespace: biological_process

[Typedef]
id: part_of
name: part of
`

func TestParseOBO(t *testing.T) {
	db, err := ParseOBO(strings.NewReader(sampleOBO), "go")
	if err != nil {
		t.Fatal(err)
	}
	term := db.Relation("term")
	if term.Cardinality() != 2 {
		t.Fatalf("terms = %d (Typedef stanzas must be skipped)", term.Cardinality())
	}
	r0 := term.Tuples[0]
	if r0[term.Schema.Index("acc")].AsString() != "GO:0000001" {
		t.Errorf("acc = %v", r0)
	}
	if r0[term.Schema.Index("definition")].AsString() != "The distribution of mitochondria." {
		t.Errorf("def = %q", r0[term.Schema.Index("definition")].AsString())
	}
	isa := db.Relation("term_isa")
	if isa.Cardinality() != 2 {
		t.Fatalf("is_a rows = %d", isa.Cardinality())
	}
	if isa.Tuples[0][isa.Schema.Index("parent_acc")].AsString() != "GO:0048308" {
		t.Errorf("parent = %v (comment after ! must be stripped)", isa.Tuples[0])
	}
}

func TestParseCSV(t *testing.T) {
	data := "id,accession,name\n1,X1,alpha\n2,X2,beta\n"
	db, err := ParseCSV(strings.NewReader(data), "csvdb", "rows", ',')
	if err != nil {
		t.Fatal(err)
	}
	r := db.Relation("rows")
	if r.Cardinality() != 2 || r.Schema.Len() != 3 {
		t.Fatalf("shape = %dx%d", r.Cardinality(), r.Schema.Len())
	}
	if r.Tuples[1][2].AsString() != "beta" {
		t.Errorf("cell = %v", r.Tuples[1][2])
	}
}

func TestParseTSV(t *testing.T) {
	data := "a\tb\n1\tx\n"
	db, err := ParseCSV(strings.NewReader(data), "tsvdb", "rows", '\t')
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("rows").Cardinality() != 1 {
		t.Error("TSV row not parsed")
	}
}

func TestParseCSVEmptyHeaderNames(t *testing.T) {
	data := "id,,name\n1,x,y\n"
	db, err := ParseCSV(strings.NewReader(data), "d", "t", ',')
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("t").Schema.Index("col2") < 0 {
		t.Errorf("anonymous column not named: %v", db.Relation("t").Schema.Names())
	}
}

const sampleXML = `<proteins release="2024">
  <protein acc="P1">
    <name>hemoglobin</name>
    <xref db="PDB" id="1ABC"/>
    <xref db="GO" id="GO:0005344"/>
  </protein>
  <protein acc="P2">
    <name>myoglobin</name>
  </protein>
</proteins>`

func TestParseXMLShredder(t *testing.T) {
	db, err := ParseXML(strings.NewReader(sampleXML), "xmldb")
	if err != nil {
		t.Fatal(err)
	}
	prot := db.Relation("protein")
	if prot == nil || prot.Cardinality() != 2 {
		t.Fatalf("protein rows = %v", prot)
	}
	if prot.Schema.Index("acc") < 0 {
		t.Fatalf("attribute column missing: %v", prot.Schema.Names())
	}
	if prot.Tuples[0][prot.Schema.Index("acc")].AsString() != "P1" {
		t.Errorf("acc = %v", prot.Tuples[0])
	}
	xref := db.Relation("xref")
	if xref.Cardinality() != 2 {
		t.Fatalf("xref rows = %d", xref.Cardinality())
	}
	name := db.Relation("name")
	if name.Cardinality() != 2 {
		t.Fatalf("name rows = %d", name.Cardinality())
	}
	if name.Tuples[0][name.Schema.Index("content")].AsString() != "hemoglobin" {
		t.Errorf("content = %v", name.Tuples[0])
	}
}

func TestParseXMLParentLinks(t *testing.T) {
	db, _ := ParseXML(strings.NewReader(sampleXML), "xmldb")
	prot := db.Relation("protein")
	xref := db.Relation("xref")
	// Both xrefs belong to the first protein element.
	p1ID := prot.Tuples[0][prot.Schema.Index("protein_xid")]
	for _, t2 := range xref.Tuples {
		if !t2[xref.Schema.Index("parent_xid")].Equal(p1ID) {
			t.Errorf("xref parent = %v want %v", t2[xref.Schema.Index("parent_xid")], p1ID)
		}
	}
	// Root element has empty parent.
	root := db.Relation("proteins")
	if !root.Tuples[0][root.Schema.Index("parent_xid")].IsNull() {
		t.Errorf("root parent = %v", root.Tuples[0])
	}
}

func TestParseXMLMalformed(t *testing.T) {
	if _, err := ParseXML(strings.NewReader("<a><b></a>"), "x"); err == nil {
		t.Error("mismatched tags should fail")
	}
	if _, err := ParseXML(strings.NewReader("<a>"), "x"); err == nil {
		t.Error("unclosed element should fail")
	}
}

func TestEMBLRoundTripThroughDiscovery(t *testing.T) {
	// The parsed EMBL output must be analyzable: entry should be found as
	// the primary relation with accession as the accession column. This
	// is the end-to-end §4.1 -> §4.2 contract.
	db, err := ParseEMBL(strings.NewReader(sampleEMBL), "swissprot")
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("entry").Schema.Index("accession") < 0 {
		t.Fatal("no accession column")
	}
	// Just sanity: the parser emits per-entry surrogate ids usable as FKs.
	dbref := db.Relation("dbref")
	vals, _ := dbref.DistinctValues("entry_id")
	if len(vals) != 2 {
		t.Errorf("dbref entry_id values = %d", len(vals))
	}
}
