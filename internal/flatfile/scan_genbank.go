package flatfile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// genbankRelations is the GenBank output schema, shared by scanner and
// whole-file wrapper.
var genbankRelations = []RelationSpec{
	{Name: "entry", Columns: []string{"entry_id", "accession", "locus_name", "definition", "organism"}},
	{Name: "dbxref", Columns: []string{"dbxref_id", "entry_id", "xref"}},
	{Name: "sequence", Columns: []string{"entry_id", "seq"}},
}

const (
	gbEntry = iota
	gbDbxref
	gbSequence
)

type genbankRecord struct {
	locus, accession, organism string
	definition                 []string
	xrefs                      []string
	seq                        strings.Builder
}

// genbankScanner streams GenBank records; surrogate-id counters are
// file-global like the whole-file parser's.
type genbankScanner struct {
	sc      *bufio.Scanner
	lineNo  int
	section string // current top-level keyword
	cur     *genbankRecord
	done    bool

	entrySeq, xrefSeq int
}

// NewGenBankScanner returns a streaming scanner over GenBank flat
// files: one Record per "//"-terminated entry, carrying the entry row
// plus its dbxref and sequence rows.
func NewGenBankScanner(r io.Reader) Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &genbankScanner{sc: sc}
}

func (s *genbankScanner) Relations() []RelationSpec { return genbankRelations }

func (s *genbankScanner) flush() (Record, error) {
	cur := s.cur
	s.cur = nil
	s.section = ""
	if cur.accession == "" {
		return Record{}, fmt.Errorf("flatfile: GenBank record ending before line %d has no ACCESSION", s.lineNo)
	}
	s.entrySeq++
	eid := strconv.Itoa(s.entrySeq)
	rows := make([]Row, 0, 2+len(cur.xrefs))
	rows = append(rows, Row{gbEntry, []string{eid, cur.accession, cur.locus,
		strings.TrimSuffix(strings.Join(cur.definition, " "), "."), cur.organism}})
	for _, x := range cur.xrefs {
		s.xrefSeq++
		rows = append(rows, Row{gbDbxref, []string{strconv.Itoa(s.xrefSeq), eid, x}})
	}
	if cur.seq.Len() > 0 {
		rows = append(rows, Row{gbSequence, []string{eid, cur.seq.String()}})
	}
	return Record{Rows: rows}, nil
}

func (s *genbankScanner) Next() (Record, error) {
	if s.done {
		return Record{}, io.EOF
	}
	for s.sc.Scan() {
		s.lineNo++
		line := s.sc.Text()
		if strings.HasPrefix(line, "//") {
			if s.cur != nil {
				rec, err := s.flush()
				if err != nil {
					s.done = true
					return Record{}, err
				}
				return rec, nil
			}
			continue
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		// Top-level keywords start in column 0.
		if line[0] != ' ' {
			keyword, after, found := strings.Cut(line, " ")
			rest := ""
			if found {
				rest = strings.TrimSpace(after)
			}
			if s.cur == nil {
				if keyword != "LOCUS" {
					s.done = true
					return Record{}, fmt.Errorf("flatfile: line %d: GenBank record must start with LOCUS, got %q", s.lineNo, keyword)
				}
				s.cur = &genbankRecord{}
			}
			s.section = keyword
			switch keyword {
			case "LOCUS":
				if f := strings.Fields(rest); len(f) > 0 {
					s.cur.locus = f[0]
				}
			case "DEFINITION":
				s.cur.definition = append(s.cur.definition, rest)
			case "ACCESSION":
				if f := strings.Fields(rest); len(f) > 0 {
					s.cur.accession = f[0]
				}
			case "SOURCE":
				s.cur.organism = rest
			case "ORIGIN":
				// Sequence lines follow.
			}
			continue
		}
		if s.cur == nil {
			s.done = true
			return Record{}, fmt.Errorf("flatfile: line %d: continuation before first LOCUS", s.lineNo)
		}
		trimmed := strings.TrimSpace(line)
		switch s.section {
		case "DEFINITION":
			s.cur.definition = append(s.cur.definition, trimmed)
		case "FEATURES":
			if strings.HasPrefix(trimmed, "/db_xref=") {
				v := strings.Trim(strings.TrimPrefix(trimmed, "/db_xref="), `"`)
				if v != "" {
					s.cur.xrefs = append(s.cur.xrefs, v)
				}
			}
		case "ORIGIN":
			s.cur.seq.WriteString(stripSeqLine(line))
		}
	}
	s.done = true
	if err := s.sc.Err(); err != nil {
		return Record{}, err
	}
	if s.cur != nil {
		rec, err := s.flush()
		if err != nil {
			return Record{}, err
		}
		return rec, nil
	}
	return Record{}, io.EOF
}
