package flatfile

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rel"
)

// ParseXML is a generic XML shredder in the spirit of [NJM03] ("Super-Fast
// XML Wrapper Generation in DB2"): every element name becomes a relation
// whose columns are a surrogate id, the parent element's id, the element's
// attributes, and its text content. No schema knowledge is required — the
// discovery steps reconstruct structure from the generated surrogate keys.
func ParseXML(r io.Reader, dbName string) (*rel.Database, error) {
	db := rel.NewDatabase(dbName)
	dec := xml.NewDecoder(r)

	type frame struct {
		name string
		id   int
		// attrs and text accumulate until the element closes.
		attrs map[string]string
		text  strings.Builder
	}
	// rows buffers per-element-name rows until all columns are known.
	type row struct {
		id, parentID int
		attrs        map[string]string
		text         string
	}
	rowsByName := make(map[string][]row)
	attrNames := make(map[string]map[string]bool)
	var nameOrder []string

	var stack []*frame
	nextID := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("flatfile: XML parse error: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			nextID++
			f := &frame{name: strings.ToLower(t.Name.Local), id: nextID, attrs: make(map[string]string)}
			for _, a := range t.Attr {
				f.attrs[strings.ToLower(a.Name.Local)] = a.Value
			}
			stack = append(stack, f)
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].text.Write(t)
			}
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("flatfile: unbalanced XML end element %q", t.Name.Local)
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			parentID := 0
			if len(stack) > 0 {
				parentID = stack[len(stack)-1].id
			}
			if _, ok := rowsByName[f.name]; !ok {
				nameOrder = append(nameOrder, f.name)
				attrNames[f.name] = make(map[string]bool)
			}
			for a := range f.attrs {
				attrNames[f.name][a] = true
			}
			rowsByName[f.name] = append(rowsByName[f.name], row{
				id: f.id, parentID: parentID,
				attrs: f.attrs,
				text:  strings.TrimSpace(f.text.String()),
			})
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("flatfile: XML document ended inside element %q", stack[len(stack)-1].name)
	}
	// Materialize relations: id, parent_id, sorted attributes, content.
	for _, name := range nameOrder {
		var attrs []string
		for a := range attrNames[name] {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		cols := append([]string{name + "_xid", "parent_xid"}, attrs...)
		cols = append(cols, "content")
		relo := db.Create(name, rel.TextSchema(cols...))
		for _, rw := range rowsByName[name] {
			fields := make([]string, 0, len(cols))
			fields = append(fields, strconv.Itoa(rw.id))
			if rw.parentID == 0 {
				fields = append(fields, "")
			} else {
				fields = append(fields, strconv.Itoa(rw.parentID))
			}
			for _, a := range attrs {
				fields = append(fields, rw.attrs[a])
			}
			fields = append(fields, rw.text)
			relo.AppendRaw(fields...)
		}
	}
	return db, nil
}
