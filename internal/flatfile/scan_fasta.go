package flatfile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// fastaRelations is the FASTA output schema, shared by scanner and
// whole-file wrapper.
var fastaRelations = []RelationSpec{
	{Name: "fasta", Columns: []string{"fasta_id", "accession", "description", "seq"}},
}

// fastaScanner streams FASTA records: each ">" header plus its
// sequence lines is one Record. The record only completes when the
// next header (or EOF) arrives — a live tail therefore holds the last
// record open until the stream ends.
type fastaScanner struct {
	sc     *bufio.Scanner
	lineNo int
	acc    string
	desc   string
	seq    strings.Builder
	n      int
	done   bool
}

// NewFASTAScanner returns a streaming scanner over FASTA data.
func NewFASTAScanner(r io.Reader) Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &fastaScanner{sc: sc}
}

func (s *fastaScanner) Relations() []RelationSpec { return fastaRelations }

// flush converts the accumulated entry into a Record and resets.
// Callers check s.acc != "" first.
func (s *fastaScanner) flush() Record {
	s.n++
	rec := Record{Rows: []Row{{0, []string{strconv.Itoa(s.n), s.acc, s.desc, s.seq.String()}}}}
	s.acc, s.desc = "", ""
	s.seq.Reset()
	return rec
}

func (s *fastaScanner) Next() (Record, error) {
	if s.done {
		return Record{}, io.EOF
	}
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ">") {
			header := strings.TrimSpace(line[1:])
			if header == "" {
				s.done = true
				return Record{}, fmt.Errorf("flatfile: empty FASTA header at line %d", s.lineNo)
			}
			var rec Record
			emit := s.acc != ""
			if emit {
				rec = s.flush()
			}
			if i := strings.IndexAny(header, " \t"); i >= 0 {
				s.acc, s.desc = header[:i], strings.TrimSpace(header[i:])
			} else {
				s.acc = header
			}
			if emit {
				return rec, nil
			}
			continue
		}
		if s.acc == "" {
			s.done = true
			return Record{}, fmt.Errorf("flatfile: sequence data before first FASTA header at line %d", s.lineNo)
		}
		s.seq.WriteString(strings.ToUpper(line))
	}
	s.done = true
	if err := s.sc.Err(); err != nil {
		return Record{}, err
	}
	if s.acc != "" {
		return s.flush(), nil
	}
	return Record{}, io.EOF
}
