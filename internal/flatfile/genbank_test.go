package flatfile

import (
	"strings"
	"testing"
)

const sampleGenBank = `LOCUS       NM_000518   626 bp  mRNA  linear  PRI 01-JAN-2024
DEFINITION  Homo sapiens hemoglobin subunit beta (HBB),
            mRNA.
ACCESSION   NM_000518
VERSION     NM_000518.5
SOURCE      Homo sapiens (human)
FEATURES             Location/Qualifiers
     gene            1..626
                     /gene="HBB"
                     /db_xref="GeneID:3043"
                     /db_xref="HGNC:4827"
     CDS             51..494
                     /protein_id="NP_000509.1"
                     /db_xref="UniProtKB:P68871"
ORIGIN
        1 acatttgctt ctgacacaac tgtgttcact agcaacctca
       41 aacagacacc atggtgcatc tgactcctga
//
LOCUS       NM_001101   1852 bp  mRNA  linear  PRI 01-JAN-2024
DEFINITION  Homo sapiens actin beta (ACTB), mRNA.
ACCESSION   NM_001101
SOURCE      Homo sapiens (human)
ORIGIN
        1 accgccgaga ccgcgtccgc
//
`

func TestParseGenBank(t *testing.T) {
	db, err := ParseGenBank(strings.NewReader(sampleGenBank), "genbank")
	if err != nil {
		t.Fatal(err)
	}
	entry := db.Relation("entry")
	if entry.Cardinality() != 2 {
		t.Fatalf("entries = %d", entry.Cardinality())
	}
	row := entry.Tuples[0]
	get := func(col string) string { return row[entry.Schema.Index(col)].AsString() }
	if get("accession") != "NM_000518" {
		t.Errorf("accession = %q", get("accession"))
	}
	if get("locus_name") != "NM_000518" {
		t.Errorf("locus = %q", get("locus_name"))
	}
	if !strings.Contains(get("definition"), "hemoglobin subunit beta") ||
		!strings.Contains(get("definition"), "mRNA") {
		t.Errorf("definition = %q (continuation must concatenate)", get("definition"))
	}
	if get("organism") != "Homo sapiens (human)" {
		t.Errorf("organism = %q", get("organism"))
	}
}

func TestParseGenBankDBXrefs(t *testing.T) {
	db, _ := ParseGenBank(strings.NewReader(sampleGenBank), "genbank")
	x := db.Relation("dbxref")
	if x.Cardinality() != 3 {
		t.Fatalf("xrefs = %d", x.Cardinality())
	}
	vals, _ := x.DistinctValues("xref")
	want := []string{"GeneID:3043", "HGNC:4827", "UniProtKB:P68871"}
	for _, w := range want {
		found := false
		for _, v := range vals {
			if v.AsString() == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing xref %q", w)
		}
	}
	// All belong to entry 1.
	for _, tu := range x.Tuples {
		if tu[x.Schema.Index("entry_id")].AsString() != "1" {
			t.Errorf("xref owner = %v", tu)
		}
	}
}

func TestParseGenBankSequence(t *testing.T) {
	db, _ := ParseGenBank(strings.NewReader(sampleGenBank), "genbank")
	s := db.Relation("sequence")
	if s.Cardinality() != 2 {
		t.Fatalf("sequences = %d", s.Cardinality())
	}
	seq := s.Tuples[0][s.Schema.Index("seq")].AsString()
	if !strings.HasPrefix(seq, "ACATTTGCTT") {
		t.Errorf("seq = %.20q (numbers/spaces must be stripped, bases upcased)", seq)
	}
	if strings.ContainsAny(seq, "0123456789 ") {
		t.Error("sequence contains digits or spaces")
	}
}

func TestParseGenBankErrors(t *testing.T) {
	if _, err := ParseGenBank(strings.NewReader("DEFINITION  no locus\n//\n"), "x"); err == nil {
		t.Error("record without LOCUS should fail")
	}
	if _, err := ParseGenBank(strings.NewReader("LOCUS  X\nDEFINITION  d\n//\n"), "x"); err == nil {
		t.Error("record without ACCESSION should fail")
	}
	if _, err := ParseGenBank(strings.NewReader("    stray continuation\n"), "x"); err == nil {
		t.Error("continuation before LOCUS should fail")
	}
}

func TestParseGenBankEmpty(t *testing.T) {
	db, err := ParseGenBank(strings.NewReader(""), "x")
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("entry").Cardinality() != 0 {
		t.Error("empty input should yield no entries")
	}
}
