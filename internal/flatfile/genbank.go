package flatfile

import (
	"io"

	"repro/internal/rel"
)

// ParseGenBank reads NCBI GenBank-format flat files: records with
// column-keyword headers (LOCUS, DEFINITION, ACCESSION, SOURCE), a
// FEATURES block whose /db_xref qualifiers carry cross-references, and an
// ORIGIN sequence block, terminated by "//".
//
// Output relations: entry (entry_id, accession, locus_name, definition,
// organism), dbxref (dbxref_id, entry_id, xref) and sequence (entry_id,
// seq) — exactly the shape the §4.2-§4.4 discovery steps expect.
//
// ParseGenBank is the collect-all form of NewGenBankScanner.
func ParseGenBank(r io.Reader, dbName string) (*rel.Database, error) {
	return collect(NewGenBankScanner(r), dbName, nil)
}
