package flatfile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/rel"
)

// ParseGenBank reads NCBI GenBank-format flat files: records with
// column-keyword headers (LOCUS, DEFINITION, ACCESSION, SOURCE), a
// FEATURES block whose /db_xref qualifiers carry cross-references, and an
// ORIGIN sequence block, terminated by "//".
//
// Output relations: entry (entry_id, accession, locus_name, definition,
// organism), dbxref (dbxref_id, entry_id, xref) and sequence (entry_id,
// seq) — exactly the shape the §4.2-§4.4 discovery steps expect.
func ParseGenBank(r io.Reader, dbName string) (*rel.Database, error) {
	db := rel.NewDatabase(dbName)
	entry := db.Create("entry", rel.TextSchema("entry_id", "accession", "locus_name", "definition", "organism"))
	dbxref := db.Create("dbxref", rel.TextSchema("dbxref_id", "entry_id", "xref"))
	seqrel := db.Create("sequence", rel.TextSchema("entry_id", "seq"))

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	type record struct {
		locus, accession, organism string
		definition                 []string
		xrefs                      []string
		seq                        strings.Builder
	}
	var cur *record
	section := "" // current top-level keyword
	entrySeq, xrefSeq := 0, 0
	lineNo := 0

	flush := func() error {
		if cur == nil {
			return nil
		}
		if cur.accession == "" {
			return fmt.Errorf("flatfile: GenBank record ending before line %d has no ACCESSION", lineNo)
		}
		entrySeq++
		eid := strconv.Itoa(entrySeq)
		entry.AppendRaw(eid, cur.accession, cur.locus,
			strings.TrimSuffix(strings.Join(cur.definition, " "), "."), cur.organism)
		for _, x := range cur.xrefs {
			xrefSeq++
			dbxref.AppendRaw(strconv.Itoa(xrefSeq), eid, x)
		}
		if cur.seq.Len() > 0 {
			seqrel.AppendRaw(eid, cur.seq.String())
		}
		cur = nil
		section = ""
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.HasPrefix(line, "//") {
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		// Top-level keywords start in column 0.
		if line[0] != ' ' {
			fields := strings.SplitN(line, " ", 2)
			keyword := fields[0]
			rest := ""
			if len(fields) > 1 {
				rest = strings.TrimSpace(fields[1])
			}
			if cur == nil {
				if keyword != "LOCUS" {
					return nil, fmt.Errorf("flatfile: line %d: GenBank record must start with LOCUS, got %q", lineNo, keyword)
				}
				cur = &record{}
			}
			section = keyword
			switch keyword {
			case "LOCUS":
				if f := strings.Fields(rest); len(f) > 0 {
					cur.locus = f[0]
				}
			case "DEFINITION":
				cur.definition = append(cur.definition, rest)
			case "ACCESSION":
				if f := strings.Fields(rest); len(f) > 0 {
					cur.accession = f[0]
				}
			case "SOURCE":
				cur.organism = rest
			case "ORIGIN":
				// Sequence lines follow.
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("flatfile: line %d: continuation before first LOCUS", lineNo)
		}
		trimmed := strings.TrimSpace(line)
		switch section {
		case "DEFINITION":
			cur.definition = append(cur.definition, trimmed)
		case "FEATURES":
			if strings.HasPrefix(trimmed, "/db_xref=") {
				v := strings.Trim(strings.TrimPrefix(trimmed, "/db_xref="), `"`)
				if v != "" {
					cur.xrefs = append(cur.xrefs, v)
				}
			}
		case "ORIGIN":
			cur.seq.WriteString(stripSeqLine(line))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		if err := flush(); err != nil {
			return nil, err
		}
	}
	return db, nil
}
