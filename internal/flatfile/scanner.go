package flatfile

// This file is the streaming front end of the import component:
// Scanner yields one logical record at a time off an io.Reader, so
// ingestion can batch commits and bound memory by batch size instead
// of file size. The whole-file Parse entry points are thin collect-all
// wrappers over these scanners; internal/ingest drains them
// incrementally.

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/rel"
)

// RelationSpec describes one output relation of a Scanner: its name
// and column names (all text, like every generically imported source).
type RelationSpec struct {
	Name    string
	Columns []string
}

// Row is one tuple of raw text fields destined for the relation at
// the given index of the scanner's Relations(). Empty fields mean
// NULL, exactly as Relation.AppendRaw treats them.
type Row struct {
	Relation int
	Fields   []string
}

// Record is one logical flat-file record: the primary row plus every
// dependent row parsed from the same entry (an EMBL entry with its
// dbrefs, keywords, comments, and sequence, say). Dependents stay
// with their parent so a batch boundary can never separate them.
type Record struct {
	Rows []Row
}

// Scanner yields the records of one flat file in order. Next returns
// io.EOF after the last record; any other error is a parse error (or
// the reader's), after which the scanner is exhausted. Scanners are
// not safe for concurrent use.
type Scanner interface {
	// Relations describes the output relations; fixed for the life of
	// the scanner (CSV reads its header row eagerly at construction).
	Relations() []RelationSpec
	// Next returns the next record, or io.EOF.
	Next() (Record, error)
}

// StreamFormats lists the formats with a streaming scanner. OBO and
// XML parse whole-file only (stanza cross-references and document
// trees have no bounded record framing) and stay on the Parse path.
func StreamFormats() []string {
	return []string{"embl", "genbank", "fasta", "csv", "tsv"}
}

// NewScanner returns a streaming scanner for the named format reading
// from r. CSV and TSV place their rows in a relation named "data",
// matching Parse.
func NewScanner(format string, r io.Reader) (Scanner, error) {
	switch format {
	case "embl":
		return NewEMBLScanner(r), nil
	case "genbank":
		return NewGenBankScanner(r), nil
	case "fasta":
		return NewFASTAScanner(r), nil
	case "csv":
		return NewCSVScanner(r, "data", ',')
	case "tsv":
		return NewCSVScanner(r, "data", '\t')
	default:
		return nil, fmt.Errorf("flatfile: no streaming scanner for format %q (streamable: %s)",
			format, strings.Join(StreamFormats(), ", "))
	}
}

// Streamable reports whether the format has a streaming scanner.
func Streamable(format string) bool {
	for _, f := range StreamFormats() {
		if f == format {
			return true
		}
	}
	return false
}

// collect drains a scanner into a fresh database — the whole-file
// Parse semantics expressed over the streaming path, so there is
// exactly one parser per format.
func collect(s Scanner, dbName string, err error) (*rel.Database, error) {
	if err != nil {
		return nil, err
	}
	db := rel.NewDatabase(dbName)
	specs := s.Relations()
	rels := make([]*rel.Relation, len(specs))
	for i, spec := range specs {
		rels[i] = db.Create(spec.Name, rel.TextSchema(spec.Columns...))
	}
	var alloc rel.TupleAlloc
	defer alloc.Release()
	for {
		rec, err := s.Next()
		if err == io.EOF {
			return db, nil
		}
		if err != nil {
			return nil, err
		}
		for _, row := range rec.Rows {
			rels[row.Relation].AppendPooled(&alloc, row.Fields)
		}
	}
}
