package flatfile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// emblRelations is the BioSQL-shaped output schema of the EMBL path —
// shared by the scanner and the whole-file wrapper so the two can
// never drift.
var emblRelations = []RelationSpec{
	{Name: "entry", Columns: []string{"entry_id", "accession", "entry_name", "description", "organism"}},
	{Name: "dbref", Columns: []string{"dbref_id", "entry_id", "dbname", "ref_accession"}},
	{Name: "keyword", Columns: []string{"keyword_id", "entry_id", "keyword"}},
	{Name: "comment", Columns: []string{"comment_id", "entry_id", "comment_text"}},
	{Name: "sequence", Columns: []string{"entry_id", "seq"}},
}

// Relation indexes into emblRelations.
const (
	emblEntry = iota
	emblDbref
	emblKeyword
	emblComment
	emblSequence
)

type emblRecord struct {
	id, name, organism string
	desc               []string
	acc                []string
	drs                [][2]string
	kws                []string
	ccs                []string
	seq                strings.Builder
}

// emblScanner streams EMBL/Swiss-Prot-style records. The surrogate-id
// counters (entry_id, dbref_id, ...) are file-global, exactly like the
// whole-file parser's, so the record stream concatenates to the same
// relations Parse would build.
type emblScanner struct {
	sc     *bufio.Scanner
	lineNo int
	inSeq  bool
	cur    *emblRecord
	done   bool

	entrySeq, dbrefSeq, kwSeq, ccSeq int
}

// NewEMBLScanner returns a streaming scanner over EMBL/Swiss-Prot-style
// flat files: one Record per "//"-terminated entry, carrying the entry
// row plus its dependent dbref/keyword/comment/sequence rows.
func NewEMBLScanner(r io.Reader) Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &emblScanner{sc: sc}
}

func (s *emblScanner) Relations() []RelationSpec { return emblRelations }

// flush converts the accumulated entry into a Record and resets.
func (s *emblScanner) flush() (Record, error) {
	cur := s.cur
	s.cur = nil
	if len(cur.acc) == 0 {
		return Record{}, fmt.Errorf("flatfile: record ending before line %d has no AC line", s.lineNo)
	}
	s.entrySeq++
	eid := strconv.Itoa(s.entrySeq)
	rows := make([]Row, 0, 1+len(cur.drs)+len(cur.kws)+len(cur.ccs)+1)
	rows = append(rows, Row{emblEntry, []string{eid, cur.acc[0], cur.name, strings.Join(cur.desc, " "), cur.organism}})
	for _, dr := range cur.drs {
		s.dbrefSeq++
		rows = append(rows, Row{emblDbref, []string{strconv.Itoa(s.dbrefSeq), eid, dr[0], dr[1]}})
	}
	for _, kw := range cur.kws {
		s.kwSeq++
		rows = append(rows, Row{emblKeyword, []string{strconv.Itoa(s.kwSeq), eid, kw}})
	}
	for _, cc := range cur.ccs {
		s.ccSeq++
		rows = append(rows, Row{emblComment, []string{strconv.Itoa(s.ccSeq), eid, cc}})
	}
	if cur.seq.Len() > 0 {
		rows = append(rows, Row{emblSequence, []string{eid, cur.seq.String()}})
	}
	return Record{Rows: rows}, nil
}

func (s *emblScanner) Next() (Record, error) {
	if s.done {
		return Record{}, io.EOF
	}
	for s.sc.Scan() {
		s.lineNo++
		line := s.sc.Text()
		if strings.HasPrefix(line, "//") {
			inRecord := s.cur != nil
			s.inSeq = false
			if inRecord {
				rec, err := s.flush()
				if err != nil {
					s.done = true
					return Record{}, err
				}
				return rec, nil
			}
			continue
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if s.inSeq {
			if strings.HasPrefix(line, " ") || !hasLineCode(line) {
				if s.cur != nil {
					s.cur.seq.WriteString(stripSeqLine(line))
				}
				continue
			}
			s.inSeq = false
		}
		if len(line) < 2 {
			s.done = true
			return Record{}, fmt.Errorf("flatfile: malformed line %d: %q", s.lineNo, line)
		}
		code := line[:2]
		rest := ""
		if len(line) > 2 {
			rest = strings.TrimSpace(line[2:])
		}
		if s.cur == nil {
			if code != "ID" {
				s.done = true
				return Record{}, fmt.Errorf("flatfile: line %d: record must start with ID, got %q", s.lineNo, code)
			}
			s.cur = &emblRecord{}
		}
		cur := s.cur
		switch code {
		case "ID":
			if fields := strings.Fields(rest); len(fields) > 0 {
				cur.name = fields[0]
			}
		case "AC":
			eachSemiField(rest, func(a string) {
				if a = strings.TrimSpace(a); a != "" {
					cur.acc = append(cur.acc, a)
				}
			})
		case "DE":
			cur.desc = append(cur.desc, rest)
		case "OS":
			if cur.organism == "" {
				cur.organism = strings.TrimSuffix(rest, ".")
			}
		case "DR":
			// "DBNAME; ACC; ..." — only the first two fields matter; a
			// line with no semicolon has no accession field and is
			// dropped, like the legacy len(parts) >= 2 check.
			if i := strings.IndexByte(rest, ';'); i >= 0 {
				p1 := rest[i+1:]
				if j := strings.IndexByte(p1, ';'); j >= 0 {
					p1 = p1[:j]
				}
				cur.drs = append(cur.drs, [2]string{
					strings.TrimSpace(rest[:i]),
					strings.TrimSuffix(strings.TrimSpace(p1), "."),
				})
			}
		case "KW":
			eachSemiField(strings.TrimSuffix(rest, "."), func(k string) {
				if k = strings.TrimSpace(k); k != "" {
					cur.kws = append(cur.kws, k)
				}
			})
		case "CC":
			cur.ccs = append(cur.ccs, strings.TrimPrefix(rest, "-!- "))
		case "SQ":
			s.inSeq = true
		default:
			// Unknown line types are tolerated (real files carry many).
		}
	}
	s.done = true
	if err := s.sc.Err(); err != nil {
		return Record{}, err
	}
	if s.cur != nil {
		rec, err := s.flush()
		if err != nil {
			return Record{}, err
		}
		return rec, nil
	}
	return Record{}, io.EOF
}

// eachSemiField calls fn for every ";"-separated field of s — the
// allocation-free strings.Split replacement for the hot path. Like
// Split, interior empty fields are visited (callers skip them after
// trimming); unlike Split, a trailing empty field is not, which is
// indistinguishable to callers that skip empties.
func eachSemiField(s string, fn func(string)) {
	for len(s) > 0 {
		i := strings.IndexByte(s, ';')
		if i < 0 {
			fn(s)
			return
		}
		fn(s[:i])
		s = s[i+1:]
	}
}
