package flatfile

import (
	"strings"
	"testing"
)

// junkInputs are adversarial byte streams no parser may panic on.
var junkInputs = []string{
	"",
	"\n\n\n",
	"random prose that is not any known format at all",
	"ID\n",
	"//\n//\n//\n",
	">",
	"[Term]\n[Term]\n[Typedef]\n",
	strings.Repeat("A", 100000),
	"ID   X\nAC   Y;\nSQ\n" + strings.Repeat("ACGT ", 5000) + "\n//\n",
	"\x00\x01\x02binary garbage\xff\xfe",
	"LOCUS\nLOCUS\n",
}

// TestParsersNeverPanic feeds junk to every parser; errors are fine,
// panics are not, and any database returned must be well-formed.
func TestParsersNeverPanic(t *testing.T) {
	type parser struct {
		name string
		fn   func(s string) error
	}
	parsers := []parser{
		{"embl", func(s string) error { _, err := ParseEMBL(strings.NewReader(s), "x"); return err }},
		{"genbank", func(s string) error { _, err := ParseGenBank(strings.NewReader(s), "x"); return err }},
		{"fasta", func(s string) error { _, err := ParseFASTA(strings.NewReader(s), "x"); return err }},
		{"obo", func(s string) error { _, err := ParseOBO(strings.NewReader(s), "x"); return err }},
		{"csv", func(s string) error { _, err := ParseCSV(strings.NewReader(s), "x", "t", ','); return err }},
		{"xml", func(s string) error { _, err := ParseXML(strings.NewReader(s), "x"); return err }},
	}
	for _, p := range parsers {
		for i, in := range junkInputs {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s panicked on junk input %d: %v", p.name, i, r)
					}
				}()
				_ = p.fn(in) // error or nil are both acceptable
			}()
		}
	}
}

// TestEMBLRecordWithUnknownLineTypes tolerates codes we do not model.
func TestEMBLRecordWithUnknownLineTypes(t *testing.T) {
	in := `ID   X_TEST   Reviewed;
AC   P99999;
XX
RN   [1]
RA   Some Author;
RT   "A title we ignore.";
DE   Something real.
FT   CHAIN  1..10
SQ   SEQUENCE
     ACGTACGTAC
//
`
	db, err := ParseEMBL(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	e := db.Relation("entry")
	if e.Cardinality() != 1 {
		t.Fatalf("entries = %d", e.Cardinality())
	}
	if e.Tuples[0][e.Schema.Index("description")].AsString() != "Something real." {
		t.Errorf("description = %v", e.Tuples[0])
	}
}

// TestXMLDeepNesting exercises recursive structures.
func TestXMLDeepNesting(t *testing.T) {
	var sb strings.Builder
	depth := 200
	for i := 0; i < depth; i++ {
		sb.WriteString("<n>")
	}
	sb.WriteString("leaf")
	for i := 0; i < depth; i++ {
		sb.WriteString("</n>")
	}
	db, err := ParseXML(strings.NewReader(sb.String()), "deep")
	if err != nil {
		t.Fatal(err)
	}
	n := db.Relation("n")
	if n.Cardinality() != depth {
		t.Errorf("rows = %d want %d", n.Cardinality(), depth)
	}
}

// TestCSVQuotedFields checks embedded commas and quotes survive.
func TestCSVQuotedFields(t *testing.T) {
	in := "id,desc\n1,\"contains, comma\"\n2,\"has \"\"quotes\"\"\"\n"
	db, err := ParseCSV(strings.NewReader(in), "x", "t", ',')
	if err != nil {
		t.Fatal(err)
	}
	r := db.Relation("t")
	if r.Tuples[0][1].AsString() != "contains, comma" {
		t.Errorf("row0 = %v", r.Tuples[0])
	}
	if r.Tuples[1][1].AsString() != `has "quotes"` {
		t.Errorf("row1 = %v", r.Tuples[1])
	}
}

// TestFASTAMultiLineSequenceJoins verifies continuation concatenation.
func TestFASTAMultiLineSequenceJoins(t *testing.T) {
	in := ">X1 test\nACGT\nACGT\nACGT\n"
	db, err := ParseFASTA(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	fa := db.Relation("fasta")
	if got := fa.Tuples[0][3].AsString(); got != "ACGTACGTACGT" {
		t.Errorf("seq = %q", got)
	}
}
