package flatfile

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// csvScanner streams delimited rows. The header row is consumed
// eagerly at construction so Relations() is fixed up front.
type csvScanner struct {
	cr   *csv.Reader
	spec []RelationSpec
	done bool
}

// NewCSVScanner returns a streaming scanner over delimited text with a
// header row, placing rows in a single relation named by table. comma
// is the delimiter (use '\t' for TSV). Reading the header may fail,
// hence the error.
func NewCSVScanner(r io.Reader, table string, comma rune) (Scanner, error) {
	cr := csv.NewReader(r)
	cr.Comma = comma
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("flatfile: reading CSV header: %w", err)
	}
	for i := range header {
		header[i] = strings.TrimSpace(header[i])
		if header[i] == "" {
			header[i] = fmt.Sprintf("col%d", i+1)
		}
	}
	return &csvScanner{cr: cr, spec: []RelationSpec{{Name: table, Columns: header}}}, nil
}

func (s *csvScanner) Relations() []RelationSpec { return s.spec }

func (s *csvScanner) Next() (Record, error) {
	if s.done {
		return Record{}, io.EOF
	}
	rec, err := s.cr.Read()
	if err == io.EOF {
		s.done = true
		return Record{}, io.EOF
	}
	if err != nil {
		s.done = true
		return Record{}, fmt.Errorf("flatfile: reading CSV row: %w", err)
	}
	return Record{Rows: []Row{{0, rec}}}, nil
}
