// Package flatfile implements ALADIN's data import component (§4.1): it
// reads the textual exchange formats common in the life sciences into the
// relational engine, with no schema design required — "straight-forward
// mappings to tables are sufficient" because the downstream discovery
// steps infer all structure from the data.
//
// Supported formats: EMBL/Swiss-Prot-style line-typed flat files (the
// BioPerl/BioSQL path), FASTA, OBO ontologies (the Gene Ontology path),
// CSV/TSV, and a generic XML shredder in the spirit of [NJM03].
package flatfile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/rel"
)

// ParseEMBL reads an EMBL/Swiss-Prot-style flat file: records of
// two-letter line-type codes terminated by "//". It produces the
// BioSQL-shaped schema of Figure 3: an entry relation plus dependent
// relations for cross-references (DR lines), keywords (KW), comments (CC)
// and the sequence (SQ block).
//
// Recognized line types: ID, AC, DE, OS, DR, KW, CC, SQ (+ continuation
// lines starting with blanks inside the SQ block).
//
// ParseEMBL is the collect-all form of NewEMBLScanner: the streaming
// scanner is the single parser implementation.
func ParseEMBL(r io.Reader, dbName string) (*rel.Database, error) {
	return collect(NewEMBLScanner(r), dbName, nil)
}

// hasLineCode reports whether a line starts with a two-uppercase-letter
// code followed by whitespace or end of line.
func hasLineCode(line string) bool {
	if len(line) < 2 {
		return false
	}
	c0, c1 := line[0], line[1]
	if c0 < 'A' || c0 > 'Z' || c1 < 'A' || c1 > 'Z' {
		return false
	}
	return len(line) == 2 || line[2] == ' '
}

// stripSeqLine removes blanks and trailing position numbers from a
// sequence block line.
func stripSeqLine(line string) string {
	var sb strings.Builder
	for _, r := range line {
		if (r >= 'A' && r <= 'Z') || (r >= 'a' && r <= 'z') {
			sb.WriteRune(r)
		}
	}
	return strings.ToUpper(sb.String())
}

// ParseFASTA reads FASTA records (">id description" header lines followed
// by sequence lines) into a single relation (fasta_id, accession,
// description, seq). It is the collect-all form of NewFASTAScanner.
func ParseFASTA(r io.Reader, dbName string) (*rel.Database, error) {
	return collect(NewFASTAScanner(r), dbName, nil)
}

// ParseOBO reads an OBO ontology file ([Term] stanzas with id:, name:,
// def:, is_a: tags) into a term relation and an is_a relation.
func ParseOBO(r io.Reader, dbName string) (*rel.Database, error) {
	db := rel.NewDatabase(dbName)
	term := db.Create("term", rel.TextSchema("term_id", "acc", "term_name", "definition", "namespace"))
	isa := db.Create("term_isa", rel.TextSchema("isa_id", "acc", "parent_acc"))
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	inTerm := false
	var id, name, def, ns string
	var parents []string
	termSeq, isaSeq := 0, 0
	flush := func() {
		if !inTerm || id == "" {
			return
		}
		termSeq++
		term.AppendRaw(strconv.Itoa(termSeq), id, name, def, ns)
		for _, p := range parents {
			isaSeq++
			isa.AppendRaw(strconv.Itoa(isaSeq), id, p)
		}
		id, name, def, ns = "", "", "", ""
		parents = nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "[Term]":
			flush()
			inTerm = true
		case strings.HasPrefix(line, "["):
			flush()
			inTerm = false
		case inTerm && strings.HasPrefix(line, "id:"):
			id = strings.TrimSpace(line[3:])
		case inTerm && strings.HasPrefix(line, "name:"):
			name = strings.TrimSpace(line[5:])
		case inTerm && strings.HasPrefix(line, "def:"):
			def = strings.Trim(strings.TrimSpace(line[4:]), "\"")
			if i := strings.Index(def, `" [`); i >= 0 {
				def = def[:i]
			}
		case inTerm && strings.HasPrefix(line, "namespace:"):
			ns = strings.TrimSpace(line[10:])
		case inTerm && strings.HasPrefix(line, "is_a:"):
			p := strings.TrimSpace(line[5:])
			if i := strings.Index(p, "!"); i >= 0 {
				p = strings.TrimSpace(p[:i])
			}
			parents = append(parents, p)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return db, nil
}

// ParseCSV reads delimited text with a header row into one relation named
// after the table argument. comma is the delimiter (use '\t' for TSV).
// It is the collect-all form of NewCSVScanner.
func ParseCSV(r io.Reader, dbName, table string, comma rune) (*rel.Database, error) {
	s, err := NewCSVScanner(r, table, comma)
	return collect(s, dbName, err)
}

// Formats lists the format names accepted by Parse.
func Formats() []string {
	return []string{"embl", "genbank", "fasta", "obo", "csv", "tsv", "xml"}
}

// Parse dispatches to the parser for the named format — the single
// registry behind every front end (CLI import, HTTP upload), so the
// supported format set cannot drift between them. CSV and TSV data
// lands in a relation named "data".
func Parse(format string, r io.Reader, dbName string) (*rel.Database, error) {
	switch format {
	case "embl":
		return ParseEMBL(r, dbName)
	case "genbank":
		return ParseGenBank(r, dbName)
	case "fasta":
		return ParseFASTA(r, dbName)
	case "obo":
		return ParseOBO(r, dbName)
	case "csv":
		return ParseCSV(r, dbName, "data", ',')
	case "tsv":
		return ParseCSV(r, dbName, "data", '\t')
	case "xml":
		return ParseXML(r, dbName)
	default:
		return nil, fmt.Errorf("flatfile: unknown format %q (supported: %s)", format, strings.Join(Formats(), ", "))
	}
}
