// Package flatfile implements ALADIN's data import component (§4.1): it
// reads the textual exchange formats common in the life sciences into the
// relational engine, with no schema design required — "straight-forward
// mappings to tables are sufficient" because the downstream discovery
// steps infer all structure from the data.
//
// Supported formats: EMBL/Swiss-Prot-style line-typed flat files (the
// BioPerl/BioSQL path), FASTA, OBO ontologies (the Gene Ontology path),
// CSV/TSV, and a generic XML shredder in the spirit of [NJM03].
package flatfile

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/rel"
)

// ParseEMBL reads an EMBL/Swiss-Prot-style flat file: records of
// two-letter line-type codes terminated by "//". It produces the
// BioSQL-shaped schema of Figure 3: an entry relation plus dependent
// relations for cross-references (DR lines), keywords (KW), comments (CC)
// and the sequence (SQ block).
//
// Recognized line types: ID, AC, DE, OS, DR, KW, CC, SQ (+ continuation
// lines starting with blanks inside the SQ block).
func ParseEMBL(r io.Reader, dbName string) (*rel.Database, error) {
	db := rel.NewDatabase(dbName)
	entry := db.Create("entry", rel.TextSchema("entry_id", "accession", "entry_name", "description", "organism"))
	dbref := db.Create("dbref", rel.TextSchema("dbref_id", "entry_id", "dbname", "ref_accession"))
	keyword := db.Create("keyword", rel.TextSchema("keyword_id", "entry_id", "keyword"))
	comment := db.Create("comment", rel.TextSchema("comment_id", "entry_id", "comment_text"))
	seqrel := db.Create("sequence", rel.TextSchema("entry_id", "seq"))

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	type record struct {
		id, name, organism string
		desc               []string
		acc                []string
		drs                [][2]string
		kws                []string
		ccs                []string
		seq                strings.Builder
	}
	var cur *record
	inSeq := false
	entrySeq, dbrefSeq, kwSeq, ccSeq := 0, 0, 0, 0
	lineNo := 0

	flush := func() error {
		if cur == nil {
			return nil
		}
		if len(cur.acc) == 0 {
			return fmt.Errorf("flatfile: record ending before line %d has no AC line", lineNo)
		}
		entrySeq++
		eid := strconv.Itoa(entrySeq)
		entry.AppendRaw(eid, cur.acc[0], cur.name, strings.Join(cur.desc, " "), cur.organism)
		for _, dr := range cur.drs {
			dbrefSeq++
			dbref.AppendRaw(strconv.Itoa(dbrefSeq), eid, dr[0], dr[1])
		}
		for _, kw := range cur.kws {
			kwSeq++
			keyword.AppendRaw(strconv.Itoa(kwSeq), eid, kw)
		}
		for _, cc := range cur.ccs {
			ccSeq++
			comment.AppendRaw(strconv.Itoa(ccSeq), eid, cc)
		}
		if cur.seq.Len() > 0 {
			seqrel.AppendRaw(eid, cur.seq.String())
		}
		cur = nil
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.HasPrefix(line, "//") {
			if err := flush(); err != nil {
				return nil, err
			}
			inSeq = false
			continue
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if inSeq {
			if strings.HasPrefix(line, " ") || !hasLineCode(line) {
				if cur != nil {
					cur.seq.WriteString(stripSeqLine(line))
				}
				continue
			}
			inSeq = false
		}
		if len(line) < 2 {
			return nil, fmt.Errorf("flatfile: malformed line %d: %q", lineNo, line)
		}
		code := line[:2]
		rest := ""
		if len(line) > 2 {
			rest = strings.TrimSpace(line[2:])
		}
		if cur == nil {
			if code != "ID" {
				return nil, fmt.Errorf("flatfile: line %d: record must start with ID, got %q", lineNo, code)
			}
			cur = &record{}
		}
		switch code {
		case "ID":
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				cur.name = fields[0]
			}
		case "AC":
			for _, a := range strings.Split(rest, ";") {
				a = strings.TrimSpace(a)
				if a != "" {
					cur.acc = append(cur.acc, a)
				}
			}
		case "DE":
			cur.desc = append(cur.desc, rest)
		case "OS":
			if cur.organism == "" {
				cur.organism = strings.TrimSuffix(rest, ".")
			}
		case "DR":
			parts := strings.Split(rest, ";")
			if len(parts) >= 2 {
				cur.drs = append(cur.drs, [2]string{
					strings.TrimSpace(parts[0]),
					strings.TrimSuffix(strings.TrimSpace(parts[1]), "."),
				})
			}
		case "KW":
			for _, k := range strings.Split(strings.TrimSuffix(rest, "."), ";") {
				k = strings.TrimSpace(k)
				if k != "" {
					cur.kws = append(cur.kws, k)
				}
			}
		case "CC":
			cur.ccs = append(cur.ccs, strings.TrimPrefix(rest, "-!- "))
		case "SQ":
			inSeq = true
		default:
			// Unknown line types are tolerated (real files carry many).
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		if err := flush(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// hasLineCode reports whether a line starts with a two-uppercase-letter
// code followed by whitespace or end of line.
func hasLineCode(line string) bool {
	if len(line) < 2 {
		return false
	}
	c0, c1 := line[0], line[1]
	if c0 < 'A' || c0 > 'Z' || c1 < 'A' || c1 > 'Z' {
		return false
	}
	return len(line) == 2 || line[2] == ' '
}

// stripSeqLine removes blanks and trailing position numbers from a
// sequence block line.
func stripSeqLine(line string) string {
	var sb strings.Builder
	for _, r := range line {
		if (r >= 'A' && r <= 'Z') || (r >= 'a' && r <= 'z') {
			sb.WriteRune(r)
		}
	}
	return strings.ToUpper(sb.String())
}

// ParseFASTA reads FASTA records (">id description" header lines followed
// by sequence lines) into a single relation (fasta_id, accession,
// description, seq).
func ParseFASTA(r io.Reader, dbName string) (*rel.Database, error) {
	db := rel.NewDatabase(dbName)
	rec := db.Create("fasta", rel.TextSchema("fasta_id", "accession", "description", "seq"))
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var acc, desc string
	var seq strings.Builder
	n := 0
	flush := func() {
		if acc == "" {
			return
		}
		n++
		rec.AppendRaw(strconv.Itoa(n), acc, desc, seq.String())
		acc, desc = "", ""
		seq.Reset()
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ">") {
			flush()
			header := strings.TrimSpace(line[1:])
			if header == "" {
				return nil, fmt.Errorf("flatfile: empty FASTA header at line %d", lineNo)
			}
			if i := strings.IndexAny(header, " \t"); i >= 0 {
				acc, desc = header[:i], strings.TrimSpace(header[i:])
			} else {
				acc = header
			}
			continue
		}
		if acc == "" {
			return nil, fmt.Errorf("flatfile: sequence data before first FASTA header at line %d", lineNo)
		}
		seq.WriteString(strings.ToUpper(line))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return db, nil
}

// ParseOBO reads an OBO ontology file ([Term] stanzas with id:, name:,
// def:, is_a: tags) into a term relation and an is_a relation.
func ParseOBO(r io.Reader, dbName string) (*rel.Database, error) {
	db := rel.NewDatabase(dbName)
	term := db.Create("term", rel.TextSchema("term_id", "acc", "term_name", "definition", "namespace"))
	isa := db.Create("term_isa", rel.TextSchema("isa_id", "acc", "parent_acc"))
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	inTerm := false
	var id, name, def, ns string
	var parents []string
	termSeq, isaSeq := 0, 0
	flush := func() {
		if !inTerm || id == "" {
			return
		}
		termSeq++
		term.AppendRaw(strconv.Itoa(termSeq), id, name, def, ns)
		for _, p := range parents {
			isaSeq++
			isa.AppendRaw(strconv.Itoa(isaSeq), id, p)
		}
		id, name, def, ns = "", "", "", ""
		parents = nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "[Term]":
			flush()
			inTerm = true
		case strings.HasPrefix(line, "["):
			flush()
			inTerm = false
		case inTerm && strings.HasPrefix(line, "id:"):
			id = strings.TrimSpace(line[3:])
		case inTerm && strings.HasPrefix(line, "name:"):
			name = strings.TrimSpace(line[5:])
		case inTerm && strings.HasPrefix(line, "def:"):
			def = strings.Trim(strings.TrimSpace(line[4:]), "\"")
			if i := strings.Index(def, `" [`); i >= 0 {
				def = def[:i]
			}
		case inTerm && strings.HasPrefix(line, "namespace:"):
			ns = strings.TrimSpace(line[10:])
		case inTerm && strings.HasPrefix(line, "is_a:"):
			p := strings.TrimSpace(line[5:])
			if i := strings.Index(p, "!"); i >= 0 {
				p = strings.TrimSpace(p[:i])
			}
			parents = append(parents, p)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return db, nil
}

// ParseCSV reads delimited text with a header row into one relation named
// after the table argument. comma is the delimiter (use '\t' for TSV).
func ParseCSV(r io.Reader, dbName, table string, comma rune) (*rel.Database, error) {
	db := rel.NewDatabase(dbName)
	cr := csv.NewReader(r)
	cr.Comma = comma
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("flatfile: reading CSV header: %w", err)
	}
	for i := range header {
		header[i] = strings.TrimSpace(header[i])
		if header[i] == "" {
			header[i] = fmt.Sprintf("col%d", i+1)
		}
	}
	relo := db.Create(table, rel.TextSchema(header...))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("flatfile: reading CSV row: %w", err)
		}
		relo.AppendRaw(rec...)
	}
	return db, nil
}

// Formats lists the format names accepted by Parse.
func Formats() []string {
	return []string{"embl", "genbank", "fasta", "obo", "csv", "tsv", "xml"}
}

// Parse dispatches to the parser for the named format — the single
// registry behind every front end (CLI import, HTTP upload), so the
// supported format set cannot drift between them. CSV and TSV data
// lands in a relation named "data".
func Parse(format string, r io.Reader, dbName string) (*rel.Database, error) {
	switch format {
	case "embl":
		return ParseEMBL(r, dbName)
	case "genbank":
		return ParseGenBank(r, dbName)
	case "fasta":
		return ParseFASTA(r, dbName)
	case "obo":
		return ParseOBO(r, dbName)
	case "csv":
		return ParseCSV(r, dbName, "data", ',')
	case "tsv":
		return ParseCSV(r, dbName, "data", '\t')
	case "xml":
		return ParseXML(r, dbName)
	default:
		return nil, fmt.Errorf("flatfile: unknown format %q (supported: %s)", format, strings.Join(Formats(), ", "))
	}
}
