package flatfile

// Parity fuzzing for the streaming scanners (ROADMAP item 5: parser
// fuzzing is table stakes before accepting untrusted uploads). The
// whole-file Parse functions now collect the scanner stream, so
// comparing them against the verbatim legacy parsers (legacy_test.go)
// on arbitrary bytes proves the streaming rewrite changed the
// implementation, not the language the parsers accept.

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/rel"
)

// sameDatabase fails the fuzz run unless the scanner-built database
// equals the legacy-built one: same relations in order, same schemas,
// same tuples.
func sameDatabase(t *testing.T, got, want *rel.Database) {
	t.Helper()
	if g, w := got.Names(), want.Names(); !reflect.DeepEqual(g, w) {
		t.Fatalf("relation names: scanner %v, legacy %v", g, w)
	}
	for _, name := range want.Names() {
		g, w := got.Relation(name), want.Relation(name)
		if gc, wc := g.Schema.Names(), w.Schema.Names(); !reflect.DeepEqual(gc, wc) {
			t.Fatalf("%s columns: scanner %v, legacy %v", name, gc, wc)
		}
		if len(g.Tuples) != len(w.Tuples) {
			t.Fatalf("%s cardinality: scanner %d, legacy %d", name, len(g.Tuples), len(w.Tuples))
		}
		for i := range w.Tuples {
			if !reflect.DeepEqual(g.Tuples[i], w.Tuples[i]) {
				t.Fatalf("%s tuple %d: scanner %v, legacy %v", name, i, g.Tuples[i], w.Tuples[i])
			}
		}
	}
}

// fuzzParity compares one streaming parse against its legacy oracle.
func fuzzParity(t *testing.T, data []byte,
	stream, legacy func([]byte) (*rel.Database, error)) {
	got, gerr := stream(data)
	want, werr := legacy(data)
	if (gerr != nil) != (werr != nil) {
		t.Fatalf("error parity: scanner err=%v, legacy err=%v", gerr, werr)
	}
	if gerr != nil {
		if gerr.Error() != werr.Error() {
			t.Fatalf("error text: scanner %q, legacy %q", gerr, werr)
		}
		return
	}
	sameDatabase(t, got, want)
}

func FuzzFlatfileEMBL(f *testing.F) {
	f.Add([]byte("ID   TEST_HUMAN\nAC   P12345; Q99999;\nDE   Test protein.\nOS   Homo sapiens.\nDR   PDB; 1ABC.\nKW   Kinase; Membrane.\nCC   -!- FUNCTION: testing\nSQ   SEQUENCE\n     MKWVT FISLL\n//\n"))
	f.Add([]byte("ID   A\nAC   P1;\n//\nID   B\nAC   P2\nSQ\n  acgt 10\n//"))
	f.Add([]byte("ID no-ac\n//\n"))
	f.Add([]byte("XX   starts wrong\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzParity(t, data,
			func(b []byte) (*rel.Database, error) { return ParseEMBL(bytes.NewReader(b), "fz") },
			func(b []byte) (*rel.Database, error) { return legacyParseEMBL(bytes.NewReader(b), "fz") })
	})
}

func FuzzFlatfileFASTA(f *testing.F) {
	f.Add([]byte(">P1 first protein\nMKWVT\nFISLL\n>P2\nacgt\n"))
	f.Add([]byte(">\nMKWVT\n"))
	f.Add([]byte("MKWVT\n"))
	f.Add([]byte(">P1\tdesc with tab\nseq"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzParity(t, data,
			func(b []byte) (*rel.Database, error) { return ParseFASTA(bytes.NewReader(b), "fz") },
			func(b []byte) (*rel.Database, error) { return legacyParseFASTA(bytes.NewReader(b), "fz") })
	})
}

func FuzzFlatfileCSV(f *testing.F) {
	f.Add([]byte("accession,name,description\nP1,alpha,first\nP2,beta,\n"))
	f.Add([]byte("a,,c\n1,2\n1,2,3,4\n"))
	f.Add([]byte("\"quoted,header\",b\n\"x\"\"y\",z\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzParity(t, data,
			func(b []byte) (*rel.Database, error) { return ParseCSV(bytes.NewReader(b), "fz", "data", ',') },
			func(b []byte) (*rel.Database, error) { return legacyParseCSV(bytes.NewReader(b), "fz", "data", ',') })
	})
}

func FuzzFlatfileGenBank(f *testing.F) {
	f.Add([]byte("LOCUS       AB000001     1000 bp\nDEFINITION  test gene,\n            complete cds.\nACCESSION   AB000001\nSOURCE      Homo sapiens\nFEATURES             Location/Qualifiers\n     gene            1..1000\n                     /db_xref=\"GeneID:1234\"\nORIGIN\n        1 acgtacgtac\n//\n"))
	f.Add([]byte("LOCUS  X\n//\n"))
	f.Add([]byte("DEFINITION  before locus\n"))
	f.Add([]byte(" continuation first\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzParity(t, data,
			func(b []byte) (*rel.Database, error) { return ParseGenBank(bytes.NewReader(b), "fz") },
			func(b []byte) (*rel.Database, error) { return legacyParseGenBank(bytes.NewReader(b), "fz") })
	})
}
