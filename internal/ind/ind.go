// Package ind discovers unary inclusion dependencies between attributes —
// ALADIN's mechanism for guessing foreign-key relationships when no
// integrity constraints are declared (§4.2, citing [KM92] and [MLP02]).
//
// The paper's rule: "all unique attributes are considered as potential
// targets ... and all attributes are considered as potential sources. If
// the values of a potential source are a true subset of the values of a
// potential target, we assume a 1:N relationship ... If the values of a
// potential source are the same set as the values of a potential target,
// we assume a 1:1 relationship."
package ind

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/parallel"
	"repro/internal/profile"
	"repro/internal/rel"
)

// Cardinality classifies a discovered relationship.
type Cardinality int

const (
	// OneToN marks a proper-subset inclusion (source values ⊂ target).
	OneToN Cardinality = iota
	// OneToOne marks set equality of source and target values.
	OneToOne
)

// String renders the cardinality as in the paper.
func (c Cardinality) String() string {
	if c == OneToOne {
		return "1:1"
	}
	return "1:N"
}

// IND is one discovered inclusion dependency: FromRelation.FromColumn's
// values are contained in ToRelation.ToColumn's values.
type IND struct {
	From        rel.ForeignKey
	Cardinality Cardinality
	// Containment is |src ∩ tgt| / |src| (1.0 for exact dependencies).
	Containment float64
	// Declared is true when the dependency came from the data dictionary
	// (a declared FOREIGN KEY) rather than from data analysis.
	Declared bool
}

// String renders "a.x -> b.y [1:N, cont=1.00]".
func (d IND) String() string {
	src := "data"
	if d.Declared {
		src = "declared"
	}
	return fmt.Sprintf("%s [%s, cont=%.2f, %s]", d.From.String(), d.Cardinality, d.Containment, src)
}

// Options configures discovery.
type Options struct {
	// MinContainment accepts approximate inclusions whose containment is
	// at least this value; 0 defaults to 1.0 (exact inclusion only).
	MinContainment float64
	// MinSourceDistinct skips source attributes with fewer distinct
	// values (§4.4: "attributes with few distinct values should be
	// excluded"). 0 defaults to 2.
	MinSourceDistinct int
	// DisableSignaturePruning turns off the min-hash pre-filter (for the
	// pruning ablation of experiment E10).
	DisableSignaturePruning bool
	// AllowNumericSources permits purely numeric attributes as sources.
	// Surrogate-key FK discovery inside one source needs this on (the
	// default); cross-source link discovery turns it off to "avoid
	// misinterpretation of surrogate keys" (§4.4).
	AllowNumericSourcesOff bool
	// Workers bounds the worker pool checking candidate attribute pairs
	// concurrently. Values <= 1 check serially.
	Workers int
}

// Stats reports the work performed, for the pruning experiments.
type Stats struct {
	PairsConsidered int // candidate (source, target) attribute pairs
	PairsPruned     int // rejected by the signature pre-filter
	PairsChecked    int // exact set-containment checks executed
}

// Discover finds inclusion dependencies between attributes of the
// relations in db, using precomputed profiles (keyed by profile.Key).
// Declared foreign keys from relation metadata are included first and
// never duplicated by data analysis.
func Discover(db *rel.Database, profs map[string]*profile.ColumnProfile, opts Options) ([]IND, Stats, error) {
	return DiscoverContext(context.Background(), db, profs, opts)
}

// DiscoverContext is Discover with cancellation: when ctx is canceled the
// partial result is discarded and ctx.Err() is returned.
func DiscoverContext(ctx context.Context, db *rel.Database, profs map[string]*profile.ColumnProfile, opts Options) ([]IND, Stats, error) {
	minCont := opts.MinContainment
	if minCont <= 0 {
		minCont = 1.0
	}
	minSrcDistinct := opts.MinSourceDistinct
	if minSrcDistinct <= 0 {
		minSrcDistinct = 2
	}
	var out []IND
	var stats Stats
	declared := make(map[string]bool)
	for _, r := range db.Relations() {
		for _, fk := range r.ForeignKeys {
			toCol := fk.ToColumn
			if toCol == "" {
				// REFERENCES t without a column names t's primary key.
				if tgt := db.Relation(fk.ToRelation); tgt != nil {
					toCol = tgt.PrimaryKey
				}
			}
			if toCol == "" {
				continue
			}
			d := IND{
				From: rel.ForeignKey{
					FromRelation: fk.FromRelation, FromColumn: fk.FromColumn,
					ToRelation: fk.ToRelation, ToColumn: toCol,
				},
				Cardinality: OneToN,
				Containment: 1.0,
				Declared:    true,
			}
			out = append(out, d)
			declared[indKey(d.From)] = true
		}
	}

	// Candidate targets: unique attributes (the paper's rule).
	type colRef struct {
		relation *rel.Relation
		column   string
		prof     *profile.ColumnProfile
	}
	var targets, sources []colRef
	for _, r := range db.Relations() {
		for _, c := range r.Schema.Columns {
			p := profs[profile.Key(r.Name, c.Name)]
			if p == nil {
				return nil, stats, fmt.Errorf("ind: missing profile for %s.%s", r.Name, c.Name)
			}
			ref := colRef{relation: r, column: c.Name, prof: p}
			if p.Unique {
				targets = append(targets, ref)
			}
			if p.Distinct >= minSrcDistinct {
				if opts.AllowNumericSourcesOff && p.PurelyNumeric {
					continue
				}
				sources = append(sources, ref)
			}
		}
	}

	// Candidate pair generation stays serial (it is cheap and updates
	// stats); the exact set-containment checks — the expensive part — run
	// on the worker pool, collecting into indexed slots so the discovered
	// dependencies keep the serial order.
	type pair struct {
		src, tgt colRef
		fk       rel.ForeignKey
	}
	var pairs []pair
	for _, src := range sources {
		for _, tgt := range targets {
			if strings.EqualFold(src.relation.Name, tgt.relation.Name) && strings.EqualFold(src.column, tgt.column) {
				continue
			}
			stats.PairsConsidered++
			fk := rel.ForeignKey{
				FromRelation: src.relation.Name, FromColumn: src.column,
				ToRelation: tgt.relation.Name, ToColumn: tgt.column,
			}
			if declared[indKey(fk)] {
				continue
			}
			// Cheap pre-filters: a source with more distinct values than
			// the target can never be contained; the signature containment
			// estimate rejects clearly disjoint pairs.
			if float64(src.prof.Distinct)*minCont > float64(tgt.prof.Distinct) {
				stats.PairsPruned++
				continue
			}
			if !opts.DisableSignaturePruning {
				est := profile.EstimateContainment(src.prof, tgt.prof)
				// The estimator is noisy; only prune clear rejections.
				if est < minCont*0.4 {
					stats.PairsPruned++
					continue
				}
			}
			pairs = append(pairs, pair{src: src, tgt: tgt, fk: fk})
		}
	}
	stats.PairsChecked = len(pairs)

	type checkResult struct {
		d   IND
		ok  bool
		err error
	}
	results := make([]checkResult, len(pairs))
	if err := parallel.For(ctx, opts.Workers, len(pairs), func(i int) {
		p := pairs[i]
		cont, equal, err := containment(p.src.relation, p.src.column, p.src.prof, p.tgt.relation, p.tgt.column, p.tgt.prof)
		if err != nil {
			results[i].err = err
			return
		}
		if cont < minCont {
			return
		}
		d := IND{From: p.fk, Containment: cont, Cardinality: OneToN}
		if equal {
			d.Cardinality = OneToOne
		}
		results[i] = checkResult{d: d, ok: true}
	}); err != nil {
		return nil, stats, err
	}
	for _, res := range results {
		if res.err != nil {
			return nil, stats, res.err
		}
		if res.ok {
			out = append(out, res.d)
		}
	}
	return out, stats, nil
}

// containment computes |src ∩ tgt| / |src distinct| exactly, preferring
// the profiles' cached distinct sets and falling back to a scan.
func containment(srcRel *rel.Relation, srcCol string, srcProf *profile.ColumnProfile,
	tgtRel *rel.Relation, tgtCol string, tgtProf *profile.ColumnProfile) (float64, bool, error) {

	srcSet := srcProf.DistinctValues
	if srcSet == nil {
		var err error
		srcSet, err = srcRel.DistinctValues(srcCol)
		if err != nil {
			return 0, false, err
		}
	}
	tgtSet := tgtProf.DistinctValues
	if tgtSet == nil {
		var err error
		tgtSet, err = tgtRel.DistinctValues(tgtCol)
		if err != nil {
			return 0, false, err
		}
	}
	if len(srcSet) == 0 {
		return 0, false, nil
	}
	inter := 0
	for k := range srcSet {
		if _, ok := tgtSet[k]; ok {
			inter++
		}
	}
	cont := float64(inter) / float64(len(srcSet))
	equal := inter == len(srcSet) && len(srcSet) == len(tgtSet)
	return cont, equal, nil
}

func indKey(fk rel.ForeignKey) string {
	return strings.ToLower(fk.FromRelation) + "." + strings.ToLower(fk.FromColumn) +
		">" + strings.ToLower(fk.ToRelation) + "." + strings.ToLower(fk.ToColumn)
}

// AmbiguousTargets groups discovered INDs by source attribute and returns
// those sources contained in more than one target — the §4.2 "dictionary
// table confusion" case ("confusion about which is the primary key ...
// happens only if the number of values in two dictionary tables are
// identical").
func AmbiguousTargets(inds []IND) map[string][]IND {
	bySource := make(map[string][]IND)
	for _, d := range inds {
		k := strings.ToLower(d.From.FromRelation) + "." + strings.ToLower(d.From.FromColumn)
		bySource[k] = append(bySource[k], d)
	}
	out := make(map[string][]IND)
	for k, ds := range bySource {
		if len(ds) > 1 {
			out[k] = ds
		}
	}
	return out
}
