package ind

import (
	"fmt"
	"testing"

	"repro/internal/profile"
	"repro/internal/rel"
)

// biosqlFragment builds a small BioSQL-like source: bioentry (primary),
// a dependent comment table, and a dictionary table.
func biosqlFragment() *rel.Database {
	db := rel.NewDatabase("biosql")

	bioentry := db.Create("bioentry", rel.TextSchema("bioentry_id", "accession", "name"))
	for i := 1; i <= 20; i++ {
		bioentry.AppendRaw(fmt.Sprintf("%d", i), fmt.Sprintf("P%05d", i), fmt.Sprintf("protein %d", i))
	}

	comment := db.Create("comment", rel.TextSchema("comment_id", "bioentry_id", "text"))
	for i := 1; i <= 40; i++ {
		comment.AppendRaw(fmt.Sprintf("%d", i), fmt.Sprintf("%d", (i%15)+1), fmt.Sprintf("comment body %d about something", i))
	}

	// Dictionary table: terms 1..8 referenced from term_id.
	term := db.Create("term", rel.TextSchema("term_id", "term_name"))
	for i := 1; i <= 8; i++ {
		term.AppendRaw(fmt.Sprintf("%d", i), fmt.Sprintf("keyword-%d", i))
	}
	anno := db.Create("annotation", rel.TextSchema("anno_id", "bioentry_id", "term_id"))
	for i := 1; i <= 30; i++ {
		anno.AppendRaw(fmt.Sprintf("%d", i), fmt.Sprintf("%d", (i%20)+1), fmt.Sprintf("%d", (i%8)+1))
	}
	return db
}

func discover(t *testing.T, db *rel.Database, opts Options) ([]IND, Stats) {
	t.Helper()
	profs, err := profile.ProfileDatabase(db, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inds, stats, err := Discover(db, profs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return inds, stats
}

func hasIND(inds []IND, from, fromCol, to, toCol string) bool {
	for _, d := range inds {
		if d.From.FromRelation == from && d.From.FromColumn == fromCol &&
			d.From.ToRelation == to && d.From.ToColumn == toCol {
			return true
		}
	}
	return false
}

func TestDiscoverFindsForeignKeys(t *testing.T) {
	db := biosqlFragment()
	inds, _ := discover(t, db, Options{})
	if !hasIND(inds, "comment", "bioentry_id", "bioentry", "bioentry_id") {
		t.Errorf("missing comment->bioentry FK; got %v", inds)
	}
	if !hasIND(inds, "annotation", "bioentry_id", "bioentry", "bioentry_id") {
		t.Errorf("missing annotation->bioentry FK")
	}
	if !hasIND(inds, "annotation", "term_id", "term", "term_id") {
		t.Errorf("missing annotation->term FK")
	}
}

func TestDiscoverCardinality(t *testing.T) {
	db := rel.NewDatabase("d")
	a := db.Create("a", rel.TextSchema("k"))
	b := db.Create("b", rel.TextSchema("k2", "other"))
	for i := 0; i < 10; i++ {
		a.AppendRaw(fmt.Sprintf("x%d", i))
		b.AppendRaw(fmt.Sprintf("x%d", i), fmt.Sprintf("o%d", i))
	}
	inds, _ := discover(t, db, Options{})
	found := false
	for _, d := range inds {
		if d.From.FromRelation == "a" && d.From.ToRelation == "b" && d.From.ToColumn == "k2" {
			found = true
			if d.Cardinality != OneToOne {
				t.Errorf("equal sets should give 1:1, got %v", d.Cardinality)
			}
		}
	}
	if !found {
		t.Fatalf("missing a.k -> b.k2: %v", inds)
	}
}

func TestDiscoverProperSubsetIs1N(t *testing.T) {
	db := biosqlFragment()
	inds, _ := discover(t, db, Options{})
	for _, d := range inds {
		if d.From.FromRelation == "comment" && d.From.ToRelation == "bioentry" && d.From.ToColumn == "bioentry_id" {
			if d.Cardinality != OneToN {
				t.Errorf("proper subset should be 1:N, got %v", d.Cardinality)
			}
		}
	}
}

func TestDiscoverDeclaredFKsIncluded(t *testing.T) {
	db := biosqlFragment()
	c := db.Relation("comment")
	c.ForeignKeys = append(c.ForeignKeys, rel.ForeignKey{
		FromRelation: "comment", FromColumn: "bioentry_id",
		ToRelation: "bioentry", ToColumn: "bioentry_id",
	})
	inds, _ := discover(t, db, Options{})
	declaredCount := 0
	dataCount := 0
	for _, d := range inds {
		if d.From.FromRelation == "comment" && d.From.ToRelation == "bioentry" {
			if d.Declared {
				declaredCount++
			} else if d.From.FromColumn == "bioentry_id" && d.From.ToColumn == "bioentry_id" {
				dataCount++
			}
		}
	}
	if declaredCount != 1 {
		t.Errorf("declared FK count = %d", declaredCount)
	}
	if dataCount != 0 {
		t.Errorf("declared FK rediscovered from data %d times", dataCount)
	}
}

func TestDiscoverMinContainment(t *testing.T) {
	db := rel.NewDatabase("d")
	a := db.Create("a", rel.TextSchema("ref"))
	b := db.Create("b", rel.TextSchema("key"))
	for i := 0; i < 10; i++ {
		b.AppendRaw(fmt.Sprintf("k%d", i))
	}
	// 8 of 10 source values resolve; 2 dangle.
	for i := 0; i < 8; i++ {
		a.AppendRaw(fmt.Sprintf("k%d", i))
	}
	a.AppendRaw("dangling1")
	a.AppendRaw("dangling2")
	inds, _ := discover(t, db, Options{})
	if hasIND(inds, "a", "ref", "b", "key") {
		t.Error("exact mode should reject 80% containment")
	}
	inds, _ = discover(t, db, Options{MinContainment: 0.7})
	if !hasIND(inds, "a", "ref", "b", "key") {
		t.Error("approximate mode should accept 80% containment")
	}
}

func TestDiscoverSkipsLowDistinctSources(t *testing.T) {
	db := rel.NewDatabase("d")
	a := db.Create("a", rel.TextSchema("flag"))
	b := db.Create("b", rel.TextSchema("key"))
	b.AppendRaw("x")
	b.AppendRaw("y")
	for i := 0; i < 10; i++ {
		a.AppendRaw("x") // single distinct value, contained in b.key
	}
	inds, _ := discover(t, db, Options{})
	if hasIND(inds, "a", "flag", "b", "key") {
		t.Error("single-distinct source should be skipped")
	}
}

func TestDiscoverNumericSourceExclusion(t *testing.T) {
	db := rel.NewDatabase("d")
	a := db.Create("a", rel.TextSchema("num"))
	b := db.Create("b", rel.TextSchema("key"))
	for i := 0; i < 10; i++ {
		a.AppendRaw(fmt.Sprintf("%d", i))
		b.AppendRaw(fmt.Sprintf("%d", i))
	}
	inds, _ := discover(t, db, Options{})
	if !hasIND(inds, "a", "num", "b", "key") {
		t.Error("numeric sources allowed by default (intra-source FK discovery)")
	}
	inds, _ = discover(t, db, Options{AllowNumericSourcesOff: true})
	if hasIND(inds, "a", "num", "b", "key") {
		t.Error("AllowNumericSourcesOff should exclude purely numeric sources")
	}
}

func TestDictionaryConfusion(t *testing.T) {
	// Two dictionary tables with IDENTICAL value sets 1..5: the paper's
	// §4.2 confusion case. The source attribute must be reported as
	// contained in both, and AmbiguousTargets must flag it.
	db := rel.NewDatabase("d")
	d1 := db.Create("dict1", rel.TextSchema("id", "label"))
	d2 := db.Create("dict2", rel.TextSchema("id", "label"))
	for i := 1; i <= 5; i++ {
		d1.AppendRaw(fmt.Sprintf("%d", i), fmt.Sprintf("one-%d", i))
		d2.AppendRaw(fmt.Sprintf("%d", i), fmt.Sprintf("two-%d", i))
	}
	f := db.Create("fact", rel.TextSchema("fact_id", "dict_ref"))
	for i := 1; i <= 20; i++ {
		f.AppendRaw(fmt.Sprintf("%d", i), fmt.Sprintf("%d", (i%5)+1))
	}
	inds, _ := discover(t, db, Options{})
	amb := AmbiguousTargets(inds)
	ds, ok := amb["fact.dict_ref"]
	if !ok {
		t.Fatalf("fact.dict_ref should be ambiguous; inds=%v", inds)
	}
	targets := map[string]bool{}
	for _, d := range ds {
		targets[d.From.ToRelation] = true
	}
	if !targets["dict1"] || !targets["dict2"] {
		t.Errorf("ambiguity should span both dictionaries: %v", ds)
	}
}

func TestNoConfusionWithDifferentSizes(t *testing.T) {
	// When dictionary sizes differ (the common case, per the paper), the
	// smaller-ranged source is contained only in the right tables.
	db := rel.NewDatabase("d")
	d1 := db.Create("dict1", rel.TextSchema("id"))
	d2 := db.Create("dict2", rel.TextSchema("id"))
	for i := 1; i <= 5; i++ {
		d1.AppendRaw(fmt.Sprintf("%d", i))
	}
	for i := 1; i <= 3; i++ {
		d2.AppendRaw(fmt.Sprintf("%d", i))
	}
	f := db.Create("fact", rel.TextSchema("fact_id", "dict_ref"))
	for i := 0; i < 20; i++ {
		f.AppendRaw(fmt.Sprintf("%d", i+100), fmt.Sprintf("%d", (i%5)+1)) // values 1..5
	}
	inds, _ := discover(t, db, Options{})
	if hasIND(inds, "fact", "dict_ref", "dict2", "id") {
		t.Error("values 1..5 are not contained in dict2 (1..3)")
	}
	if !hasIND(inds, "fact", "dict_ref", "dict1", "id") {
		t.Error("missing correct dictionary FK")
	}
}

func TestPruningReducesChecks(t *testing.T) {
	db := rel.NewDatabase("d")
	// Many disjoint columns: pruning should skip most exact checks.
	for r := 0; r < 6; r++ {
		rr := db.Create(fmt.Sprintf("r%d", r), rel.TextSchema("a", "b"))
		for i := 0; i < 50; i++ {
			rr.AppendRaw(fmt.Sprintf("r%d-a%d", r, i), fmt.Sprintf("r%d-b%d", r, i))
		}
	}
	_, with := discover(t, db, Options{})
	_, without := discover(t, db, Options{DisableSignaturePruning: true})
	if with.PairsChecked >= without.PairsChecked {
		t.Errorf("pruning should reduce exact checks: with=%d without=%d",
			with.PairsChecked, without.PairsChecked)
	}
	if with.PairsConsidered != without.PairsConsidered {
		t.Errorf("considered pairs should match: %d vs %d", with.PairsConsidered, without.PairsConsidered)
	}
}

func TestPruningPreservesResults(t *testing.T) {
	db := biosqlFragment()
	with, _ := discover(t, db, Options{})
	without, _ := discover(t, db, Options{DisableSignaturePruning: true})
	if len(with) != len(without) {
		t.Errorf("pruning changed result count: %d vs %d", len(with), len(without))
	}
}

func TestINDString(t *testing.T) {
	d := IND{
		From:        rel.ForeignKey{FromRelation: "a", FromColumn: "x", ToRelation: "b", ToColumn: "y"},
		Cardinality: OneToN,
		Containment: 1.0,
	}
	want := "a.x -> b.y [1:N, cont=1.00, data]"
	if d.String() != want {
		t.Errorf("String = %q want %q", d.String(), want)
	}
}
