// Package dup implements ALADIN's duplicate detection step (§4.5):
// finding objects in different data sources that represent the same
// real-world object. Following the paper, duplicates are *flagged, never
// merged* — a duplicate is just one more type of link — and conflicts
// between flagged duplicates are surfaced for the browsing interface
// ("Conflicts are highlighted, and data lineage is shown", §4.6).
//
// Because the sources have heterogeneous, only partly overlapping models
// (§4.5), record similarity is computed without assuming aligned
// attributes: every field of one record is compared against every field
// of the other and the best pairing per field is aggregated, in the
// spirit of [WN04]/[BN05]. Blocking uses the sorted-neighbourhood method,
// with full pairwise comparison available for the ablation experiments.
package dup

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/discovery"
	"repro/internal/metadata"
	"repro/internal/parallel"
	"repro/internal/rel"
	"repro/internal/textmine"
)

// Record is one primary object prepared for duplicate detection.
type Record struct {
	Source    string
	Relation  string
	Accession string
	// Fields maps column name -> rendered value (non-null, non-key
	// columns of the primary relation).
	Fields map[string]string
}

// Ref returns the record's object reference.
func (r Record) Ref() metadata.ObjectRef {
	return metadata.ObjectRef{Source: r.Source, Relation: r.Relation, Accession: r.Accession}
}

// RecordsFromSource extracts duplicate-detection records from a source's
// primary relation.
func RecordsFromSource(db *rel.Database, s *discovery.Structure) []Record {
	if s == nil || s.Primary == "" {
		return nil
	}
	pr := db.Relation(s.Primary)
	if pr == nil {
		return nil
	}
	accIdx := pr.Schema.Index(s.PrimaryAccession)
	if accIdx < 0 {
		return nil
	}
	var out []Record
	for _, t := range pr.Tuples {
		acc := t[accIdx]
		if acc.IsNull() {
			continue
		}
		rec := Record{
			Source:    db.Name,
			Relation:  pr.Name,
			Accession: acc.AsString(),
			Fields:    make(map[string]string),
		}
		for i, c := range pr.Schema.Columns {
			if i == accIdx || t[i].IsNull() {
				continue
			}
			v := t[i].AsString()
			// Surrogate integer keys carry no identity signal.
			if isDigitsOnly(v) {
				continue
			}
			rec.Fields[strings.ToLower(c.Name)] = v
		}
		out = append(out, rec)
	}
	return out
}

func isDigitsOnly(s string) bool {
	if s == "" {
		return true
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// fieldSimilarity compares two field values, picking the measure by
// shape: token-based Jaccard (IDF-weighted when a Matcher is supplied)
// for long multi-token text, Jaro-Winkler for short strings, with exact
// match short-circuiting to 1. The cache, when non-nil, supplies
// precomputed derived forms (lowercase, word counts, token sets, q-gram
// codes); results are identical with or without it.
func fieldSimilarity(m *Matcher, a, b string, c *simCache) float64 {
	if a == b {
		return 1
	}
	la, lb := c.lowerOf(a), c.lowerOf(b)
	if la == lb {
		return 1
	}
	// Identifier-shaped values either match or they don't: approximate
	// similarity between two different accession codes is noise, not
	// evidence.
	if textmine.LooksLikeAccession(a) && textmine.LooksLikeAccession(b) {
		return 0
	}
	longA := c.wordsOf(a) >= 3
	longB := c.wordsOf(b) >= 3
	if longA || longB {
		// Cross-shape comparisons (a code against prose) carry no signal.
		if longA != longB && (textmine.LooksLikeAccession(a) || textmine.LooksLikeAccession(b)) {
			return 0
		}
		return m.weightedJaccardSorted(c.tokensOf(a), c.tokensOf(b))
	}
	// Long unbroken values — sequences, digests — are outside
	// Jaro-Winkler's design range (short names) and quadratic to compare;
	// q-gram overlap captures their similarity at linear cost.
	if len(la) >= longValueLen || len(lb) >= longValueLen {
		return textmine.DiceCodes(c.gramsOf(a, la), c.gramsOf(b, lb))
	}
	return textmine.JaroWinkler(la, lb)
}

// longValueLen is the length above which a single-token value is scored
// by q-gram overlap instead of Jaro-Winkler. Accession-shaped and name-
// shaped values stay far below it; sequence residues sit far above.
const longValueLen = 48

// simCache holds per-value derived forms precomputed before a scoring
// pass: candidate pairs revisit the same values window-many times, and
// the derivations (tokenizing, lowercasing, gram packing) would
// otherwise dominate scoring. Built single-threaded, read-only while the
// worker pool scores. A nil cache is valid everywhere and computes on
// the spot.
type simCache struct {
	lower map[string]string
	words map[string]int
	toks  map[string][]string
	grams map[string][]uint64
}

func newSimCache() *simCache {
	return &simCache{
		lower: make(map[string]string),
		words: make(map[string]int),
		toks:  make(map[string][]string),
		grams: make(map[string][]uint64),
	}
}

// admitPairs admits every field value appearing in the pairs.
func (c *simCache) admitPairs(pairs [][2]Record) {
	for _, p := range pairs {
		for _, r := range p {
			for _, v := range r.Fields {
				c.admit(v)
			}
		}
	}
}

// admit precomputes the derived forms of one value.
func (c *simCache) admit(v string) {
	if _, ok := c.lower[v]; ok {
		return
	}
	lv := strings.ToLower(v)
	c.lower[v] = lv
	c.words[v] = len(strings.Fields(v))
	c.toks[v] = sortedUniqueTokens(v)
	if len(lv) >= longValueLen {
		c.grams[v] = textmine.QGramCodes(lv, 3)
	}
}

func (c *simCache) lowerOf(v string) string {
	if c != nil {
		if l, ok := c.lower[v]; ok {
			return l
		}
	}
	return strings.ToLower(v)
}

func (c *simCache) wordsOf(v string) int {
	if c != nil {
		if n, ok := c.words[v]; ok {
			return n
		}
	}
	return len(strings.Fields(v))
}

func (c *simCache) tokensOf(v string) []string {
	if c != nil {
		if t, ok := c.toks[v]; ok {
			return t
		}
	}
	return sortedUniqueTokens(v)
}

func (c *simCache) gramsOf(v, lv string) []uint64 {
	if c != nil {
		if g, ok := c.grams[v]; ok {
			return g
		}
	}
	return textmine.QGramCodes(lv, 3)
}

// sortedUniqueTokens is the token SET of v in sorted order — the
// merge-friendly form of the sets weightedJaccard intersects.
func sortedUniqueTokens(v string) []string {
	toks := textmine.Tokenize(v)
	sort.Strings(toks)
	out := toks[:0]
	for i, t := range toks {
		if i == 0 || t != toks[i-1] {
			out = append(out, t)
		}
	}
	return out
}

// RecordSimilarity aggregates the best field pairing per field with
// uniform weights: for each field of the smaller record, the best
// similarity against any field of the other record, averaged. It returns
// the score and a short evidence string naming the strongest field pair.
// FindDuplicates uses the frequency-weighted Matcher variant instead.
func RecordSimilarity(a, b Record) (float64, string) {
	return weightedSimilarity(a, b, nil)
}

// Matcher computes record similarity with value-distinctiveness weights:
// a field whose value is shared by many records (e.g. organism = "Homo
// sapiens") carries little identity evidence, while a rare value (a name
// or description) carries much. Weights are IDF-style over exact values.
type Matcher struct {
	valueCount map[string]int
	// tokenDF counts, per token, in how many field values it occurs, so
	// long-text comparison can down-weight template words ("crystal
	// structure of ...") that appear in every record.
	tokenDF map[string]int
	values  int
	records int
}

// NewMatcher indexes the value and token frequencies of a record set.
func NewMatcher(records []Record) *Matcher {
	m := &Matcher{
		valueCount: make(map[string]int),
		tokenDF:    make(map[string]int),
	}
	m.addRecords(records)
	return m
}

// addRecords folds more records into the frequency tables. All counts are
// additive, so the incremental duplicate index can keep one Matcher
// current as sources are integrated.
func (m *Matcher) addRecords(records []Record) {
	m.records += len(records)
	for _, r := range records {
		for _, v := range r.Fields {
			m.valueCount[strings.ToLower(v)]++
			m.values++
			seen := make(map[string]bool)
			for _, tok := range textmine.Tokenize(v) {
				if !seen[tok] {
					seen[tok] = true
					m.tokenDF[tok]++
				}
			}
		}
	}
}

// removeRecords exactly reverses addRecords, used to unwind a failed
// source addition from the incremental index.
func (m *Matcher) removeRecords(records []Record) {
	m.records -= len(records)
	for _, r := range records {
		for _, v := range r.Fields {
			lv := strings.ToLower(v)
			if m.valueCount[lv]--; m.valueCount[lv] <= 0 {
				delete(m.valueCount, lv)
			}
			m.values--
			seen := make(map[string]bool)
			for _, tok := range textmine.Tokenize(v) {
				if !seen[tok] {
					seen[tok] = true
					if m.tokenDF[tok]--; m.tokenDF[tok] <= 0 {
						delete(m.tokenDF, tok)
					}
				}
			}
		}
	}
}

// tokenIDF returns the informativeness weight of a token.
func (m *Matcher) tokenIDF(tok string) float64 {
	if m == nil || m.values == 0 {
		return 1
	}
	return math.Log(1 + float64(m.values)/float64(m.tokenDF[tok]+1))
}

// weightedJaccard computes token Jaccard with IDF weights (uniform when
// m is nil).
func (m *Matcher) weightedJaccard(a, b string) float64 {
	return m.weightedJaccardSorted(sortedUniqueTokens(a), sortedUniqueTokens(b))
}

// weightedJaccardSorted is weightedJaccard over sorted unique token
// slices — the cached form, intersected by merge instead of maps.
func (m *Matcher) weightedJaccardSorted(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 0
	}
	var inter, union float64
	i, j := 0, 0
	for i < len(ta) && j < len(tb) {
		switch {
		case ta[i] < tb[j]:
			union += m.tokenIDF(ta[i])
			i++
		case ta[i] > tb[j]:
			union += m.tokenIDF(tb[j])
			j++
		default:
			w := m.tokenIDF(ta[i])
			union += w
			inter += w
			i++
			j++
		}
	}
	for ; i < len(ta); i++ {
		union += m.tokenIDF(ta[i])
	}
	for ; j < len(tb); j++ {
		union += m.tokenIDF(tb[j])
	}
	if union == 0 {
		return 0
	}
	return inter / union
}

// weight returns the distinctiveness weight of a field value in [~0.1, 1].
func (m *Matcher) weight(v string) float64 {
	return m.weightLower(strings.ToLower(v))
}

// weightLower is weight over an already-lowercased value — the scoring
// loop's form, fed from the simCache so no per-pair lowering happens.
func (m *Matcher) weightLower(lv string) float64 {
	if m == nil {
		return 1
	}
	c := m.valueCount[lv]
	if c <= 2 {
		return 1 // a value shared by exactly a duplicate pair is maximal evidence
	}
	return 1 / (1 + math.Log(float64(c-1)))
}

// Similarity computes the weighted record similarity and evidence.
func (m *Matcher) Similarity(a, b Record) (float64, string) {
	return weightedSimilarity(a, b, m)
}

// weightedSimilarity is symmetric: it evaluates both directions and keeps
// the stronger one, so results do not depend on comparison order.
func weightedSimilarity(a, b Record, m *Matcher) (float64, string) {
	sim, best := weightedSimilarityCached(a, b, m, nil)
	return sim, best.evidence()
}

// bestFields names the strongest field correspondence of a comparison.
// The evidence string is rendered only for pairs that are actually
// flagged — building it per scored pair dominated allocation.
type bestFields struct {
	ka, kb string
	ok     bool
}

func (p bestFields) evidence() string {
	if !p.ok {
		return ""
	}
	return p.ka + "~" + p.kb
}

func weightedSimilarityCached(a, b Record, m *Matcher, c *simCache) (float64, bestFields) {
	s1, e1 := directedSimilarity(a.Fields, b.Fields, m, c)
	s2, e2 := directedSimilarity(b.Fields, a.Fields, m, c)
	if s2 > s1 {
		return s2, e2
	}
	return s1, e1
}

func directedSimilarity(fa, fb map[string]string, m *Matcher, c *simCache) (float64, bestFields) {
	if len(fa) == 0 || len(fb) == 0 {
		return 0, bestFields{}
	}
	// minCorrespondence separates "this field has a counterpart in the
	// other record" from "the other source simply does not model this
	// property". Sources overlap only partly in their models (§4.5), so
	// fields without a counterpart are excluded from the aggregate
	// instead of dragging it toward zero.
	const minCorrespondence = 0.2
	var sum, wsum float64
	var bestPair bestFields
	var bestSim float64
	hasAnchor := false
	accessionAnchor := false
	support := 0 // corresponding fields with solid similarity
	for ka, va := range fa {
		best := 0.0
		bestK := ""
		for kb, vb := range fb {
			if s := fieldSimilarity(m, va, vb, c); s > best {
				best = s
				bestK = kb
			}
		}
		if best < minCorrespondence {
			continue
		}
		w := 1.0
		if m != nil {
			w = m.weightLower(c.lowerOf(va))
		}
		// §5: a shared accession-shaped identifier is decisive evidence
		// ("detecting duplicate objects is easy in this case, because the
		// original PDB accession number is available in all three").
		if best == 1 && textmine.LooksLikeAccession(va) {
			w *= 2
			accessionAnchor = true
		}
		// An anchor is a strongly matching, distinctive field: shared
		// low-information values (an organism name, a method enum) must
		// not carry a duplicate verdict on their own.
		if best >= 0.7 && w >= 0.9 {
			hasAnchor = true
		}
		if best >= 0.4 {
			support++
		}
		sum += w * best
		wsum += w
		if best*w > bestSim {
			bestSim = best * w
			bestPair = bestFields{ka, bestK, true}
		}
	}
	if wsum == 0 {
		return 0, bestFields{}
	}
	score := sum / wsum
	// Corroboration: one coincidentally shared value — however rare —
	// is not a duplicate verdict. Demand an anchor plus a second
	// supporting correspondence. Exempt: single-field records, and exact
	// accession matches, which are decisive on their own (§5).
	if !accessionAnchor && (!hasAnchor || (support < 2 && len(fa) >= 2)) {
		score *= 0.5
	}
	return score, bestPair
}

// BlockingMode selects the candidate-generation strategy.
type BlockingMode int

const (
	// SortedNeighborhood sorts records by a blocking key and compares
	// only records within a sliding window — the standard scalable
	// method.
	SortedNeighborhood BlockingMode = iota
	// FullPairwise compares every cross-source pair (the ablation
	// baseline).
	FullPairwise
)

// Options configures duplicate detection.
type Options struct {
	// Threshold is the minimal record similarity to flag a duplicate
	// (default 0.6).
	Threshold float64
	// Blocking selects the candidate generation mode.
	Blocking BlockingMode
	// Window is the sorted-neighbourhood window size (default 20).
	Window int
	// SecondPass adds a second sorted-neighbourhood pass with a reversed
	// key, catching pairs whose primary keys diverge (default true when
	// using SortedNeighborhood).
	DisableSecondPass bool
	// Workers bounds the worker pool scoring candidate pairs concurrently.
	// Values <= 1 score serially. Results are identical either way:
	// candidate generation stays serial and scores land in indexed slots.
	Workers int
}

func (o *Options) fill() {
	if o.Threshold <= 0 {
		o.Threshold = 0.6
	}
	if o.Window <= 0 {
		o.Window = 20
	}
}

// Match is one flagged duplicate pair.
type Match struct {
	A, B       Record
	Similarity float64
	Evidence   string
}

// Stats reports the comparisons performed.
type Stats struct {
	Records     int
	Comparisons int
	Flagged     int
}

// blockingKey derives the sorted-neighbourhood key: the lexicographically
// smallest informative token across all fields (reversed in the second
// pass), which is robust to field order and naming differences between
// sources.
func blockingKey(r Record, reversed bool) string {
	best := ""
	for _, v := range r.Fields {
		for _, tok := range textmine.Tokenize(v) {
			if len(tok) < 3 {
				continue
			}
			if reversed {
				tok = reverse(tok)
			}
			if best == "" || tok < best {
				best = tok
			}
		}
	}
	return best
}

func reverse(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

// FindDuplicates flags duplicate pairs between records of different
// sources. Same-source pairs are also reported (duplicates can exist
// within one source) but self-pairs never are. Candidate generation is
// serial and deterministic; similarity scoring fans out over
// Options.Workers.
func FindDuplicates(records []Record, opts Options) ([]Match, Stats) {
	matches, stats, _ := FindDuplicatesContext(context.Background(), records, opts)
	return matches, stats
}

// FindDuplicatesContext is FindDuplicates with cancellation: when ctx is
// canceled mid-scoring the partial result is discarded and ctx.Err() is
// returned.
func FindDuplicatesContext(ctx context.Context, records []Record, opts Options) ([]Match, Stats, error) {
	opts.fill()
	stats := Stats{Records: len(records)}
	matcher := NewMatcher(records)
	pairs := candidatePairs(records, opts)
	stats.Comparisons = len(pairs)
	matches, err := scorePairs(ctx, pairs, matcher, opts, nil)
	if err != nil {
		return nil, stats, err
	}
	stats.Flagged = len(matches)
	sortMatches(matches)
	return matches, stats, nil
}

// candidatePairs generates the deduplicated candidate pairs of the chosen
// blocking mode, in a deterministic order.
func candidatePairs(records []Record, opts Options) [][2]Record {
	seen := make(map[pairID]bool)
	var pairs [][2]Record
	add := func(a, b Record) {
		if a.Source == b.Source && a.Accession == b.Accession {
			return
		}
		k := pairIDOf(a, b)
		if seen[k] {
			return
		}
		seen[k] = true
		pairs = append(pairs, [2]Record{a, b})
	}

	switch opts.Blocking {
	case FullPairwise:
		for i := 0; i < len(records); i++ {
			for j := i + 1; j < len(records); j++ {
				add(records[i], records[j])
			}
		}
	case SortedNeighborhood:
		passes := 1
		if !opts.DisableSecondPass {
			passes = 2
		}
		for pass := 0; pass < passes; pass++ {
			ks := make([]keyedRecord, len(records))
			for i, r := range records {
				ks[i] = keyedRecord{blockingKey(r, pass == 1), r}
			}
			sortKeyed(ks)
			for i := range ks {
				for j := i + 1; j < len(ks) && j <= i+opts.Window; j++ {
					add(ks[i].rec, ks[j].rec)
				}
			}
		}
	}
	return pairs
}

// scorePairs computes record similarity for every candidate pair on the
// worker pool (indexed slots keep the output order deterministic) and
// returns the pairs at or above the threshold. A nil cache builds one
// over the pairs' values; a non-nil cache (the incremental index's
// persistent one) must already cover them.
func scorePairs(ctx context.Context, pairs [][2]Record, matcher *Matcher, opts Options, cache *simCache) ([]Match, error) {
	type scored struct {
		sim  float64
		best bestFields
	}
	if cache == nil {
		// Precompute every distinct value's derived forms up front; the
		// workers then score against a read-only cache.
		cache = newSimCache()
		cache.admitPairs(pairs)
	}
	results := make([]scored, len(pairs))
	if err := parallel.ForChunked(ctx, opts.Workers, len(pairs), 32, func(i int) {
		sim, best := weightedSimilarityCached(pairs[i][0], pairs[i][1], matcher, cache)
		results[i] = scored{sim, best}
	}); err != nil {
		return nil, err
	}
	var matches []Match
	for i, r := range results {
		if r.sim >= opts.Threshold {
			matches = append(matches, Match{A: pairs[i][0], B: pairs[i][1], Similarity: r.sim, Evidence: r.best.evidence()})
		}
	}
	return matches, nil
}

// sortMatches orders matches by similarity descending, then pair key.
func sortMatches(matches []Match) {
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Similarity != matches[j].Similarity {
			return matches[i].Similarity > matches[j].Similarity
		}
		return pairKey(matches[i].A, matches[i].B) < pairKey(matches[j].A, matches[j].B)
	})
}

func pairKey(a, b Record) string {
	ka := a.Source + "\x00" + a.Accession
	kb := b.Source + "\x00" + b.Accession
	if kb < ka {
		ka, kb = kb, ka
	}
	return ka + "\x01" + kb
}

// pairID is pairKey as a comparable struct — the dedup-set key during
// candidate generation, where a concatenated string per considered pair
// would be the hottest allocation of the whole detection run.
type pairID struct {
	aSource, aAccession string
	bSource, bAccession string
}

func pairIDOf(a, b Record) pairID {
	if b.Source < a.Source || (b.Source == a.Source && b.Accession < a.Accession) {
		a, b = b, a
	}
	return pairID{a.Source, a.Accession, b.Source, b.Accession}
}

// Links converts matches into duplicate links for the metadata repository.
func Links(matches []Match) []metadata.Link {
	out := make([]metadata.Link, 0, len(matches))
	for _, m := range matches {
		out = append(out, metadata.Link{
			Type:       metadata.LinkDuplicate,
			From:       m.A.Ref(),
			To:         m.B.Ref(),
			Confidence: m.Similarity,
			Method:     "dup:" + m.Evidence,
		})
	}
	return out
}

// Cluster groups matched records into duplicate clusters via union-find.
// Each cluster lists object refs; only one representative of each cluster
// should be returned in query answers (§4.5).
func Cluster(matches []Match) [][]metadata.ObjectRef {
	parent := make(map[string]string)
	refOf := make(map[string]metadata.ObjectRef)
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	add := func(r metadata.ObjectRef) string {
		k := r.Key()
		if _, ok := parent[k]; !ok {
			parent[k] = k
			refOf[k] = r
		}
		return k
	}
	for _, m := range matches {
		a, b := add(m.A.Ref()), add(m.B.Ref())
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	groups := make(map[string][]metadata.ObjectRef)
	for k := range parent {
		root := find(k)
		groups[root] = append(groups[root], refOf[k])
	}
	var out [][]metadata.ObjectRef
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i].Key() < g[j].Key() })
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Key() < out[j][0].Key() })
	return out
}

// Conflict is one field-level disagreement between flagged duplicates —
// "different sources might contradict each other in the data they store
// about an object" (§4.5).
type Conflict struct {
	FieldA, FieldB string
	ValueA, ValueB string
	// Similarity of the conflicting values (low = hard conflict).
	Similarity float64
}

// Conflicts pairs up the most similar fields of a match and reports those
// whose values disagree.
func Conflicts(m Match) []Conflict {
	var out []Conflict
	for ka, va := range m.A.Fields {
		bestK, bestSim := "", -1.0
		for kb, vb := range m.B.Fields {
			if s := fieldSimilarity(nil, va, vb, nil); s > bestSim {
				bestSim = s
				bestK = kb
			}
		}
		if bestK == "" {
			continue
		}
		vb := m.B.Fields[bestK]
		// A conflict is a corresponding field pair (similar enough to be
		// about the same property) whose raw values disagree.
		if bestSim >= 0.3 && !strings.EqualFold(va, vb) {
			out = append(out, Conflict{
				FieldA: ka, FieldB: bestK,
				ValueA: va, ValueB: vb,
				Similarity: bestSim,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FieldA != out[j].FieldA {
			return out[i].FieldA < out[j].FieldA
		}
		return out[i].FieldB < out[j].FieldB
	})
	return out
}

// String renders a conflict.
func (c Conflict) String() string {
	return fmt.Sprintf("%s=%q vs %s=%q (sim %.2f)", c.FieldA, c.ValueA, c.FieldB, c.ValueB, c.Similarity)
}
