// Incremental duplicate detection: instead of re-running FindDuplicates
// over the union of all integrated records on every source addition —
// redoing O(total²) comparisons that were already made — an Index keeps
// every record bucketed by its sorted-neighbourhood blocking keys once,
// and each new source is compared only new×existing + new×new within the
// blocking windows. Matches between two previously-integrated records
// were already flagged when the later of the two arrived.
//
// Deliberate tradeoff vs the full re-run: previously compared pairs are
// NOT rescored under the frequency weights of later batches. A pair just
// below threshold when its later source arrived stays unflagged even if
// subsequent sources shift the IDF weights in its favour, and a flagged
// pair's confidence freezes at its integration-time score. The §6.2
// change-driven re-analysis path is the place to revisit old pairs.
package dup

import (
	"context"
	"sort"
	"strings"
)

// keyedRecord is one record tagged with a blocking key.
type keyedRecord struct {
	key string
	rec Record
}

// keyedLess is the total order of the sorted-neighbourhood lists: by
// blocking key, ties broken by record identity. A strict total order
// matters for the incremental index: merging batches under it yields the
// exact list a full re-sort would, so windows do not depend on the order
// sources were integrated in (blocking-key tie groups can exceed the
// window size, where insertion-point drift would change the candidates).
func keyedLess(a, b keyedRecord) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	ai := a.rec.Source + "\x00" + a.rec.Accession
	bi := b.rec.Source + "\x00" + b.rec.Accession
	return ai < bi
}

// sortKeyed orders by keyedLess.
func sortKeyed(ks []keyedRecord) {
	sort.Slice(ks, func(i, j int) bool { return keyedLess(ks[i], ks[j]) })
}

// Index is the persistent blocking index over all integrated records.
// Records are bucketed (their blocking keys computed and merged into the
// sorted pass lists) exactly once, when added.
type Index struct {
	// passes[p] holds every indexed record sorted by the pass-p blocking
	// key (p=1 uses the reversed key of the second pass).
	passes  [2][]keyedRecord
	all     []Record
	matcher *Matcher
	// cache persists each compared value's derived scoring forms across
	// batches: a streamed ingest revisits boundary records every batch,
	// and rebuilding their token sets and gram codes per batch dominated
	// allocation. Entries are pure functions of the value, so removals
	// never need to evict.
	cache *simCache
}

// NewIndex creates an empty incremental duplicate index.
func NewIndex() *Index {
	return &Index{matcher: NewMatcher(nil), cache: newSimCache()}
}

// Len returns the number of indexed records.
func (ix *Index) Len() int { return len(ix.all) }

// Add buckets records into the index without comparing them — used when
// replaying a snapshot whose duplicate links are already known.
func (ix *Index) Add(records []Record) {
	ix.insert(records)
}

// insert merges the records into both sorted pass lists and the matcher,
// returning the merged positions of the inserted records per pass.
func (ix *Index) insert(records []Record) [2][]int {
	ix.matcher.addRecords(records)
	ix.all = append(ix.all, records...)
	var positions [2][]int
	for pass := 0; pass < 2; pass++ {
		ks := make([]keyedRecord, len(records))
		for i, r := range records {
			ks[i] = keyedRecord{blockingKey(r, pass == 1), r}
		}
		sortKeyed(ks)
		ix.passes[pass], positions[pass] = mergeKeyed(ix.passes[pass], ks)
	}
	return positions
}

// mergeKeyed merges two key-sorted lists, returning the merged list and
// the positions the `added` entries landed on.
func mergeKeyed(existing, added []keyedRecord) ([]keyedRecord, []int) {
	merged := make([]keyedRecord, 0, len(existing)+len(added))
	pos := make([]int, 0, len(added))
	i, j := 0, 0
	for i < len(existing) || j < len(added) {
		takeAdded := i >= len(existing) ||
			(j < len(added) && keyedLess(added[j], existing[i]))
		if takeAdded {
			pos = append(pos, len(merged))
			merged = append(merged, added[j])
			j++
		} else {
			merged = append(merged, existing[i])
			i++
		}
	}
	return merged, pos
}

// RemoveSource drops every record of one source from the index — the
// unwind path when a source addition fails after duplicate detection ran.
func (ix *Index) RemoveSource(source string) {
	var removed []Record
	keep := ix.all[:0]
	for _, r := range ix.all {
		if strings.EqualFold(r.Source, source) {
			removed = append(removed, r)
		} else {
			keep = append(keep, r)
		}
	}
	ix.all = keep
	if len(removed) == 0 {
		return
	}
	ix.matcher.removeRecords(removed)
	for pass := 0; pass < 2; pass++ {
		kept := ix.passes[pass][:0]
		for _, k := range ix.passes[pass] {
			if !strings.EqualFold(k.rec.Source, source) {
				kept = append(kept, k)
			}
		}
		ix.passes[pass] = kept
	}
}

// Remove drops the given records from the index by identity
// (Source+Accession) — the unwind path when a batch append fails after
// duplicate detection ran. Unlike RemoveSource it leaves the source's
// other records indexed. At most one indexed record is dropped per
// given record; ix.all is scanned from the end, so a just-inserted
// batch (always the tail) is removed exactly, even when an appended
// accession collides with an older record of the same source. In that
// collision case the sorted pass lists cannot tell the twins apart and
// may keep the newer one's fields — a harmless skew on a path that only
// runs when the batch is being thrown away.
func (ix *Index) Remove(records []Record) {
	if len(records) == 0 {
		return
	}
	id := func(r Record) string { return r.Source + "\x00" + r.Accession }
	want := make(map[string]int, len(records))
	for _, r := range records {
		want[id(r)]++
	}
	var removed []Record
	keepRev := make([]Record, 0, len(ix.all))
	for i := len(ix.all) - 1; i >= 0; i-- {
		r := ix.all[i]
		if want[id(r)] > 0 {
			want[id(r)]--
			removed = append(removed, r)
		} else {
			keepRev = append(keepRev, r)
		}
	}
	for i, j := 0, len(keepRev)-1; i < j; i, j = i+1, j-1 {
		keepRev[i], keepRev[j] = keepRev[j], keepRev[i]
	}
	ix.all = keepRev
	if len(removed) == 0 {
		return
	}
	ix.matcher.removeRecords(removed)
	for pass := 0; pass < 2; pass++ {
		drop := make(map[string]int, len(removed))
		for _, r := range removed {
			drop[id(r)]++
		}
		// Fresh slice: the backward scan must not write over entries it has
		// yet to read, so filtering in place is off the table here.
		kept := make([]keyedRecord, 0, len(ix.passes[pass])-len(removed))
		for i := len(ix.passes[pass]) - 1; i >= 0; i-- {
			k := ix.passes[pass][i]
			if drop[id(k.rec)] > 0 {
				drop[id(k.rec)]--
			} else {
				kept = append(kept, k)
			}
		}
		for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
			kept[i], kept[j] = kept[j], kept[i]
		}
		ix.passes[pass] = kept
	}
}

// FindNew inserts the added records and flags duplicate pairs involving
// at least one of them: new×existing and new×new pairs whose positions in
// the merged sorted-neighbourhood order fall within Options.Window (or
// all such pairs under FullPairwise blocking). Similarity uses frequency
// weights over the whole indexed record set, so scores match what a full
// FindDuplicates over the union would compute for the same pairs.
func (ix *Index) FindNew(added []Record, opts Options) ([]Match, Stats) {
	matches, stats, _ := ix.FindNewContext(context.Background(), added, opts)
	return matches, stats
}

// FindNewContext is FindNew with cancellation. The added records are
// bucketed into the index before scoring, so when ctx is canceled
// mid-scoring the caller must unwind with RemoveSource — exactly as on
// any other mid-pipeline failure.
func (ix *Index) FindNewContext(ctx context.Context, added []Record, opts Options) ([]Match, Stats, error) {
	opts.fill()
	existing := len(ix.all)
	addedSet := make(map[string]bool, len(added))
	for _, r := range added {
		addedSet[r.Source+"\x00"+r.Accession] = true
	}
	positions := ix.insert(added)
	stats := Stats{Records: len(ix.all)}

	seen := make(map[pairID]bool)
	var pairs [][2]Record
	add := func(a, b Record) {
		if a.Source == b.Source && a.Accession == b.Accession {
			return
		}
		k := pairIDOf(a, b)
		if seen[k] {
			return
		}
		seen[k] = true
		pairs = append(pairs, [2]Record{a, b})
	}

	switch opts.Blocking {
	case FullPairwise:
		for ai, a := range added {
			for i := 0; i < existing; i++ {
				add(a, ix.all[i])
			}
			for j := ai + 1; j < len(added); j++ {
				add(a, added[j])
			}
		}
	case SortedNeighborhood:
		passes := 1
		if !opts.DisableSecondPass {
			passes = 2
		}
		for pass := 0; pass < passes; pass++ {
			ks := ix.passes[pass]
			for _, i := range positions[pass] {
				lo := i - opts.Window
				if lo < 0 {
					lo = 0
				}
				hi := i + opts.Window
				if hi > len(ks)-1 {
					hi = len(ks) - 1
				}
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					// A new×new pair within the window is produced from
					// both endpoints' positions; keep the i<j orientation
					// so each pair is generated once (the seen set catches
					// the cross-pass repeats).
					other := ks[j].rec
					if j < i && addedSet[other.Source+"\x00"+other.Accession] {
						continue
					}
					add(ks[i].rec, other)
				}
			}
		}
	}
	stats.Comparisons = len(pairs)
	// Top the persistent cache up with whatever these pairs touch —
	// values seen in earlier batches are already covered.
	ix.cache.admitPairs(pairs)
	matches, err := scorePairs(ctx, pairs, ix.matcher, opts, ix.cache)
	if err != nil {
		return nil, stats, err
	}
	stats.Flagged = len(matches)
	sortMatches(matches)
	return matches, stats, nil
}

// FindDuplicatesIncremental compares only new×existing + new×new pairs
// within blocking buckets — the incremental replacement for running
// FindDuplicates over the union. The stateless form builds a fresh index
// from the existing records; callers integrating many sources should keep
// one Index and call FindNew so records are bucketed once.
func FindDuplicatesIncremental(existing, added []Record, opts Options) ([]Match, Stats) {
	ix := NewIndex()
	ix.Add(existing)
	return ix.FindNew(added, opts)
}
