package dup_test

import (
	"fmt"

	"repro/internal/dup"
)

// Example flags duplicates across two heterogeneously-modeled sources and
// shows a field-level conflict — the §4.5 workflow.
func Example() {
	records := []dup.Record{
		{Source: "swissprot", Relation: "protein", Accession: "P69905", Fields: map[string]string{
			"description": "hemoglobin subunit alpha oxygen transport",
			"organism":    "Homo sapiens",
			"mass":        "15258 daltons measured value",
		}},
		{Source: "pir", Relation: "entry", Accession: "A40000", Fields: map[string]string{
			"protein_name": "hemoglobin subunit alpha oxygen transport",
			"species":      "Homo sapiens",
			"mass_note":    "15126 daltons measured value",
		}},
		{Source: "pir", Relation: "entry", Accession: "A49999", Fields: map[string]string{
			"protein_name": "ribosomal maturation factor",
			"species":      "Escherichia coli",
		}},
	}
	matches, _ := dup.FindDuplicates(records, dup.Options{Blocking: dup.FullPairwise, Threshold: 0.6})
	for _, m := range matches {
		fmt.Printf("duplicate: %s:%s ~ %s:%s\n", m.A.Source, m.A.Accession, m.B.Source, m.B.Accession)
		for _, c := range dup.Conflicts(m) {
			fmt.Printf("conflict: %s\n", c)
		}
	}
	// Output:
	// duplicate: swissprot:P69905 ~ pir:A40000
	// conflict: mass="15258 daltons measured value" vs mass_note="15126 daltons measured value" (sim 0.60)
}
