package dup

import (
	"fmt"
	"reflect"
	"testing"
)

// synthRecords builds n records for one source; record i of every source
// generated with the same overlap offset shares its name field with
// record i of the others, so cross-source duplicates exist by
// construction.
func synthRecords(source string, n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{
			Source:    source,
			Relation:  "r",
			Accession: fmt.Sprintf("%s-%04d", source, i),
			Fields: map[string]string{
				"name": fmt.Sprintf("unique protein kinase variant-%04d", i),
				"note": fmt.Sprintf("catalyzes reaction path %d of the synthetic pathway", i%5),
			},
		}
	}
	return out
}

func matchKeys(ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = pairKey(m.A, m.B)
	}
	return out
}

func TestIncrementalAllNewMatchesFull(t *testing.T) {
	a := synthRecords("alpha", 40)
	b := synthRecords("beta", 40)
	all := append(append([]Record{}, a...), b...)

	full, fullStats := FindDuplicates(all, Options{})
	inc, incStats := FindDuplicatesIncremental(nil, all, Options{})
	if len(full) == 0 {
		t.Fatal("no duplicates found at all")
	}
	if !reflect.DeepEqual(matchKeys(full), matchKeys(inc)) {
		t.Errorf("all-new incremental differs from full: %d vs %d matches", len(full), len(inc))
	}
	if fullStats.Comparisons != incStats.Comparisons {
		t.Errorf("comparisons: full %d, incremental %d", fullStats.Comparisons, incStats.Comparisons)
	}
}

func TestIncrementalSkipsExistingPairs(t *testing.T) {
	a := synthRecords("alpha", 40)
	b := synthRecords("beta", 40)
	union := append(append([]Record{}, a...), b...)

	full, fullStats := FindDuplicates(union, Options{})
	inc, incStats := FindDuplicatesIncremental(a, b, Options{})

	// The incremental pass performs strictly fewer comparisons (it skips
	// existing×existing) yet must flag every cross-source pair the full
	// run flags: the record batches are disjoint sources, so every full
	// match has one endpoint in the added batch.
	if incStats.Comparisons >= fullStats.Comparisons {
		t.Errorf("incremental did not save work: %d vs %d comparisons", incStats.Comparisons, fullStats.Comparisons)
	}
	fullCross := make(map[string]bool)
	for _, m := range full {
		if m.A.Source != m.B.Source {
			fullCross[pairKey(m.A, m.B)] = true
		}
	}
	incSet := make(map[string]bool)
	for _, m := range inc {
		incSet[pairKey(m.A, m.B)] = true
	}
	for k := range fullCross {
		if !incSet[k] {
			t.Errorf("full-run cross match missing from incremental: %s", k)
		}
	}
}

func TestIndexBatchOrderInvariance(t *testing.T) {
	// The merged sorted-neighbourhood lists must be identical whether
	// records arrive in one batch or several: FindNew windows then cover
	// the same neighbourhoods as a full re-sort.
	a, b, c := synthRecords("alpha", 25), synthRecords("beta", 25), synthRecords("gamma", 25)

	oneBatch := NewIndex()
	oneBatch.Add(append(append(append([]Record{}, a...), b...), c...))
	stepwise := NewIndex()
	for _, batch := range [][]Record{c, a, b} {
		stepwise.Add(batch)
	}
	for pass := 0; pass < 2; pass++ {
		if !reflect.DeepEqual(oneBatch.passes[pass], stepwise.passes[pass]) {
			t.Errorf("pass %d orders differ between batch layouts", pass)
		}
	}
}

func TestIndexRemoveSourceRestoresState(t *testing.T) {
	a := synthRecords("alpha", 30)
	b := synthRecords("beta", 30)

	ix := NewIndex()
	ix.Add(a)
	first, _ := ix.FindNew(b, Options{})
	ix.RemoveSource("beta")
	if ix.Len() != len(a) {
		t.Fatalf("Len after remove = %d, want %d", ix.Len(), len(a))
	}
	second, _ := ix.FindNew(b, Options{})
	if !reflect.DeepEqual(matchKeys(first), matchKeys(second)) {
		t.Errorf("re-adding after RemoveSource changed matches: %d vs %d", len(first), len(second))
	}

	// The matcher's frequency tables must be exactly unwound too.
	clean := NewIndex()
	clean.Add(a)
	ix.RemoveSource("beta")
	if !reflect.DeepEqual(ix.matcher, clean.matcher) {
		t.Error("matcher state not restored by RemoveSource")
	}
}

func TestFindDuplicatesWorkerParity(t *testing.T) {
	a := synthRecords("alpha", 60)
	b := synthRecords("beta", 60)
	all := append(append([]Record{}, a...), b...)
	serial, sStats := FindDuplicates(all, Options{Workers: 1})
	par, pStats := FindDuplicates(all, Options{Workers: 8})
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("worker counts disagree: %d vs %d matches", len(serial), len(par))
	}
	if sStats != pStats {
		t.Errorf("stats disagree: %+v vs %+v", sStats, pStats)
	}
}
