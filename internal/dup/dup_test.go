package dup

import (
	"fmt"
	"testing"

	"repro/internal/discovery"
	"repro/internal/metadata"
	"repro/internal/profile"
	"repro/internal/rel"
)

func rec(src, acc string, fields map[string]string) Record {
	return Record{Source: src, Relation: "main", Accession: acc, Fields: fields}
}

// swissprotPIR builds the paper's §2 example: "largely the same proteins
// used to be stored in Swiss-Prot and PIR" — two sources with different
// field names and slightly different values.
func swissprotPIR() []Record {
	var out []Record
	names := []string{
		"hemoglobin alpha chain", "myoglobin", "insulin precursor",
		"keratin type I", "cytochrome c", "lysozyme C",
		"trypsin", "catalase", "tumor protein p53", "serum albumin",
	}
	organisms := []string{"Homo sapiens", "Mus musculus", "Rattus norvegicus",
		"Bos taurus", "Gallus gallus", "Homo sapiens", "Sus scrofa",
		"Homo sapiens", "Homo sapiens", "Homo sapiens"}
	for i := 0; i < 10; i++ {
		out = append(out, rec("swissprot", fmt.Sprintf("P%05d", i), map[string]string{
			"description": names[i],
			"organism":    organisms[i],
		}))
		// PIR stores the same proteins with different accessions, a
		// differently named description field and small wording drift.
		out = append(out, rec("pir", fmt.Sprintf("PIR%04d", i), map[string]string{
			"protein_name": names[i],
			"species":      organisms[i],
		}))
	}
	// Plus some PIR-only proteins.
	for i := 0; i < 5; i++ {
		out = append(out, rec("pir", fmt.Sprintf("PIRX%03d", i), map[string]string{
			"protein_name": fmt.Sprintf("uncharacterized protein family member %d", i),
			"species":      "Danio rerio",
		}))
	}
	return out
}

func TestRecordSimilarityIdenticalFields(t *testing.T) {
	a := rec("a", "1", map[string]string{"name": "hemoglobin", "org": "human"})
	b := rec("b", "2", map[string]string{"title": "hemoglobin", "species": "human"})
	sim, ev := RecordSimilarity(a, b)
	if sim != 1.0 {
		t.Errorf("sim = %v", sim)
	}
	if ev == "" {
		t.Error("missing evidence")
	}
}

func TestRecordSimilarityDisjoint(t *testing.T) {
	a := rec("a", "1", map[string]string{"name": "hemoglobin alpha subunit"})
	b := rec("b", "2", map[string]string{"name": "ribosomal machinery component"})
	sim, _ := RecordSimilarity(a, b)
	if sim > 0.3 {
		t.Errorf("sim = %v for unrelated records", sim)
	}
}

func TestRecordSimilarityEmptyFields(t *testing.T) {
	a := rec("a", "1", nil)
	b := rec("b", "2", map[string]string{"x": "y"})
	if sim, _ := RecordSimilarity(a, b); sim != 0 {
		t.Errorf("empty record sim = %v", sim)
	}
}

func TestFindDuplicatesFullPairwise(t *testing.T) {
	records := swissprotPIR()
	matches, stats := FindDuplicates(records, Options{Blocking: FullPairwise, Threshold: 0.7})
	if stats.Comparisons != len(records)*(len(records)-1)/2 {
		t.Errorf("comparisons = %d", stats.Comparisons)
	}
	// All 10 true pairs must be found.
	found := map[string]string{}
	for _, m := range matches {
		a, b := m.A, m.B
		if a.Source == "pir" {
			a, b = b, a
		}
		if a.Source == "swissprot" && b.Source == "pir" {
			found[a.Accession] = b.Accession
		}
	}
	for i := 0; i < 10; i++ {
		sp := fmt.Sprintf("P%05d", i)
		want := fmt.Sprintf("PIR%04d", i)
		if found[sp] != want {
			t.Errorf("duplicate of %s = %q want %q", sp, found[sp], want)
		}
	}
}

func TestFindDuplicatesSortedNeighborhood(t *testing.T) {
	records := swissprotPIR()
	full, _ := FindDuplicates(records, Options{Blocking: FullPairwise, Threshold: 0.7})
	sn, snStats := FindDuplicates(records, Options{Blocking: SortedNeighborhood, Threshold: 0.7, Window: 5})
	if snStats.Comparisons >= len(records)*(len(records)-1)/2 {
		t.Errorf("blocking did not reduce comparisons: %d", snStats.Comparisons)
	}
	// Identical field values sort adjacently, so recall should be full.
	if len(sn) < len(full) {
		t.Errorf("sorted neighborhood found %d of %d full-pairwise matches", len(sn), len(full))
	}
}

func TestFindDuplicatesNoSelfPairs(t *testing.T) {
	records := []Record{
		rec("a", "1", map[string]string{"x": "same value"}),
		rec("a", "1", map[string]string{"x": "same value"}),
	}
	matches, _ := FindDuplicates(records, Options{Blocking: FullPairwise})
	if len(matches) != 0 {
		t.Errorf("self pair flagged: %v", matches)
	}
}

func TestFindDuplicatesWithinSource(t *testing.T) {
	// Duplicates within one source must also be detected (§3: "duplicate
	// objects within and across different data sources").
	records := []Record{
		rec("a", "1", map[string]string{"name": "alpha globin protein"}),
		rec("a", "2", map[string]string{"name": "alpha globin protein"}),
	}
	matches, _ := FindDuplicates(records, Options{Blocking: FullPairwise, Threshold: 0.9})
	if len(matches) != 1 {
		t.Errorf("within-source duplicate not flagged: %v", matches)
	}
}

func TestThresholdSweepMonotone(t *testing.T) {
	records := swissprotPIR()
	prev := -1
	for _, th := range []float64{0.3, 0.5, 0.7, 0.9} {
		matches, _ := FindDuplicates(records, Options{Blocking: FullPairwise, Threshold: th})
		if prev >= 0 && len(matches) > prev {
			t.Errorf("threshold %v yielded more matches (%d) than lower threshold (%d)", th, len(matches), prev)
		}
		prev = len(matches)
	}
}

func TestLinks(t *testing.T) {
	records := swissprotPIR()
	matches, _ := FindDuplicates(records, Options{Blocking: FullPairwise, Threshold: 0.7})
	links := Links(matches)
	if len(links) != len(matches) {
		t.Fatalf("links = %d matches = %d", len(links), len(matches))
	}
	for _, l := range links {
		if l.Type != metadata.LinkDuplicate {
			t.Errorf("type = %v", l.Type)
		}
		if l.Confidence <= 0 {
			t.Errorf("confidence = %v", l.Confidence)
		}
	}
}

func TestCluster(t *testing.T) {
	// a1 ~ b1 ~ c1 chain must form one cluster; d1-e1 another.
	m := func(s1, a1, s2, a2 string) Match {
		return Match{
			A: rec(s1, a1, map[string]string{"x": "v"}),
			B: rec(s2, a2, map[string]string{"x": "v"}),
		}
	}
	clusters := Cluster([]Match{
		m("a", "1", "b", "1"),
		m("b", "1", "c", "1"),
		m("d", "1", "e", "1"),
	})
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	sizes := []int{len(clusters[0]), len(clusters[1])}
	if !(sizes[0] == 3 && sizes[1] == 2 || sizes[0] == 2 && sizes[1] == 3) {
		t.Errorf("cluster sizes = %v", sizes)
	}
}

func TestConflicts(t *testing.T) {
	mA := rec("pdb", "1ABC", map[string]string{"resolution": "1.8 angstrom resolution value", "method": "xray"})
	mB := rec("msd", "1ABC", map[string]string{"res": "2.0 angstrom resolution value", "method": "xray"})
	match := Match{A: mA, B: mB}
	cs := Conflicts(match)
	if len(cs) != 1 {
		t.Fatalf("conflicts = %v", cs)
	}
	if cs[0].FieldA != "resolution" || cs[0].FieldB != "res" {
		t.Errorf("conflict fields = %v", cs[0])
	}
	if cs[0].ValueA == cs[0].ValueB {
		t.Error("conflict values must differ")
	}
}

func TestConflictsNoneWhenIdentical(t *testing.T) {
	a := rec("a", "1", map[string]string{"x": "same"})
	b := rec("b", "2", map[string]string{"y": "same"})
	if cs := Conflicts(Match{A: a, B: b}); len(cs) != 0 {
		t.Errorf("conflicts = %v", cs)
	}
}

func TestRecordsFromSource(t *testing.T) {
	db := rel.NewDatabase("src")
	main := db.Create("entry", rel.TextSchema("entry_id", "acc", "label"))
	for i := 0; i < 5; i++ {
		main.AppendRaw(fmt.Sprintf("%d", i+1), fmt.Sprintf("AC%04d", i), fmt.Sprintf("protein %d label", i))
	}
	profs, err := profile.ProfileDatabase(db, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := discovery.Analyze(db, profs, discovery.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Primary != "entry" {
		t.Fatalf("primary = %q", st.Primary)
	}
	recs := RecordsFromSource(db, st)
	if len(recs) != 5 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Accession != "AC0000" {
		t.Errorf("accession = %q", r.Accession)
	}
	if _, hasID := r.Fields["entry_id"]; hasID {
		t.Error("surrogate key should be excluded from fields")
	}
	if r.Fields["label"] != "protein 0 label" {
		t.Errorf("fields = %v", r.Fields)
	}
}

func TestRecordsFromSourceNilStructure(t *testing.T) {
	db := rel.NewDatabase("x")
	if recs := RecordsFromSource(db, nil); recs != nil {
		t.Errorf("recs = %v", recs)
	}
	if recs := RecordsFromSource(db, &discovery.Structure{}); recs != nil {
		t.Errorf("recs = %v", recs)
	}
}

func TestPDBThreeFlavors(t *testing.T) {
	// §5: the same PDB structures exist in three differently cleansed
	// versions; "detecting duplicate objects is easy in this case, because
	// the original PDB accession number is available in all three".
	var records []Record
	proteins := []string{"hemoglobin", "myoglobin", "insulin", "keratin",
		"cytochrome", "lysozyme", "trypsin", "catalase"}
	for i := 0; i < 8; i++ {
		code := fmt.Sprintf("%dAB%d", i+1, i)
		records = append(records,
			rec("pdb", code, map[string]string{"pdb_code": code, "title": fmt.Sprintf("crystal structure of %s", proteins[i])}),
			rec("openmms", code, map[string]string{"code": code, "name": fmt.Sprintf("%s structure cleaned coordinates", proteins[i])}),
			rec("msd", code, map[string]string{"entry_code": code, "description": fmt.Sprintf("cleansed structure of %s entry", proteins[i])}),
		)
	}
	matches, _ := FindDuplicates(records, Options{Blocking: FullPairwise, Threshold: 0.6})
	clusters := Cluster(matches)
	if len(clusters) != 8 {
		t.Fatalf("clusters = %d want 8", len(clusters))
	}
	for _, c := range clusters {
		if len(c) != 3 {
			t.Errorf("cluster size = %d want 3 (three flavors): %v", len(c), c)
		}
	}
}
