package sqlx

import (
	"context"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/rel"
)

// parallelDB builds a fact table spanning several morsels plus a small
// dimension table, so eligible chains actually split into parallel
// morsels (len > morselSize).
func parallelDB(t testing.TB) *rel.Database {
	db := rel.NewDatabase("test")
	fact := db.Create("fact", rel.NewSchema(
		intCol("id"), intCol("grp"), intCol("dim_id"),
		rel.Column{Name: "note", Kind: rel.KindString}))
	dim := db.Create("dim", rel.NewSchema(intCol("id"),
		rel.Column{Name: "name", Kind: rel.KindString}))
	for i := 0; i < 50; i++ {
		dim.Append(rel.Tuple{rel.Int(int64(i)), rel.Str(fmt.Sprintf("dim %d", i))})
	}
	for i := 0; i < 3*morselSize+17; i++ {
		note := rel.Str(fmt.Sprintf("n%d", i%13))
		if i%97 == 0 {
			note = rel.Null()
		}
		fact.Append(rel.Tuple{rel.Int(int64(i)), rel.Int(int64(i % 7)), rel.Int(int64(i % 50)), note})
	}
	return db
}

// rowsFor executes q with the given parallelism and returns every row
// rendered to a comparable string, plus the scanned-tuple count.
func rowsFor(t testing.TB, db *rel.Database, q string, workers int) ([]string, int64) {
	t.Helper()
	plan, err := Prepare(db, q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	c, err := plan.OpenParallel(context.Background(), db, workers)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	var out []string
	for {
		row, err := c.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		out = append(out, rowKey(row))
	}
	return out, c.Scanned()
}

// TestParallelMatchesSerial: every operator combination returns
// bit-identical rows, in identical order, at any parallelism degree.
func TestParallelMatchesSerial(t *testing.T) {
	db := parallelDB(t)
	queries := []string{
		// scan + filter + projection
		`SELECT id, note FROM fact WHERE grp = 3`,
		// expression filters across morsel boundaries
		`SELECT id FROM fact WHERE id >= 1000 AND id < 1100`,
		// aggregation
		`SELECT grp, COUNT(*), SUM(id) FROM fact GROUP BY grp ORDER BY grp`,
		`SELECT COUNT(*) FROM fact WHERE note IS NULL`,
		// distinct + sort
		`SELECT DISTINCT note FROM fact ORDER BY note`,
		// sort + limit + offset
		`SELECT id FROM fact ORDER BY note, id DESC LIMIT 40 OFFSET 5`,
		// limit without sort: early termination must keep morsel order
		`SELECT id FROM fact WHERE grp = 1 LIMIT 10`,
		// hash join (build=right: left side is the big scan)
		`SELECT f.id, d.name FROM fact f JOIN dim d ON f.dim_id = d.id WHERE d.id < 10`,
		// left join with null extension
		`SELECT f.id, d.name FROM fact f LEFT JOIN dim d ON f.dim_id = d.id WHERE f.grp = 2`,
		// nested loop join on a non-equi predicate
		`SELECT f.id, d.id FROM fact f JOIN dim d ON f.grp > d.id WHERE f.id < 1100`,
		// cross join with a filtered right side
		`SELECT COUNT(*) FROM fact CROSS JOIN dim WHERE dim.id < 2`,
		// union of two parallel branches
		`SELECT id FROM fact WHERE grp = 1 UNION ALL SELECT id FROM fact WHERE grp = 2`,
		`SELECT grp FROM fact WHERE id < 2000 UNION SELECT id FROM dim ORDER BY grp LIMIT 20`,
		// scalar subquery feeding every morsel
		`SELECT id FROM fact WHERE dim_id IN (SELECT id FROM dim WHERE id < 5) AND grp = 0`,
	}
	for _, q := range queries {
		serial, _ := rowsFor(t, db, q, 1)
		for _, workers := range []int{2, 4, 7} {
			got, _ := rowsFor(t, db, q, workers)
			if len(got) != len(serial) {
				t.Errorf("%s: workers=%d returned %d rows, serial %d", q, workers, len(got), len(serial))
				continue
			}
			for i := range got {
				if got[i] != serial[i] {
					t.Errorf("%s: workers=%d row %d = %q, serial %q", q, workers, i, got[i], serial[i])
					break
				}
			}
		}
	}
}

// TestParallelScannedMatchesSerial: a full drain reads every input
// tuple exactly once regardless of parallelism. (Under LIMIT the counts
// legitimately differ — parallel morsels overrun the cutoff.)
func TestParallelScannedMatchesSerial(t *testing.T) {
	db := parallelDB(t)
	q := `SELECT grp, COUNT(*) FROM fact GROUP BY grp`
	_, serial := rowsFor(t, db, q, 1)
	_, par := rowsFor(t, db, q, 4)
	if serial != par {
		t.Errorf("scanned: serial %d vs parallel %d", serial, par)
	}
}

// TestParallelCursorClose: closing a parallel cursor mid-result stops
// the producer promptly; the goroutines exit via the canceled context
// (the race detector would flag leaked writers touching freed slots).
func TestParallelCursorClose(t *testing.T) {
	db := parallelDB(t)
	plan, err := Prepare(db, `SELECT id, note FROM fact`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c, err := plan.OpenParallel(context.Background(), db, 4)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			if _, err := c.Next(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		c.Close()
	}
}

// TestParallelCancellation: canceling the context aborts a parallel
// query with the context's error.
func TestParallelCancellation(t *testing.T) {
	db := parallelDB(t)
	plan, err := Prepare(db, `SELECT f.id FROM fact f JOIN dim d ON f.dim_id = d.id`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c, err := plan.OpenParallel(ctx, db, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	for {
		_, err := c.Next(ctx)
		if err == nil {
			continue
		}
		if err == io.EOF {
			t.Fatal("canceled query drained to EOF")
		}
		break
	}
}

// TestExplainAnalyzeSerial: EXPLAIN ANALYZE annotates operators with
// actual rows and reports the execution summary; no Gather appears in a
// serial run.
func TestExplainAnalyzeSerial(t *testing.T) {
	db := parallelDB(t)
	plan, err := Prepare(db, `SELECT grp, COUNT(*) FROM fact WHERE dim_id = 3 GROUP BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	text, err := plan.ExplainAnalyze(context.Background(), db, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"actual=", "time=", "Execution:", "tuples scanned"} {
		if !strings.Contains(text, want) {
			t.Errorf("serial EXPLAIN ANALYZE missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "Gather(") {
		t.Errorf("serial run must not show a Gather exchange:\n%s", text)
	}
}

// TestExplainAnalyzeParallel: with workers the eligible chain runs as
// morsels and the plan shows the Gather exchange with its actual rows.
func TestExplainAnalyzeParallel(t *testing.T) {
	db := parallelDB(t)
	plan, err := Prepare(db, `SELECT f.id, d.name FROM fact f JOIN dim d ON f.dim_id = d.id WHERE f.grp = 4`)
	if err != nil {
		t.Fatal(err)
	}
	text, err := plan.ExplainAnalyze(context.Background(), db, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "Gather(workers=4, morsels=4)") {
		t.Errorf("parallel EXPLAIN ANALYZE missing Gather exchange:\n%s", text)
	}
	// The join's actual row count is exact even across morsel workers.
	matches := 0
	for i := 0; i < 3*morselSize+17; i++ {
		if i%7 == 4 {
			matches++
		}
	}
	want := fmt.Sprintf("actual=%d", matches)
	if !strings.Contains(text, want) {
		t.Errorf("EXPLAIN ANALYZE missing %s:\n%s", want, text)
	}
}
