package sqlx

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rel"
)

// RenderSQL renders a parsed statement back to SQL that parses to the
// same tree. The output is canonical: compound expressions are fully
// parenthesized, keywords are uppercase, and identifiers that collide
// with keywords (or contain non-identifier characters) are quoted — so
// render(parse(render(parse(x)))) == render(parse(x)), the fixpoint
// property FuzzPrepare checks.
func RenderSQL(stmt Statement) string {
	var b strings.Builder
	switch s := stmt.(type) {
	case *SelectStmt:
		renderSelect(&b, s)
	case *InsertStmt:
		fmt.Fprintf(&b, "INSERT INTO %s", sqlIdent(s.Table))
		if len(s.Columns) > 0 {
			b.WriteString(" (")
			for i, c := range s.Columns {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(sqlIdent(c))
			}
			b.WriteString(")")
		}
		b.WriteString(" VALUES ")
		for i, row := range s.Rows {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("(")
			for j, e := range row {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(renderExpr(e))
			}
			b.WriteString(")")
		}
	case *CreateTableStmt:
		b.WriteString("CREATE TABLE ")
		if s.IfNotExists {
			b.WriteString("IF NOT EXISTS ")
		}
		b.WriteString(sqlIdent(s.Table))
		b.WriteString(" (")
		for i, cd := range s.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(sqlIdent(cd.Name))
			b.WriteString(" ")
			b.WriteString(kindType(cd.Kind))
			if cd.PrimaryKey {
				b.WriteString(" PRIMARY KEY")
			}
			if cd.Unique {
				b.WriteString(" UNIQUE")
			}
			if cd.References != nil {
				fmt.Fprintf(&b, " REFERENCES %s", sqlIdent(cd.References.ToRelation))
				if cd.References.ToColumn != "" {
					fmt.Fprintf(&b, " (%s)", sqlIdent(cd.References.ToColumn))
				}
			}
		}
		b.WriteString(")")
	case *DropTableStmt:
		b.WriteString("DROP TABLE ")
		if s.IfExists {
			b.WriteString("IF EXISTS ")
		}
		b.WriteString(sqlIdent(s.Table))
	case *UpdateStmt:
		fmt.Fprintf(&b, "UPDATE %s SET ", sqlIdent(s.Table))
		for i, a := range s.Set {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s = %s", sqlIdent(a.Column), renderExpr(a.Value))
		}
		if s.Where != nil {
			b.WriteString(" WHERE ")
			b.WriteString(renderExpr(s.Where))
		}
	case *DeleteStmt:
		fmt.Fprintf(&b, "DELETE FROM %s", sqlIdent(s.Table))
		if s.Where != nil {
			b.WriteString(" WHERE ")
			b.WriteString(renderExpr(s.Where))
		}
	default:
		fmt.Fprintf(&b, "/* unrenderable %T */", stmt)
	}
	return b.String()
}

// renderSelect renders a full SELECT including its UNION chain and the
// head's ORDER BY/LIMIT/OFFSET (which bind to the whole chain).
func renderSelect(b *strings.Builder, s *SelectStmt) {
	renderSelectCore(b, s)
	for cur := s; cur.Union != nil; cur = cur.Union {
		b.WriteString(" UNION ")
		if cur.UnionAll {
			b.WriteString("ALL ")
		}
		renderSelectCore(b, cur.Union)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, oi := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(renderExpr(oi.Expr))
			if oi.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(b, " LIMIT %d", s.Limit)
	}
	if s.Offset > 0 {
		fmt.Fprintf(b, " OFFSET %d", s.Offset)
	}
}

func renderSelectCore(b *strings.Builder, s *SelectStmt) {
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star && it.StarTable != "":
			b.WriteString(sqlIdent(it.StarTable))
			b.WriteString(".*")
		case it.Star:
			b.WriteString("*")
		default:
			b.WriteString(renderExpr(it.Expr))
			if it.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(sqlIdent(it.Alias))
			}
		}
	}
	if s.From != nil {
		b.WriteString(" FROM ")
		renderTableRef(b, s.From)
		for _, j := range s.Joins {
			switch j.Kind {
			case JoinLeft:
				b.WriteString(" LEFT JOIN ")
			case JoinCross:
				b.WriteString(" CROSS JOIN ")
			default:
				b.WriteString(" JOIN ")
			}
			renderTableRef(b, j.Table)
			if j.Kind != JoinCross {
				b.WriteString(" ON ")
				b.WriteString(renderExpr(j.On))
			}
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(renderExpr(s.Where))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(renderExpr(e))
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(renderExpr(s.Having))
	}
}

func renderTableRef(b *strings.Builder, tr *TableRef) {
	b.WriteString(sqlIdent(tr.Name))
	if tr.Alias != "" {
		b.WriteString(" AS ")
		b.WriteString(sqlIdent(tr.Alias))
	}
}

// renderExpr renders one expression. Every compound node is wrapped in
// parentheses, so operator precedence and associativity can never shift
// on re-parse.
func renderExpr(e Expr) string {
	switch x := e.(type) {
	case *Literal:
		return renderValue(x.Value)
	case *ColumnRef:
		if x.Table != "" {
			return sqlIdent(x.Table) + "." + sqlIdent(x.Column)
		}
		return sqlIdent(x.Column)
	case *BinaryExpr:
		return "(" + renderExpr(x.Left) + " " + x.Op + " " + renderExpr(x.Right) + ")"
	case *UnaryExpr:
		if x.Op == "NOT" {
			return "(NOT " + renderExpr(x.Expr) + ")"
		}
		// "-(x)" — never "-" directly against another "-", which would
		// lex as a line comment.
		return "(-" + "(" + renderExpr(x.Expr) + "))"
	case *IsNullExpr:
		if x.Negate {
			return "(" + renderExpr(x.Expr) + " IS NOT NULL)"
		}
		return "(" + renderExpr(x.Expr) + " IS NULL)"
	case *InExpr:
		var b strings.Builder
		b.WriteString("(")
		b.WriteString(renderExpr(x.Expr))
		if x.Negate {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		if x.Sub != nil {
			renderSelect(&b, x.Sub)
		} else {
			for i, it := range x.List {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(renderExpr(it))
			}
		}
		b.WriteString("))")
		return b.String()
	case *BetweenExpr:
		neg := ""
		if x.Negate {
			neg = "NOT "
		}
		return "(" + renderExpr(x.Expr) + " " + neg + "BETWEEN " +
			renderExpr(x.Lo) + " AND " + renderExpr(x.Hi) + ")"
	case *FuncExpr:
		var b strings.Builder
		b.WriteString(x.Name)
		b.WriteString("(")
		if x.Star {
			b.WriteString("*")
		} else {
			if x.Distinct {
				b.WriteString("DISTINCT ")
			}
			for i, a := range x.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(renderExpr(a))
			}
		}
		b.WriteString(")")
		return b.String()
	}
	return fmt.Sprintf("/* unrenderable %T */", e)
}

// renderValue renders a literal the lexer reads back as the same value
// and kind. Floats keep a decimal point so they stay floats; negative
// numbers cannot appear here (the parser produces unary minus instead).
func renderValue(v rel.Value) string {
	switch v.K {
	case rel.KindNull:
		return "NULL"
	case rel.KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	case rel.KindInt:
		return strconv.FormatInt(v.I, 10)
	case rel.KindFloat:
		s := strconv.FormatFloat(v.F, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	default:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
}

// kindType names a column type in CREATE TABLE syntax.
func kindType(k rel.Kind) string {
	switch k {
	case rel.KindInt:
		return "INTEGER"
	case rel.KindFloat:
		return "REAL"
	case rel.KindBool:
		return "BOOLEAN"
	default:
		return "TEXT"
	}
}

// sqlIdent renders an identifier, quoting it when it would lex as a
// keyword or contains anything but ASCII identifier bytes. The lexer
// walks bytes, so multi-byte runes are never safe bare even when
// unicode.IsLetter holds for the decoded rune; quoting accepts any
// byte except '"', which cannot occur in a parsed identifier.
func sqlIdent(name string) string {
	plain := name != "" && !keywords[strings.ToUpper(name)]
	for i := 0; i < len(name) && plain; i++ {
		c := name[i]
		switch {
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9' && i > 0:
		default:
			plain = false
		}
	}
	if plain {
		return name
	}
	return `"` + name + `"`
}
