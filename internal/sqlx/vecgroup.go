package sqlx

import (
	"context"
	"fmt"
	"io"

	"repro/internal/rel"
)

// vecGroup is the GROUP BY / aggregate pipeline breaker of the batch
// engine: the semantics of execGrouped with the string-keyed group map
// replaced by the open-addressing groupTable. Group keys are evaluated
// into a reused scratch slice and only copied into the table's flat
// arena when a new group appears, so steady-state accumulation of an
// existing group allocates nothing.
type vecGroup struct {
	child vecIter
	s     *SelectStmt
	items []SelectItem
	rt    *run

	filled bool
	rows   []rel.Tuple
	pos    int
	out    []item
}

func (g *vecGroup) fill(ctx context.Context) error {
	var aggs []*FuncExpr
	for _, it := range g.items {
		collectAggs(it.Expr, &aggs)
	}
	if g.s.Having != nil {
		collectAggs(g.s.Having, &aggs)
	}
	var gt groupTable
	var groups []*group
	keyScratch := make([]rel.Value, len(g.s.GroupBy))
	for {
		items, err := g.child.next(ctx, vecBatch)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for _, it := range items {
			for ki, ge := range g.s.GroupBy {
				v, err := eval(ge, it.env)
				if err != nil {
					return err
				}
				keyScratch[ki] = v
			}
			idx, added := gt.findOrAdd(keyScratch)
			if added {
				ng := &group{repr: it.env, aggs: make(map[*FuncExpr]*aggState)}
				for _, a := range aggs {
					ng.aggs[a] = newAggState()
				}
				groups = append(groups, ng)
			}
			grp := groups[idx]
			grp.star++
			for _, a := range aggs {
				if a.Star {
					continue
				}
				if len(a.Args) != 1 {
					return fmt.Errorf("sqlx: aggregate %s takes 1 argument", a.Name)
				}
				v, err := eval(a.Args[0], it.env)
				if err != nil {
					return err
				}
				grp.aggs[a].add(v, a.Distinct)
			}
		}
	}
	// Aggregates over empty input with no GROUP BY produce one row.
	if len(groups) == 0 && len(g.s.GroupBy) == 0 {
		ng := &group{repr: &env{rt: g.rt}, aggs: make(map[*FuncExpr]*aggState)}
		for _, a := range aggs {
			ng.aggs[a] = newAggState()
		}
		groups = append(groups, ng)
	}
	for _, grp := range groups {
		if g.s.Having != nil {
			v, err := evalGrouped(g.s.Having, grp)
			if err != nil {
				return err
			}
			if b, ok := v.AsBool(); !ok || !b {
				continue
			}
		}
		row := make(rel.Tuple, len(g.items))
		for i, it := range g.items {
			v, err := evalGrouped(it.Expr, grp)
			if err != nil {
				return err
			}
			row[i] = v
		}
		g.rows = append(g.rows, row)
	}
	return nil
}

func (g *vecGroup) next(ctx context.Context, want int) ([]item, error) {
	if !g.filled {
		if err := g.fill(ctx); err != nil {
			return nil, err
		}
		g.filled = true
	}
	n := len(g.rows) - g.pos
	if n <= 0 {
		return nil, io.EOF
	}
	if n > want {
		n = want
	}
	if cap(g.out) < n {
		g.out = make([]item, vecBatch)
	}
	out := g.out[:n]
	for i := 0; i < n; i++ {
		out[i] = item{row: g.rows[g.pos+i]}
	}
	g.pos += n
	return out, nil
}
