package sqlx

import (
	"strings"
	"testing"

	"repro/internal/rel"
)

func intCol(name string) rel.Column { return rel.Column{Name: name, Kind: rel.KindInt} }

// reorderDB builds three equal-size tables forming an inner equi-join
// chain, with synthetic statistics: the distinct counts of the filter
// columns b.f and c.f are overridden so the test controls which filtered
// table the planner estimates smallest.
func reorderDB(t *testing.T, distinctB, distinctC int) *rel.Database {
	t.Helper()
	db := rel.NewDatabase("test")
	a := db.Create("a", rel.NewSchema(intCol("x"), intCol("y")))
	b := db.Create("b", rel.NewSchema(intCol("x"), intCol("f")))
	c := db.Create("c", rel.NewSchema(intCol("y"), intCol("f")))
	for i := 0; i < 30; i++ {
		a.Append(rel.Tuple{rel.Int(int64(i % 10)), rel.Int(int64(i % 6))})
		b.Append(rel.Tuple{rel.Int(int64(i % 10)), rel.Int(int64(i % 3))})
		c.Append(rel.Tuple{rel.Int(int64(i % 6)), rel.Int(int64(i % 3))})
	}
	b.Stats = rel.BuildStats(b)
	c.Stats = rel.BuildStats(c)
	b.Stats.Cols["f"].Distinct = distinctB
	c.Stats.Cols["f"].Distinct = distinctC
	return db
}

const reorderQuery = `SELECT a.x, b.f, c.f FROM a JOIN b ON a.x = b.x JOIN c ON a.y = c.y WHERE b.f = 1 AND c.f = 1 ORDER BY a.x, b.f, c.f`

// explainFor renders the plan of q against db.
func explainFor(t *testing.T, db *rel.Database, q string) string {
	t.Helper()
	plan, err := Prepare(db, q)
	if err != nil {
		t.Fatal(err)
	}
	text, err := plan.Explain(db)
	if err != nil {
		t.Fatal(err)
	}
	return text
}

// TestReorderFollowsStats: the greedy reorderer starts from the table
// with the smallest estimated filtered cardinality, so flipping the
// synthetic distinct counts flips the join order shown by EXPLAIN.
func TestReorderFollowsStats(t *testing.T) {
	// b.f is nearly unique -> the b filter is highly selective -> scan b.
	text := explainFor(t, reorderDB(t, 15, 2), reorderQuery)
	if !strings.Contains(text, "Scan(b, filter") {
		t.Errorf("plan should start from b (selective filter):\n%s", text)
	}
	// Flip the stats: now c's filter is the selective one -> scan c.
	text = explainFor(t, reorderDB(t, 2, 15), reorderQuery)
	if !strings.Contains(text, "Scan(c, filter") {
		t.Errorf("flipped stats should start from c:\n%s", text)
	}
	// Both orders keep the equi-joins connected: no cross product.
	if strings.Contains(text, "CrossJoin") {
		t.Errorf("reordered plan degenerated to a cross product:\n%s", text)
	}
}

// TestReorderPreservesResults: the reordered plan returns exactly the
// rows of the parse-order plan, for both stats configurations.
func TestReorderPreservesResults(t *testing.T) {
	defer func() { ReorderJoins = true }()
	for _, d := range [][2]int{{15, 2}, {2, 15}} {
		db := reorderDB(t, d[0], d[1])
		ReorderJoins = false
		want := mustExec(t, db, reorderQuery)
		ReorderJoins = true
		got := mustExec(t, db, reorderQuery)
		if len(got.Rows) != len(want.Rows) || len(want.Rows) == 0 {
			t.Fatalf("distinct=%v: %d rows reordered vs %d in parse order", d, len(got.Rows), len(want.Rows))
		}
		for i := range got.Rows {
			if rowKey(got.Rows[i]) != rowKey(want.Rows[i]) {
				t.Errorf("distinct=%v: row %d = %v, want %v", d, i, got.Rows[i], want.Rows[i])
			}
		}
	}
}

// TestReorderStopsAtLeftJoin: an outer join is never reordered across —
// the plan keeps parse order when the chain starts with a LEFT JOIN.
func TestReorderStopsAtLeftJoin(t *testing.T) {
	db := reorderDB(t, 15, 2)
	q := `SELECT a.x FROM a LEFT JOIN b ON a.x = b.x JOIN c ON a.y = c.y WHERE c.f = 1`
	text := explainFor(t, db, q)
	if !strings.Contains(text, "Scan(a)") || !strings.Contains(text, "left outer, b") {
		t.Errorf("LEFT JOIN chain must keep parse order (scan a):\n%s", text)
	}
}

// TestExplainEstimatesEveryNode: every operator line of an EXPLAIN
// carries an estimated cardinality — filters, projections, sorts and
// limits included, not only scans and joins.
func TestExplainEstimatesEveryNode(t *testing.T) {
	indexed, _ := optDB(t)
	for _, q := range []string{
		`SELECT p.name FROM protein p JOIN organism o ON p.organism_id = o.id WHERE p.mass > o.id ORDER BY p.name LIMIT 5 OFFSET 1`,
		`SELECT o.species, COUNT(*) AS n FROM protein p JOIN organism o ON p.organism_id = o.id GROUP BY o.species ORDER BY n DESC LIMIT 3`,
		`SELECT DISTINCT organism_id FROM protein UNION SELECT id FROM organism ORDER BY organism_id LIMIT 4`,
		`SELECT 1 + 2`,
	} {
		text := explainFor(t, indexed, q)
		for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
			if !strings.Contains(line, "[rows≈") {
				t.Errorf("%s: node missing cardinality estimate: %q\nfull plan:\n%s", q, line, text)
			}
		}
	}
}

// TestGroupEstimateUsesDistinct: the aggregate node's estimate comes
// from the grouping column's distinct count, not from its input size.
func TestGroupEstimateUsesDistinct(t *testing.T) {
	db := reorderDB(t, 15, 2)
	text := explainFor(t, db, `SELECT f, COUNT(*) FROM b GROUP BY f`)
	agg := strings.Split(text, "\n")[0]
	if !strings.HasPrefix(agg, "Aggregate(") || !strings.Contains(agg, "[rows≈15]") {
		t.Errorf("aggregate estimate should be the distinct count 15:\n%s", text)
	}
}
