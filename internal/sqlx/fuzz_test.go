package sqlx

import (
	"strings"
	"testing"
)

// fuzzSeeds covers every statement kind and the grammar corners that
// have bitten the renderer: keyword-colliding identifiers, quoted
// identifiers, integral float literals, NOT LIKE, UNION chains with
// head-bound ORDER/LIMIT, and CROSS JOIN via comma.
var fuzzSeeds = []string{
	`SELECT 1`,
	`SELECT 1 + 2 * 3, -4, 1.0, 1.5, 'it''s', NULL, TRUE, FALSE`,
	`SELECT * FROM protein`,
	`SELECT p.*, o.species AS sp FROM protein p JOIN organism o ON p.organism_id = o.id`,
	`SELECT a.x FROM a LEFT JOIN b ON a.x = b.x WHERE b.x IS NULL`,
	`SELECT a.x FROM a, b WHERE a.x = b.x`,
	`SELECT x FROM t WHERE x != 1 AND NOT y LIKE 'a%' OR z BETWEEN 1 AND 10`,
	`SELECT x FROM t WHERE x IN (1, 2, 3) AND y NOT IN (SELECT y FROM u WHERE y > 0)`,
	`SELECT grp, COUNT(*), SUM(id), AVG(DISTINCT id) FROM fact GROUP BY grp HAVING COUNT(*) > 2`,
	`SELECT DISTINCT LOWER(name) || '!' FROM t ORDER BY name DESC LIMIT 10 OFFSET 2`,
	`SELECT id FROM a UNION ALL SELECT id FROM b UNION SELECT id FROM c ORDER BY id LIMIT 5`,
	`SELECT "select", t."from" FROM "table" AS t`,
	`SELECT key, "all" FROM k`,
	`INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)`,
	`INSERT INTO t VALUES (1.25, TRUE)`,
	`CREATE TABLE IF NOT EXISTS t (id INTEGER PRIMARY KEY, name TEXT UNIQUE, w REAL, ok BOOLEAN, o_id INT REFERENCES organism (id))`,
	`DROP TABLE IF EXISTS t`,
	`UPDATE t SET a = a + 1, b = 'x' WHERE id = 3`,
	`DELETE FROM t WHERE x IS NOT NULL`,
	`SELECT COALESCE(SUBSTR(name, 1, 3), 'n/a'), LENGTH(name) FROM t;`,
}

// roundTrip asserts the render fixpoint for one input: if it parses,
// the rendered SQL must re-parse, and rendering the re-parse must be
// byte-identical to the first rendering.
func roundTrip(t *testing.T, sql string) {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		return
	}
	r1 := RenderSQL(stmt)
	stmt2, err := Parse(r1)
	if err != nil {
		t.Fatalf("rendered SQL does not re-parse\ninput:    %q\nrendered: %q\nerror:    %v", sql, r1, err)
	}
	r2 := RenderSQL(stmt2)
	if r1 != r2 {
		t.Fatalf("render is not a fixpoint\ninput:  %q\nfirst:  %q\nsecond: %q", sql, r1, r2)
	}
	if _, ok := stmt2.(*SelectStmt); ok {
		if _, err := Prepare(nil, r1); err != nil {
			t.Fatalf("rendered SELECT does not prepare\ninput:    %q\nrendered: %q\nerror:    %v", sql, r1, err)
		}
	}
}

// TestRenderRoundTrip runs the fixpoint check over the deterministic
// seed corpus, so the property is exercised by plain `go test` too.
func TestRenderRoundTrip(t *testing.T) {
	for _, sql := range fuzzSeeds {
		roundTrip(t, sql)
	}
}

// TestRenderCanonical pins a few renderings so accidental renderer
// changes surface as readable diffs instead of fuzz failures.
func TestRenderCanonical(t *testing.T) {
	for _, tc := range [][2]string{
		{`select x from t where x!=1`, `SELECT x FROM t WHERE (x <> 1)`},
		{`SELECT 2.0`, `SELECT 2.0`},
		{`SELECT a||'s' FROM "table"`, `SELECT (a || 's') FROM "table"`},
		{`SELECT x FROM a, b LIMIT 3`, `SELECT x FROM a CROSS JOIN b LIMIT 3`},
		{`SELECT x FROM t WHERE NOT x LIKE 'a%'`, `SELECT x FROM t WHERE (NOT (x LIKE 'a%'))`},
	} {
		stmt, err := Parse(tc[0])
		if err != nil {
			t.Fatalf("%s: %v", tc[0], err)
		}
		if got := RenderSQL(stmt); got != tc[1] {
			t.Errorf("%s:\n  got  %q\n  want %q", tc[0], got, tc[1])
		}
		roundTrip(t, tc[0])
	}
}

// FuzzPrepare throws arbitrary bytes at the parser: it must never
// panic, and anything it accepts must survive the render round trip.
func FuzzPrepare(f *testing.F) {
	for _, sql := range fuzzSeeds {
		f.Add(sql)
	}
	// A few deliberately broken shapes to steer mutation.
	f.Add(`SELECT`)
	f.Add(`SELECT ((((1`)
	f.Add(`SELECT 'unterminated`)
	f.Add(`SELECT 1 FROM`)
	f.Add(strings.Repeat(`(`, 100))
	f.Fuzz(func(t *testing.T, sql string) {
		roundTrip(t, sql)
	})
}
