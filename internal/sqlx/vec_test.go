package sqlx

import (
	"context"
	"io"
	"strings"
	"testing"

	"repro/internal/rel"
)

// vecParityQuery is one entry of the golden operator matrix: a query
// plus whether it stops early under LIMIT without a pipeline breaker —
// the one case where Scanned() is legitimately nondeterministic under
// parallel morsels (workers > 1), in both engines, because producers
// overrun the cutoff.
type vecParityQuery struct {
	q         string
	earlyStop bool
}

// vecParityMatrix covers every operator combination of the executor:
// scans, pushed filters, residuals, all four join strategies plus
// build-left and null extension, grouping with and without HAVING,
// DISTINCT (rows and aggregates), ORDER BY both key modes, LIMIT and
// OFFSET in all placements, UNION/UNION ALL, and IN-subquery
// materialization.
func vecParityMatrix() []vecParityQuery {
	return []vecParityQuery{
		// The TestParallelMatchesSerial matrix.
		{q: `SELECT id, note FROM fact WHERE grp = 3`},
		{q: `SELECT id FROM fact WHERE id >= 1000 AND id < 1100`},
		{q: `SELECT grp, COUNT(*), SUM(id) FROM fact GROUP BY grp ORDER BY grp`},
		{q: `SELECT COUNT(*) FROM fact WHERE note IS NULL`},
		{q: `SELECT DISTINCT note FROM fact ORDER BY note`},
		{q: `SELECT id FROM fact ORDER BY note, id DESC LIMIT 40 OFFSET 5`},
		{q: `SELECT id FROM fact WHERE grp = 1 LIMIT 10`, earlyStop: true},
		{q: `SELECT f.id, d.name FROM fact f JOIN dim d ON f.dim_id = d.id WHERE d.id < 10`},
		{q: `SELECT f.id, d.name FROM fact f LEFT JOIN dim d ON f.dim_id = d.id WHERE f.grp = 2`},
		{q: `SELECT f.id, d.id FROM fact f JOIN dim d ON f.grp > d.id WHERE f.id < 1100`},
		{q: `SELECT COUNT(*) FROM fact CROSS JOIN dim WHERE dim.id < 2`},
		{q: `SELECT id FROM fact WHERE grp = 1 UNION ALL SELECT id FROM fact WHERE grp = 2`},
		{q: `SELECT grp FROM fact WHERE id < 2000 UNION SELECT id FROM dim ORDER BY grp LIMIT 20`},
		{q: `SELECT id FROM fact WHERE dim_id IN (SELECT id FROM dim WHERE id < 5) AND grp = 0`},
		// Build-left hash join: small left input, big unindexed right.
		{q: `SELECT d.name, f.id FROM dim d JOIN fact f ON d.id = f.dim_id WHERE d.id = 3`},
		// LEFT JOIN whose keys never match: every row null-extends.
		{q: `SELECT f.id, d.id FROM fact f LEFT JOIN dim d ON f.note = d.name WHERE f.id < 200`},
		// DISTINCT aggregates and HAVING.
		{q: `SELECT COUNT(DISTINCT note), COUNT(DISTINCT grp) FROM fact`},
		{q: `SELECT grp, COUNT(*) FROM fact GROUP BY grp HAVING COUNT(*) > 440 ORDER BY grp`},
		{q: `SELECT grp, SUM(id) FROM fact GROUP BY grp ORDER BY 2 DESC LIMIT 3`},
		// Multi-column DISTINCT without a sort: first-seen order.
		{q: `SELECT DISTINCT grp, dim_id FROM fact WHERE id < 600`},
		// IN subquery with strings and a sort+limit above a join-free scan.
		{q: `SELECT id FROM fact WHERE id IN (SELECT id FROM dim) ORDER BY id DESC LIMIT 25`},
		{q: `SELECT note FROM fact WHERE note IN (SELECT note FROM fact WHERE grp = 3) AND id < 500`},
		// OFFSET without LIMIT, and LIMIT with a filter (early stop).
		{q: `SELECT id FROM fact WHERE grp = 5 OFFSET 430`, earlyStop: true},
		{q: `SELECT id, note FROM fact WHERE note IS NULL LIMIT 7`, earlyStop: true},
		// BETWEEN / IS NULL residual combinations.
		{q: `SELECT id FROM fact WHERE id BETWEEN 100 AND 120 OR note IS NULL`},
		// Aggregate over empty input produces one default row.
		{q: `SELECT COUNT(*), SUM(id), MIN(id) FROM fact WHERE id < 0`},
		// SELECT without FROM.
		{q: `SELECT 1 + 2`},
	}
}

// runEngine opens q on the requested engine and drains it.
func runEngine(t testing.TB, db *rel.Database, q string, workers int, vec bool) ([]string, int64) {
	t.Helper()
	plan, err := Prepare(db, q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	c, err := plan.openMode(context.Background(), db, workers, vec)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	defer c.Close()
	var out []string
	for {
		row, err := c.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		out = append(out, rowKey(row))
	}
	return out, c.Scanned()
}

// TestVectorizedMatchesTupleAtATime is the golden parity suite pinning
// the batch engine to the tuple-at-a-time reference: identical rows, in
// identical order, with identical Scanned() counts, across the full
// operator matrix at several parallelism degrees. Scanned() is compared
// at workers=1 always; under parallel morsels it is compared only for
// queries that drain fully (early-stop LIMIT overruns nondeterminism is
// shared by both engines).
func TestVectorizedMatchesTupleAtATime(t *testing.T) {
	db := parallelDB(t)
	for _, pq := range vecParityMatrix() {
		for _, workers := range []int{1, 2, 4} {
			ref, refScan := runEngine(t, db, pq.q, workers, false)
			got, gotScan := runEngine(t, db, pq.q, workers, true)
			if len(got) != len(ref) {
				t.Errorf("%s: workers=%d vec returned %d rows, reference %d",
					pq.q, workers, len(got), len(ref))
				continue
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Errorf("%s: workers=%d row %d = %q, reference %q",
						pq.q, workers, i, got[i], ref[i])
					break
				}
			}
			if workers == 1 || !pq.earlyStop {
				if gotScan != refScan {
					t.Errorf("%s: workers=%d vec scanned %d, reference %d",
						pq.q, workers, gotScan, refScan)
				}
			}
		}
	}
}

// TestVectorizedExplainAnalyzeBatches: the batch engine's EXPLAIN
// ANALYZE reports per-operator batch counts and the heap-alloc summary.
func TestVectorizedExplainAnalyzeBatches(t *testing.T) {
	if !Vectorized {
		t.Skip("batch engine disabled")
	}
	db := parallelDB(t)
	plan, err := Prepare(db, `SELECT grp, COUNT(*) FROM fact GROUP BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	text, err := plan.ExplainAnalyze(context.Background(), db, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"batches=", "heap allocs"} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, text)
		}
	}
}

// TestVectorizedCursorClose and TestVectorizedCancellation mirror the
// parallel lifecycle tests on the batch engine explicitly (they also
// run implicitly whenever Vectorized is the default).
func TestVectorizedCursorClose(t *testing.T) {
	db := parallelDB(t)
	plan, err := Prepare(db, `SELECT id, note FROM fact`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c, err := plan.openMode(context.Background(), db, 4, true)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			if _, err := c.Next(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		c.Close()
	}
}

func TestVectorizedCancellation(t *testing.T) {
	db := parallelDB(t)
	plan, err := Prepare(db, `SELECT f.id FROM fact f JOIN dim d ON f.dim_id = d.id`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c, err := plan.openMode(ctx, db, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	for {
		_, err := c.Next(ctx)
		if err == nil {
			continue
		}
		if err == io.EOF {
			t.Fatal("canceled query drained to EOF")
		}
		break
	}
}
