package sqlx

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/rel"
)

// optDB builds a pair of databases with identical contents: one with the
// declared-key indexes auto-built by CREATE TABLE, one stripped of all
// indexes (Clone drops them) — the scan baseline.
func optDB(t *testing.T) (indexed, stripped *rel.Database) {
	t.Helper()
	db := rel.NewDatabase("test")
	mustExec(t, db, `CREATE TABLE protein (id INTEGER PRIMARY KEY, accession TEXT UNIQUE, name TEXT, organism_id INTEGER REFERENCES organism(id), mass REAL)`)
	mustExec(t, db, `CREATE TABLE organism (id INTEGER PRIMARY KEY, species TEXT)`)
	var orgs, prots []string
	for i := 0; i < 50; i++ {
		orgs = append(orgs, fmt.Sprintf("(%d, 'species %d')", i, i))
	}
	for i := 0; i < 200; i++ {
		prots = append(prots, fmt.Sprintf("(%d, 'P%05d', 'protein %d', %d, %d.5)", i, i, i, i%50, 1000+i))
	}
	mustExec(t, db, `INSERT INTO organism VALUES `+strings.Join(orgs, ", "))
	mustExec(t, db, `INSERT INTO protein VALUES `+strings.Join(prots, ", "))

	stripped = rel.NewDatabase(db.Name)
	for _, r := range db.Relations() {
		stripped.Put(r.Clone())
	}
	return db, stripped
}

func scannedFor(t *testing.T, db *rel.Database, q string) (int64, []rel.Tuple) {
	t.Helper()
	c := mustOpen(t, db, q)
	rows := drain(t, c)
	return c.Scanned(), rows
}

// TestIndexScanPointQuery: a primary-key equality probe reads exactly
// the matching tuple, not the relation.
func TestIndexScanPointQuery(t *testing.T) {
	indexed, stripped := optDB(t)
	q := `SELECT name FROM protein WHERE id = 42`
	scanned, rows := scannedFor(t, indexed, q)
	if len(rows) != 1 || rows[0][0].AsString() != "protein 42" {
		t.Fatalf("rows = %v", rows)
	}
	if scanned != 1 {
		t.Errorf("index point query scanned %d tuples, want 1", scanned)
	}
	baseScanned, baseRows := scannedFor(t, stripped, q)
	if len(baseRows) != 1 || rowKey(baseRows[0]) != rowKey(rows[0]) {
		t.Fatalf("scan baseline disagrees: %v vs %v", baseRows, rows)
	}
	if baseScanned != 200 {
		t.Errorf("scan baseline scanned %d, want 200", baseScanned)
	}
}

// TestIndexScanConstantFolding: the equality constant may be a foldable
// expression; rewrite rule 2 reduces it to a literal the index can probe.
func TestIndexScanConstantFolding(t *testing.T) {
	indexed, _ := optDB(t)
	scanned, rows := scannedFor(t, indexed, `SELECT name FROM protein WHERE id = 40 + 2`)
	if len(rows) != 1 || rows[0][0].AsString() != "protein 42" {
		t.Fatalf("rows = %v", rows)
	}
	if scanned != 1 {
		t.Errorf("folded point query scanned %d tuples, want 1", scanned)
	}
}

// TestIndexScanExtraFilter: remaining pushed conjuncts still apply above
// the index probe.
func TestIndexScanExtraFilter(t *testing.T) {
	indexed, _ := optDB(t)
	scanned, rows := scannedFor(t, indexed,
		`SELECT name FROM protein WHERE organism_id = 7 AND mass > 1100`)
	// organism_id hits the REFERENCES-derived index: 4 of 200 tuples.
	if scanned != 4 {
		t.Errorf("scanned %d tuples, want 4 (organism_id bucket)", scanned)
	}
	for _, r := range rows {
		if r[0].IsNull() {
			t.Errorf("bad row %v", r)
		}
	}
}

// TestIndexJoinProbe: an FK join probes the right relation's persistent
// index — scanned tuples stay proportional to the result, not to the
// relation sizes.
func TestIndexJoinProbe(t *testing.T) {
	indexed, stripped := optDB(t)
	q := `SELECT p.name, o.species FROM protein p JOIN organism o ON p.organism_id = o.id WHERE p.id = 3`
	scanned, rows := scannedFor(t, indexed, q)
	if len(rows) != 1 || rows[0][1].AsString() != "species 3" {
		t.Fatalf("rows = %v", rows)
	}
	// 1 (index probe on protein.id) + 1 (index probe of organism).
	if scanned != 2 {
		t.Errorf("indexed FK join scanned %d tuples, want 2", scanned)
	}
	baseScanned, baseRows := scannedFor(t, stripped, q)
	if len(baseRows) != 1 || rowKey(baseRows[0]) != rowKey(rows[0]) {
		t.Fatalf("baseline disagrees: %v vs %v", baseRows, rows)
	}
	if baseScanned <= scanned {
		t.Errorf("baseline scanned %d, not more than indexed %d", baseScanned, scanned)
	}
}

// TestOptimizedQueriesMatchScanBaseline: a battery of queries must
// return identical results with and without indexes — the optimizer may
// only change access paths, never semantics.
func TestOptimizedQueriesMatchScanBaseline(t *testing.T) {
	indexed, stripped := optDB(t)
	queries := []string{
		`SELECT * FROM protein WHERE id = 7`,
		`SELECT * FROM protein WHERE accession = 'P00011'`,
		`SELECT name FROM protein WHERE id = 9999`,
		`SELECT COUNT(*) FROM protein WHERE organism_id = 3`,
		`SELECT p.name, o.species FROM protein p JOIN organism o ON p.organism_id = o.id WHERE o.id = 5 ORDER BY p.name`,
		`SELECT p.name, o.species FROM protein p LEFT JOIN organism o ON p.organism_id = o.id WHERE o.species IS NULL`,
		`SELECT o.species, COUNT(*) AS n FROM protein p JOIN organism o ON p.organism_id = o.id GROUP BY o.species ORDER BY n DESC, o.species LIMIT 5`,
		`SELECT name FROM protein WHERE id = 1 OR id = 2 ORDER BY id`,
		`SELECT name FROM protein WHERE id IN (SELECT id FROM organism WHERE id = 4)`,
		`SELECT name FROM protein WHERE 1 = 1 AND id = 12`,
		`SELECT name FROM protein WHERE id = 5 AND 1 = 0`,
		`SELECT p.id FROM protein p JOIN organism o ON p.organism_id = o.id AND o.id > 40 ORDER BY p.id LIMIT 7`,
	}
	for _, q := range queries {
		_, want := scannedFor(t, stripped, q)
		_, got := scannedFor(t, indexed, q)
		if len(got) != len(want) {
			t.Errorf("%s: %d rows indexed vs %d stripped", q, len(got), len(want))
			continue
		}
		for i := range got {
			if rowKey(got[i]) != rowKey(want[i]) {
				t.Errorf("%s: row %d = %v, want %v", q, i, got[i], want[i])
			}
		}
	}
}

// TestPushdownPreservesLeftJoin: predicates on the nullable side of a
// LEFT JOIN must not move below the join. protein 0..199 all reference
// existing organisms, so orphan the probe row first.
func TestPushdownPreservesLeftJoin(t *testing.T) {
	indexed, _ := optDB(t)
	mustExec(t, indexed, `INSERT INTO protein VALUES (999, 'X99999', 'orphan', 777, 1.0)`)
	res := mustExec(t, indexed, `
		SELECT p.name FROM protein p LEFT JOIN organism o ON p.organism_id = o.id
		WHERE o.species IS NULL`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "orphan" {
		t.Fatalf("left-join rows = %v", res.Rows)
	}
}

// TestSmallerSideHashBuild: with no usable index and a selective left
// input, the hash table is built on the left and the right side streams —
// under a LIMIT the right scan stops early.
func TestSmallerSideHashBuild(t *testing.T) {
	_, stripped := optDB(t)
	lg := buildLogical(stripped, mustParseSelect(t,
		`SELECT p.name, o.species FROM organism o JOIN protein p ON p.organism_id = o.id WHERE o.id = 3`))
	ja, err := bindJoin(newBinder(stripped), lg.tables[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if ja.strategy != joinHashBuildLeft {
		t.Fatalf("strategy = %v, want HashJoin(build=left)", ja.strategy)
	}
	// End-to-end: the swapped build agrees with the materialized executor.
	q := `SELECT p.name FROM organism o JOIN protein p ON p.organism_id = o.id WHERE o.id = 3 ORDER BY p.name`
	want := mustExec(t, stripped, q)
	_, got := scannedFor(t, stripped, q)
	if len(got) != len(want.Rows) {
		t.Fatalf("%d rows vs %d", len(got), len(want.Rows))
	}
}

func mustParseSelect(t *testing.T, q string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return stmt.(*SelectStmt)
}

// TestDistinctSeparatorCollision: rows that collided under the old
// separator-joined duplicate-elimination key stay distinct.
func TestDistinctSeparatorCollision(t *testing.T) {
	db := rel.NewDatabase("test")
	r := db.Create("t", rel.TextSchema("a", "b"))
	r.Append(rel.Tuple{rel.Str("x"), rel.Str("y\x01sz")})
	r.Append(rel.Tuple{rel.Str("x\x01sy"), rel.Str("z")})
	res := mustExec(t, db, `SELECT DISTINCT a, b FROM t`)
	if len(res.Rows) != 2 {
		t.Fatalf("DISTINCT collapsed %d rows, want 2 (separator collision)", len(res.Rows))
	}
	res = mustExec(t, db, `SELECT a, b, COUNT(*) FROM t GROUP BY a, b`)
	if len(res.Rows) != 2 {
		t.Fatalf("GROUP BY collapsed %d groups, want 2", len(res.Rows))
	}
}

// TestExplainNamesAccessPaths: every scan node names its access path,
// and estimates reflect exact index bucket sizes.
func TestExplainNamesAccessPaths(t *testing.T) {
	indexed, stripped := optDB(t)
	plan, err := Prepare(indexed, `SELECT p.name, o.species FROM protein p JOIN organism o ON p.organism_id = o.id WHERE p.id = 3 ORDER BY p.name LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	text, err := plan.Explain(indexed)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"IndexScan(protein AS p: id = 3) [rows≈1]",
		"IndexJoin(organism AS o ON", "Project(name, species)", "Sort(", "Limit(5)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Explain missing %q:\n%s", want, text)
		}
	}
	// The same plan explained against the stripped snapshot binds to scan
	// access paths — bind happens per snapshot.
	text, err = plan.Explain(stripped)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "Scan(protein AS p") || strings.Contains(text, "IndexScan") {
		t.Errorf("stripped snapshot should use Scan paths:\n%s", text)
	}
}

// TestExplainUnion: union chains render every branch with its own access
// paths.
func TestExplainUnion(t *testing.T) {
	indexed, _ := optDB(t)
	plan, err := Prepare(indexed, `SELECT id FROM protein WHERE id = 1 UNION SELECT id FROM organism ORDER BY id LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	text, err := plan.Explain(indexed)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Union", "Distinct", "IndexScan(protein", "Scan(organism"} {
		if !strings.Contains(text, want) {
			t.Errorf("union Explain missing %q:\n%s", want, text)
		}
	}
}

// TestPlanRebindsAcrossSnapshots: one cached plan opened against
// successive snapshots binds to each snapshot's own indexes.
func TestPlanRebindsAcrossSnapshots(t *testing.T) {
	indexed, stripped := optDB(t)
	plan, err := Prepare(stripped, `SELECT name FROM protein WHERE id = 7`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c, err := plan.Open(ctx, stripped)
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, c); len(rows) != 1 {
		t.Fatalf("stripped rows = %v", rows)
	}
	if c.Scanned() != 200 {
		t.Errorf("stripped open scanned %d, want 200", c.Scanned())
	}
	c, err = plan.Open(ctx, indexed)
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, c); len(rows) != 1 {
		t.Fatalf("indexed rows = %v", rows)
	}
	if c.Scanned() != 1 {
		t.Errorf("re-open against indexed snapshot scanned %d, want 1 (must rebind)", c.Scanned())
	}
}
