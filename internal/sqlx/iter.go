package sqlx

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/rel"
)

// This file is the pull-based half of the plan/execute split: a tree of
// iterator operators (scan, join, filter, project, group, order,
// distinct, limit/offset, union concat) with Next(ctx)-style semantics.
// Rows are produced on demand, so a LIMIT query stops reading its inputs
// as soon as the limit is satisfied, and cancellation is checked every
// batch of stored-tuple reads. Exec remains a collect-all wrapper over
// this pipeline (see exec.go), pinning the materialized semantics.

// ctxBatch is how many stored-tuple reads happen between context checks.
const ctxBatch = 64

// run carries the per-execution state shared by every operator of one
// open cursor: the scanned-tuple probe, the cancellation tick counter,
// and the materialized results of uncorrelated IN subqueries (keyed by
// AST node so a shared, cached Plan is never mutated).
type run struct {
	scanned int64
	ticks   int
	subs    map[*InExpr][]rel.Value
}

func newRun() *run {
	return &run{subs: make(map[*InExpr][]rel.Value)}
}

// tick counts one stored-tuple read and checks ctx every ctxBatch reads.
func (rt *run) tick(ctx context.Context) error {
	rt.scanned++
	rt.ticks++
	if rt.ticks >= ctxBatch {
		rt.ticks = 0
		return ctx.Err()
	}
	return nil
}

// item is one element flowing between operators: an environment of table
// bindings before projection, a projected output row after. The order
// operator keeps both so ORDER BY can reference non-projected columns.
type item struct {
	env *env
	row rel.Tuple
}

// opIter is the pull interface every operator implements. next returns
// io.EOF when exhausted. Iterators are single-goroutine.
type opIter interface {
	next(ctx context.Context) (item, error)
}

// openSelect builds the iterator tree for a SELECT, folding in its UNION
// chain: branch iterators are concatenated (and deduplicated unless every
// step is UNION ALL), then the head's ORDER BY/LIMIT/OFFSET apply to the
// combined stream.
func openSelect(ctx context.Context, db *rel.Database, s *SelectStmt, rt *run) ([]string, opIter, error) {
	cols, head, err := openSelectOne(ctx, db, s, rt)
	if err != nil {
		return nil, nil, err
	}
	if s.Union == nil {
		return cols, head, nil
	}
	iters := []opIter{head}
	allMode := true
	for cur := s; cur.Union != nil; cur = cur.Union {
		bcols, bit, err := openSelectOne(ctx, db, cur.Union, rt)
		if err != nil {
			return nil, nil, err
		}
		if len(bcols) != len(cols) {
			return nil, nil, fmt.Errorf("sqlx: UNION arity mismatch: %d vs %d columns",
				len(cols), len(bcols))
		}
		iters = append(iters, bit)
		if !cur.UnionAll {
			allMode = false
		}
	}
	var it opIter = &concatIter{children: iters}
	if !allMode {
		it = newDistinctIter(it)
	}
	if len(s.OrderBy) > 0 {
		it = &rowOrderIter{child: it, order: s.OrderBy, columns: cols}
	}
	if s.Limit >= 0 || s.Offset > 0 {
		it = &limitIter{child: it, limit: s.Limit, offset: s.Offset}
	}
	return cols, it, nil
}

// openSelectOne builds the iterator tree for one SELECT without its UNION
// chain. When the select heads a union, ORDER/LIMIT/OFFSET are applied by
// openSelect to the combined stream instead.
func openSelectOne(ctx context.Context, db *rel.Database, s *SelectStmt, rt *run) ([]string, opIter, error) {
	headOfUnion := s.Union != nil
	// Materialize uncorrelated IN (SELECT ...) subqueries into the run.
	if err := rt.materializeSubqueries(ctx, db, s.Where); err != nil {
		return nil, nil, err
	}
	if err := rt.materializeSubqueries(ctx, db, s.Having); err != nil {
		return nil, nil, err
	}
	// 1. The joined row stream as environments.
	var it opIter
	if s.From == nil {
		// SELECT without FROM: a single empty environment.
		it = &singletonIter{rt: rt}
	} else {
		base := db.Relation(s.From.Name)
		if base == nil {
			return nil, nil, fmt.Errorf("sqlx: no such table %q", s.From.Name)
		}
		it = &scanIter{rel: base, binding: s.From.Binding(), rt: rt}
		for _, j := range s.Joins {
			right := db.Relation(j.Table.Name)
			if right == nil {
				return nil, nil, fmt.Errorf("sqlx: no such table %q", j.Table.Name)
			}
			it = newJoinIter(it, j, right, rt)
		}
	}
	// 2. WHERE filter.
	if s.Where != nil {
		it = &filterIter{child: it, pred: s.Where}
	}
	// 3. Expand stars into concrete items.
	items, cols, err := expandItems(db, s)
	if err != nil {
		return nil, nil, err
	}
	grouped := len(s.GroupBy) > 0
	if !grouped {
		for _, si := range items {
			if si.Expr != nil && isAggregate(si.Expr) {
				grouped = true
				break
			}
		}
	}
	// 4. Group/aggregate (a pipeline breaker) or streaming projection,
	// then ORDER BY (a breaker), DISTINCT, LIMIT/OFFSET.
	if grouped {
		it = &groupIter{child: it, s: s, items: items, rt: rt}
		if !headOfUnion && len(s.OrderBy) > 0 {
			it = &rowOrderIter{child: it, order: s.OrderBy, items: items, columns: cols}
		}
	} else {
		it = &projectIter{child: it, items: items}
		if !headOfUnion && len(s.OrderBy) > 0 {
			it = &orderIter{child: it, order: s.OrderBy, items: items}
		}
	}
	if s.Distinct {
		it = newDistinctIter(it)
	}
	if !headOfUnion && (s.Limit >= 0 || s.Offset > 0) {
		it = &limitIter{child: it, limit: s.Limit, offset: s.Offset}
	}
	return cols, it, nil
}

// materializeSubqueries executes uncorrelated IN (SELECT ...) subqueries
// in an expression tree and stores their value lists in the run, keyed by
// node. Correlated subqueries (referencing outer bindings) are not
// supported and surface as unknown-column errors from the inner select.
func (rt *run) materializeSubqueries(ctx context.Context, db *rel.Database, e Expr) error {
	switch x := e.(type) {
	case nil:
		return nil
	case *InExpr:
		if err := rt.materializeSubqueries(ctx, db, x.Expr); err != nil {
			return err
		}
		for _, le := range x.List {
			if err := rt.materializeSubqueries(ctx, db, le); err != nil {
				return err
			}
		}
		if x.Sub == nil {
			return nil
		}
		if _, done := rt.subs[x]; done {
			return nil
		}
		cols, it, err := openSelect(ctx, db, x.Sub, rt)
		if err != nil {
			return fmt.Errorf("sqlx: IN subquery: %w", err)
		}
		if len(cols) != 1 {
			return fmt.Errorf("sqlx: IN subquery must return one column, got %d", len(cols))
		}
		vals := make([]rel.Value, 0)
		for {
			i, err := it.next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				return fmt.Errorf("sqlx: IN subquery: %w", err)
			}
			vals = append(vals, i.row[0])
		}
		rt.subs[x] = vals
		return nil
	case *BinaryExpr:
		if err := rt.materializeSubqueries(ctx, db, x.Left); err != nil {
			return err
		}
		return rt.materializeSubqueries(ctx, db, x.Right)
	case *UnaryExpr:
		return rt.materializeSubqueries(ctx, db, x.Expr)
	case *IsNullExpr:
		return rt.materializeSubqueries(ctx, db, x.Expr)
	case *BetweenExpr:
		if err := rt.materializeSubqueries(ctx, db, x.Expr); err != nil {
			return err
		}
		if err := rt.materializeSubqueries(ctx, db, x.Lo); err != nil {
			return err
		}
		return rt.materializeSubqueries(ctx, db, x.Hi)
	case *FuncExpr:
		for _, a := range x.Args {
			if err := rt.materializeSubqueries(ctx, db, a); err != nil {
				return err
			}
		}
	}
	return nil
}

// singletonIter yields one empty environment (SELECT without FROM).
type singletonIter struct {
	rt   *run
	done bool
}

func (s *singletonIter) next(ctx context.Context) (item, error) {
	if s.done {
		return item{}, io.EOF
	}
	s.done = true
	return item{env: &env{rt: s.rt}}, nil
}

// scanIter yields one environment per tuple of a base relation.
type scanIter struct {
	rel     *rel.Relation
	binding string
	rt      *run
	pos     int
}

func (s *scanIter) next(ctx context.Context) (item, error) {
	if s.pos >= len(s.rel.Tuples) {
		return item{}, io.EOF
	}
	if err := s.rt.tick(ctx); err != nil {
		return item{}, err
	}
	t := s.rel.Tuples[s.pos]
	s.pos++
	e := &env{rt: s.rt, bindings: []binding{{name: s.binding, schema: s.rel.Schema, tuple: t}}}
	return item{env: e}, nil
}

// joinIter extends each child environment with matching tuples of the
// right relation: a lazily built hash index when ON is a simple equality
// of two column refs, nested loops otherwise, plus cross and left-outer
// modes. Matches for one left row are emitted one at a time, so a LIMIT
// downstream stops the scan of the left side early.
type joinIter struct {
	child opIter
	j     Join
	right *rel.Relation
	bname string
	rt    *run

	hashable bool
	leftCol  *ColumnRef
	rightIdx int
	index    map[string][]rel.Tuple
	indexed  bool

	nullTuple rel.Tuple

	cur     *env        // current left environment, nil when exhausted
	matches []rel.Tuple // pending right matches for cur (hash/cross mode)
	mi      int
	rpos    int // right scan position (nested-loop mode)
	matched bool
}

func newJoinIter(child opIter, j Join, right *rel.Relation, rt *run) *joinIter {
	ji := &joinIter{
		child: child, j: j, right: right, bname: j.Table.Binding(), rt: rt,
		nullTuple: make(rel.Tuple, right.Schema.Len()),
	}
	leftCol, rightCol, hashable := equiJoinCols(j.On, ji.bname)
	if hashable {
		ji.rightIdx = right.Schema.Index(rightCol.Column)
		if ji.rightIdx >= 0 {
			ji.hashable = true
			ji.leftCol = leftCol
		}
	}
	return ji
}

func (ji *joinIter) buildIndex(ctx context.Context) error {
	ji.index = make(map[string][]rel.Tuple, len(ji.right.Tuples))
	for _, t := range ji.right.Tuples {
		if err := ji.rt.tick(ctx); err != nil {
			return err
		}
		v := t[ji.rightIdx]
		if v.IsNull() {
			continue
		}
		ji.index[v.Key()] = append(ji.index[v.Key()], t)
	}
	ji.indexed = true
	return nil
}

func (ji *joinIter) next(ctx context.Context) (item, error) {
	for {
		if ji.cur == nil {
			it, err := ji.child.next(ctx)
			if err != nil {
				return item{}, err
			}
			ji.cur, ji.matched, ji.mi, ji.rpos = it.env, false, 0, 0
			switch {
			case ji.j.Kind == JoinCross:
				ji.matches = ji.right.Tuples
			case ji.hashable:
				if !ji.indexed {
					if err := ji.buildIndex(ctx); err != nil {
						return item{}, err
					}
				}
				// An eval error or NULL key means no match, mirroring the
				// materializing executor.
				ji.matches = nil
				if lv, err := eval(ji.leftCol, ji.cur); err == nil && !lv.IsNull() {
					ji.matches = ji.index[lv.Key()]
				}
			}
		}
		if ji.j.Kind == JoinCross || ji.hashable {
			if ji.mi < len(ji.matches) {
				t := ji.matches[ji.mi]
				ji.mi++
				ji.matched = true
				return item{env: extend(ji.cur, ji.bname, ji.right.Schema, t)}, nil
			}
		} else {
			for ji.rpos < len(ji.right.Tuples) {
				if err := ji.rt.tick(ctx); err != nil {
					return item{}, err
				}
				t := ji.right.Tuples[ji.rpos]
				ji.rpos++
				ne := extend(ji.cur, ji.bname, ji.right.Schema, t)
				v, err := eval(ji.j.On, ne)
				if err != nil {
					return item{}, err
				}
				if b, ok := v.AsBool(); ok && b {
					ji.matched = true
					return item{env: ne}, nil
				}
			}
		}
		left := ji.cur
		ji.cur = nil
		if !ji.matched && ji.j.Kind == JoinLeft {
			return item{env: extend(left, ji.bname, ji.right.Schema, ji.nullTuple)}, nil
		}
	}
}

// filterIter keeps environments whose predicate evaluates to true.
type filterIter struct {
	child opIter
	pred  Expr
}

func (f *filterIter) next(ctx context.Context) (item, error) {
	for {
		it, err := f.child.next(ctx)
		if err != nil {
			return item{}, err
		}
		v, err := eval(f.pred, it.env)
		if err != nil {
			return item{}, err
		}
		if b, ok := v.AsBool(); ok && b {
			return it, nil
		}
	}
}

// projectIter evaluates the select items against each environment,
// attaching the output row while keeping the environment for ORDER BY.
type projectIter struct {
	child opIter
	items []SelectItem
}

func (p *projectIter) next(ctx context.Context) (item, error) {
	it, err := p.child.next(ctx)
	if err != nil {
		return item{}, err
	}
	row := make(rel.Tuple, len(p.items))
	for i, si := range p.items {
		v, err := eval(si.Expr, it.env)
		if err != nil {
			return item{}, err
		}
		row[i] = v
	}
	it.row = row
	return it, nil
}

// groupIter is the aggregation pipeline breaker: on first pull it drains
// the child, groups and aggregates (including HAVING and projection), and
// then streams the result rows.
type groupIter struct {
	child opIter
	s     *SelectStmt
	items []SelectItem
	rt    *run
	rows  []rel.Tuple
	pos   int
	done  bool
}

func (g *groupIter) next(ctx context.Context) (item, error) {
	if !g.done {
		var envs []*env
		for {
			it, err := g.child.next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				return item{}, err
			}
			envs = append(envs, it.env)
		}
		rows, err := execGrouped(g.s, g.items, envs, g.rt)
		if err != nil {
			return item{}, err
		}
		g.rows, g.done = rows, true
	}
	if g.pos >= len(g.rows) {
		return item{}, io.EOF
	}
	row := g.rows[g.pos]
	g.pos++
	return item{row: row}, nil
}

// orderIter is the ORDER BY pipeline breaker for non-grouped selects: it
// materializes (row, environment) pairs so keys can reference any column
// of the row environment, not just projected ones.
type orderIter struct {
	child opIter
	order []OrderItem
	items []SelectItem
	buf   []item
	pos   int
	done  bool
}

func (o *orderIter) next(ctx context.Context) (item, error) {
	if !o.done {
		for {
			it, err := o.child.next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				return item{}, err
			}
			o.buf = append(o.buf, it)
		}
		var sortErr error
		sort.SliceStable(o.buf, func(a, b int) bool {
			for _, oi := range o.order {
				va, err := evalOrderKey(oi.Expr, o.items, o.buf[a].row, o.buf[a].env)
				if err != nil {
					sortErr = err
					return false
				}
				vb, err := evalOrderKey(oi.Expr, o.items, o.buf[b].row, o.buf[b].env)
				if err != nil {
					sortErr = err
					return false
				}
				if c := va.Compare(vb); c != 0 {
					if oi.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return item{}, sortErr
		}
		o.done = true
	}
	if o.pos >= len(o.buf) {
		return item{}, io.EOF
	}
	it := o.buf[o.pos]
	o.pos++
	return it, nil
}

// rowOrderIter is the ORDER BY breaker for grouped selects and union
// heads, where keys resolve against output columns only: ordinal
// positions, aliases/column names, or projection expressions.
type rowOrderIter struct {
	child   opIter
	order   []OrderItem
	items   []SelectItem // nil for union ordering
	columns []string
	buf     []item
	pos     int
	done    bool
}

func (o *rowOrderIter) next(ctx context.Context) (item, error) {
	if !o.done {
		for {
			it, err := o.child.next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				return item{}, err
			}
			o.buf = append(o.buf, it)
		}
		var sortErr error
		sort.SliceStable(o.buf, func(a, b int) bool {
			for _, oi := range o.order {
				va, err := rowOrderKey(oi.Expr, o.items, o.columns, o.buf[a].row)
				if err != nil {
					sortErr = err
					return false
				}
				vb, err := rowOrderKey(oi.Expr, o.items, o.columns, o.buf[b].row)
				if err != nil {
					sortErr = err
					return false
				}
				if c := va.Compare(vb); c != 0 {
					if oi.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return item{}, sortErr
		}
		o.done = true
	}
	if o.pos >= len(o.buf) {
		return item{}, io.EOF
	}
	it := o.buf[o.pos]
	o.pos++
	return it, nil
}

// rowOrderKey resolves an ORDER BY key against output rows.
func rowOrderKey(e Expr, items []SelectItem, columns []string, row rel.Tuple) (rel.Value, error) {
	if lit, ok := e.(*Literal); ok && lit.Value.Kind() == rel.KindInt {
		pos, _ := lit.Value.AsInt()
		if pos >= 1 && int(pos) <= len(row) {
			return row[pos-1], nil
		}
	}
	if cr, ok := e.(*ColumnRef); ok && cr.Table == "" {
		for i := range columns {
			if strings.EqualFold(columns[i], cr.Column) {
				return row[i], nil
			}
		}
	}
	// Match structurally equal expressions against projection items.
	for i, it := range items {
		if exprString(it.Expr) == exprString(e) {
			return row[i], nil
		}
	}
	return rel.Null(), fmt.Errorf("sqlx: ORDER BY expression must appear in grouped SELECT list")
}

// distinctIter streams rows, dropping ones whose full-row key was seen.
type distinctIter struct {
	child opIter
	seen  map[string]struct{}
}

func newDistinctIter(child opIter) *distinctIter {
	return &distinctIter{child: child, seen: make(map[string]struct{})}
}

func (d *distinctIter) next(ctx context.Context) (item, error) {
	for {
		it, err := d.child.next(ctx)
		if err != nil {
			return item{}, err
		}
		k := rowKey(it.row)
		if _, dup := d.seen[k]; dup {
			continue
		}
		d.seen[k] = struct{}{}
		return it, nil
	}
}

// rowKey renders a row canonically for duplicate elimination.
func rowKey(row rel.Tuple) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.Key()
	}
	return strings.Join(parts, "\x01")
}

// limitIter applies OFFSET then LIMIT, returning io.EOF as soon as the
// limit is satisfied so upstream operators stop pulling stored tuples.
type limitIter struct {
	child   opIter
	limit   int // -1 = no limit
	offset  int
	skipped int
	emitted int
}

func (l *limitIter) next(ctx context.Context) (item, error) {
	for l.skipped < l.offset {
		if _, err := l.child.next(ctx); err != nil {
			return item{}, err
		}
		l.skipped++
	}
	if l.limit >= 0 && l.emitted >= l.limit {
		return item{}, io.EOF
	}
	it, err := l.child.next(ctx)
	if err != nil {
		return item{}, err
	}
	l.emitted++
	return it, nil
}

// concatIter chains child iterators in order (UNION ALL shape); later
// children are not pulled until earlier ones are exhausted.
type concatIter struct {
	children []opIter
	pos      int
}

func (c *concatIter) next(ctx context.Context) (item, error) {
	for c.pos < len(c.children) {
		it, err := c.children[c.pos].next(ctx)
		if err == io.EOF {
			c.pos++
			continue
		}
		return it, err
	}
	return item{}, io.EOF
}
