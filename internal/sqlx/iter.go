package sqlx

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/rel"
)

// This file is the pull-based half of the plan/execute split: a tree of
// iterator operators (scan, join, filter, project, group, order,
// distinct, limit/offset, union concat) with Next(ctx)-style semantics.
// Rows are produced on demand, so a LIMIT query stops reading its inputs
// as soon as the limit is satisfied, and cancellation is checked every
// batch of stored-tuple reads. Exec remains a collect-all wrapper over
// this pipeline (see exec.go), pinning the materialized semantics.

// ctxBatch is how many stored-tuple reads happen between context checks.
const ctxBatch = 64

// run carries the per-execution state shared by every operator of one
// open cursor: the scanned-tuple probe, the cancellation tick counter,
// and the materialized results of uncorrelated IN subqueries (keyed by
// AST node so a shared, cached Plan is never mutated). Parallel
// execution gives each morsel a private run sharing the parent's subs;
// scanned is updated atomically so morsel workers can aggregate into
// the parent while the consumer reads it.
type run struct {
	scanned int64 // atomic
	ticks   int
	subs    map[*InExpr]*inSet
	// workers is the parallelism degree for eligible scan chains
	// (0 or 1 = serial).
	workers int
	// vec selects the batch (vectorized) executor for this run; see
	// vec.go. Subquery materialization follows the same engine.
	vec bool
	// meters, when non-nil, enables EXPLAIN ANALYZE instrumentation:
	// every operator is wrapped to count rows and time.
	meters *planMeters
	// closers run when the cursor is closed or exhausted — cancel
	// functions that stop parallel producers.
	closers []func()
}

func newRun() *run {
	return &run{subs: make(map[*InExpr]*inSet), vec: Vectorized}
}

// tick counts one stored-tuple read and checks ctx every ctxBatch reads.
func (rt *run) tick(ctx context.Context) error {
	atomic.AddInt64(&rt.scanned, 1)
	rt.ticks++
	if rt.ticks >= ctxBatch {
		rt.ticks = 0
		return ctx.Err()
	}
	return nil
}

// close runs the registered closers (idempotent: they are context
// cancel functions).
func (rt *run) close() {
	for _, f := range rt.closers {
		f()
	}
}

// item is one element flowing between operators: an environment of table
// bindings before projection, a projected output row after. The order
// operator keeps both so ORDER BY can reference non-projected columns.
type item struct {
	env *env
	row rel.Tuple
}

// opIter is the pull interface every operator implements. next returns
// io.EOF when exhausted. Iterators are single-goroutine.
type opIter interface {
	next(ctx context.Context) (item, error)
}

// openSelect builds the iterator tree for a SELECT, folding in its UNION
// chain: branch iterators are concatenated (and deduplicated unless every
// step is UNION ALL), then the head's ORDER BY/LIMIT/OFFSET apply to the
// combined stream. lg is the prepared logical plan; nil (ad-hoc Exec,
// subqueries) lowers the statement on the fly.
func openSelect(ctx context.Context, db *rel.Database, s *SelectStmt, lg *logicalSelect, rt *run) ([]string, opIter, error) {
	if lg == nil {
		lg = buildLogical(db, s)
	}
	cols, head, err := openSelectOne(ctx, db, s, lg, rt)
	if err != nil {
		return nil, nil, err
	}
	if s.Union == nil {
		return cols, head, nil
	}
	iters := []opIter{head}
	allMode := true
	for cur, curLg := s, lg; cur.Union != nil; cur, curLg = cur.Union, curLg.union {
		bcols, bit, err := openSelectOne(ctx, db, cur.Union, curLg.union, rt)
		if err != nil {
			return nil, nil, err
		}
		if len(bcols) != len(cols) {
			return nil, nil, fmt.Errorf("sqlx: UNION arity mismatch: %d vs %d columns",
				len(cols), len(bcols))
		}
		iters = append(iters, bit)
		if !cur.UnionAll {
			allMode = false
		}
	}
	var it opIter = &concatIter{children: iters}
	it = meterWrap(it, rt.meters, func(pm *planMeters) **opMeter { return &pm.union })
	if !allMode {
		it = newDistinctIter(it)
		it = meterWrap(it, rt.meters, func(pm *planMeters) **opMeter { return &pm.unionDistinct })
	}
	if len(s.OrderBy) > 0 {
		it = &rowOrderIter{child: it, order: s.OrderBy, columns: cols}
		it = meterWrap(it, rt.meters, func(pm *planMeters) **opMeter { return &pm.unionSort })
	}
	if s.Limit >= 0 || s.Offset > 0 {
		it = &limitIter{child: it, limit: s.Limit, offset: s.Offset}
		it = meterWrap(it, rt.meters, func(pm *planMeters) **opMeter { return &pm.unionLimit })
	}
	return cols, it, nil
}

// meterWrap instruments it with a fresh meter stored via slot when
// metering is on; a no-op otherwise.
func meterWrap(it opIter, pm *planMeters, slot func(*planMeters) **opMeter) opIter {
	if pm == nil {
		return it
	}
	m := &opMeter{}
	*slot(pm) = m
	return &meterIter{child: it, m: m}
}

// openSelectOne builds the iterator tree for one SELECT without its UNION
// chain, binding the logical plan's access paths against db. When the
// select heads a union, ORDER/LIMIT/OFFSET are applied by openSelect to
// the combined stream instead.
func openSelectOne(ctx context.Context, db *rel.Database, s *SelectStmt, lg *logicalSelect, rt *run) ([]string, opIter, error) {
	headOfUnion := s.Union != nil
	// Materialize uncorrelated IN (SELECT ...) subqueries into the run.
	// The logical plan partitions the WHERE conjuncts, so every pushed
	// filter and residual conjunct is walked (IN nodes keep their
	// identity through the rewrite, which keys the materialized results).
	for _, tl := range lg.tables {
		for _, f := range tl.filters {
			if err := rt.materializeSubqueries(ctx, db, f); err != nil {
				return nil, nil, err
			}
		}
	}
	for _, c := range lg.residual {
		if err := rt.materializeSubqueries(ctx, db, c); err != nil {
			return nil, nil, err
		}
	}
	if err := rt.materializeSubqueries(ctx, db, s.Having); err != nil {
		return nil, nil, err
	}
	// Branch meters (EXPLAIN ANALYZE): allocated up front so parallel
	// morsels share the same atomic counters.
	var bm *selMeters
	if rt.meters != nil {
		bm = &selMeters{}
		rt.meters.branches = append(rt.meters.branches, bm)
	}
	// 1. The joined row stream as environments, on the access paths
	// chosen by bindSelect (see access.go), executed serially or as
	// parallel morsels over the base scan. The residual WHERE conjuncts
	// filter inside the chain, above the joins.
	var it opIter
	if s.From == nil {
		// SELECT without FROM: a single empty environment.
		it = &singletonIter{rt: rt}
		if bm != nil {
			bm.scan = &opMeter{}
			it = &meterIter{child: it, m: bm.scan}
		}
	} else {
		sel, err := bindSelect(db, lg)
		if err != nil {
			return nil, nil, err
		}
		if bm != nil {
			bm.scan = &opMeter{}
			for range sel.joins {
				bm.joins = append(bm.joins, &opMeter{})
			}
			if len(lg.residual) > 0 {
				bm.residual = &opMeter{}
			}
		}
		it, err = openMaybeParallel(ctx, sel, lg, rt, bm)
		if err != nil {
			return nil, nil, err
		}
	}
	// 2. Expand stars into concrete items.
	items, cols, err := expandItems(db, s)
	if err != nil {
		return nil, nil, err
	}
	grouped := len(s.GroupBy) > 0
	if !grouped {
		for _, si := range items {
			if si.Expr != nil && isAggregate(si.Expr) {
				grouped = true
				break
			}
		}
	}
	// 3. Group/aggregate (a pipeline breaker) or streaming projection,
	// then ORDER BY (a breaker), DISTINCT, LIMIT/OFFSET.
	if grouped {
		it = &groupIter{child: it, s: s, items: items, rt: rt}
		it = branchMeter(it, bm, func(m *selMeters) **opMeter { return &m.agg })
		if !headOfUnion && len(s.OrderBy) > 0 {
			it = &rowOrderIter{child: it, order: s.OrderBy, items: items, columns: cols}
			it = branchMeter(it, bm, func(m *selMeters) **opMeter { return &m.sort })
		}
	} else {
		it = &projectIter{child: it, items: items}
		it = branchMeter(it, bm, func(m *selMeters) **opMeter { return &m.agg })
		if !headOfUnion && len(s.OrderBy) > 0 {
			it = &orderIter{child: it, order: s.OrderBy, items: items}
			it = branchMeter(it, bm, func(m *selMeters) **opMeter { return &m.sort })
		}
	}
	if s.Distinct {
		it = newDistinctIter(it)
		it = branchMeter(it, bm, func(m *selMeters) **opMeter { return &m.distinct })
	}
	if !headOfUnion && (s.Limit >= 0 || s.Offset > 0) {
		it = &limitIter{child: it, limit: s.Limit, offset: s.Offset}
		it = branchMeter(it, bm, func(m *selMeters) **opMeter { return &m.limit })
	}
	return cols, it, nil
}

// branchMeter instruments it with a fresh meter stored via slot when
// this branch is metered; a no-op otherwise.
func branchMeter(it opIter, bm *selMeters, slot func(*selMeters) **opMeter) opIter {
	if bm == nil {
		return it
	}
	m := &opMeter{}
	*slot(bm) = m
	return &meterIter{child: it, m: m}
}

// openChain builds the scan→joins→residual part of one SELECT over the
// base-scan tuple range [lo, hi). bm may be nil (no metering); under
// parallel execution every morsel chain shares the same meters, so
// counters aggregate across morsels.
func openChain(sel *selectAccess, lg *logicalSelect, rt *run, bm *selMeters, lo, hi int) opIter {
	it := openScan(sel.scan, rt, lo, hi)
	if bm != nil {
		it = &meterIter{child: it, m: bm.scan}
	}
	for i, ja := range sel.joins {
		it = openJoin(it, ja, rt)
		if pred := andJoin(ja.post); pred != nil {
			it = &filterIter{child: it, pred: pred}
		}
		if bm != nil {
			it = &meterIter{child: it, m: bm.joins[i]}
		}
	}
	if residual := andJoin(lg.residual); residual != nil {
		it = &filterIter{child: it, pred: residual}
		if bm != nil {
			it = &meterIter{child: it, m: bm.residual}
		}
	}
	return it
}

// materializeSubqueries executes uncorrelated IN (SELECT ...) subqueries
// in an expression tree and stores their value lists in the run, keyed by
// node. Correlated subqueries (referencing outer bindings) are not
// supported and surface as unknown-column errors from the inner select.
func (rt *run) materializeSubqueries(ctx context.Context, db *rel.Database, e Expr) error {
	switch x := e.(type) {
	case nil:
		return nil
	case *InExpr:
		if err := rt.materializeSubqueries(ctx, db, x.Expr); err != nil {
			return err
		}
		for _, le := range x.List {
			if err := rt.materializeSubqueries(ctx, db, le); err != nil {
				return err
			}
		}
		if x.Sub == nil {
			return nil
		}
		if _, done := rt.subs[x]; done {
			return nil
		}
		// Subqueries run unmetered: their operators are not part of the
		// outer statement's rendered plan. They execute on the same
		// engine (batch or tuple-at-a-time) as the outer statement.
		saved := rt.meters
		rt.meters = nil
		vals := make([]rel.Value, 0)
		if rt.vec {
			cols, vit, err := vecOpenSelect(ctx, db, x.Sub, nil, rt)
			rt.meters = saved
			if err != nil {
				return fmt.Errorf("sqlx: IN subquery: %w", err)
			}
			if len(cols) != 1 {
				return fmt.Errorf("sqlx: IN subquery must return one column, got %d", len(cols))
			}
			for {
				items, err := vit.next(ctx, vecBatch)
				if err == io.EOF {
					break
				}
				if err != nil {
					return fmt.Errorf("sqlx: IN subquery: %w", err)
				}
				for _, i := range items {
					vals = append(vals, i.row[0])
				}
			}
		} else {
			cols, it, err := openSelect(ctx, db, x.Sub, nil, rt)
			rt.meters = saved
			if err != nil {
				return fmt.Errorf("sqlx: IN subquery: %w", err)
			}
			if len(cols) != 1 {
				return fmt.Errorf("sqlx: IN subquery must return one column, got %d", len(cols))
			}
			for {
				i, err := it.next(ctx)
				if err == io.EOF {
					break
				}
				if err != nil {
					return fmt.Errorf("sqlx: IN subquery: %w", err)
				}
				vals = append(vals, i.row[0])
			}
		}
		rt.subs[x] = newInSet(vals)
		return nil
	case *BinaryExpr:
		if err := rt.materializeSubqueries(ctx, db, x.Left); err != nil {
			return err
		}
		return rt.materializeSubqueries(ctx, db, x.Right)
	case *UnaryExpr:
		return rt.materializeSubqueries(ctx, db, x.Expr)
	case *IsNullExpr:
		return rt.materializeSubqueries(ctx, db, x.Expr)
	case *BetweenExpr:
		if err := rt.materializeSubqueries(ctx, db, x.Expr); err != nil {
			return err
		}
		if err := rt.materializeSubqueries(ctx, db, x.Lo); err != nil {
			return err
		}
		return rt.materializeSubqueries(ctx, db, x.Hi)
	case *FuncExpr:
		for _, a := range x.Args {
			if err := rt.materializeSubqueries(ctx, db, a); err != nil {
				return err
			}
		}
	}
	return nil
}

// singletonIter yields one empty environment (SELECT without FROM).
type singletonIter struct {
	rt   *run
	done bool
}

func (s *singletonIter) next(ctx context.Context) (item, error) {
	if s.done {
		return item{}, io.EOF
	}
	s.done = true
	return item{env: &env{rt: s.rt}}, nil
}

// scanIter yields one environment per tuple of a base relation within
// [pos, end) — a full scan serially, one morsel under parallel
// execution.
type scanIter struct {
	rel     *rel.Relation
	binding string
	rt      *run
	pos     int
	end     int
}

func (s *scanIter) next(ctx context.Context) (item, error) {
	if s.pos >= s.end {
		return item{}, io.EOF
	}
	if err := s.rt.tick(ctx); err != nil {
		return item{}, err
	}
	t := s.rel.Tuples[s.pos]
	s.pos++
	e := &env{rt: s.rt, bindings: []binding{{name: s.binding, schema: s.rel.Schema, tuple: t}}}
	return item{env: e}, nil
}

// indexScanIter yields only the tuples whose indexed column equals the
// bound constant — the index access path: stored-tuple reads (and thus
// Scanned) are proportional to the result size, not the relation size.
type indexScanIter struct {
	rel       *rel.Relation
	binding   string
	rt        *run
	positions []int
	pos       int
}

func (s *indexScanIter) next(ctx context.Context) (item, error) {
	if s.pos >= len(s.positions) {
		return item{}, io.EOF
	}
	if err := s.rt.tick(ctx); err != nil {
		return item{}, err
	}
	t := s.rel.Tuples[s.positions[s.pos]]
	s.pos++
	e := &env{rt: s.rt, bindings: []binding{{name: s.binding, schema: s.rel.Schema, tuple: t}}}
	return item{env: e}, nil
}

// openScan builds the iterator for a bound table access path: an index
// probe or a sequential scan over [lo, hi), with the remaining
// pushed-down filters applied above it. Index probes ignore the range
// (they never run partitioned).
func openScan(sa *scanAccess, rt *run, lo, hi int) opIter {
	var it opIter
	if sa.idx != nil {
		it = &indexScanIter{rel: sa.r, binding: sa.binding, rt: rt, positions: sa.idx.Lookup(sa.eq.val)}
	} else {
		it = &scanIter{rel: sa.r, binding: sa.binding, rt: rt, pos: lo, end: hi}
	}
	if pred := andJoin(sa.filters); pred != nil {
		it = &filterIter{child: it, pred: pred}
	}
	return it
}

// openJoin builds the iterator for a bound join access path.
func openJoin(child opIter, ja *joinAccess, rt *run) opIter {
	if ja.strategy == joinHashBuildLeft {
		return &hashLeftJoinIter{child: child, ja: ja, rt: rt}
	}
	return newJoinIter(child, ja, rt)
}

// joinIter extends each child environment with matching tuples of the
// right relation, on the access path chosen at bind time: a probe of the
// relation's persistent hash index, a lazily built per-query hash over
// the (pre-filtered) right side, a nested loop, or a cross product.
// Matches for one left row are emitted one at a time, so a LIMIT
// downstream stops the scan of the left side early. The build-left hash
// strategy lives in hashLeftJoinIter.
type joinIter struct {
	child opIter
	ja    *joinAccess
	rt    *run

	// pred is the nested-loop predicate: the pushed-down right-table
	// filters folded into the ON clause (inner/nested mode only).
	pred Expr

	lazy    map[string][]rel.Tuple // joinHashBuildRight table
	built   bool
	cross   []rel.Tuple // joinCrossSeq filtered right tuples
	crossed bool

	nullTuple rel.Tuple

	cur     *env        // current left environment, nil when exhausted
	matches []rel.Tuple // pending right matches for cur (probe/cross modes)
	mi      int
	rpos    int // right scan position (nested-loop mode)
	matched bool
}

func newJoinIter(child opIter, ja *joinAccess, rt *run) *joinIter {
	ji := &joinIter{
		child: child, ja: ja, rt: rt,
		nullTuple: make(rel.Tuple, ja.right.Schema.Len()),
	}
	if ja.strategy == joinNestedLoop {
		ji.pred = andJoin(append(append([]Expr{}, ja.filters...), ja.on))
	}
	return ji
}

// rightFilterOK evaluates the pushed-down filters against one right
// tuple in isolation.
func rightFilterOK(filters []Expr, bname string, schema *rel.Schema, t rel.Tuple, rt *run) (bool, error) {
	if len(filters) == 0 {
		return true, nil
	}
	e := &env{rt: rt, bindings: []binding{{name: bname, schema: schema, tuple: t}}}
	for _, f := range filters {
		v, err := eval(f, e)
		if err != nil {
			return false, err
		}
		if b, ok := v.AsBool(); !ok || !b {
			return false, nil
		}
	}
	return true, nil
}

// buildLazy hashes the (pre-filtered) right relation for probe mode.
// Parallel execution pre-builds the table once and shares it across
// morsels (ja.prebuilt).
func (ji *joinIter) buildLazy(ctx context.Context) error {
	if ji.ja.prebuilt != nil {
		ji.lazy, ji.built = ji.ja.prebuilt, true
		return nil
	}
	ji.lazy = make(map[string][]rel.Tuple, len(ji.ja.right.Tuples))
	for _, t := range ji.ja.right.Tuples {
		if err := ji.rt.tick(ctx); err != nil {
			return err
		}
		ok, err := rightFilterOK(ji.ja.filters, ji.ja.binding, ji.ja.right.Schema, t, ji.rt)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		v := t[ji.ja.rightIdx]
		if v.IsNull() {
			continue
		}
		k := v.Key()
		ji.lazy[k] = append(ji.lazy[k], t)
	}
	ji.built = true
	return nil
}

// buildCross materializes the cross-product right side once. Without
// pushed filters the relation's tuples are shared directly; parallel
// execution pre-filters once and shares across morsels (ja.precross).
func (ji *joinIter) buildCross(ctx context.Context) error {
	if ji.ja.precross != nil {
		ji.cross, ji.crossed = ji.ja.precross, true
		return nil
	}
	if len(ji.ja.filters) == 0 {
		ji.cross = ji.ja.right.Tuples
	} else {
		for _, t := range ji.ja.right.Tuples {
			if err := ji.rt.tick(ctx); err != nil {
				return err
			}
			ok, err := rightFilterOK(ji.ja.filters, ji.ja.binding, ji.ja.right.Schema, t, ji.rt)
			if err != nil {
				return err
			}
			if ok {
				ji.cross = append(ji.cross, t)
			}
		}
	}
	ji.crossed = true
	return nil
}

// probeIndex collects the right matches for the current left row from
// the persistent index; only matching tuples are read (and ticked), so
// Scanned stays proportional to the result size.
func (ji *joinIter) probeIndex(ctx context.Context) error {
	ji.matches = nil
	lv, err := eval(ji.ja.leftCol, ji.cur)
	if err != nil || lv.IsNull() {
		// An eval error or NULL key means no match, mirroring the lazy
		// hash path.
		return nil
	}
	for _, pos := range ji.ja.idx.Lookup(lv) {
		if err := ji.rt.tick(ctx); err != nil {
			return err
		}
		t := ji.ja.right.Tuples[pos]
		ok, err := rightFilterOK(ji.ja.filters, ji.ja.binding, ji.ja.right.Schema, t, ji.rt)
		if err != nil {
			return err
		}
		if ok {
			ji.matches = append(ji.matches, t)
		}
	}
	return nil
}

func (ji *joinIter) next(ctx context.Context) (item, error) {
	right := ji.ja.right
	for {
		if ji.cur == nil {
			it, err := ji.child.next(ctx)
			if err != nil {
				return item{}, err
			}
			ji.cur, ji.matched, ji.mi, ji.rpos = it.env, false, 0, 0
			switch ji.ja.strategy {
			case joinCrossSeq:
				if !ji.crossed {
					if err := ji.buildCross(ctx); err != nil {
						return item{}, err
					}
				}
				ji.matches = ji.cross
			case joinIndexProbe:
				if err := ji.probeIndex(ctx); err != nil {
					return item{}, err
				}
			case joinHashBuildRight:
				if !ji.built {
					if err := ji.buildLazy(ctx); err != nil {
						return item{}, err
					}
				}
				ji.matches = nil
				if lv, err := eval(ji.ja.leftCol, ji.cur); err == nil && !lv.IsNull() {
					ji.matches = ji.lazy[lv.Key()]
				}
			}
		}
		if ji.ja.strategy == joinNestedLoop {
			for ji.rpos < len(right.Tuples) {
				if err := ji.rt.tick(ctx); err != nil {
					return item{}, err
				}
				t := right.Tuples[ji.rpos]
				ji.rpos++
				ne := extend(ji.cur, ji.ja.binding, right.Schema, t)
				v, err := eval(ji.pred, ne)
				if err != nil {
					return item{}, err
				}
				if b, ok := v.AsBool(); ok && b {
					ji.matched = true
					return item{env: ne}, nil
				}
			}
		} else if ji.mi < len(ji.matches) {
			t := ji.matches[ji.mi]
			ji.mi++
			ji.matched = true
			return item{env: extend(ji.cur, ji.ja.binding, right.Schema, t)}, nil
		}
		left := ji.cur
		ji.cur = nil
		if !ji.matched && ji.ja.kind == JoinLeft {
			return item{env: extend(left, ji.ja.binding, right.Schema, ji.nullTuple)}, nil
		}
	}
}

// hashLeftJoinIter is the build-side-swapped hash join: when neither
// join column has a persistent index and the left input is estimated
// smaller than the right relation, the left environments are drained
// into the hash table and the right relation is streamed through it —
// the classic smaller-side build. Output order is right-major (SQL
// leaves join order unspecified). Inner joins only: outer joins keep the
// right build so null extension follows left order.
type hashLeftJoinIter struct {
	child opIter
	ja    *joinAccess
	rt    *run

	built bool
	table map[string][]*env

	rpos     int
	curTuple rel.Tuple
	pending  []*env
	pi       int
}

func (ji *hashLeftJoinIter) next(ctx context.Context) (item, error) {
	if !ji.built {
		ji.table = make(map[string][]*env)
		for {
			it, err := ji.child.next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				return item{}, err
			}
			// Eval errors and NULL keys mean no match, as in probe mode.
			lv, err := eval(ji.ja.leftCol, it.env)
			if err != nil || lv.IsNull() {
				continue
			}
			k := lv.Key()
			ji.table[k] = append(ji.table[k], it.env)
		}
		ji.built = true
	}
	right := ji.ja.right
	for {
		if ji.pi < len(ji.pending) {
			e := ji.pending[ji.pi]
			ji.pi++
			return item{env: extend(e, ji.ja.binding, right.Schema, ji.curTuple)}, nil
		}
		if ji.rpos >= len(right.Tuples) {
			return item{}, io.EOF
		}
		if err := ji.rt.tick(ctx); err != nil {
			return item{}, err
		}
		t := right.Tuples[ji.rpos]
		ji.rpos++
		ok, err := rightFilterOK(ji.ja.filters, ji.ja.binding, right.Schema, t, ji.rt)
		if err != nil {
			return item{}, err
		}
		if !ok {
			continue
		}
		v := t[ji.ja.rightIdx]
		if v.IsNull() {
			continue
		}
		ji.pending, ji.pi, ji.curTuple = ji.table[v.Key()], 0, t
	}
}

// filterIter keeps environments whose predicate evaluates to true.
type filterIter struct {
	child opIter
	pred  Expr
}

func (f *filterIter) next(ctx context.Context) (item, error) {
	for {
		it, err := f.child.next(ctx)
		if err != nil {
			return item{}, err
		}
		v, err := eval(f.pred, it.env)
		if err != nil {
			return item{}, err
		}
		if b, ok := v.AsBool(); ok && b {
			return it, nil
		}
	}
}

// projectIter evaluates the select items against each environment,
// attaching the output row while keeping the environment for ORDER BY.
type projectIter struct {
	child opIter
	items []SelectItem
}

func (p *projectIter) next(ctx context.Context) (item, error) {
	it, err := p.child.next(ctx)
	if err != nil {
		return item{}, err
	}
	row := make(rel.Tuple, len(p.items))
	for i, si := range p.items {
		v, err := eval(si.Expr, it.env)
		if err != nil {
			return item{}, err
		}
		row[i] = v
	}
	it.row = row
	return it, nil
}

// groupIter is the aggregation pipeline breaker: on first pull it drains
// the child, groups and aggregates (including HAVING and projection), and
// then streams the result rows.
type groupIter struct {
	child opIter
	s     *SelectStmt
	items []SelectItem
	rt    *run
	rows  []rel.Tuple
	pos   int
	done  bool
}

func (g *groupIter) next(ctx context.Context) (item, error) {
	if !g.done {
		var envs []*env
		for {
			it, err := g.child.next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				return item{}, err
			}
			envs = append(envs, it.env)
		}
		rows, err := execGrouped(g.s, g.items, envs, g.rt)
		if err != nil {
			return item{}, err
		}
		g.rows, g.done = rows, true
	}
	if g.pos >= len(g.rows) {
		return item{}, io.EOF
	}
	row := g.rows[g.pos]
	g.pos++
	return item{row: row}, nil
}

// orderIter is the ORDER BY pipeline breaker for non-grouped selects: it
// materializes (row, environment) pairs so keys can reference any column
// of the row environment, not just projected ones.
type orderIter struct {
	child opIter
	order []OrderItem
	items []SelectItem
	buf   []item
	pos   int
	done  bool
}

func (o *orderIter) next(ctx context.Context) (item, error) {
	if !o.done {
		for {
			it, err := o.child.next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				return item{}, err
			}
			o.buf = append(o.buf, it)
		}
		var sortErr error
		sort.SliceStable(o.buf, func(a, b int) bool {
			for _, oi := range o.order {
				va, err := evalOrderKey(oi.Expr, o.items, o.buf[a].row, o.buf[a].env)
				if err != nil {
					sortErr = err
					return false
				}
				vb, err := evalOrderKey(oi.Expr, o.items, o.buf[b].row, o.buf[b].env)
				if err != nil {
					sortErr = err
					return false
				}
				if c := va.Compare(vb); c != 0 {
					if oi.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return item{}, sortErr
		}
		o.done = true
	}
	if o.pos >= len(o.buf) {
		return item{}, io.EOF
	}
	it := o.buf[o.pos]
	o.pos++
	return it, nil
}

// rowOrderIter is the ORDER BY breaker for grouped selects and union
// heads, where keys resolve against output columns only: ordinal
// positions, aliases/column names, or projection expressions.
type rowOrderIter struct {
	child   opIter
	order   []OrderItem
	items   []SelectItem // nil for union ordering
	columns []string
	buf     []item
	pos     int
	done    bool
}

func (o *rowOrderIter) next(ctx context.Context) (item, error) {
	if !o.done {
		for {
			it, err := o.child.next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				return item{}, err
			}
			o.buf = append(o.buf, it)
		}
		var sortErr error
		sort.SliceStable(o.buf, func(a, b int) bool {
			for _, oi := range o.order {
				va, err := rowOrderKey(oi.Expr, o.items, o.columns, o.buf[a].row)
				if err != nil {
					sortErr = err
					return false
				}
				vb, err := rowOrderKey(oi.Expr, o.items, o.columns, o.buf[b].row)
				if err != nil {
					sortErr = err
					return false
				}
				if c := va.Compare(vb); c != 0 {
					if oi.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return item{}, sortErr
		}
		o.done = true
	}
	if o.pos >= len(o.buf) {
		return item{}, io.EOF
	}
	it := o.buf[o.pos]
	o.pos++
	return it, nil
}

// rowOrderKey resolves an ORDER BY key against output rows.
func rowOrderKey(e Expr, items []SelectItem, columns []string, row rel.Tuple) (rel.Value, error) {
	if lit, ok := e.(*Literal); ok && lit.Value.Kind() == rel.KindInt {
		pos, _ := lit.Value.AsInt()
		if pos >= 1 && int(pos) <= len(row) {
			return row[pos-1], nil
		}
	}
	if cr, ok := e.(*ColumnRef); ok && cr.Table == "" {
		for i := range columns {
			if strings.EqualFold(columns[i], cr.Column) {
				return row[i], nil
			}
		}
	}
	// Match structurally equal expressions against projection items.
	for i, it := range items {
		if exprString(it.Expr) == exprString(e) {
			return row[i], nil
		}
	}
	return rel.Null(), fmt.Errorf("sqlx: ORDER BY expression must appear in grouped SELECT list")
}

// distinctIter streams rows, dropping ones whose full-row key was seen.
// The key is rendered into a reused scratch buffer (the collision-free
// length-prefixed encoding shared with the index layer; separator
// joining would collide since a value's Key may contain any byte), so
// duplicate rows cost no allocation — only new rows pay for the string
// the map retains.
type distinctIter struct {
	child opIter
	seen  map[string]struct{}
	buf   []byte
}

func newDistinctIter(child opIter) *distinctIter {
	return &distinctIter{child: child, seen: make(map[string]struct{})}
}

func (d *distinctIter) next(ctx context.Context) (item, error) {
	for {
		it, err := d.child.next(ctx)
		if err != nil {
			return item{}, err
		}
		d.buf = rel.AppendTupleKey(d.buf[:0], it.row)
		if _, dup := d.seen[string(d.buf)]; dup {
			continue
		}
		d.seen[string(d.buf)] = struct{}{}
		return it, nil
	}
}

// rowKey renders a row canonically for comparison (tests rely on it).
func rowKey(row rel.Tuple) string {
	return rel.TupleKey(row)
}

// limitIter applies OFFSET then LIMIT, returning io.EOF as soon as the
// limit is satisfied so upstream operators stop pulling stored tuples.
type limitIter struct {
	child   opIter
	limit   int // -1 = no limit
	offset  int
	skipped int
	emitted int
}

func (l *limitIter) next(ctx context.Context) (item, error) {
	for l.skipped < l.offset {
		if _, err := l.child.next(ctx); err != nil {
			return item{}, err
		}
		l.skipped++
	}
	if l.limit >= 0 && l.emitted >= l.limit {
		return item{}, io.EOF
	}
	it, err := l.child.next(ctx)
	if err != nil {
		return item{}, err
	}
	l.emitted++
	return it, nil
}

// concatIter chains child iterators in order (UNION ALL shape); later
// children are not pulled until earlier ones are exhausted.
type concatIter struct {
	children []opIter
	pos      int
}

func (c *concatIter) next(ctx context.Context) (item, error) {
	for c.pos < len(c.children) {
		it, err := c.children[c.pos].next(ctx)
		if err == io.EOF {
			c.pos++
			continue
		}
		return it, err
	}
	return item{}, io.EOF
}
