package sqlx

import (
	"fmt"
	"strings"

	"repro/internal/rel"
)

// This file is the bind half of the optimizer: Open (and Explain) take
// the logical plan from logical.go and a concrete database snapshot and
// choose the physical access path of every scan and join node. Binding
// happens per Open, never at Prepare, so a cached Plan stays valid
// across warehouse commits — each Open sees the snapshot's relations and
// their persistent hash indexes as they are now.

// Default selectivity guesses where no index gives exact counts: an
// equality predicate keeps 1/eqSelectivityDiv of the rows, any other
// predicate 1/filterSelectivityDiv.
const (
	eqSelectivityDiv     = 10
	filterSelectivityDiv = 3
)

// scanAccess is the bound access path of one table scan.
type scanAccess struct {
	tl      *tableLogical
	r       *rel.Relation
	binding string
	// idx/eq are set for an index access path: the scan probes idx with
	// eq.val instead of reading every tuple.
	idx *rel.Index
	eq  *eqPred
	// filters are the pushed-down conjuncts still to evaluate per tuple
	// (the conjunct served by the index probe is excluded).
	filters []Expr
	// est is the estimated output cardinality. Index probes report the
	// exact bucket size; everything else applies selectivity guesses.
	est float64
}

// bindScan chooses the access path for one table: the most selective
// usable index probe (exact bucket sizes are known at bind time), or a
// sequential scan.
func bindScan(db *rel.Database, tl *tableLogical) (*scanAccess, error) {
	r := db.Relation(tl.ref.Name)
	if r == nil {
		return nil, fmt.Errorf("sqlx: no such table %q", tl.ref.Name)
	}
	sa := &scanAccess{tl: tl, r: r, binding: tl.ref.Binding()}
	best := -1
	bestCount := 0
	for i := range tl.eq {
		ix := r.HashIndex(tl.eq[i].col)
		if ix == nil {
			continue
		}
		n := len(ix.Lookup(tl.eq[i].val))
		if best < 0 || n < bestCount {
			best, bestCount = i, n
			sa.idx = ix
		}
	}
	if best >= 0 {
		sa.eq = &tl.eq[best]
		sa.est = float64(bestCount)
		for _, f := range tl.filters {
			if f == sa.eq.expr {
				continue
			}
			sa.filters = append(sa.filters, f)
			sa.est /= filterSelectivityDiv
		}
		return sa, nil
	}
	sa.filters = tl.filters
	sa.est = estimateFiltered(r, tl)
	return sa, nil
}

// estimateFiltered guesses the rows of r surviving tl's pushed filters.
func estimateFiltered(r *rel.Relation, tl *tableLogical) float64 {
	est := float64(r.Cardinality())
	for _, f := range tl.filters {
		if _, _, ok := eqConst(f); ok {
			est /= eqSelectivityDiv
		} else {
			est /= filterSelectivityDiv
		}
	}
	if est < 1 && r.Cardinality() > 0 {
		est = 1
	}
	return est
}

// joinStrategy enumerates the physical join operators.
type joinStrategy int

const (
	// joinCrossSeq pairs every left row with the (filtered) right tuples.
	joinCrossSeq joinStrategy = iota
	// joinIndexProbe probes the right relation's persistent hash index
	// per left row — no per-query build cost, no per-query memory.
	joinIndexProbe
	// joinHashBuildRight lazily hashes the (filtered) right relation on
	// first use and probes it per left row.
	joinHashBuildRight
	// joinHashBuildLeft drains the smaller left input into the hash table
	// and streams the right relation through it (inner joins only).
	joinHashBuildLeft
	// joinNestedLoop evaluates the ON predicate per pair.
	joinNestedLoop
)

func (k joinStrategy) String() string {
	switch k {
	case joinCrossSeq:
		return "CrossJoin"
	case joinIndexProbe:
		return "IndexJoin"
	case joinHashBuildRight:
		return "HashJoin(build=right)"
	case joinHashBuildLeft:
		return "HashJoin(build=left)"
	case joinNestedLoop:
		return "NestedLoopJoin"
	}
	return "Join"
}

// joinAccess is the bound access path of one join step.
type joinAccess struct {
	tl       *tableLogical
	right    *rel.Relation
	binding  string
	strategy joinStrategy
	// leftCol/rightIdx describe the equi-join columns (probe modes).
	leftCol  *ColumnRef
	rightCol string
	rightIdx int
	// idx is the right relation's persistent index (joinIndexProbe).
	idx *rel.Index
	// filters are pushed-down conjuncts on the joined table, applied to
	// right tuples before matching.
	filters []Expr
	// est is the estimated output cardinality of the join.
	est float64
}

// bindJoin chooses the join strategy for one JOIN step given the
// estimated cardinality of the left input: an index-backed probe when
// the right join column has a persistent hash index, otherwise a hash
// join built on the estimated smaller side (inner joins only — outer
// joins keep the right build so null extension follows left order), and
// a nested loop for non-equi predicates.
func bindJoin(db *rel.Database, tl *tableLogical, leftEst float64) (*joinAccess, error) {
	right := db.Relation(tl.ref.Name)
	if right == nil {
		return nil, fmt.Errorf("sqlx: no such table %q", tl.ref.Name)
	}
	ja := &joinAccess{tl: tl, right: right, binding: tl.ref.Binding(), filters: tl.filters}
	rightEst := estimateFiltered(right, tl)
	if tl.join.Kind == JoinCross {
		ja.strategy = joinCrossSeq
		ja.est = leftEst * rightEst
		return ja, nil
	}
	leftCol, rightCol, hashable := equiJoinCols(tl.join.On, ja.binding)
	if hashable {
		if ri := right.Schema.Index(rightCol.Column); ri >= 0 {
			ja.leftCol, ja.rightIdx = leftCol, ri
			ja.rightCol = right.Schema.Columns[ri].Name
			matches := avgMatches(right, ja.rightCol)
			switch {
			case right.HashIndex(ja.rightCol) != nil:
				ja.strategy = joinIndexProbe
				ja.idx = right.HashIndex(ja.rightCol)
			case tl.join.Kind == JoinInner && leftEst < float64(right.Cardinality()):
				ja.strategy = joinHashBuildLeft
			default:
				ja.strategy = joinHashBuildRight
			}
			ja.est = leftEst * matches * selectivity(len(tl.filters))
			if ja.est < 1 {
				ja.est = 1
			}
			return ja, nil
		}
	}
	ja.strategy = joinNestedLoop
	ja.est = leftEst * rightEst / filterSelectivityDiv
	if ja.est < 1 {
		ja.est = 1
	}
	return ja, nil
}

// avgMatches estimates how many right tuples one left row matches on the
// join column: exact n/distinct from the index when present, 1 for
// unique/primary-key columns, a selectivity guess otherwise.
func avgMatches(r *rel.Relation, col string) float64 {
	n := float64(r.Cardinality())
	if n == 0 {
		return 0
	}
	if ix := r.HashIndex(col); ix != nil && ix.Len() > 0 {
		return n / float64(ix.Len())
	}
	if isDeclaredUnique(r, col) {
		return 1
	}
	m := n / eqSelectivityDiv
	if m < 1 {
		return 1
	}
	return m
}

func isDeclaredUnique(r *rel.Relation, col string) bool {
	if r.PrimaryKey != "" && strings.EqualFold(r.PrimaryKey, col) {
		return true
	}
	for c, u := range r.UniqueCols {
		if u && strings.EqualFold(c, col) {
			return true
		}
	}
	return false
}

// selectivity is the combined guess for n pushed non-index filters.
func selectivity(n int) float64 {
	s := 1.0
	for i := 0; i < n; i++ {
		s /= filterSelectivityDiv
	}
	return s
}
