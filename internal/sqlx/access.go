package sqlx

import (
	"fmt"
	"strings"

	"repro/internal/rel"
)

// This file is the bind half of the optimizer: Open (and Explain) take
// the logical plan from logical.go and a concrete database snapshot and
// choose the physical access path of every scan and join node. Binding
// happens per Open, never at Prepare, so a cached Plan stays valid
// across warehouse commits — each Open sees the snapshot's relations,
// their persistent hash indexes and their statistics blocks as they are
// now.
//
// Estimation is cost-based where statistics exist: selection
// selectivities come from per-column distinct counts, null counts and
// equi-depth histograms (rel.Stats), and equi-join output sizes from
// the textbook |L|·|R| / max(ndv(L.a), ndv(R.b)) containment
// assumption. Relations without a statistics block fall back to the
// fixed guesses below, so ad-hoc databases still plan sensibly.

// Default selectivity guesses where neither an index nor statistics
// give counts: an equality predicate keeps 1/eqSelectivityDiv of the
// rows, any other predicate 1/filterSelectivityDiv.
const (
	eqSelectivityDiv     = 10
	filterSelectivityDiv = 3
)

// ReorderJoins toggles greedy reordering of inner equi-join chains.
// Exported so benchmarks can compare the reordered plan against the
// parse-order plan; always on in production use.
var ReorderJoins = true

// binder accumulates the relations bound so far during one bindSelect,
// so later join steps can estimate distinct counts of columns on any
// earlier binding.
type binder struct {
	db   *rel.Database
	rels map[string]*rel.Relation // lower-cased binding name -> relation
}

func newBinder(db *rel.Database) *binder {
	return &binder{db: db, rels: make(map[string]*rel.Relation)}
}

func (bd *binder) add(binding string, r *rel.Relation) {
	bd.rels[strings.ToLower(binding)] = r
}

// ndv estimates the distinct count of the referenced column in its base
// relation; 0 when the binding or its statistics are unknown.
func (bd *binder) ndv(cr *ColumnRef) float64 {
	if cr == nil {
		return 0
	}
	if cr.Table != "" {
		if r := bd.rels[strings.ToLower(cr.Table)]; r != nil {
			return r.Stats.DistinctEst(cr.Column)
		}
		return 0
	}
	var found *rel.Relation
	for _, r := range bd.rels {
		if r.Schema.Index(cr.Column) >= 0 {
			if found != nil {
				return 0 // ambiguous
			}
			found = r
		}
	}
	if found == nil {
		return 0
	}
	return found.Stats.DistinctEst(cr.Column)
}

// selectAccess is the bound physical plan of one SELECT (without its
// union chain): the base-table access path and the join steps in
// execution order — possibly reordered. Open and Explain both consume
// bindSelect output, so the plan shown is always the plan run.
type selectAccess struct {
	scan  *scanAccess
	joins []*joinAccess
}

// bindSelect chooses every access path of one SELECT against db. Inner
// equi-join chains of three or more tables are greedily reordered by
// estimated intermediate cardinality (never across a LEFT JOIN).
func bindSelect(db *rel.Database, lg *logicalSelect) (*selectAccess, error) {
	sel := &selectAccess{}
	if len(lg.tables) == 0 {
		return sel, nil
	}
	if info, ok := reorderPrefix(db, lg); ok {
		return bindReordered(db, lg, info)
	}
	bd := newBinder(db)
	sa, err := bindScan(bd, lg.tables[0], nil)
	if err != nil {
		return nil, err
	}
	sel.scan = sa
	leftEst := sa.est
	for _, tl := range lg.tables[1:] {
		ja, err := bindJoin(bd, tl, leftEst)
		if err != nil {
			return nil, err
		}
		sel.joins = append(sel.joins, ja)
		leftEst = ja.est
	}
	return sel, nil
}

// scanAccess is the bound access path of one table scan.
type scanAccess struct {
	tl      *tableLogical
	r       *rel.Relation
	binding string
	// idx/eq are set for an index access path: the scan probes idx with
	// eq.val instead of reading every tuple.
	idx *rel.Index
	eq  *eqPred
	// filters are the pushed-down conjuncts still to evaluate per tuple
	// (the conjunct served by the index probe is excluded).
	filters []Expr
	// est is the estimated output cardinality. Index probes report the
	// exact bucket size; everything else applies statistics-based (or
	// fallback) selectivities.
	est float64
}

// bindScan chooses the access path for one table: the most selective
// usable index probe (exact bucket sizes are known at bind time), or a
// sequential scan. extra holds ON conjuncts reassigned to this table by
// join reordering; they filter (and shrink the estimate) like pushed
// WHERE conjuncts but never probe an index.
func bindScan(bd *binder, tl *tableLogical, extra []Expr) (*scanAccess, error) {
	r := bd.db.Relation(tl.ref.Name)
	if r == nil {
		return nil, fmt.Errorf("sqlx: no such table %q", tl.ref.Name)
	}
	sa := &scanAccess{tl: tl, r: r, binding: tl.ref.Binding()}
	defer bd.add(sa.binding, r)
	best := -1
	bestCount := 0
	for i := range tl.eq {
		ix := r.HashIndex(tl.eq[i].col)
		if ix == nil {
			continue
		}
		n := len(ix.Lookup(tl.eq[i].val))
		if best < 0 || n < bestCount {
			best, bestCount = i, n
			sa.idx = ix
		}
	}
	if best >= 0 {
		sa.eq = &tl.eq[best]
		sa.est = float64(bestCount)
		for _, f := range tl.filters {
			if f == sa.eq.expr {
				continue
			}
			sa.filters = append(sa.filters, f)
			sa.est *= predSelectivity(r, f)
		}
		for _, f := range extra {
			sa.filters = append(sa.filters, f)
			sa.est *= predSelectivity(r, f)
		}
		if sa.est < 1 && bestCount > 0 {
			sa.est = 1
		}
		return sa, nil
	}
	sa.filters = tl.filters
	if len(extra) > 0 {
		sa.filters = append(append([]Expr{}, tl.filters...), extra...)
	}
	sa.est = estimateFiltered(r, sa.filters)
	return sa, nil
}

// estimateFiltered estimates the rows of r surviving the given pushed
// conjuncts, multiplying per-predicate selectivities.
func estimateFiltered(r *rel.Relation, filters []Expr) float64 {
	est := float64(r.Cardinality())
	for _, f := range filters {
		est *= predSelectivity(r, f)
	}
	if est < 1 && r.Cardinality() > 0 {
		est = 1
	}
	return est
}

// predSelectivity estimates the fraction of r's rows satisfying one
// conjunct, from the relation's statistics block when present, falling
// back to the fixed guesses: equality 1/distinct (uniform-frequency),
// ranges and BETWEEN from the equi-depth histogram, IS [NOT] NULL from
// the null count, IN from the list length.
func predSelectivity(r *rel.Relation, e Expr) float64 {
	st := r.Stats
	switch x := e.(type) {
	case *BinaryExpr:
		col, v, op, ok := colConst(x)
		if !ok {
			break
		}
		switch op {
		case "=":
			if sel, ok := st.EqSelectivity(col); ok {
				return clampSel(sel)
			}
			return 1.0 / eqSelectivityDiv
		case "<>":
			if sel, ok := st.EqSelectivity(col); ok {
				return clampSel((1 - st.NullFraction(col)) - sel)
			}
		case "<", "<=", ">", ">=":
			if sel, ok := rangeSelectivity(st, col, v, op); ok {
				return clampSel(sel)
			}
		}
	case *IsNullExpr:
		if cr, ok := x.Expr.(*ColumnRef); ok && st.Col(cr.Column) != nil {
			nf := st.NullFraction(cr.Column)
			if x.Negate {
				return clampSel(1 - nf)
			}
			return clampSel(nf)
		}
	case *BetweenExpr:
		cr, okc := x.Expr.(*ColumnRef)
		lo, okl := litVal(x.Lo)
		hi, okh := litVal(x.Hi)
		if okc && okl && okh {
			fhi, ok := st.LessFraction(cr.Column, hi, true)
			if ok {
				flo, _ := st.LessFraction(cr.Column, lo, false)
				sel := (fhi - flo) * (1 - st.NullFraction(cr.Column))
				if x.Negate {
					sel = 1 - sel
				}
				return clampSel(sel)
			}
		}
	case *InExpr:
		if cr, ok := x.Expr.(*ColumnRef); ok && x.Sub == nil && len(x.List) > 0 {
			if sel, ok := st.EqSelectivity(cr.Column); ok {
				s := sel * float64(len(x.List))
				if x.Negate {
					s = 1 - s
				}
				return clampSel(s)
			}
		}
	}
	return 1.0 / filterSelectivityDiv
}

// clampSel bounds a selectivity estimate to (0, 1]; estimates never hit
// exactly zero so downstream operators keep a nonzero row floor.
func clampSel(s float64) float64 {
	if s < 1e-4 {
		return 1e-4
	}
	if s > 1 {
		return 1
	}
	return s
}

// colConst recognizes "column OP constant" (either order; comparison
// operators are mirrored when the constant is on the left).
func colConst(be *BinaryExpr) (col string, v rel.Value, op string, ok bool) {
	if cr, k := be.Left.(*ColumnRef); k {
		if lit, k2 := be.Right.(*Literal); k2 {
			return cr.Column, lit.Value, be.Op, true
		}
	}
	if cr, k := be.Right.(*ColumnRef); k {
		if lit, k2 := be.Left.(*Literal); k2 {
			return cr.Column, lit.Value, mirrorOp(be.Op), true
		}
	}
	return "", rel.Value{}, "", false
}

func mirrorOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

func litVal(e Expr) (rel.Value, bool) {
	if lit, ok := e.(*Literal); ok {
		return lit.Value, true
	}
	return rel.Value{}, false
}

// rangeSelectivity estimates a range predicate from the histogram,
// scaled by the non-null fraction (histograms cover non-null values).
func rangeSelectivity(st *rel.Stats, col string, v rel.Value, op string) (float64, bool) {
	var frac float64
	var ok bool
	switch op {
	case "<":
		frac, ok = st.LessFraction(col, v, false)
	case "<=":
		frac, ok = st.LessFraction(col, v, true)
	case ">":
		frac, ok = st.LessFraction(col, v, true)
		frac = 1 - frac
	case ">=":
		frac, ok = st.LessFraction(col, v, false)
		frac = 1 - frac
	default:
		return 0, false
	}
	if !ok {
		return 0, false
	}
	return frac * (1 - st.NullFraction(col)), true
}

// joinStrategy enumerates the physical join operators.
type joinStrategy int

const (
	// joinCrossSeq pairs every left row with the (filtered) right tuples.
	joinCrossSeq joinStrategy = iota
	// joinIndexProbe probes the right relation's persistent hash index
	// per left row — no per-query build cost, no per-query memory.
	joinIndexProbe
	// joinHashBuildRight lazily hashes the (filtered) right relation on
	// first use and probes it per left row.
	joinHashBuildRight
	// joinHashBuildLeft drains the smaller left input into the hash table
	// and streams the right relation through it (inner joins only).
	joinHashBuildLeft
	// joinNestedLoop evaluates the ON predicate per pair.
	joinNestedLoop
)

func (k joinStrategy) String() string {
	switch k {
	case joinCrossSeq:
		return "CrossJoin"
	case joinIndexProbe:
		return "IndexJoin"
	case joinHashBuildRight:
		return "HashJoin(build=right)"
	case joinHashBuildLeft:
		return "HashJoin(build=left)"
	case joinNestedLoop:
		return "NestedLoopJoin"
	}
	return "Join"
}

// joinAccess is the bound access path of one join step.
type joinAccess struct {
	tl       *tableLogical
	right    *rel.Relation
	binding  string
	strategy joinStrategy
	// kind/on are the effective join kind and predicate of this step.
	// After reordering they may differ from the parsed clause: ON
	// conjuncts are reassigned to the first step where all their
	// bindings are available.
	kind JoinKind
	on   Expr
	// leftCol/rightIdx describe the equi-join columns (probe modes).
	leftCol  *ColumnRef
	rightCol string
	rightIdx int
	// idx is the right relation's persistent index (joinIndexProbe).
	idx *rel.Index
	// filters are pushed-down conjuncts on the joined table, applied to
	// right tuples before matching.
	filters []Expr
	// post holds reassigned multi-table conjuncts evaluated on the
	// joined rows above this step (reordered plans only).
	post []Expr
	// prebuilt, when set, replaces the lazily built joinHashBuildRight
	// table: parallel execution shares one build across all morsels.
	prebuilt map[string][]rel.Tuple
	// prevec is prebuilt's batch-engine counterpart: the shared
	// open-addressing hash table.
	prevec *joinTable
	// precross, when set, replaces the per-iterator filtered right side
	// of joinCrossSeq for the same reason.
	precross []rel.Tuple
	// est is the estimated output cardinality of the join.
	est float64
}

// bindJoin chooses the join strategy for one parse-order JOIN step given
// the estimated cardinality of the left input.
func bindJoin(bd *binder, tl *tableLogical, leftEst float64) (*joinAccess, error) {
	right := bd.db.Relation(tl.ref.Name)
	if right == nil {
		return nil, fmt.Errorf("sqlx: no such table %q", tl.ref.Name)
	}
	ja := &joinAccess{
		tl: tl, right: right, binding: tl.ref.Binding(),
		kind: tl.join.Kind, on: tl.join.On, filters: tl.filters,
	}
	bindJoinStrategy(bd, ja, leftEst)
	bd.add(ja.binding, right)
	return ja, nil
}

// bindJoinStrategy picks the physical operator and estimate for a join
// step whose kind, on and filters are already set: an index-backed probe
// when the right join column has a persistent hash index, otherwise a
// hash join built on the estimated smaller side (inner joins only —
// outer joins keep the right build so null extension follows left
// order), and a nested loop for non-equi predicates.
func bindJoinStrategy(bd *binder, ja *joinAccess, leftEst float64) {
	right := ja.right
	rightEst := estimateFiltered(right, ja.filters)
	if ja.kind == JoinCross && ja.on == nil {
		ja.strategy = joinCrossSeq
		ja.est = leftEst * rightEst
		return
	}
	leftCol, rightCol, hashable := equiJoinCols(ja.on, ja.binding)
	if hashable {
		if ri := right.Schema.Index(rightCol.Column); ri >= 0 {
			ja.leftCol, ja.rightIdx = leftCol, ri
			ja.rightCol = right.Schema.Columns[ri].Name
			switch {
			case right.HashIndex(ja.rightCol) != nil:
				ja.strategy = joinIndexProbe
				ja.idx = right.HashIndex(ja.rightCol)
			case ja.kind == JoinInner && leftEst < float64(right.Cardinality()):
				ja.strategy = joinHashBuildLeft
			default:
				ja.strategy = joinHashBuildRight
			}
			ja.est = equiJoinEst(bd, ja, leftEst, rightEst)
			return
		}
	}
	ja.strategy = joinNestedLoop
	ja.est = leftEst * rightEst / filterSelectivityDiv
	if ja.est < 1 {
		ja.est = 1
	}
}

// equiJoinEst estimates equi-join output as |L|·|R| / max(ndv(L.a),
// ndv(R.b)) over the filtered inputs — the containment assumption.
// Without statistics it falls back to index-derived average match
// counts. LEFT JOIN output never shrinks below the left input.
func equiJoinEst(bd *binder, ja *joinAccess, leftEst, rightEst float64) float64 {
	ndvL := bd.ndv(ja.leftCol)
	ndvR := ja.right.Stats.DistinctEst(ja.rightCol)
	d := ndvL
	if ndvR > d {
		d = ndvR
	}
	var est float64
	if d > 0 {
		est = leftEst * rightEst / d
	} else {
		est = leftEst * avgMatches(ja.right, ja.rightCol) * selectivity(len(ja.filters))
	}
	if ja.kind == JoinLeft && est < leftEst {
		est = leftEst
	}
	if est < 1 {
		est = 1
	}
	return est
}

// avgMatches estimates how many right tuples one left row matches on the
// join column: exact n/distinct from the index when present, 1 for
// unique/primary-key columns, a selectivity guess otherwise.
func avgMatches(r *rel.Relation, col string) float64 {
	n := float64(r.Cardinality())
	if n == 0 {
		return 0
	}
	if ix := r.HashIndex(col); ix != nil && ix.Len() > 0 {
		return n / float64(ix.Len())
	}
	if isDeclaredUnique(r, col) {
		return 1
	}
	m := n / eqSelectivityDiv
	if m < 1 {
		return 1
	}
	return m
}

func isDeclaredUnique(r *rel.Relation, col string) bool {
	if r.PrimaryKey != "" && strings.EqualFold(r.PrimaryKey, col) {
		return true
	}
	for c, u := range r.UniqueCols {
		if u && strings.EqualFold(c, col) {
			return true
		}
	}
	return false
}

// selectivity is the combined fallback guess for n pushed filters.
func selectivity(n int) float64 {
	s := 1.0
	for i := 0; i < n; i++ {
		s /= filterSelectivityDiv
	}
	return s
}
