package sqlx

import (
	"strings"

	"repro/internal/rel"
)

// This file is the rewrite half of the rule-based optimizer. Prepare
// lowers a parsed SelectStmt into a logical plan by applying, in order:
//
//  1. constant folding over the WHERE tree,
//  2. conjunct normalization (the AND tree is split into a flat list),
//  3. predicate pushdown — conjuncts referencing a single table binding
//     move below the joins into that table's filter list (never onto the
//     nullable side of a LEFT JOIN, which would change outer-join
//     semantics),
//  4. equality-conjunct extraction — "column = constant" conjuncts are
//     recorded as index access-path candidates.
//
// The logical plan references, but never mutates, the parsed statement,
// so a Plan stays immutable and cacheable. Binding to a concrete
// database snapshot — choosing index scans, join strategies and build
// sides — happens at Open time in access.go.

// logicalSelect is the rewritten form of one SELECT; union mirrors the
// statement's UNION chain.
type logicalSelect struct {
	s      *SelectStmt
	tables []*tableLogical
	// residual holds the WHERE conjuncts that could not be pushed to a
	// single table: join predicates, multi-table expressions, constants,
	// and predicates on the nullable side of a LEFT JOIN.
	residual []Expr
	union    *logicalSelect
}

// tableLogical is one FROM or JOIN table together with the predicates
// pushed down to it.
type tableLogical struct {
	ref  *TableRef
	join *Join // nil for the FROM table
	// filters are the pushed-down conjuncts, evaluated on this table's
	// rows below the join.
	filters []Expr
	// eq are the "column = constant" conjuncts among filters — the index
	// access-path candidates harvested by rewrite rule 4.
	eq []eqPred
}

// eqPred is one equality conjunct between a column of the owning binding
// and a constant value.
type eqPred struct {
	col  string
	val  rel.Value
	expr Expr // the original conjunct, for filter bookkeeping and display
}

// buildLogical lowers a SELECT (and its UNION chain) into its logical
// plan. db supplies schema information for resolving unqualified column
// references; it may be nil, in which case pushdown is limited to
// explicitly qualified predicates and single-table selects.
func buildLogical(db *rel.Database, s *SelectStmt) *logicalSelect {
	lg := &logicalSelect{s: s}
	if s.From != nil {
		lg.tables = append(lg.tables, &tableLogical{ref: s.From})
		for i := range s.Joins {
			j := &s.Joins[i]
			lg.tables = append(lg.tables, &tableLogical{ref: j.Table, join: j})
		}
	}
	for _, c := range splitConjuncts(foldExpr(s.Where)) {
		// Rule: drop conjuncts folded to constant TRUE.
		if lit, ok := c.(*Literal); ok {
			if b, ok := lit.Value.AsBool(); ok && b {
				continue
			}
		}
		ti := soleBinding(db, lg, c)
		if ti >= 0 && pushable(lg.tables[ti]) {
			tl := lg.tables[ti]
			tl.filters = append(tl.filters, c)
			if col, v, ok := eqConst(c); ok {
				tl.eq = append(tl.eq, eqPred{col: col, val: v, expr: c})
			}
		} else {
			lg.residual = append(lg.residual, c)
		}
	}
	if s.Union != nil {
		lg.union = buildLogical(db, s.Union)
	}
	return lg
}

// pushable reports whether predicates may move below tl's join: always
// for the FROM table and inner/cross joins, never for the right side of
// a LEFT JOIN (filtering it below the join would keep null-extended rows
// the WHERE clause must eliminate).
func pushable(tl *tableLogical) bool {
	return tl.join == nil || tl.join.Kind != JoinLeft
}

// splitConjuncts flattens an AND tree into its conjuncts.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*BinaryExpr); ok && be.Op == "AND" {
		return append(splitConjuncts(be.Left), splitConjuncts(be.Right)...)
	}
	return []Expr{e}
}

// andJoin recombines conjuncts into one predicate (nil when empty).
func andJoin(list []Expr) Expr {
	if len(list) == 0 {
		return nil
	}
	e := list[0]
	for _, c := range list[1:] {
		e = &BinaryExpr{Op: "AND", Left: e, Right: c}
	}
	return e
}

// foldExpr returns e with constant subexpressions replaced by literal
// nodes. Folding is conservative: any evaluation error (division by
// zero, bad operand kinds) leaves the node unfolded so the error still
// surfaces at execution time. IN nodes are returned unchanged — the
// executor keys materialized subquery results by node identity, which a
// rebuild would break.
func foldExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Literal, *ColumnRef, *InExpr:
		return e
	case *BinaryExpr:
		l, r := foldExpr(x.Left), foldExpr(x.Right)
		n := x
		if l != x.Left || r != x.Right {
			n = &BinaryExpr{Op: x.Op, Left: l, Right: r}
		}
		return tryFold(n, isLiteral(l) && isLiteral(r))
	case *UnaryExpr:
		in := foldExpr(x.Expr)
		n := x
		if in != x.Expr {
			n = &UnaryExpr{Op: x.Op, Expr: in}
		}
		return tryFold(n, isLiteral(in))
	case *IsNullExpr:
		in := foldExpr(x.Expr)
		n := x
		if in != x.Expr {
			n = &IsNullExpr{Expr: in, Negate: x.Negate}
		}
		return tryFold(n, isLiteral(in))
	case *BetweenExpr:
		v, lo, hi := foldExpr(x.Expr), foldExpr(x.Lo), foldExpr(x.Hi)
		n := x
		if v != x.Expr || lo != x.Lo || hi != x.Hi {
			n = &BetweenExpr{Expr: v, Lo: lo, Hi: hi, Negate: x.Negate}
		}
		return tryFold(n, isLiteral(v) && isLiteral(lo) && isLiteral(hi))
	case *FuncExpr:
		if aggregateFuncs[x.Name] {
			return e
		}
		args := make([]Expr, len(x.Args))
		changed := false
		allLit := !x.Star
		for i, a := range x.Args {
			args[i] = foldExpr(a)
			changed = changed || args[i] != a
			allLit = allLit && isLiteral(args[i])
		}
		n := x
		if changed {
			n = &FuncExpr{Name: x.Name, Star: x.Star, Distinct: x.Distinct, Args: args}
		}
		return tryFold(n, allLit)
	}
	return e
}

func isLiteral(e Expr) bool {
	_, ok := e.(*Literal)
	return ok
}

// tryFold evaluates an all-literal node down to a literal, keeping the
// node on any evaluation error.
func tryFold(e Expr, allLiteral bool) Expr {
	if !allLiteral {
		return e
	}
	v, err := eval(e, &env{})
	if err != nil {
		return e
	}
	return &Literal{Value: v}
}

// soleBinding resolves every column reference in e (excluding subquery
// scopes) and returns the index of the single table binding they all
// belong to, or -1 when the conjunct spans bindings, references nothing,
// or cannot be resolved.
func soleBinding(db *rel.Database, lg *logicalSelect, e Expr) int {
	var refs []*ColumnRef
	collectColumnRefs(e, &refs)
	if len(refs) == 0 {
		return -1
	}
	target := -1
	for _, cr := range refs {
		ti := resolveBinding(db, lg, cr)
		if ti < 0 {
			return -1
		}
		if target == -1 {
			target = ti
		} else if target != ti {
			return -1
		}
	}
	return target
}

// resolveBinding maps one column reference to a table index: by binding
// name when qualified, by schema membership otherwise (requires db;
// ambiguous columns resolve to no binding and the conjunct stays
// residual, where evaluation reports the ambiguity).
func resolveBinding(db *rel.Database, lg *logicalSelect, cr *ColumnRef) int {
	if cr.Table != "" {
		for i, tl := range lg.tables {
			if strings.EqualFold(tl.ref.Binding(), cr.Table) {
				return i
			}
		}
		return -1
	}
	if len(lg.tables) == 1 {
		return 0
	}
	if db == nil {
		return -1
	}
	found := -1
	for i, tl := range lg.tables {
		r := db.Relation(tl.ref.Name)
		if r == nil {
			return -1
		}
		if r.Schema.Index(cr.Column) >= 0 {
			if found >= 0 {
				return -1
			}
			found = i
		}
	}
	return found
}

// collectColumnRefs gathers the column references of the current scope;
// it does not descend into IN subqueries, whose references resolve
// against their own FROM clause.
func collectColumnRefs(e Expr, out *[]*ColumnRef) {
	switch x := e.(type) {
	case *ColumnRef:
		*out = append(*out, x)
	case *BinaryExpr:
		collectColumnRefs(x.Left, out)
		collectColumnRefs(x.Right, out)
	case *UnaryExpr:
		collectColumnRefs(x.Expr, out)
	case *IsNullExpr:
		collectColumnRefs(x.Expr, out)
	case *BetweenExpr:
		collectColumnRefs(x.Expr, out)
		collectColumnRefs(x.Lo, out)
		collectColumnRefs(x.Hi, out)
	case *InExpr:
		collectColumnRefs(x.Expr, out)
		for _, a := range x.List {
			collectColumnRefs(a, out)
		}
	case *FuncExpr:
		for _, a := range x.Args {
			collectColumnRefs(a, out)
		}
	}
}

// eqConst recognizes "column = constant" conjuncts in either order.
func eqConst(e Expr) (string, rel.Value, bool) {
	be, ok := e.(*BinaryExpr)
	if !ok || be.Op != "=" {
		return "", rel.Value{}, false
	}
	if cr, ok := be.Left.(*ColumnRef); ok {
		if lit, ok := be.Right.(*Literal); ok {
			return cr.Column, lit.Value, true
		}
	}
	if cr, ok := be.Right.(*ColumnRef); ok {
		if lit, ok := be.Left.(*Literal); ok {
			return cr.Column, lit.Value, true
		}
	}
	return "", rel.Value{}, false
}
