package sqlx

import (
	"math"

	"repro/internal/rel"
)

// Zero-allocation hash tables for the vectorized executor: open
// addressing over 64-bit value hashes (rel.Value.Hash64) with KeyEqual
// verification on collision, replacing the map[string]... tables keyed
// by concatenated Value.Key() strings. Probes never build a key string;
// inserts append to flat arenas, so the only allocations are amortized
// slice growth. Multi-value payloads (hash-join buckets) are chained
// through the arena with per-entry head/tail indices, preserving
// insertion order so per-key match order is identical to the serial
// lazily built map tables.

// tableInitSlots is the initial power-of-two slot count; tables grow at
// 75% load by re-placing entries from their stored hashes.
const tableInitSlots = 16

// joinTable is the joinHashBuildRight build side: value key → chain of
// right tuples in insertion order.
type joinTable struct {
	slots   []int32 // entry index + 1; 0 = empty
	entries []jtEntry
	rows    []jtRow
}

type jtEntry struct {
	hash       uint64
	key        rel.Value
	head, tail int32
}

type jtRow struct {
	t    rel.Tuple
	next int32 // -1 = end of chain
}

func (jt *joinTable) find(h uint64, v rel.Value) int {
	if len(jt.slots) == 0 {
		return -1
	}
	mask := uint64(len(jt.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := jt.slots[i]
		if s == 0 {
			return -1
		}
		e := &jt.entries[s-1]
		if e.hash == h && e.key.KeyEqual(v) {
			return int(s - 1)
		}
	}
}

func (jt *joinTable) insert(v rel.Value, t rel.Tuple) {
	h := v.Hash64()
	ri := int32(len(jt.rows))
	jt.rows = append(jt.rows, jtRow{t: t, next: -1})
	if e := jt.find(h, v); e >= 0 {
		ent := &jt.entries[e]
		jt.rows[ent.tail].next = ri
		ent.tail = ri
		return
	}
	jt.entries = append(jt.entries, jtEntry{hash: h, key: v, head: ri, tail: ri})
	jt.placeNew(h)
}

// probe returns the head row index of v's chain, or -1. Zero
// allocations.
func (jt *joinTable) probe(v rel.Value) int32 {
	if e := jt.find(v.Hash64(), v); e >= 0 {
		return jt.entries[e].head
	}
	return -1
}

func (jt *joinTable) placeNew(h uint64) {
	if len(jt.entries)*4 > len(jt.slots)*3 {
		n := len(jt.slots) * 2
		if n < tableInitSlots {
			n = tableInitSlots
		}
		jt.slots = make([]int32, n)
		for e := range jt.entries {
			jt.place(jt.entries[e].hash, int32(e+1))
		}
		return
	}
	jt.place(h, int32(len(jt.entries)))
}

func (jt *joinTable) place(h uint64, s int32) {
	mask := uint64(len(jt.slots) - 1)
	i := h & mask
	for jt.slots[i] != 0 {
		i = (i + 1) & mask
	}
	jt.slots[i] = s
}

// envTable is the joinHashBuildLeft build side: value key → chain of
// buffered left environments in insertion order.
type envTable struct {
	slots   []int32
	entries []etEntry
	rows    []etRow
}

type etEntry struct {
	hash       uint64
	key        rel.Value
	head, tail int32
}

type etRow struct {
	e    *env
	next int32
}

func (et *envTable) find(h uint64, v rel.Value) int {
	if len(et.slots) == 0 {
		return -1
	}
	mask := uint64(len(et.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := et.slots[i]
		if s == 0 {
			return -1
		}
		e := &et.entries[s-1]
		if e.hash == h && e.key.KeyEqual(v) {
			return int(s - 1)
		}
	}
}

func (et *envTable) insert(v rel.Value, e *env) {
	h := v.Hash64()
	ri := int32(len(et.rows))
	et.rows = append(et.rows, etRow{e: e, next: -1})
	if i := et.find(h, v); i >= 0 {
		ent := &et.entries[i]
		et.rows[ent.tail].next = ri
		ent.tail = ri
		return
	}
	et.entries = append(et.entries, etEntry{hash: h, key: v, head: ri, tail: ri})
	if len(et.entries)*4 > len(et.slots)*3 {
		n := len(et.slots) * 2
		if n < tableInitSlots {
			n = tableInitSlots
		}
		et.slots = make([]int32, n)
		for i := range et.entries {
			et.place(et.entries[i].hash, int32(i+1))
		}
		return
	}
	et.place(h, int32(len(et.entries)))
}

func (et *envTable) probe(v rel.Value) int32 {
	if i := et.find(v.Hash64(), v); i >= 0 {
		return et.entries[i].head
	}
	return -1
}

func (et *envTable) place(h uint64, s int32) {
	mask := uint64(len(et.slots) - 1)
	i := h & mask
	for et.slots[i] != 0 {
		i = (i + 1) & mask
	}
	et.slots[i] = s
}

// tupleSet deduplicates whole rows (DISTINCT, UNION) under TupleKey
// identity without building key strings.
type tupleSet struct {
	slots   []int32
	entries []tsEntry
}

type tsEntry struct {
	hash uint64
	row  rel.Tuple
}

// insert reports whether row was new. The row is retained; callers pass
// rows whose backing storage is stable for the life of the set.
func (ts *tupleSet) insert(row rel.Tuple) bool {
	h := rel.TupleHash64(row)
	if len(ts.slots) > 0 {
		mask := uint64(len(ts.slots) - 1)
		for i := h & mask; ; i = (i + 1) & mask {
			s := ts.slots[i]
			if s == 0 {
				break
			}
			e := &ts.entries[s-1]
			if e.hash == h && rel.TupleKeyEqual(e.row, row) {
				return false
			}
		}
	}
	ts.entries = append(ts.entries, tsEntry{hash: h, row: row})
	if len(ts.entries)*4 > len(ts.slots)*3 {
		n := len(ts.slots) * 2
		if n < tableInitSlots {
			n = tableInitSlots
		}
		ts.slots = make([]int32, n)
		for e := range ts.entries {
			ts.place(ts.entries[e].hash, int32(e+1))
		}
		return true
	}
	ts.place(h, int32(len(ts.entries)))
	return true
}

func (ts *tupleSet) place(h uint64, s int32) {
	mask := uint64(len(ts.slots) - 1)
	i := h & mask
	for ts.slots[i] != 0 {
		i = (i + 1) & mask
	}
	ts.slots[i] = s
}

// valueSet deduplicates single values (DISTINCT aggregates, IN sets).
type valueSet struct {
	slots   []int32
	entries []vsEntry
}

type vsEntry struct {
	hash uint64
	val  rel.Value
}

func (vs *valueSet) len() int { return len(vs.entries) }

func (vs *valueSet) contains(v rel.Value) bool {
	if len(vs.slots) == 0 {
		return false
	}
	h := v.Hash64()
	mask := uint64(len(vs.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := vs.slots[i]
		if s == 0 {
			return false
		}
		e := &vs.entries[s-1]
		if e.hash == h && e.val.KeyEqual(v) {
			return true
		}
	}
}

// insert reports whether v was new.
func (vs *valueSet) insert(v rel.Value) bool {
	h := v.Hash64()
	if len(vs.slots) > 0 {
		mask := uint64(len(vs.slots) - 1)
		for i := h & mask; ; i = (i + 1) & mask {
			s := vs.slots[i]
			if s == 0 {
				break
			}
			e := &vs.entries[s-1]
			if e.hash == h && e.val.KeyEqual(v) {
				return false
			}
		}
	}
	vs.entries = append(vs.entries, vsEntry{hash: h, val: v})
	if len(vs.entries)*4 > len(vs.slots)*3 {
		n := len(vs.slots) * 2
		if n < tableInitSlots {
			n = tableInitSlots
		}
		vs.slots = make([]int32, n)
		for e := range vs.entries {
			vs.place(vs.entries[e].hash, int32(e+1))
		}
		return true
	}
	vs.place(h, int32(len(vs.entries)))
	return true
}

func (vs *valueSet) place(h uint64, s int32) {
	mask := uint64(len(vs.slots) - 1)
	i := h & mask
	for vs.slots[i] != 0 {
		i = (i + 1) & mask
	}
	vs.slots[i] = s
}

// groupTable maps composite GROUP BY keys to group indices. Keys live
// in one flat value arena; the probe key is a reused scratch slice that
// is only copied in when the group is new.
type groupTable struct {
	slots   []int32
	entries []gtEntry
	keys    []rel.Value
}

type gtEntry struct {
	hash     uint64
	off, n   int32
	groupIdx int32
}

// findOrAdd returns the group index for key, adding a new group (with
// index len(existing groups)) when unseen. added reports a new group.
func (gt *groupTable) findOrAdd(key []rel.Value) (idx int, added bool) {
	h := rel.ValuesHash64(key)
	if len(gt.slots) > 0 {
		mask := uint64(len(gt.slots) - 1)
		for i := h & mask; ; i = (i + 1) & mask {
			s := gt.slots[i]
			if s == 0 {
				break
			}
			e := &gt.entries[s-1]
			if e.hash == h && rel.ValuesKeyEqual(gt.keys[e.off:e.off+e.n], key) {
				return int(e.groupIdx), false
			}
		}
	}
	off := int32(len(gt.keys))
	gt.keys = append(gt.keys, key...)
	gi := int32(len(gt.entries))
	gt.entries = append(gt.entries, gtEntry{hash: h, off: off, n: int32(len(key)), groupIdx: gi})
	if len(gt.entries)*4 > len(gt.slots)*3 {
		n := len(gt.slots) * 2
		if n < tableInitSlots {
			n = tableInitSlots
		}
		gt.slots = make([]int32, n)
		for e := range gt.entries {
			gt.place(gt.entries[e].hash, int32(e+1))
		}
		return int(gi), true
	}
	gt.place(h, int32(len(gt.entries)))
	return int(gi), true
}

func (gt *groupTable) place(h uint64, s int32) {
	mask := uint64(len(gt.slots) - 1)
	i := h & mask
	for gt.slots[i] != 0 {
		i = (i + 1) & mask
	}
	gt.slots[i] = s
}

// inSet is a materialized IN (SELECT ...) value set with the probe
// semantics of the historical linear scan (Value.Equal): the bulk of
// the values sit in a hash set probed by KeyEqual — which implies Equal
// for the non-NULL, non-NaN values stored there — while the rare values
// where Equal and KeyEqual diverge stay on a linear overflow list:
//   - NaN floats: KeyEqual(NaN, NaN) is true but Equal is false, so
//     they must never be hash-matched;
//   - integers beyond float53 round-trip: Equal compares them through
//     float64, which can equate distinct keys (2^53 vs 2^53+1), so a
//     hash miss is not an Equal miss.
type inSet struct {
	vals     []rel.Value // every value, original order (risky-probe fallback)
	set      valueSet
	overflow []rel.Value // NaNs and non-round-trip ints, probed with Equal
}

// riskyInt reports an integer that does not survive the int64→float64
// round trip, making Equal (float comparison) coarser than KeyEqual.
func riskyInt(v rel.Value) bool {
	if v.Kind() != rel.KindInt {
		return false
	}
	i, _ := v.AsInt()
	return int64(float64(i)) != i
}

func riskyInValue(v rel.Value) bool {
	if riskyInt(v) {
		return true
	}
	if v.Kind() == rel.KindFloat {
		f, _ := v.AsFloat()
		return math.IsNaN(f)
	}
	return false
}

func newInSet(vals []rel.Value) *inSet {
	s := &inSet{vals: vals}
	for _, v := range vals {
		if v.IsNull() {
			continue // NULL equals nothing; keep it out of both probes
		}
		if riskyInValue(v) {
			s.overflow = append(s.overflow, v)
			continue
		}
		s.set.insert(v)
	}
	return s
}

// contains reports whether a non-NULL probe value Equal-matches any
// set value — exactly the result of the historical linear scan.
func (s *inSet) contains(v rel.Value) bool {
	if s.set.contains(v) {
		return true
	}
	if riskyInt(v) {
		// The probe itself is float-coarse: only the full linear scan
		// reproduces Equal faithfully.
		for _, x := range s.vals {
			if v.Equal(x) {
				return true
			}
		}
		return false
	}
	for _, x := range s.overflow {
		if v.Equal(x) {
			return true
		}
	}
	return false
}
