package sqlx

import (
	"strings"
	"testing"

	"repro/internal/rel"
)

func unionDB(t *testing.T) *rel.Database {
	t.Helper()
	db := rel.NewDatabase("u")
	mustExec(t, db, `CREATE TABLE a (id INTEGER, name TEXT)`)
	mustExec(t, db, `CREATE TABLE b (id INTEGER, name TEXT)`)
	mustExec(t, db, `INSERT INTO a VALUES (1, 'alpha'), (2, 'beta')`)
	mustExec(t, db, `INSERT INTO b VALUES (2, 'beta'), (3, 'gamma')`)
	return db
}

func TestUnionDeduplicates(t *testing.T) {
	db := unionDB(t)
	res := mustExec(t, db, `SELECT id, name FROM a UNION SELECT id, name FROM b ORDER BY id`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 1 {
		t.Errorf("first = %v", res.Rows[0])
	}
	if n, _ := res.Rows[2][0].AsInt(); n != 3 {
		t.Errorf("last = %v", res.Rows[2])
	}
}

func TestUnionAllKeepsDuplicates(t *testing.T) {
	db := unionDB(t)
	res := mustExec(t, db, `SELECT id FROM a UNION ALL SELECT id FROM b`)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUnionOrderByAndLimitApplyToWhole(t *testing.T) {
	db := unionDB(t)
	res := mustExec(t, db, `SELECT id FROM a UNION SELECT id FROM b ORDER BY id DESC LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 3 {
		t.Errorf("top = %v", res.Rows[0])
	}
	if n, _ := res.Rows[1][0].AsInt(); n != 2 {
		t.Errorf("second = %v", res.Rows[1])
	}
}

func TestUnionThreeWay(t *testing.T) {
	db := unionDB(t)
	mustExec(t, db, `CREATE TABLE c (id INTEGER)`)
	mustExec(t, db, `INSERT INTO c VALUES (4)`)
	res := mustExec(t, db, `SELECT id FROM a UNION SELECT id FROM b UNION SELECT id FROM c ORDER BY id`)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[3][0].AsInt(); n != 4 {
		t.Errorf("last = %v", res.Rows[3])
	}
}

func TestUnionArityMismatch(t *testing.T) {
	db := unionDB(t)
	if _, err := Exec(db, `SELECT id, name FROM a UNION SELECT id FROM b`); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestUnionWithWhere(t *testing.T) {
	db := unionDB(t)
	res := mustExec(t, db, `SELECT name FROM a WHERE id = 1 UNION SELECT name FROM b WHERE id = 3`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestInSubquery(t *testing.T) {
	db := unionDB(t)
	res := mustExec(t, db, `SELECT name FROM a WHERE id IN (SELECT id FROM b)`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "beta" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestNotInSubquery(t *testing.T) {
	db := unionDB(t)
	res := mustExec(t, db, `SELECT name FROM a WHERE id NOT IN (SELECT id FROM b)`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "alpha" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestInSubqueryWithFilter(t *testing.T) {
	db := unionDB(t)
	res := mustExec(t, db, `SELECT name FROM a WHERE id IN (SELECT id FROM b WHERE name = 'gamma')`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestInSubqueryEmptyResult(t *testing.T) {
	db := unionDB(t)
	res := mustExec(t, db, `SELECT name FROM a WHERE id IN (SELECT id FROM b WHERE id > 100)`)
	if len(res.Rows) != 0 {
		t.Errorf("IN empty set matched rows: %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM a WHERE id NOT IN (SELECT id FROM b WHERE id > 100)`)
	if n, _ := res.Rows[0][0].AsInt(); n != 2 {
		t.Errorf("NOT IN empty set = %d want 2", n)
	}
}

func TestInSubqueryMultiColumnRejected(t *testing.T) {
	db := unionDB(t)
	if _, err := Exec(db, `SELECT name FROM a WHERE id IN (SELECT id, name FROM b)`); err == nil {
		t.Error("multi-column subquery should fail")
	}
}

func TestNestedInSubquery(t *testing.T) {
	db := unionDB(t)
	mustExec(t, db, `CREATE TABLE c (bid INTEGER)`)
	mustExec(t, db, `INSERT INTO c VALUES (2)`)
	res := mustExec(t, db, `
		SELECT name FROM a
		WHERE id IN (SELECT id FROM b WHERE id IN (SELECT bid FROM c))`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "beta" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUnionInsideInSubquery(t *testing.T) {
	db := unionDB(t)
	res := mustExec(t, db, `
		SELECT COUNT(*) FROM a
		WHERE id IN (SELECT id FROM a UNION SELECT id FROM b)`)
	if n, _ := res.Rows[0][0].AsInt(); n != 2 {
		t.Errorf("count = %d", n)
	}
}

// TestParserNeverPanics feeds adversarial statements; errors are fine,
// panics are not.
func TestParserNeverPanics(t *testing.T) {
	inputs := []string{
		"",
		";;;",
		"SELECT",
		"SELECT * FROM",
		"SELECT ((((((1))))))",
		"SELECT 1 UNION",
		"SELECT 1 UNION ALL",
		"INSERT INTO",
		"CREATE TABLE t (",
		"UPDATE t SET",
		"DELETE FROM t WHERE (((",
		"SELECT a FROM t WHERE a IN (SELECT",
		"SELECT a FROM t ORDER BY",
		"SELECT 'unterminated",
		"SELECT \x00\x01",
		"SELECT a FROM t GROUP BY HAVING",
		"SELECT * FROM t JOIN",
		"SELECT * FROM t t2 t3 t4",
	}
	for i, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("parser panicked on input %d %q: %v", i, in, r)
				}
			}()
			_, _ = Parse(in)
		}()
	}
}

// TestDeeplyNestedExpressions guards the recursive-descent parser against
// stack issues at realistic depths.
func TestDeeplyNestedExpressions(t *testing.T) {
	depth := 500
	q := "SELECT " + strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	if _, err := Parse(q); err != nil {
		t.Fatalf("nested parens: %v", err)
	}
	q = "SELECT 1 WHERE " + strings.Repeat("NOT ", depth) + "TRUE"
	if _, err := Parse(q); err == nil {
		// WHERE without FROM is accepted by our grammar; just ensure no
		// panic happened and parsing terminated.
		_ = err
	}
}

func TestScalarFunctionEdgeCases(t *testing.T) {
	db := rel.NewDatabase("t")
	res := mustExec(t, db, `SELECT COALESCE(NULL, NULL, 'x'), ROUND(2.567, 1), ABS(-4), TRIM('  hi  ')`)
	r := res.Rows[0]
	if r[0].AsString() != "x" {
		t.Errorf("COALESCE = %v", r[0])
	}
	if f, _ := r[1].AsFloat(); f != 2.6 {
		t.Errorf("ROUND = %v", r[1])
	}
	if n, _ := r[2].AsInt(); n != 4 {
		t.Errorf("ABS = %v", r[2])
	}
	if r[3].AsString() != "hi" {
		t.Errorf("TRIM = %v", r[3])
	}
}

func TestScalarFunctionArityErrors(t *testing.T) {
	db := rel.NewDatabase("t")
	for _, q := range []string{
		`SELECT LENGTH()`,
		`SELECT LOWER('a', 'b')`,
		`SELECT SUBSTR('a')`,
		`SELECT ROUND('a', 1, 2)`,
	} {
		if _, err := Exec(db, q); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
}

func TestNotBetween(t *testing.T) {
	db := unionDB(t)
	res := mustExec(t, db, `SELECT id FROM a WHERE id NOT BETWEEN 2 AND 9 ORDER BY id`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 1 {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestUpdateDeleteErrors(t *testing.T) {
	db := unionDB(t)
	if _, err := Exec(db, `UPDATE nope SET x = 1`); err == nil {
		t.Error("update missing table should fail")
	}
	if _, err := Exec(db, `UPDATE a SET nocol = 1`); err == nil {
		t.Error("update missing column should fail")
	}
	if _, err := Exec(db, `DELETE FROM nope`); err == nil {
		t.Error("delete missing table should fail")
	}
	res := mustExec(t, db, `DELETE FROM a`)
	if res.Affected != 2 {
		t.Errorf("unconditional delete affected = %d", res.Affected)
	}
}

func TestStringConcatWithColumns(t *testing.T) {
	db := unionDB(t)
	res := mustExec(t, db, `SELECT 'id=' || id FROM a ORDER BY id LIMIT 1`)
	if res.Rows[0][0].AsString() != "id=1" {
		t.Errorf("concat = %v", res.Rows[0][0])
	}
}
