package sqlx

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/rel"
)

// Plan is a prepared SELECT statement: the parse tree validated against a
// database, ready to be opened as a streaming cursor any number of times.
// A Plan is immutable after Prepare — concurrent Open calls (each with
// its own database snapshot) are safe, which is what makes plans
// cacheable by SQL text.
type Plan struct {
	sql  string
	stmt *SelectStmt
	// lg is the rewritten logical plan (conjuncts normalized, constants
	// folded, predicates pushed below joins, equality conjuncts
	// extracted); physical access paths bind per Open. See logical.go.
	lg *logicalSelect
}

// Prepare parses sql into an executable plan. Only SELECT statements can
// be planned — DML and DDL have no streaming shape and go through Exec.
// When db is non-nil, table references and star expansions are validated
// against it so errors surface at prepare time; binding to actual data
// happens at Open, so one plan can serve successive database snapshots.
func Prepare(db *rel.Database, sql string) (*Plan, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqlx: cannot prepare %T: only SELECT statements have a streaming plan", stmt)
	}
	p := &Plan{sql: sql, stmt: sel}
	if db != nil {
		for cur := sel; cur != nil; cur = cur.Union {
			if _, _, err := expandItems(db, cur); err != nil {
				return nil, err
			}
		}
	}
	p.lg = buildLogical(db, sel)
	return p, nil
}

// SQL returns the statement text the plan was prepared from.
func (p *Plan) SQL() string { return p.sql }

// Open starts one pull-based execution of the plan against db. The
// returned cursor owns no locks and holds no reference to the plan's
// caller; it stays valid as long as db's relations are not mutated (an
// immutable snapshot makes that unconditional).
func (p *Plan) Open(ctx context.Context, db *rel.Database) (*Cursor, error) {
	return p.OpenParallel(ctx, db, 1)
}

// OpenParallel is Open with a parallelism degree: eligible scan chains
// run as parallel morsels on up to workers goroutines (see parallel.go).
// Results are bit-identical to serial execution regardless of workers.
// workers <= 1 executes serially on the calling goroutine.
func (p *Plan) OpenParallel(ctx context.Context, db *rel.Database, workers int) (*Cursor, error) {
	return p.openMode(ctx, db, workers, Vectorized)
}

// openMode opens the plan on an explicit engine: the batch (vectorized)
// executor or the tuple-at-a-time reference path. The parity tests use
// it to run both engines side by side regardless of the Vectorized
// default.
func (p *Plan) openMode(ctx context.Context, db *rel.Database, workers int, vec bool) (*Cursor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rt := newRun()
	rt.vec = vec
	if workers > 1 {
		rt.workers = workers
	}
	if vec {
		cols, vit, err := vecOpenSelect(ctx, db, p.stmt, p.lg, rt)
		if err != nil {
			rt.close()
			return nil, err
		}
		return &Cursor{cols: cols, vit: vit, rt: rt}, nil
	}
	cols, it, err := openSelect(ctx, db, p.stmt, p.lg, rt)
	if err != nil {
		rt.close()
		return nil, err
	}
	return &Cursor{cols: cols, it: it, rt: rt}, nil
}

// Cursor is one open streaming execution of a Plan. Rows are computed on
// demand: a cursor abandoned after k rows has evaluated only the input
// needed for those k rows (modulo pipeline breakers like ORDER BY and
// aggregation, which drain their input on the first pull). A Cursor is
// not safe for concurrent use; open one per goroutine.
type Cursor struct {
	cols []string
	// Exactly one of it (tuple-at-a-time) and vit (batch engine) is set;
	// the batch engine refills buf one vecBatch pull at a time.
	it   opIter
	vit  vecIter
	buf  []item
	bpos int

	rt    *run
	pulls int
	done  bool
}

// Columns returns the output column names.
func (c *Cursor) Columns() []string { return c.cols }

// Next returns the next row, or io.EOF after the last one. Cancellation
// of ctx is checked about every 64 stored-tuple reads (so a canceled
// query aborts even mid-scan) and every 64 emitted rows (so it also
// aborts while draining buffered operators like ORDER BY). After any
// non-EOF error the cursor is closed and stays exhausted.
func (c *Cursor) Next(ctx context.Context) (rel.Tuple, error) {
	if c.done {
		return nil, io.EOF
	}
	c.pulls++
	if c.pulls%ctxBatch == 0 {
		if err := ctx.Err(); err != nil {
			c.done = true
			return nil, err
		}
	}
	if c.vit != nil {
		if c.bpos >= len(c.buf) {
			items, err := c.vit.next(ctx, vecBatch)
			if err != nil {
				c.done = true
				c.rt.close()
				return nil, err
			}
			c.buf, c.bpos = items, 0
		}
		it := c.buf[c.bpos]
		c.bpos++
		return it.row, nil
	}
	it, err := c.it.next(ctx)
	if err != nil {
		c.done = true
		c.rt.close()
		return nil, err
	}
	return it.row, nil
}

// Scanned reports how many stored tuples the execution has read so far —
// the operator pull-count probe: a LIMIT query that stopped early reports
// fewer scanned tuples than its inputs hold.
func (c *Cursor) Scanned() int64 { return atomic.LoadInt64(&c.rt.scanned) }

// Close releases the cursor; subsequent Next calls return io.EOF. Close
// is idempotent and always returns nil (it exists so callers can follow
// the usual rows-must-be-closed discipline).
func (c *Cursor) Close() error {
	c.done = true
	c.rt.close()
	return nil
}
