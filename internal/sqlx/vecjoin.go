package sqlx

import (
	"context"
	"io"

	"repro/internal/rel"
)

// Vectorized joins. Output environments are carved from fresh per-call
// arenas: one env array and one flat binding slab sized want×stride
// (stride = bindings per output env, fixed per chain position), so a
// full 1024-row batch of join output costs three allocations instead of
// two per row. Under a constrained pull (want < vecBatch, i.e. a LIMIT
// upstream) the join pulls left rows one at a time and buffers pending
// match state across calls — exactly the serial read pattern, keeping
// Scanned() identical.

// vecOpenJoin mirrors openJoin for the batch engine.
func vecOpenJoin(child vecIter, ja *joinAccess, rt *run, stride int) vecIter {
	if ja.strategy == joinHashBuildLeft {
		return &vecHashLeftJoin{child: child, ja: ja, rt: rt, stride: stride, chain: -1}
	}
	j := &vecJoin{
		child: child, ja: ja, rt: rt, stride: stride,
		nullTuple: make(rel.Tuple, ja.right.Schema.Len()),
		chain:     -1,
	}
	if ja.strategy == joinNestedLoop {
		j.pred = andJoin(append(append([]Expr{}, ja.filters...), ja.on))
	}
	return j
}

// emitArena carves join output environments out of per-call slabs.
type emitArena struct {
	envs  []env
	binds []binding
	bpos  int
	n     int
}

func newEmitArena(want, stride int) emitArena {
	return emitArena{envs: make([]env, want), binds: make([]binding, want*stride)}
}

// emit builds the output environment extending left with one right
// tuple. The result is not yet committed: commit keeps it, reject
// releases the slab space for the next candidate (nested-loop misses).
func (a *emitArena) emit(rt *run, left *env, bname string, schema *rel.Schema, t rel.Tuple) item {
	nb := len(left.bindings) + 1
	b := a.binds[a.bpos : a.bpos : a.bpos+nb]
	b = append(b, left.bindings...)
	b = append(b, binding{name: bname, schema: schema, tuple: t})
	e := &a.envs[a.n]
	*e = env{rt: rt, bindings: b}
	return item{env: e}
}

func (a *emitArena) commit() { a.bpos += len(a.envs[a.n].bindings); a.n++ }

// vecJoin covers the cross, index-probe, build-right hash, and
// nested-loop strategies (with LEFT JOIN null extension), mirroring
// joinIter.
type vecJoin struct {
	child  vecIter
	ja     *joinAccess
	rt     *run
	stride int

	pred Expr // nested-loop predicate (filters folded into ON)

	table   *joinTable // build-right hash table
	built   bool
	cross   []rel.Tuple
	crossed bool

	nullTuple rel.Tuple

	// Pending left rows from the child's last batch.
	leftBuf []item
	li      int
	done    bool
	err     error

	// Match state for the current left row, resumable across calls.
	cur     *env
	matches []rel.Tuple // index-probe / cross modes
	mi      int
	chain   int32 // build-right hash chain cursor, -1 = none
	rpos    int   // nested-loop right scan position
	matched bool

	out []item
}

// buildLazy mirrors joinIter.buildLazy on the open-addressing table;
// parallel execution pre-builds it once and shares it (ja.prevec).
func (j *vecJoin) buildLazy(ctx context.Context) error {
	if j.ja.prevec != nil {
		j.table, j.built = j.ja.prevec, true
		return nil
	}
	j.table = &joinTable{}
	for _, t := range j.ja.right.Tuples {
		if err := j.rt.tick(ctx); err != nil {
			return err
		}
		ok, err := rightFilterOK(j.ja.filters, j.ja.binding, j.ja.right.Schema, t, j.rt)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		v := t[j.ja.rightIdx]
		if v.IsNull() {
			continue
		}
		j.table.insert(v, t)
	}
	j.built = true
	return nil
}

func (j *vecJoin) buildCross(ctx context.Context) error {
	if j.ja.precross != nil {
		j.cross, j.crossed = j.ja.precross, true
		return nil
	}
	if len(j.ja.filters) == 0 {
		j.cross = j.ja.right.Tuples
	} else {
		for _, t := range j.ja.right.Tuples {
			if err := j.rt.tick(ctx); err != nil {
				return err
			}
			ok, err := rightFilterOK(j.ja.filters, j.ja.binding, j.ja.right.Schema, t, j.rt)
			if err != nil {
				return err
			}
			if ok {
				j.cross = append(j.cross, t)
			}
		}
	}
	j.crossed = true
	return nil
}

func (j *vecJoin) probeIndex(ctx context.Context) error {
	j.matches = j.matches[:0]
	lv, err := eval(j.ja.leftCol, j.cur)
	if err != nil || lv.IsNull() {
		// Eval error or NULL key means no match, mirroring the hash path.
		return nil
	}
	for _, pos := range j.ja.idx.Lookup(lv) {
		if err := j.rt.tick(ctx); err != nil {
			return err
		}
		t := j.ja.right.Tuples[pos]
		ok, err := rightFilterOK(j.ja.filters, j.ja.binding, j.ja.right.Schema, t, j.rt)
		if err != nil {
			return err
		}
		if ok {
			j.matches = append(j.matches, t)
		}
	}
	return nil
}

// fail records a terminal error; buffered output is flushed first and
// the error surfaces on the following call.
func (j *vecJoin) fail(out []item, err error) ([]item, error) {
	j.cur, j.done, j.err = nil, true, err
	if len(out) > 0 {
		return out, nil
	}
	return nil, err
}

func (j *vecJoin) next(ctx context.Context, want int) ([]item, error) {
	right := j.ja.right
	if cap(j.out) < want {
		j.out = make([]item, vecBatch)
	}
	out := j.out[:0]
	arena := newEmitArena(want, j.stride)
	leftWant := vecBatch
	if want < vecBatch {
		// A constrained pull: read left rows one at a time so we never
		// scan further than serial execution would under the same LIMIT.
		leftWant = 1
	}
	for {
		if j.cur == nil {
			if j.li >= len(j.leftBuf) {
				if j.done {
					if len(out) > 0 {
						return out, nil
					}
					if j.err != nil {
						return nil, j.err
					}
					return nil, io.EOF
				}
				items, err := j.child.next(ctx, leftWant)
				if err != nil {
					j.done = true
					if err != io.EOF {
						j.err = err
					}
					continue
				}
				j.leftBuf, j.li = items, 0
			}
			it := j.leftBuf[j.li]
			j.li++
			j.cur, j.matched, j.mi, j.rpos, j.chain = it.env, false, 0, 0, -1
			switch j.ja.strategy {
			case joinCrossSeq:
				if !j.crossed {
					if err := j.buildCross(ctx); err != nil {
						return j.fail(out, err)
					}
				}
				j.matches, j.mi = j.cross, 0
			case joinIndexProbe:
				if err := j.probeIndex(ctx); err != nil {
					return j.fail(out, err)
				}
			case joinHashBuildRight:
				if !j.built {
					if err := j.buildLazy(ctx); err != nil {
						return j.fail(out, err)
					}
				}
				if lv, err := eval(j.ja.leftCol, j.cur); err == nil && !lv.IsNull() {
					j.chain = j.table.probe(lv)
				}
			}
		}
		switch {
		case j.ja.strategy == joinNestedLoop:
			for j.rpos < len(right.Tuples) {
				if len(out) == want {
					return out, nil
				}
				if err := j.rt.tick(ctx); err != nil {
					return j.fail(out, err)
				}
				t := right.Tuples[j.rpos]
				j.rpos++
				cand := arena.emit(j.rt, j.cur, j.ja.binding, right.Schema, t)
				v, err := eval(j.pred, cand.env)
				if err != nil {
					return j.fail(out, err)
				}
				if b, ok := v.AsBool(); ok && b {
					j.matched = true
					arena.commit()
					out = append(out, cand)
				}
			}
		case j.ja.strategy == joinHashBuildRight:
			for j.chain >= 0 {
				if len(out) == want {
					return out, nil
				}
				r := j.table.rows[j.chain]
				j.chain = r.next
				j.matched = true
				cand := arena.emit(j.rt, j.cur, j.ja.binding, right.Schema, r.t)
				arena.commit()
				out = append(out, cand)
			}
		default:
			for j.mi < len(j.matches) {
				if len(out) == want {
					return out, nil
				}
				t := j.matches[j.mi]
				j.mi++
				j.matched = true
				cand := arena.emit(j.rt, j.cur, j.ja.binding, right.Schema, t)
				arena.commit()
				out = append(out, cand)
			}
		}
		if !j.matched && j.ja.kind == JoinLeft {
			if len(out) == want {
				// No room: keep cur so the next call re-enters here and
				// emits the null-extended row.
				return out, nil
			}
			cand := arena.emit(j.rt, j.cur, j.ja.binding, right.Schema, j.nullTuple)
			arena.commit()
			out = append(out, cand)
		}
		j.cur = nil
		if len(out) == want {
			return out, nil
		}
	}
}

// vecHashLeftJoin mirrors hashLeftJoinIter: drain the (smaller) left
// input into the environment hash table, then stream the right relation
// through it. Right-major output order, inner joins only.
type vecHashLeftJoin struct {
	child  vecIter
	ja     *joinAccess
	rt     *run
	stride int

	built bool
	table envTable

	rpos     int
	curTuple rel.Tuple
	chain    int32
	err      error

	out []item
}

func (j *vecHashLeftJoin) build(ctx context.Context) error {
	for {
		items, err := j.child.next(ctx, vecBatch)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for _, it := range items {
			// Eval errors and NULL keys mean no match, as in probe mode.
			lv, err := eval(j.ja.leftCol, it.env)
			if err != nil || lv.IsNull() {
				continue
			}
			j.table.insert(lv, it.env)
		}
	}
	j.built = true
	return nil
}

func (j *vecHashLeftJoin) next(ctx context.Context, want int) ([]item, error) {
	if j.err != nil {
		return nil, j.err
	}
	if !j.built {
		if err := j.build(ctx); err != nil {
			return nil, err
		}
	}
	right := j.ja.right
	if cap(j.out) < want {
		j.out = make([]item, vecBatch)
	}
	out := j.out[:0]
	arena := newEmitArena(want, j.stride)
	for {
		for j.chain >= 0 {
			if len(out) == want {
				return out, nil
			}
			r := j.table.rows[j.chain]
			j.chain = r.next
			cand := arena.emit(j.rt, r.e, j.ja.binding, right.Schema, j.curTuple)
			arena.commit()
			out = append(out, cand)
		}
		if j.rpos >= len(right.Tuples) {
			if len(out) > 0 {
				return out, nil
			}
			return nil, io.EOF
		}
		if err := j.rt.tick(ctx); err != nil {
			j.err = err
			if len(out) > 0 {
				return out, nil
			}
			return nil, err
		}
		t := right.Tuples[j.rpos]
		j.rpos++
		ok, err := rightFilterOK(j.ja.filters, j.ja.binding, right.Schema, t, j.rt)
		if err != nil {
			j.err = err
			if len(out) > 0 {
				return out, nil
			}
			return nil, err
		}
		if !ok {
			continue
		}
		v := t[j.ja.rightIdx]
		if v.IsNull() {
			continue
		}
		j.curTuple, j.chain = t, j.table.probe(v)
	}
}
