package sqlx

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/rel"
)

// Result is the output of a query: column names plus rows.
type Result struct {
	Columns []string
	Rows    []rel.Tuple
	// Affected is the row count for INSERT/UPDATE/DELETE.
	Affected int
}

// Exec parses and executes one SQL statement against db, materializing
// the full result. SELECT statements run through the streaming iterator
// pipeline (see plan.go/iter.go) and are collected here; callers that
// want pull semantics use Prepare and Plan.Open instead.
func Exec(db *rel.Database, sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return ExecStmt(db, stmt)
}

// ExecStmt executes a parsed statement against db.
func ExecStmt(db *rel.Database, stmt Statement) (*Result, error) {
	return execStmt(context.Background(), db, stmt)
}

func execStmt(ctx context.Context, db *rel.Database, stmt Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		return collectSelect(ctx, db, s)
	case *InsertStmt:
		return execInsert(db, s)
	case *CreateTableStmt:
		return execCreateTable(db, s)
	case *DropTableStmt:
		return execDropTable(db, s)
	case *UpdateStmt:
		return execUpdate(ctx, db, s)
	case *DeleteStmt:
		return execDelete(ctx, db, s)
	}
	return nil, fmt.Errorf("sqlx: unsupported statement %T", stmt)
}

// collectSelect drains the iterator pipeline into a materialized Result —
// the collect-all wrapper pinning Exec's historical semantics on top of
// the streaming executor.
func collectSelect(ctx context.Context, db *rel.Database, s *SelectStmt) (*Result, error) {
	rt := newRun()
	if rt.vec {
		cols, it, err := vecOpenSelect(ctx, db, s, nil, rt)
		if err != nil {
			return nil, err
		}
		res := &Result{Columns: cols}
		for {
			items, err := it.next(ctx, vecBatch)
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			for _, i := range items {
				res.Rows = append(res.Rows, i.row)
			}
		}
		return res, nil
	}
	cols, it, err := openSelect(ctx, db, s, nil, rt)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: cols}
	for {
		i, err := it.next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, i.row)
	}
	return res, nil
}

// binding associates a table binding name with a schema and current tuple.
type binding struct {
	name   string
	schema *rel.Schema
	tuple  rel.Tuple
}

type env struct {
	bindings []binding
	// rt is the per-execution run state (subquery results, scan probe);
	// nil only in contexts that cannot contain IN subqueries.
	rt *run
}

func (e *env) lookup(table, column string) (rel.Value, error) {
	if table != "" {
		for _, b := range e.bindings {
			if strings.EqualFold(b.name, table) {
				i := b.schema.Index(column)
				if i < 0 {
					return rel.Null(), fmt.Errorf("sqlx: no column %q in %q", column, table)
				}
				return b.tuple[i], nil
			}
		}
		return rel.Null(), fmt.Errorf("sqlx: unknown table binding %q", table)
	}
	found := false
	var v rel.Value
	for _, b := range e.bindings {
		if i := b.schema.Index(column); i >= 0 {
			if found {
				return rel.Null(), fmt.Errorf("sqlx: ambiguous column %q", column)
			}
			v = b.tuple[i]
			found = true
		}
	}
	if !found {
		return rel.Null(), fmt.Errorf("sqlx: unknown column %q", column)
	}
	return v, nil
}

// eval evaluates a non-aggregate expression in an environment.
func eval(e Expr, env *env) (rel.Value, error) {
	switch x := e.(type) {
	case groupedProxy:
		return evalGrouped(x.inner, x.g)
	case *Literal:
		return x.Value, nil
	case *ColumnRef:
		return env.lookup(x.Table, x.Column)
	case *UnaryExpr:
		v, err := eval(x.Expr, env)
		if err != nil {
			return rel.Null(), err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return rel.Null(), nil
			}
			b, _ := v.AsBool()
			return rel.Bool(!b), nil
		case "-":
			if v.IsNull() {
				return rel.Null(), nil
			}
			if v.Kind() == rel.KindInt {
				i, _ := v.AsInt()
				return rel.Int(-i), nil
			}
			f, ok := v.AsFloat()
			if !ok {
				return rel.Null(), fmt.Errorf("sqlx: cannot negate %v", v)
			}
			return rel.Float(-f), nil
		}
	case *BinaryExpr:
		return evalBinary(x, env)
	case *IsNullExpr:
		v, err := eval(x.Expr, env)
		if err != nil {
			return rel.Null(), err
		}
		return rel.Bool(v.IsNull() != x.Negate), nil
	case *InExpr:
		v, err := eval(x.Expr, env)
		if err != nil {
			return rel.Null(), err
		}
		if v.IsNull() {
			return rel.Null(), nil
		}
		match := false
		if x.Sub != nil {
			// Subquery results are materialized per run (never into the
			// shared AST, which may belong to a cached plan).
			if env.rt == nil {
				return rel.Null(), fmt.Errorf("sqlx: internal: IN subquery not materialized")
			}
			set, ok := env.rt.subs[x]
			if !ok {
				return rel.Null(), fmt.Errorf("sqlx: internal: IN subquery not materialized")
			}
			return rel.Bool(set.contains(v) != x.Negate), nil
		}
		for _, le := range x.List {
			lv, err := eval(le, env)
			if err != nil {
				return rel.Null(), err
			}
			if v.Equal(lv) {
				match = true
				break
			}
		}
		return rel.Bool(match != x.Negate), nil
	case *BetweenExpr:
		v, err := eval(x.Expr, env)
		if err != nil {
			return rel.Null(), err
		}
		lo, err := eval(x.Lo, env)
		if err != nil {
			return rel.Null(), err
		}
		hi, err := eval(x.Hi, env)
		if err != nil {
			return rel.Null(), err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return rel.Null(), nil
		}
		in := v.Compare(lo) >= 0 && v.Compare(hi) <= 0
		return rel.Bool(in != x.Negate), nil
	case *FuncExpr:
		if aggregateFuncs[x.Name] {
			return rel.Null(), fmt.Errorf("sqlx: aggregate %s not allowed here", x.Name)
		}
		return evalScalarFunc(x, env)
	}
	return rel.Null(), fmt.Errorf("sqlx: cannot evaluate %T", e)
}

func evalBinary(x *BinaryExpr, env *env) (rel.Value, error) {
	l, err := eval(x.Left, env)
	if err != nil {
		return rel.Null(), err
	}
	// Short-circuit AND/OR with three-valued logic.
	switch x.Op {
	case "AND":
		if !l.IsNull() {
			if b, _ := l.AsBool(); !b {
				return rel.Bool(false), nil
			}
		}
		r, err := eval(x.Right, env)
		if err != nil {
			return rel.Null(), err
		}
		if l.IsNull() || r.IsNull() {
			if !r.IsNull() {
				if b, _ := r.AsBool(); !b {
					return rel.Bool(false), nil
				}
			}
			return rel.Null(), nil
		}
		lb, _ := l.AsBool()
		rb, _ := r.AsBool()
		return rel.Bool(lb && rb), nil
	case "OR":
		if !l.IsNull() {
			if b, _ := l.AsBool(); b {
				return rel.Bool(true), nil
			}
		}
		r, err := eval(x.Right, env)
		if err != nil {
			return rel.Null(), err
		}
		if l.IsNull() || r.IsNull() {
			if !r.IsNull() {
				if b, _ := r.AsBool(); b {
					return rel.Bool(true), nil
				}
			}
			return rel.Null(), nil
		}
		lb, _ := l.AsBool()
		rb, _ := r.AsBool()
		return rel.Bool(lb || rb), nil
	}
	r, err := eval(x.Right, env)
	if err != nil {
		return rel.Null(), err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return rel.Null(), nil
		}
		c := l.Compare(r)
		switch x.Op {
		case "=":
			return rel.Bool(l.Equal(r)), nil
		case "<>":
			return rel.Bool(!l.Equal(r)), nil
		case "<":
			return rel.Bool(c < 0), nil
		case "<=":
			return rel.Bool(c <= 0), nil
		case ">":
			return rel.Bool(c > 0), nil
		case ">=":
			return rel.Bool(c >= 0), nil
		}
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return rel.Null(), nil
		}
		return rel.Bool(likeMatch(l.AsString(), r.AsString())), nil
	case "||":
		if l.IsNull() || r.IsNull() {
			return rel.Null(), nil
		}
		return rel.Str(l.AsString() + r.AsString()), nil
	case "+", "-", "*", "/", "%":
		if l.IsNull() || r.IsNull() {
			return rel.Null(), nil
		}
		return evalArith(x.Op, l, r)
	}
	return rel.Null(), fmt.Errorf("sqlx: unknown operator %q", x.Op)
}

func evalArith(op string, l, r rel.Value) (rel.Value, error) {
	if l.Kind() == rel.KindInt && r.Kind() == rel.KindInt {
		a, _ := l.AsInt()
		b, _ := r.AsInt()
		switch op {
		case "+":
			return rel.Int(a + b), nil
		case "-":
			return rel.Int(a - b), nil
		case "*":
			return rel.Int(a * b), nil
		case "/":
			if b == 0 {
				return rel.Null(), fmt.Errorf("sqlx: division by zero")
			}
			return rel.Int(a / b), nil
		case "%":
			if b == 0 {
				return rel.Null(), fmt.Errorf("sqlx: division by zero")
			}
			return rel.Int(a % b), nil
		}
	}
	a, okA := l.AsFloat()
	b, okB := r.AsFloat()
	if !okA || !okB {
		return rel.Null(), fmt.Errorf("sqlx: non-numeric operands for %q", op)
	}
	switch op {
	case "+":
		return rel.Float(a + b), nil
	case "-":
		return rel.Float(a - b), nil
	case "*":
		return rel.Float(a * b), nil
	case "/":
		if b == 0 {
			return rel.Null(), fmt.Errorf("sqlx: division by zero")
		}
		return rel.Float(a / b), nil
	case "%":
		if b == 0 {
			return rel.Null(), fmt.Errorf("sqlx: division by zero")
		}
		return rel.Float(math.Mod(a, b)), nil
	}
	return rel.Null(), fmt.Errorf("sqlx: unknown arithmetic op %q", op)
}

// likeMatch implements SQL LIKE with % and _ wildcards (case-insensitive,
// matching common life-science database practice).
func likeMatch(s, pattern string) bool {
	s = strings.ToLower(s)
	pattern = strings.ToLower(pattern)
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func evalScalarFunc(x *FuncExpr, env *env) (rel.Value, error) {
	args := make([]rel.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := eval(a, env)
		if err != nil {
			return rel.Null(), err
		}
		args[i] = v
	}
	switch x.Name {
	case "LENGTH":
		if len(args) != 1 {
			return rel.Null(), fmt.Errorf("sqlx: LENGTH takes 1 argument")
		}
		if args[0].IsNull() {
			return rel.Null(), nil
		}
		return rel.Int(int64(len(args[0].AsString()))), nil
	case "LOWER":
		if len(args) != 1 {
			return rel.Null(), fmt.Errorf("sqlx: LOWER takes 1 argument")
		}
		if args[0].IsNull() {
			return rel.Null(), nil
		}
		return rel.Str(strings.ToLower(args[0].AsString())), nil
	case "UPPER":
		if len(args) != 1 {
			return rel.Null(), fmt.Errorf("sqlx: UPPER takes 1 argument")
		}
		if args[0].IsNull() {
			return rel.Null(), nil
		}
		return rel.Str(strings.ToUpper(args[0].AsString())), nil
	case "TRIM":
		if len(args) != 1 {
			return rel.Null(), fmt.Errorf("sqlx: TRIM takes 1 argument")
		}
		if args[0].IsNull() {
			return rel.Null(), nil
		}
		return rel.Str(strings.TrimSpace(args[0].AsString())), nil
	case "ABS":
		if len(args) != 1 {
			return rel.Null(), fmt.Errorf("sqlx: ABS takes 1 argument")
		}
		if args[0].IsNull() {
			return rel.Null(), nil
		}
		if args[0].Kind() == rel.KindInt {
			i, _ := args[0].AsInt()
			if i < 0 {
				i = -i
			}
			return rel.Int(i), nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return rel.Null(), fmt.Errorf("sqlx: ABS of non-numeric")
		}
		return rel.Float(math.Abs(f)), nil
	case "ROUND":
		if len(args) < 1 || len(args) > 2 {
			return rel.Null(), fmt.Errorf("sqlx: ROUND takes 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return rel.Null(), nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return rel.Null(), fmt.Errorf("sqlx: ROUND of non-numeric")
		}
		digits := int64(0)
		if len(args) == 2 {
			digits, _ = args[1].AsInt()
		}
		scale := math.Pow(10, float64(digits))
		return rel.Float(math.Round(f*scale) / scale), nil
	case "SUBSTR":
		if len(args) < 2 || len(args) > 3 {
			return rel.Null(), fmt.Errorf("sqlx: SUBSTR takes 2 or 3 arguments")
		}
		if args[0].IsNull() {
			return rel.Null(), nil
		}
		s := args[0].AsString()
		start, _ := args[1].AsInt()
		if start < 1 {
			start = 1
		}
		if int(start) > len(s) {
			return rel.Str(""), nil
		}
		rest := s[start-1:]
		if len(args) == 3 {
			n, _ := args[2].AsInt()
			if n < 0 {
				n = 0
			}
			if int(n) < len(rest) {
				rest = rest[:n]
			}
		}
		return rel.Str(rest), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return rel.Null(), nil
	}
	return rel.Null(), fmt.Errorf("sqlx: unknown function %s", x.Name)
}

// equiJoinCols recognizes "a.x = b.y" ON clauses and returns the column
// ref belonging to the left side and the one on the newly joined binding.
func equiJoinCols(on Expr, rightBinding string) (left *ColumnRef, right *ColumnRef, ok bool) {
	be, isBin := on.(*BinaryExpr)
	if !isBin || be.Op != "=" {
		return nil, nil, false
	}
	l, lok := be.Left.(*ColumnRef)
	r, rok := be.Right.(*ColumnRef)
	if !lok || !rok {
		return nil, nil, false
	}
	if strings.EqualFold(r.Table, rightBinding) {
		return l, r, true
	}
	if strings.EqualFold(l.Table, rightBinding) {
		return r, l, true
	}
	return nil, nil, false
}

func extend(e *env, name string, schema *rel.Schema, t rel.Tuple) *env {
	bs := make([]binding, len(e.bindings)+1)
	copy(bs, e.bindings)
	bs[len(e.bindings)] = binding{name: name, schema: schema, tuple: t}
	return &env{bindings: bs, rt: e.rt}
}

// expandItems resolves stars into column references and computes output
// column names.
func expandItems(db *rel.Database, s *SelectStmt) ([]SelectItem, []string, error) {
	var items []SelectItem
	var names []string
	// Determine bindings from the FROM clause (schema info only; no data
	// is read, so expansion also serves plan-time validation).
	type bind struct {
		name   string
		schema *rel.Schema
	}
	var binds []bind
	if s.From != nil {
		baseRel := db.Relation(s.From.Name)
		if baseRel == nil {
			return nil, nil, fmt.Errorf("sqlx: no such table %q", s.From.Name)
		}
		binds = append(binds, bind{s.From.Binding(), baseRel.Schema})
		for _, j := range s.Joins {
			r := db.Relation(j.Table.Name)
			if r == nil {
				return nil, nil, fmt.Errorf("sqlx: no such table %q", j.Table.Name)
			}
			binds = append(binds, bind{j.Table.Binding(), r.Schema})
		}
	}
	for _, it := range s.Items {
		if !it.Star {
			items = append(items, it)
			names = append(names, itemName(it))
			continue
		}
		for _, b := range binds {
			if it.StarTable != "" && !strings.EqualFold(it.StarTable, b.name) {
				continue
			}
			for _, c := range b.schema.Columns {
				items = append(items, SelectItem{Expr: &ColumnRef{Table: b.name, Column: c.Name}})
				names = append(names, c.Name)
			}
		}
	}
	return items, names, nil
}

func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*ColumnRef); ok {
		return cr.Column
	}
	if f, ok := it.Expr.(*FuncExpr); ok {
		return strings.ToLower(f.Name)
	}
	return "expr"
}

// aggState accumulates one aggregate within one group.
type aggState struct {
	count    int
	sum      float64
	sumInt   int64
	intOnly  bool
	min, max rel.Value
	distinct valueSet
}

func newAggState() *aggState { return &aggState{intOnly: true} }

func (a *aggState) add(v rel.Value, distinct bool) {
	if v.IsNull() {
		return
	}
	if distinct {
		// Deduplicate under Key() identity via the open-addressing value
		// set — no key string is built per input value.
		if !a.distinct.insert(v) {
			return
		}
	}
	a.count++
	if f, ok := v.AsFloat(); ok {
		a.sum += f
	}
	if v.Kind() == rel.KindInt {
		i, _ := v.AsInt()
		a.sumInt += i
	} else {
		a.intOnly = false
	}
	if a.min.IsNull() || v.Compare(a.min) < 0 {
		a.min = v
	}
	if a.max.IsNull() || v.Compare(a.max) > 0 {
		a.max = v
	}
}

func (a *aggState) result(fn string) rel.Value {
	switch fn {
	case "COUNT":
		return rel.Int(int64(a.count))
	case "SUM":
		if a.count == 0 {
			return rel.Null()
		}
		if a.intOnly {
			return rel.Int(a.sumInt)
		}
		return rel.Float(a.sum)
	case "AVG":
		if a.count == 0 {
			return rel.Null()
		}
		return rel.Float(a.sum / float64(a.count))
	case "MIN":
		return a.min
	case "MAX":
		return a.max
	}
	return rel.Null()
}

// group carries the representative env and aggregate states of one group.
type group struct {
	repr *env
	aggs map[*FuncExpr]*aggState
	star int // COUNT(*) count
}

// collectAggs gathers aggregate FuncExpr nodes from an expression.
func collectAggs(e Expr, out *[]*FuncExpr) {
	switch x := e.(type) {
	case *FuncExpr:
		if aggregateFuncs[x.Name] {
			*out = append(*out, x)
			return
		}
		for _, a := range x.Args {
			collectAggs(a, out)
		}
	case *BinaryExpr:
		collectAggs(x.Left, out)
		collectAggs(x.Right, out)
	case *UnaryExpr:
		collectAggs(x.Expr, out)
	case *IsNullExpr:
		collectAggs(x.Expr, out)
	case *BetweenExpr:
		collectAggs(x.Expr, out)
		collectAggs(x.Lo, out)
		collectAggs(x.Hi, out)
	case *InExpr:
		collectAggs(x.Expr, out)
		for _, a := range x.List {
			collectAggs(a, out)
		}
	}
}

func execGrouped(s *SelectStmt, items []SelectItem, envs []*env, rt *run) ([]rel.Tuple, error) {
	// Collect all aggregate expressions in items + HAVING.
	var aggs []*FuncExpr
	for _, it := range items {
		collectAggs(it.Expr, &aggs)
	}
	if s.Having != nil {
		collectAggs(s.Having, &aggs)
	}
	groups := make(map[string]*group)
	var order []string
	// The composite group key is rendered into reused scratch buffers
	// (same injective encoding as rel.KeyJoin over the parts' Key()
	// strings); only a new group pays for the string the map retains.
	keyVals := make([]rel.Value, len(s.GroupBy))
	var keyBuf []byte
	for _, e := range envs {
		for ki, ge := range s.GroupBy {
			v, err := eval(ge, e)
			if err != nil {
				return nil, err
			}
			keyVals[ki] = v
		}
		keyBuf = rel.AppendTupleKey(keyBuf[:0], rel.Tuple(keyVals))
		g, ok := groups[string(keyBuf)]
		if !ok {
			g = &group{repr: e, aggs: make(map[*FuncExpr]*aggState)}
			for _, a := range aggs {
				g.aggs[a] = newAggState()
			}
			key := string(keyBuf)
			groups[key] = g
			order = append(order, key)
		}
		g.star++
		for _, a := range aggs {
			if a.Star {
				continue
			}
			if len(a.Args) != 1 {
				return nil, fmt.Errorf("sqlx: aggregate %s takes 1 argument", a.Name)
			}
			v, err := eval(a.Args[0], e)
			if err != nil {
				return nil, err
			}
			g.aggs[a].add(v, a.Distinct)
		}
	}
	// Aggregates over empty input with no GROUP BY produce one row.
	if len(groups) == 0 && len(s.GroupBy) == 0 {
		g := &group{repr: &env{rt: rt}, aggs: make(map[*FuncExpr]*aggState)}
		for _, a := range aggs {
			g.aggs[a] = newAggState()
		}
		groups[""] = g
		order = append(order, "")
	}
	var rows []rel.Tuple
	for _, key := range order {
		g := groups[key]
		if s.Having != nil {
			v, err := evalGrouped(s.Having, g)
			if err != nil {
				return nil, err
			}
			if b, ok := v.AsBool(); !ok || !b {
				continue
			}
		}
		row := make(rel.Tuple, len(items))
		for i, it := range items {
			v, err := evalGrouped(it.Expr, g)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// evalGrouped evaluates an expression replacing aggregate nodes with their
// accumulated results; bare columns evaluate against the representative.
func evalGrouped(e Expr, g *group) (rel.Value, error) {
	if f, ok := e.(*FuncExpr); ok && aggregateFuncs[f.Name] {
		st, present := g.aggs[f]
		if !present {
			return rel.Null(), fmt.Errorf("sqlx: internal: missing aggregate state for %s", f.Name)
		}
		if f.Star {
			if f.Name != "COUNT" {
				return rel.Null(), fmt.Errorf("sqlx: %s(*) not supported", f.Name)
			}
			return rel.Int(int64(g.star)), nil
		}
		return st.result(f.Name), nil
	}
	switch x := e.(type) {
	case *BinaryExpr:
		return evalBinary(&BinaryExpr{Op: x.Op, Left: groupedProxy{x.Left, g}, Right: groupedProxy{x.Right, g}}, g.repr)
	case *UnaryExpr:
		return eval(&UnaryExpr{Op: x.Op, Expr: groupedProxy{x.Expr, g}}, g.repr)
	case *FuncExpr:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = groupedProxy{a, g}
		}
		return evalScalarFunc(&FuncExpr{Name: x.Name, Args: args}, g.repr)
	}
	return eval(e, g.repr)
}

// groupedProxy lets evalBinary recurse through grouped evaluation: it is an
// Expr whose evaluation routes back to evalGrouped.
type groupedProxy struct {
	inner Expr
	g     *group
}

func (groupedProxy) expr() {}

// evalOrderKey evaluates an ORDER BY key: aliases and ordinal positions
// refer to output columns, everything else evaluates in the row env.
func evalOrderKey(e Expr, items []SelectItem, row rel.Tuple, en *env) (rel.Value, error) {
	if lit, ok := e.(*Literal); ok && lit.Value.Kind() == rel.KindInt {
		pos, _ := lit.Value.AsInt()
		if pos >= 1 && int(pos) <= len(row) {
			return row[pos-1], nil
		}
	}
	if cr, ok := e.(*ColumnRef); ok && cr.Table == "" {
		for i, it := range items {
			if strings.EqualFold(it.Alias, cr.Column) {
				return row[i], nil
			}
		}
	}
	return eval(e, en)
}

// exprString renders an expression canonically for structural comparison.
func exprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *Literal:
		return x.Value.String()
	case *ColumnRef:
		return strings.ToLower(x.Table) + "." + strings.ToLower(x.Column)
	case *BinaryExpr:
		return "(" + exprString(x.Left) + x.Op + exprString(x.Right) + ")"
	case *UnaryExpr:
		return x.Op + "(" + exprString(x.Expr) + ")"
	case *FuncExpr:
		parts := make([]string, 0, len(x.Args)+1)
		if x.Star {
			parts = append(parts, "*")
		}
		for _, a := range x.Args {
			parts = append(parts, exprString(a))
		}
		d := ""
		if x.Distinct {
			d = "D:"
		}
		return x.Name + "(" + d + strings.Join(parts, ",") + ")"
	case *IsNullExpr:
		return "isnull(" + exprString(x.Expr) + fmt.Sprintf(",%v)", x.Negate)
	case *InExpr:
		parts := make([]string, len(x.List))
		for i, a := range x.List {
			parts[i] = exprString(a)
		}
		return "in(" + exprString(x.Expr) + ";" + strings.Join(parts, ",") + fmt.Sprintf(";%v)", x.Negate)
	case *BetweenExpr:
		return "between(" + exprString(x.Expr) + ";" + exprString(x.Lo) + ";" + exprString(x.Hi) + ")"
	}
	return fmt.Sprintf("%T", e)
}

func execInsert(db *rel.Database, s *InsertStmt) (*Result, error) {
	r := db.Relation(s.Table)
	if r == nil {
		return nil, fmt.Errorf("sqlx: no such table %q", s.Table)
	}
	cols := s.Columns
	if len(cols) == 0 {
		cols = r.Schema.Names()
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := r.Schema.Index(c)
		if j < 0 {
			return nil, fmt.Errorf("sqlx: no column %q in %q", c, s.Table)
		}
		idx[i] = j
	}
	empty := &env{}
	for _, row := range s.Rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("sqlx: INSERT arity mismatch: %d values for %d columns", len(row), len(cols))
		}
		t := make(rel.Tuple, r.Schema.Len())
		for i := range t {
			t[i] = rel.Null()
		}
		for i, e := range row {
			v, err := eval(e, empty)
			if err != nil {
				return nil, err
			}
			t[idx[i]] = v
		}
		r.Append(t)
	}
	return &Result{Affected: len(s.Rows)}, nil
}

func execCreateTable(db *rel.Database, s *CreateTableStmt) (*Result, error) {
	if db.Relation(s.Table) != nil {
		if s.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("sqlx: table %q already exists", s.Table)
	}
	cols := make([]rel.Column, len(s.Columns))
	for i, cd := range s.Columns {
		cols[i] = rel.Column{Name: cd.Name, Kind: cd.Kind}
	}
	r := db.Create(s.Table, rel.NewSchema(cols...))
	for _, cd := range s.Columns {
		if cd.PrimaryKey {
			r.PrimaryKey = cd.Name
			r.UniqueCols[strings.ToLower(cd.Name)] = true
		}
		if cd.Unique {
			r.UniqueCols[strings.ToLower(cd.Name)] = true
		}
		if cd.References != nil {
			r.ForeignKeys = append(r.ForeignKeys, *cd.References)
		}
	}
	// Auto-index the declared keys; Append maintains them on INSERT.
	r.EnsureIndexes()
	return &Result{}, nil
}

func execDropTable(db *rel.Database, s *DropTableStmt) (*Result, error) {
	if db.Relation(s.Table) == nil {
		if s.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("sqlx: no such table %q", s.Table)
	}
	db.Drop(s.Table)
	return &Result{}, nil
}

func execUpdate(ctx context.Context, db *rel.Database, s *UpdateStmt) (*Result, error) {
	r := db.Relation(s.Table)
	if r == nil {
		return nil, fmt.Errorf("sqlx: no such table %q", s.Table)
	}
	rt := newRun()
	if err := rt.materializeSubqueries(ctx, db, s.Where); err != nil {
		return nil, err
	}
	idx := make([]int, len(s.Set))
	for i, a := range s.Set {
		j := r.Schema.Index(a.Column)
		if j < 0 {
			return nil, fmt.Errorf("sqlx: no column %q in %q", a.Column, s.Table)
		}
		idx[i] = j
	}
	n := 0
	for ti, t := range r.Tuples {
		e := &env{rt: rt, bindings: []binding{{name: s.Table, schema: r.Schema, tuple: t}}}
		if s.Where != nil {
			v, err := eval(s.Where, e)
			if err != nil {
				return nil, err
			}
			if b, ok := v.AsBool(); !ok || !b {
				continue
			}
		}
		for i, a := range s.Set {
			v, err := eval(a.Value, e)
			if err != nil {
				return nil, err
			}
			r.Tuples[ti][idx[i]] = v
		}
		n++
	}
	if n > 0 {
		r.RebuildIndexes()
	}
	return &Result{Affected: n}, nil
}

func execDelete(ctx context.Context, db *rel.Database, s *DeleteStmt) (*Result, error) {
	r := db.Relation(s.Table)
	if r == nil {
		return nil, fmt.Errorf("sqlx: no such table %q", s.Table)
	}
	rt := newRun()
	if err := rt.materializeSubqueries(ctx, db, s.Where); err != nil {
		return nil, err
	}
	var kept []rel.Tuple
	n := 0
	for _, t := range r.Tuples {
		e := &env{rt: rt, bindings: []binding{{name: s.Table, schema: r.Schema, tuple: t}}}
		del := s.Where == nil
		if s.Where != nil {
			v, err := eval(s.Where, e)
			if err != nil {
				return nil, err
			}
			if b, ok := v.AsBool(); ok && b {
				del = true
			}
		}
		if del {
			n++
		} else {
			kept = append(kept, t)
		}
	}
	r.Tuples = kept
	if n > 0 {
		r.RebuildIndexes()
	}
	return &Result{Affected: n}, nil
}
