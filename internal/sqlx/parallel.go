package sqlx

import (
	"context"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/rel"
)

// Morsel-style parallel query execution over an immutable snapshot: the
// base table scan is partitioned into fixed-size morsels, each morsel
// runs the whole scan→filter→join→residual chain on a worker, and an
// exchange operator re-serializes the buffered morsel outputs in morsel
// order — so results are bit-identical to serial execution — before the
// pull-based serial operators (projection, grouping, ORDER BY, LIMIT)
// consume them. Pipeline state above the exchange stays single-threaded.

// morselSize is how many base tuples one morsel covers. Large enough to
// amortize per-morsel chain setup, small enough to balance skew.
const morselSize = 1024

// lookaheadPerWorker bounds how many morsels may be buffered but not yet
// consumed, per worker — backpressure so a slow consumer does not
// materialize the whole result.
const lookaheadPerWorker = 4

// openMaybeParallel opens the scan chain serially, or as parallel
// morsels when the run requests workers and the chain is eligible:
// a sequential (non-index) base scan and no build-left hash join (its
// output order follows the right side, which morsel order cannot
// preserve, and it drains its whole child per morsel).
func openMaybeParallel(ctx context.Context, sel *selectAccess, lg *logicalSelect, rt *run, bm *selMeters) (opIter, error) {
	n := len(sel.scan.r.Tuples)
	if rt.workers > 1 && parallelOK(sel) && n > morselSize {
		morsels := (n + morselSize - 1) / morselSize
		workers := rt.workers
		if workers > morsels {
			workers = morsels
		}
		if err := prebuildJoinSides(ctx, sel, rt, workers); err != nil {
			return nil, err
		}
		it := openExchange(ctx, sel, lg, rt, bm, workers, n, morsels)
		if bm != nil {
			bm.gatherWorkers, bm.gatherMorsels = workers, morsels
			bm.gather = &opMeter{}
			it = &meterIter{child: it, m: bm.gather}
		}
		return it, nil
	}
	return openChain(sel, lg, rt, bm, 0, n), nil
}

// parallelOK reports whether the bound chain can run partitioned.
func parallelOK(sel *selectAccess) bool {
	if sel.scan == nil || sel.scan.idx != nil {
		return false
	}
	for _, ja := range sel.joins {
		if ja.strategy == joinHashBuildLeft {
			return false
		}
	}
	return true
}

// prebuildJoinSides materializes the shared right sides of the chain's
// joins once, so morsel chains do not redo the work per morsel: the
// joinHashBuildRight hash table (built in parallel partitions) and the
// filtered joinCrossSeq tuple list.
func prebuildJoinSides(ctx context.Context, sel *selectAccess, rt *run, workers int) error {
	for _, ja := range sel.joins {
		switch ja.strategy {
		case joinHashBuildRight:
			tbl, err := buildSharedHash(ctx, ja, rt, workers)
			if err != nil {
				return err
			}
			ja.prebuilt = tbl
		case joinCrossSeq:
			if len(ja.filters) == 0 {
				ja.precross = ja.right.Tuples
				continue
			}
			var out []rel.Tuple
			for _, t := range ja.right.Tuples {
				if err := rt.tick(ctx); err != nil {
					return err
				}
				ok, err := rightFilterOK(ja.filters, ja.binding, ja.right.Schema, t, rt)
				if err != nil {
					return err
				}
				if ok {
					out = append(out, t)
				}
			}
			ja.precross = out
		}
	}
	return nil
}

// buildSharedHash builds the joinHashBuildRight table with a
// partitioned parallel build: contiguous input chunks are hashed
// independently and merged in chunk order, so per-key tuple order
// matches the serial lazy build exactly.
func buildSharedHash(ctx context.Context, ja *joinAccess, rt *run, workers int) (map[string][]rel.Tuple, error) {
	tuples := ja.right.Tuples
	if len(tuples) < morselSize || workers <= 1 {
		workers = 1
	}
	parts := make([]map[string][]rel.Tuple, workers)
	errs := make([]error, workers)
	chunk := (len(tuples) + workers - 1) / workers
	_ = parallel.For(ctx, workers, workers, func(w int) {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(tuples) {
			hi = len(tuples)
		}
		part := make(map[string][]rel.Tuple)
		wrt := &run{subs: rt.subs}
		for _, t := range tuples[lo:hi] {
			if err := wrt.tick(ctx); err != nil {
				errs[w] = err
				break
			}
			ok, err := rightFilterOK(ja.filters, ja.binding, ja.right.Schema, t, wrt)
			if err != nil {
				errs[w] = err
				break
			}
			if !ok {
				continue
			}
			v := t[ja.rightIdx]
			if v.IsNull() {
				continue
			}
			k := v.Key()
			part[k] = append(part[k], t)
		}
		parts[w] = part
		atomic.AddInt64(&rt.scanned, atomic.LoadInt64(&wrt.scanned))
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make(map[string][]rel.Tuple)
	for _, part := range parts {
		for k, ts := range part {
			out[k] = append(out[k], ts...)
		}
	}
	return out, nil
}

// gate is the backpressure window between morsel producers and the
// exchange consumer: morsel i may start only once fewer than window
// morsels are buffered ahead of the consumer. The condition depends on
// the morsel index, so the consumer's next morsel is never blocked —
// no token-grant unfairness, no deadlock.
type gate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	base   int // morsels fully consumed
	window int
}

func newGate(window int) *gate {
	g := &gate{window: window}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *gate) wait(ctx context.Context, i int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i >= g.base+g.window {
		if err := ctx.Err(); err != nil {
			return err
		}
		g.cond.Wait()
	}
	return ctx.Err()
}

func (g *gate) advance() {
	g.mu.Lock()
	g.base++
	g.cond.Broadcast()
	g.mu.Unlock()
}

// morselSlot buffers one morsel's chain output.
type morselSlot struct {
	items []item
	err   error
	ready chan struct{}
}

// exchangeIter is the parallel→serial exchange: workers fill slots out
// of order, the consumer drains them strictly in morsel order. A morsel
// error is surfaced after the rows that precede it, exactly where
// serial execution would have stopped.
type exchangeIter struct {
	slots []*morselSlot
	g     *gate
	cur   int
	pos   int
}

func openExchange(ctx context.Context, sel *selectAccess, lg *logicalSelect, rt *run, bm *selMeters, workers, n, morsels int) opIter {
	cctx, cancel := context.WithCancel(ctx)
	rt.closers = append(rt.closers, cancel)
	ex := &exchangeIter{g: newGate(workers * lookaheadPerWorker)}
	for i := 0; i < morsels; i++ {
		ex.slots = append(ex.slots, &morselSlot{ready: make(chan struct{})})
	}
	// Wake gate waiters when the cursor is closed or canceled. The
	// mutex is taken so the broadcast cannot slip between a waiter's
	// ctx check and its Wait (lost wakeup).
	go func() {
		<-cctx.Done()
		ex.g.mu.Lock()
		ex.g.cond.Broadcast()
		ex.g.mu.Unlock()
	}()
	go func() {
		defer func() {
			// A worker panic must not be silently swallowed in a
			// detached goroutine: convert it into a morsel error at the
			// first unfinished slot so the consumer surfaces it.
			if r := recover(); r != nil {
				for _, slot := range ex.slots {
					select {
					case <-slot.ready:
					default:
						if slot.err == nil {
							if err, ok := r.(error); ok {
								slot.err = err
							} else {
								slot.err = context.Canceled
							}
						}
						close(slot.ready)
					}
				}
			}
		}()
		_ = parallel.For(cctx, workers, morsels, func(i int) {
			slot := ex.slots[i]
			defer close(slot.ready)
			if err := ex.g.wait(cctx, i); err != nil {
				slot.err = err
				return
			}
			lo := i * morselSize
			hi := lo + morselSize
			if hi > n {
				hi = n
			}
			mrt := &run{subs: rt.subs}
			it := openChain(sel, lg, mrt, bm, lo, hi)
			for {
				itm, err := it.next(cctx)
				if err == io.EOF {
					break
				}
				if err != nil {
					slot.err = err
					break
				}
				slot.items = append(slot.items, itm)
			}
			atomic.AddInt64(&rt.scanned, atomic.LoadInt64(&mrt.scanned))
		})
	}()
	return ex
}

func (ex *exchangeIter) next(ctx context.Context) (item, error) {
	for {
		if ex.cur >= len(ex.slots) {
			return item{}, io.EOF
		}
		slot := ex.slots[ex.cur]
		select {
		case <-slot.ready:
		case <-ctx.Done():
			return item{}, ctx.Err()
		}
		if ex.pos < len(slot.items) {
			itm := slot.items[ex.pos]
			ex.pos++
			return itm, nil
		}
		if slot.err != nil {
			return item{}, slot.err
		}
		slot.items = nil // release morsel memory as it is consumed
		ex.cur++
		ex.pos = 0
		ex.g.advance()
	}
}

// vecOpenMaybeParallel mirrors openMaybeParallel for the batch engine:
// same eligibility rule, same morsel partitioning, same gate-windowed
// exchange — but each morsel runs the vectorized chain and the exchange
// hands out batch slices instead of single items.
func vecOpenMaybeParallel(ctx context.Context, sel *selectAccess, lg *logicalSelect, rt *run, bm *selMeters) (vecIter, error) {
	n := len(sel.scan.r.Tuples)
	if rt.workers > 1 && parallelOK(sel) && n > morselSize {
		morsels := (n + morselSize - 1) / morselSize
		workers := rt.workers
		if workers > morsels {
			workers = morsels
		}
		if err := vecPrebuildJoinSides(ctx, sel, rt); err != nil {
			return nil, err
		}
		it := vecOpenExchange(ctx, sel, lg, rt, bm, workers, n, morsels)
		if bm != nil {
			bm.gatherWorkers, bm.gatherMorsels = workers, morsels
			bm.gather = &opMeter{}
			it = &vecMeter{child: it, m: bm.gather}
		}
		return it, nil
	}
	return vecOpenChain(sel, lg, rt, bm, 0, n), nil
}

// vecPrebuildJoinSides is prebuildJoinSides for the batch engine: the
// shared joinHashBuildRight table is the open-addressing joinTable
// (built serially — the build reads every right tuple exactly once,
// matching the serial lazy build's Scanned contribution), plus the same
// filtered joinCrossSeq list.
func vecPrebuildJoinSides(ctx context.Context, sel *selectAccess, rt *run) error {
	for _, ja := range sel.joins {
		switch ja.strategy {
		case joinHashBuildRight:
			tbl := &joinTable{}
			for _, t := range ja.right.Tuples {
				if err := rt.tick(ctx); err != nil {
					return err
				}
				ok, err := rightFilterOK(ja.filters, ja.binding, ja.right.Schema, t, rt)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				v := t[ja.rightIdx]
				if v.IsNull() {
					continue
				}
				tbl.insert(v, t)
			}
			ja.prevec = tbl
		case joinCrossSeq:
			if len(ja.filters) == 0 {
				ja.precross = ja.right.Tuples
				continue
			}
			var out []rel.Tuple
			for _, t := range ja.right.Tuples {
				if err := rt.tick(ctx); err != nil {
					return err
				}
				ok, err := rightFilterOK(ja.filters, ja.binding, ja.right.Schema, t, rt)
				if err != nil {
					return err
				}
				if ok {
					out = append(out, t)
				}
			}
			ja.precross = out
		}
	}
	return nil
}

// vecExchangeIter is exchangeIter's batch twin: the consumer hands out
// slices of the current slot's buffered items, up to want per call.
type vecExchangeIter struct {
	slots []*morselSlot
	g     *gate
	cur   int
	pos   int
}

func vecOpenExchange(ctx context.Context, sel *selectAccess, lg *logicalSelect, rt *run, bm *selMeters, workers, n, morsels int) vecIter {
	cctx, cancel := context.WithCancel(ctx)
	rt.closers = append(rt.closers, cancel)
	ex := &vecExchangeIter{g: newGate(workers * lookaheadPerWorker)}
	for i := 0; i < morsels; i++ {
		ex.slots = append(ex.slots, &morselSlot{ready: make(chan struct{})})
	}
	// Wake gate waiters when the cursor is closed or canceled (see
	// openExchange for the lost-wakeup note).
	go func() {
		<-cctx.Done()
		ex.g.mu.Lock()
		ex.g.cond.Broadcast()
		ex.g.mu.Unlock()
	}()
	go func() {
		defer func() {
			if r := recover(); r != nil {
				for _, slot := range ex.slots {
					select {
					case <-slot.ready:
					default:
						if slot.err == nil {
							if err, ok := r.(error); ok {
								slot.err = err
							} else {
								slot.err = context.Canceled
							}
						}
						close(slot.ready)
					}
				}
			}
		}()
		_ = parallel.For(cctx, workers, morsels, func(i int) {
			slot := ex.slots[i]
			defer close(slot.ready)
			if err := ex.g.wait(cctx, i); err != nil {
				slot.err = err
				return
			}
			lo := i * morselSize
			hi := lo + morselSize
			if hi > n {
				hi = n
			}
			mrt := &run{subs: rt.subs, vec: true}
			it := vecOpenChain(sel, lg, mrt, bm, lo, hi)
			for {
				items, err := it.next(cctx, vecBatch)
				if err == io.EOF {
					break
				}
				if err != nil {
					slot.err = err
					break
				}
				// Batch arenas are never reused, so buffering the item
				// structs (env pointers) is safe.
				slot.items = append(slot.items, items...)
			}
			atomic.AddInt64(&rt.scanned, atomic.LoadInt64(&mrt.scanned))
		})
	}()
	return ex
}

func (ex *vecExchangeIter) next(ctx context.Context, want int) ([]item, error) {
	for {
		if ex.cur >= len(ex.slots) {
			return nil, io.EOF
		}
		slot := ex.slots[ex.cur]
		select {
		case <-slot.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if ex.pos < len(slot.items) {
			n := len(slot.items) - ex.pos
			if n > want {
				n = want
			}
			out := slot.items[ex.pos : ex.pos+n]
			ex.pos += n
			return out, nil
		}
		if slot.err != nil {
			return nil, slot.err
		}
		slot.items = nil // release morsel memory as it is consumed
		ex.cur++
		ex.pos = 0
		ex.g.advance()
	}
}
