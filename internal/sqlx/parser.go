package sqlx

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rel"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sqlx: unexpected trailing input %q at offset %d", p.peek().text, p.peek().pos)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) backup()     { p.i-- }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

// acceptSymbol consumes the symbol if present.
func (p *parser) acceptSymbol(sym string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sqlx: expected %s, found %q at offset %d", kw, p.peek().text, p.peek().pos)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return fmt.Errorf("sqlx: expected %q, found %q at offset %d", sym, p.peek().text, p.peek().pos)
	}
	return nil
}

// expectIdent consumes an identifier (or a non-reserved keyword used as a
// name) and returns its text.
func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.next()
		return t.text, nil
	}
	// Permit keywords like KEY, TEXT as identifiers where unambiguous.
	if t.kind == tokKeyword {
		switch t.text {
		case "KEY", "TEXT", "INT", "COUNT", "MIN", "MAX", "SUM", "AVG", "ALL":
			p.next()
			return strings.ToLower(t.text), nil
		}
	}
	return "", fmt.Errorf("sqlx: expected identifier, found %q at offset %d", t.text, t.pos)
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, fmt.Errorf("sqlx: expected statement keyword, found %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "CREATE":
		return p.parseCreateTable()
	case "DROP":
		return p.parseDropTable()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	}
	return nil, fmt.Errorf("sqlx: unsupported statement %q", t.text)
}

// parseSelect parses a full SELECT including UNION chains; ORDER BY,
// LIMIT and OFFSET bind to the whole chain.
func (p *parser) parseSelect() (*SelectStmt, error) {
	head, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	cur := head
	for p.acceptKeyword("UNION") {
		all := p.acceptKeyword("ALL")
		next, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		cur.Union = next
		cur.UnionAll = all
		cur = next
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			head.OrderBy = append(head.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		head.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		head.Offset = n
	}
	return head, nil
}

// parseSelectCore parses one SELECT without ORDER BY/LIMIT/OFFSET.
func (p *parser) parseSelectCore() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	if p.acceptKeyword("DISTINCT") {
		s.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		s.From = tr
		for {
			j, ok, err := p.parseJoin()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			s.Joins = append(s.Joins, j)
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	return s, nil
}

func (p *parser) parseIntLiteral() (int, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("sqlx: expected number, found %q", t.text)
	}
	p.next()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("sqlx: bad integer %q", t.text)
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// "*" or "ident.*"
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	if p.peek().kind == tokIdent && p.i+2 < len(p.toks) &&
		p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "." &&
		p.toks[p.i+2].kind == tokSymbol && p.toks[p.i+2].text == "*" {
		tbl := p.next().text
		p.next() // .
		p.next() // *
		return SelectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (*TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	tr := &TableRef{Name: name}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		tr.Alias = a
	} else if p.peek().kind == tokIdent {
		tr.Alias = p.next().text
	}
	return tr, nil
}

// parseJoin parses one JOIN clause if present.
func (p *parser) parseJoin() (Join, bool, error) {
	kind := JoinInner
	switch {
	case p.acceptKeyword("JOIN"):
	case p.acceptKeyword("INNER"):
		if err := p.expectKeyword("JOIN"); err != nil {
			return Join{}, false, err
		}
	case p.acceptKeyword("LEFT"):
		p.acceptKeyword("OUTER")
		if err := p.expectKeyword("JOIN"); err != nil {
			return Join{}, false, err
		}
		kind = JoinLeft
	case p.acceptKeyword("CROSS"):
		if err := p.expectKeyword("JOIN"); err != nil {
			return Join{}, false, err
		}
		kind = JoinCross
	case p.acceptSymbol(","):
		kind = JoinCross
	default:
		return Join{}, false, nil
	}
	tr, err := p.parseTableRef()
	if err != nil {
		return Join{}, false, err
	}
	j := Join{Kind: kind, Table: tr}
	if kind != JoinCross {
		if err := p.expectKeyword("ON"); err != nil {
			return Join{}, false, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return Join{}, false, err
		}
		j.On = on
	}
	return j, true, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name}
	if p.acceptSymbol("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseCreateTable() (*CreateTableStmt, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	ct := &CreateTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ct.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ct.Table = name
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		cd, err := p.parseColumnDef(ct.Table)
		if err != nil {
			return nil, err
		}
		ct.Columns = append(ct.Columns, cd)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) parseColumnDef(table string) (ColumnDef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return ColumnDef{}, err
	}
	cd := ColumnDef{Name: name, Kind: rel.KindString}
	t := p.peek()
	if t.kind == tokKeyword {
		switch t.text {
		case "INTEGER", "INT":
			cd.Kind = rel.KindInt
			p.next()
		case "REAL", "FLOAT":
			cd.Kind = rel.KindFloat
			p.next()
		case "TEXT":
			cd.Kind = rel.KindString
			p.next()
		case "VARCHAR":
			cd.Kind = rel.KindString
			p.next()
			if p.acceptSymbol("(") {
				if _, err := p.parseIntLiteral(); err != nil {
					return ColumnDef{}, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return ColumnDef{}, err
				}
			}
		case "BOOLEAN":
			cd.Kind = rel.KindBool
			p.next()
		}
	}
	for {
		switch {
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return ColumnDef{}, err
			}
			cd.PrimaryKey = true
		case p.acceptKeyword("UNIQUE"):
			cd.Unique = true
		case p.acceptKeyword("REFERENCES"):
			toTable, err := p.expectIdent()
			if err != nil {
				return ColumnDef{}, err
			}
			toCol := ""
			if p.acceptSymbol("(") {
				toCol, err = p.expectIdent()
				if err != nil {
					return ColumnDef{}, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return ColumnDef{}, err
				}
			}
			cd.References = &rel.ForeignKey{
				FromRelation: table, FromColumn: name,
				ToRelation: toTable, ToColumn: toCol,
			}
		case p.acceptKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return ColumnDef{}, err
			}
		default:
			return cd, nil
		}
	}
}

func (p *parser) parseDropTable() (*DropTableStmt, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	d := &DropTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		d.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d.Table = name
	return d, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	u := &UpdateStmt{Table: name}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, Assignment{Column: col, Value: e})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = e
	}
	return u, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = e
	}
	return d, nil
}

// Expression grammar (precedence climbing):
//   expr    := orExpr
//   orExpr  := andExpr (OR andExpr)*
//   andExpr := notExpr (AND notExpr)*
//   notExpr := NOT notExpr | predicate
//   predicate := addExpr [ cmpOp addExpr | IS [NOT] NULL | [NOT] IN (...) | [NOT] LIKE addExpr | [NOT] BETWEEN addExpr AND addExpr ]
//   addExpr := mulExpr (("+"|"-"|"||") mulExpr)*
//   mulExpr := unary (("*"|"/"|"%") unary)*
//   unary   := "-" unary | primary
//   primary := literal | funcCall | columnRef | "(" expr ")"

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// comparison operators
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "<", "<=", ">", ">=", "<>", "!=":
			p.next()
			op := t.text
			if op == "!=" {
				op = "<>"
			}
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	negate := false
	if p.peek().kind == tokKeyword && p.peek().text == "NOT" &&
		p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tokKeyword {
		switch p.toks[p.i+1].text {
		case "IN", "LIKE", "BETWEEN":
			p.next()
			negate = true
		}
	}
	switch {
	case p.acceptKeyword("IS"):
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Expr: left, Negate: neg}, nil
	case p.acceptKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &InExpr{Expr: left, Sub: sub, Negate: negate}, nil
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{Expr: left, List: list, Negate: negate}, nil
	case p.acceptKeyword("LIKE"):
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		e := Expr(&BinaryExpr{Op: "LIKE", Left: left, Right: right})
		if negate {
			e = &UnaryExpr{Op: "NOT", Expr: e}
		}
		return e, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Expr: left, Lo: lo, Hi: hi, Negate: negate}, nil
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-" || t.text == "||") {
			p.next()
			right, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Expr: e}, nil
	}
	return p.parsePrimary()
}

var scalarFuncs = map[string]bool{
	"LENGTH": true, "LOWER": true, "UPPER": true, "SUBSTR": true,
	"ABS": true, "TRIM": true, "COALESCE": true, "ROUND": true,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlx: bad number %q", t.text)
			}
			return &Literal{Value: rel.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlx: bad number %q", t.text)
		}
		return &Literal{Value: rel.Int(n)}, nil
	case tokString:
		p.next()
		return &Literal{Value: rel.Str(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Value: rel.Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: rel.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: rel.Bool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			return p.parseFuncCall()
		}
		return nil, fmt.Errorf("sqlx: unexpected keyword %q in expression at offset %d", t.text, t.pos)
	case tokIdent:
		// function call?
		if scalarFuncs[strings.ToUpper(t.text)] && p.i+1 < len(p.toks) &&
			p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
			return p.parseFuncCall()
		}
		p.next()
		if p.acceptSymbol(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Column: col}, nil
		}
		return &ColumnRef{Column: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sqlx: unexpected token %q at offset %d", t.text, t.pos)
}

func (p *parser) parseFuncCall() (Expr, error) {
	t := p.next()
	name := strings.ToUpper(t.text)
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	f := &FuncExpr{Name: name}
	if p.acceptSymbol("*") {
		f.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.acceptKeyword("DISTINCT") {
		f.Distinct = true
	}
	if !p.acceptSymbol(")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	return f, nil
}
