package sqlx

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/rel"
)

// mustExec executes and fails the test on error.
func mustExec(t *testing.T, db *rel.Database, sql string) *Result {
	t.Helper()
	res, err := Exec(db, sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func testDB(t *testing.T) *rel.Database {
	t.Helper()
	db := rel.NewDatabase("test")
	mustExec(t, db, `CREATE TABLE protein (id INTEGER PRIMARY KEY, accession TEXT UNIQUE, name TEXT, organism_id INTEGER REFERENCES organism(id), mass REAL)`)
	mustExec(t, db, `CREATE TABLE organism (id INTEGER PRIMARY KEY, species TEXT)`)
	mustExec(t, db, `INSERT INTO organism VALUES (1, 'Homo sapiens'), (2, 'Mus musculus')`)
	mustExec(t, db, `INSERT INTO protein VALUES
		(1, 'P12345', 'hemoglobin alpha', 1, 15258.0),
		(2, 'P67890', 'myoglobin', 1, 17184.0),
		(3, 'Q11111', 'insulin', 2, 5808.0),
		(4, 'Q22222', 'keratin', 2, 66018.0)`)
	return db
}

func TestCreateTableConstraints(t *testing.T) {
	db := testDB(t)
	p := db.Relation("protein")
	if p.PrimaryKey != "id" {
		t.Errorf("PrimaryKey = %q", p.PrimaryKey)
	}
	if !p.UniqueCols["accession"] {
		t.Error("accession not marked unique")
	}
	if len(p.ForeignKeys) != 1 || p.ForeignKeys[0].ToRelation != "organism" {
		t.Errorf("ForeignKeys = %v", p.ForeignKeys)
	}
}

func TestCreateTableIfNotExists(t *testing.T) {
	db := testDB(t)
	if _, err := Exec(db, `CREATE TABLE protein (x TEXT)`); err == nil {
		t.Error("duplicate CREATE TABLE should fail")
	}
	mustExec(t, db, `CREATE TABLE IF NOT EXISTS protein (x TEXT)`)
}

func TestSelectAll(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT * FROM protein`)
	if len(res.Rows) != 4 || len(res.Columns) != 5 {
		t.Errorf("rows=%d cols=%d", len(res.Rows), len(res.Columns))
	}
	if res.Columns[1] != "accession" {
		t.Errorf("Columns = %v", res.Columns)
	}
}

func TestSelectWhere(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT name FROM protein WHERE organism_id = 1 AND mass > 16000`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "myoglobin" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSelectWhereOrNot(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT accession FROM protein WHERE NOT (organism_id = 1) OR name = 'myoglobin' ORDER BY accession`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].AsString() != "P67890" {
		t.Errorf("first = %v", res.Rows[0])
	}
}

func TestSelectLike(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT accession FROM protein WHERE name LIKE '%globin%' ORDER BY accession`)
	if len(res.Rows) != 2 {
		t.Errorf("LIKE rows = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT accession FROM protein WHERE accession LIKE 'Q_1111'`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "Q11111" {
		t.Errorf("underscore LIKE rows = %v", res.Rows)
	}
}

func TestSelectIn(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT name FROM protein WHERE accession IN ('P12345', 'Q22222') ORDER BY name`)
	if len(res.Rows) != 2 || res.Rows[0][0].AsString() != "hemoglobin alpha" {
		t.Errorf("IN rows = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM protein WHERE accession NOT IN ('P12345')`)
	if n, _ := res.Rows[0][0].AsInt(); n != 3 {
		t.Errorf("NOT IN count = %d", n)
	}
}

func TestSelectBetween(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT name FROM protein WHERE mass BETWEEN 10000 AND 20000 ORDER BY mass`)
	if len(res.Rows) != 2 || res.Rows[0][0].AsString() != "hemoglobin alpha" {
		t.Errorf("BETWEEN rows = %v", res.Rows)
	}
}

func TestSelectJoin(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `
		SELECT p.name, o.species
		FROM protein p JOIN organism o ON p.organism_id = o.id
		WHERE o.species = 'Mus musculus'
		ORDER BY p.name`)
	if len(res.Rows) != 2 {
		t.Fatalf("join rows = %v", res.Rows)
	}
	if res.Rows[0][0].AsString() != "insulin" || res.Rows[0][1].AsString() != "Mus musculus" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestSelectLeftJoin(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `INSERT INTO protein VALUES (5, 'X00001', 'orphan', 99, 100.0)`)
	res := mustExec(t, db, `
		SELECT p.name, o.species
		FROM protein p LEFT JOIN organism o ON p.organism_id = o.id
		WHERE o.species IS NULL`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "orphan" {
		t.Errorf("left join rows = %v", res.Rows)
	}
}

func TestSelectThreeWayJoin(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE xref (protein_id INTEGER, target TEXT)`)
	mustExec(t, db, `INSERT INTO xref VALUES (1, 'PDB:1ABC'), (3, 'PDB:2DEF')`)
	res := mustExec(t, db, `
		SELECT o.species, x.target
		FROM protein p
		JOIN organism o ON p.organism_id = o.id
		JOIN xref x ON x.protein_id = p.id
		ORDER BY x.target`)
	if len(res.Rows) != 2 {
		t.Fatalf("3-way join rows = %v", res.Rows)
	}
	if res.Rows[1][1].AsString() != "PDB:2DEF" {
		t.Errorf("row = %v", res.Rows[1])
	}
}

func TestSelectCrossJoin(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT COUNT(*) FROM protein p CROSS JOIN organism o`)
	if n, _ := res.Rows[0][0].AsInt(); n != 8 {
		t.Errorf("cross join count = %d want 8", n)
	}
}

func TestGroupByAggregates(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `
		SELECT organism_id, COUNT(*), AVG(mass), MIN(name), MAX(mass)
		FROM protein GROUP BY organism_id ORDER BY organism_id`)
	if len(res.Rows) != 2 {
		t.Fatalf("group rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][1].AsInt(); n != 2 {
		t.Errorf("count = %d", n)
	}
	avg, _ := res.Rows[0][2].AsFloat()
	if avg != (15258.0+17184.0)/2 {
		t.Errorf("avg = %v", avg)
	}
	if res.Rows[0][3].AsString() != "hemoglobin alpha" {
		t.Errorf("min name = %v", res.Rows[0][3])
	}
}

func TestGroupByHaving(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `
		SELECT organism_id, COUNT(*) AS n FROM protein
		GROUP BY organism_id HAVING COUNT(*) >= 2 ORDER BY organism_id`)
	if len(res.Rows) != 2 {
		t.Errorf("having rows = %v", res.Rows)
	}
	mustExec(t, db, `INSERT INTO organism VALUES (3, 'Gallus gallus')`)
	mustExec(t, db, `INSERT INTO protein VALUES (6, 'Z00001', 'ovalbumin', 3, 42750.0)`)
	res = mustExec(t, db, `
		SELECT organism_id FROM protein
		GROUP BY organism_id HAVING COUNT(*) = 1`)
	if len(res.Rows) != 1 {
		t.Errorf("having=1 rows = %v", res.Rows)
	}
}

func TestAggregateWithoutGroupBy(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT COUNT(*), SUM(mass) FROM protein`)
	if n, _ := res.Rows[0][0].AsInt(); n != 4 {
		t.Errorf("count = %d", n)
	}
	sum, _ := res.Rows[0][1].AsFloat()
	if sum != 15258.0+17184.0+5808.0+66018.0 {
		t.Errorf("sum = %v", sum)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT COUNT(*), SUM(mass) FROM protein WHERE mass > 1000000`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 0 {
		t.Errorf("count = %d", n)
	}
	if !res.Rows[0][1].IsNull() {
		t.Errorf("SUM over empty must be NULL, got %v", res.Rows[0][1])
	}
}

func TestCountDistinct(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT COUNT(DISTINCT organism_id) FROM protein`)
	if n, _ := res.Rows[0][0].AsInt(); n != 2 {
		t.Errorf("count distinct = %d", n)
	}
}

func TestSelectDistinct(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT DISTINCT organism_id FROM protein ORDER BY organism_id`)
	if len(res.Rows) != 2 {
		t.Errorf("distinct rows = %v", res.Rows)
	}
}

func TestOrderByDescLimitOffset(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT name FROM protein ORDER BY mass DESC LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[0][0].AsString() != "keratin" {
		t.Errorf("rows = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT name FROM protein ORDER BY mass DESC LIMIT 2 OFFSET 1`)
	if res.Rows[0][0].AsString() != "myoglobin" {
		t.Errorf("offset rows = %v", res.Rows)
	}
}

func TestOrderByAlias(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT name, mass * 2 AS m2 FROM protein ORDER BY m2 DESC LIMIT 1`)
	if res.Rows[0][0].AsString() != "keratin" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestScalarFunctions(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT UPPER(name), LENGTH(accession), LOWER('ABC'), SUBSTR(accession, 1, 1) FROM protein WHERE id = 1`)
	r := res.Rows[0]
	if r[0].AsString() != "HEMOGLOBIN ALPHA" {
		t.Errorf("UPPER = %v", r[0])
	}
	if n, _ := r[1].AsInt(); n != 6 {
		t.Errorf("LENGTH = %v", r[1])
	}
	if r[2].AsString() != "abc" {
		t.Errorf("LOWER = %v", r[2])
	}
	if r[3].AsString() != "P" {
		t.Errorf("SUBSTR = %v", r[3])
	}
}

func TestArithmetic(t *testing.T) {
	db := rel.NewDatabase("t")
	res := mustExec(t, db, `SELECT 2 + 3 * 4, (2 + 3) * 4, 10 / 3, 10 % 3, -5 + 1, 1.5 * 2`)
	r := res.Rows[0]
	if n, _ := r[0].AsInt(); n != 14 {
		t.Errorf("precedence: %v", r[0])
	}
	if n, _ := r[1].AsInt(); n != 20 {
		t.Errorf("parens: %v", r[1])
	}
	if n, _ := r[2].AsInt(); n != 3 {
		t.Errorf("int div: %v", r[2])
	}
	if n, _ := r[3].AsInt(); n != 1 {
		t.Errorf("mod: %v", r[3])
	}
	if n, _ := r[4].AsInt(); n != -4 {
		t.Errorf("unary minus: %v", r[4])
	}
	if f, _ := r[5].AsFloat(); f != 3.0 {
		t.Errorf("float mul: %v", r[5])
	}
}

func TestDivisionByZero(t *testing.T) {
	db := rel.NewDatabase("t")
	if _, err := Exec(db, `SELECT 1 / 0`); err == nil {
		t.Error("expected division-by-zero error")
	}
}

func TestStringConcat(t *testing.T) {
	db := rel.NewDatabase("t")
	res := mustExec(t, db, `SELECT 'Uniprot' || ':' || 'P11140'`)
	if res.Rows[0][0].AsString() != "Uniprot:P11140" {
		t.Errorf("concat = %v", res.Rows[0][0])
	}
}

func TestNullSemantics(t *testing.T) {
	db := rel.NewDatabase("t")
	mustExec(t, db, `CREATE TABLE t (a INTEGER)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (NULL), (3)`)
	res := mustExec(t, db, `SELECT COUNT(*) FROM t WHERE a = NULL`)
	if n, _ := res.Rows[0][0].AsInt(); n != 0 {
		t.Errorf("= NULL matched %d rows; must match none", n)
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM t WHERE a IS NULL`)
	if n, _ := res.Rows[0][0].AsInt(); n != 1 {
		t.Errorf("IS NULL matched %d", n)
	}
	res = mustExec(t, db, `SELECT COUNT(a) FROM t`)
	if n, _ := res.Rows[0][0].AsInt(); n != 2 {
		t.Errorf("COUNT(a) = %d; NULLs must not count", n)
	}
}

func TestInsertWithColumns(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `INSERT INTO protein (id, accession) VALUES (9, 'Z99999')`)
	res := mustExec(t, db, `SELECT name FROM protein WHERE id = 9`)
	if !res.Rows[0][0].IsNull() {
		t.Errorf("unlisted column should be NULL, got %v", res.Rows[0][0])
	}
}

func TestUpdate(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `UPDATE protein SET name = 'renamed', mass = mass + 1 WHERE id = 1`)
	if res.Affected != 1 {
		t.Errorf("affected = %d", res.Affected)
	}
	check := mustExec(t, db, `SELECT name, mass FROM protein WHERE id = 1`)
	if check.Rows[0][0].AsString() != "renamed" {
		t.Errorf("name = %v", check.Rows[0][0])
	}
	if f, _ := check.Rows[0][1].AsFloat(); f != 15259.0 {
		t.Errorf("mass = %v", check.Rows[0][1])
	}
}

func TestDelete(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `DELETE FROM protein WHERE organism_id = 2`)
	if res.Affected != 2 {
		t.Errorf("affected = %d", res.Affected)
	}
	check := mustExec(t, db, `SELECT COUNT(*) FROM protein`)
	if n, _ := check.Rows[0][0].AsInt(); n != 2 {
		t.Errorf("remaining = %d", n)
	}
}

func TestDropTableErrors(t *testing.T) {
	db := testDB(t)
	if _, err := Exec(db, `DROP TABLE nope`); err == nil {
		t.Error("expected error dropping missing table")
	}
	mustExec(t, db, `DROP TABLE IF EXISTS nope`)
	mustExec(t, db, `DROP TABLE organism`)
	if db.Relation("organism") != nil {
		t.Error("organism not dropped")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELEC * FROM t`,
		`SELECT FROM`,
		`SELECT * FROM t WHERE`,
		`INSERT INTO t VALUES (1,`,
		`SELECT 'unterminated`,
		`SELECT a FROM t GROUP`,
		`SELECT @ FROM t`,
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestExecErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		`SELECT * FROM nonexistent`,
		`SELECT nocolumn FROM protein`,
		`SELECT p.nocolumn FROM protein p`,
		`SELECT id FROM protein JOIN nonexistent n ON n.x = protein.id`,
		`INSERT INTO protein (nocolumn) VALUES (1)`,
		`INSERT INTO protein VALUES (1)`,
	}
	for _, sql := range bad {
		if _, err := Exec(db, sql); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := testDB(t)
	if _, err := Exec(db, `SELECT id FROM protein p JOIN organism o ON p.organism_id = o.id`); err == nil {
		t.Error("ambiguous unqualified column should fail")
	}
}

func TestQuotedIdentifiersAndComments(t *testing.T) {
	db := rel.NewDatabase("t")
	mustExec(t, db, `CREATE TABLE "select" ("key" TEXT)`)
	mustExec(t, db, `INSERT INTO "select" VALUES ('x') -- trailing comment`)
	res := mustExec(t, db, `SELECT "key" FROM "select"`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "x" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestTableStar(t *testing.T) {
	db := testDB(t)
	res := mustExec(t, db, `SELECT o.* FROM protein p JOIN organism o ON p.organism_id = o.id WHERE p.id = 1`)
	if len(res.Columns) != 2 || res.Columns[0] != "id" {
		t.Errorf("cols = %v", res.Columns)
	}
	if res.Rows[0][1].AsString() != "Homo sapiens" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestEscapedQuoteInString(t *testing.T) {
	db := rel.NewDatabase("t")
	res := mustExec(t, db, `SELECT 'it''s'`)
	if res.Rows[0][0].AsString() != "it's" {
		t.Errorf("got %v", res.Rows[0][0])
	}
}

// Property: LIKE '%' matches everything, and an exact pattern with no
// wildcards matches only itself (case-insensitively).
func TestLikeProperties(t *testing.T) {
	f := func(s string) bool {
		if !likeMatch(s, "%") {
			return false
		}
		return likeMatch(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: COUNT(*) equals the number of inserted rows for any n.
func TestCountMatchesInserts(t *testing.T) {
	f := func(n uint8) bool {
		db := rel.NewDatabase("t")
		if _, err := Exec(db, `CREATE TABLE t (a INTEGER)`); err != nil {
			return false
		}
		for i := 0; i < int(n); i++ {
			if _, err := Exec(db, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i)); err != nil {
				return false
			}
		}
		res, err := Exec(db, `SELECT COUNT(*) FROM t`)
		if err != nil {
			return false
		}
		got, _ := res.Rows[0][0].AsInt()
		return got == int64(n)
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: ORDER BY yields a non-decreasing sequence.
func TestOrderBySorted(t *testing.T) {
	f := func(vals []int16) bool {
		db := rel.NewDatabase("t")
		if _, err := Exec(db, `CREATE TABLE t (a INTEGER)`); err != nil {
			return false
		}
		r := db.Relation("t")
		for _, v := range vals {
			r.Append(rel.Tuple{rel.Int(int64(v))})
		}
		res, err := Exec(db, `SELECT a FROM t ORDER BY a`)
		if err != nil {
			return false
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i-1][0].Compare(res.Rows[i][0]) > 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
