package sqlx

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/rel"
)

// iterDB builds two 100-row tables for streaming tests.
func iterDB(t *testing.T) *rel.Database {
	t.Helper()
	db := rel.NewDatabase("test")
	for _, name := range []string{"a", "b"} {
		mustExec(t, db, fmt.Sprintf(`CREATE TABLE %s (id INTEGER, tag TEXT)`, name))
		var values []string
		for i := 0; i < 100; i++ {
			values = append(values, fmt.Sprintf("(%d, '%s%d')", i, name, i))
		}
		mustExec(t, db, fmt.Sprintf(`INSERT INTO %s VALUES %s`, name, strings.Join(values, ", ")))
	}
	return db
}

// drain pulls every row from a cursor.
func drain(t *testing.T, c *Cursor) []rel.Tuple {
	t.Helper()
	var rows []rel.Tuple
	for {
		row, err := c.Next(context.Background())
		if err == io.EOF {
			return rows
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		rows = append(rows, row)
	}
}

func mustOpen(t *testing.T, db *rel.Database, sql string) *Cursor {
	t.Helper()
	p, err := Prepare(db, sql)
	if err != nil {
		t.Fatalf("Prepare(%q): %v", sql, err)
	}
	c, err := p.Open(context.Background(), db)
	if err != nil {
		t.Fatalf("Open(%q): %v", sql, err)
	}
	return c
}

// TestCursorEarlyStopLimit: a LIMIT query pulls exactly as many stored
// tuples as it emits — the streaming executor's core property.
func TestCursorEarlyStopLimit(t *testing.T) {
	db := iterDB(t)
	c := mustOpen(t, db, `SELECT id FROM a LIMIT 7`)
	rows := drain(t, c)
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	if c.Scanned() != 7 {
		t.Errorf("scanned %d tuples for LIMIT 7, want 7", c.Scanned())
	}
}

// TestCursorEarlyStopFilteredLimit: with a selective WHERE, the scan
// stops as soon as enough rows pass the filter.
func TestCursorEarlyStopFilteredLimit(t *testing.T) {
	db := iterDB(t)
	c := mustOpen(t, db, `SELECT id FROM a WHERE id % 2 = 0 LIMIT 3`)
	rows := drain(t, c)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	// ids 0, 2, 4 pass after scanning tuples 0..4.
	if c.Scanned() != 5 {
		t.Errorf("scanned %d tuples, want 5", c.Scanned())
	}
}

// TestCursorEarlyStopUnion: a LIMIT satisfied by the first UNION ALL
// branch never touches the later branches.
func TestCursorEarlyStopUnion(t *testing.T) {
	db := iterDB(t)
	c := mustOpen(t, db, `SELECT id FROM a UNION ALL SELECT id FROM b LIMIT 5`)
	rows := drain(t, c)
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	if c.Scanned() != 5 {
		t.Errorf("scanned %d tuples, want 5 (branch b must stay unread)", c.Scanned())
	}

	// Spilling into the second branch reads just enough of it.
	c = mustOpen(t, db, `SELECT id FROM a UNION ALL SELECT id FROM b LIMIT 103`)
	rows = drain(t, c)
	if len(rows) != 103 {
		t.Fatalf("got %d rows, want 103", len(rows))
	}
	if c.Scanned() != 103 {
		t.Errorf("scanned %d tuples, want 103", c.Scanned())
	}
}

// TestCursorOrderByLimit: ORDER BY is a pipeline breaker — the full
// input is read on the first pull — but LIMIT still bounds what is
// emitted, and results match the materialized executor.
func TestCursorOrderByLimit(t *testing.T) {
	db := iterDB(t)
	c := mustOpen(t, db, `SELECT id FROM a UNION ALL SELECT id FROM b ORDER BY id DESC LIMIT 4`)
	rows := drain(t, c)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for i, want := range []int64{99, 99, 98, 98} {
		if got, _ := rows[i][0].AsInt(); got != want {
			t.Errorf("row %d = %v, want %d", i, rows[i][0], want)
		}
	}
	if c.Scanned() != 200 {
		t.Errorf("scanned %d tuples, want 200 (ORDER BY must drain its input)", c.Scanned())
	}
}

// TestCursorMatchesExec: the streaming cursor and the collect-all Exec
// agree on a query exercising join, grouping, ordering, and union.
func TestCursorMatchesExec(t *testing.T) {
	db := iterDB(t)
	queries := []string{
		`SELECT a.id, b.tag FROM a JOIN b ON b.id = a.id WHERE a.id < 10 ORDER BY a.id`,
		`SELECT COUNT(*), MAX(id) FROM a WHERE id >= 50`,
		`SELECT tag FROM a WHERE id < 3 UNION SELECT tag FROM b WHERE id < 3 ORDER BY tag`,
		`SELECT DISTINCT id % 10 AS d FROM a ORDER BY d LIMIT 4 OFFSET 2`,
		`SELECT id FROM a WHERE id IN (SELECT id FROM b WHERE id < 5)`,
	}
	for _, q := range queries {
		want := mustExec(t, db, q)
		c := mustOpen(t, db, q)
		rows := drain(t, c)
		if len(rows) != len(want.Rows) {
			t.Fatalf("%s: cursor %d rows, Exec %d", q, len(rows), len(want.Rows))
		}
		for i := range rows {
			if rowKey(rows[i]) != rowKey(want.Rows[i]) {
				t.Errorf("%s: row %d = %v, want %v", q, i, rows[i], want.Rows[i])
			}
		}
	}
}

// TestCursorCancellation: a canceled context aborts an in-flight scan
// within one batch of stored-tuple reads.
func TestCursorCancellation(t *testing.T) {
	db := iterDB(t)
	p, err := Prepare(db, `SELECT a.id FROM a CROSS JOIN b`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c, err := p.Open(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(ctx); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	cancel()
	var gotErr error
	for i := 0; i < 2*ctxBatch; i++ {
		if _, gotErr = c.Next(ctx); gotErr != nil {
			break
		}
	}
	if !errors.Is(gotErr, context.Canceled) {
		t.Fatalf("after cancel: err = %v, want context.Canceled", gotErr)
	}
	// The cursor stays exhausted after the error.
	if _, err := c.Next(context.Background()); err != io.EOF {
		t.Errorf("Next after error = %v, want io.EOF", err)
	}
}

// TestPrepareRejectsNonSelect: only SELECT statements have a plan.
func TestPrepareRejectsNonSelect(t *testing.T) {
	db := iterDB(t)
	for _, q := range []string{
		`INSERT INTO a VALUES (1, 'x')`,
		`DELETE FROM a`,
		`DROP TABLE a`,
	} {
		if _, err := Prepare(db, q); err == nil {
			t.Errorf("Prepare(%q) succeeded, want error", q)
		}
	}
	if _, err := Prepare(db, `SELECT id FROM missing`); err == nil {
		t.Error("Prepare against a missing table succeeded, want error")
	}
}

// TestPlanReuse: one plan serves repeated and concurrent executions, and
// an IN (SELECT ...) subquery is re-materialized per run — a cached plan
// sees data inserted between executions (the AST is never frozen).
func TestPlanReuse(t *testing.T) {
	db := iterDB(t)
	p, err := Prepare(db, `SELECT id FROM a WHERE id IN (SELECT id FROM b WHERE tag = 'b7')`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Open(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, c); len(rows) != 1 {
		t.Fatalf("first run: %d rows, want 1", len(rows))
	}
	mustExec(t, db, `INSERT INTO b VALUES (42, 'b7')`)
	c, err = p.Open(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, c); len(rows) != 2 {
		t.Fatalf("after insert: %d rows, want 2 (subquery must re-run)", len(rows))
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := p.Open(context.Background(), db)
			if err != nil {
				t.Error(err)
				return
			}
			var n int
			for {
				_, err := c.Next(context.Background())
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Error(err)
					return
				}
				n++
			}
			if n != 2 {
				t.Errorf("concurrent run: %d rows, want 2", n)
			}
		}()
	}
	wg.Wait()
}

// TestCursorClose: Close is idempotent and exhausts the cursor.
func TestCursorClose(t *testing.T) {
	db := iterDB(t)
	c := mustOpen(t, db, `SELECT id FROM a`)
	if _, err := c.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(context.Background()); err != io.EOF {
		t.Errorf("Next after Close = %v, want io.EOF", err)
	}
}
