package sqlx

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/rel"
)

// EXPLAIN ANALYZE support: when a run carries a planMeters, every
// operator of the executed tree is wrapped in a meterIter counting
// emitted rows and cumulative time (child time included, as in
// PostgreSQL). Parallel morsel chains share the same meter pointers, so
// counts aggregate across workers; times then sum worker CPU time and
// can exceed wall clock.

// opMeter accumulates one operator's actual row count, nanoseconds, and
// — under the batch engine — the number of non-empty batches it
// emitted. Fields are atomics: morsel workers update them concurrently.
type opMeter struct {
	rows    int64
	nanos   int64
	batches int64
}

func (m *opMeter) observe(start time.Time, emitted bool) {
	atomic.AddInt64(&m.nanos, int64(time.Since(start)))
	if emitted {
		atomic.AddInt64(&m.rows, 1)
	}
}

func (m *opMeter) observeBatch(start time.Time, rows int) {
	atomic.AddInt64(&m.nanos, int64(time.Since(start)))
	if rows > 0 {
		atomic.AddInt64(&m.rows, int64(rows))
		atomic.AddInt64(&m.batches, 1)
	}
}

// meterIter wraps one operator, metering each pull.
type meterIter struct {
	child opIter
	m     *opMeter
}

func (mi *meterIter) next(ctx context.Context) (item, error) {
	start := time.Now()
	it, err := mi.child.next(ctx)
	mi.m.observe(start, err == nil)
	return it, err
}

// vecMeter is meterIter's batch-engine twin, also counting batches.
type vecMeter struct {
	child vecIter
	m     *opMeter
}

func (mi *vecMeter) next(ctx context.Context, want int) ([]item, error) {
	start := time.Now()
	items, err := mi.child.next(ctx, want)
	mi.m.observeBatch(start, len(items))
	return items, err
}

// selMeters holds the meters of one SELECT branch, in chain order.
// Pointers are nil for operators the branch does not have.
type selMeters struct {
	scan     *opMeter
	joins    []*opMeter
	residual *opMeter
	// gather is set when the branch ran parallel morsels.
	gather        *opMeter
	gatherWorkers int
	gatherMorsels int
	agg           *opMeter // projection or aggregation
	sort          *opMeter
	distinct      *opMeter
	limit         *opMeter
}

// planMeters holds every meter of one executed statement: one selMeters
// per branch (head first, then union branches in order — the same order
// openSelect opens them), plus the union-level operators.
type planMeters struct {
	branches      []*selMeters
	union         *opMeter
	unionDistinct *opMeter
	unionSort     *opMeter
	unionLimit    *opMeter
}

// branch returns the i'th branch meters, nil when out of range.
func (pm *planMeters) branch(i int) *selMeters {
	if pm == nil || i >= len(pm.branches) {
		return nil
	}
	return pm.branches[i]
}

// ExplainAnalyze executes the plan against db (with the given
// parallelism degree, as OpenParallel would) and renders the operator
// tree annotated with estimated rows, actual rows and cumulative time
// per operator, plus an execution summary line.
func (p *Plan) ExplainAnalyze(ctx context.Context, db *rel.Database, workers int) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	rt := newRun()
	if workers > 1 {
		rt.workers = workers
	}
	rt.meters = &planMeters{}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocs := ms.Mallocs
	start := time.Now()
	rows := 0
	if rt.vec {
		_, it, err := vecOpenSelect(ctx, db, p.stmt, p.lg, rt)
		if err != nil {
			rt.close()
			return "", err
		}
		for {
			items, err := it.next(ctx, vecBatch)
			if err == io.EOF {
				break
			}
			if err != nil {
				rt.close()
				return "", err
			}
			rows += len(items)
		}
	} else {
		_, it, err := openSelect(ctx, db, p.stmt, p.lg, rt)
		if err != nil {
			rt.close()
			return "", err
		}
		for {
			_, err := it.next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				rt.close()
				return "", err
			}
			rows++
		}
	}
	rt.close()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms)
	allocs := ms.Mallocs - mallocs
	lg := p.lg
	if lg == nil {
		lg = buildLogical(db, p.stmt)
	}
	root, err := explainTree(db, p.stmt, lg, rt.meters)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	renderExplain(&b, root, "", "")
	fmt.Fprintf(&b, "Execution: %d rows in %s (%d tuples scanned, %d heap allocs)\n",
		rows, fmtNanos(int64(elapsed)), atomic.LoadInt64(&rt.scanned), allocs)
	return b.String(), nil
}

// fmtNanos renders a duration compactly for plan annotations.
func fmtNanos(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
