package sqlx

import (
	"fmt"

	"repro/internal/rel"
)

// Greedy join reordering: a maximal prefix of inner (or cross) joins is
// commutative, so its tables can be joined in any order as long as every
// ON conjunct of the prefix is evaluated once all its bindings are
// available. The planner starts from the smallest estimated filtered
// table and repeatedly joins the table with the cheapest estimated
// intermediate result, preferring equi-connected tables over cross
// products. LEFT JOINs are never reordered across: the prefix stops at
// the first outer join and the suffix binds in parse order.

// onConj is one ON conjunct of the reorderable prefix with its resolved
// binding set.
type onConj struct {
	expr     Expr
	bindings map[int]bool // prefix table indices referenced
	// eqL/eqR (with table indices bL/bR) are set when expr is a
	// "colA = colB" equality across two distinct bindings — a join edge.
	eqL, eqR *ColumnRef
	bL, bR   int
}

// reorderInfo describes the maximal reorderable prefix.
type reorderInfo struct {
	n    int // tables[0:n] are reorderable
	pool []onConj
}

// reorderPrefix analyzes lg for a reorderable prefix of at least three
// tables. Reordering is conservative: every ON conjunct of the prefix
// must consist of explicitly qualified column references resolving into
// the prefix, so moving a conjunct can never change how its columns
// resolve. Anything else keeps parse order.
func reorderPrefix(db *rel.Database, lg *logicalSelect) (*reorderInfo, bool) {
	if !ReorderJoins || db == nil {
		return nil, false
	}
	n := 1
	for n < len(lg.tables) {
		k := lg.tables[n].join.Kind
		if k != JoinInner && k != JoinCross {
			break
		}
		n++
	}
	if n < 3 {
		return nil, false
	}
	info := &reorderInfo{n: n}
	for i := 1; i < n; i++ {
		for _, c := range splitConjuncts(lg.tables[i].join.On) {
			oc := onConj{expr: c, bindings: make(map[int]bool), bL: -1, bR: -1}
			var refs []*ColumnRef
			collectColumnRefs(c, &refs)
			if len(refs) == 0 {
				return nil, false
			}
			for _, cr := range refs {
				if cr.Table == "" {
					return nil, false
				}
				ti := resolveBinding(db, lg, cr)
				if ti < 0 || ti >= n {
					return nil, false
				}
				oc.bindings[ti] = true
			}
			if be, ok := c.(*BinaryExpr); ok && be.Op == "=" {
				l, lok := be.Left.(*ColumnRef)
				r, rok := be.Right.(*ColumnRef)
				if lok && rok {
					li := resolveBinding(db, lg, l)
					ri := resolveBinding(db, lg, r)
					if li != ri {
						oc.eqL, oc.eqR, oc.bL, oc.bR = l, r, li, ri
					}
				}
			}
			info.pool = append(info.pool, oc)
		}
	}
	return info, true
}

// covered reports whether every binding of oc is in the joined set, with
// t treated as joined.
func (oc *onConj) covered(joined []bool, t int) bool {
	for b := range oc.bindings {
		if b != t && !joined[b] {
			return false
		}
	}
	return true
}

// edgeWith reports whether oc is an equality edge connecting t to the
// joined set.
func (oc *onConj) edgeWith(joined []bool, t int) bool {
	if oc.eqL == nil {
		return false
	}
	return (oc.bL == t && joined[oc.bR]) || (oc.bR == t && joined[oc.bL])
}

// bindReordered binds the prefix greedily, then the suffix in parse
// order.
func bindReordered(db *rel.Database, lg *logicalSelect, info *reorderInfo) (*selectAccess, error) {
	bd := newBinder(db)
	n := info.n
	rels := make([]*rel.Relation, n)
	base := make([]float64, n)
	for i := 0; i < n; i++ {
		r := db.Relation(lg.tables[i].ref.Name)
		if r == nil {
			return nil, fmt.Errorf("sqlx: no such table %q", lg.tables[i].ref.Name)
		}
		rels[i] = r
		base[i] = estimateFiltered(r, lg.tables[i].filters)
	}
	used := make([]bool, len(info.pool))
	joined := make([]bool, n)

	// Start from the smallest estimated filtered table; single-table ON
	// conjuncts on it become extra scan filters.
	start := 0
	for i := 1; i < n; i++ {
		if base[i] < base[start] {
			start = i
		}
	}
	joined[start] = true
	var extra []Expr
	for ci := range info.pool {
		oc := &info.pool[ci]
		if len(oc.bindings) == 1 && oc.bindings[start] {
			used[ci] = true
			extra = append(extra, oc.expr)
		}
	}
	sel := &selectAccess{}
	sa, err := bindScan(bd, lg.tables[start], extra)
	if err != nil {
		return nil, err
	}
	sel.scan = sa
	cur := sa.est

	for len(sel.joins) < n-1 {
		bestT := -1
		var bestJa *joinAccess
		var bestUsed []int
		for t := 0; t < n; t++ {
			if joined[t] {
				continue
			}
			ja, consumed := planStep(bd, lg.tables[t], rels[t], info, used, joined, t, cur)
			if bestJa == nil || stepBetter(ja, bestJa) {
				bestT, bestJa, bestUsed = t, ja, consumed
			}
		}
		joined[bestT] = true
		for _, ci := range bestUsed {
			used[ci] = true
		}
		bd.add(bestJa.binding, bestJa.right)
		sel.joins = append(sel.joins, bestJa)
		cur = bestJa.est
	}
	for i := n; i < len(lg.tables); i++ {
		ja, err := bindJoin(bd, lg.tables[i], cur)
		if err != nil {
			return nil, err
		}
		sel.joins = append(sel.joins, ja)
		cur = ja.est
	}
	return sel, nil
}

// planStep builds the candidate join step adding table t to the joined
// set: available pool conjuncts referencing t alone become right-side
// filters, the first equality edge to the joined set becomes the join
// key, and the rest apply as post-join filters. Returns the consumed
// conjunct indices (committed by the caller only if the step wins).
func planStep(bd *binder, tl *tableLogical, right *rel.Relation, info *reorderInfo, used, joined []bool, t int, leftEst float64) (*joinAccess, []int) {
	ja := &joinAccess{
		tl: tl, right: right, binding: tl.ref.Binding(),
		kind: JoinCross, filters: append([]Expr{}, tl.filters...),
	}
	var consumed []int
	for ci := range info.pool {
		if used[ci] {
			continue
		}
		oc := &info.pool[ci]
		if !oc.covered(joined, t) {
			continue
		}
		consumed = append(consumed, ci)
		switch {
		case len(oc.bindings) == 1 && oc.bindings[t]:
			ja.filters = append(ja.filters, oc.expr)
		case ja.on == nil && oc.edgeWith(joined, t):
			ja.kind, ja.on = JoinInner, oc.expr
		default:
			ja.post = append(ja.post, oc.expr)
		}
	}
	bindJoinStrategy(bd, ja, leftEst)
	if len(ja.post) > 0 {
		ja.est *= selectivity(len(ja.post))
		if ja.est < 1 {
			ja.est = 1
		}
	}
	return ja, consumed
}

// stepBetter prefers equi-connected steps over cross products, then the
// smaller estimated intermediate.
func stepBetter(a, b *joinAccess) bool {
	if (a.on != nil) != (b.on != nil) {
		return a.on != nil
	}
	return a.est < b.est
}
