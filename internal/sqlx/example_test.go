package sqlx_test

import (
	"fmt"
	"log"

	"repro/internal/rel"
	"repro/internal/sqlx"
)

// Example shows the SQL access mode end to end: create, load, query.
func Example() {
	db := rel.NewDatabase("demo")
	mustExec(db, `CREATE TABLE protein (id INTEGER PRIMARY KEY, accession TEXT UNIQUE, organism TEXT)`)
	mustExec(db, `INSERT INTO protein VALUES
		(1, 'P69905', 'Homo sapiens'),
		(2, 'P00698', 'Gallus gallus'),
		(3, 'P00761', 'Sus scrofa')`)
	res := mustExec(db, `SELECT accession FROM protein WHERE organism LIKE 'homo%' ORDER BY accession`)
	for _, row := range res.Rows {
		fmt.Println(row[0].AsString())
	}
	// Output:
	// P69905
}

func Example_aggregation() {
	db := rel.NewDatabase("demo")
	mustExec(db, `CREATE TABLE xref (protein TEXT, target_db TEXT)`)
	mustExec(db, `INSERT INTO xref VALUES
		('P1', 'PDB'), ('P1', 'GO'), ('P2', 'PDB'), ('P3', 'PDB')`)
	res := mustExec(db, `
		SELECT target_db, COUNT(*) AS n
		FROM xref GROUP BY target_db
		HAVING COUNT(*) > 1
		ORDER BY n DESC`)
	for _, row := range res.Rows {
		fmt.Printf("%s %s\n", row[0].AsString(), row[1].AsString())
	}
	// Output:
	// PDB 3
}

func Example_union() {
	db := rel.NewDatabase("demo")
	mustExec(db, `CREATE TABLE a (acc TEXT)`)
	mustExec(db, `CREATE TABLE b (acc TEXT)`)
	mustExec(db, `INSERT INTO a VALUES ('X1'), ('X2')`)
	mustExec(db, `INSERT INTO b VALUES ('X2'), ('X3')`)
	res := mustExec(db, `SELECT acc FROM a UNION SELECT acc FROM b ORDER BY acc`)
	for _, row := range res.Rows {
		fmt.Println(row[0].AsString())
	}
	// Output:
	// X1
	// X2
	// X3
}

func mustExec(db *rel.Database, sql string) *sqlx.Result {
	res, err := sqlx.Exec(db, sql)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
