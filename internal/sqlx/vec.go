package sqlx

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"repro/internal/rel"
)

// Batch-at-a-time (vectorized) execution: the twin of the
// tuple-at-a-time operator set in iter.go, exchanging slices of up to
// vecBatch items per pull so interface dispatch, context checks, and
// allocations amortize over whole batches instead of single rows. The
// tuple-at-a-time operators remain as the reference path; Vectorized
// selects the engine, and the parity suite in vec_test.go pins the two
// paths to bit-identical rows, order, and Scanned() counts.
//
// Demand propagation keeps Scanned() exact: next(ctx, want) returns
// between 1 and want items. Unconstrained pulls ask for the full
// vecBatch and consumers drain everything they trigger, so reads match
// serial execution trivially. Under LIMIT/OFFSET the limit operator
// asks for exactly the rows it still needs (always < vecBatch):
// filters and distinct then pull child chunks of that size — the final
// chunk is fully emitted (a chunk with any rejected row cannot satisfy
// the limit, so execution continues exactly like the serial search) —
// and joins fall back to pulling one left row at a time with match
// state buffered across calls, which is precisely the serial read
// pattern.
//
// Batch memory: every operator that creates environments or rows
// allocates fresh arenas per batch (a handful of allocations per 1024
// rows) and never reuses them — buffered consumers (exchange slots,
// ORDER BY, build-left tables, group representatives, caller-retained
// rows) may hold references indefinitely. Only the []item slice headers
// are reused; their contents are copied by any operator that buffers.

// vecBatch is the batch size — one scan morsel produces one batch.
const vecBatch = morselSize

// Vectorized selects the batch executor for Open/OpenParallel/Exec and
// EXPLAIN ANALYZE. It exists as a kill switch (like ReorderJoins): the
// tuple-at-a-time path remains fully functional underneath.
var Vectorized = true

// vecIter is the pull interface of the batch executor. next returns
// 1..want items or io.EOF; the returned slice is valid only until the
// next call on the same iterator.
type vecIter interface {
	next(ctx context.Context, want int) ([]item, error)
}

// tickN counts n stored-tuple reads at once, checking ctx with the same
// amortized cadence as tick.
func (rt *run) tickN(ctx context.Context, n int) error {
	atomic.AddInt64(&rt.scanned, int64(n))
	rt.ticks += n
	if rt.ticks >= ctxBatch {
		rt.ticks = 0
		return ctx.Err()
	}
	return nil
}

// vecOpenSelect mirrors openSelect for the batch engine.
func vecOpenSelect(ctx context.Context, db *rel.Database, s *SelectStmt, lg *logicalSelect, rt *run) ([]string, vecIter, error) {
	if lg == nil {
		lg = buildLogical(db, s)
	}
	cols, head, err := vecOpenSelectOne(ctx, db, s, lg, rt)
	if err != nil {
		return nil, nil, err
	}
	if s.Union == nil {
		return cols, head, nil
	}
	iters := []vecIter{head}
	allMode := true
	for cur, curLg := s, lg; cur.Union != nil; cur, curLg = cur.Union, curLg.union {
		bcols, bit, err := vecOpenSelectOne(ctx, db, cur.Union, curLg.union, rt)
		if err != nil {
			return nil, nil, err
		}
		if len(bcols) != len(cols) {
			return nil, nil, fmt.Errorf("sqlx: UNION arity mismatch: %d vs %d columns",
				len(cols), len(bcols))
		}
		iters = append(iters, bit)
		if !cur.UnionAll {
			allMode = false
		}
	}
	var it vecIter = &vecConcat{children: iters}
	it = vecMeterWrap(it, rt.meters, func(pm *planMeters) **opMeter { return &pm.union })
	if !allMode {
		it = &vecDistinct{child: it}
		it = vecMeterWrap(it, rt.meters, func(pm *planMeters) **opMeter { return &pm.unionDistinct })
	}
	if len(s.OrderBy) > 0 {
		it = &vecOrder{child: it, order: s.OrderBy, columns: cols, rowMode: true}
		it = vecMeterWrap(it, rt.meters, func(pm *planMeters) **opMeter { return &pm.unionSort })
	}
	if s.Limit >= 0 || s.Offset > 0 {
		it = &vecLimit{child: it, limit: s.Limit, offset: s.Offset}
		it = vecMeterWrap(it, rt.meters, func(pm *planMeters) **opMeter { return &pm.unionLimit })
	}
	return cols, it, nil
}

func vecMeterWrap(it vecIter, pm *planMeters, slot func(*planMeters) **opMeter) vecIter {
	if pm == nil {
		return it
	}
	m := &opMeter{}
	*slot(pm) = m
	return &vecMeter{child: it, m: m}
}

// vecOpenSelectOne mirrors openSelectOne: one SELECT without its UNION
// chain, on the same bound access paths and meter slots.
func vecOpenSelectOne(ctx context.Context, db *rel.Database, s *SelectStmt, lg *logicalSelect, rt *run) ([]string, vecIter, error) {
	headOfUnion := s.Union != nil
	for _, tl := range lg.tables {
		for _, f := range tl.filters {
			if err := rt.materializeSubqueries(ctx, db, f); err != nil {
				return nil, nil, err
			}
		}
	}
	for _, c := range lg.residual {
		if err := rt.materializeSubqueries(ctx, db, c); err != nil {
			return nil, nil, err
		}
	}
	if err := rt.materializeSubqueries(ctx, db, s.Having); err != nil {
		return nil, nil, err
	}
	var bm *selMeters
	if rt.meters != nil {
		bm = &selMeters{}
		rt.meters.branches = append(rt.meters.branches, bm)
	}
	var it vecIter
	if s.From == nil {
		it = &vecSingleton{rt: rt}
		if bm != nil {
			bm.scan = &opMeter{}
			it = &vecMeter{child: it, m: bm.scan}
		}
	} else {
		sel, err := bindSelect(db, lg)
		if err != nil {
			return nil, nil, err
		}
		if bm != nil {
			bm.scan = &opMeter{}
			for range sel.joins {
				bm.joins = append(bm.joins, &opMeter{})
			}
			if len(lg.residual) > 0 {
				bm.residual = &opMeter{}
			}
		}
		it, err = vecOpenMaybeParallel(ctx, sel, lg, rt, bm)
		if err != nil {
			return nil, nil, err
		}
	}
	items, cols, err := expandItems(db, s)
	if err != nil {
		return nil, nil, err
	}
	grouped := len(s.GroupBy) > 0
	if !grouped {
		for _, si := range items {
			if si.Expr != nil && isAggregate(si.Expr) {
				grouped = true
				break
			}
		}
	}
	if grouped {
		it = &vecGroup{child: it, s: s, items: items, rt: rt}
		it = vecBranchMeter(it, bm, func(m *selMeters) **opMeter { return &m.agg })
		if !headOfUnion && len(s.OrderBy) > 0 {
			it = &vecOrder{child: it, order: s.OrderBy, items: items, columns: cols, rowMode: true}
			it = vecBranchMeter(it, bm, func(m *selMeters) **opMeter { return &m.sort })
		}
	} else {
		it = &vecProject{child: it, items: items}
		it = vecBranchMeter(it, bm, func(m *selMeters) **opMeter { return &m.agg })
		if !headOfUnion && len(s.OrderBy) > 0 {
			it = &vecOrder{child: it, order: s.OrderBy, items: items}
			it = vecBranchMeter(it, bm, func(m *selMeters) **opMeter { return &m.sort })
		}
	}
	if s.Distinct {
		it = &vecDistinct{child: it}
		it = vecBranchMeter(it, bm, func(m *selMeters) **opMeter { return &m.distinct })
	}
	if !headOfUnion && (s.Limit >= 0 || s.Offset > 0) {
		it = &vecLimit{child: it, limit: s.Limit, offset: s.Offset}
		it = vecBranchMeter(it, bm, func(m *selMeters) **opMeter { return &m.limit })
	}
	return cols, it, nil
}

func vecBranchMeter(it vecIter, bm *selMeters, slot func(*selMeters) **opMeter) vecIter {
	if bm == nil {
		return it
	}
	m := &opMeter{}
	*slot(bm) = m
	return &vecMeter{child: it, m: m}
}

// vecOpenChain mirrors openChain: the scan→joins→residual part of one
// SELECT over the base-scan range [lo, hi).
func vecOpenChain(sel *selectAccess, lg *logicalSelect, rt *run, bm *selMeters, lo, hi int) vecIter {
	it := vecOpenScan(sel.scan, rt, lo, hi)
	if bm != nil {
		it = &vecMeter{child: it, m: bm.scan}
	}
	stride := 1
	for i, ja := range sel.joins {
		stride++
		it = vecOpenJoin(it, ja, rt, stride)
		if pred := andJoin(ja.post); pred != nil {
			it = &vecFilter{child: it, pred: pred}
		}
		if bm != nil {
			it = &vecMeter{child: it, m: bm.joins[i]}
		}
	}
	if residual := andJoin(lg.residual); residual != nil {
		it = &vecFilter{child: it, pred: residual}
		if bm != nil {
			it = &vecMeter{child: it, m: bm.residual}
		}
	}
	return it
}

// vecSingleton yields one empty environment (SELECT without FROM).
type vecSingleton struct {
	rt   *run
	done bool
	out  [1]item
}

func (s *vecSingleton) next(ctx context.Context, want int) ([]item, error) {
	if s.done {
		return nil, io.EOF
	}
	s.done = true
	s.out[0] = item{env: &env{rt: s.rt}}
	return s.out[:1], nil
}

// vecScan yields batches of environments over the base relation's
// [pos, end) range. Environments and bindings come from fresh per-batch
// arenas: two allocations per batch instead of two per row.
type vecScan struct {
	rel     *rel.Relation
	binding string
	rt      *run
	pos     int
	end     int
	out     []item
}

func (s *vecScan) next(ctx context.Context, want int) ([]item, error) {
	n := s.end - s.pos
	if n <= 0 {
		return nil, io.EOF
	}
	if n > want {
		n = want
	}
	if err := s.rt.tickN(ctx, n); err != nil {
		return nil, err
	}
	envs := make([]env, n)
	binds := make([]binding, n)
	if cap(s.out) < n {
		s.out = make([]item, vecBatch)
	}
	out := s.out[:n]
	schema := s.rel.Schema
	for i := 0; i < n; i++ {
		binds[i] = binding{name: s.binding, schema: schema, tuple: s.rel.Tuples[s.pos+i]}
		envs[i] = env{rt: s.rt, bindings: binds[i : i+1 : i+1]}
		out[i] = item{env: &envs[i]}
	}
	s.pos += n
	return out, nil
}

// vecIndexScan yields batches over an index probe's position list.
type vecIndexScan struct {
	rel       *rel.Relation
	binding   string
	rt        *run
	positions []int
	pos       int
	out       []item
}

func (s *vecIndexScan) next(ctx context.Context, want int) ([]item, error) {
	n := len(s.positions) - s.pos
	if n <= 0 {
		return nil, io.EOF
	}
	if n > want {
		n = want
	}
	if err := s.rt.tickN(ctx, n); err != nil {
		return nil, err
	}
	envs := make([]env, n)
	binds := make([]binding, n)
	if cap(s.out) < n {
		s.out = make([]item, vecBatch)
	}
	out := s.out[:n]
	schema := s.rel.Schema
	for i := 0; i < n; i++ {
		binds[i] = binding{name: s.binding, schema: schema, tuple: s.rel.Tuples[s.positions[s.pos+i]]}
		envs[i] = env{rt: s.rt, bindings: binds[i : i+1 : i+1]}
		out[i] = item{env: &envs[i]}
	}
	s.pos += n
	return out, nil
}

// vecOpenScan mirrors openScan for the batch engine.
func vecOpenScan(sa *scanAccess, rt *run, lo, hi int) vecIter {
	var it vecIter
	if sa.idx != nil {
		it = &vecIndexScan{rel: sa.r, binding: sa.binding, rt: rt, positions: sa.idx.Lookup(sa.eq.val)}
	} else {
		it = &vecScan{rel: sa.r, binding: sa.binding, rt: rt, pos: lo, end: hi}
	}
	if pred := andJoin(sa.filters); pred != nil {
		it = &vecFilter{child: it, pred: pred}
	}
	return it
}

// vecFilter keeps items whose predicate evaluates to true, compacting
// the child's batch in place. It loops over all-rejected chunks so a
// successful pull always returns at least one item.
type vecFilter struct {
	child vecIter
	pred  Expr
}

func (f *vecFilter) next(ctx context.Context, want int) ([]item, error) {
	// Constrained pull (a LIMIT upstream): read one row at a time so the
	// scan stops on exactly the row serial execution stops on — a larger
	// chunk could read past the final qualifying row.
	if want < vecBatch {
		want = 1
	}
	for {
		items, err := f.child.next(ctx, want)
		if err != nil {
			return nil, err
		}
		k := 0
		for i := range items {
			v, err := eval(f.pred, items[i].env)
			if err != nil {
				return nil, err
			}
			if b, ok := v.AsBool(); ok && b {
				items[k] = items[i]
				k++
			}
		}
		if k > 0 {
			return items[:k], nil
		}
	}
}

// vecProject evaluates the select items per batch, carving output rows
// from one per-batch value slab.
type vecProject struct {
	child vecIter
	items []SelectItem
}

func (p *vecProject) next(ctx context.Context, want int) ([]item, error) {
	items, err := p.child.next(ctx, want)
	if err != nil {
		return nil, err
	}
	w := len(p.items)
	slab := make([]rel.Value, len(items)*w)
	for i := range items {
		row := slab[i*w : (i+1)*w : (i+1)*w]
		for j, si := range p.items {
			v, err := eval(si.Expr, items[i].env)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		items[i].row = row
	}
	return items, nil
}

// vecDistinct drops rows already seen, compacting in place like
// vecFilter. Rows are retained by the tuple set; upstream operators
// never reuse row storage, so retention is safe.
type vecDistinct struct {
	child vecIter
	seen  tupleSet
}

func (d *vecDistinct) next(ctx context.Context, want int) ([]item, error) {
	// Constrained pull: row-at-a-time, mirroring serial (see vecFilter).
	if want < vecBatch {
		want = 1
	}
	for {
		items, err := d.child.next(ctx, want)
		if err != nil {
			return nil, err
		}
		k := 0
		for i := range items {
			if d.seen.insert(items[i].row) {
				items[k] = items[i]
				k++
			}
		}
		if k > 0 {
			return items[:k], nil
		}
	}
}

// vecLimit applies OFFSET then LIMIT. It caps want at the rows still
// needed — and always below vecBatch — so downstream joins switch to
// the serial one-left-row-at-a-time read pattern and Scanned() stays
// exactly what serial execution would report.
type vecLimit struct {
	child   vecIter
	limit   int // -1 = no limit
	offset  int
	skipped int
	emitted int
}

func (l *vecLimit) next(ctx context.Context, want int) ([]item, error) {
	for l.skipped < l.offset {
		w := l.offset - l.skipped
		if w >= vecBatch {
			w = vecBatch - 1
		}
		items, err := l.child.next(ctx, w)
		if err != nil {
			return nil, err
		}
		l.skipped += len(items)
	}
	if l.limit >= 0 {
		rem := l.limit - l.emitted
		if rem <= 0 {
			return nil, io.EOF
		}
		if want > rem {
			want = rem
		}
		if want >= vecBatch {
			// Never pass an unconstrained want below a live LIMIT: the
			// child must see the pull as constrained (want < vecBatch)
			// and fall back to the serial read pattern.
			want = vecBatch - 1
		}
	}
	items, err := l.child.next(ctx, want)
	if err != nil {
		return nil, err
	}
	l.emitted += len(items)
	return items, nil
}

// vecConcat chains branch iterators in order (UNION ALL shape).
type vecConcat struct {
	children []vecIter
	pos      int
}

func (c *vecConcat) next(ctx context.Context, want int) ([]item, error) {
	for c.pos < len(c.children) {
		items, err := c.children[c.pos].next(ctx, want)
		if err == io.EOF {
			c.pos++
			continue
		}
		return items, err
	}
	return nil, io.EOF
}

// vecOrder is the ORDER BY pipeline breaker for both key modes:
// environment-based keys (non-grouped selects; evalOrderKey) and
// output-row keys (grouped selects and union heads; rowOrderKey). Sort
// keys are evaluated once per row up front instead of per comparison —
// except for single-row inputs, which serial execution never evaluates
// keys for (zero comparisons), and neither do we.
type vecOrder struct {
	child   vecIter
	order   []OrderItem
	items   []SelectItem
	columns []string
	rowMode bool // resolve keys against output rows only

	buf    []sortedItem
	pos    int
	filled bool
	out    []item
}

type sortedItem struct {
	it  item
	key []rel.Value
}

func (o *vecOrder) key(e Expr, it item) (rel.Value, error) {
	if o.rowMode {
		return rowOrderKey(e, o.items, o.columns, it.row)
	}
	return evalOrderKey(e, o.items, it.row, it.env)
}

func (o *vecOrder) fill(ctx context.Context) error {
	for {
		items, err := o.child.next(ctx, vecBatch)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for _, it := range items {
			o.buf = append(o.buf, sortedItem{it: it})
		}
	}
	if len(o.buf) < 2 {
		return nil // zero comparisons; serial never evaluates keys either
	}
	w := len(o.order)
	slab := make([]rel.Value, len(o.buf)*w)
	for i := range o.buf {
		key := slab[i*w : (i+1)*w : (i+1)*w]
		for j, oi := range o.order {
			v, err := o.key(oi.Expr, o.buf[i].it)
			if err != nil {
				return err
			}
			key[j] = v
		}
		o.buf[i].key = key
	}
	sort.SliceStable(o.buf, func(a, b int) bool {
		ka, kb := o.buf[a].key, o.buf[b].key
		for j, oi := range o.order {
			if c := ka[j].Compare(kb[j]); c != 0 {
				if oi.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return nil
}

func (o *vecOrder) next(ctx context.Context, want int) ([]item, error) {
	if !o.filled {
		if err := o.fill(ctx); err != nil {
			return nil, err
		}
		o.filled = true
	}
	n := len(o.buf) - o.pos
	if n <= 0 {
		return nil, io.EOF
	}
	if n > want {
		n = want
	}
	if cap(o.out) < n {
		o.out = make([]item, vecBatch)
	}
	out := o.out[:n]
	for i := 0; i < n; i++ {
		out[i] = o.buf[o.pos+i].it
	}
	o.pos += n
	return out, nil
}
