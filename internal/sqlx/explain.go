package sqlx

import (
	"fmt"
	"strings"

	"repro/internal/rel"
)

// Explain renders the operator tree the plan would execute against db —
// the same bind step as Open, minus execution. Every scan and join node
// names its chosen access path (IndexScan, Scan, IndexJoin, HashJoin
// with build side, NestedLoopJoin, CrossJoin) and carries its estimated
// cardinality; index probes report exact bucket sizes from the
// snapshot's persistent hash indexes. Because access paths bind per
// snapshot, explaining a cached plan against a newer snapshot shows the
// paths that snapshot would use.
func (p *Plan) Explain(db *rel.Database) (string, error) {
	lg := p.lg
	if lg == nil {
		lg = buildLogical(db, p.stmt)
	}
	root, err := explainTree(db, p.stmt, lg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	renderExplain(&b, root, "", "")
	return b.String(), nil
}

// explainNode is one rendered operator.
type explainNode struct {
	label    string
	children []*explainNode
}

func wrapNode(label string, child *explainNode) *explainNode {
	return &explainNode{label: label, children: []*explainNode{child}}
}

// explainTree builds the operator tree for a statement including its
// UNION chain, mirroring openSelect.
func explainTree(db *rel.Database, s *SelectStmt, lg *logicalSelect) (*explainNode, error) {
	head, err := explainSelect(db, s, lg)
	if err != nil {
		return nil, err
	}
	if s.Union == nil {
		return head, nil
	}
	union := &explainNode{children: []*explainNode{head}}
	allMode := true
	for cur, curLg := s, lg; cur.Union != nil; cur, curLg = cur.Union, curLg.union {
		branch, err := explainSelect(db, cur.Union, curLg.union)
		if err != nil {
			return nil, err
		}
		union.children = append(union.children, branch)
		if !cur.UnionAll {
			allMode = false
		}
	}
	union.label = "UnionAll"
	root := union
	if !allMode {
		union.label = "Union"
		root = wrapNode("Distinct", root)
	}
	if len(s.OrderBy) > 0 {
		root = wrapNode(sortLabel(s.OrderBy), root)
	}
	if s.Limit >= 0 || s.Offset > 0 {
		root = wrapNode(limitLabel(s), root)
	}
	return root, nil
}

// explainSelect builds the operator chain of one SELECT, mirroring the
// iterator construction of openSelectOne.
func explainSelect(db *rel.Database, s *SelectStmt, lg *logicalSelect) (*explainNode, error) {
	headOfUnion := s.Union != nil
	var cur *explainNode
	if s.From == nil {
		cur = &explainNode{label: "Result(1 row)"}
	} else {
		sa, err := bindScan(db, lg.tables[0])
		if err != nil {
			return nil, err
		}
		cur = &explainNode{label: scanLabel(sa)}
		est := sa.est
		for i := range s.Joins {
			ja, err := bindJoin(db, lg.tables[i+1], est)
			if err != nil {
				return nil, err
			}
			cur = wrapNode(joinLabel(ja), cur)
			est = ja.est
		}
	}
	if len(lg.residual) > 0 {
		cur = wrapNode("Filter("+exprList(lg.residual)+")", cur)
	}
	items, cols, err := expandItems(db, s)
	if err != nil {
		return nil, err
	}
	grouped := len(s.GroupBy) > 0
	if !grouped {
		for _, si := range items {
			if si.Expr != nil && isAggregate(si.Expr) {
				grouped = true
				break
			}
		}
	}
	if grouped {
		label := "Aggregate(" + strings.Join(cols, ", ") + ")"
		if len(s.GroupBy) > 0 {
			label = "Aggregate(group by " + exprList(s.GroupBy) + ": " + strings.Join(cols, ", ") + ")"
		}
		cur = wrapNode(label, cur)
	} else {
		cur = wrapNode("Project("+strings.Join(cols, ", ")+")", cur)
	}
	if !headOfUnion && len(s.OrderBy) > 0 {
		cur = wrapNode(sortLabel(s.OrderBy), cur)
	}
	if s.Distinct {
		cur = wrapNode("Distinct", cur)
	}
	if !headOfUnion && (s.Limit >= 0 || s.Offset > 0) {
		cur = wrapNode(limitLabel(s), cur)
	}
	return cur, nil
}

// scanLabel names a table access path: the index probe with its bound
// constant, or the sequential scan, plus any remaining pushed filters.
func scanLabel(sa *scanAccess) string {
	var b strings.Builder
	if sa.idx != nil {
		fmt.Fprintf(&b, "IndexScan(%s", tableName(sa.tl.ref))
		fmt.Fprintf(&b, ": %s = %s", strings.ToLower(sa.eq.col), sa.eq.val.String())
	} else {
		fmt.Fprintf(&b, "Scan(%s", tableName(sa.tl.ref))
	}
	if len(sa.filters) > 0 {
		fmt.Fprintf(&b, ", filter %s", exprList(sa.filters))
	}
	fmt.Fprintf(&b, ") [rows≈%.0f]", sa.est)
	return b.String()
}

// joinLabel names a join access path.
func joinLabel(ja *joinAccess) string {
	var b strings.Builder
	b.WriteString(ja.strategy.String())
	b.WriteString("(")
	if ja.tl.join.Kind == JoinLeft {
		b.WriteString("left outer, ")
	}
	b.WriteString(tableName(ja.tl.ref))
	if ja.tl.join.On != nil {
		b.WriteString(" ON ")
		b.WriteString(exprString(ja.tl.join.On))
	}
	if len(ja.filters) > 0 {
		fmt.Fprintf(&b, ", filter %s", exprList(ja.filters))
	}
	fmt.Fprintf(&b, ") [rows≈%.0f]", ja.est)
	return b.String()
}

func tableName(ref *TableRef) string {
	if ref.Alias != "" {
		return strings.ToLower(ref.Name) + " AS " + strings.ToLower(ref.Alias)
	}
	return strings.ToLower(ref.Name)
}

func sortLabel(order []OrderItem) string {
	parts := make([]string, len(order))
	for i, oi := range order {
		parts[i] = exprString(oi.Expr)
		if oi.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort(" + strings.Join(parts, ", ") + ")"
}

func limitLabel(s *SelectStmt) string {
	switch {
	case s.Limit >= 0 && s.Offset > 0:
		return fmt.Sprintf("Limit(%d offset %d)", s.Limit, s.Offset)
	case s.Limit >= 0:
		return fmt.Sprintf("Limit(%d)", s.Limit)
	default:
		return fmt.Sprintf("Offset(%d)", s.Offset)
	}
}

func exprList(list []Expr) string {
	parts := make([]string, len(list))
	for i, e := range list {
		parts[i] = exprString(e)
	}
	return strings.Join(parts, " AND ")
}

// renderExplain prints the tree with box-drawing connectors.
func renderExplain(b *strings.Builder, n *explainNode, prefix, childPrefix string) {
	b.WriteString(prefix)
	b.WriteString(n.label)
	b.WriteByte('\n')
	for i, c := range n.children {
		last := i == len(n.children)-1
		connector, extend := "├─ ", "│  "
		if last {
			connector, extend = "└─ ", "   "
		}
		renderExplain(b, c, childPrefix+connector, childPrefix+extend)
	}
}
