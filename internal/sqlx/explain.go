package sqlx

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/rel"
)

// Explain renders the operator tree the plan would execute against db —
// the same bindSelect step as Open, minus execution, so the join order
// and access paths shown are exactly the ones execution would use.
// Every node carries its estimated cardinality; scan and join nodes
// name their chosen access path (IndexScan, Scan, IndexJoin, HashJoin
// with build side, NestedLoopJoin, CrossJoin), and index probes report
// exact bucket sizes from the snapshot's persistent hash indexes.
// Because access paths bind per snapshot, explaining a cached plan
// against a newer snapshot shows the paths that snapshot would use.
func (p *Plan) Explain(db *rel.Database) (string, error) {
	lg := p.lg
	if lg == nil {
		lg = buildLogical(db, p.stmt)
	}
	root, err := explainTree(db, p.stmt, lg, nil)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	renderExplain(&b, root, "", "")
	return b.String(), nil
}

// explainNode is one rendered operator: its label, estimated output
// cardinality, and (EXPLAIN ANALYZE only) the meter with actual rows
// and cumulative time.
type explainNode struct {
	label    string
	est      float64
	hasEst   bool
	meter    *opMeter
	children []*explainNode
}

func wrapNode(label string, est float64, m *opMeter, child *explainNode) *explainNode {
	n := &explainNode{label: label, est: est, hasEst: true, meter: m}
	if child != nil {
		n.children = []*explainNode{child}
	}
	return n
}

// meterOf reads one meter slot nil-safely.
func meterOf(bm *selMeters, f func(*selMeters) *opMeter) *opMeter {
	if bm == nil {
		return nil
	}
	return f(bm)
}

func planMeterOf(pm *planMeters, f func(*planMeters) *opMeter) *opMeter {
	if pm == nil {
		return nil
	}
	return f(pm)
}

// explainTree builds the operator tree for a statement including its
// UNION chain, mirroring openSelect. pm pairs executed meters with the
// rendered nodes (nil for plain EXPLAIN).
func explainTree(db *rel.Database, s *SelectStmt, lg *logicalSelect, pm *planMeters) (*explainNode, error) {
	head, err := explainSelect(db, s, lg, pm.branch(0))
	if err != nil {
		return nil, err
	}
	if s.Union == nil {
		return head, nil
	}
	union := &explainNode{children: []*explainNode{head}}
	est := head.est
	allMode := true
	bi := 1
	for cur, curLg := s, lg; cur.Union != nil; cur, curLg = cur.Union, curLg.union {
		branch, err := explainSelect(db, cur.Union, curLg.union, pm.branch(bi))
		bi++
		if err != nil {
			return nil, err
		}
		union.children = append(union.children, branch)
		est += branch.est
		if !cur.UnionAll {
			allMode = false
		}
	}
	union.label = "UnionAll"
	union.est, union.hasEst = est, true
	union.meter = planMeterOf(pm, func(m *planMeters) *opMeter { return m.union })
	root := union
	if !allMode {
		union.label = "Union"
		root = wrapNode("Distinct", est, planMeterOf(pm, func(m *planMeters) *opMeter { return m.unionDistinct }), root)
	}
	if len(s.OrderBy) > 0 {
		root = wrapNode(sortLabel(s.OrderBy), est, planMeterOf(pm, func(m *planMeters) *opMeter { return m.unionSort }), root)
	}
	if s.Limit >= 0 || s.Offset > 0 {
		est = limitEst(est, s)
		root = wrapNode(limitLabel(s), est, planMeterOf(pm, func(m *planMeters) *opMeter { return m.unionLimit }), root)
	}
	return root, nil
}

// explainSelect builds the operator chain of one SELECT through the
// same bindSelect as execution, annotating every node with its
// cardinality estimate.
func explainSelect(db *rel.Database, s *SelectStmt, lg *logicalSelect, bm *selMeters) (*explainNode, error) {
	headOfUnion := s.Union != nil
	var cur *explainNode
	var est float64
	var sel *selectAccess
	if s.From == nil {
		est = 1
		cur = wrapNode("Result(1 row)", est, meterOf(bm, func(m *selMeters) *opMeter { return m.scan }), nil)
	} else {
		var err error
		sel, err = bindSelect(db, lg)
		if err != nil {
			return nil, err
		}
		est = sel.scan.est
		cur = wrapNode(scanLabel(sel.scan), est, meterOf(bm, func(m *selMeters) *opMeter { return m.scan }), nil)
		for i, ja := range sel.joins {
			est = ja.est
			cur = wrapNode(joinLabel(ja), est, bm.joinMeter(i), cur)
		}
	}
	if len(lg.residual) > 0 {
		est = filterEst(est, len(lg.residual))
		cur = wrapNode("Filter("+exprList(lg.residual)+")", est,
			meterOf(bm, func(m *selMeters) *opMeter { return m.residual }), cur)
	}
	// The exchange appears only in EXPLAIN ANALYZE, where execution
	// recorded whether the branch actually ran parallel morsels.
	if bm != nil && bm.gather != nil {
		cur = wrapNode(fmt.Sprintf("Gather(workers=%d, morsels=%d)", bm.gatherWorkers, bm.gatherMorsels),
			est, bm.gather, cur)
	}
	items, cols, err := expandItems(db, s)
	if err != nil {
		return nil, err
	}
	grouped := len(s.GroupBy) > 0
	if !grouped {
		for _, si := range items {
			if si.Expr != nil && isAggregate(si.Expr) {
				grouped = true
				break
			}
		}
	}
	if grouped {
		label := "Aggregate(" + strings.Join(cols, ", ") + ")"
		if len(s.GroupBy) > 0 {
			label = "Aggregate(group by " + exprList(s.GroupBy) + ": " + strings.Join(cols, ", ") + ")"
		}
		est = groupEst(db, sel, s.GroupBy, est)
		cur = wrapNode(label, est, meterOf(bm, func(m *selMeters) *opMeter { return m.agg }), cur)
	} else {
		cur = wrapNode("Project("+strings.Join(cols, ", ")+")", est,
			meterOf(bm, func(m *selMeters) *opMeter { return m.agg }), cur)
	}
	if !headOfUnion && len(s.OrderBy) > 0 {
		cur = wrapNode(sortLabel(s.OrderBy), est, meterOf(bm, func(m *selMeters) *opMeter { return m.sort }), cur)
	}
	if s.Distinct {
		cur = wrapNode("Distinct", est, meterOf(bm, func(m *selMeters) *opMeter { return m.distinct }), cur)
	}
	if !headOfUnion && (s.Limit >= 0 || s.Offset > 0) {
		est = limitEst(est, s)
		cur = wrapNode(limitLabel(s), est, meterOf(bm, func(m *selMeters) *opMeter { return m.limit }), cur)
	}
	return cur, nil
}

// joinMeter returns the i'th join meter, nil-safely.
func (bm *selMeters) joinMeter(i int) *opMeter {
	if bm == nil || i >= len(bm.joins) {
		return nil
	}
	return bm.joins[i]
}

// filterEst applies the fallback selectivity guess for n residual
// conjuncts (they span bindings, so per-column statistics do not apply).
func filterEst(in float64, n int) float64 {
	out := in * selectivity(n)
	if out < 1 && in >= 1 {
		out = 1
	}
	return out
}

// limitEst caps an estimate by OFFSET/LIMIT.
func limitEst(in float64, s *SelectStmt) float64 {
	out := in
	if s.Offset > 0 {
		out -= float64(s.Offset)
		if out < 0 {
			out = 0
		}
	}
	if s.Limit >= 0 && out > float64(s.Limit) {
		out = float64(s.Limit)
	}
	return out
}

// groupEst estimates group count as the product of the grouping
// columns' distinct counts (fallback guess per non-column key), capped
// by the input cardinality.
func groupEst(db *rel.Database, sel *selectAccess, groupBy []Expr, in float64) float64 {
	if len(groupBy) == 0 {
		return 1
	}
	bd := newBinder(db)
	if sel != nil {
		if sel.scan != nil {
			bd.add(sel.scan.binding, sel.scan.r)
		}
		for _, ja := range sel.joins {
			bd.add(ja.binding, ja.right)
		}
	}
	est := 1.0
	for _, e := range groupBy {
		d := 0.0
		if cr, ok := e.(*ColumnRef); ok {
			d = bd.ndv(cr)
		}
		if d <= 0 {
			d = eqSelectivityDiv
		}
		est *= d
	}
	if est > in {
		est = in
	}
	if est < 1 && in >= 1 {
		est = 1
	}
	return est
}

// scanLabel names a table access path: the index probe with its bound
// constant, or the sequential scan, plus any remaining pushed filters.
func scanLabel(sa *scanAccess) string {
	var b strings.Builder
	if sa.idx != nil {
		fmt.Fprintf(&b, "IndexScan(%s", tableName(sa.tl.ref))
		fmt.Fprintf(&b, ": %s = %s", strings.ToLower(sa.eq.col), sa.eq.val.String())
	} else {
		fmt.Fprintf(&b, "Scan(%s", tableName(sa.tl.ref))
	}
	if len(sa.filters) > 0 {
		fmt.Fprintf(&b, ", filter %s", exprList(sa.filters))
	}
	b.WriteString(")")
	return b.String()
}

// joinLabel names a join access path with its effective (possibly
// reassigned) predicate, right-side filters and post-join filters.
func joinLabel(ja *joinAccess) string {
	var b strings.Builder
	b.WriteString(ja.strategy.String())
	b.WriteString("(")
	if ja.kind == JoinLeft {
		b.WriteString("left outer, ")
	}
	b.WriteString(tableName(ja.tl.ref))
	if ja.on != nil {
		b.WriteString(" ON ")
		b.WriteString(exprString(ja.on))
	}
	if len(ja.filters) > 0 {
		fmt.Fprintf(&b, ", filter %s", exprList(ja.filters))
	}
	if len(ja.post) > 0 {
		fmt.Fprintf(&b, ", post %s", exprList(ja.post))
	}
	b.WriteString(")")
	return b.String()
}

func tableName(ref *TableRef) string {
	if ref.Alias != "" {
		return strings.ToLower(ref.Name) + " AS " + strings.ToLower(ref.Alias)
	}
	return strings.ToLower(ref.Name)
}

func sortLabel(order []OrderItem) string {
	parts := make([]string, len(order))
	for i, oi := range order {
		parts[i] = exprString(oi.Expr)
		if oi.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort(" + strings.Join(parts, ", ") + ")"
}

func limitLabel(s *SelectStmt) string {
	switch {
	case s.Limit >= 0 && s.Offset > 0:
		return fmt.Sprintf("Limit(%d offset %d)", s.Limit, s.Offset)
	case s.Limit >= 0:
		return fmt.Sprintf("Limit(%d)", s.Limit)
	default:
		return fmt.Sprintf("Offset(%d)", s.Offset)
	}
}

func exprList(list []Expr) string {
	parts := make([]string, len(list))
	for i, e := range list {
		parts[i] = exprString(e)
	}
	return strings.Join(parts, " AND ")
}

// renderExplain prints the tree with box-drawing connectors. Every node
// shows its estimate; metered nodes (EXPLAIN ANALYZE) add actual rows
// and cumulative operator time.
func renderExplain(b *strings.Builder, n *explainNode, prefix, childPrefix string) {
	b.WriteString(prefix)
	b.WriteString(n.label)
	if n.hasEst {
		fmt.Fprintf(b, " [rows≈%.0f", n.est)
		if n.meter != nil {
			fmt.Fprintf(b, " actual=%d time=%s",
				atomic.LoadInt64(&n.meter.rows), fmtNanos(atomic.LoadInt64(&n.meter.nanos)))
			if batches := atomic.LoadInt64(&n.meter.batches); batches > 0 {
				fmt.Fprintf(b, " batches=%d", batches)
			}
		}
		b.WriteByte(']')
	}
	b.WriteByte('\n')
	for i, c := range n.children {
		last := i == len(n.children)-1
		connector, extend := "├─ ", "│  "
		if last {
			connector, extend = "└─ ", "   "
		}
		renderExplain(b, c, childPrefix+connector, childPrefix+extend)
	}
}
