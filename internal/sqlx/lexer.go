// Package sqlx implements a SQL subset over the rel engine: the paper's
// third access mode, "querying allows full SQL queries on the schemata as
// imported" (§4.6). Supported: SELECT [DISTINCT] with expressions and
// aggregates, multi-way JOIN ... ON, WHERE, GROUP BY, HAVING, ORDER BY,
// LIMIT/OFFSET, CREATE TABLE, INSERT, UPDATE, DELETE.
package sqlx

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators
	tokKeyword // recognized SQL keyword (uppercased)
)

type token struct {
	kind tokenKind
	text string // keywords are uppercased; idents keep original case
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "AS": true, "JOIN": true, "INNER": true, "LEFT": true,
	"OUTER": true, "ON": true, "GROUP": true, "BY": true, "HAVING": true,
	"ORDER": true, "ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"DISTINCT": true, "INSERT": true, "INTO": true, "VALUES": true,
	"CREATE": true, "TABLE": true, "UPDATE": true, "SET": true,
	"DELETE": true, "NULL": true, "IS": true, "IN": true, "LIKE": true,
	"BETWEEN": true, "TRUE": true, "FALSE": true, "COUNT": true,
	"SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"INTEGER": true, "INT": true, "REAL": true, "FLOAT": true,
	"TEXT": true, "VARCHAR": true, "BOOLEAN": true, "PRIMARY": true,
	"KEY": true, "UNIQUE": true, "REFERENCES": true, "FOREIGN": true,
	"DROP": true, "EXISTS": true, "IF": true, "CROSS": true, "UNION": true,
	"ALL": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes a SQL string.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent(start)
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber(start)
		case c == '\'':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexQuotedIdent(start); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(start); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexIdent(start int) {
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
	}
}

func (l *lexer) lexNumber(start int) {
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
		} else if c == '.' && !seenDot {
			seenDot = true
			l.pos++
		} else {
			break
		}
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlx: unterminated string literal at offset %d", start)
}

func (l *lexer) lexQuotedIdent(start int) error {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			l.toks = append(l.toks, token{kind: tokIdent, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlx: unterminated quoted identifier at offset %d", start)
}

var twoCharSymbols = map[string]bool{
	"<=": true, ">=": true, "<>": true, "!=": true, "||": true,
}

func (l *lexer) lexSymbol(start int) error {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharSymbols[two] {
			l.pos += 2
			l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: start})
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '=', '<', '>', '.', ';', '%':
		l.pos++
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	}
	return fmt.Errorf("sqlx: unexpected character %q at offset %d", c, start)
}
