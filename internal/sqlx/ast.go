package sqlx

import "repro/internal/rel"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query, possibly the head of a UNION chain.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     *TableRef
	Joins    []Join
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 if absent
	Offset   int // 0 if absent

	// Union chains another SELECT whose rows are appended; UnionAll
	// keeps duplicates. ORDER BY/LIMIT/OFFSET of the head apply to the
	// combined result.
	Union    *SelectStmt
	UnionAll bool
}

func (*SelectStmt) stmt() {}

// SelectItem is one projection item: an expression with an optional alias,
// or a star ("*" / "t.*").
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	// StarTable qualifies a star, e.g. "t.*"; empty for bare "*".
	StarTable string
}

// TableRef names a base relation with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Binding returns the name the table is addressable by.
func (t *TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinKind distinguishes inner from left outer joins.
type JoinKind int

const (
	// JoinInner is a standard inner join.
	JoinInner JoinKind = iota
	// JoinLeft is a left outer join.
	JoinLeft
	// JoinCross is a cross join (no ON clause).
	JoinCross
)

// Join is one JOIN clause.
type Join struct {
	Kind  JoinKind
	Table *TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

func (*InsertStmt) stmt() {}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Kind       rel.Kind
	PrimaryKey bool
	Unique     bool
	References *rel.ForeignKey // nil if no REFERENCES clause
}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Table       string
	IfNotExists bool
	Columns     []ColumnDef
}

func (*CreateTableStmt) stmt() {}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct {
	Table    string
	IfExists bool
}

func (*DropTableStmt) stmt() {}

// UpdateStmt is UPDATE t SET col=expr,... [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

func (*UpdateStmt) stmt() {}

// Assignment is one SET clause element.
type Assignment struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// Expr is a SQL expression node.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Value rel.Value }

func (*Literal) expr() {}

// ColumnRef names a column, optionally qualified by table binding.
type ColumnRef struct {
	Table  string // may be empty
	Column string
}

func (*ColumnRef) expr() {}

// BinaryExpr applies an infix operator.
type BinaryExpr struct {
	Op    string // "=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/", "%", "AND", "OR", "LIKE", "||"
	Left  Expr
	Right Expr
}

func (*BinaryExpr) expr() {}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op   string // "NOT", "-"
	Expr Expr
}

func (*UnaryExpr) expr() {}

// IsNullExpr is "expr IS [NOT] NULL".
type IsNullExpr struct {
	Expr   Expr
	Negate bool
}

func (*IsNullExpr) expr() {}

// InExpr is "expr [NOT] IN (v1, v2, ...)" or "expr [NOT] IN (SELECT ...)".
// Subqueries are materialized into List before evaluation (uncorrelated
// subqueries only).
type InExpr struct {
	Expr   Expr
	List   []Expr
	Sub    *SelectStmt
	Negate bool
}

func (*InExpr) expr() {}

// BetweenExpr is "expr [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	Expr   Expr
	Lo, Hi Expr
	Negate bool
}

func (*BetweenExpr) expr() {}

// FuncExpr is a function or aggregate call.
type FuncExpr struct {
	Name     string // uppercased: COUNT, SUM, AVG, MIN, MAX, LENGTH, LOWER, UPPER, SUBSTR, ABS
	Star     bool   // COUNT(*)
	Distinct bool   // COUNT(DISTINCT x)
	Args     []Expr
}

func (*FuncExpr) expr() {}

// aggregateFuncs are the functions computed per group.
var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// isAggregate reports whether e contains an aggregate call.
func isAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncExpr:
		if aggregateFuncs[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if isAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return isAggregate(x.Left) || isAggregate(x.Right)
	case *UnaryExpr:
		return isAggregate(x.Expr)
	case *IsNullExpr:
		return isAggregate(x.Expr)
	case *BetweenExpr:
		return isAggregate(x.Expr) || isAggregate(x.Lo) || isAggregate(x.Hi)
	case *InExpr:
		if isAggregate(x.Expr) {
			return true
		}
		for _, a := range x.List {
			if isAggregate(a) {
				return true
			}
		}
	}
	return false
}
