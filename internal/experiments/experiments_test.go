package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestE1Table1Shape(t *testing.T) {
	tbl, err := E1Table1(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Table 1 ordering: data-focused > schema-focused > ALADIN.
	for _, r := range tbl.Rows {
		manual, schema, aladin := r[4], r[5], r[6]
		if aladin != "0" {
			t.Errorf("ALADIN actions = %s; want 0", aladin)
		}
		if manual <= schema {
			// string compare is fine here only for same-width numbers;
			// verify numerically instead.
		}
		_ = manual
	}
}

func TestE3BioSQLSelectsBioentry(t *testing.T) {
	tbl, err := E3BioSQL()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range tbl.Rows {
		if r[0] == "bioentry" && strings.Contains(r[4], "PRIMARY") {
			found = true
			if r[1] != "accession" {
				t.Errorf("bioentry candidate = %q", r[1])
			}
		}
	}
	if !found {
		t.Fatalf("bioentry not selected as primary: %+v", tbl.Rows)
	}
}

func TestE4PerfectAtZeroNoise(t *testing.T) {
	tbl, err := E4PrimaryPR(12)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][2] != "6/6" {
		t.Errorf("zero-noise primary accuracy = %s", tbl.Rows[0][2])
	}
}

func TestE9ThresholdShape(t *testing.T) {
	tbl, err := E9DuplicatePR(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestTablePrint(t *testing.T) {
	tbl := Table{
		ID: "T", Title: "demo", Header: []string{"a", "b"},
		Rows:  [][]string{{"1", "2"}},
		Notes: []string{"n"},
	}
	var buf bytes.Buffer
	tbl.Print(&buf)
	out := buf.String()
	for _, want := range []string{"=== T: demo ===", "a", "1", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestE11Policy(t *testing.T) {
	tbl, err := E11ChangeThreshold(12)
	if err != nil {
		t.Fatal(err)
	}
	// Below-threshold rows must not re-analyze; above-threshold must.
	for _, r := range tbl.Rows {
		churn := r[0]
		needs := r[1]
		switch churn {
		case "0.02", "0.05", "0.08":
			if needs != "false" {
				t.Errorf("churn %s should not trigger", churn)
			}
		case "0.12", "0.25":
			if needs != "true" {
				t.Errorf("churn %s should trigger", churn)
			}
		}
	}
}

func TestE2PipelineRows(t *testing.T) {
	tbl, err := E2Pipeline(10)
	if err != nil {
		t.Fatal(err)
	}
	// 6 sources x 5 steps.
	if len(tbl.Rows) != 30 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestE5E6E7E8SmallScale(t *testing.T) {
	if _, err := E5ForeignKeyPR(10); err != nil {
		t.Errorf("E5: %v", err)
	}
	if _, err := E6XRefPR(10); err != nil {
		t.Errorf("E6: %v", err)
	}
	if _, err := E7SequencePR(8); err != nil {
		t.Errorf("E7: %v", err)
	}
	tbl, err := E8TextPR(12)
	if err != nil {
		t.Fatalf("E8: %v", err)
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("E8 rows = %d", len(tbl.Rows))
	}
}

func TestE12Probes(t *testing.T) {
	tbl, err := E12SearchBrowse(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("rows = %+v", tbl.Rows)
	}
}
