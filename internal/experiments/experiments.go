// Package experiments regenerates every table and figure of the paper's
// evaluation programme (see DESIGN.md §3 for the experiment index). Each
// experiment returns a printable Table; cmd/experiments prints them and
// the root bench suite wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/discovery"
	"repro/internal/dup"
	"repro/internal/eval"
	"repro/internal/linkdisc"
	"repro/internal/metadata"
	"repro/internal/profile"
	"repro/internal/rel"
	"repro/internal/search"
	"repro/internal/seq"
)

// Table is one reproduced table/figure.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Print renders the table.
func (t Table) Print(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintln(w, "  note: "+n)
	}
	fmt.Fprintln(w)
}

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func itos(i int) string   { return fmt.Sprintf("%d", i) }
func dur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

// Workers bounds the pipeline worker pool of every experiment's system
// (0 = all CPUs, 1 = serial); cmd/experiments sets it from -workers.
var Workers int

// buildSystem integrates a corpus and returns the system.
func buildSystem(corpus *datagen.Corpus, opts core.Options) (*core.System, []*core.AddReport, error) {
	if opts.Workers == 0 {
		opts.Workers = Workers
	}
	sys := core.New(opts)
	var reports []*core.AddReport
	for _, src := range corpus.Sources {
		rep, err := sys.AddSource(src)
		if err != nil {
			return nil, nil, fmt.Errorf("integrating %s: %w", src.Name, err)
		}
		reports = append(reports, rep)
	}
	return sys, reports, nil
}

// E1Table1 reproduces Table 1 ("Spectrum of integration approaches") with
// the cost column quantified: manual actions to integrate each corpus
// source under the three approaches, plus ALADIN's measured wall time.
func E1Table1(proteins int) (Table, error) {
	corpus := datagen.Generate(datagen.Config{Seed: 1, Proteins: proteins})
	sys := core.New(core.Options{OntologySources: []string{"go"}, Workers: Workers})
	t := Table{
		ID:    "E1",
		Title: "Table 1 — integration cost per source (manual actions; ALADIN adds measured machine time)",
		Header: []string{"source", "relations", "attrs", "tuples",
			"data-focused", "schema-focused", "ALADIN", "aladin-wall"},
	}
	for _, src := range corpus.Sources {
		attrs := 0
		for _, r := range src.Relations() {
			attrs += r.Schema.Len()
		}
		cm := eval.CostModel{Relations: src.Len(), Attributes: attrs, Tuples: src.TotalTuples()}
		start := time.Now()
		if _, err := sys.AddSource(src); err != nil {
			return t, err
		}
		wall := time.Since(start)
		t.Rows = append(t.Rows, []string{
			src.Name, itos(src.Len()), itos(attrs), itos(src.TotalTuples()),
			itos(cm.ManualCurationActions()), itos(cm.SchemaMappingActions()),
			itos(cm.ALADINActions(false)), dur(wall),
		})
	}
	t.Notes = append(t.Notes,
		"data-focused = curator touches every tuple; schema-focused = wrapper + mapping per attribute;",
		"ALADIN = 0-1 manual actions (a quick-and-dirty parser only when no import method exists, §3)")
	return t, nil
}

// E2Pipeline reproduces Figure 2: the five integration steps with per-step
// timings and artifact counts over the full corpus.
func E2Pipeline(proteins int) (Table, error) {
	corpus := datagen.Generate(datagen.Config{Seed: 1, Proteins: proteins})
	sys, reports, err := buildSystem(corpus, core.Options{OntologySources: []string{"go"}})
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "E2",
		Title:  "Figure 2 — integration steps per source (timings and discovered artifacts)",
		Header: []string{"source", "step", "time", "artifacts"},
	}
	for _, rep := range reports {
		for _, st := range rep.Timings {
			artifact := ""
			switch st.Step {
			case "discover-structure":
				artifact = fmt.Sprintf("primary=%s fks=%d paths=%d",
					rep.Structure.Primary, len(rep.Structure.ForeignKeys), len(rep.Structure.Paths))
			case "link-discovery":
				artifact = fmt.Sprintf("xref-attrs=%d pairs-checked=%d",
					len(rep.XRefAttributes), rep.LinkStats.AttributePairsChecked)
			case "duplicate-detection":
				artifact = fmt.Sprintf("comparisons=%d flagged=%d",
					rep.DupStats.Comparisons, rep.DupStats.Flagged)
			}
			t.Rows = append(t.Rows, []string{rep.Source, st.Step, dur(st.Duration), artifact})
		}
	}
	st := sys.Repo.Stats()
	t.Notes = append(t.Notes, fmt.Sprintf("final repository: %d links %v", st.Links, st.LinksByType))
	return t, nil
}

// biosqlFigure3 builds the Figure 3 BioSQL fragment with realistic value
// distributions (the §5 case-study instance).
func biosqlFigure3() *rel.Database {
	db := rel.NewDatabase("biosql")
	rng := rand.New(rand.NewSource(5))
	n := 30
	names := []string{"HBA_HUMAN", "MYG_HUMAN", "INS_RAT", "K1C9_MOUSE", "CYC_BOVIN",
		"ALBU_HUMAN", "LYSC_CHICK", "TRY_PIG", "CATA_HUMAN", "P53_HUMAN"}
	bioentry := db.Create("bioentry", rel.TextSchema(
		"bioentry_id", "accession", "name", "taxon_id", "description"))
	taxon := db.Create("taxon", rel.TextSchema("taxon_id", "scientific_name"))
	biosequence := db.Create("biosequence", rel.TextSchema("bioentry_id", "biosequence_str"))
	comment := db.Create("comment", rel.TextSchema("comment_id", "bioentry_id", "comment_text"))
	dbref := db.Create("dbref", rel.TextSchema("dbref_id", "bioentry_id", "dbname", "accession_ref"))
	ontologyterm := db.Create("ontologyterm", rel.TextSchema("term_id", "term_name", "term_definition"))
	bioentryTerm := db.Create("bioentry_term", rel.TextSchema("bioentry_id", "term_id"))

	for i := 0; i < 4; i++ {
		taxon.AppendRaw(itos(9606+i), fmt.Sprintf("Species number %d", i))
	}
	for i := 0; i < 8; i++ {
		ontologyterm.AppendRaw(itos(i+1), fmt.Sprintf("GO:000%d000", i+1),
			fmt.Sprintf("a controlled vocabulary definition of function class %d", i))
	}
	bases := "ACGT"
	for i := 0; i < n; i++ {
		bid := itos(i + 1)
		bioentry.AppendRaw(bid, fmt.Sprintf("P%05d", 20000+i),
			names[i%len(names)]+fmt.Sprintf("_%d", i),
			itos(9606+(i%4)),
			fmt.Sprintf("functional description number %d with several free text words", i))
		seqb := make([]byte, 150)
		for j := range seqb {
			seqb[j] = bases[rng.Intn(4)]
		}
		biosequence.AppendRaw(bid, string(seqb))
		for c := 0; c < 2; c++ {
			comment.AppendRaw(itos(i*2+c+1), bid, fmt.Sprintf("curator remark %d-%d about this entry", i, c))
		}
		dbref.AppendRaw(itos(i+1), bid, "PDB", fmt.Sprintf("1AB%d", i))
		bioentryTerm.AppendRaw(bid, itos((i%8)+1))
	}
	return db
}

// E3BioSQL reproduces the Figure 3 / §5 case study: the discovery walk
// over the BioSQL schema, printing candidates, rejections, in-degrees and
// the chosen primary relation.
func E3BioSQL() (Table, error) {
	db := biosqlFigure3()
	profs, err := profile.ProfileDatabase(db, profile.Options{})
	if err != nil {
		return Table{}, err
	}
	st, err := discovery.Analyze(db, profs, discovery.DefaultOptions())
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "E3",
		Title:  "Figure 3 / §5 — BioSQL case study: accession candidates and primary-relation selection",
		Header: []string{"relation", "candidate", "reason/rejections", "in-degree", "chosen"},
	}
	for _, r := range db.Relations() {
		cand, ok := st.Candidates[strings.ToLower(r.Name)]
		candStr, reason := "-", ""
		if ok {
			candStr = cand.Column
			reason = fmt.Sprintf("unique, non-digit, fixed-length (mean %.1f)", cand.MeanLen)
		} else {
			reason = rejectionReasons(r, profs)
		}
		chosen := ""
		if strings.EqualFold(r.Name, st.Primary) {
			chosen = "<== PRIMARY"
		}
		t.Rows = append(t.Rows, []string{
			r.Name, candStr, reason, itos(st.InDegree[strings.ToLower(r.Name)]), chosen,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("primary relation %q with accession column %q; %d guessed FKs; all relations reachable: %v",
			st.Primary, st.PrimaryAccession, len(st.ForeignKeys), len(st.Unreachable) == 0))
	be := profs[profile.Key("bioentry", "taxon_id")]
	bid := profs[profile.Key("bioentry", "bioentry_id")]
	nm := profs[profile.Key("bioentry", "name")]
	t.Notes = append(t.Notes, fmt.Sprintf(
		"§5 rejections hold: taxon_id unique=%v; bioentry_id all-non-digit=%v; name length-spread=%.2f (>0.20)",
		be.Unique, bid.AllValuesHaveNonDigit, nm.LenSpreadRatio))
	return t, nil
}

func rejectionReasons(r *rel.Relation, profs map[string]*profile.ColumnProfile) string {
	var reasons []string
	for _, c := range r.Schema.Columns {
		p := profs[profile.Key(r.Name, c.Name)]
		if p == nil {
			continue
		}
		switch {
		case !p.Unique:
		case !p.AllValuesHaveNonDigit:
		case p.MinLen < 4:
		case p.LenSpreadRatio > 0.2:
			reasons = append(reasons, c.Name+":length-spread")
		}
	}
	if len(reasons) == 0 {
		return "no column passes the accession rules"
	}
	return strings.Join(reasons, ",")
}

// E4PrimaryPR sweeps accession-format noise and reports primary-relation
// discovery accuracy per noise level.
func E4PrimaryPR(proteins int) (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "§3/§5 — precision/recall of primary-relation discovery vs accession noise",
		Header: []string{"noise", "sources", "primary-correct", "accession-correct"},
	}
	for _, noise := range []float64{0, 0.1, 0.2, 0.3} {
		corpus := datagen.Generate(datagen.Config{
			Seed: 2, Proteins: proteins,
			Noise: datagen.Noise{AccessionViolation: noise},
		})
		okPrimary, okAcc := 0, 0
		for _, src := range corpus.Sources {
			profs, err := profile.ProfileDatabase(src, profile.Options{})
			if err != nil {
				return t, err
			}
			st, err := discovery.Analyze(src, profs, discovery.DefaultOptions())
			if err != nil {
				return t, err
			}
			name := strings.ToLower(src.Name)
			if strings.EqualFold(st.Primary, corpus.Gold.Primary[name]) {
				okPrimary++
				if strings.EqualFold(st.PrimaryAccession, corpus.Gold.Accession[name]) {
					okAcc++
				}
			}
		}
		n := len(corpus.Sources)
		t.Rows = append(t.Rows, []string{
			f2(noise), itos(n),
			fmt.Sprintf("%d/%d", okPrimary, n),
			fmt.Sprintf("%d/%d", okAcc, n),
		})
	}
	return t, nil
}

// E5ForeignKeyPR scores guessed FK graphs against the gold FKs, with and
// without the equal-size dictionary confusion case.
func E5ForeignKeyPR(proteins int) (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  "§3/§5 — precision/recall of foreign-key (secondary object) discovery",
		Header: []string{"variant", "source", "P", "R", "F1"},
	}
	for _, variant := range []struct {
		name string
		eq   bool
	}{{"plain", false}, {"equal-dictionaries", true}} {
		corpus := datagen.Generate(datagen.Config{
			Seed: 3, Proteins: proteins,
			Noise: datagen.Noise{EqualDictionaries: variant.eq},
		})
		var total eval.PR
		for _, src := range corpus.Sources {
			gold := corpus.Gold.ForeignKeys[strings.ToLower(src.Name)]
			if len(gold) == 0 {
				continue
			}
			profs, err := profile.ProfileDatabase(src, profile.Options{})
			if err != nil {
				return t, err
			}
			st, err := discovery.Analyze(src, profs, discovery.DefaultOptions())
			if err != nil {
				return t, err
			}
			var predicted []rel.ForeignKey
			for _, d := range st.ForeignKeys {
				predicted = append(predicted, d.From)
			}
			pr := eval.CompareFKs(predicted, gold)
			total.Add(pr)
			t.Rows = append(t.Rows, []string{
				variant.name, src.Name, f3(pr.Precision()), f3(pr.Recall()), f3(pr.F1()),
			})
		}
		t.Rows = append(t.Rows, []string{
			variant.name, "TOTAL", f3(total.Precision()), f3(total.Recall()), f3(total.F1()),
		})
	}
	return t, nil
}

// E6XRefPR sweeps cross-reference corruption and reports link P/R.
func E6XRefPR(proteins int) (Table, error) {
	t := Table{
		ID:     "E6",
		Title:  "§4.4 — precision/recall of explicit cross-reference discovery vs corruption",
		Header: []string{"corruption", "missing", "gold-links", "P", "R", "F1"},
	}
	for _, noise := range []struct{ corrupt, missing float64 }{
		{0, 0}, {0.1, 0}, {0.3, 0}, {0, 0.3}, {0.2, 0.2},
	} {
		corpus := datagen.Generate(datagen.Config{
			Seed: 4, Proteins: proteins,
			Noise: datagen.Noise{XRefCorruption: noise.corrupt, XRefMissing: noise.missing},
		})
		sys, _, err := buildSystem(corpus, core.Options{
			OntologySources: []string{"go"}, DisableSearchIndex: true,
		})
		if err != nil {
			return t, err
		}
		gold := append([]datagen.GoldLink{}, corpus.Gold.XRefs...)
		gold = append(gold, corpus.Gold.TermXRefs...)
		pr := eval.CompareLinks(sys.Repo.AllLinks(), metadata.LinkXRef, gold)
		t.Rows = append(t.Rows, []string{
			f2(noise.corrupt), f2(noise.missing), itos(len(gold)),
			f3(pr.Precision()), f3(pr.Recall()), f3(pr.F1()),
		})
	}
	t.Notes = append(t.Notes,
		"corrupted values dangle (cannot resolve, so recall is unaffected at the link level);",
		"dropped references shrink the gold set itself — the §5 'annotation backlog'")
	return t, nil
}

// E7SequencePR sweeps sequence mutation rates and reports homology-link
// P/R plus the seeding-vs-full-alignment cost comparison.
func E7SequencePR(proteins int) (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  "§4.4 — implicit sequence links: P/R vs mutation rate, and k-mer seeding cost",
		Header: []string{"mutation", "P", "R", "F1", "seeded-candidates", "all-pairs"},
	}
	for _, mut := range []float64{0.01, 0.05, 0.10, 0.20, 0.40} {
		corpus := datagen.Generate(datagen.Config{
			Seed: 5, Proteins: proteins,
			Noise: datagen.Noise{SeqMutation: mut},
		})
		// Only swissprot + pdb + genbank carry sequences; integrate those.
		sys := core.New(core.Options{DisableSearchIndex: true, Workers: Workers})
		for _, name := range []string{"swissprot", "pdb", "genbank"} {
			if _, err := sys.AddSource(corpus.Source(name)); err != nil {
				return t, err
			}
		}
		pr := eval.CompareLinks(sys.Repo.AllLinks(), metadata.LinkSequence, corpus.Gold.Homologs)

		// Seeding selectivity: how many candidate targets does the k-mer
		// index admit per query vs the quadratic baseline.
		ix := seq.NewIndex(8)
		sp := corpus.Source("swissprot").Relation("sequence")
		si := sp.Schema.Index("seq")
		for i, tu := range sp.Tuples {
			ix.Add(itos(i), tu[si].AsString())
		}
		pdb := corpus.Source("pdb").Relation("chain")
		ci := pdb.Schema.Index("chain_seq")
		candidates := 0
		for _, tu := range pdb.Tuples {
			candidates += ix.CandidateCount(tu[ci].AsString(), 2)
		}
		t.Rows = append(t.Rows, []string{
			f2(mut), f3(pr.Precision()), f3(pr.Recall()), f3(pr.F1()),
			itos(candidates), itos(len(pdb.Tuples) * len(sp.Tuples)),
		})
	}
	return t, nil
}

// E8TextPR reports entity-mention and description-similarity link quality
// on the source pairs each channel targets: entity mentions connect OMIM
// clinical text to Swiss-Prot entry names; description similarity
// connects the Swiss-Prot/PIR copies of the same protein (the gold
// duplicates share their annotation wording).
func E8TextPR(proteins int) (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "§4.4 — implicit text links: entity mentions and description similarity",
		Header: []string{"channel", "source-pair", "gold", "P", "R", "F1"},
	}
	corpus := datagen.Generate(datagen.Config{Seed: 6, Proteins: proteins})
	mkSource := func(name string) (*linkdisc.Source, error) {
		db := corpus.Source(name)
		profs, err := profile.ProfileDatabase(db, profile.Options{})
		if err != nil {
			return nil, err
		}
		st, err := discovery.Analyze(db, profs, discovery.DefaultOptions())
		if err != nil {
			return nil, err
		}
		return &linkdisc.Source{DB: db, Structure: st, Profiles: profs}, nil
	}
	pairEval := func(a, b string, entityOnly bool, gold []datagen.GoldLink) (eval.PR, error) {
		sa, err := mkSource(a)
		if err != nil {
			return eval.PR{}, err
		}
		sb, err := mkSource(b)
		if err != nil {
			return eval.PR{}, err
		}
		eng := linkdisc.New(linkdisc.Options{DisableSequenceLinks: true,
			DisableTextLinks: entityOnly, DisableEntityLinks: !entityOnly})
		if err := eng.AddSource(sa); err != nil {
			return eval.PR{}, err
		}
		if err := eng.AddSource(sb); err != nil {
			return eval.PR{}, err
		}
		links, _, _ := eng.DiscoverAll()
		var textLinks []metadata.Link
		for _, l := range links {
			if l.Type == metadata.LinkText {
				textLinks = append(textLinks, l)
			}
		}
		return eval.CompareLinks(textLinks, metadata.LinkText, gold), nil
	}
	prEnt, err := pairEval("omim", "swissprot", true, corpus.Gold.EntityLinks)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"entity-mention", "omim~swissprot",
		itos(len(corpus.Gold.EntityLinks)),
		f3(prEnt.Precision()), f3(prEnt.Recall()), f3(prEnt.F1())})
	prTxt, err := pairEval("swissprot", "pir", false, corpus.Gold.Duplicates)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"description-cosine", "swissprot~pir",
		itos(len(corpus.Gold.Duplicates)),
		f3(prTxt.Precision()), f3(prTxt.Recall()), f3(prTxt.F1())})
	return t, nil
}

// E9DuplicatePR sweeps the duplicate threshold and field noise.
func E9DuplicatePR(proteins int) (Table, error) {
	t := Table{
		ID:     "E9",
		Title:  "§4.5 — duplicate detection: P/R over threshold x field-noise",
		Header: []string{"field-noise", "threshold", "P", "R", "F1", "comparisons"},
	}
	for _, noise := range []float64{0, 0.3, 0.6} {
		corpus := datagen.Generate(datagen.Config{
			Seed: 7, Proteins: proteins,
			Noise: datagen.Noise{DuplicateFieldNoise: noise},
		})
		var records []dup.Record
		for _, name := range []string{"swissprot", "pir"} {
			src := corpus.Source(name)
			profs, err := profile.ProfileDatabase(src, profile.Options{})
			if err != nil {
				return t, err
			}
			st, err := discovery.Analyze(src, profs, discovery.DefaultOptions())
			if err != nil {
				return t, err
			}
			records = append(records, dup.RecordsFromSource(src, st)...)
		}
		goldSet := eval.GoldLinkSet(corpus.Gold.Duplicates)
		for _, th := range []float64{0.4, 0.6, 0.8} {
			matches, stats := dup.FindDuplicates(records, dup.Options{
				Blocking: dup.FullPairwise, Threshold: th,
			})
			links := dup.Links(matches)
			pr := eval.CompareSets(eval.PredictedLinkSet(links, metadata.LinkDuplicate), goldSet)
			t.Rows = append(t.Rows, []string{
				f2(noise), f2(th), f3(pr.Precision()), f3(pr.Recall()), f3(pr.F1()),
				itos(stats.Comparisons),
			})
		}
	}
	return t, nil
}

// E10Scaling measures the cost of adding a source at increasing sizes and
// the effect of the pruning strategies and sampling.
func E10Scaling() (Table, error) {
	t := Table{
		ID:     "E10",
		Title:  "§6.2 — cost of adding a source: size scaling, pruning and sampling ablations",
		Header: []string{"proteins", "variant", "add-time", "ind-pairs-checked", "xref-pairs-checked"},
	}
	for _, n := range []int{50, 100, 200} {
		for _, variant := range []struct {
			name     string
			discOpts discovery.Options
			linkOpts linkdisc.Options
			profOpts profile.Options
		}{
			{"full", discovery.DefaultOptions(), linkdisc.Options{}, profile.Options{}},
			{"no-pruning", noPruneDiscovery(), linkdisc.Options{DisablePruning: true}, profile.Options{}},
			{"sampled-10%", discovery.DefaultOptions(), linkdisc.Options{}, profile.Options{SampleEvery: 10}},
		} {
			corpus := datagen.Generate(datagen.Config{Seed: 8, Proteins: n})
			sys := core.New(core.Options{
				Discovery: variant.discOpts, Links: variant.linkOpts,
				Profile: variant.profOpts, DisableSearchIndex: true,
				Workers: Workers,
			})
			if _, err := sys.AddSource(corpus.Source("pdb")); err != nil {
				return t, err
			}
			start := time.Now()
			rep, err := sys.AddSource(corpus.Source("swissprot"))
			if err != nil {
				return t, err
			}
			elapsed := time.Since(start)
			t.Rows = append(t.Rows, []string{
				itos(n), variant.name, dur(elapsed),
				itos(rep.Structure.INDStats.PairsChecked),
				itos(rep.LinkStats.AttributePairsChecked),
			})
		}
	}
	t.Notes = append(t.Notes,
		"no-pruning disables the min-hash IND pre-filter and the §4.4 attribute exclusions;",
		"sampling profiles every 10th tuple (§6.2 'sampling can be used')")
	return t, nil
}

func noPruneDiscovery() discovery.Options {
	o := discovery.DefaultOptions()
	o.IND.DisableSignaturePruning = true
	return o
}

// E11ChangeThreshold measures re-analysis cost against churn fractions
// under the §6.2 threshold policy.
func E11ChangeThreshold(proteins int) (Table, error) {
	t := Table{
		ID:     "E11",
		Title:  "§6.2 — data-change threshold: churn vs re-analysis decision and cost",
		Header: []string{"churn", "needs-reanalysis(10%)", "reanalysis-time"},
	}
	corpus := datagen.Generate(datagen.Config{Seed: 9, Proteins: proteins})
	sys, _, err := buildSystem(corpus, core.Options{DisableSearchIndex: true})
	if err != nil {
		return t, err
	}
	total := sys.Repo.Source("swissprot").TupleCount
	for _, churn := range []float64{0.02, 0.05, 0.08, 0.12, 0.25} {
		sys.Repo.ResetChanges("swissprot")
		needs := sys.RecordChanges("swissprot", int(churn*float64(total)))
		cost := time.Duration(0)
		if needs {
			start := time.Now()
			if _, err := sys.Reanalyze("swissprot"); err != nil {
				return t, err
			}
			cost = time.Since(start)
		}
		t.Rows = append(t.Rows, []string{
			f2(churn), fmt.Sprintf("%v", needs), dur(cost),
		})
	}
	t.Notes = append(t.Notes, "below the threshold no recomputation happens; above it the full per-source analysis re-runs")
	return t, nil
}

// E12SearchBrowse measures search latency/quality and path-based ranking.
func E12SearchBrowse(proteins int) (Table, error) {
	t := Table{
		ID:     "E12",
		Title:  "§4.6 — search ranking and [BLM+04] path-based browse ranking",
		Header: []string{"probe", "result", "detail"},
	}
	corpus := datagen.Generate(datagen.Config{Seed: 10, Proteins: proteins})
	sys, _, err := buildSystem(corpus, core.Options{OntologySources: []string{"go"}})
	if err != nil {
		return t, err
	}
	// Search: query a protein's distinctive name; its object must rank #1.
	queries := 0
	top1 := 0
	var totalLatency time.Duration
	for i := 0; i < proteins; i += 5 {
		acc := fmt.Sprintf("P%05d", 10000+i)
		v, err := sys.Browse(metadata.ObjectRef{Source: "swissprot", Relation: "protein", Accession: acc})
		if err != nil {
			continue
		}
		desc := v.Fields["description"]
		terms := strings.Join(strings.Fields(desc)[:3], " ")
		start := time.Now()
		rs := sys.Search(terms, search.Filter{Sources: []string{"swissprot"}}, 5)
		totalLatency += time.Since(start)
		queries++
		if len(rs) > 0 && rs[0].Document.Object.Accession == acc {
			top1++
		}
	}
	t.Rows = append(t.Rows, []string{"search-top1", fmt.Sprintf("%d/%d", top1, queries),
		fmt.Sprintf("mean latency %v", dur(totalLatency/time.Duration(max(queries, 1))))})

	// Browse ranking: gold-linked objects must out-rank unlinked ones.
	start := metadata.ObjectRef{Source: "swissprot", Relation: "protein", Accession: "P10000"}
	related := sys.Related(start, 2, 5)
	detail := "none"
	if len(related) > 0 {
		detail = fmt.Sprintf("top=%s:%s score=%.2f paths=%d",
			related[0].Ref.Source, related[0].Ref.Accession, related[0].Score, related[0].Paths)
	}
	t.Rows = append(t.Rows, []string{"browse-related", itos(len(related)), detail})
	return t, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// All runs every experiment at default scale.
func All() ([]Table, error) {
	var out []Table
	type gen func() (Table, error)
	gens := []gen{
		func() (Table, error) { return E1Table1(40) },
		func() (Table, error) { return E2Pipeline(40) },
		E3BioSQL,
		func() (Table, error) { return E4PrimaryPR(40) },
		func() (Table, error) { return E5ForeignKeyPR(40) },
		func() (Table, error) { return E6XRefPR(40) },
		func() (Table, error) { return E7SequencePR(30) },
		func() (Table, error) { return E8TextPR(40) },
		func() (Table, error) { return E9DuplicatePR(40) },
		E10Scaling,
		func() (Table, error) { return E11ChangeThreshold(40) },
		func() (Table, error) { return E12SearchBrowse(40) },
	}
	for _, g := range gens {
		tbl, err := g()
		if err != nil {
			return out, err
		}
		out = append(out, tbl)
	}
	return out, nil
}
