package profile

import (
	"strings"

	"repro/internal/rel"
)

// RelationStats converts a relation's column profiles into the compact
// rel.Stats block the cost-based planner consumes — no second scan of
// the data. Columns missing from profs get no stats (the planner falls
// back to guesses). When profiling sampled (Options.SampleEvery > 1),
// null counts are scaled to the full cardinality and Built records the
// sampled row count so the planner scales distinct counts the same way.
func RelationStats(r *rel.Relation, profs map[string]*ColumnProfile) *rel.Stats {
	rows := len(r.Tuples)
	st := &rel.Stats{Rows: rows, Built: rows, Cols: make(map[string]*rel.ColStats, r.Schema.Len())}
	for _, c := range r.Schema.Columns {
		p := profs[Key(r.Name, c.Name)]
		if p == nil {
			continue
		}
		nulls := p.Nulls
		if p.Rows > 0 && p.Rows < rows {
			// Sampled profile: extrapolate nulls, and let Built < Rows
			// drive the planner's distinct-count scaling.
			nulls = p.Nulls * rows / p.Rows
			st.Built = p.Rows
		}
		st.Cols[strings.ToLower(c.Name)] = &rel.ColStats{
			Nulls:    nulls,
			Distinct: p.Distinct,
			Min:      p.MinValue,
			Max:      p.MaxValue,
			Hist:     rel.EquiDepthHist(p.HistSample, rel.StatsHistBuckets),
		}
	}
	return st
}
