package profile

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rel"
)

func accessionRelation() *rel.Relation {
	r := rel.NewRelation("bioentry", rel.TextSchema("bioentry_id", "accession", "name", "taxon_id", "description"))
	rows := [][]string{
		{"1", "P12345", "HBA_HUMAN", "9606", "Hemoglobin subunit alpha from human blood"},
		{"2", "P67890", "MYG_HUMAN", "9606", "Myoglobin oxygen storage protein"},
		{"3", "Q11111", "INS_MOUSE", "10090", "Insulin regulates glucose"},
		{"4", "Q22222", "K1C9_MOUSE", "10090", "Keratin type I cytoskeletal"},
	}
	for _, row := range rows {
		r.AppendStrings(row...)
	}
	return r
}

func TestProfileUniqueDetection(t *testing.T) {
	r := accessionRelation()
	p, err := ProfileColumn(r, "accession", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Unique {
		t.Error("accession should be unique")
	}
	p, _ = ProfileColumn(r, "taxon_id", Options{})
	if p.Unique {
		t.Error("taxon_id should not be unique")
	}
}

func TestProfileNonDigitDetection(t *testing.T) {
	r := accessionRelation()
	p, _ := ProfileColumn(r, "accession", Options{})
	if !p.AllValuesHaveNonDigit {
		t.Error("accessions all contain non-digits")
	}
	p, _ = ProfileColumn(r, "bioentry_id", Options{})
	if p.AllValuesHaveNonDigit {
		t.Error("surrogate ids are digits only")
	}
	if !p.PurelyNumeric {
		t.Error("surrogate ids are purely numeric")
	}
}

func TestProfileLengthStatistics(t *testing.T) {
	r := accessionRelation()
	p, _ := ProfileColumn(r, "accession", Options{})
	if p.MinLen != 6 || p.MaxLen != 6 {
		t.Errorf("len range = [%d,%d]", p.MinLen, p.MaxLen)
	}
	if p.LenSpreadRatio != 0 {
		t.Errorf("spread = %v", p.LenSpreadRatio)
	}
	p, _ = ProfileColumn(r, "name", Options{})
	if p.LenSpreadRatio <= 0 {
		t.Errorf("name spread should be > 0, got %v", p.LenSpreadRatio)
	}
}

func TestProfileNullHandling(t *testing.T) {
	r := rel.NewRelation("t", rel.TextSchema("a"))
	r.Append(rel.Tuple{rel.Str("x")})
	r.Append(rel.Tuple{rel.Null()})
	r.Append(rel.Tuple{rel.Str("y")})
	p, _ := ProfileColumn(r, "a", Options{})
	if p.Nulls != 1 || p.Rows != 3 || p.Distinct != 2 {
		t.Errorf("nulls=%d rows=%d distinct=%d", p.Nulls, p.Rows, p.Distinct)
	}
	if p.Unique {
		t.Error("column with NULLs must not be unique")
	}
}

func TestProfileEmptyColumn(t *testing.T) {
	r := rel.NewRelation("t", rel.TextSchema("a"))
	p, err := ProfileColumn(r, "a", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Unique || p.Distinct != 0 || p.MinLen != 0 {
		t.Errorf("empty profile = %+v", p)
	}
}

func TestProfileMissingColumn(t *testing.T) {
	r := rel.NewRelation("t", rel.TextSchema("a"))
	if _, err := ProfileColumn(r, "nope", Options{}); err == nil {
		t.Error("expected error")
	}
}

func TestSequenceFieldDetection(t *testing.T) {
	r := rel.NewRelation("seq", rel.TextSchema("dna", "prot", "text"))
	dna := strings.Repeat("ACGT", 50)
	prot := strings.Repeat("MKWVTFISLLFLFSSAYS", 10)
	for i := 0; i < 5; i++ {
		r.AppendRaw(dna, prot, "the quick brown fox jumps over the lazy dog repeatedly")
	}
	pd, _ := ProfileColumn(r, "dna", Options{})
	if !pd.IsSequenceField() || !pd.IsDNAField() {
		t.Errorf("dna field not detected: dnaFrac=%v", pd.DNAAlphabetFrac)
	}
	pp, _ := ProfileColumn(r, "prot", Options{})
	if !pp.IsSequenceField() {
		t.Errorf("protein field not detected: protFrac=%v", pp.ProteinAlphabetFrac)
	}
	if pp.IsDNAField() {
		t.Error("protein field misdetected as DNA")
	}
	pt, _ := ProfileColumn(r, "text", Options{})
	if pt.IsSequenceField() {
		t.Error("free text misdetected as sequence")
	}
	if !pt.IsTextField() {
		t.Errorf("free text not detected: tokens=%v len=%v", pt.MeanTokens, pt.MeanLen)
	}
}

func TestShortValuesNotSequences(t *testing.T) {
	r := rel.NewRelation("t", rel.TextSchema("a"))
	// Short all-DNA-alphabet strings (e.g. "CAT") must not flag.
	r.AppendRaw("CAT")
	r.AppendRaw("ACT")
	p, _ := ProfileColumn(r, "a", Options{})
	if p.IsSequenceField() {
		t.Error("short values should not be sequence fields")
	}
}

func TestSampling(t *testing.T) {
	r := rel.NewRelation("t", rel.TextSchema("a"))
	for i := 0; i < 1000; i++ {
		r.AppendRaw(fmt.Sprintf("v%04d", i))
	}
	p, _ := ProfileColumn(r, "a", Options{SampleEvery: 10})
	if p.Rows != 100 {
		t.Errorf("sampled rows = %d want 100", p.Rows)
	}
	if p.Distinct != 100 {
		t.Errorf("sampled distinct = %d", p.Distinct)
	}
}

func TestMaxTrackedDistinct(t *testing.T) {
	r := rel.NewRelation("t", rel.TextSchema("a"))
	for i := 0; i < 100; i++ {
		r.AppendRaw(fmt.Sprintf("v%d", i))
	}
	p, _ := ProfileColumn(r, "a", Options{MaxTrackedDistinct: 10})
	if p.DistinctValues != nil {
		t.Error("distinct set should be dropped above cap")
	}
	if p.Distinct != 100 {
		t.Errorf("distinct count should stay exact: %d", p.Distinct)
	}
}

func TestProfileRelationAndDatabase(t *testing.T) {
	db := rel.NewDatabase("src")
	db.Put(accessionRelation())
	profs, err := ProfileDatabase(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 5 {
		t.Errorf("profiles = %d", len(profs))
	}
	if profs[Key("bioentry", "accession")] == nil {
		t.Error("missing keyed profile")
	}
}

func TestEstimateJaccardIdenticalSets(t *testing.T) {
	a := rel.NewRelation("a", rel.TextSchema("x"))
	b := rel.NewRelation("b", rel.TextSchema("y"))
	for i := 0; i < 200; i++ {
		v := fmt.Sprintf("val%d", i)
		a.AppendRaw(v)
		b.AppendRaw(v)
	}
	pa, _ := ProfileColumn(a, "x", Options{})
	pb, _ := ProfileColumn(b, "y", Options{})
	if j := EstimateJaccard(pa, pb); j < 0.99 {
		t.Errorf("identical sets Jaccard estimate = %v", j)
	}
}

func TestEstimateJaccardDisjointSets(t *testing.T) {
	a := rel.NewRelation("a", rel.TextSchema("x"))
	b := rel.NewRelation("b", rel.TextSchema("y"))
	for i := 0; i < 200; i++ {
		a.AppendRaw(fmt.Sprintf("left%d", i))
		b.AppendRaw(fmt.Sprintf("right%d", i))
	}
	pa, _ := ProfileColumn(a, "x", Options{})
	pb, _ := ProfileColumn(b, "y", Options{})
	if j := EstimateJaccard(pa, pb); j > 0.15 {
		t.Errorf("disjoint sets Jaccard estimate = %v", j)
	}
}

func TestEstimateContainmentSubset(t *testing.T) {
	a := rel.NewRelation("a", rel.TextSchema("x")) // subset
	b := rel.NewRelation("b", rel.TextSchema("y")) // superset
	for i := 0; i < 100; i++ {
		a.AppendRaw(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < 200; i++ {
		b.AppendRaw(fmt.Sprintf("v%d", i))
	}
	pa, _ := ProfileColumn(a, "x", Options{})
	pb, _ := ProfileColumn(b, "y", Options{})
	c := EstimateContainment(pa, pb)
	if c < 0.6 {
		t.Errorf("containment of true subset estimated %v; want high", c)
	}
	rev := EstimateContainment(pb, pa)
	if rev > c {
		t.Errorf("containment asymmetry violated: fwd=%v rev=%v", c, rev)
	}
}

// Property: Unique implies Distinct == Rows - Nulls and Nulls == 0.
func TestUniqueInvariant(t *testing.T) {
	f := func(vals []uint16) bool {
		r := rel.NewRelation("t", rel.TextSchema("a"))
		for _, v := range vals {
			r.AppendRaw(fmt.Sprintf("k%d", v))
		}
		p, err := ProfileColumn(r, "a", Options{})
		if err != nil {
			return false
		}
		if p.Unique {
			return p.Nulls == 0 && p.Distinct == p.Rows && p.Rows > 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: signature-based Jaccard of a set with itself is 1.
func TestSignatureSelfSimilarity(t *testing.T) {
	f := func(n uint8) bool {
		if n == 0 {
			return true
		}
		r := rel.NewRelation("t", rel.TextSchema("a"))
		for i := 0; i < int(n); i++ {
			r.AppendRaw(fmt.Sprintf("v%d", i))
		}
		p, err := ProfileColumn(r, "a", Options{})
		if err != nil {
			return false
		}
		return EstimateJaccard(p, p) == 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
