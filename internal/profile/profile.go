// Package profile computes per-attribute statistics over relations. These
// statistics are the raw material of ALADIN's discovery steps: uniqueness
// checks drive accession-candidate detection (§4.2), value-length and
// character-class statistics implement the accession heuristics, alphabet
// analysis finds sequence fields (§4.4), and distinct-value signatures
// support the pruning strategies of §4.4/§6.2. Statistics are computed
// once per source and stored in the metadata repository for reuse when
// later sources are added (§3, "These statistics need to be computed only
// once for each data source").
package profile

import (
	"context"
	"hash/fnv"
	"math"
	"strings"
	"unicode"

	"repro/internal/parallel"
	"repro/internal/rel"
)

// SignatureSize is the number of min-hash slots kept per column for
// cheap Jaccard-overlap estimation between attribute value sets.
const SignatureSize = 64

// Options configures profiling.
type Options struct {
	// SampleEvery profiles only every n-th tuple when > 1 (§6.2
	// "sampling can be used"). 0 or 1 profiles all tuples.
	SampleEvery int
	// MaxTrackedDistinct caps the exact distinct-value set kept per
	// column; above the cap only the approximate signature remains.
	// 0 means unlimited.
	MaxTrackedDistinct int
	// Workers bounds the worker pool profiling columns concurrently.
	// Values <= 1 profile serially.
	Workers int
}

// ColumnProfile holds the discovered statistics of one attribute.
type ColumnProfile struct {
	Relation string
	Column   string

	Rows     int // tuples seen (after sampling)
	Nulls    int
	Distinct int // exact when DistinctValues != nil, else estimate

	// Unique is true when every non-null value occurred once and there
	// were no NULLs — the SQL UNIQUE test of §4.2.
	Unique bool

	// Length statistics over the textual rendering of non-null values.
	MinLen, MaxLen int
	MeanLen        float64
	// LenSpreadRatio is (MaxLen-MinLen)/MaxLen; the accession heuristic
	// requires values "to differ by at most 20 percent in length".
	LenSpreadRatio float64

	// AllValuesHaveNonDigit is true when every non-null value contains at
	// least one non-digit character (accession numbers are alphanumeric;
	// parser-generated surrogate keys are digits only, §4.2).
	AllValuesHaveNonDigit bool
	// PurelyNumeric is true when every non-null value parses as a number.
	PurelyNumeric bool

	// FracUppercaseAlpha is the fraction of alphabetic characters that are
	// uppercase, over all values.
	FracUppercaseAlpha float64

	// DNAAlphabetFrac / ProteinAlphabetFrac are the fractions of non-space
	// characters drawn from the DNA ({A,C,G,T,N,U}) and amino-acid
	// alphabets; near-1.0 values over long strings flag sequence fields
	// (§4.4 "those contain only strings over a fixed alphabet").
	DNAAlphabetFrac     float64
	ProteinAlphabetFrac float64

	// MeanTokens is the average whitespace-token count; high values flag
	// free-text annotation fields suitable for text mining.
	MeanTokens float64

	// DistinctValues is the exact distinct non-null value set, keyed by
	// rel.Value.Key(), if it fit under MaxTrackedDistinct.
	DistinctValues map[string]rel.Value

	// Signature is a min-hash signature of the distinct value set for
	// estimating overlap without comparing full sets.
	Signature [SignatureSize]uint64

	// Samples holds up to 10 example non-null values.
	Samples []string

	// MinValue and MaxValue bound the non-null values under rel.Value
	// ordering (KindNull when the column is all-NULL). They feed the
	// planner's statistics block.
	MinValue rel.Value
	MaxValue rel.Value

	// HistSample is a deterministic reservoir sample of non-null values
	// (capped at histSampleCap) from which the planner's equi-depth
	// histogram is built.
	HistSample []rel.Value
}

// histSampleCap bounds the per-column histogram reservoir.
const histSampleCap = 1024

// dnaAlphabet includes the IUPAC bases plus N (unknown) and U (RNA).
func isDNAChar(r rune) bool {
	switch unicode.ToUpper(r) {
	case 'A', 'C', 'G', 'T', 'N', 'U':
		return true
	}
	return false
}

// protein alphabet: the 20 standard amino acids plus ambiguity codes.
func isProteinChar(r rune) bool {
	switch unicode.ToUpper(r) {
	case 'A', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'K', 'L', 'M', 'N',
		'P', 'Q', 'R', 'S', 'T', 'V', 'W', 'Y', 'B', 'Z', 'X':
		return true
	}
	return false
}

// ProfileColumn computes the profile of one column.
func ProfileColumn(r *rel.Relation, column string, opts Options) (*ColumnProfile, error) {
	idx := r.Schema.Index(column)
	if idx < 0 {
		return nil, newErrNoColumn(r.Name, column)
	}
	p := &ColumnProfile{
		Relation:              r.Name,
		Column:                column,
		MinLen:                math.MaxInt32,
		AllValuesHaveNonDigit: true,
		PurelyNumeric:         true,
		MinValue:              rel.Null(),
		MaxValue:              rel.Null(),
	}
	// Deterministic LCG state for the histogram reservoir: same input,
	// same sample — profiling results stay reproducible.
	var rng uint64 = 0x243f6a8885a308d3
	for i := range p.Signature {
		p.Signature[i] = math.MaxUint64
	}
	step := opts.SampleEvery
	if step < 1 {
		step = 1
	}
	seen := make(map[string]int)
	var totalLen, totalTokens int
	var alphaUpper, alphaTotal int
	var dnaChars, protChars, seqChars int
	nonNull := 0
	for i := 0; i < len(r.Tuples); i += step {
		v := r.Tuples[i][idx]
		p.Rows++
		if v.IsNull() {
			p.Nulls++
			continue
		}
		nonNull++
		s := v.AsString()
		key := v.Key()
		seen[key]++
		if seen[key] == 1 {
			// Update min-hash signature on first sight of the value.
			updateSignature(&p.Signature, key)
			if opts.MaxTrackedDistinct == 0 || len(seen) <= opts.MaxTrackedDistinct {
				if p.DistinctValues == nil {
					p.DistinctValues = make(map[string]rel.Value)
				}
				p.DistinctValues[key] = v
			}
		}
		n := len(s)
		totalLen += n
		if n < p.MinLen {
			p.MinLen = n
		}
		if n > p.MaxLen {
			p.MaxLen = n
		}
		hasNonDigit := false
		for _, c := range s {
			if !unicode.IsDigit(c) {
				hasNonDigit = true
			}
			if unicode.IsLetter(c) {
				alphaTotal++
				if unicode.IsUpper(c) {
					alphaUpper++
				}
			}
			if !unicode.IsSpace(c) {
				seqChars++
				if isDNAChar(c) {
					dnaChars++
				}
				if isProteinChar(c) {
					protChars++
				}
			}
		}
		if !hasNonDigit {
			p.AllValuesHaveNonDigit = false
		}
		if _, ok := v.AsFloat(); !ok {
			p.PurelyNumeric = false
		}
		totalTokens += len(strings.Fields(s))
		if len(p.Samples) < 10 {
			p.Samples = append(p.Samples, s)
		}
		if p.MinValue.IsNull() || v.Compare(p.MinValue) < 0 {
			p.MinValue = v
		}
		if p.MaxValue.IsNull() || v.Compare(p.MaxValue) > 0 {
			p.MaxValue = v
		}
		if len(p.HistSample) < histSampleCap {
			p.HistSample = append(p.HistSample, v)
		} else {
			rng = rng*6364136223846793005 + 1442695040888963407
			if j := rng % uint64(nonNull); j < histSampleCap {
				p.HistSample[j] = v
			}
		}
	}
	p.Distinct = len(seen)
	if opts.MaxTrackedDistinct > 0 && len(seen) > opts.MaxTrackedDistinct {
		p.DistinctValues = nil // over cap: keep only the signature
	}
	p.Unique = p.Nulls == 0 && nonNull > 0 && p.Distinct == nonNull
	if nonNull > 0 {
		p.MeanLen = float64(totalLen) / float64(nonNull)
		p.MeanTokens = float64(totalTokens) / float64(nonNull)
	} else {
		p.MinLen = 0
		p.AllValuesHaveNonDigit = false
		p.PurelyNumeric = false
	}
	if p.MaxLen > 0 {
		p.LenSpreadRatio = float64(p.MaxLen-p.MinLen) / float64(p.MaxLen)
	}
	if alphaTotal > 0 {
		p.FracUppercaseAlpha = float64(alphaUpper) / float64(alphaTotal)
	}
	if seqChars > 0 {
		p.DNAAlphabetFrac = float64(dnaChars) / float64(seqChars)
		p.ProteinAlphabetFrac = float64(protChars) / float64(seqChars)
	}
	return p, nil
}

// ProfileRelation profiles every column of a relation.
func ProfileRelation(r *rel.Relation, opts Options) ([]*ColumnProfile, error) {
	out := make([]*ColumnProfile, 0, r.Schema.Len())
	for _, c := range r.Schema.Columns {
		p, err := ProfileColumn(r, c.Name, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// ProfileDatabase profiles every column of every relation in db, returned
// as a map keyed "relation.column" (lower-cased). Columns are profiled
// concurrently when Options.Workers allows; each column is an independent
// scan, so the result is identical to the serial order.
func ProfileDatabase(db *rel.Database, opts Options) (map[string]*ColumnProfile, error) {
	return ProfileDatabaseContext(context.Background(), db, opts)
}

// ProfileDatabaseContext is ProfileDatabase with cancellation: when ctx
// is canceled mid-scan the partial result is discarded and ctx.Err() is
// returned.
func ProfileDatabaseContext(ctx context.Context, db *rel.Database, opts Options) (map[string]*ColumnProfile, error) {
	type task struct {
		r   *rel.Relation
		col string
	}
	var tasks []task
	for _, r := range db.Relations() {
		for _, c := range r.Schema.Columns {
			tasks = append(tasks, task{r, c.Name})
		}
	}
	profs := make([]*ColumnProfile, len(tasks))
	errs := make([]error, len(tasks))
	if err := parallel.For(ctx, opts.Workers, len(tasks), func(i int) {
		profs[i], errs[i] = ProfileColumn(tasks[i].r, tasks[i].col, opts)
	}); err != nil {
		return nil, err
	}
	out := make(map[string]*ColumnProfile, len(tasks))
	for i, t := range tasks {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[Key(t.r.Name, profs[i].Column)] = profs[i]
	}
	return out, nil
}

// Key builds the canonical "relation.column" profile-map key.
func Key(relation, column string) string {
	return strings.ToLower(relation) + "." + strings.ToLower(column)
}

// updateSignature folds a value key into a min-hash signature using
// per-slot salted FNV hashing.
func updateSignature(sig *[SignatureSize]uint64, key string) {
	h := fnv.New64a()
	h.Write([]byte(key))
	base := h.Sum64()
	for i := 0; i < SignatureSize; i++ {
		// Mix the base hash with a slot-dependent multiplier; this is the
		// standard cheap simulation of k independent hash functions.
		x := base*(2*uint64(i)+1) + uint64(i)*0x9e3779b97f4a7c15
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		if x < sig[i] {
			sig[i] = x
		}
	}
}

// EstimateJaccard estimates the Jaccard similarity of two columns' value
// sets from their min-hash signatures.
func EstimateJaccard(a, b *ColumnProfile) float64 {
	if a.Distinct == 0 || b.Distinct == 0 {
		return 0
	}
	match := 0
	for i := 0; i < SignatureSize; i++ {
		if a.Signature[i] == b.Signature[i] && a.Signature[i] != math.MaxUint64 {
			match++
		}
	}
	return float64(match) / float64(SignatureSize)
}

// EstimateContainment estimates |A ∩ B| / |A| from signatures and distinct
// counts, the quantity inclusion-dependency pruning needs.
func EstimateContainment(a, b *ColumnProfile) float64 {
	j := EstimateJaccard(a, b)
	if j == 0 {
		return 0
	}
	// |A∩B| = J * |A∪B| ≈ J * (|A|+|B|) / (1+J)
	inter := j * float64(a.Distinct+b.Distinct) / (1 + j)
	c := inter / float64(a.Distinct)
	if c > 1 {
		c = 1
	}
	return c
}

// IsSequenceField applies the §4.4 rule for finding DNA/protein sequence
// attributes: long values over a fixed biological alphabet.
func (p *ColumnProfile) IsSequenceField() bool {
	if p.MeanLen < 40 || p.Distinct == 0 {
		return false
	}
	return p.DNAAlphabetFrac > 0.98 || p.ProteinAlphabetFrac > 0.98
}

// IsDNAField reports a sequence field over the nucleotide alphabet.
func (p *ColumnProfile) IsDNAField() bool {
	return p.IsSequenceField() && p.DNAAlphabetFrac > 0.98
}

// IsTextField applies a simple rule for free-text annotation fields:
// multi-token values of nontrivial mean length that are not sequences.
func (p *ColumnProfile) IsTextField() bool {
	return p.MeanTokens >= 3 && p.MeanLen >= 15 && !p.IsSequenceField()
}

type errNoColumn string

func (e errNoColumn) Error() string { return string(e) }

func newErrNoColumn(relName, col string) error {
	return errNoColumn("profile: relation " + relName + " has no column " + col)
}
