// Package repl implements primary → read-replica replication for the
// durable warehouse, built entirely on the on-disk artifacts the store
// layer already maintains.
//
// The primary serves three HTTP endpoints over its data directory:
//
//	GET /v1/repl/manifest        the checkpoint manifest + current seq
//	GET /v1/repl/segment/{name}  one immutable checkpoint segment, raw
//	GET /v1/repl/wal?from=<seq>  WAL frames with sequence > from, raw
//
// Segments are immutable once written, so a replica fetches each
// exactly once; the WAL tail is streamed as the same length-prefixed,
// CRC-checked frames the primary fsynced, addressed by the global
// record sequence stamped in each frame header. Addressing by record
// sequence (rather than by WAL file + byte offset) is what lets a
// restarted replica resume from purely local state: its own recovered
// directory tells it the last sequence it applied, and file layouts on
// the two sides never need to correspond.
//
// A replica bootstraps by downloading the manifest's segments, planting
// a local manifest over them (store.InitReplicaDir), recovering exactly
// as after a crash, then polling /v1/repl/wal (long-poll via the wait
// parameter) and applying each frame through the normal recovery
// mutators. When the primary has already checkpointed past the
// requested sequence the WAL endpoint answers 410 (ErrTrimmed) and the
// replica re-bootstraps from segments.
package repl

import "time"

// Manifest is the JSON shape of GET /v1/repl/manifest: the primary's
// durable checkpoint state plus its current live sequence.
type Manifest struct {
	// Gen is the completed checkpoint generation.
	Gen uint64 `json:"gen"`
	// RecordSeq is the global sequence the checkpoint segments subsume:
	// a replica restoring them resumes streaming at RecordSeq+1.
	RecordSeq uint64 `json:"record_seq"`
	// Seq is the primary's current live sequence (last acknowledged
	// mutation) at the time of the request.
	Seq uint64 `json:"seq"`
	// Segments lists the per-source segment files, in registration order.
	Segments []Segment `json:"segments"`
	// LinksFile is the link-repository segment ("" before the first
	// checkpoint).
	LinksFile string `json:"links_file,omitempty"`
}

// Segment names one source's checkpoint segment file.
type Segment struct {
	Source string `json:"source"`
	File   string `json:"file"`
}

// Files returns every segment file the manifest references, links
// segment included.
func (m *Manifest) Files() []string {
	var out []string
	for _, s := range m.Segments {
		out = append(out, s.File)
	}
	if m.LinksFile != "" {
		out = append(out, m.LinksFile)
	}
	return out
}

// DefaultWait is the long-poll duration a replica asks the WAL endpoint
// to hold a request open for when it is already caught up.
const DefaultWait = 25 * time.Second

// maxWALResponse soft-bounds one WAL response body; a catch-up larger
// than this simply takes multiple requests.
const maxWALResponse = 4 << 20
