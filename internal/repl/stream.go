package repl

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/store"
)

// frameHeaderSize mirrors the WAL frame header: u32 payload length,
// u32 CRC, u64 sequence. The wire format of /v1/repl/wal is exactly the
// on-disk format minus the per-file magic.
const frameHeaderSize = 16

// maxFrameSize bounds a single streamed frame, defending against a
// corrupt or hostile length prefix.
const maxFrameSize = 1 << 30

// Frame is one decoded element of a WAL stream: the raw frame bytes
// (journaled verbatim by a replica) and the decoded record.
type Frame struct {
	Raw []byte
	Rec *store.WALRecord
}

// FrameReader decodes a stream of concatenated WAL frames from r.
// A stream that ends exactly on a frame boundary yields io.EOF; one
// that ends mid-frame — a torn stream, e.g. a primary dying mid-response
// — yields io.ErrUnexpectedEOF, and the caller discards the partial
// frame and re-requests from its last applied sequence. Every frame's
// CRC is verified before the record is decoded.
type FrameReader struct {
	r   io.Reader
	hdr [frameHeaderSize]byte
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Next reads and validates one frame. It returns io.EOF at a clean end
// of stream and io.ErrUnexpectedEOF (possibly wrapped) on a torn one.
func (fr *FrameReader) Next() (*Frame, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("repl: torn frame header: %w", io.ErrUnexpectedEOF)
		}
		return nil, err // io.EOF: clean boundary
	}
	plen := binary.LittleEndian.Uint32(fr.hdr[0:4])
	if plen > maxFrameSize {
		return nil, fmt.Errorf("repl: frame length %d exceeds limit", plen)
	}
	raw := make([]byte, frameHeaderSize+int(plen))
	copy(raw, fr.hdr[:])
	if _, err := io.ReadFull(fr.r, raw[frameHeaderSize:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("repl: torn frame payload: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	rec, _, err := store.DecodeFrame(raw)
	if err != nil {
		return nil, fmt.Errorf("repl: invalid frame in stream: %w", err)
	}
	return &Frame{Raw: raw, Rec: rec}, nil
}
