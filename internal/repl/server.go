package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/store"
)

// Server serves the replication API of a primary over its open data
// directory. It reads only on-disk state — the manifest copy, immutable
// segment files, and fsynced WAL frames — so it never contends with the
// warehouse's own locks; the live sequence comes from the seq callback
// (core.System.SnapshotSeq via package aladin).
type Server struct {
	dir *store.Dir
	seq func() uint64
	mux *http.ServeMux

	// pollInterval is how often a long-polling WAL request re-checks the
	// sequence; tests shorten it.
	pollInterval time.Duration
}

// NewServer builds the replication handler for an open data directory.
func NewServer(dir *store.Dir, seq func() uint64) *Server {
	s := &Server{dir: dir, seq: seq, pollInterval: 100 * time.Millisecond}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/repl/manifest", s.handleManifest)
	mux.HandleFunc("GET /v1/repl/segment/{name}", s.handleSegment)
	mux.HandleFunc("GET /v1/repl/wal", s.handleWAL)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeError mirrors the aladind error envelope so replication clients
// and API clients parse failures the same way.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]any{"status": status, "code": code, "message": msg},
	})
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	m := s.dir.ManifestCopy()
	out := Manifest{
		Gen:       m.Gen,
		RecordSeq: m.RecordSeq,
		Seq:       s.seq(),
		LinksFile: m.LinksFile,
	}
	for _, ref := range m.Sources {
		out.Segments = append(out.Segments, Segment{Source: ref.Source, File: ref.File})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&out)
}

func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// OpenArtifact matches the name against the current manifest, which
	// is both the traversal guard and the immutability guarantee.
	f, err := s.dir.OpenArtifact(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "no_such_segment",
			fmt.Sprintf("%q is not an active segment of this primary (refresh the manifest)", name))
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(st.Size(), 10))
	io.Copy(w, f)
}

func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_parameter",
			fmt.Sprintf("from must be a record sequence number: %v", err))
		return
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		wait, err = time.ParseDuration(v)
		if err != nil || wait < 0 || wait > 5*time.Minute {
			writeError(w, http.StatusBadRequest, "invalid_parameter",
				fmt.Sprintf("wait must be a duration up to 5m, got %q", v))
			return
		}
	}

	// Long-poll: when the replica is caught up, hold the request open
	// until a new mutation lands (or the wait expires). Appends are
	// fsynced before they are acknowledged, so seq() > from guarantees
	// the frames are readable on disk.
	if wait > 0 && s.seq() <= from {
		deadline := time.NewTimer(wait)
		tick := time.NewTicker(s.pollInterval)
		defer deadline.Stop()
		defer tick.Stop()
	poll:
		for s.seq() <= from {
			select {
			case <-r.Context().Done():
				return
			case <-deadline.C:
				break poll
			case <-tick.C:
			}
		}
	}

	frames, last, err := s.dir.FramesSince(from, maxWALResponse)
	if err != nil {
		if errors.Is(err, store.ErrWALTrimmed) {
			writeError(w, http.StatusGone, "wal_trimmed",
				fmt.Sprintf("records after %d were checkpointed and trimmed; re-bootstrap from the manifest segments", from))
			return
		}
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Aladin-Repl-Seq", strconv.FormatUint(s.seq(), 10))
	w.Header().Set("X-Aladin-Repl-Last", strconv.FormatUint(last, 10))
	w.Write(frames)
}
