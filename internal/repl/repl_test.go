package repl

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rel"
	"repro/internal/store"
)

// primaryFixture is a data directory in the state a real primary leaves
// it: one completed checkpoint (gen 1, subsuming records 1-2, one
// source segment) plus a live WAL tail holding records 3-4.
func primaryFixture(t *testing.T) (*store.Dir, *atomic.Uint64) {
	t.Helper()
	db := rel.NewDatabase("src")
	r := db.Create("t", rel.NewSchema(
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "acc", Kind: rel.KindString},
	))
	r.PrimaryKey = "id"
	r.Append(rel.Tuple{rel.Int(1), rel.Str("P1")})
	r.Append(rel.Tuple{rel.Int(2), rel.Str("P2")})

	d, err := store.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	append := func(rec *store.WALRecord) {
		t.Helper()
		frame, err := store.EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Append(frame, rec.Seq); err != nil {
			t.Fatal(err)
		}
	}
	append(&store.WALRecord{Seq: 1, Type: store.RecAddSource, Source: &store.SourceSnapshot{
		Name: "src", Relations: store.SnapshotDatabase(db), TupleCount: 2}})
	append(&store.WALRecord{Seq: 2, Type: store.RecDML, SourceName: "src", SQL: "UPDATE src_t SET acc = 'P9' WHERE id = 1"})
	walSeq, err := d.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CompleteCheckpoint(&store.CheckpointData{
		Dirty: []store.SourceSnapshot{{Name: "src", Relations: store.SnapshotDatabase(db), TupleCount: 2}},
		Order: []string{"src"}, WALSeq: walSeq, RecordSeq: 2,
	}); err != nil {
		t.Fatal(err)
	}
	append(&store.WALRecord{Seq: 3, Type: store.RecDML, SourceName: "src", SQL: "DELETE FROM src_t WHERE id = 2"})
	append(&store.WALRecord{Seq: 4, Type: store.RecDML, SourceName: "src", SQL: "DELETE FROM src_t WHERE id = 1"})

	var seq atomic.Uint64
	seq.Store(4)
	return d, &seq
}

func TestServerClientRoundTrip(t *testing.T) {
	d, seq := primaryFixture(t)
	srv := httptest.NewServer(NewServer(d, seq.Load))
	defer srv.Close()
	ctx := context.Background()

	c, err := NewClient(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Manifest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Gen != 1 || m.RecordSeq != 2 || m.Seq != 4 || len(m.Segments) != 1 {
		t.Fatalf("manifest = %+v", m)
	}

	// The WAL tail after the checkpoint: records 3 and 4 exactly.
	batch, err := c.WAL(ctx, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Frames) != 2 || batch.PrimarySeq != 4 {
		t.Fatalf("WAL(2) = %d frames, primary seq %d", len(batch.Frames), batch.PrimarySeq)
	}
	if batch.Frames[0].Rec.Seq != 3 || batch.Frames[1].Rec.Seq != 4 ||
		batch.Frames[1].Rec.SQL != "DELETE FROM src_t WHERE id = 1" {
		t.Fatalf("frames = %+v / %+v", batch.Frames[0].Rec, batch.Frames[1].Rec)
	}
	// The raw bytes must be valid frames re-journalable verbatim.
	if sq, _, err := store.ScanFrame(batch.Frames[0].Raw); err != nil || sq != 3 {
		t.Fatalf("raw frame 0: seq=%d err=%v", sq, err)
	}

	// Caught up: an empty batch, not an error.
	batch, err = c.WAL(ctx, 4, 0)
	if err != nil || len(batch.Frames) != 0 {
		t.Fatalf("WAL(4) = %d frames, err %v", len(batch.Frames), err)
	}

	// Records 1-2 were checkpointed and trimmed: streaming from 0 must
	// say so distinctly, not return a partial history.
	if _, err := c.WAL(ctx, 0, 0); !errors.Is(err, ErrTrimmed) {
		t.Fatalf("WAL(0) = %v, want ErrTrimmed", err)
	}

	// Segment names are matched against the manifest — no traversal.
	if _, err := c.Segment(ctx, "../MANIFEST"); err == nil {
		t.Fatal("traversal segment name should be rejected")
	}
	body, err := c.Segment(ctx, m.Segments[0].File)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := io.ReadAll(body)
	body.Close()
	if err != nil || len(seg) == 0 {
		t.Fatalf("segment read: %d bytes, err %v", len(seg), err)
	}
	disk, err := os.ReadFile(filepath.Join(d.Path(), m.Segments[0].File))
	if err != nil || !bytes.Equal(seg, disk) {
		t.Fatalf("served segment differs from disk (err %v)", err)
	}
}

func TestBootstrapRecoversCheckpointState(t *testing.T) {
	d, seq := primaryFixture(t)
	srv := httptest.NewServer(NewServer(d, seq.Load))
	defer srv.Close()

	c, err := NewClient(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "replica")
	m, err := c.Bootstrap(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := ReadMarker(dir); !ok || p != c.Primary {
		t.Fatalf("marker = %q, %v", p, ok)
	}

	// The bootstrapped directory opens like a local one and loads the
	// primary's checkpointed state; streaming resumes after RecordSeq.
	rd, err := store.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if st := rd.Stats(); st.Gen != m.Gen || st.RecordSeq != 2 {
		t.Fatalf("replica dir stats = %+v", st)
	}
	snap, err := rd.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Sources) != 1 || snap.Sources[0].Name != "src" || snap.Sources[0].TupleCount != 2 {
		t.Fatalf("loaded snapshot = %+v", snap.Sources)
	}

	// A second bootstrap into the same directory must refuse: the caller
	// wipes first (behind the marker check), never blindly overwrites.
	if _, err := c.Bootstrap(context.Background(), dir); err == nil {
		t.Fatal("bootstrap over an initialized directory should fail")
	}
}

func TestWALLongPollWakesOnAppend(t *testing.T) {
	d, seq := primaryFixture(t)
	s := NewServer(d, seq.Load)
	s.pollInterval = 5 * time.Millisecond
	srv := httptest.NewServer(s)
	defer srv.Close()
	c, err := NewClient(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		time.Sleep(30 * time.Millisecond)
		frame, err := store.EncodeRecord(&store.WALRecord{Seq: 5, Type: store.RecDML, SourceName: "src", SQL: "x"})
		if err == nil {
			if err := d.Append(frame, 5); err == nil {
				seq.Store(5)
			}
		}
	}()
	start := time.Now()
	batch, err := c.WAL(context.Background(), 4, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Frames) != 1 || batch.Frames[0].Rec.Seq != 5 {
		t.Fatalf("long poll returned %d frames", len(batch.Frames))
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("long poll should return on append, not run out the wait")
	}
}

// A stream torn mid-frame (primary crashed mid-write, proxy truncated
// the body) must yield the intact prefix and a clean resume point — the
// replica re-requests the torn frame on the next poll.
func TestFrameReaderTornStream(t *testing.T) {
	var stream []byte
	for i := uint64(1); i <= 3; i++ {
		frame, err := store.EncodeRecord(&store.WALRecord{Seq: i, Type: store.RecDML, SourceName: "src", SQL: "stmt"})
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, frame...)
	}

	// Intact stream: three frames then io.EOF.
	fr := NewFrameReader(bytes.NewReader(stream))
	var seqs []uint64
	for {
		f, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, f.Rec.Seq)
	}
	if len(seqs) != 3 || seqs[0] != 1 || seqs[2] != 3 {
		t.Fatalf("intact stream decoded %v", seqs)
	}

	// Tear the final frame at every byte boundary: the reader must hand
	// back exactly the two intact frames and then ErrUnexpectedEOF —
	// never a short/garbled third frame, never a hard failure.
	twoFrames := 0
	fr = NewFrameReader(bytes.NewReader(stream))
	for i := 0; i < 2; i++ {
		f, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		twoFrames += len(f.Raw)
	}
	for cut := twoFrames + 1; cut < len(stream); cut++ {
		fr := NewFrameReader(bytes.NewReader(stream[:cut]))
		n := 0
		for {
			f, err := fr.Next()
			if err == nil {
				n++
				if f.Rec.Seq != uint64(n) {
					t.Fatalf("cut %d: frame %d has seq %d", cut, n, f.Rec.Seq)
				}
				continue
			}
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut %d after %d frames: err = %v, want ErrUnexpectedEOF", cut, n, err)
			}
			break
		}
		if n != 2 {
			t.Fatalf("cut %d decoded %d frames, want 2", cut, n)
		}
	}
}

func TestNewClientRejectsBadURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "host:8317", "/just/a/path"} {
		if _, err := NewClient(bad, nil); err == nil {
			t.Errorf("NewClient(%q) should fail", bad)
		}
	}
	c, err := NewClient("http://localhost:8317/", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Primary != "http://localhost:8317" {
		t.Errorf("trailing slash not trimmed: %q", c.Primary)
	}
}
