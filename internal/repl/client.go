package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/store"
)

// ErrTrimmed reports that the primary has checkpointed past the
// requested sequence and trimmed the WAL records; the replica must
// re-bootstrap from the manifest segments. Test with errors.Is.
var ErrTrimmed = errors.New("repl: requested WAL records trimmed by a primary checkpoint")

// Client talks to one primary's replication API.
type Client struct {
	// HTTP is the client used for all requests; it needs no overall
	// timeout (WAL requests long-poll), cancellation runs via contexts.
	HTTP *http.Client
	// Primary is the primary's base URL, e.g. "http://10.0.0.1:8317".
	Primary string
}

// NewClient builds a client for the primary at base URL primary.
func NewClient(primary string, hc *http.Client) (*Client, error) {
	primary = strings.TrimRight(primary, "/")
	u, err := url.Parse(primary)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("repl: primary must be a base URL like http://host:port, got %q", primary)
	}
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{HTTP: hc, Primary: primary}, nil
}

// get issues one GET and fails uniformly on non-200s, decoding the
// server's JSON error envelope into the message when present.
func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Primary+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusOK {
		return resp, nil
	}
	defer resp.Body.Close()
	var envelope struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	json.Unmarshal(body, &envelope)
	if resp.StatusCode == http.StatusGone {
		return nil, fmt.Errorf("%w: %s", ErrTrimmed, envelope.Error.Message)
	}
	if envelope.Error.Code != "" {
		return nil, fmt.Errorf("repl: %s %s: %s (%s)", http.MethodGet, path, envelope.Error.Code, envelope.Error.Message)
	}
	return nil, fmt.Errorf("repl: %s %s: HTTP %d", http.MethodGet, path, resp.StatusCode)
}

// Manifest fetches the primary's current manifest and live sequence.
func (c *Client) Manifest(ctx context.Context) (*Manifest, error) {
	resp, err := c.get(ctx, "/v1/repl/manifest")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m Manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("repl: decoding manifest: %w", err)
	}
	return &m, nil
}

// WALBatch is the result of one WAL poll: the decoded frames plus the
// primary's live sequence at response time (the lag upper bound).
type WALBatch struct {
	Frames     []*Frame
	PrimarySeq uint64
}

// WAL fetches the frames with sequence > from. wait > 0 asks the
// primary to long-poll when there is nothing new yet. A response torn
// mid-frame (primary died mid-write) is not an error: the intact prefix
// is returned and the next poll re-requests the rest.
func (c *Client) WAL(ctx context.Context, from uint64, wait time.Duration) (*WALBatch, error) {
	path := "/v1/repl/wal?from=" + strconv.FormatUint(from, 10)
	if wait > 0 {
		path += "&wait=" + url.QueryEscape(wait.String())
	}
	resp, err := c.get(ctx, path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	batch := &WALBatch{}
	if v := resp.Header.Get("X-Aladin-Repl-Seq"); v != "" {
		batch.PrimarySeq, _ = strconv.ParseUint(v, 10, 64)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil && len(body) == 0 {
		return nil, fmt.Errorf("repl: reading WAL response: %w", err)
	}
	fr := NewFrameReader(bytes.NewReader(body))
	for {
		f, err := fr.Next()
		if err != nil {
			if err == io.EOF {
				return batch, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				// Torn stream: keep the intact prefix, re-poll the rest.
				return batch, nil
			}
			return nil, err
		}
		batch.Frames = append(batch.Frames, f)
	}
}

// Segment streams one checkpoint segment; the caller closes the reader.
func (c *Client) Segment(ctx context.Context, name string) (io.ReadCloser, error) {
	resp, err := c.get(ctx, "/v1/repl/segment/"+url.PathEscape(name))
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// MarkerName is the file that marks a data directory as a replica; it
// holds the primary's base URL. Its presence is what allows the open
// path to wipe and re-bootstrap the directory — a directory without the
// marker is somebody's primary and is never destroyed.
const MarkerName = "REPLICA"

// WriteMarker durably marks dir as a replica of primary.
func WriteMarker(dir, primary string) error {
	return store.WriteFileAtomic(filepath.Join(dir, MarkerName), strings.NewReader(primary+"\n"))
}

// ReadMarker reports whether dir carries a replica marker and for which
// primary.
func ReadMarker(dir string) (primary string, ok bool) {
	b, err := os.ReadFile(filepath.Join(dir, MarkerName))
	if err != nil {
		return "", false
	}
	return strings.TrimSpace(string(b)), true
}

// Bootstrap downloads the primary's checkpoint into dir: every segment
// the manifest references, then a local manifest pointing at them
// (store.InitReplicaDir), so a normal open recovers the primary's
// checkpointed state and resumes streaming at RecordSeq. The directory
// must be empty of store state; the caller wipes a stale replica
// directory first (guarded by the REPLICA marker).
//
// If the primary checkpoints while segments are downloading, a fetch
// 404s (the file left the manifest); Bootstrap fails and the caller
// simply retries against the new manifest.
func (c *Client) Bootstrap(ctx context.Context, dir string) (*Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := WriteMarker(dir, c.Primary); err != nil {
		return nil, err
	}
	m, err := c.Manifest(ctx)
	if err != nil {
		return nil, err
	}
	for _, file := range m.Files() {
		body, err := c.Segment(ctx, file)
		if err != nil {
			return nil, fmt.Errorf("repl: bootstrap: fetching %s: %w", file, err)
		}
		err = store.WriteFileAtomic(filepath.Join(dir, file), body)
		body.Close()
		if err != nil {
			return nil, fmt.Errorf("repl: bootstrap: writing %s: %w", file, err)
		}
	}
	planted := &store.Manifest{Gen: m.Gen, RecordSeq: m.RecordSeq, LinksFile: m.LinksFile}
	for _, s := range m.Segments {
		planted.Sources = append(planted.Sources, store.SegmentRef{Source: s.Source, File: s.File})
	}
	if err := store.InitReplicaDir(dir, planted); err != nil {
		return nil, fmt.Errorf("repl: bootstrap: %w", err)
	}
	return m, nil
}
