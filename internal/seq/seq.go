// Package seq provides the sequence-similarity substrate for ALADIN's
// implicit link discovery (§4.4): "the values of attributes containing
// DNA, RNA, or protein sequences are compared to each other", with
// similarity computed in the style of BLAST [AMS+97] — k-mer seeding
// followed by local alignment — implemented here from scratch as
// Smith-Waterman with a k-mer prefilter.
package seq

import (
	"sort"
	"strings"
)

// Alphabet classifies a sequence string.
type Alphabet int

const (
	// AlphabetUnknown is anything that is not a recognizable sequence.
	AlphabetUnknown Alphabet = iota
	// AlphabetDNA covers A/C/G/T plus N and U.
	AlphabetDNA
	// AlphabetProtein covers the 20 amino acids plus ambiguity codes.
	AlphabetProtein
)

// String names the alphabet.
func (a Alphabet) String() string {
	switch a {
	case AlphabetDNA:
		return "DNA"
	case AlphabetProtein:
		return "protein"
	}
	return "unknown"
}

const dnaChars = "ACGTNU"
const proteinChars = "ACDEFGHIKLMNPQRSTVWYBZX"

// DetectAlphabet classifies s by character content: ≥98% of non-space
// characters from the respective alphabet, minimum length 20.
func DetectAlphabet(s string) Alphabet {
	up := strings.ToUpper(s)
	var dna, prot, total int
	for _, r := range up {
		if r == ' ' || r == '\n' || r == '\t' || r == '\r' {
			continue
		}
		total++
		if strings.ContainsRune(dnaChars, r) {
			dna++
		}
		if strings.ContainsRune(proteinChars, r) {
			prot++
		}
	}
	if total < 20 {
		return AlphabetUnknown
	}
	switch {
	case float64(dna)/float64(total) >= 0.98:
		return AlphabetDNA
	case float64(prot)/float64(total) >= 0.98:
		return AlphabetProtein
	}
	return AlphabetUnknown
}

// Scoring holds alignment parameters. Gap is a linear gap penalty
// (negative).
type Scoring struct {
	Match    int
	Mismatch int
	Gap      int
}

// DefaultScoring matches BLASTN-style defaults: +2/-3 with gap -5.
func DefaultScoring() Scoring { return Scoring{Match: 2, Mismatch: -3, Gap: -5} }

// Alignment is the result of a local alignment.
type Alignment struct {
	Score int
	// Identity is matches / alignment columns in the locally aligned
	// region (0 when no positive-scoring alignment exists).
	Identity float64
	// AStart/AEnd and BStart/BEnd delimit the aligned region (half-open)
	// in the two inputs.
	AStart, AEnd int
	BStart, BEnd int
	// Matches and Columns give the raw identity counts.
	Matches, Columns int
}

// SmithWaterman computes the optimal local alignment of a and b under sc,
// with full traceback for identity computation. O(len(a)*len(b)) time,
// O(min) + traceback memory via a compact direction matrix.
func SmithWaterman(a, b string, sc Scoring) Alignment {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return Alignment{}
	}
	// Direction codes: 0 stop, 1 diagonal, 2 up (gap in b), 3 left (gap in a).
	dir := make([]uint8, (n+1)*(m+1))
	prev := make([]int, m+1)
	curr := make([]int, m+1)
	best, bi, bj := 0, 0, 0
	for i := 1; i <= n; i++ {
		curr[0] = 0
		for j := 1; j <= m; j++ {
			sub := sc.Mismatch
			if a[i-1] == b[j-1] {
				sub = sc.Match
			}
			diag := prev[j-1] + sub
			up := prev[j] + sc.Gap
			left := curr[j-1] + sc.Gap
			v, d := 0, uint8(0)
			if diag > v {
				v, d = diag, 1
			}
			if up > v {
				v, d = up, 2
			}
			if left > v {
				v, d = left, 3
			}
			curr[j] = v
			dir[i*(m+1)+j] = d
			if v > best {
				best, bi, bj = v, i, j
			}
		}
		prev, curr = curr, prev
	}
	if best == 0 {
		return Alignment{}
	}
	// Traceback.
	matches, cols := 0, 0
	i, j := bi, bj
	for i > 0 && j > 0 {
		d := dir[i*(m+1)+j]
		if d == 0 {
			break
		}
		cols++
		switch d {
		case 1:
			if a[i-1] == b[j-1] {
				matches++
			}
			i--
			j--
		case 2:
			i--
		case 3:
			j--
		}
	}
	al := Alignment{
		Score:  best,
		AStart: i, AEnd: bi,
		BStart: j, BEnd: bj,
		Matches: matches, Columns: cols,
	}
	if cols > 0 {
		al.Identity = float64(matches) / float64(cols)
	}
	return al
}

// ReverseComplement returns the reverse complement of a DNA sequence.
// IUPAC ambiguity codes map to their complements; non-nucleotide
// characters pass through unchanged.
func ReverseComplement(s string) string {
	b := []byte(strings.ToUpper(s))
	out := make([]byte, len(b))
	for i, c := range b {
		out[len(b)-1-i] = complementBase(c)
	}
	return string(out)
}

func complementBase(c byte) byte {
	switch c {
	case 'A':
		return 'T'
	case 'T', 'U':
		return 'A'
	case 'C':
		return 'G'
	case 'G':
		return 'C'
	case 'R':
		return 'Y'
	case 'Y':
		return 'R'
	case 'K':
		return 'M'
	case 'M':
		return 'K'
	}
	return c
}

// Record is one named sequence.
type Record struct {
	ID  string
	Seq string
}

// Index is a k-mer inverted index over target sequences, the seeding
// stage of the BLAST-shaped search.
type Index struct {
	K       int
	records []Record
	// postings maps each k-mer to the indexes of records containing it.
	postings map[string][]int32
}

// NewIndex builds an index with k-mer length k (k >= 4 recommended for
// DNA, 3 for protein).
func NewIndex(k int) *Index {
	if k < 2 {
		k = 2
	}
	return &Index{K: k, postings: make(map[string][]int32)}
}

// Add inserts a target sequence.
func (ix *Index) Add(id, sequence string) {
	sequence = strings.ToUpper(sequence)
	recID := int32(len(ix.records))
	ix.records = append(ix.records, Record{ID: id, Seq: sequence})
	seen := make(map[string]bool)
	for i := 0; i+ix.K <= len(sequence); i++ {
		kmer := sequence[i : i+ix.K]
		if seen[kmer] {
			continue
		}
		seen[kmer] = true
		ix.postings[kmer] = append(ix.postings[kmer], recID)
	}
}

// Len returns the number of indexed sequences.
func (ix *Index) Len() int { return len(ix.records) }

// SearchOptions tunes Search.
type SearchOptions struct {
	// MinSeeds is the number of distinct shared k-mers required before a
	// candidate pair is aligned (default 2).
	MinSeeds int
	// MinScore drops alignments below this score (default 20).
	MinScore int
	// MinIdentity drops alignments below this identity (default 0).
	MinIdentity float64
	// MaxHits caps returned hits (0 = unlimited).
	MaxHits int
	// Scoring is the alignment scoring (zero value = DefaultScoring).
	Scoring Scoring
	// BothStrands additionally searches the query's reverse complement
	// (DNA only); hits found on the minus strand are marked.
	BothStrands bool
}

func (o *SearchOptions) fill() {
	if o.MinSeeds <= 0 {
		o.MinSeeds = 2
	}
	if o.MinScore <= 0 {
		o.MinScore = 20
	}
	if o.Scoring == (Scoring{}) {
		o.Scoring = DefaultScoring()
	}
}

// Hit is one query-target match.
type Hit struct {
	TargetID  string
	Alignment Alignment
	Seeds     int
	// MinusStrand marks hits found against the query's reverse
	// complement.
	MinusStrand bool
}

// Search finds targets sharing at least MinSeeds k-mers with the query,
// aligns each candidate with Smith-Waterman, and returns hits sorted by
// score descending. With BothStrands set, the reverse complement is also
// searched and the best strand per target kept.
func (ix *Index) Search(query string, opts SearchOptions) []Hit {
	opts.fill()
	hits := ix.searchStrand(query, opts, false)
	if opts.BothStrands {
		minus := ix.searchStrand(ReverseComplement(query), opts, true)
		best := make(map[string]Hit, len(hits))
		for _, h := range hits {
			best[h.TargetID] = h
		}
		for _, h := range minus {
			if cur, ok := best[h.TargetID]; !ok || h.Alignment.Score > cur.Alignment.Score {
				best[h.TargetID] = h
			}
		}
		hits = hits[:0]
		for _, h := range best {
			hits = append(hits, h)
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Alignment.Score != hits[j].Alignment.Score {
			return hits[i].Alignment.Score > hits[j].Alignment.Score
		}
		return hits[i].TargetID < hits[j].TargetID
	})
	if opts.MaxHits > 0 && len(hits) > opts.MaxHits {
		hits = hits[:opts.MaxHits]
	}
	return hits
}

// searchStrand runs the seeded search for one query orientation.
func (ix *Index) searchStrand(query string, opts SearchOptions, minus bool) []Hit {
	query = strings.ToUpper(query)
	seedCount := make(map[int32]int)
	seen := make(map[string]bool)
	for i := 0; i+ix.K <= len(query); i++ {
		kmer := query[i : i+ix.K]
		if seen[kmer] {
			continue
		}
		seen[kmer] = true
		for _, rid := range ix.postings[kmer] {
			seedCount[rid]++
		}
	}
	var hits []Hit
	for rid, seeds := range seedCount {
		if seeds < opts.MinSeeds {
			continue
		}
		rec := ix.records[rid]
		al := SmithWaterman(query, rec.Seq, opts.Scoring)
		if al.Score < opts.MinScore || al.Identity < opts.MinIdentity {
			continue
		}
		hits = append(hits, Hit{TargetID: rec.ID, Alignment: al, Seeds: seeds, MinusStrand: minus})
	}
	return hits
}

// CandidateCount returns how many targets share >= minSeeds k-mers with
// the query — the seeding selectivity, measured by the pruning
// experiments without paying for alignment.
func (ix *Index) CandidateCount(query string, minSeeds int) int {
	if minSeeds <= 0 {
		minSeeds = 1
	}
	query = strings.ToUpper(query)
	seedCount := make(map[int32]int)
	seen := make(map[string]bool)
	for i := 0; i+ix.K <= len(query); i++ {
		kmer := query[i : i+ix.K]
		if seen[kmer] {
			continue
		}
		seen[kmer] = true
		for _, rid := range ix.postings[kmer] {
			seedCount[rid]++
		}
	}
	n := 0
	for _, c := range seedCount {
		if c >= minSeeds {
			n++
		}
	}
	return n
}

// AllPairs aligns every query against every target with no seeding — the
// quadratic baseline for the E7 pruning comparison.
func AllPairs(queries, targets []Record, opts SearchOptions) map[string][]Hit {
	opts.fill()
	out := make(map[string][]Hit, len(queries))
	for _, q := range queries {
		var hits []Hit
		for _, t := range targets {
			al := SmithWaterman(strings.ToUpper(q.Seq), strings.ToUpper(t.Seq), opts.Scoring)
			if al.Score < opts.MinScore || al.Identity < opts.MinIdentity {
				continue
			}
			hits = append(hits, Hit{TargetID: t.ID, Alignment: al})
		}
		sort.Slice(hits, func(i, j int) bool {
			if hits[i].Alignment.Score != hits[j].Alignment.Score {
				return hits[i].Alignment.Score > hits[j].Alignment.Score
			}
			return hits[i].TargetID < hits[j].TargetID
		})
		out[q.ID] = hits
	}
	return out
}
