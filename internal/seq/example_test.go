package seq_test

import (
	"fmt"

	"repro/internal/seq"
)

// Example shows the BLAST-shaped homology search: index targets, query
// with a diverged sequence.
func Example() {
	ix := seq.NewIndex(6)
	ix.Add("HBA", "ATGGTGCTGTCTCCTGCCGACAAGACCAACGTCAAGGCCGCC")
	ix.Add("LYS", "ATGAGGTCTTTGCTAATCTTGGTGCTTTGCTTCCTGCCCCTG")

	// One mid-sequence substitution relative to HBA (position 21 G->T).
	query := "ATGGTGCTGTCTCCTGCCGACTAGACCAACGTCAAGGCCGCC"
	for _, hit := range ix.Search(query, seq.SearchOptions{MinScore: 30}) {
		fmt.Printf("%s identity=%.2f\n", hit.TargetID, hit.Alignment.Identity)
	}
	// Output:
	// HBA identity=0.98
}

func ExampleSmithWaterman() {
	al := seq.SmithWaterman("TTTACGTACGTTT", "ACGTACG", seq.DefaultScoring())
	fmt.Printf("score=%d identity=%.2f span=[%d,%d)\n", al.Score, al.Identity, al.AStart, al.AEnd)
	// Output:
	// score=14 identity=1.00 span=[3,10)
}

func ExampleDetectAlphabet() {
	fmt.Println(seq.DetectAlphabet("ACGTACGTACGTACGTACGTACGT"))
	fmt.Println(seq.DetectAlphabet("MKWVTFISLLFLFSSAYSRGVFRR"))
	fmt.Println(seq.DetectAlphabet("the quick brown fox etc."))
	// Output:
	// DNA
	// protein
	// unknown
}

func ExampleReverseComplement() {
	fmt.Println(seq.ReverseComplement("AATGCC"))
	// Output:
	// GGCATT
}
