package seq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDetectAlphabet(t *testing.T) {
	cases := []struct {
		s    string
		want Alphabet
	}{
		{strings.Repeat("ACGT", 10), AlphabetDNA},
		{strings.Repeat("acgt", 10), AlphabetDNA},
		{"MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFKDLGEENFKALVLIA", AlphabetProtein},
		{"the quick brown fox jumps over the lazy dog", AlphabetUnknown},
		{"ACGT", AlphabetUnknown}, // too short
		{"", AlphabetUnknown},
	}
	for _, c := range cases {
		if got := DetectAlphabet(c.s); got != c.want {
			t.Errorf("DetectAlphabet(%.20q) = %v want %v", c.s, got, c.want)
		}
	}
}

func TestDNAPreferredOverProteinForACGT(t *testing.T) {
	// Pure ACGT qualifies for both alphabets; DNA must win.
	if got := DetectAlphabet(strings.Repeat("ACGT", 20)); got != AlphabetDNA {
		t.Errorf("got %v", got)
	}
}

func TestSmithWatermanIdentical(t *testing.T) {
	s := "ACGTACGTACGT"
	al := SmithWaterman(s, s, DefaultScoring())
	if al.Identity != 1.0 {
		t.Errorf("identity = %v", al.Identity)
	}
	if al.Score != len(s)*2 {
		t.Errorf("score = %d want %d", al.Score, len(s)*2)
	}
	if al.AStart != 0 || al.AEnd != len(s) {
		t.Errorf("span = [%d,%d)", al.AStart, al.AEnd)
	}
}

func TestSmithWatermanSubstring(t *testing.T) {
	a := "TTTTTACGTACGTTTTT"
	b := "ACGTACG"
	al := SmithWaterman(a, b, DefaultScoring())
	if al.Identity != 1.0 {
		t.Errorf("identity = %v", al.Identity)
	}
	if al.BStart != 0 || al.BEnd != len(b) {
		t.Errorf("b span = [%d,%d)", al.BStart, al.BEnd)
	}
	if a[al.AStart:al.AEnd] != "ACGTACG" {
		t.Errorf("aligned region = %q", a[al.AStart:al.AEnd])
	}
}

func TestSmithWatermanMismatchTolerance(t *testing.T) {
	a := "ACGTACGTACGTACGTACGT"
	b := "ACGTACGTTCGTACGTACGT" // one substitution
	al := SmithWaterman(a, b, DefaultScoring())
	if al.Identity <= 0.9 || al.Identity >= 1.0 {
		t.Errorf("identity = %v; want (0.9, 1.0)", al.Identity)
	}
}

func TestSmithWatermanGap(t *testing.T) {
	a := "ACGTACGTAACGTACGT"
	b := "ACGTACGTACGTACGT" // one deletion relative to a
	al := SmithWaterman(a, b, DefaultScoring())
	// Must bridge the gap rather than stopping at 8 columns.
	if al.Columns < 16 {
		t.Errorf("alignment columns = %d; want gapped alignment >= 16", al.Columns)
	}
}

func TestSmithWatermanNoSimilarity(t *testing.T) {
	al := SmithWaterman("AAAA", "TTTT", DefaultScoring())
	if al.Score != 0 || al.Identity != 0 {
		t.Errorf("disjoint alignment = %+v", al)
	}
}

func TestSmithWatermanEmpty(t *testing.T) {
	if al := SmithWaterman("", "ACGT", DefaultScoring()); al.Score != 0 {
		t.Errorf("empty input score = %d", al.Score)
	}
}

func randomDNA(rng *rand.Rand, n int) string {
	bases := "ACGT"
	b := make([]byte, n)
	for i := range b {
		b[i] = bases[rng.Intn(4)]
	}
	return string(b)
}

// mutate applies point mutations at the given rate.
func mutate(rng *rand.Rand, s string, rate float64) string {
	bases := "ACGT"
	b := []byte(s)
	for i := range b {
		if rng.Float64() < rate {
			b[i] = bases[rng.Intn(4)]
		}
	}
	return string(b)
}

func TestIndexSearchFindsHomolog(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ix := NewIndex(8)
	orig := randomDNA(rng, 300)
	ix.Add("target", orig)
	for i := 0; i < 20; i++ {
		ix.Add("decoy", randomDNA(rng, 300))
	}
	query := mutate(rng, orig, 0.05)
	hits := ix.Search(query, SearchOptions{MinScore: 50})
	if len(hits) == 0 {
		t.Fatal("no hits for 5%-mutated homolog")
	}
	if hits[0].TargetID != "target" {
		t.Errorf("best hit = %q", hits[0].TargetID)
	}
	if hits[0].Alignment.Identity < 0.85 {
		t.Errorf("identity = %v", hits[0].Alignment.Identity)
	}
}

func TestIndexSearchRejectsUnrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ix := NewIndex(10)
	for i := 0; i < 10; i++ {
		ix.Add("decoy", randomDNA(rng, 200))
	}
	query := randomDNA(rng, 200)
	hits := ix.Search(query, SearchOptions{MinScore: 60, MinSeeds: 2})
	if len(hits) != 0 {
		t.Errorf("unrelated query got %d hits", len(hits))
	}
}

func TestIndexSeedingPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := NewIndex(10)
	orig := randomDNA(rng, 200)
	ix.Add("homolog", orig)
	for i := 0; i < 50; i++ {
		ix.Add("decoy", randomDNA(rng, 200))
	}
	query := mutate(rng, orig, 0.03)
	candidates := ix.CandidateCount(query, 2)
	if candidates >= 25 {
		t.Errorf("seeding should prune most of 51 targets; candidates = %d", candidates)
	}
	if candidates < 1 {
		t.Error("seeding pruned the true homolog")
	}
}

func TestSearchMinIdentityFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ix := NewIndex(6)
	orig := randomDNA(rng, 200)
	ix.Add("t", orig)
	query := mutate(rng, orig, 0.25)
	loose := ix.Search(query, SearchOptions{MinScore: 10, MinSeeds: 1})
	strict := ix.Search(query, SearchOptions{MinScore: 10, MinSeeds: 1, MinIdentity: 0.99})
	if len(loose) == 0 {
		t.Fatal("expected a loose hit")
	}
	if len(strict) != 0 {
		t.Errorf("25%%-mutated sequence passed 99%% identity filter: %+v", strict)
	}
}

func TestAllPairsMatchesSeededOnStrongHomologs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var queries, targets []Record
	ix := NewIndex(8)
	for i := 0; i < 5; i++ {
		orig := randomDNA(rng, 150)
		targets = append(targets, Record{ID: string(rune('a' + i)), Seq: orig})
		ix.Add(string(rune('a'+i)), orig)
		queries = append(queries, Record{ID: string(rune('A' + i)), Seq: mutate(rng, orig, 0.02)})
	}
	full := AllPairs(queries, targets, SearchOptions{MinScore: 100})
	for _, q := range queries {
		seeded := ix.Search(q.Seq, SearchOptions{MinScore: 100})
		if len(full[q.ID]) == 0 || len(seeded) == 0 {
			t.Fatalf("query %s: full=%d seeded=%d", q.ID, len(full[q.ID]), len(seeded))
		}
		if full[q.ID][0].TargetID != seeded[0].TargetID {
			t.Errorf("query %s: full best %q != seeded best %q",
				q.ID, full[q.ID][0].TargetID, seeded[0].TargetID)
		}
	}
}

func TestSearchMaxHits(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ix := NewIndex(6)
	orig := randomDNA(rng, 100)
	for i := 0; i < 10; i++ {
		ix.Add("t", mutate(rng, orig, 0.01))
	}
	hits := ix.Search(orig, SearchOptions{MinScore: 20, MaxHits: 3})
	if len(hits) != 3 {
		t.Errorf("MaxHits: got %d", len(hits))
	}
}

// Property: alignment score is symmetric for match-only scoring, and
// identity stays within [0,1].
func TestSmithWatermanProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seedA, seedB uint8, lenA, lenB uint8) bool {
		a := randomDNA(rng, int(lenA%60)+1)
		b := randomDNA(rng, int(lenB%60)+1)
		x := SmithWaterman(a, b, DefaultScoring())
		y := SmithWaterman(b, a, DefaultScoring())
		if x.Score != y.Score {
			return false
		}
		return x.Identity >= 0 && x.Identity <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a sequence always aligns to itself with identity 1 and score
// len*match.
func TestSelfAlignmentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(n uint8) bool {
		s := randomDNA(rng, int(n%100)+1)
		al := SmithWaterman(s, s, DefaultScoring())
		return al.Identity == 1.0 && al.Score == 2*len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReverseComplement(t *testing.T) {
	cases := []struct{ in, want string }{
		{"ACGT", "ACGT"}, // palindrome
		{"AAAA", "TTTT"},
		{"ATGC", "GCAT"},
		{"acgt", "ACGT"},
		{"ACGU", "ACGT"}, // RNA U complements to A
	}
	for _, c := range cases {
		if got := ReverseComplement(c.in); got != c.want {
			t.Errorf("ReverseComplement(%q) = %q want %q", c.in, got, c.want)
		}
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		s := randomDNA(rng, 50+i)
		if got := ReverseComplement(ReverseComplement(s)); got != s {
			t.Fatalf("double complement != identity for %q", s)
		}
	}
}

func TestSearchBothStrands(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	target := randomDNA(rng, 200)
	ix := NewIndex(8)
	ix.Add("t", target)
	// A query equal to the reverse complement of the target: invisible on
	// the plus strand, found on the minus strand.
	query := ReverseComplement(target)
	plusOnly := ix.Search(query, SearchOptions{MinScore: 100})
	if len(plusOnly) != 0 {
		t.Fatalf("plus-strand search should miss: %v", plusOnly)
	}
	both := ix.Search(query, SearchOptions{MinScore: 100, BothStrands: true})
	if len(both) != 1 {
		t.Fatalf("both-strand search hits = %d", len(both))
	}
	if !both[0].MinusStrand {
		t.Error("hit should be marked minus-strand")
	}
	if both[0].Alignment.Identity != 1.0 {
		t.Errorf("identity = %v", both[0].Alignment.Identity)
	}
}

func TestSearchBothStrandsKeepsBest(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	target := randomDNA(rng, 150)
	ix := NewIndex(8)
	ix.Add("t", target)
	// Query equal to the target: the plus-strand hit must win.
	both := ix.Search(target, SearchOptions{MinScore: 50, BothStrands: true})
	if len(both) != 1 {
		t.Fatalf("hits = %d", len(both))
	}
	if both[0].MinusStrand {
		t.Error("plus-strand hit should win")
	}
	_ = rng
}
