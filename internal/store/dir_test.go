package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func appendRecord(t *testing.T, d *Dir, rec *WALRecord) {
	t.Helper()
	frame, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(frame, rec.Seq); err != nil {
		t.Fatal(err)
	}
}

func TestOpenDirFreshInit(t *testing.T) {
	path := t.TempDir()
	d, err := OpenDir(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	st := d.Stats()
	if st.Gen != 0 || st.WALSeq != 1 || st.Sources != 0 || st.WALRecords != 0 {
		t.Errorf("fresh stats = %+v", st)
	}
	if d.HasData() {
		t.Error("fresh directory reports data")
	}
	if _, err := os.Stat(filepath.Join(path, ManifestName)); err != nil {
		t.Errorf("manifest not initialized: %v", err)
	}
	if _, err := os.Stat(filepath.Join(path, "wal-00000001.log")); err != nil {
		t.Errorf("WAL not initialized: %v", err)
	}
}

func TestDirAppendReplayAcrossReopen(t *testing.T) {
	path := t.TempDir()
	d, err := OpenDir(path)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, rec := range want {
		appendRecord(t, d, rec)
	}
	if !d.HasData() {
		t.Error("directory with WAL records reports no data")
	}
	d.Close()

	d2, err := OpenDir(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	var got []*WALRecord
	n, err := d2.Replay(func(rec *WALRecord) error { got = append(got, rec); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) || len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", n, len(want))
	}
	if got[1].Type != RecDML || got[1].SQL != want[1].SQL {
		t.Errorf("replayed record 1 = %+v", got[1])
	}
	// Replay is one-shot: the buffer drops.
	if n, _ := d2.Replay(func(*WALRecord) error { return nil }); n != 0 {
		t.Errorf("second replay saw %d records", n)
	}
}

func TestDirCheckpointLoadAndTrim(t *testing.T) {
	path := t.TempDir()
	d, err := OpenDir(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, rec := range recs {
		appendRecord(t, d, rec)
	}

	seq, err := d.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("rotated to seq %d, want 2", seq)
	}
	// A record arriving after the rotation lands in the new WAL and must
	// survive the checkpoint's trim.
	appendRecord(t, d, &WALRecord{Seq: 4, Type: RecDML, SourceName: "src", SQL: "post-rotate"})

	ss := *recs[0].Source
	if err := d.CompleteCheckpoint(&CheckpointData{
		Dirty:     []SourceSnapshot{ss},
		Order:     []string{"src"},
		WALSeq:    seq,
		RecordSeq: 3,
		Links:     recs[0].Links,
		Removed:   nil,
	}); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Gen != 1 || st.WALSeq != 2 || st.Sources != 1 {
		t.Errorf("post-checkpoint stats = %+v", st)
	}
	if _, err := os.Stat(filepath.Join(path, "wal-00000001.log")); !os.IsNotExist(err) {
		t.Errorf("subsumed WAL not trimmed: %v", err)
	}
	d.Close()

	d2, err := OpenDir(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	snap, err := d2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Sources) != 1 || snap.Sources[0].Name != "src" || len(snap.Links) != 1 {
		t.Fatalf("loaded checkpoint = %d sources / %d links", len(snap.Sources), len(snap.Links))
	}
	n, err := d2.Replay(func(rec *WALRecord) error {
		if rec.SQL != "post-rotate" {
			t.Errorf("unexpected tail record %+v", rec)
		}
		return nil
	})
	if err != nil || n != 1 {
		t.Fatalf("tail replay n=%d err=%v", n, err)
	}
}

// Files a crash can leave behind — temp files, WAL files below the
// manifest's live sequence, segments no manifest references — are
// removed at open and never read.
func TestOpenDirCleansLeftovers(t *testing.T) {
	path := t.TempDir()
	d, err := OpenDir(path)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()

	for _, name := range []string{"seg-ghost-00000000-00000001.seg.tmp", "seg-ghost-00000000-00000001.seg", "wal-00000000.log"} {
		if err := os.WriteFile(filepath.Join(path, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	d2, err := OpenDir(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for _, name := range []string{"seg-ghost-00000000-00000001.seg.tmp", "seg-ghost-00000000-00000001.seg", "wal-00000000.log"} {
		if _, err := os.Stat(filepath.Join(path, name)); !os.IsNotExist(err) {
			t.Errorf("leftover %s survived reopen", name)
		}
	}
}

// The wal-append failpoint simulates a crash mid-append: the caller gets
// an error (no acknowledgement) and reopening finds a clean log with the
// torn frame truncated.
func TestDirWALAppendFailpoint(t *testing.T) {
	path := t.TempDir()
	d, err := OpenDir(path)
	if err != nil {
		t.Fatal(err)
	}
	appendRecord(t, d, &WALRecord{Seq: 1, Type: RecDML, SourceName: "src", SQL: "kept"})

	boom := os.ErrClosed
	d.Failpoint = func(stage string) error {
		if stage == "wal-append" {
			return boom
		}
		return nil
	}
	frame, err := EncodeRecord(&WALRecord{Type: RecDML, SourceName: "src", SQL: "torn"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(frame, 2); err == nil {
		t.Fatal("failpoint append should error")
	}
	d.Close()

	// The torn half-frame is on disk; recovery must ignore it.
	d2, err := OpenDir(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	var got []*WALRecord
	if _, err := d2.Replay(func(rec *WALRecord) error { got = append(got, rec); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].SQL != "kept" {
		t.Fatalf("recovered records = %+v", got)
	}
	// And the log is append-clean again. The failed append did not
	// consume sequence 2.
	appendRecord(t, d2, &WALRecord{Seq: 2, Type: RecDML, SourceName: "src", SQL: "after"})
}

// A missing WAL file between two present ones means acknowledged
// mutations are gone; OpenDir must refuse with ErrWALGap rather than
// silently replaying around the hole.
func TestOpenDirRefusesWALFileGap(t *testing.T) {
	path := t.TempDir()
	d, err := OpenDir(path)
	if err != nil {
		t.Fatal(err)
	}
	appendRecord(t, d, &WALRecord{Seq: 1, Type: RecDML, SourceName: "src", SQL: "one"})
	if _, err := d.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendRecord(t, d, &WALRecord{Seq: 2, Type: RecDML, SourceName: "src", SQL: "two"})
	if _, err := d.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendRecord(t, d, &WALRecord{Seq: 3, Type: RecDML, SourceName: "src", SQL: "three"})
	d.Close()

	// wal-1 and wal-3 present, wal-2 missing.
	if err := os.Remove(filepath.Join(path, "wal-00000002.log")); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDir(path)
	if !errors.Is(err, ErrWALGap) {
		t.Fatalf("open with missing wal-2 = %v, want ErrWALGap", err)
	}

	// The first live file missing is the same failure.
	if err := os.Remove(filepath.Join(path, "wal-00000001.log")); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDir(path)
	if !errors.Is(err, ErrWALGap) {
		t.Fatalf("open with missing wal-1 = %v, want ErrWALGap", err)
	}
}

// Non-consecutive record sequences inside the live WAL — a corrupt
// record in a non-final file swallowing acknowledged mutations — are a
// gap, distinct from a torn tail (which only loses the unacknowledged
// end and stays fine).
func TestOpenDirRefusesRecordSeqGap(t *testing.T) {
	path := t.TempDir()
	d, err := OpenDir(path)
	if err != nil {
		t.Fatal(err)
	}
	appendRecord(t, d, &WALRecord{Seq: 1, Type: RecDML, SourceName: "src", SQL: "one"})
	appendRecord(t, d, &WALRecord{Seq: 3, Type: RecDML, SourceName: "src", SQL: "three"})
	d.Close()

	_, err = OpenDir(path)
	if !errors.Is(err, ErrWALGap) {
		t.Fatalf("open with record seqs 1,3 = %v, want ErrWALGap", err)
	}
}
