package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metadata"
)

func sampleRecords() []*WALRecord {
	return []*WALRecord{
		{
			Seq:  1,
			Type: RecAddSource,
			Source: &SourceSnapshot{
				Name:       "src",
				Relations:  SnapshotDatabase(sampleDB()),
				TupleCount: 2,
			},
			Links: []metadata.Link{{
				Type: metadata.LinkXRef,
				From: metadata.ObjectRef{Source: "src", Relation: "t", Accession: "P1"},
				To:   metadata.ObjectRef{Source: "other", Relation: "m", Accession: "X1"},
			}},
		},
		{Seq: 2, Type: RecDML, SourceName: "src", SQL: "DELETE FROM src_t WHERE id = 2"},
		{Seq: 3, Type: RecRemoveLink, Link: &metadata.Link{
			Type: metadata.LinkText,
			From: metadata.ObjectRef{Source: "src", Relation: "t", Accession: "P1"},
			To:   metadata.ObjectRef{Source: "other", Relation: "m", Accession: "X2"},
		}},
	}
}

func TestWALAppendScanRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-00000001.log")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, rec := range want {
		if err := w.AppendRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != len(want) || w.Bytes() <= 0 {
		t.Fatalf("counters = %d records / %d bytes", w.Records(), w.Bytes())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, _, err := ScanWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i, rec := range got {
		if rec.Seq != uint64(i+1) {
			t.Errorf("record %d has seq %d, want %d", i, rec.Seq, i+1)
		}
	}
	if got[0].Type != RecAddSource || got[0].Source.Name != "src" || len(got[0].Links) != 1 {
		t.Errorf("record 0 = %+v", got[0])
	}
	if got[1].Type != RecDML || got[1].SQL != want[1].SQL || got[1].SourceName != "src" {
		t.Errorf("record 1 = %+v", got[1])
	}
	if got[2].Type != RecRemoveLink || got[2].Link == nil || got[2].Link.To.Accession != "X2" {
		t.Errorf("record 2 = %+v", got[2])
	}

	// OpenWAL resumes appending after the last intact record.
	w2, replayed, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(want) {
		t.Fatalf("reopen replayed %d records, want %d", len(replayed), len(want))
	}
	if err := w2.AppendRecord(&WALRecord{Seq: 4, Type: RecDML, SQL: "x"}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	got, _, err = ScanWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want)+1 {
		t.Fatalf("after reopen+append: %d records, want %d", len(got), len(want)+1)
	}
}

// A crash mid-append leaves a torn final frame: replay must stop at the
// last intact record, and reopening must truncate the tear so later
// appends produce a clean log.
func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-00000001.log")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords() {
		if err := w.AppendRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	recs, valid, err := ScanWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("torn tail: scanned %d records, want 2", len(recs))
	}
	if valid >= fi.Size()-5 {
		t.Fatalf("truncation point %d not before the tear", valid)
	}

	w2, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendRecord(&WALRecord{Seq: 3, Type: RecDML, SQL: "after tear"}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	recs, _, err = ScanWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].SQL != "after tear" {
		t.Fatalf("after truncate+append: %d records (%+v)", len(recs), recs[len(recs)-1])
	}
}

// A corrupt record (bad CRC) stops replay: everything after it is
// untrusted even if it decodes.
func TestWALCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-00000001.log")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords() {
		if err := w.AppendRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the second record: magic, then frame 1.
	_, n1, err := DecodeFrame(buf[len(walMagic):])
	if err != nil {
		t.Fatal(err)
	}
	buf[len(walMagic)+n1+walFrameHeader] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, _, err := ScanWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("corrupt middle record: scanned %d records, want 1", len(recs))
	}
}

func TestScanWALRejectsNonWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-00000001.log")
	if err := os.WriteFile(path, []byte("definitely not a WAL file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ScanWAL(path); err == nil {
		t.Error("garbage file should be rejected")
	}
	// A torn header (prefix of the magic) is an empty log, not an error:
	// CreateWAL could have crashed right after the first write.
	if err := os.WriteFile(path, []byte(walMagic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ScanWAL(path)
	if err != nil || len(recs) != 0 {
		t.Errorf("torn header: recs=%d err=%v", len(recs), err)
	}
}

// An absurd length prefix is corruption, not a torn frame: it must be a
// hard error (not io.ErrUnexpectedEOF) and must not allocate the claim.
func TestDecodeFrameLimitsLength(t *testing.T) {
	frame := make([]byte, walFrameHeader)
	frame[0], frame[1], frame[2], frame[3] = 0xff, 0xff, 0xff, 0xff
	_, _, err := DecodeFrame(frame)
	if err == nil || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("oversized length should be a hard error, got %v", err)
	}
}

func FuzzWALDecode(f *testing.F) {
	for _, rec := range sampleRecords() {
		frame, err := EncodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)/2])
	}
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if rec == nil || n <= 0 || n > len(data) {
			t.Fatalf("decoded frame inconsistent: rec=%v n=%d len=%d", rec, n, len(data))
		}
		// A successfully decoded record must re-encode.
		if _, err := EncodeRecord(rec); err != nil {
			t.Fatalf("re-encoding decoded record: %v", err)
		}
	})
}
