package store

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/metadata"
	"repro/internal/rel"
)

func sampleDB() *rel.Database {
	db := rel.NewDatabase("src")
	r := db.Create("t", rel.NewSchema(
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "acc", Kind: rel.KindString},
		rel.Column{Name: "mass", Kind: rel.KindFloat},
		rel.Column{Name: "active", Kind: rel.KindBool},
	))
	r.PrimaryKey = "id"
	r.UniqueCols["acc"] = true
	r.ForeignKeys = append(r.ForeignKeys, rel.ForeignKey{
		FromRelation: "t", FromColumn: "id", ToRelation: "u", ToColumn: "tid"})
	r.Append(rel.Tuple{rel.Int(1), rel.Str("P1"), rel.Float(2.5), rel.Bool(true)})
	r.Append(rel.Tuple{rel.Int(2), rel.Null(), rel.Float(-1), rel.Bool(false)})
	return db
}

func TestRelationRoundTrip(t *testing.T) {
	db := sampleDB()
	orig := db.Relation("t")
	restored := RestoreRelation(SnapshotRelation(orig))
	if restored.Name != "t" || restored.Schema.Len() != 4 {
		t.Fatalf("shape = %s/%d", restored.Name, restored.Schema.Len())
	}
	if restored.PrimaryKey != "id" || !restored.UniqueCols["acc"] {
		t.Error("constraints lost")
	}
	if len(restored.ForeignKeys) != 1 {
		t.Error("FKs lost")
	}
	for i, tu := range orig.Tuples {
		for j, v := range tu {
			got := restored.Tuples[i][j]
			if v.IsNull() != got.IsNull() {
				t.Fatalf("null mismatch at %d,%d", i, j)
			}
			if !v.IsNull() && !v.Equal(got) {
				t.Fatalf("value mismatch at %d,%d: %v vs %v", i, j, v, got)
			}
			if v.Kind() != got.Kind() {
				t.Fatalf("kind mismatch at %d,%d: %v vs %v", i, j, v.Kind(), got.Kind())
			}
		}
	}
}

func TestSnapshotWriteRead(t *testing.T) {
	db := sampleDB()
	metas := map[string]*metadata.SourceMeta{
		"src": {Name: "src", Seq: 1, TupleCount: 2},
	}
	links := []metadata.Link{{
		Type:       metadata.LinkXRef,
		From:       metadata.ObjectRef{Source: "src", Relation: "t", Accession: "P1"},
		To:         metadata.ObjectRef{Source: "other", Relation: "m", Accession: "X1"},
		Confidence: 0.9, Method: "test",
	}}
	removed := []metadata.Link{{
		Type: metadata.LinkText,
		From: metadata.ObjectRef{Source: "src", Relation: "t", Accession: "P1"},
		To:   metadata.ObjectRef{Source: "other", Relation: "m", Accession: "X2"},
	}}
	snap := Build(map[string]*rel.Database{"src": db}, metas, links, removed)

	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != FormatVersion || len(got.Sources) != 1 {
		t.Fatalf("snapshot = %+v", got)
	}
	if len(got.Links) != 1 || got.Links[0].Method != "test" {
		t.Errorf("links = %+v", got.Links)
	}
	if len(got.Removed) != 1 {
		t.Errorf("removed = %+v", got.Removed)
	}
}

func TestReadRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Snapshot{Version: FormatVersion}); err != nil {
		t.Fatal(err)
	}
	// Corrupt by writing a snapshot with a bad version.
	var buf2 bytes.Buffer
	bad := &Snapshot{Version: 999}
	if err := Write(&buf2, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf2); err == nil {
		t.Error("wrong version should be rejected")
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Error("garbage should fail")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "warehouse.gob")
	db := sampleDB()
	snap := Build(map[string]*rel.Database{"src": db},
		map[string]*metadata.SourceMeta{"src": {Name: "src", Seq: 1}}, nil, nil)
	if err := SaveFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sources) != 1 || got.Sources[0].Name != "src" {
		t.Errorf("loaded = %+v", got.Sources)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestRestoreReplaysFeedbackFirst(t *testing.T) {
	l := metadata.Link{
		Type:       metadata.LinkXRef,
		From:       metadata.ObjectRef{Source: "a", Relation: "r", Accession: "1"},
		To:         metadata.ObjectRef{Source: "b", Relation: "r", Accession: "2"},
		Confidence: 1,
	}
	snap := &Snapshot{
		Version: FormatVersion,
		Links:   []metadata.Link{l},
		Removed: []metadata.Link{l},
	}
	w, err := Restore(snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := w.Repo.LinkCount(-1); n != 0 {
		t.Errorf("removed link restored: count = %d", n)
	}
}

func TestBuildOrdersBySeq(t *testing.T) {
	dbs := map[string]*rel.Database{
		"b": rel.NewDatabase("b"),
		"a": rel.NewDatabase("a"),
	}
	metas := map[string]*metadata.SourceMeta{
		"b": {Name: "b", Seq: 2},
		"a": {Name: "a", Seq: 1},
	}
	snap := Build(dbs, metas, nil, nil)
	if len(snap.Sources) != 2 || snap.Sources[0].Name != "a" || snap.Sources[1].Name != "b" {
		t.Errorf("order = %+v", snap.Sources)
	}
}
