package store

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strings"

	"repro/internal/metadata"
)

// The durable directory format (see dir.go for the lifecycle):
//
//	<dir>/MANIFEST            active segment list + live WAL sequence
//	<dir>/wal-<seq>.log       append-only WAL files (wal.go)
//	<dir>/seg-<src>-<gen>.seg one checkpoint segment per source
//	<dir>/links-<gen>.seg     the link repository + feedback segment
//
// Segments are immutable once written: a checkpoint writes NEW files
// for the sources dirtied since the last checkpoint, reuses the
// existing files of clean sources verbatim (their RelationSnapshot
// encoding never changes while the source doesn't), and then swaps the
// MANIFEST atomically. The MANIFEST is the single commit point: until
// the rename lands, recovery sees the previous checkpoint plus the
// complete WAL; after it, the new segments plus the rotated WAL tail.

const (
	manifestMagic = "ALMF1\n"
	segmentMagic  = "ALSG1\n"
	linksMagic    = "ALLK1\n"

	// ManifestName is the manifest file name inside a data directory.
	ManifestName = "MANIFEST"
)

// ManifestVersion identifies the directory-format layout. Version 2
// added RecordSeq (and the WAL v2 per-frame sequence it anchors);
// version-1 directories are rejected with a clear error — re-ingest or
// re-bootstrap to migrate.
const ManifestVersion = 2

// SegmentRef names the active checkpoint segment of one source.
type SegmentRef struct {
	Source string
	File   string
}

// Manifest is the durable root of a data directory.
type Manifest struct {
	Version int
	// Gen increments with every completed checkpoint.
	Gen uint64
	// WALSeq is the first live WAL sequence number: recovery replays
	// every wal-<seq>.log with seq >= WALSeq, in order.
	WALSeq uint64
	// RecordSeq is the global sequence of the last mutation the
	// checkpoint segments subsume (0 before any mutation). Live WAL
	// records continue at RecordSeq+1; replication streams are addressed
	// relative to it, and recovery seeds the mutation counter from it.
	RecordSeq uint64
	// Sources lists the active per-source segments in registration order.
	Sources []SegmentRef
	// LinksFile is the active link-repository segment ("" before the
	// first checkpoint).
	LinksFile string
}

// linksSegment is the payload of a links-<gen>.seg file.
type linksSegment struct {
	Links   []metadata.Link
	Removed []metadata.Link
}

func writeMagic(w io.Writer, magic string) error {
	_, err := io.WriteString(w, magic)
	return err
}

func checkMagic(r io.Reader, magic, what string) error {
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		return fmt.Errorf("store: reading %s header: %w", what, err)
	}
	if string(hdr) != magic {
		return fmt.Errorf("store: %s has bad magic %q (not a %s, or an unsupported version)", what, hdr, what)
	}
	return nil
}

// writeManifest durably writes the manifest (temp, fsync, rename,
// directory fsync) — the atomic checkpoint commit point.
func writeManifest(path string, m *Manifest) error {
	m.Version = ManifestVersion
	return atomicWriteFile(path, func(w io.Writer) error {
		if err := writeMagic(w, manifestMagic); err != nil {
			return err
		}
		return gob.NewEncoder(w).Encode(m)
	})
}

// readManifest loads and validates a manifest file.
func readManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := checkMagic(f, manifestMagic, "manifest"); err != nil {
		return nil, err
	}
	var m Manifest
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("store: decoding manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("store: unsupported manifest version %d (want %d)", m.Version, ManifestVersion)
	}
	return &m, nil
}

// writeSegment durably writes one source's checkpoint segment.
func writeSegment(path string, ss *SourceSnapshot) error {
	return atomicWriteFile(path, func(w io.Writer) error {
		if err := writeMagic(w, segmentMagic); err != nil {
			return err
		}
		return gob.NewEncoder(w).Encode(ss)
	})
}

// readSegment loads one source segment.
func readSegment(path string) (*SourceSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := checkMagic(f, segmentMagic, "segment"); err != nil {
		return nil, err
	}
	var ss SourceSnapshot
	if err := gob.NewDecoder(f).Decode(&ss); err != nil {
		return nil, fmt.Errorf("store: decoding segment %s: %w", path, err)
	}
	return &ss, nil
}

// writeLinksSegment durably writes the link-repository segment.
func writeLinksSegment(path string, links, removed []metadata.Link) error {
	return atomicWriteFile(path, func(w io.Writer) error {
		if err := writeMagic(w, linksMagic); err != nil {
			return err
		}
		return gob.NewEncoder(w).Encode(&linksSegment{Links: links, Removed: removed})
	})
}

// readLinksSegment loads the link-repository segment.
func readLinksSegment(path string) (*linksSegment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := checkMagic(f, linksMagic, "links segment"); err != nil {
		return nil, err
	}
	var ls linksSegment
	if err := gob.NewDecoder(f).Decode(&ls); err != nil {
		return nil, fmt.Errorf("store: decoding links segment %s: %w", path, err)
	}
	return &ls, nil
}

// segmentFileName builds a unique, filesystem-safe segment name for one
// source at one checkpoint generation. The fnv suffix disambiguates
// source names that sanitize to the same string.
func segmentFileName(source string, gen uint64) string {
	h := fnv.New32a()
	h.Write([]byte(strings.ToLower(source)))
	san := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, source)
	if len(san) > 32 {
		san = san[:32]
	}
	return fmt.Sprintf("seg-%s-%08x-%08d.seg", san, h.Sum32(), gen)
}
