package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// This file is the export surface the replication subsystem
// (internal/repl) is built on. A primary serves three things, all of
// which exist on disk already: the manifest (ManifestCopy), the
// immutable checkpoint segments (OpenArtifact), and the WAL tail as raw
// frames addressed by global record sequence (FramesSince). A replica
// bootstraps by downloading the segments and planting a manifest that
// points at them (InitReplicaDir), after which OpenDir/Load/Replay
// behave exactly as they do after a local crash.

// ErrWALTrimmed reports that the requested WAL records were already
// subsumed by a checkpoint and trimmed — the caller must re-bootstrap
// from the segments instead of streaming. Test with errors.Is.
var ErrWALTrimmed = errors.New("store: requested WAL records already checkpointed and trimmed")

// ManifestCopy returns a copy of the current manifest.
func (d *Dir) ManifestCopy() Manifest {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := *d.manifest
	m.Sources = append([]SegmentRef(nil), m.Sources...)
	return m
}

// OpenArtifact opens a segment file for reading, but only if the
// current manifest references it — which both prevents path traversal
// (the name is matched against the manifest, never joined blindly) and
// guarantees the file is immutable while open. The caller closes it.
// A name the manifest does not reference (any more) is an error; the
// client re-fetches the manifest and retries.
func (d *Dir) OpenArtifact(name string) (*os.File, error) {
	d.mu.Lock()
	ok := name != "" && name == d.manifest.LinksFile
	for _, ref := range d.manifest.Sources {
		if ref.File == name {
			ok = true
			break
		}
	}
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: %q is not an active segment", name)
	}
	return os.Open(filepath.Join(d.path, name))
}

// FramesSince returns the raw, already-validated WAL frames of every
// record with sequence > from, concatenated in order, plus the sequence
// of the last frame returned (= from if none). Frames are read straight
// from the on-disk WAL files — safe concurrently with appends because
// files are append-only and a partially-written tail fails frame
// validation and is simply not returned yet.
//
// If from predates the last checkpoint (from < manifest RecordSeq) the
// trimmed WAL can no longer produce the records and FramesSince returns
// ErrWALTrimmed: the caller must re-bootstrap from the segments.
// maxBytes > 0 soft-bounds the response size (the last frame may
// overshoot it).
func (d *Dir) FramesSince(from uint64, maxBytes int) ([]byte, uint64, error) {
	// A checkpoint can swap the manifest and trim files between reading
	// the bounds and reading the files; retry from fresh bounds when a
	// file vanishes underneath us.
	for attempt := 0; ; attempt++ {
		d.mu.Lock()
		base := d.manifest.RecordSeq
		first := d.manifest.WALSeq
		last := d.walSeq
		d.mu.Unlock()
		if from < base {
			return nil, 0, fmt.Errorf("store: records after %d requested but only records after %d remain: %w", from, base, ErrWALTrimmed)
		}
		out, lastSeq, err := d.scanFramesSince(first, last, from, maxBytes)
		if err == nil {
			return out, lastSeq, nil
		}
		if os.IsNotExist(err) && attempt < 3 {
			continue
		}
		return nil, 0, err
	}
}

func (d *Dir) scanFramesSince(firstFile, lastFile, from uint64, maxBytes int) ([]byte, uint64, error) {
	var out []byte
	lastSeq := from
	for s := firstFile; s <= lastFile; s++ {
		buf, err := os.ReadFile(d.walFile(s))
		if err != nil {
			return nil, 0, err
		}
		if len(buf) < len(walMagic) || string(buf[:len(walMagic)]) != walMagic {
			// A torn header means the file was created but never used.
			if len(buf) < len(walMagic) && string(buf) == walMagic[:len(buf)] {
				continue
			}
			return nil, 0, fmt.Errorf("store: wal-%08d.log is not a WAL file", s)
		}
		rest := buf[len(walMagic):]
		for len(rest) > 0 {
			seq, n, err := ScanFrame(rest)
			if err != nil {
				break // torn or in-flight tail: not acknowledged yet
			}
			if seq > from {
				out = append(out, rest[:n]...)
				if seq > lastSeq {
					lastSeq = seq
				}
			}
			rest = rest[n:]
			if maxBytes > 0 && len(out) >= maxBytes {
				return out, lastSeq, nil
			}
		}
	}
	return out, lastSeq, nil
}

// InitReplicaDir plants a manifest into dir (which must not already
// hold one) referencing segment files the caller has just downloaded
// into it, so that OpenDir/Load recover the primary's checkpointed
// state. The local WAL numbering starts fresh at 1; m.RecordSeq carries
// the global sequence the segments subsume, which is where the replica
// resumes streaming.
func InitReplicaDir(dir string, m *Manifest) error {
	mpath := filepath.Join(dir, ManifestName)
	if _, err := os.Stat(mpath); err == nil {
		return fmt.Errorf("store: %s already holds a manifest", dir)
	} else if !os.IsNotExist(err) {
		return err
	}
	planted := *m
	planted.Version = ManifestVersion
	planted.WALSeq = 1
	return writeManifest(mpath, &planted)
}

// WriteFileAtomic durably writes the contents of r to path via the
// usual temp + fsync + rename + dir-fsync dance. Used for downloaded
// segment files, which must be fully on disk before the manifest that
// references them is planted.
func WriteFileAtomic(path string, r io.Reader) error {
	return atomicWriteFile(path, func(w io.Writer) error {
		_, err := io.Copy(w, r)
		return err
	})
}
