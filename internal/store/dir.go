package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/metadata"
)

// Dir is an open durable data directory: the manifest, its segments,
// and the live WAL. The lifecycle is
//
//	d, _ := OpenDir(path)      // validates or initializes the directory
//	snap, _ := d.Load()        // state as of the last checkpoint
//	d.Replay(apply)            // WAL tail: mutations since the checkpoint
//	d.Append(frame)            // journal new mutations
//	d.Rotate()                 // checkpoint capture point (under lock)
//	d.CompleteCheckpoint(data) // write segments, swap manifest, trim WAL
//
// Methods are safe for the caller pattern of package aladin: Append and
// Rotate run under the database write/read locks, CompleteCheckpoint
// runs off-lock; an internal mutex keeps Stats consistent with them.
// Two concurrent checkpoints must be serialized by the caller.
type Dir struct {
	path string

	mu             sync.Mutex
	manifest       *Manifest
	wal            *WAL
	walSeq         uint64
	lastCheckpoint time.Time
	pending        []*WALRecord

	// Failpoint, when non-nil, is consulted at named stages of
	// CompleteCheckpoint and WAL appends; a non-nil error aborts the
	// operation leaving the directory exactly as a crash at that point
	// would. Test hook only.
	Failpoint func(stage string) error
}

// OpenDir opens (or initializes) a durable data directory.
func OpenDir(path string) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, err
	}
	d := &Dir{path: path}
	mpath := filepath.Join(path, ManifestName)
	m, err := readManifest(mpath)
	switch {
	case err == nil:
		d.manifest = m
		if fi, err := os.Stat(mpath); err == nil {
			d.lastCheckpoint = fi.ModTime()
		}
	case os.IsNotExist(err):
		d.manifest = &Manifest{Version: ManifestVersion, Gen: 0, WALSeq: 1}
		if err := writeManifest(mpath, d.manifest); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}

	// Open the live WAL files: replay-scan all of them in sequence
	// order, truncate the newest at its last intact record, and keep it
	// open for appends. Files below the manifest's WALSeq are leftovers
	// of a checkpoint that crashed after the manifest swap; they are
	// ignored and cleaned up below.
	seqs, err := d.walSequences()
	if err != nil {
		return nil, err
	}
	live := seqs[:0:0]
	for _, s := range seqs {
		if s >= d.manifest.WALSeq {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		d.walSeq = d.manifest.WALSeq
		w, err := CreateWAL(d.walFile(d.walSeq))
		if err != nil {
			return nil, err
		}
		d.wal = w
	} else {
		// The live files must be exactly WALSeq, WALSeq+1, ... — a hole
		// means acknowledged mutations are gone, and everything after the
		// hole may depend on them. Refuse to open rather than silently
		// replay around it.
		if live[0] != d.manifest.WALSeq {
			return nil, fmt.Errorf("store: wal-%08d.log is missing (manifest expects the live WAL to start there, first present is wal-%08d.log): %w",
				d.manifest.WALSeq, live[0], ErrWALGap)
		}
		for i := 1; i < len(live); i++ {
			if live[i] != live[i-1]+1 {
				return nil, fmt.Errorf("store: wal-%08d.log is missing (wal-%08d.log and wal-%08d.log are both present): %w",
					live[i-1]+1, live[i-1], live[i], ErrWALGap)
			}
		}
		for i, s := range live {
			if i == len(live)-1 {
				w, recs, err := OpenWAL(d.walFile(s))
				if err != nil {
					return nil, err
				}
				d.wal, d.walSeq = w, s
				d.pending = append(d.pending, recs...)
			} else {
				recs, _, err := ScanWAL(d.walFile(s))
				if err != nil {
					return nil, err
				}
				d.pending = append(d.pending, recs...)
			}
		}
	}
	// Record sequences must be dense from the checkpoint onward. A jump
	// inside the pending tail means a corrupt record in a non-final WAL
	// file swallowed acknowledged mutations mid-stream — distinct from a
	// torn tail, which only ever loses the unacknowledged end.
	expect := d.manifest.RecordSeq
	for _, rec := range d.pending {
		if rec.Seq != expect+1 {
			return nil, fmt.Errorf("store: WAL record sequence jumps from %d to %d: %w", expect, rec.Seq, ErrWALGap)
		}
		expect = rec.Seq
	}
	d.cleanup()
	return d, nil
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

// HasData reports whether the directory holds any state — checkpointed
// segments or pending WAL records. A snapshot may only be imported into
// a directory without data.
func (d *Dir) HasData() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.manifest.Sources) > 0 || d.manifest.LinksFile != "" ||
		len(d.pending) > 0 || d.wal.Records() > 0
}

// Load reads the checkpointed state: every active segment plus the
// links segment, assembled into a Snapshot.
func (d *Dir) Load() (*Snapshot, error) {
	d.mu.Lock()
	m := d.manifest
	d.mu.Unlock()
	snap := &Snapshot{Version: FormatVersion}
	for _, ref := range m.Sources {
		ss, err := readSegment(filepath.Join(d.path, ref.File))
		if err != nil {
			return nil, fmt.Errorf("store: loading segment for %s: %w", ref.Source, err)
		}
		snap.Sources = append(snap.Sources, *ss)
	}
	if m.LinksFile != "" {
		ls, err := readLinksSegment(filepath.Join(d.path, m.LinksFile))
		if err != nil {
			return nil, err
		}
		snap.Links, snap.Removed = ls.Links, ls.Removed
	}
	return snap, nil
}

// Replay hands the WAL tail — every intact record since the last
// checkpoint — to apply, in append order, then drops the replay buffer.
// It returns the number of records replayed.
func (d *Dir) Replay(apply func(*WALRecord) error) (int, error) {
	d.mu.Lock()
	recs := d.pending
	d.pending = nil
	d.mu.Unlock()
	for i, rec := range recs {
		if err := apply(rec); err != nil {
			return i, fmt.Errorf("store: replaying WAL record %d: %w", i, err)
		}
	}
	return len(recs), nil
}

// Append durably journals one pre-encoded record frame (see
// EncodeRecord), stamping seq into its header. Callers serialize
// appends with mutations and hand out dense sequence numbers.
func (d *Dir) Append(frame []byte, seq uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.wal.failpoint = d.Failpoint
	return d.wal.Append(frame, seq)
}

// Rotate switches appends to a fresh WAL file and returns its sequence
// number. It is the checkpoint capture point: the caller invokes it
// under the same exclusion it uses for Append, having captured the
// in-memory state the WAL-so-far describes; the checkpoint that follows
// subsumes every record before the rotation, while new mutations land
// in the new file and stay live across the manifest swap.
func (d *Dir) Rotate() (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	next := d.walSeq + 1
	w, err := CreateWAL(d.walFile(next))
	if err != nil {
		return 0, err
	}
	if err := d.wal.Close(); err != nil {
		w.Close()
		os.Remove(d.walFile(next))
		return 0, err
	}
	d.wal, d.walSeq = w, next
	return next, nil
}

// CheckpointData is the input to CompleteCheckpoint: the re-encoded
// snapshots of the sources dirtied since the last checkpoint, the full
// source order, and the link repository.
type CheckpointData struct {
	// Dirty holds the sources whose segments must be rewritten.
	Dirty []SourceSnapshot
	// Order lists ALL sources in registration order; sources not in
	// Dirty keep their existing segment file untouched.
	Order []string
	// WALSeq is the rotation point returned by Rotate: the new manifest
	// marks WAL files below it as subsumed.
	WALSeq uint64
	// RecordSeq is the global sequence of the last mutation captured in
	// this checkpoint; the new manifest anchors the record counter there.
	RecordSeq uint64
	Links     []metadata.Link
	Removed   []metadata.Link
}

// CompleteCheckpoint writes the dirty sources' segments and the links
// segment, atomically swaps the manifest, and trims subsumed WAL files
// and orphaned segments. Runs off-lock; on error the directory is left
// in a state recovery handles (the old manifest stays active until the
// swap lands).
func (d *Dir) CompleteCheckpoint(data *CheckpointData) error {
	d.mu.Lock()
	old := d.manifest
	d.mu.Unlock()
	gen := old.Gen + 1

	newFiles := make(map[string]string, len(data.Dirty))
	for i := range data.Dirty {
		ss := &data.Dirty[i]
		file := segmentFileName(ss.Name, gen)
		if err := d.fail("segment:"+ss.Name, func() {
			d.tearFile(filepath.Join(d.path, file)+".tmp", segmentMagic, ss)
		}); err != nil {
			return err
		}
		if err := writeSegment(filepath.Join(d.path, file), ss); err != nil {
			return fmt.Errorf("store: writing segment for %s: %w", ss.Name, err)
		}
		newFiles[keyOf(ss.Name)] = file
	}

	linksFile := fmt.Sprintf("links-%08d.seg", gen)
	if err := d.fail("links", func() {
		d.tearFile(filepath.Join(d.path, linksFile)+".tmp", linksMagic, &linksSegment{Links: data.Links})
	}); err != nil {
		return err
	}
	if err := writeLinksSegment(filepath.Join(d.path, linksFile), data.Links, data.Removed); err != nil {
		return err
	}

	next := &Manifest{Version: ManifestVersion, Gen: gen, WALSeq: data.WALSeq, RecordSeq: data.RecordSeq, LinksFile: linksFile}
	oldFiles := make(map[string]string, len(old.Sources))
	for _, ref := range old.Sources {
		oldFiles[keyOf(ref.Source)] = ref.File
	}
	for _, name := range data.Order {
		file, ok := newFiles[keyOf(name)]
		if !ok {
			if file, ok = oldFiles[keyOf(name)]; !ok {
				return fmt.Errorf("store: checkpoint: source %q is neither dirty nor in the previous manifest", name)
			}
		}
		next.Sources = append(next.Sources, SegmentRef{Source: name, File: file})
	}

	if err := d.fail("manifest", func() {
		d.tearFile(filepath.Join(d.path, ManifestName)+".tmp", manifestMagic, next)
	}); err != nil {
		return err
	}
	if err := writeManifest(filepath.Join(d.path, ManifestName), next); err != nil {
		return err
	}

	d.mu.Lock()
	d.manifest = next
	d.lastCheckpoint = time.Now()
	d.mu.Unlock()

	if err := d.fail("trim", nil); err != nil {
		return err
	}
	d.cleanup()
	return nil
}

// fail triggers the test failpoint; onCrash, when non-nil, plants the
// partial on-disk state a kill at that stage would leave.
func (d *Dir) fail(stage string, onCrash func()) error {
	if d.Failpoint == nil {
		return nil
	}
	if err := d.Failpoint(stage); err != nil {
		if onCrash != nil {
			onCrash()
		}
		return err
	}
	return nil
}

// tearFile writes the first half of an encoded artifact to path — the
// torn temp file a mid-write crash leaves behind. Recovery must ignore
// such files.
func (d *Dir) tearFile(path, magic string, v any) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	if gob.NewEncoder(&buf).Encode(v) == nil {
		os.WriteFile(path, buf.Bytes()[:buf.Len()/2], 0o644)
	}
}

// DirStats reports the durability state for monitoring.
type DirStats struct {
	Path string
	// Gen is the completed checkpoint generation (0 = none yet).
	Gen uint64
	// WALSeq is the live WAL sequence number.
	WALSeq uint64
	// WALRecords / WALBytes measure the current WAL file — the replay
	// work a crash right now would incur on top of the last checkpoint.
	WALRecords int
	WALBytes   int64
	// LastCheckpoint is when the manifest was last swapped (the manifest
	// file's mtime when the directory was opened by this process).
	LastCheckpoint time.Time
	// Sources is the number of checkpointed source segments.
	Sources int
	// RecordSeq is the global sequence the last checkpoint subsumed
	// (manifest RecordSeq); the live warehouse sequence is tracked by
	// package core, not here.
	RecordSeq uint64
}

// Stats returns a consistent view of the durability state.
func (d *Dir) Stats() DirStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DirStats{
		Path:           d.path,
		Gen:            d.manifest.Gen,
		WALSeq:         d.walSeq,
		WALRecords:     d.wal.Records() + len(d.pending),
		WALBytes:       d.wal.Bytes(),
		LastCheckpoint: d.lastCheckpoint,
		Sources:        len(d.manifest.Sources),
		RecordSeq:      d.manifest.RecordSeq,
	}
}

// Close flushes and closes the live WAL.
func (d *Dir) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wal.Close()
}

// cleanup removes files no longer reachable from the manifest: temp
// files, WAL files below the live sequence, and segments the last
// manifest swap orphaned. Best-effort — recovery never reads them.
func (d *Dir) cleanup() {
	d.mu.Lock()
	m := d.manifest
	d.mu.Unlock()
	live := map[string]bool{m.LinksFile: true}
	for _, ref := range m.Sources {
		live[ref.File] = true
	}
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case filepath.Ext(name) == ".tmp":
		case name == ManifestName:
			continue
		case len(name) > 4 && name[:4] == "wal-":
			var seq uint64
			if _, err := fmt.Sscanf(name, "wal-%d.log", &seq); err != nil || seq >= m.WALSeq {
				continue
			}
		case filepath.Ext(name) == ".seg":
			if live[name] {
				continue
			}
		default:
			continue
		}
		os.Remove(filepath.Join(d.path, name))
	}
}

// walSequences lists the wal-<seq>.log sequence numbers present.
func (d *Dir) walSequences() ([]uint64, error) {
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.log", &seq); err == nil && filepath.Ext(e.Name()) == ".log" {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func (d *Dir) walFile(seq uint64) string {
	return filepath.Join(d.path, fmt.Sprintf("wal-%08d.log", seq))
}
