// Package store persists and restores an integrated ALADIN warehouse.
// The paper's system is a *materialized* repository (§3: "ALADIN builds on
// a local data warehouse"), so integration results — imported relations,
// discovered structures, statistics, object links, and user feedback —
// must survive restarts without re-running the expensive discovery steps
// (§6.2 stresses how costly re-computation is).
//
// Two on-disk layouts exist:
//
//   - the single-file gob snapshot (Write/Read, SaveFile/LoadFile) — the
//     import/export format, a full rewrite per save;
//   - the durable directory format (see dir.go): a MANIFEST naming
//     per-source checkpoint segments plus an append-only WAL (wal.go),
//     which is what long-lived warehouses use.
//
// Every on-disk artifact starts with a magic string and a format-version
// byte, so the layouts stay distinguishable from each other — and from
// the headerless pre-v2 snapshots — forever after.
package store

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/discovery"
	"repro/internal/metadata"
	"repro/internal/profile"
	"repro/internal/rel"
)

// FormatVersion identifies the snapshot layout. Version 2 added the
// magic header and persisted per-source structures and column profiles
// (recovery reuses them instead of re-running discovery).
const FormatVersion = 2

// snapshotMagic prefixes every single-file snapshot, followed by one
// format-version byte.
const snapshotMagic = "ALDN"

// Snapshot is the serializable state of an integrated warehouse.
type Snapshot struct {
	Version int
	Sources []SourceSnapshot
	Links   []metadata.Link
	// Removed holds user-feedback link deletions so restored systems do
	// not resurrect them (§6.2).
	Removed []metadata.Link
}

// SourceSnapshot is one source's data plus discovered metadata. The
// full discovered structure and column profiles are persisted so a
// restore can skip re-running profiling and structural discovery —
// §6.2 stresses how costly re-computation is; recovery only re-derives
// what is genuinely absent.
type SourceSnapshot struct {
	Name       string
	Relations  []RelationSnapshot
	Structure  *discovery.Structure
	Profiles   map[string]*profile.ColumnProfile
	TupleCount int
}

// RelationSnapshot flattens a rel.Relation for encoding.
type RelationSnapshot struct {
	Name        string
	Columns     []rel.Column
	PrimaryKey  string
	UniqueCols  []string
	ForeignKeys []rel.ForeignKey
	// Tuples flatten row-major; Kinds parallel the values.
	Rows [][]CellSnapshot
	// Stats carries the planner's statistics block, when one was
	// computed. Absent in pre-stats snapshots (gob tolerates the missing
	// field); restore then leaves Relation.Stats nil and the planner
	// falls back to guesses.
	Stats *StatsSnapshot
}

// StatsSnapshot flattens rel.Stats for encoding.
type StatsSnapshot struct {
	Rows  int
	Built int
	Cols  []ColStatsSnapshot
}

// ColStatsSnapshot flattens one column's rel.ColStats.
type ColStatsSnapshot struct {
	Name     string
	Nulls    int
	Distinct int
	Min      CellSnapshot
	Max      CellSnapshot
	Hist     []CellSnapshot
}

func encodeStats(st *rel.Stats) *StatsSnapshot {
	if st == nil {
		return nil
	}
	out := &StatsSnapshot{Rows: st.Rows, Built: st.Built}
	names := make([]string, 0, len(st.Cols))
	for name := range st.Cols {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic segment bytes
	for _, name := range names {
		cs := st.Cols[name]
		c := ColStatsSnapshot{
			Name:     name,
			Nulls:    cs.Nulls,
			Distinct: cs.Distinct,
			Min:      encodeCell(cs.Min),
			Max:      encodeCell(cs.Max),
		}
		for _, v := range cs.Hist {
			c.Hist = append(c.Hist, encodeCell(v))
		}
		out.Cols = append(out.Cols, c)
	}
	return out
}

func decodeStats(ss *StatsSnapshot) *rel.Stats {
	if ss == nil {
		return nil
	}
	st := &rel.Stats{Rows: ss.Rows, Built: ss.Built, Cols: make(map[string]*rel.ColStats, len(ss.Cols))}
	for _, c := range ss.Cols {
		cs := &rel.ColStats{
			Nulls:    c.Nulls,
			Distinct: c.Distinct,
			Min:      decodeCell(c.Min),
			Max:      decodeCell(c.Max),
		}
		for _, v := range c.Hist {
			cs.Hist = append(cs.Hist, decodeCell(v))
		}
		st.Cols[c.Name] = cs
	}
	return st
}

// CellSnapshot is one encoded value.
type CellSnapshot struct {
	Kind rel.Kind
	I    int64
	F    float64
	S    string
	B    bool
}

func encodeCell(v rel.Value) CellSnapshot {
	c := CellSnapshot{Kind: v.Kind()}
	switch v.Kind() {
	case rel.KindInt:
		c.I, _ = v.AsInt()
	case rel.KindFloat:
		c.F, _ = v.AsFloat()
	case rel.KindString:
		c.S = v.AsString()
	case rel.KindBool:
		c.B, _ = v.AsBool()
	}
	return c
}

func decodeCell(c CellSnapshot) rel.Value {
	switch c.Kind {
	case rel.KindInt:
		return rel.Int(c.I)
	case rel.KindFloat:
		return rel.Float(c.F)
	case rel.KindString:
		return rel.Str(c.S)
	case rel.KindBool:
		return rel.Bool(c.B)
	}
	return rel.Null()
}

// SnapshotRelation converts a relation into its snapshot form.
func SnapshotRelation(r *rel.Relation) RelationSnapshot {
	rs := RelationSnapshot{
		Name:        r.Name,
		Columns:     append([]rel.Column{}, r.Schema.Columns...),
		PrimaryKey:  r.PrimaryKey,
		ForeignKeys: append([]rel.ForeignKey{}, r.ForeignKeys...),
	}
	for c, u := range r.UniqueCols {
		if u {
			rs.UniqueCols = append(rs.UniqueCols, c)
		}
	}
	rs.Rows = make([][]CellSnapshot, len(r.Tuples))
	for i, t := range r.Tuples {
		row := make([]CellSnapshot, len(t))
		for j, v := range t {
			row[j] = encodeCell(v)
		}
		rs.Rows[i] = row
	}
	rs.Stats = encodeStats(r.Stats)
	return rs
}

// RestoreRelation converts a snapshot back into a relation. Hash
// indexes are never part of the encoding; the declared-key indexes are
// rebuilt here from the restored tuples (discovered-column indexes are
// rebuilt by the warehouse loader, which knows the structure).
func RestoreRelation(rs RelationSnapshot) *rel.Relation {
	r := rel.NewRelation(rs.Name, rel.NewSchema(rs.Columns...))
	r.PrimaryKey = rs.PrimaryKey
	for _, c := range rs.UniqueCols {
		r.UniqueCols[c] = true
	}
	r.ForeignKeys = append(r.ForeignKeys, rs.ForeignKeys...)
	for _, row := range rs.Rows {
		t := make(rel.Tuple, len(row))
		for j, c := range row {
			t[j] = decodeCell(c)
		}
		r.Append(t)
	}
	r.EnsureIndexes()
	// Attach stats after the Append loop so incremental maintenance does
	// not double-count the restored rows.
	r.Stats = decodeStats(rs.Stats)
	return r
}

// SnapshotDatabase converts a database.
func SnapshotDatabase(db *rel.Database) []RelationSnapshot {
	var out []RelationSnapshot
	for _, r := range db.Relations() {
		out = append(out, SnapshotRelation(r))
	}
	return out
}

// RestoreDatabase rebuilds a database.
func RestoreDatabase(name string, rels []RelationSnapshot) *rel.Database {
	db := rel.NewDatabase(name)
	for _, rs := range rels {
		db.Put(RestoreRelation(rs))
	}
	return db
}

// Build assembles a snapshot from warehouse pieces. Callers pass the
// per-source databases plus the metadata repository.
func Build(sources map[string]*rel.Database, metas map[string]*metadata.SourceMeta,
	links, removed []metadata.Link) *Snapshot {

	snap := &Snapshot{Version: FormatVersion, Links: links, Removed: removed}
	// Deterministic source order: by registration sequence.
	ordered := make([]*metadata.SourceMeta, 0, len(metas))
	for _, m := range metas {
		ordered = append(ordered, m)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Seq < ordered[j].Seq })
	for _, m := range ordered {
		db := sources[keyOf(m.Name)]
		if db == nil {
			continue
		}
		snap.Sources = append(snap.Sources, SourceSnapshot{
			Name:       m.Name,
			Relations:  SnapshotDatabase(db),
			Structure:  m.Structure,
			Profiles:   m.Profiles,
			TupleCount: m.TupleCount,
		})
	}
	return snap
}

func keyOf(name string) string { return strings.ToLower(name) }

// Write encodes a snapshot: the magic string, one format-version byte,
// then the gob stream.
func Write(w io.Writer, snap *Snapshot) error {
	if snap.Version == 0 {
		snap.Version = FormatVersion
	}
	if _, err := w.Write(append([]byte(snapshotMagic), byte(FormatVersion))); err != nil {
		return fmt.Errorf("store: writing snapshot header: %w", err)
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	return nil
}

// Read decodes a snapshot, validating the magic header and its version.
// Headerless pre-v2 snapshots and future versions are rejected with a
// clear error rather than a gob decoding failure.
func Read(r io.Reader) (*Snapshot, error) {
	hdr := make([]byte, len(snapshotMagic)+1)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("store: reading snapshot header: %w", err)
	}
	if string(hdr[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("store: not an ALADIN snapshot (bad magic %q; headerless pre-v%d snapshots must be re-exported)",
			hdr[:len(snapshotMagic)], FormatVersion)
	}
	if v := int(hdr[len(snapshotMagic)]); v != FormatVersion {
		return nil, fmt.Errorf("store: unsupported snapshot version %d (want %d)", v, FormatVersion)
	}
	dec := gob.NewDecoder(r)
	var snap Snapshot
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("store: decoding snapshot: %w", err)
	}
	if snap.Version != FormatVersion {
		return nil, fmt.Errorf("store: unsupported snapshot version %d (want %d)", snap.Version, FormatVersion)
	}
	return &snap, nil
}

// SaveFile durably writes a snapshot to a file: temp file, fsync,
// atomic rename, directory fsync — a "saved" snapshot survives power
// loss, not just a process crash.
func SaveFile(path string, snap *Snapshot) error {
	return atomicWriteFile(path, func(w io.Writer) error { return Write(w, snap) })
}

// LoadFile reads a snapshot from a file.
func LoadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// RestoreRepo rebuilds a metadata repository from a snapshot: structures
// are re-discovered from the restored data (cheap relative to link
// discovery), links and feedback are replayed.
type RestoredWarehouse struct {
	Sources map[string]*rel.Database
	Repo    *metadata.Repo
}

// Restore rebuilds the warehouse databases and metadata repository.
// reanalyze is called per source to recompute the full structure from
// restored data (pass discovery.Analyze wrapped with profiling); it may
// be nil, in which case only snapshot metadata is registered.
func Restore(snap *Snapshot,
	reanalyze func(db *rel.Database) (*discovery.Structure, map[string]*profile.ColumnProfile, error),
) (*RestoredWarehouse, error) {

	out := &RestoredWarehouse{
		Sources: make(map[string]*rel.Database),
		Repo:    metadata.NewRepo(),
	}
	for _, ss := range snap.Sources {
		db := RestoreDatabase(ss.Name, ss.Relations)
		out.Sources[keyOf(ss.Name)] = db
		meta := &metadata.SourceMeta{Name: ss.Name, TupleCount: ss.TupleCount}
		if reanalyze != nil {
			st, profs, err := reanalyze(db)
			if err != nil {
				return nil, fmt.Errorf("store: re-analyzing %s: %w", ss.Name, err)
			}
			meta.Structure = st
			meta.Profiles = profs
		} else {
			meta.Structure = ss.Structure
			meta.Profiles = ss.Profiles
		}
		out.Repo.RegisterSource(meta)
	}
	// Replay feedback first so removed links cannot re-enter.
	for _, l := range snap.Removed {
		out.Repo.RemoveLink(l)
	}
	for _, l := range snap.Links {
		out.Repo.AddLink(l)
	}
	return out, nil
}
