package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/metadata"
)

// The write-ahead log makes every acknowledged mutation durable before
// it becomes visible: AddSource commits, DML statements, and link
// feedback are appended (and fsynced) as length-prefixed,
// CRC-checksummed records. On replay the log is truncated at the first
// torn or corrupt record — everything before it was acknowledged,
// everything after it never was.
//
// Frame layout, all little-endian:
//
//	[4 bytes] payload length n
//	[4 bytes] CRC-32 (IEEE) of the payload
//	[8 bytes] global record sequence number
//	[n bytes] payload = gob(WALRecord)
//
// The sequence number lives in the frame header — outside the gob
// payload and the CRC — so a frame can be encoded off-lock and stamped
// with its final sequence under the commit lock without re-encoding.
// Sequence numbers are global and dense: the first mutation of a fresh
// directory is 1, and every later mutation is exactly prev+1, across
// WAL rotations and checkpoints. They are what replication streams are
// addressed by, what replicas deduplicate on, and what snapshot IDs
// pin cursors to.
//
// Each WAL file starts with walMagic (which embeds the format version).

// walMagic prefixes every WAL file; the trailing digit is the version.
// Version 2 added the per-frame sequence number for replication.
const walMagic = "ALWAL2\n"

// walFrameHeader is the per-record header size: u32 length + u32 CRC +
// u64 sequence.
const walFrameHeader = 16

// maxWALRecord bounds a single record payload (a defense against
// interpreting corruption as a gigantic length and allocating it).
const maxWALRecord = 1 << 30

// ErrWALGap marks a hole in the write-ahead log — a missing WAL file
// between two present ones, or non-consecutive record sequences. Replay
// refuses to skip over a gap: everything after it may depend on the
// missing mutations. Test with errors.Is.
var ErrWALGap = errors.New("store: gap in the write-ahead log")

// RecordType tags one WAL record.
type RecordType uint8

const (
	// RecAddSource is a committed source addition: the full source
	// snapshot plus the candidate links its commit stored.
	RecAddSource RecordType = 1
	// RecDML is one INSERT/UPDATE/DELETE statement against a source's
	// relation, replayed by re-executing the SQL.
	RecDML RecordType = 2
	// RecRemoveLink is user feedback deleting a link (§6.2); replay must
	// keep honoring it.
	RecRemoveLink RecordType = 3
	// RecAppend is one committed batch of records appended to an existing
	// source by the streaming ingestion path. It reuses the RecAddSource
	// fields: Source carries the batch tuples only (Name = the source
	// appended to, Relations = the batch's rows, TupleCount = the batch's
	// tuple count, Structure/Profiles nil — the registered metadata
	// governs) and Links carries the batch's candidate links.
	RecAppend RecordType = 4
)

// WALRecord is one logged mutation. Only the fields of the tagged type
// are populated.
type WALRecord struct {
	// Seq is the record's global sequence number. It is carried in the
	// frame header, not the gob payload: EncodeRecord writes it into the
	// header, DecodeFrame populates it from there, and StampSeq rewrites
	// it on an already-encoded frame.
	Seq uint64 `json:"-"`

	Type RecordType

	// RecAddSource
	Source *SourceSnapshot
	// Links are the candidate links of the commit (discovered + ontology
	// + duplicate); replaying them through the repository's dedup and
	// feedback filters reproduces exactly the stored set.
	Links []metadata.Link

	// RecDML
	SourceName string
	SQL        string

	// RecRemoveLink
	Link *metadata.Link
}

// EncodeRecord frames a record for appending: gob payload plus length,
// CRC and sequence header. Encoding off-lock and appending the
// pre-built frame under the commit lock keeps the locked section to one
// write+fsync; the final sequence is stamped into the header at append
// time (StampSeq), which the CRC deliberately does not cover.
func EncodeRecord(rec *WALRecord) ([]byte, error) {
	var body bytes.Buffer
	seq := rec.Seq
	rec.Seq = 0 // the header is authoritative; keep the payload canonical
	err := gob.NewEncoder(&body).Encode(rec)
	rec.Seq = seq
	if err != nil {
		return nil, fmt.Errorf("store: encoding WAL record: %w", err)
	}
	frame := make([]byte, walFrameHeader+body.Len())
	binary.LittleEndian.PutUint32(frame[0:4], uint32(body.Len()))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body.Bytes()))
	binary.LittleEndian.PutUint64(frame[8:16], seq)
	copy(frame[walFrameHeader:], body.Bytes())
	return frame, nil
}

// StampSeq rewrites the sequence number of an already-encoded frame.
// The sequence lives outside the CRC, so stamping is a plain 8-byte
// store — no re-encoding.
func StampSeq(frame []byte, seq uint64) {
	binary.LittleEndian.PutUint64(frame[8:16], seq)
}

// ScanFrame validates one frame's header and CRC without decoding the
// gob payload, returning its sequence number and total length. It is
// the cheap half of DecodeFrame, used when frames are relayed verbatim
// (the replication server streams raw frames straight from disk).
// io.ErrUnexpectedEOF means the frame is torn; other errors mean
// corruption.
func ScanFrame(buf []byte) (seq uint64, n int, err error) {
	if len(buf) < walFrameHeader {
		return 0, 0, io.ErrUnexpectedEOF
	}
	plen := binary.LittleEndian.Uint32(buf[0:4])
	if plen > maxWALRecord {
		return 0, 0, fmt.Errorf("store: WAL record length %d exceeds limit", plen)
	}
	if len(buf) < walFrameHeader+int(plen) {
		return 0, 0, io.ErrUnexpectedEOF
	}
	payload := buf[walFrameHeader : walFrameHeader+int(plen)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[4:8]) {
		return 0, 0, errors.New("store: WAL record CRC mismatch")
	}
	return binary.LittleEndian.Uint64(buf[8:16]), walFrameHeader + int(plen), nil
}

// DecodeFrame decodes one frame from buf, returning the record (with
// Seq populated from the header) and the number of bytes consumed.
// io.ErrUnexpectedEOF means the frame is torn (incomplete trailing
// bytes); other errors mean corruption. It never panics on arbitrary
// input — see FuzzWALDecode.
func DecodeFrame(buf []byte) (*WALRecord, int, error) {
	seq, n, err := ScanFrame(buf)
	if err != nil {
		return nil, 0, err
	}
	var rec WALRecord
	if err := gob.NewDecoder(bytes.NewReader(buf[walFrameHeader:n])).Decode(&rec); err != nil {
		return nil, 0, fmt.Errorf("store: decoding WAL record: %w", err)
	}
	rec.Seq = seq
	return &rec, n, nil
}

// WAL is one append-only log file. Not safe for concurrent use; callers
// serialize appends (package aladin appends under its write lock).
type WAL struct {
	f       *os.File
	path    string
	records int
	bytes   int64
	lastSeq uint64

	// failpoint, when non-nil, is consulted by Append at stage
	// "wal-append": a non-nil error makes Append write only the first
	// half of the frame and return the error — simulating a crash
	// mid-append for the recovery test suite.
	failpoint func(stage string) error
}

// CreateWAL creates a new, empty WAL file (failing if one exists) and
// durably records its existence in the directory.
func CreateWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return &WAL{f: f, path: path}, nil
}

// OpenWAL opens an existing WAL for appending, first truncating it to
// its last intact record (discarding any torn tail a crash left).
// It returns the records found intact, already decoded in order.
func OpenWAL(path string) (*WAL, []*WALRecord, error) {
	recs, valid, err := ScanWAL(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{f: f, path: path, records: len(recs), bytes: valid - int64(len(walMagic))}
	if len(recs) > 0 {
		w.lastSeq = recs[len(recs)-1].Seq
	}
	return w, recs, nil
}

// ScanWAL reads a WAL file and returns its intact records plus the byte
// offset of the end of the last intact record — the truncation point.
// A file whose header is torn (shorter than the magic, or a strict
// prefix of it) counts as empty; a header that is no prefix of the
// magic is a format error.
func ScanWAL(path string) ([]*WALRecord, int64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(buf) < len(walMagic) {
		if string(buf) == walMagic[:len(buf)] {
			return nil, int64(len(walMagic)), nil // torn header: empty log
		}
		return nil, 0, fmt.Errorf("store: %s is not a WAL file", path)
	}
	if string(buf[:len(walMagic)]) != walMagic {
		return nil, 0, fmt.Errorf("store: %s is not a WAL file (or an unsupported WAL version)", path)
	}
	var recs []*WALRecord
	off := int64(len(walMagic))
	rest := buf[off:]
	for len(rest) > 0 {
		rec, n, err := DecodeFrame(rest)
		if err != nil {
			// Torn or corrupt: everything from here on was never
			// acknowledged (appends are fsynced in order), so replay
			// truncates at the last intact record.
			break
		}
		recs = append(recs, rec)
		off += int64(n)
		rest = rest[n:]
	}
	return recs, off, nil
}

// Append durably writes one pre-encoded frame (write + fsync), stamping
// seq into its header first. The record is acknowledged only when
// Append returns nil.
func (w *WAL) Append(frame []byte, seq uint64) error {
	if len(frame) < walFrameHeader {
		return errors.New("store: WAL frame shorter than its header")
	}
	StampSeq(frame, seq)
	if w.failpoint != nil {
		if err := w.failpoint("wal-append"); err != nil {
			// Simulated crash mid-append: half the frame reaches the
			// file, no ack. Recovery must truncate this torn record.
			w.f.Write(frame[:len(frame)/2])
			w.f.Sync()
			return err
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("store: appending WAL record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync WAL: %w", err)
	}
	w.records++
	w.bytes += int64(len(frame))
	w.lastSeq = seq
	return nil
}

// AppendRecord encodes and durably appends one record with its Seq.
func (w *WAL) AppendRecord(rec *WALRecord) error {
	frame, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	return w.Append(frame, rec.Seq)
}

// Records returns the number of records in the log (replayed + appended).
func (w *WAL) Records() int { return w.records }

// Bytes returns the record bytes in the log (excluding the header).
func (w *WAL) Bytes() int64 { return w.bytes }

// LastSeq returns the sequence of the last record appended or replayed
// (0 for an empty log).
func (w *WAL) LastSeq() uint64 { return w.lastSeq }

// Close flushes and closes the log file.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
