package store_test

import (
	"bytes"
	"context"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/rel"
	"repro/internal/sqlx"
	"repro/internal/store"
)

// TestRestoreRebuildsRelationIndexes: hash indexes are not encoded into
// a snapshot; RestoreRelation rebuilds the declared-key ones from the
// restored tuples.
func TestRestoreRebuildsRelationIndexes(t *testing.T) {
	r := rel.NewRelation("t", rel.NewSchema(
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "v", Kind: rel.KindString},
	))
	r.PrimaryKey = "id"
	r.AppendStrings("1", "a")
	r.AppendStrings("2", "b")
	r.EnsureIndexes()

	restored := store.RestoreRelation(store.SnapshotRelation(r))
	ix := restored.HashIndex("id")
	if ix == nil {
		t.Fatal("restored relation has no primary-key index")
	}
	if positions := ix.Lookup(rel.Int(2)); len(positions) != 1 || positions[0] != 1 {
		t.Fatalf("restored index Lookup(2) = %v", positions)
	}
}

// TestRestoredWarehouseAnswersIndexedPointQuery is the round-trip
// acceptance probe: snapshot an integrated system, restore it through
// core.Load, and assert a point query on the restored warehouse probes
// an index — Scanned() == 1, not the relation cardinality.
func TestRestoredWarehouseAnswersIndexedPointQuery(t *testing.T) {
	corpus := datagen.Generate(datagen.Config{Seed: 5, Proteins: 24})
	sys := core.New(core.Options{DisableSearchIndex: true})
	for _, name := range []string{"swissprot", "pdb"} {
		if _, err := sys.AddSource(corpus.Source(name)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := store.Write(&buf, sys.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap, err := store.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.Load(core.Options{DisableSearchIndex: true}, snap)
	if err != nil {
		t.Fatal(err)
	}

	db := restored.WarehouseSnapshot()
	plan, err := sqlx.Prepare(db, `SELECT entry_name FROM swissprot_protein WHERE accession = 'P10003'`)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := plan.Open(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for {
		_, err := cur.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows++
	}
	if rows != 1 {
		t.Fatalf("point query returned %d rows, want 1", rows)
	}
	if cur.Scanned() != 1 {
		t.Errorf("restored warehouse scanned %d tuples for an indexed point query, want 1", cur.Scanned())
	}
}
