package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// This file holds the durable file-IO primitives shared by the snapshot
// writer (SaveFile), the checkpoint segment/manifest writers, and the
// WAL. "Durable" means the usual three-step dance: fsync the file
// contents, atomically rename into place, then fsync the parent
// directory so the rename itself survives power loss — a bare
// temp-file + rename is atomic against concurrent readers but NOT
// against a crash, because neither the data blocks nor the directory
// entry are guaranteed to have reached the disk.

// atomicWriteFile durably writes a file: the payload is produced by
// write into a temp file in the same directory, fsynced, renamed over
// path, and the directory entry fsynced.
func atomicWriteFile(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so renames and file creations within it
// are durable. Some filesystems return EINVAL for fsync on directories;
// that is reported as-is — the durability layer targets filesystems
// with POSIX crash semantics.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: fsync dir %s: %w", dir, err)
	}
	return nil
}
