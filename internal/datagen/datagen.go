// Package datagen generates the synthetic evaluation corpus: a family of
// life-science-shaped data sources with a known gold standard, standing in
// for the real Swiss-Prot / PDB / PIR / GO / OMIM instances the paper's §5
// case study uses (see DESIGN.md, substitutions). The generators
// reproduce the structural properties the ALADIN heuristics rely on —
// accession formats, one primary relation per source, surrogate-keyed
// dependent tables, cross-reference fields (plain and composite-encoded),
// sequence fields, free-text annotation, controlled-vocabulary terms, and
// source overlap with field-level conflicts — with parameterized noise.
//
// The gold standard enables the precision/recall estimation the paper
// proposes in §3/§5 ("The COLUMBA database shall serve as a 'learning'
// test set for estimating the performance of ALADIN's various analysis
// algorithms").
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/rel"
)

// GoldLink is one true object-level relationship.
type GoldLink struct {
	FromSource, FromAccession string
	ToSource, ToAccession     string
}

// Gold is the generated ground truth.
type Gold struct {
	// Primary maps source name -> true primary relation.
	Primary map[string]string
	// Accession maps source name -> true accession column.
	Accession map[string]string
	// ForeignKeys lists the true intra-source FKs per source.
	ForeignKeys map[string][]rel.ForeignKey
	// XRefs are the true explicit cross-reference object links.
	XRefs []GoldLink
	// Homologs are the true sequence-similarity links.
	Homologs []GoldLink
	// Duplicates are the true same-real-world-object pairs.
	Duplicates []GoldLink
	// EntityLinks are true text-mention links (disease text naming a
	// protein).
	EntityLinks []GoldLink
	// TermXRefs are true links from objects to ontology terms.
	TermXRefs []GoldLink
}

// Noise parameterizes gold-standard corruption (DESIGN.md §5).
type Noise struct {
	// XRefCorruption replaces this fraction of cross-reference values
	// with dangling garbage (false targets).
	XRefCorruption float64
	// XRefMissing drops this fraction of cross-references entirely (the
	// §5 "annotation backlog" appearing as missing links).
	XRefMissing float64
	// SeqMutation is the per-base mutation rate between homologous
	// sequences.
	SeqMutation float64
	// DuplicateFieldNoise perturbs this fraction of duplicate field
	// values (conflicting values across sources, §4.5).
	DuplicateFieldNoise float64
	// AccessionViolation makes this fraction of accessions violate the
	// format heuristics (too short / digits only).
	AccessionViolation float64
	// EqualDictionaries, when true, generates two dictionary tables with
	// identical value counts — the §4.2 confusion case.
	EqualDictionaries bool
}

// Config controls corpus generation.
type Config struct {
	Seed int64
	// Proteins is the number of base real-world entities (default 50).
	Proteins int
	// CompositeXRefFrac encodes this fraction of xrefs as "DB:ACC"
	// composites (default 0.5).
	CompositeXRefFrac float64
	// SeqLen is the base sequence length (default 200).
	SeqLen int
	// PIROverlap is the fraction of proteins also present in the PIR-like
	// source (default 0.6).
	PIROverlap float64
	Noise      Noise
}

func (c *Config) fill() {
	if c.Proteins <= 0 {
		c.Proteins = 50
	}
	if c.CompositeXRefFrac == 0 {
		c.CompositeXRefFrac = 0.5
	}
	if c.SeqLen <= 0 {
		c.SeqLen = 200
	}
	if c.PIROverlap == 0 {
		c.PIROverlap = 0.6
	}
}

// Corpus is the generated multi-source warehouse plus its gold standard.
type Corpus struct {
	Sources []*rel.Database
	Gold    Gold
}

// Source returns a generated source by name, or nil.
func (c *Corpus) Source(name string) *rel.Database {
	for _, s := range c.Sources {
		if strings.EqualFold(s.Name, name) {
			return s
		}
	}
	return nil
}

// world holds the base entities all sources are projected from.
type world struct {
	rng *rand.Rand
	cfg Config

	names     []string // distinctive protein names
	organisms []string
	functions []string // function phrases (distinct topic words per protein)
	sequences []string
	pdbCodes  []string
	goTerms   []string // GO accessions assigned per protein
	mimAssoc  []int    // protein index associated with each disease
}

var nameRoots = []string{
	"hemoglobin", "myoglobin", "insulin", "keratin", "cytochrome",
	"lysozyme", "trypsin", "catalase", "albumin", "ferritin",
	"collagen", "elastin", "actin", "myosin", "tubulin",
	"kinesin", "dynein", "calmodulin", "ubiquitin", "thrombin",
}

var nameQualifiers = []string{
	"alpha", "beta", "gamma", "delta", "epsilon", "kappa", "zeta",
	"precursor", "homolog", "isoform", "variant", "subunit",
}

var organisms = []string{
	"Homo sapiens", "Mus musculus", "Rattus norvegicus", "Bos taurus",
	"Gallus gallus", "Danio rerio", "Drosophila melanogaster",
	"Saccharomyces cerevisiae",
}

var functionVerbs = []string{
	"transports", "binds", "catalyzes", "regulates", "stabilizes",
	"degrades", "phosphorylates", "inhibits", "activates", "cleaves",
}

var functionObjects = []string{
	"oxygen molecules", "glucose metabolism", "membrane lipids",
	"ribosomal assembly", "dna replication forks", "calcium signaling",
	"peptide bonds", "iron storage granules", "cytoskeletal filaments",
	"hormone receptors", "antigen complexes", "electron carriers",
	"chromatin remodeling", "vesicle trafficking", "proton gradients",
	"messenger transcripts", "collagen fibrils", "synaptic vesicles",
	"nitrogen fixation", "sulfate reduction",
}

func newWorld(cfg Config) *world {
	w := &world{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
	n := cfg.Proteins
	seen := make(map[string]bool)
	for i := 0; i < n; i++ {
		// Index tokens stay >= 2 characters (the tokenizer drops single
		// characters), keeping every name lexically distinctive.
		name := fmt.Sprintf("%s %s %d", nameRoots[i%len(nameRoots)],
			nameQualifiers[(i/len(nameRoots))%len(nameQualifiers)], i+10)
		seen[name] = true
		w.names = append(w.names, name)
		w.organisms = append(w.organisms, organisms[w.rng.Intn(len(organisms))])
		verb := functionVerbs[i%len(functionVerbs)]
		obj1 := functionObjects[i%len(functionObjects)]
		// obj2 decorrelates from obj1 across name-root cycles so that
		// same-root proteins do not share their whole function phrase.
		obj2 := functionObjects[(i*7+i/len(nameRoots)+3)%len(functionObjects)]
		w.functions = append(w.functions,
			fmt.Sprintf("%s %s and interacts with %s", verb, obj1, obj2))
		w.sequences = append(w.sequences, randomDNA(w.rng, cfg.SeqLen))
		w.pdbCodes = append(w.pdbCodes, pdbCode(i))
		w.goTerms = append(w.goTerms, fmt.Sprintf("GO:%07d", 1000+(i%10)))
	}
	// One disease per third protein.
	for i := 0; i < n; i += 3 {
		w.mimAssoc = append(w.mimAssoc, i)
	}
	return w
}

func randomDNA(rng *rand.Rand, n int) string {
	bases := "ACGT"
	b := make([]byte, n)
	for i := range b {
		b[i] = bases[rng.Intn(4)]
	}
	return string(b)
}

// mutate applies point mutations at the given rate.
func mutate(rng *rand.Rand, s string, rate float64) string {
	bases := "ACGT"
	b := []byte(s)
	for i := range b {
		if rng.Float64() < rate {
			b[i] = bases[rng.Intn(4)]
		}
	}
	return string(b)
}

// pdbCode builds PDB-style 4-char codes: digit + three alphanumerics.
func pdbCode(i int) string {
	letters := "ABCDEFGHJKLMNPQRSTUVWXYZ"
	return fmt.Sprintf("%d%c%c%d", 1+i%9, letters[i%len(letters)],
		letters[(i/3)%len(letters)], i%10)
}

func uniprotAcc(i int) string { return fmt.Sprintf("P%05d", 10000+i) }
func pirAcc(i int) string     { return fmt.Sprintf("A%05d", 40000+i) }
func mimAcc(i int) string     { return fmt.Sprintf("MIM%05d", 100000+i) }
func geneAcc(i int) string    { return fmt.Sprintf("ENSG%08d", 42000+i) }

// entryName builds Swiss-Prot-style variable-length entry names.
func entryName(w *world, i int) string {
	root := strings.ToUpper(nameRoots[i%len(nameRoots)])
	if len(root) > 4 {
		root = root[:4-(i%2)]
	}
	org := strings.ToUpper(strings.Split(w.organisms[i], " ")[0])
	if len(org) > 5 {
		org = org[:5]
	}
	return fmt.Sprintf("%s%d_%s", root, i%100, org)
}

// Generate builds the full corpus: swissprot, pdb, pir, go, omim, genbank.
func Generate(cfg Config) *Corpus {
	cfg.fill()
	w := newWorld(cfg)
	c := &Corpus{
		Gold: Gold{
			Primary:     make(map[string]string),
			Accession:   make(map[string]string),
			ForeignKeys: make(map[string][]rel.ForeignKey),
		},
	}
	c.Sources = append(c.Sources,
		genSwissProt(w, c),
		genPDB(w, c),
		genPIR(w, c),
		genGO(w, c),
		genOMIM(w, c),
		genGenBank(w, c),
	)
	return c
}

// corruptOrDrop applies xref noise: returns ("", false) when the xref is
// dropped, (garbage, true) when corrupted, (v, true) otherwise.
func corruptOrDrop(w *world, v string) (string, bool) {
	if w.rng.Float64() < w.cfg.Noise.XRefMissing {
		return "", false
	}
	if w.rng.Float64() < w.cfg.Noise.XRefCorruption {
		return fmt.Sprintf("ZZZ%06d", w.rng.Intn(1000000)), true
	}
	return v, true
}

// maybeComposite encodes an xref value as "DB:ACC" with the configured
// probability.
func maybeComposite(w *world, db, v string) string {
	if w.rng.Float64() < w.cfg.CompositeXRefFrac {
		return db + ":" + v
	}
	return v
}

// maybeViolateAccession corrupts the accession format per the noise knob.
func maybeViolateAccession(w *world, acc string) string {
	if w.rng.Float64() < w.cfg.Noise.AccessionViolation {
		if w.rng.Intn(2) == 0 {
			return fmt.Sprintf("%d", w.rng.Intn(100000)) // digits only
		}
		return acc[:2] // too short
	}
	return acc
}

func genSwissProt(w *world, c *Corpus) *rel.Database {
	db := rel.NewDatabase("swissprot")
	n := w.cfg.Proteins
	protein := db.Create("protein", rel.TextSchema(
		"protein_id", "accession", "entry_name", "description", "organism"))
	seqrel := db.Create("sequence", rel.TextSchema("seq_id", "protein_id", "seq"))
	dbref := db.Create("dbref", rel.TextSchema("dbref_id", "protein_id", "ref_value"))
	kw := db.Create("keyword", rel.TextSchema("kw_id", "protein_id", "keyword"))

	c.Gold.Primary["swissprot"] = "protein"
	c.Gold.Accession["swissprot"] = "accession"
	c.Gold.ForeignKeys["swissprot"] = []rel.ForeignKey{
		{FromRelation: "sequence", FromColumn: "protein_id", ToRelation: "protein", ToColumn: "protein_id"},
		{FromRelation: "dbref", FromColumn: "protein_id", ToRelation: "protein", ToColumn: "protein_id"},
		{FromRelation: "keyword", FromColumn: "protein_id", ToRelation: "protein", ToColumn: "protein_id"},
	}

	drSeq, kwSeq := 0, 0
	for i := 0; i < n; i++ {
		acc := maybeViolateAccession(w, uniprotAcc(i))
		pid := fmt.Sprintf("%d", i+1)
		desc := fmt.Sprintf("%s that %s", w.names[i], w.functions[i])
		protein.AppendRaw(pid, acc, entryName(w, i), desc, w.organisms[i])
		// Surrogate ranges are disjoint across tables, as real per-table
		// sequences eventually become; nested ranges are exercised by the
		// EqualDictionaries knob instead.
		seqrel.AppendRaw(fmt.Sprintf("%d", 1000+i), pid, w.sequences[i])
		// XRef to PDB.
		if v, ok := corruptOrDrop(w, w.pdbCodes[i]); ok {
			drSeq++
			corrupted := v != w.pdbCodes[i]
			dbref.AppendRaw(fmt.Sprintf("%d", drSeq), pid, maybeComposite(w, "PDB", v))
			if !corrupted {
				c.Gold.XRefs = append(c.Gold.XRefs, GoldLink{"swissprot", uniprotAcc(i), "pdb", w.pdbCodes[i]})
			}
		}
		// XRef to GO.
		if v, ok := corruptOrDrop(w, w.goTerms[i]); ok {
			drSeq++
			corrupted := v != w.goTerms[i]
			dbref.AppendRaw(fmt.Sprintf("%d", drSeq), pid, v)
			if !corrupted {
				c.Gold.TermXRefs = append(c.Gold.TermXRefs, GoldLink{"swissprot", uniprotAcc(i), "go", w.goTerms[i]})
			}
		}
		for k := 0; k < 2; k++ {
			kwSeq++
			kw.AppendRaw(fmt.Sprintf("%d", kwSeq), pid,
				functionObjects[(i+k*11)%len(functionObjects)])
		}
	}
	if w.cfg.Noise.EqualDictionaries {
		// Two dictionary tables with identical integer key sets (§4.2
		// confusion case) referenced from a shared column.
		d1 := db.Create("dict_method", rel.TextSchema("id", "label"))
		d2 := db.Create("dict_status", rel.TextSchema("id", "label"))
		for i := 1; i <= 5; i++ {
			d1.AppendRaw(fmt.Sprintf("%d", i), fmt.Sprintf("method-%d", i))
			d2.AppendRaw(fmt.Sprintf("%d", i), fmt.Sprintf("status-%d", i))
		}
		f := db.Create("evidence", rel.TextSchema("ev_id", "protein_id", "method_ref"))
		for i := 0; i < n; i++ {
			f.AppendRaw(fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", (i%5)+1))
		}
		c.Gold.ForeignKeys["swissprot"] = append(c.Gold.ForeignKeys["swissprot"],
			rel.ForeignKey{FromRelation: "evidence", FromColumn: "protein_id", ToRelation: "protein", ToColumn: "protein_id"},
			rel.ForeignKey{FromRelation: "evidence", FromColumn: "method_ref", ToRelation: "dict_method", ToColumn: "id"},
		)
	}
	return db
}

func genPDB(w *world, c *Corpus) *rel.Database {
	db := rel.NewDatabase("pdb")
	n := w.cfg.Proteins
	structure := db.Create("structure", rel.TextSchema(
		"structure_id", "pdb_code", "title", "method"))
	chain := db.Create("chain", rel.TextSchema("chain_id", "structure_id", "chain_seq"))

	c.Gold.Primary["pdb"] = "structure"
	c.Gold.Accession["pdb"] = "pdb_code"
	c.Gold.ForeignKeys["pdb"] = []rel.ForeignKey{
		{FromRelation: "chain", FromColumn: "structure_id", ToRelation: "structure", ToColumn: "structure_id"},
	}
	methods := []string{"X-RAY DIFFRACTION", "SOLUTION NMR", "ELECTRON MICROSCOPY"}
	for i := 0; i < n; i++ {
		sid := fmt.Sprintf("%d", i+1)
		// Titles name the protein but, as in real PDB, do not repeat the
		// functional annotation prose.
		title := fmt.Sprintf("crystal structure of %s at %d.%d angstrom resolution",
			w.names[i], 1+i%3, i%10)
		structure.AppendRaw(sid, w.pdbCodes[i], title, methods[i%len(methods)])
		mutated := mutate(w.rng, w.sequences[i], w.cfg.Noise.SeqMutation)
		chain.AppendRaw(sid, sid, mutated)
		c.Gold.Homologs = append(c.Gold.Homologs, GoldLink{"swissprot", uniprotAcc(i), "pdb", w.pdbCodes[i]})
	}
	return db
}

// noisyCopy perturbs a field value with the duplicate-noise rate: it
// swaps in a qualifier word, emulating cross-source wording drift.
func noisyCopy(w *world, v string) string {
	if w.rng.Float64() >= w.cfg.Noise.DuplicateFieldNoise {
		return v
	}
	words := strings.Fields(v)
	if len(words) == 0 {
		return v
	}
	i := w.rng.Intn(len(words))
	words[i] = nameQualifiers[w.rng.Intn(len(nameQualifiers))]
	return strings.Join(words, " ")
}

func genPIR(w *world, c *Corpus) *rel.Database {
	db := rel.NewDatabase("pir")
	n := int(float64(w.cfg.Proteins) * w.cfg.PIROverlap)
	entry := db.Create("pirentry", rel.TextSchema(
		"pirentry_id", "pir_acc", "protein_name", "species", "function_note"))
	c.Gold.Primary["pir"] = "pirentry"
	c.Gold.Accession["pir"] = "pir_acc"
	for i := 0; i < n; i++ {
		// PIR definition lines repeat the protein name, as real entries do.
		entry.AppendRaw(fmt.Sprintf("%d", i+1), pirAcc(i),
			noisyCopy(w, w.names[i]), w.organisms[i],
			noisyCopy(w, fmt.Sprintf("protein %s %s", w.names[i], w.functions[i])))
		c.Gold.Duplicates = append(c.Gold.Duplicates, GoldLink{"swissprot", uniprotAcc(i), "pir", pirAcc(i)})
	}
	// PIR-only entries (no duplicates). Names carry a distinguishing
	// multi-character token (orphan ids), as real uncharacterized-protein
	// names do.
	for i := 0; i < w.cfg.Proteins/5; i++ {
		entry.AppendRaw(fmt.Sprintf("%d", n+i+1), pirAcc(9000+i),
			fmt.Sprintf("uncharacterized orphan family member y%d", i+10),
			organisms[i%len(organisms)],
			fmt.Sprintf("putative reader of %s", functionObjects[(i*3)%len(functionObjects)]))
	}
	return db
}

func genGO(w *world, c *Corpus) *rel.Database {
	db := rel.NewDatabase("go")
	term := db.Create("term", rel.TextSchema("term_id", "go_acc", "term_name", "definition"))
	isa := db.Create("term_isa", rel.TextSchema("isa_id", "term_id", "parent_term_id"))
	c.Gold.Primary["go"] = "term"
	c.Gold.Accession["go"] = "go_acc"
	c.Gold.ForeignKeys["go"] = []rel.ForeignKey{
		{FromRelation: "term_isa", FromColumn: "term_id", ToRelation: "term", ToColumn: "term_id"},
	}
	c.Gold.ForeignKeys["go"] = append(c.Gold.ForeignKeys["go"],
		rel.ForeignKey{FromRelation: "term_isa", FromColumn: "parent_term_id", ToRelation: "term", ToColumn: "term_id"})
	for i := 0; i < 10; i++ {
		term.AppendRaw(fmt.Sprintf("%d", i+1), fmt.Sprintf("GO:%07d", 1000+i),
			fmt.Sprintf("%s handling process", functionObjects[i%len(functionObjects)]),
			fmt.Sprintf("the controlled process of %s within the cell", functionObjects[i%len(functionObjects)]))
		if i > 0 {
			isa.AppendRaw(fmt.Sprintf("%d", 700+i), fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", (i/2)+1))
		}
	}
	return db
}

func genOMIM(w *world, c *Corpus) *rel.Database {
	db := rel.NewDatabase("omim")
	disease := db.Create("disease", rel.TextSchema(
		"disease_id", "mim_number", "disease_name", "clinical_text"))
	xref := db.Create("gene_xref", rel.TextSchema("xref_id", "disease_id", "uniprot_ref"))
	c.Gold.Primary["omim"] = "disease"
	c.Gold.Accession["omim"] = "mim_number"
	c.Gold.ForeignKeys["omim"] = []rel.ForeignKey{
		{FromRelation: "gene_xref", FromColumn: "disease_id", ToRelation: "disease", ToColumn: "disease_id"},
	}
	xSeq := 0
	for d, pi := range w.mimAssoc {
		did := fmt.Sprintf("%d", d+1)
		mim := mimAcc(d)
		// Clinical text mentions the protein's entry name -> entity link.
		text := fmt.Sprintf("patients with defects in %s show impaired %s and related symptoms",
			entryName(w, pi), functionObjects[pi%len(functionObjects)])
		disease.AppendRaw(did, mim, fmt.Sprintf("%s deficiency syndrome %d", nameRoots[pi%len(nameRoots)], d), text)
		c.Gold.EntityLinks = append(c.Gold.EntityLinks, GoldLink{"omim", mim, "swissprot", uniprotAcc(pi)})
		// Explicit xref to swissprot.
		if v, ok := corruptOrDrop(w, uniprotAcc(pi)); ok {
			xSeq++
			corrupted := v != uniprotAcc(pi)
			xref.AppendRaw(fmt.Sprintf("%d", 500+xSeq), did, maybeComposite(w, "Uniprot", v))
			if !corrupted {
				c.Gold.XRefs = append(c.Gold.XRefs, GoldLink{"omim", mim, "swissprot", uniprotAcc(pi)})
			}
		}
	}
	return db
}

func genGenBank(w *world, c *Corpus) *rel.Database {
	db := rel.NewDatabase("genbank")
	n := w.cfg.Proteins
	gene := db.Create("gene", rel.TextSchema("gene_id", "gene_acc", "gene_desc"))
	genomic := db.Create("genomic_seq", rel.TextSchema("gseq_id", "gene_id", "nucleotide_seq"))
	goref := db.Create("go_annotation", rel.TextSchema("ann_id", "gene_id", "go_term_ref"))
	c.Gold.Primary["genbank"] = "gene"
	c.Gold.Accession["genbank"] = "gene_acc"
	c.Gold.ForeignKeys["genbank"] = []rel.ForeignKey{
		{FromRelation: "genomic_seq", FromColumn: "gene_id", ToRelation: "gene", ToColumn: "gene_id"},
		{FromRelation: "go_annotation", FromColumn: "gene_id", ToRelation: "gene", ToColumn: "gene_id"},
	}
	aSeq := 0
	for i := 0; i < n; i++ {
		gid := fmt.Sprintf("%d", i+1)
		gene.AppendRaw(gid, geneAcc(i),
			fmt.Sprintf("gene encoding %s located on chromosome %d", w.names[i], 1+i%22))
		genomic.AppendRaw(fmt.Sprintf("%d", 2000+i), gid, mutate(w.rng, w.sequences[i], w.cfg.Noise.SeqMutation))
		c.Gold.Homologs = append(c.Gold.Homologs, GoldLink{"genbank", geneAcc(i), "swissprot", uniprotAcc(i)})
		// Homology is transitive through the shared base sequence: the
		// genbank gene and the pdb chain of the same protein are homologs
		// too.
		c.Gold.Homologs = append(c.Gold.Homologs, GoldLink{"genbank", geneAcc(i), "pdb", w.pdbCodes[i]})
		if v, ok := corruptOrDrop(w, w.goTerms[i]); ok {
			aSeq++
			corrupted := v != w.goTerms[i]
			goref.AppendRaw(fmt.Sprintf("%d", 900+aSeq), gid, v)
			if !corrupted {
				c.Gold.TermXRefs = append(c.Gold.TermXRefs, GoldLink{"genbank", geneAcc(i), "go", w.goTerms[i]})
			}
		}
	}
	return db
}
