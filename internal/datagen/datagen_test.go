package datagen

import (
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 42, Proteins: 20})
	b := Generate(Config{Seed: 42, Proteins: 20})
	if len(a.Sources) != len(b.Sources) {
		t.Fatal("source count differs")
	}
	for i := range a.Sources {
		ra := a.Sources[i].Relations()
		rb := b.Sources[i].Relations()
		if len(ra) != len(rb) {
			t.Fatalf("source %s relation count differs", a.Sources[i].Name)
		}
		for j := range ra {
			if ra[j].Cardinality() != rb[j].Cardinality() {
				t.Errorf("%s.%s cardinality differs", a.Sources[i].Name, ra[j].Name)
			}
			for ti := range ra[j].Tuples {
				for ci := range ra[j].Tuples[ti] {
					if ra[j].Tuples[ti][ci].AsString() != rb[j].Tuples[ti][ci].AsString() {
						t.Fatalf("%s.%s tuple %d differs", a.Sources[i].Name, ra[j].Name, ti)
					}
				}
			}
		}
	}
}

func TestGenerateSixSources(t *testing.T) {
	c := Generate(Config{Seed: 1, Proteins: 10})
	want := []string{"swissprot", "pdb", "pir", "go", "omim", "genbank"}
	if len(c.Sources) != len(want) {
		t.Fatalf("sources = %d", len(c.Sources))
	}
	for _, name := range want {
		if c.Source(name) == nil {
			t.Errorf("missing source %q", name)
		}
		if c.Gold.Primary[name] == "" || c.Gold.Accession[name] == "" {
			t.Errorf("missing gold primary/accession for %q", name)
		}
	}
	if c.Source("nope") != nil {
		t.Error("unknown source should be nil")
	}
}

func TestGoldStandardShape(t *testing.T) {
	c := Generate(Config{Seed: 1, Proteins: 30})
	// No noise: every protein yields a PDB xref and homolog pair.
	if len(c.Gold.XRefs) < 30 {
		t.Errorf("xrefs = %d", len(c.Gold.XRefs))
	}
	// Homologs: swissprot-pdb, genbank-swissprot, genbank-pdb (transitive).
	if len(c.Gold.Homologs) != 90 {
		t.Errorf("homologs = %d", len(c.Gold.Homologs))
	}
	if len(c.Gold.Duplicates) != 18 { // 30 * 0.6 overlap
		t.Errorf("duplicates = %d", len(c.Gold.Duplicates))
	}
	if len(c.Gold.EntityLinks) != 10 { // one per third protein
		t.Errorf("entity links = %d", len(c.Gold.EntityLinks))
	}
}

func TestNoiseMissingXRefsShrinkGold(t *testing.T) {
	clean := Generate(Config{Seed: 7, Proteins: 40})
	noisy := Generate(Config{Seed: 7, Proteins: 40, Noise: Noise{XRefMissing: 0.5}})
	if len(noisy.Gold.XRefs) >= len(clean.Gold.XRefs) {
		t.Errorf("missing-xref noise should shrink gold xrefs: %d vs %d",
			len(noisy.Gold.XRefs), len(clean.Gold.XRefs))
	}
	// Dropped xrefs must also be absent from the data (count dbref rows).
	cr := clean.Source("swissprot").Relation("dbref").Cardinality()
	nr := noisy.Source("swissprot").Relation("dbref").Cardinality()
	if nr >= cr {
		t.Errorf("noisy dbref rows = %d, clean = %d", nr, cr)
	}
}

func TestNoiseCorruptionKeepsRowsButShrinksGold(t *testing.T) {
	clean := Generate(Config{Seed: 7, Proteins: 40})
	noisy := Generate(Config{Seed: 7, Proteins: 40, Noise: Noise{XRefCorruption: 0.5}})
	if len(noisy.Gold.XRefs) >= len(clean.Gold.XRefs) {
		t.Error("corruption should shrink gold xrefs")
	}
	// Corrupted rows remain in the data as dangling references.
	cr := clean.Source("swissprot").Relation("dbref").Cardinality()
	nr := noisy.Source("swissprot").Relation("dbref").Cardinality()
	if nr != cr {
		t.Errorf("corruption should keep row count: %d vs %d", nr, cr)
	}
}

func TestEqualDictionariesKnob(t *testing.T) {
	c := Generate(Config{Seed: 3, Proteins: 10, Noise: Noise{EqualDictionaries: true}})
	sp := c.Source("swissprot")
	d1, d2 := sp.Relation("dict_method"), sp.Relation("dict_status")
	if d1 == nil || d2 == nil {
		t.Fatal("dictionary tables missing")
	}
	if d1.Cardinality() != d2.Cardinality() {
		t.Errorf("dictionaries must have equal cardinality: %d vs %d",
			d1.Cardinality(), d2.Cardinality())
	}
}

func TestCompositeXRefEncoding(t *testing.T) {
	c := Generate(Config{Seed: 5, Proteins: 40, CompositeXRefFrac: 1.0})
	sp := c.Source("swissprot")
	dbref := sp.Relation("dbref")
	composite := 0
	for _, tu := range dbref.Tuples {
		v := tu[dbref.Schema.Index("ref_value")].AsString()
		if strings.Contains(v, ":") && strings.HasPrefix(v, "PDB:") {
			composite++
		}
	}
	if composite == 0 {
		t.Error("no composite-encoded xrefs at frac=1.0")
	}
}

func TestAccessionViolationKnob(t *testing.T) {
	c := Generate(Config{Seed: 5, Proteins: 50, Noise: Noise{AccessionViolation: 0.5}})
	sp := c.Source("swissprot")
	p := sp.Relation("protein")
	bad := 0
	for _, tu := range p.Tuples {
		acc := tu[p.Schema.Index("accession")].AsString()
		if len(acc) < 4 || !strings.ContainsAny(acc, "ABCDEFGHIJKLMNOPQRSTUVWXYZ") {
			bad++
		}
	}
	if bad < 10 {
		t.Errorf("accession violations = %d; want roughly half of 50", bad)
	}
}

func TestSequencesAreDNA(t *testing.T) {
	c := Generate(Config{Seed: 9, Proteins: 5, SeqLen: 100})
	sp := c.Source("swissprot")
	sr := sp.Relation("sequence")
	for _, tu := range sr.Tuples {
		s := tu[sr.Schema.Index("seq")].AsString()
		if len(s) != 100 {
			t.Errorf("seq len = %d", len(s))
		}
		for _, r := range s {
			if !strings.ContainsRune("ACGT", r) {
				t.Fatalf("non-DNA char %q", r)
			}
		}
	}
}
