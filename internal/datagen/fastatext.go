package datagen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
)

// FastaText writes n deterministic FASTA records to w — the textual
// corpus for streaming-ingestion tests and benchmarks, where the input
// must exist as a flat file (or an unbounded stream) rather than as an
// already-parsed database. Accessions are unique ("SQ000001", ...),
// descriptions carry a few searchable words, and sequences are ~180
// bases wrapped at 60 columns. Same (n, seed) → byte-identical output.
func FastaText(w io.Writer, n int, seed int64) error {
	return FastaTextRange(w, 0, n, seed)
}

// FastaTextRange writes records start..start+n-1 of the same corpus, so
// a live-tail test can append the continuation of a file it wrote
// earlier without repeating accessions.
func FastaTextRange(w io.Writer, start, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed + int64(start)))
	organisms := []string{"human", "mouse", "yeast", "zebrafish", "fruitfly"}
	roles := []string{"kinase", "transporter", "receptor", "polymerase", "chaperone"}
	bw := bufio.NewWriter(w)
	for i := start; i < start+n; i++ {
		fmt.Fprintf(bw, ">SQ%06d synthetic %s %s variant %d\n",
			i+1, organisms[i%len(organisms)], roles[(i/5)%len(roles)], i%97)
		seq := randomDNA(rng, 120+rng.Intn(120))
		for len(seq) > 60 {
			bw.WriteString(seq[:60])
			bw.WriteByte('\n')
			seq = seq[60:]
		}
		bw.WriteString(seq)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
