package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/flatfile"
	"repro/internal/metadata"
	"repro/internal/rel"
	"repro/internal/search"
	"repro/internal/store"
)

// fastaBatch parses records start..start+n-1 of the deterministic FASTA
// corpus into a fresh database named name.
func fastaBatch(t *testing.T, name string, start, n int) *rel.Database {
	t.Helper()
	var sb strings.Builder
	if err := datagen.FastaTextRange(&sb, start, n, 3); err != nil {
		t.Fatal(err)
	}
	db, err := flatfile.Parse("fasta", strings.NewReader(sb.String()), name)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestAppendToSource(t *testing.T) {
	sys := New(defaultOpts())
	if _, err := sys.AddSource(fastaBatch(t, "seqs", 0, 40)); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.AppendToSource(context.Background(), "seqs", fastaBatch(t, "seqs", 40, 25))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 25 || rep.Tuples != 25 || rep.Source != "seqs" {
		t.Fatalf("report = %+v", rep)
	}
	wh := sys.WarehouseSnapshot()
	r := wh.Relation("seqs_fasta")
	if r == nil || len(r.Tuples) != 65 {
		t.Fatalf("warehouse relation has %d tuples, want 65", len(r.Tuples))
	}
	// The source relation grew too, and the registered metadata tracks it.
	if got := sys.Repo.Source("seqs").TupleCount; got != 65 {
		t.Fatalf("registered tuple count = %d, want 65", got)
	}
	// Search postings for the appended batch were merged in.
	if hits := sys.Search("SQ000050", search.Filter{}, 5); len(hits) == 0 {
		t.Error("appended record not searchable")
	}
	// The browse web knows the appended accessions in sorted order.
	v, err := sys.Browse(objectRef(sys, "seqs", "SQ000050"))
	if err != nil {
		t.Fatalf("Browse appended accession: %v", err)
	}
	if v.PrevAccession != "SQ000049" || v.NextAccession != "SQ000051" {
		t.Errorf("browse order around appended record: prev=%s next=%s", v.PrevAccession, v.NextAccession)
	}
}

// objectRef builds the primary-relation ref for an accession.
func objectRef(s *System, source, acc string) metadata.ObjectRef {
	st := s.Repo.Source(source).Structure
	return metadata.ObjectRef{Source: source, Relation: st.Primary, Accession: acc}
}

func TestAppendValidation(t *testing.T) {
	sys := New(defaultOpts())
	if _, err := sys.AddSource(fastaBatch(t, "seqs", 0, 30)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sys.AppendToSource(ctx, "nosuch", fastaBatch(t, "nosuch", 0, 5)); err == nil {
		t.Error("append to unknown source succeeded")
	}
	// A batch relation the source does not have is rejected.
	alien := rel.NewDatabase("seqs")
	alien.Create("extra", rel.TextSchema("a", "b"))
	alien.Relation("extra").AppendRaw("1", "2")
	if _, err := sys.AppendToSource(ctx, "seqs", alien); err == nil {
		t.Error("append adding a new relation succeeded")
	}
	// Mismatched columns are rejected.
	skewed := rel.NewDatabase("seqs")
	skewed.Create("fasta", rel.TextSchema("fasta_id", "accession"))
	skewed.Relation("fasta").AppendRaw("1", "X1")
	if _, err := sys.AppendToSource(ctx, "seqs", skewed); err == nil {
		t.Error("append with mismatched schema succeeded")
	}
}

// TestAppendAgainstOtherSources: batches of an appended source discover
// links against the other integrated sources, and duplicate detection
// sees earlier batches of the same source.
func TestAppendCrossSourceLinks(t *testing.T) {
	sys := New(defaultOpts())
	corpus := datagen.Generate(datagen.Config{Seed: 11, Proteins: 12})
	for _, src := range corpus.Sources[:2] { // swissprot + pdb
		if _, err := sys.AddSource(src); err != nil {
			t.Fatal(err)
		}
	}
	before := len(sys.Repo.AllLinks())

	// Re-integrate swissprot's own tuples as an append batch to a COPY
	// source: links to pdb must be discovered for the appended rows.
	sp := corpus.Sources[0]
	first := sp.ShallowClone()
	first.Name = "spcopy"
	// Seed with the first half, append the second half.
	half := splitDatabase(t, sp, "spcopy")
	if _, err := sys.AddSource(half[0]); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.AppendToSource(context.Background(), "spcopy", half[1])
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range rep.LinksAdded {
		total += n
	}
	if total == 0 {
		t.Errorf("appended batch discovered no links (repo had %d)", before)
	}
}

// splitDatabase splits every relation's tuples in half into two
// databases with the same schemas.
func splitDatabase(t *testing.T, src *rel.Database, name string) [2]*rel.Database {
	t.Helper()
	var out [2]*rel.Database
	for i := range out {
		out[i] = rel.NewDatabase(name)
	}
	for _, r := range src.Relations() {
		mid := len(r.Tuples) / 2
		a := out[0].Create(r.Name, r.Schema)
		for _, tup := range r.Tuples[:mid] {
			a.Append(tup)
		}
		b := out[1].Create(r.Name, r.Schema)
		for _, tup := range r.Tuples[mid:] {
			b.Append(tup)
		}
	}
	return out
}

// TestAppendDurableRecovery: appended batches are journaled as RecAppend
// frames and recovery replays them onto the restored source.
func TestAppendDurableRecovery(t *testing.T) {
	path := t.TempDir()
	dir, err := store.OpenDir(path)
	if err != nil {
		t.Fatal(err)
	}
	sys := New(defaultOpts())
	sys.AttachDurable(dir)
	if _, err := sys.AddSource(fastaBatch(t, "seqs", 0, 30)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sys.AppendToSource(context.Background(), "seqs", fastaBatch(t, "seqs", 30+10*i, 10)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	want := fingerprint(sys)
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}

	got, dir2, n := recoverSystem(t, path)
	defer dir2.Close()
	if n != 4 { // 1 AddSource + 3 appends
		t.Errorf("replayed %d WAL records, want 4", n)
	}
	if g := fingerprint(got); g != want {
		t.Errorf("recovered state differs:\n--- want ---\n%s\n--- got ---\n%s", want, g)
	}
	if got.Repo.Source("seqs").TupleCount != 60 {
		t.Errorf("recovered tuple count = %d, want 60", got.Repo.Source("seqs").TupleCount)
	}
	// Appends survive a checkpoint fold as well.
	checkpointNow(t, got)
	if err := dir2.Close(); err != nil {
		t.Fatal(err)
	}
	again, dir3, n := recoverSystem(t, path)
	defer dir3.Close()
	if n != 0 {
		t.Errorf("post-checkpoint recovery replayed %d records, want 0", n)
	}
	if g := fingerprint(again); g != want {
		t.Errorf("post-checkpoint state differs:\n--- want ---\n%s\n--- got ---\n%s", want, g)
	}
}

// TestCrashBetweenAppendBatches is the streaming-ingestion crash bar: a
// kill while journaling batch N+1 must not acknowledge it, must leave
// the live state at the batch-N boundary, and recovery from the
// directory must land exactly there.
func TestCrashBetweenAppendBatches(t *testing.T) {
	path := t.TempDir()
	dir, err := store.OpenDir(path)
	if err != nil {
		t.Fatal(err)
	}
	sys := New(defaultOpts())
	sys.AttachDurable(dir)
	if _, err := sys.AddSource(fastaBatch(t, "seqs", 0, 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AppendToSource(context.Background(), "seqs", fastaBatch(t, "seqs", 20, 10)); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(sys)

	boom := errors.New("simulated crash")
	dir.Failpoint = func(stage string) error {
		if stage == "wal-append" {
			return boom
		}
		return nil
	}
	_, err = sys.AppendToSource(context.Background(), "seqs", fastaBatch(t, "seqs", 30, 10))
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("append under failpoint = %v, want ErrDurability", err)
	}
	// The unacknowledged batch must not leak into the live state — not
	// into the relations, and not into the duplicate index either (a
	// later append must not see its records as existing duplicates).
	if g := fingerprint(sys); g != want {
		t.Errorf("failed batch leaked into live state:\n--- want ---\n%s\n--- got ---\n%s", want, g)
	}
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}

	got, dir2, n := recoverSystem(t, path)
	defer dir2.Close()
	if n != 2 { // AddSource + 1 acknowledged append; the torn frame dropped
		t.Errorf("replayed %d WAL records, want 2", n)
	}
	if g := fingerprint(got); g != want {
		t.Errorf("recovered state differs:\n--- want ---\n%s\n--- got ---\n%s", want, g)
	}
	if got.Repo.Source("seqs").TupleCount != 30 {
		t.Errorf("recovered at tuple count %d, want 30 (batch boundary)", got.Repo.Source("seqs").TupleCount)
	}
}

// TestAppendRetryAfterFailure: a batch whose prepare fails mid-pipeline
// is unwound exactly — retrying it leaves the system indistinguishable
// from one that never failed. The bar is on the duplicate index: the
// failed attempt's records must not linger there, or the retry would
// match every record against its own ghost.
func TestAppendRetryAfterFailure(t *testing.T) {
	ctx := context.Background()
	build := func() *System {
		sys := New(defaultOpts())
		if _, err := sys.AddSource(fastaBatch(t, "seqs", 0, 20)); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.AppendToSource(ctx, "seqs", fastaBatch(t, "seqs", 20, 10)); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	sys, control := build(), build()

	boom := errors.New("injected failure")
	sys.SetFailpoint(func(stage string) error {
		if stage == "append-duplicate-detection" {
			return boom
		}
		return nil
	})
	if _, err := sys.AppendToSource(ctx, "seqs", fastaBatch(t, "seqs", 30, 10)); !errors.Is(err, boom) {
		t.Fatalf("append under failpoint = %v, want injected failure", err)
	}
	sys.SetFailpoint(nil)

	rep, err := sys.AppendToSource(ctx, "seqs", fastaBatch(t, "seqs", 30, 10))
	if err != nil {
		t.Fatalf("retry after failed append: %v", err)
	}
	crep, err := control.AppendToSource(ctx, "seqs", fastaBatch(t, "seqs", 30, 10))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DupStats != crep.DupStats {
		t.Errorf("retry dup stats %+v differ from control %+v (failed attempt not unwound)", rep.DupStats, crep.DupStats)
	}
	if g, w := fingerprint(sys), fingerprint(control); g != w {
		t.Errorf("retried state differs from control:\n--- control ---\n%s\n--- retried ---\n%s", w, g)
	}
}
