package core

// Batched source appends — the core half of the streaming ingestion
// path. A source is created once through the normal five-step AddSource
// pipeline; each subsequent batch of records then flows through
// PrepareAppend/CommitAppend, which reuse the source's discovered
// structure and profiles instead of re-running discovery:
//
//   - link discovery runs batch×other-sources only (DiscoverAppended),
//   - duplicate detection buckets only the batch's records into the
//     incremental index (new×existing + new×new, §4.5),
//   - the relations grow by append-branching (rel.AppendBranch): readers
//     holding the previous relation headers keep seeing exactly the
//     tuples of their snapshot, so a batch becomes visible atomically at
//     its commit and never tears mid-batch,
//   - one WAL frame (RecAppend) journals the whole batch.
//
// Like AddSource, the split keeps everything expensive off the caller's
// write lock; the commit is the WAL append plus O(batch) pointer
// appends. Callers serialize appends with other integrations (package
// aladin holds addMu).

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/discovery"
	"repro/internal/dup"
	"repro/internal/linkdisc"
	"repro/internal/metadata"
	"repro/internal/objectweb"
	"repro/internal/rel"
	"repro/internal/search"
	"repro/internal/store"
)

// AppendReport summarizes one committed batch append.
type AppendReport struct {
	Source string
	// Tuples is the number of tuples the batch added across relations;
	// Records is the number of primary objects among them.
	Tuples  int
	Records int
	// Seq is the global mutation sequence the batch committed at.
	Seq uint64
	// LinksAdded counts new links stored in the repository, by type name.
	LinksAdded     map[string]int
	XRefAttributes []linkdisc.XRefAttribute
	LinkStats      linkdisc.Stats
	DupStats       dup.Stats
	Timings        []StepTiming
}

// PendingAppend is a fully computed but uncommitted batch append: link
// and duplicate artifacts for the batch, browse/search/WAL data ready to
// publish, not yet visible to any access mode. Either CommitAppend or
// AbortAppend must be called exactly once.
type PendingAppend struct {
	batch   *rel.Database
	name    string // lower-cased source key
	display string // registered display name of the source

	links     []metadata.Link
	ontLinks  []metadata.Link
	dupLinks  []metadata.Link
	xattrs    []linkdisc.XRefAttribute
	lstats    linkdisc.Stats
	dstats    dup.Stats
	records   []dup.Record
	bucketed  bool // records are in the duplicate index and need unwinding
	web       *objectweb.Prepared
	searchIdx *search.Index
	walFrame  []byte
	tuples    int
	timings   []StepTiming
	done      bool
}

// Source returns the name of the source being appended to.
func (p *PendingAppend) Source() string { return p.display }

// Tuples returns the number of tuples in the batch.
func (p *PendingAppend) Tuples() int { return p.tuples }

// PrepareAppend computes everything a batch append publishes — links,
// duplicates, browse order, search postings, the WAL frame — against a
// snapshot of the current system, without touching reader-visible state.
// The batch database must contain only relations the source already has,
// with matching schemas; dependent rows must accompany their primary
// rows in the same batch (ownership propagation and duplicate records
// are computed per batch). Like PrepareAdd, concurrent prepares are NOT
// safe; integrations are serialized by the caller.
func (s *System) PrepareAppend(ctx context.Context, source string, batch *rel.Database) (*PendingAppend, error) {
	name := strings.ToLower(source)
	srcDB, ok := s.sources[name]
	if !ok {
		return nil, fmt.Errorf("core: append to unknown source %q", source)
	}
	meta := s.Repo.Source(source)
	if meta == nil || meta.Structure == nil {
		return nil, fmt.Errorf("core: source %q has no registered structure", source)
	}
	// Appends never change a source's shape: every batch relation must
	// already exist with the same columns.
	tuples := 0
	for _, r := range batch.Relations() {
		live := srcDB.Relation(r.Name)
		if live == nil {
			return nil, fmt.Errorf("core: append cannot add relation %q to source %q", r.Name, source)
		}
		if got, want := r.Schema.Names(), live.Schema.Names(); !equalFoldSlices(got, want) {
			return nil, fmt.Errorf("core: append to %s.%s: batch columns %v do not match %v", source, r.Name, got, want)
		}
		tuples += len(r.Tuples)
	}
	// Link, duplicate and search artifacts carry db.Name as their Source;
	// the batch must speak under the registered display name.
	batch.Name = meta.Name
	p := &PendingAppend{batch: batch, name: name, display: meta.Name, tuples: tuples}
	// A panic escaping the pipeline must not leave the batch
	// half-bucketed in the duplicate index.
	defer func() {
		if r := recover(); r != nil {
			s.unwindAppend(p)
			panic(r)
		}
	}()

	// Per-batch link discovery: the batch's records against every OTHER
	// registered source, both directions (§4.4). The registered copy of
	// this source is skipped — links are cross-source by definition.
	src := &linkdisc.Source{DB: batch, Structure: meta.Structure, Profiles: meta.Profiles}
	t0 := time.Now()
	var err error
	p.links, p.xattrs, p.lstats, err = s.engine.DiscoverAppended(ctx, src)
	if err != nil {
		return nil, err
	}
	p.ontLinks = s.deriveOntologyLinks(p.links)
	p.timings = append(p.timings, StepTiming{"append-link-discovery", time.Since(t0)})
	if err := s.failAt("append-link-discovery"); err != nil {
		return nil, err
	}

	// Per-batch duplicate detection: the batch's records are bucketed
	// into the persistent blocking index and compared new×existing +
	// new×new — including against this source's own earlier batches,
	// exactly as intra-source duplicates are found within one AddSource.
	t0 = time.Now()
	p.records = dup.RecordsFromSource(batch, meta.Structure)
	p.bucketed = true
	matches, dstats, err := s.dupIndex.FindNewContext(ctx, p.records, s.opts.Duplicates)
	if err != nil {
		s.unwindAppend(p)
		return nil, err
	}
	p.dstats = dstats
	p.dupLinks = dup.Links(matches)
	p.timings = append(p.timings, StepTiming{"append-duplicate-detection", time.Since(t0)})
	if err := s.failAt("append-duplicate-detection"); err != nil {
		s.unwindAppend(p)
		return nil, err
	}

	// Browse order, search postings and the WAL frame. Only integrations
	// mutate the browse web (serialized by the caller), so merging the
	// installed accession order off-lock is safe; DML interleavings touch
	// relations, which are deliberately NOT branched here but at commit.
	t0 = time.Now()
	p.web, err = s.web.PrepareAppend(meta.Name, batchAccessions(batch, meta.Structure))
	if err != nil {
		s.unwindAppend(p)
		return nil, err
	}
	if !s.opts.DisableSearchIndex {
		p.searchIdx = buildSearchIndex(batch, meta.Structure, meta.Profiles)
	}
	if s.durable != nil {
		frame, err := store.EncodeRecord(s.appendRecord(p))
		if err != nil {
			s.unwindAppend(p)
			return nil, err
		}
		p.walFrame = frame
	}
	p.timings = append(p.timings, StepTiming{"append-prepare", time.Since(t0)})
	if err := ctx.Err(); err != nil {
		s.unwindAppend(p)
		return nil, err
	}
	return p, nil
}

// unwindAppend reverts the pipeline-internal state PrepareAppend touched.
func (s *System) unwindAppend(p *PendingAppend) {
	p.done = true
	if p.bucketed {
		s.dupIndex.Remove(p.records)
		p.bucketed = false
	}
}

// AbortAppend discards a prepared batch append. Aborting an already
// committed or aborted pending append is a no-op.
func (s *System) AbortAppend(p *PendingAppend) {
	if p == nil || p.done {
		return
	}
	s.unwindAppend(p)
}

// CommitAppend publishes a prepared batch to every access mode. Callers
// serving concurrent readers hold their write lock exactly for this
// call. The live relations are append-branched HERE, not at prepare
// time: DML replaces relations copy-on-write under the same write lock,
// so a branch taken off-lock could clobber statements committed between
// prepare and commit. Branching and appending are O(batch) pointer
// appends — old readers' relation headers never see past their
// snapshot's length, so the batch appears atomically.
func (s *System) CommitAppend(p *PendingAppend) (*AppendReport, error) {
	if p.done {
		return nil, fmt.Errorf("core: pending append for %q already committed or aborted", p.display)
	}
	p.done = true
	srcDB, ok := s.sources[p.name]
	if !ok {
		s.dupIndex.Remove(p.records)
		return nil, fmt.Errorf("core: append to unknown source %q", p.display)
	}
	t0 := time.Now()
	var frame []byte
	if s.durable != nil {
		frame = p.walFrame
		if frame == nil {
			// Prepared before the directory was attached; encode now.
			var err error
			if frame, err = store.EncodeRecord(s.appendRecord(p)); err != nil {
				s.dupIndex.Remove(p.records)
				return nil, err
			}
		}
	}
	// Journal before publishing: the batch is acknowledged only once it
	// would survive a crash; recovery lands exactly on a batch boundary.
	if err := s.logFrame(frame, p.display); err != nil {
		s.dupIndex.Remove(p.records)
		return nil, err
	}
	report := &AppendReport{
		Source:         p.display,
		Tuples:         p.tuples,
		Records:        len(p.records),
		Seq:            s.seq.Load(),
		LinksAdded:     make(map[string]int),
		XRefAttributes: p.xattrs,
		LinkStats:      p.lstats,
		DupStats:       p.dstats,
		Timings:        p.timings,
	}
	appendBatch(srcDB, s.warehouse, p.name, p.batch)
	for _, l := range p.links {
		if stored, _, _ := s.Repo.AddLinkTracked(l); stored {
			report.LinksAdded[l.Type.String()]++
		}
	}
	for _, l := range p.ontLinks {
		if stored, _, _ := s.Repo.AddLinkTracked(l); stored {
			report.LinksAdded[l.Type.String()]++
		}
	}
	for _, l := range p.dupLinks {
		if stored, _, _ := s.Repo.AddLinkTracked(l); stored {
			report.LinksAdded[l.Type.String()]++
		}
	}
	s.records[p.name] = append(s.records[p.name], p.records...)
	s.web.Install(p.web)
	if p.searchIdx != nil {
		s.index.Merge(p.searchIdx)
	}
	// The engine's resolver caches per-column indexes over the
	// pre-append relations; rebuild lazily over the grown ones.
	s.engine.RefreshResolver(p.display)
	meta := s.Repo.Source(p.display)
	s.Repo.RegisterSource(&metadata.SourceMeta{
		Name:       meta.Name,
		Structure:  meta.Structure,
		Profiles:   meta.Profiles,
		TupleCount: srcDB.TotalTuples(),
	})
	report.Timings = append(report.Timings, StepTiming{"append-commit", time.Since(t0)})
	return report, nil
}

// AppendToSource prepares and commits one batch append — the
// single-caller convenience form (tests, non-concurrent embedders).
func (s *System) AppendToSource(ctx context.Context, source string, batch *rel.Database) (*AppendReport, error) {
	p, err := s.PrepareAppend(ctx, source, batch)
	if err != nil {
		return nil, err
	}
	return s.CommitAppend(p)
}

// appendBatch grows the live source relations and their qualified
// warehouse twins by the batch's tuples, via append branches. The tuple
// pointers are shared between batch, source and warehouse relations —
// published tuples are never mutated in place (DML is copy-on-write), so
// sharing is safe and skips the deep clone AddSource's qualifiedClone
// pays.
func appendBatch(srcDB, warehouse *rel.Database, name string, batch *rel.Database) {
	for _, br := range batch.Relations() {
		if len(br.Tuples) == 0 {
			continue
		}
		live := srcDB.Relation(br.Name)
		nb := live.AppendBranch()
		for _, t := range br.Tuples {
			nb.Append(t)
		}
		srcDB.Put(nb)
		if wq := warehouse.Relation(name + "_" + br.Name); wq != nil {
			wb := wq.AppendBranch()
			for _, t := range br.Tuples {
				wb.Append(t)
			}
			warehouse.Put(wb)
		} else {
			// Unreachable in practice — every integrated relation has a
			// qualified twin — but a fresh clone is a safe fallback.
			warehouse.Put(qualifiedClone(nb, name, nil))
		}
	}
}

// appendRecord builds the WAL record describing a prepared batch append:
// the batch's tuples plus every candidate link its commit will store.
// Structure and Profiles stay nil — the source's registered metadata
// governs, and replay reads it from the preceding RecAddSource.
func (s *System) appendRecord(p *PendingAppend) *store.WALRecord {
	links := make([]metadata.Link, 0, len(p.links)+len(p.ontLinks)+len(p.dupLinks))
	links = append(links, p.links...)
	links = append(links, p.ontLinks...)
	links = append(links, p.dupLinks...)
	return &store.WALRecord{
		Type: store.RecAppend,
		Source: &store.SourceSnapshot{
			Name:       p.display,
			Relations:  store.SnapshotDatabase(p.batch),
			TupleCount: p.tuples,
		},
		Links: links,
	}
}

// applyAppend re-applies one journaled batch append during recovery or
// replication: the batch's tuples are appended to the restored source's
// relations and every derived structure — duplicate records, browse
// order, search postings, metadata tuple count — is grown to match, with
// the batch's candidate links replaying through the repository's dedup
// and feedback filters.
func (s *System) applyAppend(ss *store.SourceSnapshot, links []metadata.Link) error {
	batch := store.RestoreDatabase(ss.Name, ss.Relations)
	name := strings.ToLower(batch.Name)
	srcDB, ok := s.sources[name]
	if !ok {
		return fmt.Errorf("core: append WAL record for unknown source %q", ss.Name)
	}
	meta := s.Repo.Source(ss.Name)
	if meta == nil || meta.Structure == nil {
		return fmt.Errorf("core: append WAL record for %q: no registered structure", ss.Name)
	}
	for _, br := range batch.Relations() {
		if len(br.Tuples) > 0 && srcDB.Relation(br.Name) == nil {
			return fmt.Errorf("core: append WAL record: source %q has no relation %q", ss.Name, br.Name)
		}
	}
	appendBatch(srcDB, s.warehouse, name, batch)
	records := dup.RecordsFromSource(batch, meta.Structure)
	s.records[name] = append(s.records[name], records...)
	// Bucket without comparing: the stored duplicate links replay from
	// the record's Links, exactly as installRestored does for snapshots.
	s.dupIndex.Add(records)
	webPrep, err := s.web.PrepareAppend(meta.Name, batchAccessions(batch, meta.Structure))
	if err != nil {
		return err
	}
	s.web.Install(webPrep)
	if !s.opts.DisableSearchIndex {
		s.indexSource(batch, meta.Structure, meta.Profiles)
	}
	for _, l := range links {
		s.Repo.AddLink(l)
	}
	s.engine.RefreshResolver(meta.Name)
	s.Repo.RegisterSource(&metadata.SourceMeta{
		Name:       meta.Name,
		Structure:  meta.Structure,
		Profiles:   meta.Profiles,
		TupleCount: srcDB.TotalTuples(),
	})
	return nil
}

// batchAccessions lists the non-null primary accessions of a batch.
func batchAccessions(db *rel.Database, st *discovery.Structure) []string {
	pr := db.Relation(st.Primary)
	if pr == nil {
		return nil
	}
	ai := pr.Schema.Index(st.PrimaryAccession)
	if ai < 0 {
		return nil
	}
	out := make([]string, 0, len(pr.Tuples))
	for _, t := range pr.Tuples {
		if !t[ai].IsNull() {
			out = append(out, t[ai].AsString())
		}
	}
	return out
}

// equalFoldSlices reports case-insensitive element-wise equality.
func equalFoldSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i], b[i]) {
			return false
		}
	}
	return true
}
