package core_test

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/flatfile"
	"repro/internal/metadata"
)

// Example integrates two flat-file sources hands-off and follows a
// discovered cross-reference link.
func Example() {
	swissprotText := `ID   HBA_HUMAN   Reviewed;
AC   P69905;
DE   Hemoglobin subunit alpha.
OS   Homo sapiens.
DR   PDB; 1ABC; X-ray.
//
ID   LYSC_CHICK   Reviewed;
AC   P00698;
DE   Lysozyme C.
OS   Gallus gallus.
DR   PDB; 2DEF; X-ray.
//
ID   TRY_PIG   Reviewed;
AC   P00761;
DE   Trypsin.
OS   Sus scrofa.
DR   PDB; 3GHI; X-ray.
//
`
	pdbText := `>1ABC hemoglobin structure
ACGTACGTACGTACGTACGTACGTACGTTGCAACGTACGTACGTTGCA
>2DEF lysozyme structure
TTGACCATGGACCATTGACCATGGTTGACCATGGACCATTGACCATGG
>3GHI trypsin structure
GGCATTGGCAATTGGCATTGGCAAGGCATTGGCAATTGGCATTGGCAA
`
	swissprot, err := flatfile.ParseEMBL(strings.NewReader(swissprotText), "swissprot")
	if err != nil {
		log.Fatal(err)
	}
	pdb, err := flatfile.ParseFASTA(strings.NewReader(pdbText), "pdb")
	if err != nil {
		log.Fatal(err)
	}

	sys := core.New(core.Options{})
	if _, err := sys.AddSource(swissprot); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.AddSource(pdb); err != nil {
		log.Fatal(err)
	}

	view, err := sys.Browse(metadata.ObjectRef{
		Source: "swissprot", Relation: "entry", Accession: "P69905",
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range view.Linked {
		if l.Type == metadata.LinkXRef {
			fmt.Printf("%s -> %s\n", l.From.Accession, l.To.Accession)
		}
	}
	// Output:
	// P69905 -> 1ABC
}
