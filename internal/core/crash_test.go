package core

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/metadata"
	"repro/internal/sqlx"
	"repro/internal/store"
)

// The kill-at-every-stage crash suite (ISSUE 6 satellite): a durable
// system is built, mutated, and "killed" at each failure point the
// durability layer exposes — mid-WAL-append, mid-segment-write,
// mid-links-write, mid-manifest-swap, after the swap but before the
// trim, and with a torn final WAL record — then recovered from the same
// directory. Recovery must restore exactly the acknowledged commits:
// the same sources, warehouse tuples, links, and feedback, with hash
// indexes rebuilt (a point query scans exactly one tuple).

func crashCfg() datagen.Config { return datagen.Config{Seed: 11, Proteins: 8} }

// durableSystem opens path as a data directory and integrates the first
// nsrc corpus sources through the journaled commit path.
func durableSystem(t *testing.T, path string, nsrc int) (*System, *store.Dir, *datagen.Corpus) {
	t.Helper()
	dir, err := store.OpenDir(path)
	if err != nil {
		t.Fatal(err)
	}
	sys := New(defaultOpts())
	sys.AttachDurable(dir)
	corpus := datagen.Generate(crashCfg())
	if nsrc <= 0 || nsrc > len(corpus.Sources) {
		nsrc = len(corpus.Sources)
	}
	for _, src := range corpus.Sources[:nsrc] {
		if _, err := sys.AddSource(src); err != nil {
			t.Fatalf("AddSource(%s): %v", src.Name, err)
		}
	}
	return sys, dir, corpus
}

// recoverSystem reopens path and rebuilds the system from its last
// checkpoint plus the WAL tail.
func recoverSystem(t *testing.T, path string) (*System, *store.Dir, int) {
	t.Helper()
	dir, err := store.OpenDir(path)
	if err != nil {
		t.Fatalf("reopening data directory: %v", err)
	}
	sys, n, err := Recover(defaultOpts(), dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return sys, dir, n
}

// checkpointNow runs a full begin/write checkpoint cycle.
func checkpointNow(t *testing.T, sys *System) *PendingCheckpoint {
	t.Helper()
	cp, err := sys.BeginCheckpoint()
	if err != nil {
		t.Fatalf("BeginCheckpoint: %v", err)
	}
	if err := sys.WriteCheckpoint(cp); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	return cp
}

func linkLines(links []metadata.Link) string {
	lines := make([]string, len(links))
	for i, l := range links {
		lines[i] = fmt.Sprintf("  %d %s -> %s %.4f %s", l.Type, l.From.Key(), l.To.Key(), l.Confidence, l.Method)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// fingerprint captures everything recovery must reproduce: the source
// set, every warehouse relation's cardinality, and the full link
// repository including feedback.
func fingerprint(s *System) string {
	var b strings.Builder
	names := s.Sources()
	sort.Strings(names)
	fmt.Fprintf(&b, "sources: %v\n", names)
	wh := s.WarehouseSnapshot()
	for _, n := range wh.SortedNames() {
		fmt.Fprintf(&b, "rel %s: %d tuples\n", n, len(wh.Relation(n).Tuples))
	}
	fmt.Fprintf(&b, "links:\n%s\n", linkLines(s.Repo.AllLinks()))
	fmt.Fprintf(&b, "removed:\n%s\n", linkLines(s.Repo.RemovedLinks()))
	return b.String()
}

// assertIndexedPointQuery verifies the §5 acceptance bar: after
// recovery the rebuilt hash indexes answer an accession point query by
// scanning exactly one tuple.
func assertIndexedPointQuery(t *testing.T, s *System) {
	t.Helper()
	wh := s.WarehouseSnapshot()
	r := wh.Relation("swissprot_protein")
	if r == nil || len(r.Tuples) == 0 {
		t.Fatal("swissprot_protein missing from recovered warehouse")
	}
	idx := r.Schema.Index("accession")
	if idx < 0 {
		t.Fatal("no accession column")
	}
	acc := r.Tuples[0][idx].AsString()
	plan, err := sqlx.Prepare(wh, fmt.Sprintf("SELECT * FROM swissprot_protein WHERE accession = '%s'", acc))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := plan.Open(context.Background(), wh)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for {
		if _, err := cur.Next(context.Background()); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		rows++
	}
	if rows != 1 {
		t.Fatalf("point query returned %d rows, want 1", rows)
	}
	if cur.Scanned() != 1 {
		t.Fatalf("point query scanned %d tuples, want 1 (index not rebuilt)", cur.Scanned())
	}
}

// firstRemovableLink picks a deterministic link to delete as feedback.
func firstRemovableLink(t *testing.T, s *System) metadata.Link {
	t.Helper()
	links := s.Repo.AllLinks()
	if len(links) == 0 {
		t.Fatal("no links to remove")
	}
	sort.Slice(links, func(i, j int) bool {
		return linkLines(links[i:i+1]) < linkLines(links[j:j+1])
	})
	return links[0]
}

// mutate applies one of each journaled mutation kind: a DML delete and
// a link-feedback removal. Returns the deleted accession.
func mutate(t *testing.T, sys *System) string {
	t.Helper()
	wh := sys.WarehouseSnapshot()
	r := wh.Relation("swissprot_protein")
	idx := r.Schema.Index("accession")
	acc := r.Tuples[len(r.Tuples)-1][idx].AsString()
	res, err := sys.Exec(fmt.Sprintf("DELETE FROM swissprot_protein WHERE accession = '%s'", acc))
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.Affected != 1 {
		t.Fatalf("delete affected %d rows, want 1", res.Affected)
	}
	victim := firstRemovableLink(t, sys)
	if ok, err := sys.RemoveLinkFeedback(victim); err != nil || !ok {
		t.Fatalf("RemoveLinkFeedback: ok=%v err=%v", ok, err)
	}
	return acc
}

// TestRecoverFromWALOnly replays a directory that has never
// checkpointed: every commit lives in the WAL tail.
func TestRecoverFromWALOnly(t *testing.T) {
	path := t.TempDir()
	sys, dir, _ := durableSystem(t, path, 3)
	mutate(t, sys)
	want := fingerprint(sys)
	removed := sys.Repo.RemovedLinks()
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}

	got, dir2, n := recoverSystem(t, path)
	defer dir2.Close()
	if n != 5 { // 3 AddSource + 1 DML + 1 feedback
		t.Errorf("replayed %d WAL records, want 5", n)
	}
	if g := fingerprint(got); g != want {
		t.Errorf("recovered state differs:\n--- want ---\n%s\n--- got ---\n%s", want, g)
	}
	assertIndexedPointQuery(t, got)
	// Feedback must be honored: the removed link stays removed and is
	// remembered so re-analysis cannot resurrect it.
	if len(removed) == 0 || linkLines(got.Repo.RemovedLinks()) != linkLines(removed) {
		t.Errorf("feedback lost: removed = %s", linkLines(got.Repo.RemovedLinks()))
	}
	for _, l := range got.Repo.AllLinks() {
		if linkLines([]metadata.Link{l}) == linkLines(removed[:1]) {
			t.Error("removed link resurrected by recovery")
		}
	}
}

// TestCheckpointThenRecover folds part of the history into segments and
// leaves the rest in the WAL tail; recovery stitches both together.
func TestCheckpointThenRecover(t *testing.T) {
	path := t.TempDir()
	sys, dir, _ := durableSystem(t, path, 3)
	checkpointNow(t, sys)
	if n := sys.WALRecordsSinceCheckpoint(); n != 0 {
		t.Fatalf("WAL records after checkpoint = %d", n)
	}
	mutate(t, sys)
	want := fingerprint(sys)
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}

	got, dir2, n := recoverSystem(t, path)
	defer dir2.Close()
	if n != 2 { // only the post-checkpoint DML + feedback replay
		t.Errorf("replayed %d WAL records, want 2", n)
	}
	if st := dir2.Stats(); st.Gen != 1 || st.Sources != 3 {
		t.Errorf("recovered dir stats = %+v", st)
	}
	if g := fingerprint(got); g != want {
		t.Errorf("recovered state differs:\n--- want ---\n%s\n--- got ---\n%s", want, g)
	}
	assertIndexedPointQuery(t, got)
}

// TestCrashMidWALAppend kills the append itself: the mutation is not
// acknowledged, the in-memory state is unchanged, and recovery ignores
// the torn frame.
func TestCrashMidWALAppend(t *testing.T) {
	path := t.TempDir()
	sys, dir, _ := durableSystem(t, path, 2)
	want := fingerprint(sys)
	wh := sys.WarehouseSnapshot()
	r := wh.Relation("swissprot_protein")
	acc := r.Tuples[0][r.Schema.Index("accession")].AsString()

	boom := errors.New("simulated crash")
	dir.Failpoint = func(stage string) error {
		if stage == "wal-append" {
			return boom
		}
		return nil
	}
	_, err := sys.Exec(fmt.Sprintf("DELETE FROM swissprot_protein WHERE accession = '%s'", acc))
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("Exec under failpoint = %v, want ErrDurability", err)
	}
	if ok, err := sys.RemoveLinkFeedback(firstRemovableLink(t, sys)); err == nil || ok {
		t.Fatalf("RemoveLinkFeedback under failpoint: ok=%v err=%v", ok, err)
	}
	// Unacknowledged mutations must not be visible in memory either.
	if g := fingerprint(sys); g != want {
		t.Errorf("failed mutation leaked into live state:\n--- want ---\n%s\n--- got ---\n%s", want, g)
	}
	dir.Failpoint = nil
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}

	got, dir2, n := recoverSystem(t, path)
	defer dir2.Close()
	if n != 2 { // the two AddSource commits; both torn frames dropped
		t.Errorf("replayed %d WAL records, want 2", n)
	}
	if g := fingerprint(got); g != want {
		t.Errorf("recovered state differs:\n--- want ---\n%s\n--- got ---\n%s", want, g)
	}
	assertIndexedPointQuery(t, got)
}

// TestCrashAtEveryCheckpointStage kills the checkpoint at each stage —
// while a segment file is half-written, while the links segment is
// half-written, while the manifest swap is half-written, and after the
// swap but before the WAL trim — and verifies recovery lands on exactly
// the acknowledged state every time, and that the NEXT checkpoint (after
// the dirty set was merged back) succeeds.
func TestCrashAtEveryCheckpointStage(t *testing.T) {
	stages := []struct {
		name  string
		match func(stage string) bool
		// committed reports whether the manifest swap happened before the
		// kill (the checkpoint is durable despite the error).
		committed bool
	}{
		{"segment", func(s string) bool { return strings.HasPrefix(s, "segment:") }, false},
		{"links", func(s string) bool { return s == "links" }, false},
		{"manifest", func(s string) bool { return s == "manifest" }, false},
		{"trim", func(s string) bool { return s == "trim" }, true},
	}
	for _, stage := range stages {
		t.Run(stage.name, func(t *testing.T) {
			path := t.TempDir()
			sys, dir, _ := durableSystem(t, path, 2)
			mutate(t, sys)
			want := fingerprint(sys)

			boom := errors.New("simulated crash at " + stage.name)
			dir.Failpoint = func(s string) error {
				if stage.match(s) {
					return boom
				}
				return nil
			}
			cp, err := sys.BeginCheckpoint()
			if err != nil {
				t.Fatalf("BeginCheckpoint: %v", err)
			}
			if err := sys.WriteCheckpoint(cp); !errors.Is(err, boom) {
				t.Fatalf("WriteCheckpoint = %v, want injected crash", err)
			}
			dir.Failpoint = nil
			if err := dir.Close(); err != nil {
				t.Fatal(err)
			}

			got, dir2, _ := recoverSystem(t, path)
			if g := fingerprint(got); g != want {
				t.Errorf("recovered state differs:\n--- want ---\n%s\n--- got ---\n%s", want, g)
			}
			assertIndexedPointQuery(t, got)
			st := dir2.Stats()
			if stage.committed != (st.Gen > 0) {
				t.Errorf("checkpoint generation = %d after crash at %s", st.Gen, stage.name)
			}

			// The aborted checkpoint merged its dirty set back (or, for a
			// post-swap crash, recovery starts clean): a retry must both
			// succeed and leave a directory that recovers to the same state.
			checkpointNow(t, got)
			if err := dir2.Close(); err != nil {
				t.Fatal(err)
			}
			again, dir3, n := recoverSystem(t, path)
			defer dir3.Close()
			if n != 0 {
				t.Errorf("post-retry recovery replayed %d records, want 0", n)
			}
			if g := fingerprint(again); g != want {
				t.Errorf("post-retry state differs:\n--- want ---\n%s\n--- got ---\n%s", want, g)
			}
		})
	}
}

// TestTornFinalWALRecord truncates the live WAL mid-frame — the bytes a
// kill during the final append leaves behind. The torn record was never
// acknowledged, so recovery lands one commit earlier.
func TestTornFinalWALRecord(t *testing.T) {
	path := t.TempDir()
	sys, dir, _ := durableSystem(t, path, 2)
	wh := sys.WarehouseSnapshot()
	r := wh.Relation("swissprot_protein")
	tuples := len(r.Tuples)
	acc := r.Tuples[tuples-1][r.Schema.Index("accession")].AsString()
	if _, err := sys.Exec(fmt.Sprintf("DELETE FROM swissprot_protein WHERE accession = '%s'", acc)); err != nil {
		t.Fatal(err)
	}
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}

	wal := filepath.Join(path, "wal-00000001.log")
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	got, dir2, n := recoverSystem(t, path)
	defer dir2.Close()
	if n != 2 { // the DELETE's frame is torn; only the AddSource commits replay
		t.Errorf("replayed %d WAL records, want 2", n)
	}
	r2 := got.WarehouseSnapshot().Relation("swissprot_protein")
	if len(r2.Tuples) != tuples {
		t.Errorf("torn DELETE applied anyway: %d tuples, want %d", len(r2.Tuples), tuples)
	}
	assertIndexedPointQuery(t, got)
}

// segmentHashes maps each seg-*.seg file to its content hash.
func segmentHashes(t *testing.T, path string) map[string][32]byte {
	t.Helper()
	entries, err := os.ReadDir(path)
	if err != nil {
		t.Fatal(err)
	}
	hashes := make(map[string][32]byte)
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "seg-") || !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(path, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		hashes[e.Name()] = sha256.Sum256(buf)
	}
	return hashes
}

// TestCheckpointRewritesOnlyDirtySegments is the incrementality
// acceptance bar: after a checkpoint, mutating ONE source and
// checkpointing again must rewrite that source's segment and nothing
// else — every clean source's segment file survives byte-identical.
func TestCheckpointRewritesOnlyDirtySegments(t *testing.T) {
	path := t.TempDir()
	sys, dir, _ := durableSystem(t, path, 3)
	defer dir.Close()
	if cp := checkpointNow(t, sys); cp.Dirty() != 3 {
		t.Fatalf("first checkpoint wrote %d sources, want 3", cp.Dirty())
	}
	before := segmentHashes(t, path)
	if len(before) != 3 {
		t.Fatalf("expected 3 segments, found %v", before)
	}

	// Dirty exactly one source.
	wh := sys.WarehouseSnapshot()
	r := wh.Relation("swissprot_protein")
	acc := r.Tuples[0][r.Schema.Index("accession")].AsString()
	if _, err := sys.Exec(fmt.Sprintf("DELETE FROM swissprot_protein WHERE accession = '%s'", acc)); err != nil {
		t.Fatal(err)
	}
	if cp := checkpointNow(t, sys); cp.Dirty() != 1 {
		t.Fatalf("incremental checkpoint wrote %d sources, want 1", cp.Dirty())
	}

	after := segmentHashes(t, path)
	if len(after) != 3 {
		t.Fatalf("expected 3 segments after incremental checkpoint, found %v", after)
	}
	var rewritten, reused int
	for name, h := range after {
		old, ok := before[name]
		switch {
		case !ok:
			rewritten++
			if !strings.Contains(name, "swissprot") {
				t.Errorf("clean source's segment rewritten: %s", name)
			}
		case old != h:
			t.Errorf("segment %s changed in place (segments are immutable)", name)
		default:
			reused++
		}
	}
	if rewritten != 1 || reused != 2 {
		t.Errorf("rewritten=%d reused=%d, want 1/2 (before=%v after=%v)", rewritten, reused, before, after)
	}
	// The dirty source's previous segment is unreferenced and trimmed.
	for name := range before {
		if _, live := after[name]; !live && !strings.Contains(name, "swissprot") {
			t.Errorf("clean source's segment %s disappeared", name)
		}
	}
}

// TestRecoveredCheckpointFoldsReplayedTail: after recovery the replayed
// sources are dirty, so the first checkpoint folds the whole tail into
// segments and the next start replays nothing.
func TestRecoveredCheckpointFoldsReplayedTail(t *testing.T) {
	path := t.TempDir()
	sys, dir, _ := durableSystem(t, path, 2)
	mutate(t, sys)
	want := fingerprint(sys)
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}

	got, dir2, _ := recoverSystem(t, path)
	if n := got.WALRecordsSinceCheckpoint(); n != 4 {
		t.Errorf("replay-tail counter = %d, want 4", n)
	}
	checkpointNow(t, got)
	if err := dir2.Close(); err != nil {
		t.Fatal(err)
	}

	again, dir3, n := recoverSystem(t, path)
	defer dir3.Close()
	if n != 0 {
		t.Errorf("post-checkpoint recovery replayed %d records, want 0", n)
	}
	if g := fingerprint(again); g != want {
		t.Errorf("state differs after fold:\n--- want ---\n%s\n--- got ---\n%s", want, g)
	}
}
