package core

import (
	"path/filepath"
	"testing"

	"repro/internal/metadata"
	"repro/internal/search"
	"repro/internal/store"
)

func TestSnapshotLoadRoundTrip(t *testing.T) {
	sys, _ := buildSystem(t, defaultCfg(), defaultOpts())
	// Exercise feedback so the snapshot carries removals.
	victim := sys.Repo.Links(metadata.LinkXRef)[0]
	sys.RemoveLinkFeedback(victim)
	wantLinks := sys.Repo.LinkCount(-1)

	snap := sys.Snapshot()
	if len(snap.Sources) != 6 {
		t.Fatalf("snapshot sources = %d", len(snap.Sources))
	}

	restored, err := Load(defaultOpts(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Repo.LinkCount(-1); got != wantLinks {
		t.Errorf("restored links = %d want %d", got, wantLinks)
	}
	// The removed link must stay removed.
	if restored.Repo.AddLink(victim) {
		t.Error("restored system re-accepted a feedback-removed link")
	}
	// Structures rediscovered identically.
	for _, m := range sys.Repo.Sources() {
		rm := restored.Repo.Source(m.Name)
		if rm == nil {
			t.Fatalf("missing restored source %s", m.Name)
		}
		if rm.Structure.Primary != m.Structure.Primary {
			t.Errorf("%s primary = %q want %q", m.Name, rm.Structure.Primary, m.Structure.Primary)
		}
	}
	// All three access modes work on the restored system.
	if rs := restored.Search("hemoglobin", search.Filter{}, 3); len(rs) == 0 {
		t.Error("restored search empty")
	}
	res, err := restored.Query(`SELECT COUNT(*) FROM swissprot_protein`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 24 {
		t.Errorf("restored query count = %d", n)
	}
	objs := restored.Objects("swissprot")
	if len(objs) != 24 {
		t.Fatalf("restored objects = %d", len(objs))
	}
	if _, err := restored.Browse(objs[0]); err != nil {
		t.Errorf("restored browse: %v", err)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	sys, _ := buildSystem(t, defaultCfg(), defaultOpts())
	path := filepath.Join(t.TempDir(), "warehouse.gob")
	if err := store.SaveFile(path, sys.Snapshot()); err != nil {
		t.Fatal(err)
	}
	snap, err := store.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Load(defaultOpts(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Repo.LinkCount(-1) != sys.Repo.LinkCount(-1) {
		t.Error("file round trip changed link count")
	}
}
