package core

import (
	"strings"

	"repro/internal/discovery"
	"repro/internal/dup"
	"repro/internal/linkdisc"
	"repro/internal/metadata"
	"repro/internal/profile"
	"repro/internal/store"
)

// Snapshot captures the full integrated warehouse — source data, link
// repository, and user feedback — for persistence via package store.
func (s *System) Snapshot() *store.Snapshot {
	metas := make(map[string]*metadata.SourceMeta)
	for _, m := range s.Repo.Sources() {
		metas[strings.ToLower(m.Name)] = m
	}
	return store.Build(s.sources, metas, s.Repo.AllLinks(), s.Repo.RemovedLinks())
}

// Load rebuilds a System from a snapshot. Structural discovery is re-run
// per source (it is cheap, §4.2 operates on statistics), while the
// expensive link-discovery and duplicate-detection results are replayed
// from the stored repository — including user feedback, which restored
// systems must keep honoring (§6.2).
func Load(opts Options, snap *store.Snapshot) (*System, error) {
	sys := New(opts)
	for _, ss := range snap.Sources {
		db := store.RestoreDatabase(ss.Name, ss.Relations)
		name := strings.ToLower(db.Name)
		profs, err := profile.ProfileDatabase(db, sys.opts.Profile)
		if err != nil {
			return nil, err
		}
		structure, err := discovery.Analyze(db, profs, sys.opts.Discovery)
		if err != nil {
			return nil, err
		}
		if err := sys.engine.AddSource(&linkdisc.Source{DB: db, Structure: structure, Profiles: profs}); err != nil {
			return nil, err
		}
		// Rebuild hash indexes from the restored tuples (they are never
		// part of the snapshot encoding), for both the source relations
		// and the qualified warehouse clones.
		idxCols := indexColumns(structure)
		for _, r := range db.Relations() {
			buildRelationIndexes(r, idxCols[strings.ToLower(r.Name)])
		}
		if err := sys.web.AddSource(db, structure); err != nil {
			return nil, err
		}
		sys.sources[name] = db
		sys.records[name] = dup.RecordsFromSource(db, structure)
		// Bucket the records into the incremental duplicate index without
		// comparing: the snapshot replays the discovered duplicate links,
		// and later AddSource calls compare against these records.
		sys.dupIndex.Add(sys.records[name])
		for _, r := range db.Relations() {
			sys.warehouse.Put(qualifiedClone(r, name, idxCols[strings.ToLower(r.Name)]))
		}
		if !sys.opts.DisableSearchIndex {
			sys.indexSource(db, structure, profs)
		}
		sys.Repo.RegisterSource(&metadata.SourceMeta{
			Name:       db.Name,
			Structure:  structure,
			Profiles:   profs,
			TupleCount: ss.TupleCount,
		})
	}
	// Feedback first, so removed links cannot re-enter.
	for _, l := range snap.Removed {
		sys.Repo.RemoveLink(l)
	}
	for _, l := range snap.Links {
		sys.Repo.AddLink(l)
	}
	return sys, nil
}
