package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/discovery"
	"repro/internal/dup"
	"repro/internal/linkdisc"
	"repro/internal/metadata"
	"repro/internal/profile"
	"repro/internal/store"
)

// Snapshot captures the full integrated warehouse — source data, link
// repository, and user feedback — for persistence via package store.
func (s *System) Snapshot() *store.Snapshot {
	metas := make(map[string]*metadata.SourceMeta)
	for _, m := range s.Repo.Sources() {
		metas[strings.ToLower(m.Name)] = m
	}
	return store.Build(s.sources, metas, s.Repo.AllLinks(), s.Repo.RemovedLinks())
}

// installRestored publishes one persisted source into every access mode.
// The expensive pipeline outputs are all reused: link-discovery and
// duplicate results replay from the stored repository, and the persisted
// structure and column profiles are installed as-is — §6.2 stresses how
// costly re-computation is, so a restore re-derives only what is
// genuinely absent (snapshots written before structures were persisted).
// Reanalyze remains the escape hatch to force a fresh derivation.
func (s *System) installRestored(ss *store.SourceSnapshot) error {
	db := store.RestoreDatabase(ss.Name, ss.Relations)
	name := strings.ToLower(db.Name)
	if _, exists := s.sources[name]; exists {
		return fmt.Errorf("%w: %q", ErrSourceExists, db.Name)
	}
	structure, profs := ss.Structure, ss.Profiles
	if structure == nil || profs == nil {
		var err error
		profs, err = profile.ProfileDatabase(db, s.opts.Profile)
		if err != nil {
			return err
		}
		structure, err = discovery.Analyze(db, profs, s.opts.Discovery)
		if err != nil {
			return err
		}
	}
	if err := s.engine.AddSource(&linkdisc.Source{DB: db, Structure: structure, Profiles: profs}); err != nil {
		return err
	}
	// Rebuild hash indexes from the restored tuples (they are never part
	// of any on-disk encoding), for both the source relations and the
	// qualified warehouse clones.
	idxCols := indexColumns(structure)
	for _, r := range db.Relations() {
		buildRelationIndexes(r, idxCols[strings.ToLower(r.Name)])
		// Segments written before stats were persisted restore without a
		// statistics block; rebuild one from the (restored or freshly
		// computed) profiles so the planner never regresses to guesses.
		if r.Stats == nil {
			r.Stats = profile.RelationStats(r, profs)
		}
	}
	if err := s.web.AddSource(db, structure); err != nil {
		return err
	}
	s.sources[name] = db
	s.records[name] = dup.RecordsFromSource(db, structure)
	// Bucket the records into the incremental duplicate index without
	// comparing: the stored duplicate links replay from the repository,
	// and later AddSource calls compare against these records.
	s.dupIndex.Add(s.records[name])
	for _, r := range db.Relations() {
		s.warehouse.Put(qualifiedClone(r, name, idxCols[strings.ToLower(r.Name)]))
	}
	if !s.opts.DisableSearchIndex {
		s.indexSource(db, structure, profs)
	}
	tuples := ss.TupleCount
	if tuples == 0 {
		tuples = db.TotalTuples()
	}
	s.Repo.RegisterSource(&metadata.SourceMeta{
		Name:       db.Name,
		Structure:  structure,
		Profiles:   profs,
		TupleCount: tuples,
	})
	return nil
}

// Load rebuilds a System from a single-file snapshot.
func Load(opts Options, snap *store.Snapshot) (*System, error) {
	sys := New(opts)
	for i := range snap.Sources {
		if err := sys.installRestored(&snap.Sources[i]); err != nil {
			return nil, err
		}
	}
	// Feedback first, so removed links cannot re-enter.
	for _, l := range snap.Removed {
		sys.Repo.RemoveLink(l)
	}
	for _, l := range snap.Links {
		sys.Repo.AddLink(l)
	}
	return sys, nil
}

// Recover rebuilds a System from an open data directory: the last
// checkpoint's segments are installed, then the WAL tail — every
// mutation acknowledged after that checkpoint — replays through the
// normal mutators (with journaling disabled; the records are already on
// disk). Replayed sources are marked dirty so the next checkpoint folds
// them into segments. Returns the number of WAL records replayed.
func Recover(opts Options, dir *store.Dir) (*System, int, error) {
	snap, err := dir.Load()
	if err != nil {
		return nil, 0, err
	}
	sys := New(opts)
	sys.durable = &durable{dir: dir, dirty: make(map[string]bool)}
	// Seed the mutation sequence where the checkpoint left it; replaying
	// the WAL tail advances it record by record (applyWAL syncs it to
	// each frame's header sequence).
	sys.seq.Store(dir.ManifestCopy().RecordSeq)
	for i := range snap.Sources {
		if err := sys.installRestored(&snap.Sources[i]); err != nil {
			return nil, 0, err
		}
	}
	for _, l := range snap.Removed {
		sys.Repo.RemoveLink(l)
	}
	for _, l := range snap.Links {
		sys.Repo.AddLink(l)
	}
	n, err := dir.Replay(sys.applyWAL)
	if err != nil {
		return nil, n, err
	}
	d := sys.durable
	d.mu.Lock()
	d.records = n
	d.logging = true
	d.mu.Unlock()
	return sys, n, nil
}

// applyWAL re-applies one journaled mutation during recovery.
func (s *System) applyWAL(rec *store.WALRecord) error {
	switch rec.Type {
	case store.RecAddSource:
		if rec.Source == nil {
			return errors.New("core: AddSource WAL record without a snapshot")
		}
		if err := s.installRestored(rec.Source); err != nil {
			return err
		}
		// The candidate links pass through the repository's dedup and
		// feedback filters, exactly as the original commit's did (feedback
		// journaled earlier in the WAL has already replayed).
		for _, l := range rec.Links {
			s.Repo.AddLink(l)
		}
		s.durable.mu.Lock()
		s.durable.dirty[strings.ToLower(rec.Source.Name)] = true
		s.durable.mu.Unlock()
	case store.RecAppend:
		if rec.Source == nil {
			return errors.New("core: Append WAL record without a snapshot")
		}
		if err := s.applyAppend(rec.Source, rec.Links); err != nil {
			return err
		}
		s.durable.mu.Lock()
		s.durable.dirty[strings.ToLower(rec.Source.Name)] = true
		s.durable.mu.Unlock()
	case store.RecDML:
		if _, err := s.Exec(rec.SQL); err != nil {
			return fmt.Errorf("core: replaying DML %q: %w", rec.SQL, err)
		}
	case store.RecRemoveLink:
		if rec.Link == nil {
			return errors.New("core: RemoveLink WAL record without a link")
		}
		if _, err := s.RemoveLinkFeedback(*rec.Link); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: unknown WAL record type %d", rec.Type)
	}
	// The mutator above already advanced the sequence by one; syncing to
	// the frame's own header sequence keeps replay exact even if the two
	// ever disagree (the on-disk numbering is authoritative).
	if rec.Seq != 0 {
		s.seq.Store(rec.Seq)
	}
	return nil
}

// ApplyReplicated journals one frame received from a replication
// primary verbatim into the local WAL and applies its decoded record
// through the recovery mutators. The caller serializes it with every
// other mutator (package aladin holds its write lock) — journaling and
// applying under the same exclusion keeps the local directory's record
// sequences dense across replica checkpoints, so a restarted replica
// recovers from its own segments + WAL tail and resumes streaming at
// exactly SnapshotSeq()+1.
//
// The system must be in DisableJournal mode: the mutators applying the
// record would otherwise journal a second copy.
func (s *System) ApplyReplicated(frame []byte, rec *store.WALRecord) error {
	d := s.durable
	if d != nil {
		if err := d.dir.Append(frame, rec.Seq); err != nil {
			return fmt.Errorf("%w: replica journal: %w", ErrDurability, err)
		}
	}
	if err := s.applyWAL(rec); err != nil {
		return err
	}
	if d != nil {
		// applyWAL skips the records counter (journaling is off); count
		// the mutation here so checkpoint thresholds see replica traffic.
		d.mu.Lock()
		d.records++
		d.mu.Unlock()
	}
	return nil
}
