package core

import (
	"context"
	"io"
	"testing"

	"repro/internal/datagen"
	"repro/internal/rel"
	"repro/internal/sqlx"
)

// TestQualifiedCloneKeepsDeclaredFKIndexes: warehouse clones are renamed
// to "<source>_<relation>", and EnsureIndexes matches declared FK
// endpoints by relation name — so indexes must be built before the
// rename or declared-FK columns silently lose theirs.
func TestQualifiedCloneKeepsDeclaredFKIndexes(t *testing.T) {
	r := rel.NewRelation("structure", rel.TextSchema("structure_id", "code"))
	r.ForeignKeys = append(r.ForeignKeys, rel.ForeignKey{
		FromRelation: "chain", FromColumn: "structure_id",
		ToRelation: "structure", ToColumn: "structure_id",
	})
	r.AppendStrings("1", "a")
	q := qualifiedClone(r, "pdb", nil)
	if q.Name != "pdb_structure" {
		t.Fatalf("clone name = %q", q.Name)
	}
	if q.HashIndex("structure_id") == nil {
		t.Error("declared FK endpoint lost its index on the qualified clone")
	}
}

// TestWarehouseIndexedAfterAddSource: PrepareAdd builds hash indexes on
// the discovered accession and FK endpoint columns off-lock, and
// CommitAdd publishes them — so point queries over the warehouse probe
// an index instead of scanning.
func TestWarehouseIndexedAfterAddSource(t *testing.T) {
	corpus := datagen.Generate(datagen.Config{Seed: 3, Proteins: 20})
	sys := New(Options{DisableSearchIndex: true})
	for _, name := range []string{"swissprot", "pdb"} {
		if _, err := sys.AddSource(corpus.Source(name)); err != nil {
			t.Fatal(err)
		}
	}
	db := sys.WarehouseSnapshot()
	protein := db.Relation("swissprot_protein")
	if protein == nil {
		t.Fatal("missing swissprot_protein")
	}
	if protein.HashIndex("accession") == nil {
		t.Error("discovered accession column not indexed")
	}
	if protein.HashIndex("protein_id") == nil {
		t.Error("discovered FK endpoint protein_id not indexed")
	}
	if db.Relation("swissprot_sequence").HashIndex("protein_id") == nil {
		t.Error("FK source column sequence.protein_id not indexed")
	}

	// The source-side relations (browse path) are indexed too.
	srcProtein := corpus.Source("swissprot").Relation("protein")
	if srcProtein.HashIndex("accession") == nil {
		t.Error("source relation accession not indexed for browse lookups")
	}

	// Acceptance probe: pk point query and FK join probe report Scanned
	// proportional to the result size, not the relation size.
	for _, tc := range []struct {
		q          string
		rows       int
		maxScanned int64
	}{
		{`SELECT entry_name FROM swissprot_protein WHERE accession = 'P10002'`, 1, 1},
		{`SELECT p.accession, s.pdb_code
		  FROM swissprot_protein p
		  JOIN pdb_structure s ON s.structure_id = p.protein_id
		  WHERE p.accession = 'P10002'`, 1, 3},
	} {
		plan, err := sqlx.Prepare(db, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		cur, err := plan.Open(context.Background(), db)
		if err != nil {
			t.Fatal(err)
		}
		rows := 0
		for {
			_, err := cur.Next(context.Background())
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			rows++
		}
		if rows != tc.rows {
			t.Errorf("%s: %d rows, want %d", tc.q, rows, tc.rows)
		}
		if cur.Scanned() > tc.maxScanned {
			t.Errorf("%s: scanned %d tuples over a %d-tuple relation, want <= %d",
				tc.q, cur.Scanned(), protein.Cardinality(), tc.maxScanned)
		}
		text, err := plan.Explain(db)
		if err != nil {
			t.Fatal(err)
		}
		if len(text) == 0 {
			t.Error("empty Explain")
		}
	}
}
