package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/metadata"
	"repro/internal/rel"
	"repro/internal/store"
)

// This file glues a System to a durable data directory (store.Dir):
// mutations are journaled to the write-ahead log before they are
// acknowledged, and checkpoints persist only the sources dirtied since
// the previous one. The locking discipline mirrors PR 2's prepare/commit
// split: everything expensive (gob encoding of segments) runs off-lock
// against immutable snapshots; only the WAL append and the dirty-set
// swap happen under the caller's mutation lock.

// durable is the per-System durability state. The System's own mutators
// run serialized by the caller (package aladin's write lock); the inner
// mutex exists because BeginCheckpoint swaps the dirty set under a READ
// lock (it excludes mutators, not other readers) and stats readers look
// at the counters concurrently.
type durable struct {
	dir *store.Dir

	mu      sync.Mutex
	dirty   map[string]bool
	records int
	// logging is false while recovery replays the WAL through the normal
	// mutators: the records being re-applied are already on disk.
	logging bool
}

// ErrDurability marks failures of the durability layer itself — WAL
// append or checkpoint IO — as opposed to invalid input; callers must
// not acknowledge the mutation (test with errors.Is).
var ErrDurability = errors.New("core: durability failure")

func (d *durable) remerge(dirty map[string]bool, records int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for k := range dirty {
		d.dirty[k] = true
	}
	d.records += records
}

// AttachDurable connects the system to an open data directory: from now
// on every acknowledged mutation is journaled in its WAL. Call before
// any mutation (package aladin attaches at Open).
func (s *System) AttachDurable(dir *store.Dir) {
	s.durable = &durable{dir: dir, dirty: make(map[string]bool), logging: true}
}

// Durable reports whether a data directory is attached.
func (s *System) Durable() bool { return s.durable != nil }

// DurableDir returns the attached data directory, nil if none.
func (s *System) DurableDir() *store.Dir {
	if d := s.durable; d != nil {
		return d.dir
	}
	return nil
}

// MarkAllDirty flags every registered source for the next checkpoint —
// used when seeding a fresh data directory from an imported snapshot.
func (s *System) MarkAllDirty() {
	d := s.durable
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, m := range s.Repo.Sources() {
		d.dirty[strings.ToLower(m.Name)] = true
	}
}

// logFrame assigns the mutation its global sequence number, journals
// the pre-encoded WAL frame (durable systems), and marks the given
// sources dirty for the next checkpoint. Without an attached directory
// only the sequence advances; during recovery replay the append is
// skipped (the record is already on disk) but sequence and dirty
// marking apply. An error means the mutation was NOT made durable and
// must not be acknowledged — the sequence is not consumed.
func (s *System) logFrame(frame []byte, dirty ...string) error {
	seq := s.seq.Load() + 1
	d := s.durable
	if d == nil {
		s.seq.Store(seq)
		return nil
	}
	if d.logging {
		if err := d.dir.Append(frame, seq); err != nil {
			return fmt.Errorf("%w: write-ahead log: %w", ErrDurability, err)
		}
	}
	s.seq.Store(seq)
	d.mu.Lock()
	if d.logging {
		d.records++
	}
	for _, n := range dirty {
		d.dirty[strings.ToLower(n)] = true
	}
	d.mu.Unlock()
	return nil
}

// logRecord encodes and journals one WAL record (see logFrame).
func (s *System) logRecord(rec *store.WALRecord, dirty ...string) error {
	d := s.durable
	var frame []byte
	if d != nil && d.logging {
		var err error
		if frame, err = store.EncodeRecord(rec); err != nil {
			return err
		}
	}
	return s.logFrame(frame, dirty...)
}

// SnapshotSeq returns the global sequence of the last applied mutation
// — the "version" half of the snapshot ID. 0 means an empty history.
func (s *System) SnapshotSeq() uint64 { return s.seq.Load() }

// SnapshotID returns the checkpoint generation (0 without a data
// directory) and the last applied mutation sequence. Together they name
// the exact warehouse state a reader observed.
func (s *System) SnapshotID() (gen, seq uint64) {
	if d := s.durable; d != nil {
		gen = d.dir.Stats().Gen
	}
	return gen, s.seq.Load()
}

// DisableJournal permanently switches off WAL appends from the normal
// mutators while keeping sequence, dirty-set and checkpoint machinery
// live. Replicas run this way: the replication client journals the
// primary's frames verbatim (ApplyReplicated), so the mutators applying
// them must not journal a second copy.
func (s *System) DisableJournal() {
	d := s.durable
	if d == nil {
		return
	}
	d.mu.Lock()
	d.logging = false
	d.mu.Unlock()
}

// addSourceRecord builds the WAL record describing a prepared source
// addition: the full snapshot plus every candidate link its commit will
// store. Replaying the candidates through the repository's dedup and
// feedback filters reproduces exactly the stored set.
func (s *System) addSourceRecord(p *PendingAdd) *store.WALRecord {
	links := make([]metadata.Link, 0, len(p.links)+len(p.ontLinks)+len(p.dupLinks))
	links = append(links, p.links...)
	links = append(links, p.ontLinks...)
	links = append(links, p.dupLinks...)
	return &store.WALRecord{
		Type: store.RecAddSource,
		Source: &store.SourceSnapshot{
			Name:       p.db.Name,
			Relations:  store.SnapshotDatabase(p.db),
			Structure:  p.structure,
			Profiles:   p.profs,
			TupleCount: p.db.TotalTuples(),
		},
		Links: links,
	}
}

// WALRecordsSinceCheckpoint returns the number of mutations journaled
// (or replayed at recovery) since the last completed checkpoint — the
// replay work a crash right now would incur.
func (s *System) WALRecordsSinceCheckpoint() int {
	d := s.durable
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.records
}

// PendingCheckpoint is a captured-but-unwritten checkpoint: immutable
// references taken under the mutation lock by BeginCheckpoint, encoded
// and written off-lock by WriteCheckpoint.
type PendingCheckpoint struct {
	data     *store.CheckpointData
	dirtySet map[string]bool
	dirtyDBs map[string]*rel.Database
	metas    map[string]*metadata.SourceMeta
	records  int
}

// Dirty returns the number of sources this checkpoint will rewrite.
func (cp *PendingCheckpoint) Dirty() int { return len(cp.dirtyDBs) }

// BeginCheckpoint captures everything the checkpoint persists and
// rotates the WAL. It must run excluding mutators (package aladin holds
// its read lock, which mutators take exclusively) but does no encoding
// or IO beyond creating the next WAL file: relations are immutable once
// published, so shallow-cloned references stay consistent off-lock.
func (s *System) BeginCheckpoint() (*PendingCheckpoint, error) {
	d := s.durable
	if d == nil {
		return nil, errors.New("core: no data directory attached")
	}
	d.mu.Lock()
	dirty := d.dirty
	records := d.records
	d.dirty = make(map[string]bool)
	d.records = 0
	d.mu.Unlock()

	seq, err := d.dir.Rotate()
	if err != nil {
		d.remerge(dirty, records)
		return nil, fmt.Errorf("core: rotating WAL: %w", err)
	}
	cp := &PendingCheckpoint{
		// The record sequence is exact here: BeginCheckpoint excludes
		// mutators, so s.seq is precisely the last record before the
		// rotation — the new manifest anchors the counter there.
		data:     &store.CheckpointData{WALSeq: seq, RecordSeq: s.seq.Load()},
		dirtySet: dirty,
		dirtyDBs: make(map[string]*rel.Database),
		metas:    make(map[string]*metadata.SourceMeta),
		records:  records,
	}
	for _, m := range s.Repo.Sources() {
		name := strings.ToLower(m.Name)
		cp.data.Order = append(cp.data.Order, m.Name)
		if dirty[name] && s.sources[name] != nil {
			// ShallowClone pins the relation set: later DML replaces
			// relations in the live database but never mutates published
			// ones, so the clone encodes consistently off-lock.
			cp.dirtyDBs[name] = s.sources[name].ShallowClone()
			cp.metas[name] = m
		}
	}
	cp.data.Links = s.Repo.AllLinks()
	cp.data.Removed = s.Repo.RemovedLinks()
	return cp, nil
}

// WriteCheckpoint encodes the dirty sources' segments and completes the
// checkpoint (segments, links, manifest swap, WAL trim). Runs entirely
// off-lock. On failure the captured dirty set is merged back so the
// next checkpoint retries those sources.
func (s *System) WriteCheckpoint(cp *PendingCheckpoint) error {
	d := s.durable
	if d == nil {
		return errors.New("core: no data directory attached")
	}
	for _, name := range cp.data.Order {
		key := strings.ToLower(name)
		db, ok := cp.dirtyDBs[key]
		if !ok {
			continue
		}
		m := cp.metas[key]
		cp.data.Dirty = append(cp.data.Dirty, store.SourceSnapshot{
			Name:       m.Name,
			Relations:  store.SnapshotDatabase(db),
			Structure:  m.Structure,
			Profiles:   m.Profiles,
			TupleCount: m.TupleCount,
		})
	}
	if err := d.dir.CompleteCheckpoint(cp.data); err != nil {
		d.remerge(cp.dirtySet, cp.records)
		return err
	}
	return nil
}

// DurabilityStats reports the durability state for monitoring; ok is
// false when no data directory is attached.
type DurabilityStats struct {
	Dir            string
	Gen            uint64
	WALSeq         uint64
	WALRecords     int
	WALBytes       int64
	DirtySources   int
	Sources        int
	LastCheckpoint time.Time
}

// DurabilityStats returns the current durability state.
func (s *System) DurabilityStats() (DurabilityStats, bool) {
	d := s.durable
	if d == nil {
		return DurabilityStats{}, false
	}
	ds := d.dir.Stats()
	d.mu.Lock()
	dirty := len(d.dirty)
	records := d.records
	d.mu.Unlock()
	return DurabilityStats{
		Dir:            ds.Path,
		Gen:            ds.Gen,
		WALSeq:         ds.WALSeq,
		WALRecords:     records,
		WALBytes:       ds.WALBytes,
		DirtySources:   dirty,
		Sources:        ds.Sources,
		LastCheckpoint: ds.LastCheckpoint,
	}, true
}
