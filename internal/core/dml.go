package core

import (
	"fmt"
	"strings"

	"repro/internal/rel"
	"repro/internal/sqlx"
	"repro/internal/store"
)

// Exec executes one INSERT, UPDATE or DELETE statement against a
// warehouse relation named "<source>_<relation>" (the same names Query
// uses). The §6.2 change policy applies: affected rows are counted via
// RecordChanges, and the derived artifacts (links, search index,
// duplicate records) intentionally go stale until Reanalyze — ALADIN
// re-derives on threshold, not per statement.
//
// Relations are immutable once published (streaming cursors and the
// off-lock checkpointer depend on it), so DML is copy-on-write: the
// statement runs on a private clone which is published only after the
// statement — and its WAL record — succeeded. Callers serving
// concurrent readers hold their write lock for the whole call.
func (s *System) Exec(sql string) (*sqlx.Result, error) {
	stmt, err := sqlx.Parse(sql)
	if err != nil {
		return nil, err
	}
	var table string
	switch st := stmt.(type) {
	case *sqlx.InsertStmt:
		table = st.Table
	case *sqlx.UpdateStmt:
		table = st.Table
	case *sqlx.DeleteStmt:
		table = st.Table
	case *sqlx.SelectStmt:
		return nil, fmt.Errorf("core: Exec handles INSERT/UPDATE/DELETE; use Query for SELECT")
	default:
		return nil, fmt.Errorf("core: statement %T cannot be executed against the warehouse", stmt)
	}

	srcKey, relName, err := s.resolveWarehouseTable(table)
	if err != nil {
		return nil, err
	}
	srcDB := s.sources[srcKey]
	orig := srcDB.Relation(relName)
	if orig == nil {
		return nil, fmt.Errorf("core: source %q has no relation %q", srcKey, relName)
	}
	meta := s.Repo.Source(srcKey)
	if meta == nil {
		return nil, fmt.Errorf("core: no metadata for source %q", srcKey)
	}

	// Run the statement on a clone inside a shallow-cloned warehouse, so
	// subqueries see every other warehouse relation while the published
	// relation stays untouched.
	clone := orig.Clone()
	clone.Name = table
	env := s.warehouse.ShallowClone()
	env.Put(clone)
	res, err := sqlx.ExecStmt(env, stmt)
	if err != nil {
		return nil, err
	}
	if res.Affected == 0 {
		return res, nil
	}

	// Journal before publishing: an acknowledged statement must survive a
	// crash. On log failure nothing was published — the statement simply
	// did not happen.
	if err := s.logRecord(&store.WALRecord{
		Type: store.RecDML, SourceName: meta.Name, SQL: sql,
	}, meta.Name); err != nil {
		return nil, err
	}

	clone.Name = orig.Name
	idxCols := indexColumns(meta.Structure)
	buildRelationIndexes(clone, idxCols[strings.ToLower(clone.Name)])
	// INSERTs maintained the clone's stats incrementally through Append;
	// UPDATE/DELETE mutate tuples in place, so rebuild from scratch.
	switch stmt.(type) {
	case *sqlx.UpdateStmt, *sqlx.DeleteStmt:
		clone.Stats = rel.BuildStats(clone)
	}
	srcDB.Put(clone)
	s.warehouse.Put(qualifiedClone(clone, srcKey, idxCols[strings.ToLower(clone.Name)]))
	s.Repo.RecordChanges(meta.Name, res.Affected)
	return res, nil
}

// NeedsReanalysis reports whether accumulated DML changes on source have
// crossed the §6.2 re-analysis threshold.
func (s *System) NeedsReanalysis(source string) bool {
	return s.Repo.NeedsReanalysis(source, s.opts.ChangeThreshold)
}

// resolveWarehouseTable splits a "<source>_<relation>" warehouse name
// into its source key and relation name by longest-source-prefix match
// (source names may themselves contain underscores).
func (s *System) resolveWarehouseTable(table string) (srcKey, relName string, err error) {
	name := strings.ToLower(table)
	for key, db := range s.sources {
		if !strings.HasPrefix(name, key+"_") {
			continue
		}
		rest := name[len(key)+1:]
		if db.Relation(rest) == nil {
			continue
		}
		if len(key) > len(srcKey) {
			srcKey, relName = key, rest
		}
	}
	if srcKey == "" {
		return "", "", fmt.Errorf("core: unknown warehouse relation %q (expected <source>_<relation>)", table)
	}
	return srcKey, relName, nil
}
