package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/flatfile"
	"repro/internal/metadata"
)

// buildEMBLText synthesizes a Swiss-Prot-style flat file for n proteins.
func buildEMBLText(n int) string {
	var sb strings.Builder
	names := []string{"HBA_HUMAN", "MYG_HUMAN", "INS_RAT", "K1C9_MOUSE", "CYC_BOVIN",
		"ALBU_HUMAN", "LYSC_CHICK", "TRY_PIG"}
	words := []string{"oxygen transport", "muscle storage", "glucose regulation",
		"structural filament", "electron transfer", "osmotic carrier",
		"cell wall hydrolysis", "protein digestion"}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "ID   %s   Reviewed;   141 AA.\n", names[i%len(names)])
		fmt.Fprintf(&sb, "AC   P%05d;\n", 80000+i)
		fmt.Fprintf(&sb, "DE   Protein number %d involved in %s.\n", i, words[i%len(words)])
		fmt.Fprintf(&sb, "OS   Homo sapiens (Human).\n")
		fmt.Fprintf(&sb, "KW   Keyword%d; Shared.\n", i%3)
		fmt.Fprintf(&sb, "SQ   SEQUENCE\n")
		fmt.Fprintf(&sb, "     %s\n", emblSeq(i))
		sb.WriteString("//\n")
	}
	return sb.String()
}

func emblSeq(i int) string {
	bases := "ACGT"
	out := make([]byte, 80)
	for j := range out {
		out[j] = bases[(i*11+j*7)%4]
	}
	return string(out)
}

// buildGenBankText synthesizes GenBank records whose /db_xref qualifiers
// reference the EMBL accessions.
func buildGenBankText(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "LOCUS       NM_%06d  626 bp  mRNA  linear\n", 1000+i)
		fmt.Fprintf(&sb, "DEFINITION  Homo sapiens gene %d transcript variant.\n", i)
		fmt.Fprintf(&sb, "ACCESSION   NM_%06d\n", 1000+i)
		fmt.Fprintf(&sb, "SOURCE      Homo sapiens\n")
		fmt.Fprintf(&sb, "FEATURES             Location/Qualifiers\n")
		fmt.Fprintf(&sb, "     CDS             1..400\n")
		fmt.Fprintf(&sb, "                     /db_xref=\"UniProtKB:P%05d\"\n", 80000+i)
		fmt.Fprintf(&sb, "ORIGIN\n")
		fmt.Fprintf(&sb, "        1 %s\n", strings.ToLower(emblSeq(i)))
		sb.WriteString("//\n")
	}
	return sb.String()
}

// TestRealFormatsEndToEnd integrates actual exchange-format text through
// the full §4.1 -> §4.5 pipeline: parse, discover structure, link.
func TestRealFormatsEndToEnd(t *testing.T) {
	const n = 8
	swissprot, err := flatfile.ParseEMBL(strings.NewReader(buildEMBLText(n)), "swissprot")
	if err != nil {
		t.Fatal(err)
	}
	genbank, err := flatfile.ParseGenBank(strings.NewReader(buildGenBankText(n)), "genbank")
	if err != nil {
		t.Fatal(err)
	}
	sys := New(Options{})
	rep, err := sys.AddSource(swissprot)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Structure.Primary != "entry" || rep.Structure.PrimaryAccession != "accession" {
		t.Fatalf("swissprot structure = %q/%q", rep.Structure.Primary, rep.Structure.PrimaryAccession)
	}
	rep, err = sys.AddSource(genbank)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Structure.Primary != "entry" {
		t.Fatalf("genbank primary = %q (scores %v)", rep.Structure.Primary, rep.Structure.PrimaryScores)
	}

	// The /db_xref="UniProtKB:Pxxxxx" composite values must resolve to
	// swissprot accessions, producing one xref link per record.
	xrefs := sys.Repo.Links(metadata.LinkXRef)
	if len(xrefs) != n {
		t.Fatalf("xref links = %d want %d (%v)", len(xrefs), n, xrefs)
	}
	composite := false
	for _, x := range rep.XRefAttributes {
		if x.FromRelation == "dbxref" && x.Composite {
			composite = true
		}
	}
	if !composite {
		t.Errorf("dbxref attribute should be composite-encoded: %+v", rep.XRefAttributes)
	}

	// Identical ORIGIN sequences must also produce sequence links.
	if nseq := sys.Repo.LinkCount(metadata.LinkSequence); nseq < n {
		t.Errorf("sequence links = %d want >= %d", nseq, n)
	}

	// Cross-source SQL over both parsed schemas.
	res, err := sys.Query(`
		SELECT s.accession, g.xref
		FROM swissprot_entry s
		JOIN genbank_dbxref g ON g.xref = 'UniProtKB:' || s.accession
		ORDER BY s.accession`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != n {
		t.Errorf("join rows = %d", len(res.Rows))
	}
}
