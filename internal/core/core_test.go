package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/metadata"
	"repro/internal/rel"
	"repro/internal/search"
)

// buildSystem integrates the full synthetic corpus.
func buildSystem(t *testing.T, cfg datagen.Config, opts Options) (*System, *datagen.Corpus) {
	t.Helper()
	corpus := datagen.Generate(cfg)
	sys := New(opts)
	for _, src := range corpus.Sources {
		if _, err := sys.AddSource(src); err != nil {
			t.Fatalf("AddSource(%s): %v", src.Name, err)
		}
	}
	return sys, corpus
}

func defaultCfg() datagen.Config {
	return datagen.Config{Seed: 11, Proteins: 24}
}

func defaultOpts() Options {
	return Options{OntologySources: []string{"go"}}
}

func TestPipelinePrimaryRelationsMatchGold(t *testing.T) {
	sys, corpus := buildSystem(t, defaultCfg(), defaultOpts())
	for _, m := range sys.Repo.Sources() {
		name := strings.ToLower(m.Name)
		if got, want := strings.ToLower(m.Structure.Primary), corpus.Gold.Primary[name]; got != want {
			t.Errorf("%s primary = %q want %q (scores %v)", name, got, want, m.Structure.PrimaryScores)
		}
		if got, want := strings.ToLower(m.Structure.PrimaryAccession), corpus.Gold.Accession[name]; got != want {
			t.Errorf("%s accession = %q want %q", name, got, want)
		}
	}
}

func TestPipelineXRefPrecisionRecall(t *testing.T) {
	sys, corpus := buildSystem(t, defaultCfg(), defaultOpts())
	all := sys.Repo.AllLinks()
	gold := append([]datagen.GoldLink{}, corpus.Gold.XRefs...)
	gold = append(gold, corpus.Gold.TermXRefs...)
	pr := eval.CompareLinks(all, metadata.LinkXRef, gold)
	if pr.Recall() < 0.9 {
		t.Errorf("xref recall = %v (%+v)", pr.Recall(), pr)
	}
	if pr.Precision() < 0.9 {
		t.Errorf("xref precision = %v (%+v)", pr.Precision(), pr)
	}
}

func TestPipelineSequenceLinks(t *testing.T) {
	sys, corpus := buildSystem(t, defaultCfg(), defaultOpts())
	pr := eval.CompareLinks(sys.Repo.AllLinks(), metadata.LinkSequence, corpus.Gold.Homologs)
	// Zero mutation: every homolog pair must be found exactly.
	if pr.Recall() < 0.95 {
		t.Errorf("homolog recall = %v (%+v)", pr.Recall(), pr)
	}
}

func TestPipelineDuplicates(t *testing.T) {
	sys, corpus := buildSystem(t, defaultCfg(), defaultOpts())
	pr := eval.CompareLinks(sys.Repo.AllLinks(), metadata.LinkDuplicate, corpus.Gold.Duplicates)
	if pr.Recall() < 0.8 {
		t.Errorf("duplicate recall = %v (%+v)", pr.Recall(), pr)
	}
	if pr.Precision() < 0.8 {
		t.Errorf("duplicate precision = %v (%+v)", pr.Precision(), pr)
	}
}

func TestPipelineOntologyLinksDerived(t *testing.T) {
	sys, _ := buildSystem(t, defaultCfg(), defaultOpts())
	if n := sys.Repo.LinkCount(metadata.LinkOntology); n == 0 {
		t.Error("no derived ontology links")
	}
}

func TestDuplicateSourceRejected(t *testing.T) {
	sys, corpus := buildSystem(t, defaultCfg(), defaultOpts())
	if _, err := sys.AddSource(corpus.Sources[0]); err == nil {
		t.Error("re-adding a source should fail")
	}
}

func TestQueryCrossSource(t *testing.T) {
	sys, _ := buildSystem(t, defaultCfg(), defaultOpts())
	res, err := sys.Query(`
		SELECT COUNT(*) FROM swissprot_protein`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0][0].AsInt(); n != 24 {
		t.Errorf("protein count = %d", n)
	}
	// Cross-source join through the warehouse.
	res, err = sys.Query(`
		SELECT p.accession, s.pdb_code
		FROM swissprot_protein p
		JOIN pdb_structure s ON s.structure_id = p.protein_id
		LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("join rows = %d", len(res.Rows))
	}
}

func TestSearchAccessModes(t *testing.T) {
	sys, _ := buildSystem(t, defaultCfg(), defaultOpts())
	rs := sys.Search("hemoglobin", search.Filter{}, 5)
	if len(rs) == 0 {
		t.Fatal("no search results")
	}
	// Focused search: only swissprot.
	rs = sys.Search("hemoglobin", search.Filter{Sources: []string{"swissprot"}}, 10)
	for _, r := range rs {
		if !strings.EqualFold(r.Document.Object.Source, "swissprot") {
			t.Errorf("source filter leak: %v", r.Document.Object)
		}
	}
}

func TestBrowseObjectView(t *testing.T) {
	sys, _ := buildSystem(t, defaultCfg(), defaultOpts())
	objs := sys.Objects("swissprot")
	if len(objs) != 24 {
		t.Fatalf("objects = %d", len(objs))
	}
	v, err := sys.Browse(objs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Fields) == 0 {
		t.Error("empty fields")
	}
	if len(v.Annotations) == 0 {
		t.Error("no secondary-object annotations")
	}
	if len(v.Linked) == 0 {
		t.Error("no links in browse view")
	}
}

func TestRelatedRanking(t *testing.T) {
	sys, corpus := buildSystem(t, defaultCfg(), defaultOpts())
	start := metadata.ObjectRef{
		Source: "swissprot", Relation: "protein",
		Accession: "P10000",
	}
	related := sys.Related(start, 2, 5)
	if len(related) == 0 {
		t.Fatal("no related objects")
	}
	// The PDB structure of the same protein should be strongly related.
	found := false
	for _, r := range related {
		for _, g := range corpus.Gold.XRefs {
			if g.FromAccession == "P10000" && r.Ref.Accession == g.ToAccession {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("gold xref target not among related: %v", related)
	}
}

func TestUserFeedbackRemovesLink(t *testing.T) {
	sys, _ := buildSystem(t, defaultCfg(), defaultOpts())
	links := sys.Repo.Links(metadata.LinkXRef)
	if len(links) == 0 {
		t.Fatal("no links")
	}
	target := links[0]
	if ok, err := sys.RemoveLinkFeedback(target); err != nil || !ok {
		t.Fatalf("remove failed (ok=%v, err=%v)", ok, err)
	}
	if sys.Repo.LinkCount(metadata.LinkXRef) != len(links)-1 {
		t.Error("link count unchanged")
	}
	// §6.2: re-analysis must not resurrect the removed link.
	if _, err := sys.Reanalyze(target.From.Source); err != nil {
		t.Fatal(err)
	}
	for _, l := range sys.Repo.Links(metadata.LinkXRef) {
		if l.From == target.From && l.To == target.To {
			t.Error("removed link resurrected by re-analysis")
		}
	}
}

func TestChangeThresholdTriggersReanalysis(t *testing.T) {
	sys, _ := buildSystem(t, defaultCfg(), defaultOpts())
	total := sys.Repo.Source("swissprot").TupleCount
	if sys.RecordChanges("swissprot", total/20) {
		t.Error("5% churn should not trigger at 10% threshold")
	}
	if !sys.RecordChanges("swissprot", total/10) {
		t.Error("15% cumulative churn should trigger")
	}
	if _, err := sys.Reanalyze("swissprot"); err != nil {
		t.Fatal(err)
	}
	if sys.RecordChanges("swissprot", 0) {
		t.Error("counter should reset after re-analysis")
	}
}

func TestReanalyzeUnknownSource(t *testing.T) {
	sys := New(defaultOpts())
	if _, err := sys.Reanalyze("nope"); err == nil {
		t.Error("expected error")
	}
}

func TestNoPrimarySourceFails(t *testing.T) {
	sys := New(defaultOpts())
	// A digits-only source has no accession candidates (§4.2), so no
	// primary relation can be found.
	db := rel.NewDatabase("digits")
	r := db.Create("t", rel.TextSchema("id", "n"))
	for i := 0; i < 5; i++ {
		r.AppendRaw(itoa(i), itoa(i*7))
	}
	if _, err := sys.AddSource(db); err == nil {
		t.Error("source without primary relation should fail")
	}
}

func itoa(i int) string { return strconv.Itoa(i) }

// TestFailedAddSourceUnwindsPartialState injects failures after the
// link-discovery and duplicate-detection stages and asserts that a failed
// AddSource leaves Sources(), WebStats() and the link repository exactly
// as they were — and that the same source integrates cleanly afterwards.
func TestFailedAddSourceUnwindsPartialState(t *testing.T) {
	corpus := datagen.Generate(defaultCfg())
	sys := New(defaultOpts())
	if _, err := sys.AddSource(corpus.Source("swissprot")); err != nil {
		t.Fatal(err)
	}
	wantSources := sys.Sources()
	wantWeb := sys.WebStats()
	wantLinks := sys.Repo.AllLinks()
	metadata.SortLinks(wantLinks)

	for _, stage := range []string{"link-discovery", "duplicate-detection"} {
		failAt := stage
		sys.failpoint = func(s string) error {
			if s == failAt {
				return fmt.Errorf("injected failure at %s", s)
			}
			return nil
		}
		if _, err := sys.AddSource(corpus.Source("pir")); err == nil {
			t.Fatalf("stage %s: expected injected error", stage)
		}
		if got := sys.Sources(); !reflect.DeepEqual(got, wantSources) {
			t.Errorf("stage %s: sources changed: %v -> %v", stage, wantSources, got)
		}
		if got := sys.WebStats(); !reflect.DeepEqual(got, wantWeb) {
			t.Errorf("stage %s: web stats changed: %+v -> %+v", stage, wantWeb, got)
		}
		gotLinks := sys.Repo.AllLinks()
		metadata.SortLinks(gotLinks)
		if !reflect.DeepEqual(gotLinks, wantLinks) {
			t.Errorf("stage %s: link repo changed: %d -> %d links", stage, len(wantLinks), len(gotLinks))
		}
		if sys.engine.Source("pir") != nil {
			t.Errorf("stage %s: engine retains half-integrated source", stage)
		}
		if _, ok := sys.records["pir"]; ok {
			t.Errorf("stage %s: duplicate records retained", stage)
		}
	}

	// After clearing the failpoint the unwound source must integrate as if
	// the failed attempts never happened: compare against a fresh system.
	sys.failpoint = nil
	if _, err := sys.AddSource(corpus.Source("pir")); err != nil {
		t.Fatalf("re-add after unwind: %v", err)
	}
	fresh := New(defaultOpts())
	freshCorpus := datagen.Generate(defaultCfg())
	for _, name := range []string{"swissprot", "pir"} {
		if _, err := fresh.AddSource(freshCorpus.Source(name)); err != nil {
			t.Fatal(err)
		}
	}
	got := linkEndpoints(sys.Repo.AllLinks())
	want := linkEndpoints(fresh.Repo.AllLinks())
	if !reflect.DeepEqual(got, want) {
		t.Errorf("links after unwound re-add differ from clean integration: %d vs %d", len(got), len(want))
	}
}

// linkEndpoints projects links onto their (type, endpoints) identity;
// confidences are summed in map iteration order and can differ in the
// last ulp between runs.
func linkEndpoints(ls []metadata.Link) []string {
	metadata.SortLinks(ls)
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = fmt.Sprintf("%s|%s|%s", l.Type, l.From, l.To)
	}
	return out
}

func TestAddReportTimingsAndStats(t *testing.T) {
	sys := New(defaultOpts())
	corpus := datagen.Generate(defaultCfg())
	rep, err := sys.AddSource(corpus.Sources[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Timings) != 5 {
		t.Errorf("timings = %v", rep.Timings)
	}
	if rep.Duration() <= 0 {
		t.Error("zero duration")
	}
	rep2, err := sys.AddSource(corpus.Sources[1])
	if err != nil {
		t.Fatal(err)
	}
	if rep2.LinksAdded["xref"] == 0 && rep2.LinksAdded["sequence"] == 0 {
		t.Errorf("second source should link to first: %v", rep2.LinksAdded)
	}
}

func TestIncrementalLinkCounts(t *testing.T) {
	// Links accumulate monotonically as sources are added.
	corpus := datagen.Generate(defaultCfg())
	sys := New(defaultOpts())
	prev := 0
	for _, src := range corpus.Sources {
		if _, err := sys.AddSource(src); err != nil {
			t.Fatal(err)
		}
		now := sys.Repo.LinkCount(-1)
		if now < prev {
			t.Errorf("link count shrank: %d -> %d", prev, now)
		}
		prev = now
	}
	if prev == 0 {
		t.Error("no links after full integration")
	}
}

func TestWebStatsAfterIntegration(t *testing.T) {
	sys, _ := buildSystem(t, defaultCfg(), defaultOpts())
	ws := sys.WebStats()
	if ws.Objects == 0 || ws.Links == 0 {
		t.Fatalf("stats = %+v", ws)
	}
	if ws.LinkedObjects > ws.Objects {
		t.Errorf("linked (%d) exceeds total (%d)", ws.LinkedObjects, ws.Objects)
	}
	if ws.LargestComponent < 4 {
		// Each protein world-entity links swissprot/pdb/pir/genbank/omim
		// variants together.
		t.Errorf("largest component = %d", ws.LargestComponent)
	}
}

func TestConflictsAPI(t *testing.T) {
	sys, corpus := buildSystem(t, datagen.Config{Seed: 11, Proteins: 24,
		Noise: datagen.Noise{DuplicateFieldNoise: 0.9}}, defaultOpts())
	g := corpus.Gold.Duplicates[0]
	a := metadata.ObjectRef{Source: g.FromSource, Relation: "protein", Accession: g.FromAccession}
	b := metadata.ObjectRef{Source: g.ToSource, Relation: "pirentry", Accession: g.ToAccession}
	conflicts, err := sys.Conflicts(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) == 0 {
		t.Error("no conflicts found despite 90% field noise")
	}
	if _, err := sys.Conflicts(a, metadata.ObjectRef{Source: "pir", Accession: "NOPE"}); err == nil {
		t.Error("missing object should error")
	}
}

// TestCanceledAddSourceLeavesStateUntouched cancels AddSourceContext at
// several points of the pipeline — before it starts, and mid-pipeline via
// failpoints that fire the cancel — and asserts the system equals its
// pre-call state each time.
func TestCanceledAddSourceLeavesStateUntouched(t *testing.T) {
	corpus := datagen.Generate(defaultCfg())
	sys := New(defaultOpts())
	if _, err := sys.AddSource(corpus.Source("swissprot")); err != nil {
		t.Fatal(err)
	}
	wantSources := sys.Sources()
	wantWeb := sys.WebStats()
	wantLinks := sys.Repo.AllLinks()
	metadata.SortLinks(wantLinks)
	wantSearch := sys.index.Len()

	check := func(label string, err error) {
		t.Helper()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", label, err)
		}
		if got := sys.Sources(); !reflect.DeepEqual(got, wantSources) {
			t.Errorf("%s: sources changed: %v -> %v", label, wantSources, got)
		}
		if got := sys.WebStats(); !reflect.DeepEqual(got, wantWeb) {
			t.Errorf("%s: web stats changed: %+v -> %+v", label, wantWeb, got)
		}
		gotLinks := sys.Repo.AllLinks()
		metadata.SortLinks(gotLinks)
		if !reflect.DeepEqual(gotLinks, wantLinks) {
			t.Errorf("%s: link repo changed: %d -> %d links", label, len(wantLinks), len(gotLinks))
		}
		if got := sys.index.Len(); got != wantSearch {
			t.Errorf("%s: search index changed: %d -> %d docs", label, wantSearch, got)
		}
		if sys.engine.Source("pir") != nil {
			t.Errorf("%s: engine retains canceled source", label)
		}
		if _, ok := sys.records["pir"]; ok {
			t.Errorf("%s: duplicate records retained", label)
		}
		if sys.dupIndex.Len() != len(sys.records["swissprot"]) {
			t.Errorf("%s: dup index retains canceled records", label)
		}
	}

	// Pre-canceled context: the pipeline must not run at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sys.AddSourceContext(ctx, corpus.Source("pir"))
	check("pre-canceled", err)

	// Mid-pipeline: the failpoint cancels the context after the named
	// stage completed; the next context check aborts and unwinds.
	for _, stage := range []string{"link-discovery", "duplicate-detection"} {
		ctx, cancel := context.WithCancel(context.Background())
		failAt := stage
		sys.SetFailpoint(func(s string) error {
			if s == failAt {
				cancel()
				return ctx.Err()
			}
			return nil
		})
		_, err := sys.AddSourceContext(ctx, corpus.Source("pir"))
		check("cancel-at-"+stage, err)
		sys.SetFailpoint(nil)
		cancel()
	}

	// After all the canceled attempts the source must integrate cleanly.
	if _, err := sys.AddSource(corpus.Source("pir")); err != nil {
		t.Fatalf("add after canceled attempts: %v", err)
	}
}

// TestPrepareCommitSplit exercises the snapshot-then-commit API directly:
// readers between Prepare and Commit see the old state, Commit publishes
// atomically, and Abort discards a prepared addition completely.
func TestPrepareCommitSplit(t *testing.T) {
	corpus := datagen.Generate(defaultCfg())
	sys := New(defaultOpts())
	if _, err := sys.AddSource(corpus.Source("swissprot")); err != nil {
		t.Fatal(err)
	}

	p, err := sys.PrepareAdd(context.Background(), corpus.Source("pir"))
	if err != nil {
		t.Fatal(err)
	}
	// Not yet committed: no access mode sees pir.
	if got := len(sys.Sources()); got != 1 {
		t.Fatalf("prepared-but-uncommitted source visible: %d sources", got)
	}
	if _, err := sys.Query("SELECT accession FROM pir_entry"); err == nil {
		t.Error("warehouse sees uncommitted source")
	}
	rep, err := sys.CommitAdd(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Structure.Primary == "" {
		t.Error("commit report missing structure")
	}
	if got := len(sys.Sources()); got != 2 {
		t.Fatalf("after commit: %d sources, want 2", got)
	}
	if _, err := sys.CommitAdd(p); err == nil {
		t.Error("double commit must fail")
	}

	// Abort: prepared state is discarded, and the source can be prepared
	// again afterwards (the dup index holds no leftover records).
	p2, err := sys.PrepareAdd(context.Background(), corpus.Source("pdb"))
	if err != nil {
		t.Fatal(err)
	}
	sys.Abort(p2)
	if got := len(sys.Sources()); got != 2 {
		t.Fatalf("aborted source visible: %d sources", got)
	}
	if _, err := sys.AddSource(corpus.Source("pdb")); err != nil {
		t.Fatalf("add after abort: %v", err)
	}
}
