// Package core assembles the ALADIN system (§3): a warehouse of
// relational sources plus the five-step almost-automatic integration
// pipeline and the three access modes.
//
// Adding a source runs, in order (Figure 2):
//
//  1. Data import         — done by the caller (package flatfile or any
//     *rel.Database); "the one point where ALADIN
//     does require human work".
//  2. Primary discovery   — profiling + accession heuristics + FK
//     guessing + in-degree selection (§4.2).
//  3. Secondary discovery — join paths from the primary relation (§4.3).
//  4. Link discovery      — explicit xrefs and implicit sequence/text/
//     entity/ontology links vs. all earlier
//     sources (§4.4).
//  5. Duplicate detection — flag-never-merge duplicate links (§4.5).
//
// All discovered artifacts land in the metadata repository; browsing,
// searching and SQL querying run over the result (§4.6).
package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/discovery"
	"repro/internal/dup"
	"repro/internal/linkdisc"
	"repro/internal/metadata"
	"repro/internal/objectweb"
	"repro/internal/parallel"
	"repro/internal/profile"
	"repro/internal/rel"
	"repro/internal/search"
	"repro/internal/sqlx"
)

// Options configures a System.
type Options struct {
	Profile    profile.Options
	Discovery  discovery.Options
	Links      linkdisc.Options
	Duplicates dup.Options
	// OntologySources names sources whose shared terms should yield
	// derived ontology links (§4.4), e.g. "go".
	OntologySources []string
	// ChangeThreshold is the §6.2 re-analysis threshold as a fraction of
	// changed tuples (default 0.1).
	ChangeThreshold float64
	// DisableSearchIndex skips search indexing (for benchmarks isolating
	// pipeline cost).
	DisableSearchIndex bool
	// Workers bounds the worker pool parallelizing the pipeline's inner
	// loops (profiling, IND checks, link discovery, duplicate scoring).
	// 0 defaults to runtime.GOMAXPROCS(0); 1 forces the serial pipeline.
	// Results are identical for any worker count.
	Workers int
}

func (o *Options) fill() {
	if o.ChangeThreshold <= 0 {
		o.ChangeThreshold = 0.1
	}
	if o.Discovery.MaxPathLen == 0 {
		o.Discovery = discovery.DefaultOptions()
	}
	o.Workers = parallel.Workers(o.Workers)
	if o.Profile.Workers == 0 {
		o.Profile.Workers = o.Workers
	}
	if o.Discovery.IND.Workers == 0 {
		o.Discovery.IND.Workers = o.Workers
	}
	if o.Links.Workers == 0 {
		o.Links.Workers = o.Workers
	}
	if o.Duplicates.Workers == 0 {
		o.Duplicates.Workers = o.Workers
	}
}

// StepTiming records the duration of one pipeline step.
type StepTiming struct {
	Step     string
	Duration time.Duration
}

// AddReport summarizes one AddSource run — the artifact counts and
// per-step timings of Figure 2.
type AddReport struct {
	Source    string
	Structure *discovery.Structure
	Timings   []StepTiming
	// LinksAdded counts new links stored in the repository, by type name.
	LinksAdded map[string]int
	// XRefAttributes are the discovered cross-reference attribute pairs.
	XRefAttributes []linkdisc.XRefAttribute
	LinkStats      linkdisc.Stats
	DupStats       dup.Stats
}

// Duration returns the total pipeline time.
func (r *AddReport) Duration() time.Duration {
	var d time.Duration
	for _, t := range r.Timings {
		d += t.Duration
	}
	return d
}

// System is one ALADIN instance.
type System struct {
	opts Options

	// Repo is the metadata repository (§3); exported for inspection.
	Repo   *metadata.Repo
	engine *linkdisc.Engine
	web    *objectweb.Web
	index  *search.Index

	// warehouse holds every source's relations under
	// "<source>_<relation>" names for cross-source SQL.
	warehouse *rel.Database
	sources   map[string]*rel.Database
	// records caches duplicate-detection records per source.
	records map[string][]dup.Record
	// dupIndex is the persistent blocking index: every record is bucketed
	// once, and each new source is compared only against the blocking
	// windows instead of re-running detection over the whole union.
	dupIndex *dup.Index

	// failpoint, when non-nil, is invoked at named pipeline stages and
	// aborts AddSource on error — a test hook exercising the
	// partial-state unwind.
	failpoint func(stage string) error
}

// New creates an empty system.
func New(opts Options) *System {
	opts.fill()
	repo := metadata.NewRepo()
	return &System{
		opts:      opts,
		Repo:      repo,
		engine:    linkdisc.New(opts.Links),
		web:       objectweb.New(repo),
		index:     search.NewIndex(),
		warehouse: rel.NewDatabase("warehouse"),
		sources:   make(map[string]*rel.Database),
		records:   make(map[string][]dup.Record),
		dupIndex:  dup.NewIndex(),
	}
}

// AddSource runs the five-step pipeline for one imported source.
func (s *System) AddSource(db *rel.Database) (*AddReport, error) {
	name := strings.ToLower(db.Name)
	if _, exists := s.sources[name]; exists {
		return nil, fmt.Errorf("core: source %q already integrated", db.Name)
	}
	report := &AddReport{Source: db.Name, LinksAdded: make(map[string]int)}

	// Step 2: discovery of primary objects (profiling + §4.2).
	t0 := time.Now()
	profs, err := profile.ProfileDatabase(db, s.opts.Profile)
	if err != nil {
		return nil, err
	}
	report.Timings = append(report.Timings, StepTiming{"profile", time.Since(t0)})

	t0 = time.Now()
	structure, err := discovery.Analyze(db, profs, s.opts.Discovery)
	if err != nil {
		return nil, err
	}
	report.Structure = structure
	// Steps 2+3 run in one Analyze call ("there is high potential for
	// parallelization and combination of these steps", §3).
	report.Timings = append(report.Timings, StepTiming{"discover-structure", time.Since(t0)})

	if structure.Primary == "" {
		return report, fmt.Errorf("core: no primary relation found for source %q", db.Name)
	}

	// Step 4: link discovery against all previously integrated sources.
	// From here on the engine, link repository and duplicate index hold
	// state for this source; any failure must unwind it so a failed add
	// leaves the system exactly as it was.
	src := &linkdisc.Source{DB: db, Structure: structure, Profiles: profs}
	if err := s.engine.AddSource(src); err != nil {
		return nil, err
	}
	var added, upgraded []metadata.Link
	unwind := func() {
		s.engine.RemoveSource(db.Name)
		s.Repo.DropLinks(added)
		s.Repo.RevertUpgrades(upgraded)
		s.dupIndex.RemoveSource(db.Name)
		delete(s.records, name)
	}
	addLink := func(l metadata.Link) {
		stored, up, prev := s.Repo.AddLinkTracked(l)
		switch {
		case stored:
			added = append(added, l)
			report.LinksAdded[l.Type.String()]++
		case up:
			// An existing link absorbed this one as higher-confidence
			// evidence; remember the old value for the unwind path.
			upgraded = append(upgraded, prev)
		}
	}
	t0 = time.Now()
	links, xattrs, lstats, err := s.engine.DiscoverFor(db.Name)
	if err != nil {
		unwind()
		return nil, err
	}
	report.XRefAttributes = xattrs
	report.LinkStats = lstats
	for _, l := range links {
		addLink(l)
	}
	for _, ont := range s.opts.OntologySources {
		for _, l := range s.engine.DeriveOntologyLinks(s.Repo.AllLinks(), ont) {
			addLink(l)
		}
	}
	report.Timings = append(report.Timings, StepTiming{"link-discovery", time.Since(t0)})
	if err := s.failAt("link-discovery"); err != nil {
		unwind()
		return nil, err
	}

	// Step 5: duplicate detection, incrementally: the new records are
	// bucketed into the persistent blocking index and compared only
	// new×existing + new×new within the blocking windows — matches among
	// previously integrated records were already flagged when the later
	// of the two sources arrived.
	t0 = time.Now()
	newRecords := dup.RecordsFromSource(db, structure)
	s.records[name] = newRecords
	matches, dstats := s.dupIndex.FindNew(newRecords, s.opts.Duplicates)
	report.DupStats = dstats
	for _, l := range dup.Links(matches) {
		addLink(l)
	}
	report.Timings = append(report.Timings, StepTiming{"duplicate-detection", time.Since(t0)})
	if err := s.failAt("duplicate-detection"); err != nil {
		unwind()
		return nil, err
	}

	// Register everywhere: browse, metadata, SQL warehouse, search index.
	// The browse web goes first: it is the last fallible step, and keeping
	// it ahead of registration means a failure still unwinds cleanly.
	t0 = time.Now()
	if err := s.web.AddSource(db, structure); err != nil {
		unwind()
		return nil, err
	}
	s.Repo.RegisterSource(&metadata.SourceMeta{
		Name:       db.Name,
		Structure:  structure,
		Profiles:   profs,
		TupleCount: db.TotalTuples(),
	})
	s.sources[name] = db
	for _, r := range db.Relations() {
		qualified := r.Clone()
		qualified.Name = name + "_" + r.Name
		s.warehouse.Put(qualified)
	}
	if !s.opts.DisableSearchIndex {
		s.indexSource(db, structure, profs)
	}
	report.Timings = append(report.Timings, StepTiming{"register-and-index", time.Since(t0)})
	return report, nil
}

// failAt triggers the test failpoint for one pipeline stage.
func (s *System) failAt(stage string) error {
	if s.failpoint == nil {
		return nil
	}
	return s.failpoint(stage)
}

// indexSource feeds a source's text-bearing values into the search index.
func (s *System) indexSource(db *rel.Database, st *discovery.Structure, profs map[string]*profile.ColumnProfile) {
	resolver := newOwnerIndex(db, st)
	for _, r := range db.Relations() {
		isPrimary := strings.EqualFold(r.Name, st.Primary)
		for ci, c := range r.Schema.Columns {
			p := profs[profile.Key(r.Name, c.Name)]
			if p == nil || p.PurelyNumeric || p.IsSequenceField() {
				continue
			}
			for ti, t := range r.Tuples {
				v := t[ci]
				if v.IsNull() {
					continue
				}
				acc := resolver.owner(r.Name, ti)
				if acc == "" {
					continue
				}
				s.index.Add(search.Document{
					Object: metadata.ObjectRef{
						Source: db.Name, Relation: st.Primary, Accession: acc,
					},
					Relation: r.Name,
					Column:   c.Name,
					Text:     v.AsString(),
					Primary:  isPrimary,
				})
			}
		}
	}
}

// Sources returns the names of integrated sources in order.
func (s *System) Sources() []string {
	var out []string
	for _, m := range s.Repo.Sources() {
		out = append(out, m.Name)
	}
	return out
}

// Query runs SQL over the warehouse. Relations are addressable as
// "<source>_<relation>", e.g. "swissprot_protein".
func (s *System) Query(sql string) (*sqlx.Result, error) {
	return sqlx.Exec(s.warehouse, sql)
}

// Search runs ranked full-text search (§4.6), grouped per object.
func (s *System) Search(query string, f search.Filter, limit int) []search.Result {
	grouped := search.GroupByObject(s.index.Search(query, f, 0))
	if limit > 0 && len(grouped) > limit {
		grouped = grouped[:limit]
	}
	return grouped
}

// Browse returns the object view for one object.
func (s *System) Browse(ref metadata.ObjectRef) (*objectweb.ObjectView, error) {
	return s.web.Object(ref)
}

// Objects lists a source's primary objects.
func (s *System) Objects(source string) []metadata.ObjectRef {
	return s.web.Objects(source)
}

// Related ranks objects connected to ref by the [BLM+04] path criterion.
func (s *System) Related(ref metadata.ObjectRef, maxLen, limit int) []objectweb.ScoredRef {
	return s.web.RankRelated(ref, maxLen, limit)
}

// Crawl walks the object web from ref (the §1 "search engine can crawl
// the links" behaviour).
func (s *System) Crawl(ref metadata.ObjectRef, depth int) []metadata.ObjectRef {
	return s.web.Crawl(ref, depth)
}

// WebStats reports connectivity statistics of the object web.
func (s *System) WebStats() objectweb.WebStats {
	return s.web.Stats()
}

// Conflicts reports field-level disagreements between two objects flagged
// as duplicates — "Conflicts are highlighted, and data lineage is shown"
// (§4.6).
func (s *System) Conflicts(a, b metadata.ObjectRef) ([]dup.Conflict, error) {
	ra, err := s.record(a)
	if err != nil {
		return nil, err
	}
	rb, err := s.record(b)
	if err != nil {
		return nil, err
	}
	return dup.Conflicts(dup.Match{A: ra, B: rb}), nil
}

func (s *System) record(ref metadata.ObjectRef) (dup.Record, error) {
	for _, r := range s.records[strings.ToLower(ref.Source)] {
		if r.Accession == ref.Accession {
			return r, nil
		}
	}
	return dup.Record{}, fmt.Errorf("core: no record for %s", ref)
}

// RemoveLinkFeedback deletes a link the user flagged as wrong (§6.2) and
// prevents rediscovery.
func (s *System) RemoveLinkFeedback(l metadata.Link) bool {
	return s.Repo.RemoveLink(l)
}

// RecordChanges notes n changed tuples in a source and reports whether
// the §6.2 threshold policy now calls for re-analysis.
func (s *System) RecordChanges(source string, n int) bool {
	s.Repo.RecordChanges(source, n)
	return s.Repo.NeedsReanalysis(source, s.opts.ChangeThreshold)
}

// Reanalyze re-runs structural discovery and link discovery for one
// source after data changes, resetting its change counter (§6.2).
func (s *System) Reanalyze(source string) (*AddReport, error) {
	name := strings.ToLower(source)
	db, ok := s.sources[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown source %q", source)
	}
	report := &AddReport{Source: db.Name, LinksAdded: make(map[string]int)}
	t0 := time.Now()
	profs, err := profile.ProfileDatabase(db, s.opts.Profile)
	if err != nil {
		return nil, err
	}
	structure, err := discovery.Analyze(db, profs, s.opts.Discovery)
	if err != nil {
		return nil, err
	}
	report.Structure = structure
	report.Timings = append(report.Timings, StepTiming{"reanalyze-structure", time.Since(t0)})

	t0 = time.Now()
	if src := s.engine.Source(source); src != nil {
		src.Structure = structure
		src.Profiles = profs
	}
	links, xattrs, lstats, err := s.engine.DiscoverFor(db.Name)
	if err != nil {
		return nil, err
	}
	report.XRefAttributes = xattrs
	report.LinkStats = lstats
	for _, l := range links {
		if s.Repo.AddLink(l) {
			report.LinksAdded[l.Type.String()]++
		}
	}
	report.Timings = append(report.Timings, StepTiming{"reanalyze-links", time.Since(t0)})
	s.Repo.RegisterSource(&metadata.SourceMeta{
		Name: db.Name, Structure: structure, Profiles: profs,
		TupleCount: db.TotalTuples(),
	})
	s.Repo.ResetChanges(source)
	return report, nil
}

// ownerIndex is a forward resolver caching, per relation, the owning
// primary-object accession of each tuple, used for search indexing.
type ownerIndex struct {
	db  *rel.Database
	st  *discovery.Structure
	acc map[string][]string // relation -> per-tuple owner accession ("" = none)
}

func newOwnerIndex(db *rel.Database, st *discovery.Structure) *ownerIndex {
	oi := &ownerIndex{db: db, st: st, acc: make(map[string][]string)}
	pr := db.Relation(st.Primary)
	if pr == nil {
		return oi
	}
	ai := pr.Schema.Index(st.PrimaryAccession)
	owners := make([]string, len(pr.Tuples))
	for i, t := range pr.Tuples {
		if !t[ai].IsNull() {
			owners[i] = t[ai].AsString()
		}
	}
	oi.acc[strings.ToLower(pr.Name)] = owners
	for _, paths := range st.Paths {
		if len(paths) == 0 {
			continue
		}
		oi.propagate(paths[0])
	}
	return oi
}

// propagate walks one §4.3 path forward from the primary relation,
// carrying ownership through each join step.
func (oi *ownerIndex) propagate(path discovery.Path) {
	pr := oi.db.Relation(oi.st.Primary)
	if pr == nil {
		return
	}
	curOwners := oi.acc[strings.ToLower(pr.Name)]
	curRel := pr
	for _, step := range path.Steps {
		var curCol, nextRelName, nextCol string
		if step.Forward {
			curCol = step.Edge.From.FromColumn
			nextRelName = step.Edge.From.ToRelation
			nextCol = step.Edge.From.ToColumn
		} else {
			curCol = step.Edge.From.ToColumn
			nextRelName = step.Edge.From.FromRelation
			nextCol = step.Edge.From.FromColumn
		}
		ci := curRel.Schema.Index(curCol)
		nextRel := oi.db.Relation(nextRelName)
		if ci < 0 || nextRel == nil {
			return
		}
		ni := nextRel.Schema.Index(nextCol)
		if ni < 0 {
			return
		}
		valueOwner := make(map[string]string)
		for ti, t := range curRel.Tuples {
			if curOwners[ti] == "" || t[ci].IsNull() {
				continue
			}
			k := t[ci].Key()
			if _, ok := valueOwner[k]; !ok {
				valueOwner[k] = curOwners[ti]
			}
		}
		nextOwners := make([]string, len(nextRel.Tuples))
		for ti, t := range nextRel.Tuples {
			if t[ni].IsNull() {
				continue
			}
			nextOwners[ti] = valueOwner[t[ni].Key()]
		}
		key := strings.ToLower(nextRelName)
		if existing, ok := oi.acc[key]; ok {
			for i := range nextOwners {
				if nextOwners[i] == "" && existing[i] != "" {
					nextOwners[i] = existing[i]
				}
			}
		}
		oi.acc[key] = nextOwners
		curOwners = nextOwners
		curRel = nextRel
	}
}

func (oi *ownerIndex) owner(relation string, tupleIdx int) string {
	owners := oi.acc[strings.ToLower(relation)]
	if tupleIdx >= len(owners) {
		return ""
	}
	return owners[tupleIdx]
}
