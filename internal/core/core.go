// Package core assembles the ALADIN system (§3): a warehouse of
// relational sources plus the five-step almost-automatic integration
// pipeline and the three access modes.
//
// Adding a source runs, in order (Figure 2):
//
//  1. Data import         — done by the caller (package flatfile or any
//     *rel.Database); "the one point where ALADIN
//     does require human work".
//  2. Primary discovery   — profiling + accession heuristics + FK
//     guessing + in-degree selection (§4.2).
//  3. Secondary discovery — join paths from the primary relation (§4.3).
//  4. Link discovery      — explicit xrefs and implicit sequence/text/
//     entity/ontology links vs. all earlier
//     sources (§4.4).
//  5. Duplicate detection — flag-never-merge duplicate links (§4.5).
//
// All discovered artifacts land in the metadata repository; browsing,
// searching and SQL querying run over the result (§4.6).
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/discovery"
	"repro/internal/dup"
	"repro/internal/linkdisc"
	"repro/internal/metadata"
	"repro/internal/objectweb"
	"repro/internal/parallel"
	"repro/internal/profile"
	"repro/internal/rel"
	"repro/internal/search"
	"repro/internal/sqlx"
	"repro/internal/store"
)

// Options configures a System.
type Options struct {
	Profile    profile.Options
	Discovery  discovery.Options
	Links      linkdisc.Options
	Duplicates dup.Options
	// OntologySources names sources whose shared terms should yield
	// derived ontology links (§4.4), e.g. "go".
	OntologySources []string
	// ChangeThreshold is the §6.2 re-analysis threshold as a fraction of
	// changed tuples (default 0.1).
	ChangeThreshold float64
	// DisableSearchIndex skips search indexing (for benchmarks isolating
	// pipeline cost).
	DisableSearchIndex bool
	// Workers bounds the worker pool parallelizing the pipeline's inner
	// loops (profiling, IND checks, link discovery, duplicate scoring).
	// 0 defaults to runtime.GOMAXPROCS(0); 1 forces the serial pipeline.
	// Results are identical for any worker count.
	Workers int
}

func (o *Options) fill() {
	if o.ChangeThreshold <= 0 {
		o.ChangeThreshold = 0.1
	}
	if o.Discovery.MaxPathLen == 0 {
		o.Discovery = discovery.DefaultOptions()
	}
	o.Workers = parallel.Workers(o.Workers)
	if o.Profile.Workers == 0 {
		o.Profile.Workers = o.Workers
	}
	if o.Discovery.IND.Workers == 0 {
		o.Discovery.IND.Workers = o.Workers
	}
	if o.Links.Workers == 0 {
		o.Links.Workers = o.Workers
	}
	if o.Duplicates.Workers == 0 {
		o.Duplicates.Workers = o.Workers
	}
}

// Typed pipeline errors, for callers that must distinguish failure
// classes without parsing messages (test with errors.Is).
var (
	// ErrSourceExists rejects integrating a source name twice.
	ErrSourceExists = errors.New("core: source already integrated")
	// ErrNoPrimary means discovery found no primary relation (§4.2).
	ErrNoPrimary = errors.New("core: no primary relation found")
)

// StepTiming records the duration of one pipeline step.
type StepTiming struct {
	Step     string
	Duration time.Duration
}

// AddReport summarizes one AddSource run — the artifact counts and
// per-step timings of Figure 2.
type AddReport struct {
	Source    string
	Structure *discovery.Structure
	Timings   []StepTiming
	// LinksAdded counts new links stored in the repository, by type name.
	LinksAdded map[string]int
	// XRefAttributes are the discovered cross-reference attribute pairs.
	XRefAttributes []linkdisc.XRefAttribute
	LinkStats      linkdisc.Stats
	DupStats       dup.Stats
}

// Duration returns the total pipeline time.
func (r *AddReport) Duration() time.Duration {
	var d time.Duration
	for _, t := range r.Timings {
		d += t.Duration
	}
	return d
}

// System is one ALADIN instance.
type System struct {
	opts Options

	// Repo is the metadata repository (§3); exported for inspection.
	Repo   *metadata.Repo
	engine *linkdisc.Engine
	web    *objectweb.Web
	index  *search.Index

	// warehouse holds every source's relations under
	// "<source>_<relation>" names for cross-source SQL.
	warehouse *rel.Database
	sources   map[string]*rel.Database
	// records caches duplicate-detection records per source.
	records map[string][]dup.Record
	// dupIndex is the persistent blocking index: every record is bucketed
	// once, and each new source is compared only against the blocking
	// windows instead of re-running detection over the whole union.
	dupIndex *dup.Index

	// durable, when non-nil, journals every acknowledged mutation to a
	// data directory's WAL and tracks the dirty set for incremental
	// checkpoints (durable.go).
	durable *durable

	// seq counts mutations: every committed AddSource, DML statement and
	// link-feedback removal increments it by exactly one, durable or not.
	// On durable systems it is the global WAL record sequence (stamped
	// into each frame header); everywhere it is the "version" half of the
	// snapshot ID that pins cursors and measures replication lag. Writes
	// are serialized by the caller's mutation lock; reads are atomic so
	// stats and snapshot-ID capture need no lock.
	seq atomic.Uint64

	// failpoint, when non-nil, is invoked at named pipeline stages and
	// aborts AddSource on error — a test hook exercising the
	// partial-state unwind.
	failpoint func(stage string) error
}

// New creates an empty system.
func New(opts Options) *System {
	opts.fill()
	repo := metadata.NewRepo()
	return &System{
		opts:      opts,
		Repo:      repo,
		engine:    linkdisc.New(opts.Links),
		web:       objectweb.New(repo),
		index:     search.NewIndex(),
		warehouse: rel.NewDatabase("warehouse"),
		sources:   make(map[string]*rel.Database),
		records:   make(map[string][]dup.Record),
		dupIndex:  dup.NewIndex(),
	}
}

// AddSource runs the five-step pipeline for one imported source.
func (s *System) AddSource(db *rel.Database) (*AddReport, error) {
	return s.AddSourceContext(context.Background(), db)
}

// AddSourceContext is AddSource with cancellation: a canceled ctx aborts
// the pipeline promptly, unwinds any partial state, and returns ctx's
// error — the system is left exactly as it was before the call.
func (s *System) AddSourceContext(ctx context.Context, db *rel.Database) (*AddReport, error) {
	p, err := s.PrepareAdd(ctx, db)
	if err != nil {
		return nil, err
	}
	return s.CommitAdd(p)
}

// PendingAdd is a fully computed but uncommitted source addition: the
// output of pipeline steps 2–5 for one source, not yet visible to any
// access mode. Either CommitAdd or Abort must be called exactly once.
type PendingAdd struct {
	db        *rel.Database
	name      string
	structure *discovery.Structure
	profs     map[string]*profile.ColumnProfile
	src       *linkdisc.Source
	links     []metadata.Link
	xattrs    []linkdisc.XRefAttribute
	lstats    linkdisc.Stats
	records   []dup.Record
	dupLinks  []metadata.Link
	ontLinks  []metadata.Link
	dstats    dup.Stats
	web       *objectweb.Prepared
	searchIdx *search.Index
	warehouse []*rel.Relation
	timings   []StepTiming
	// walFrame is the pre-encoded WAL record of this addition (durable
	// systems only): encoding runs here, off-lock, so the write-locked
	// commit pays one write+fsync.
	walFrame []byte
	done     bool
}

// Source returns the name of the source being added.
func (p *PendingAdd) Source() string { return p.db.Name }

// PrepareAdd runs pipeline steps 2–5 for one imported source against a
// snapshot of the current system, without touching any state visible to
// the access modes (repository, browse web, warehouse, search index,
// records): readers may run concurrently with PrepareAdd, and CommitAdd
// publishes the result in one short step under the caller's write lock.
//
// Only the duplicate blocking index — internal to the pipeline, never
// read by queries — is updated eagerly; a failed or canceled prepare
// unwinds it before returning, reusing the same machinery as the
// mid-pipeline failure path. Concurrent PrepareAdd calls are NOT safe;
// integrations must be serialized by the caller (package aladin does).
func (s *System) PrepareAdd(ctx context.Context, db *rel.Database) (*PendingAdd, error) {
	name := strings.ToLower(db.Name)
	if _, exists := s.sources[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrSourceExists, db.Name)
	}
	// A panic escaping the pipeline (e.g. re-raised from a worker pool)
	// must not leave the source half-bucketed in the duplicate index.
	defer func() {
		if r := recover(); r != nil {
			s.dupIndex.RemoveSource(db.Name)
			panic(r)
		}
	}()
	p := &PendingAdd{db: db, name: name}

	// Step 2: discovery of primary objects (profiling + §4.2).
	t0 := time.Now()
	profs, err := profile.ProfileDatabaseContext(ctx, db, s.opts.Profile)
	if err != nil {
		return nil, err
	}
	p.profs = profs
	p.timings = append(p.timings, StepTiming{"profile", time.Since(t0)})

	t0 = time.Now()
	structure, err := discovery.AnalyzeContext(ctx, db, profs, s.opts.Discovery)
	if err != nil {
		return nil, err
	}
	p.structure = structure
	// Steps 2+3 run in one Analyze call ("there is high potential for
	// parallelization and combination of these steps", §3).
	p.timings = append(p.timings, StepTiming{"discover-structure", time.Since(t0)})

	if structure.Primary == "" {
		return nil, fmt.Errorf("%w for source %q", ErrNoPrimary, db.Name)
	}

	// Step 4: link discovery against all previously integrated sources.
	// DiscoverAgainst computes both directions without registering the
	// source in the engine, so nothing needs unwinding on failure here.
	p.src = &linkdisc.Source{DB: db, Structure: structure, Profiles: profs}
	t0 = time.Now()
	p.links, p.xattrs, p.lstats, err = s.engine.DiscoverAgainst(ctx, p.src)
	if err != nil {
		return nil, err
	}
	p.ontLinks = s.deriveOntologyLinks(p.links)
	p.timings = append(p.timings, StepTiming{"link-discovery", time.Since(t0)})
	if err := s.failAt("link-discovery"); err != nil {
		return nil, err
	}

	// Step 5: duplicate detection, incrementally: the new records are
	// bucketed into the persistent blocking index and compared only
	// new×existing + new×new within the blocking windows — matches among
	// previously integrated records were already flagged when the later
	// of the two sources arrived. From here on the index holds this
	// source's records; any later failure must unwind them.
	t0 = time.Now()
	p.records = dup.RecordsFromSource(db, structure)
	matches, dstats, err := s.dupIndex.FindNewContext(ctx, p.records, s.opts.Duplicates)
	if err != nil {
		s.unwindPrepare(p)
		return nil, err
	}
	p.dstats = dstats
	p.dupLinks = dup.Links(matches)
	p.timings = append(p.timings, StepTiming{"duplicate-detection", time.Since(t0)})
	if err := s.failAt("duplicate-detection"); err != nil {
		s.unwindPrepare(p)
		return nil, err
	}

	// Precompute everything CommitAdd publishes: browse data, qualified
	// warehouse relations, hash indexes, and the per-source search index
	// (tokenization is the expensive part; the commit-time merge is a
	// cheap splice). Index maintenance cost is paid here, off-lock, on
	// relations no reader can see yet; CommitAdd publishes them as-is and
	// they stay immutable and structurally shared by snapshots after.
	idxCols := indexColumns(structure)
	for _, r := range db.Relations() {
		buildRelationIndexes(r, idxCols[strings.ToLower(r.Name)])
		// Attach the planner's statistics block, derived from the step-2
		// profiles without a second scan. The qualified warehouse clones
		// below inherit it (Clone deep-copies stats).
		r.Stats = profile.RelationStats(r, profs)
	}
	p.web, err = s.web.Prepare(db, structure)
	if err != nil {
		s.unwindPrepare(p)
		return nil, err
	}
	for _, r := range db.Relations() {
		p.warehouse = append(p.warehouse, qualifiedClone(r, name, idxCols[strings.ToLower(r.Name)]))
	}
	if !s.opts.DisableSearchIndex {
		p.searchIdx = buildSearchIndex(db, structure, profs)
	}
	if s.durable != nil {
		frame, err := store.EncodeRecord(s.addSourceRecord(p))
		if err != nil {
			s.unwindPrepare(p)
			return nil, err
		}
		p.walFrame = frame
	}
	if err := ctx.Err(); err != nil {
		s.unwindPrepare(p)
		return nil, err
	}
	return p, nil
}

// deriveOntologyLinks computes the §4.4 shared-term links that
// committing newLinks would let the engine derive, against a snapshot of
// the current repository — so the derivation's O(links) scan runs in the
// prepare phase, outside any reader-blocking lock. The input mirrors
// what the repository would hold after the commit's addLink loop: stored
// links, plus the new links deduplicated by (type, endpoints) with
// feedback-removed pairs excluded.
func (s *System) deriveOntologyLinks(newLinks []metadata.Link) []metadata.Link {
	if len(s.opts.OntologySources) == 0 {
		return nil
	}
	combined := s.Repo.AllLinks()
	seen := make(map[string]bool, len(newLinks))
	for _, l := range newLinks {
		a, b := l.From.Key(), l.To.Key()
		if b < a {
			a, b = b, a
		}
		k := fmt.Sprintf("%d\x00%s\x00%s", l.Type, a, b)
		if seen[k] || s.Repo.Removed(l) {
			continue
		}
		seen[k] = true
		combined = append(combined, l)
	}
	var out []metadata.Link
	for _, ont := range s.opts.OntologySources {
		out = append(out, s.engine.DeriveOntologyLinks(combined, ont)...)
	}
	return out
}

// unwindPrepare reverts the pipeline-internal state PrepareAdd touched.
func (s *System) unwindPrepare(p *PendingAdd) {
	p.done = true
	s.dupIndex.RemoveSource(p.db.Name)
}

// Abort discards a prepared addition, unwinding the pipeline-internal
// state it holds. Aborting an already committed or aborted pending add is
// a no-op.
func (s *System) Abort(p *PendingAdd) {
	if p == nil || p.done {
		return
	}
	s.unwindPrepare(p)
}

// CommitAdd publishes a prepared source addition to every access mode:
// link repository, browse web, metadata, SQL warehouse and search index.
// This is the only part of an addition that mutates reader-visible state;
// callers serving concurrent readers hold their write lock exactly for
// this call. CommitAdd itself cannot leave partial state: every fallible
// step ran in PrepareAdd.
func (s *System) CommitAdd(p *PendingAdd) (*AddReport, error) {
	if p.done {
		return nil, fmt.Errorf("core: pending add for %q already committed or aborted", p.db.Name)
	}
	if _, exists := s.sources[p.name]; exists {
		s.unwindPrepare(p)
		return nil, fmt.Errorf("core: source %q already integrated", p.db.Name)
	}
	p.done = true
	report := &AddReport{
		Source:         p.db.Name,
		Structure:      p.structure,
		Timings:        p.timings,
		LinksAdded:     make(map[string]int),
		XRefAttributes: p.xattrs,
		LinkStats:      p.lstats,
		DupStats:       p.dstats,
	}
	t0 := time.Now()
	if err := s.engine.AddSource(p.src); err != nil {
		s.dupIndex.RemoveSource(p.db.Name)
		return nil, err
	}
	var frame []byte
	if s.durable != nil {
		frame = p.walFrame
		if frame == nil {
			// Prepared before the directory was attached; encode now.
			var err error
			if frame, err = store.EncodeRecord(s.addSourceRecord(p)); err != nil {
				s.engine.RemoveSource(p.db.Name)
				s.dupIndex.RemoveSource(p.db.Name)
				return nil, err
			}
		}
	}
	// Journal before publishing: the addition is acknowledged only once
	// it would survive a crash. On failure nothing is visible. Without a
	// data directory this only advances the mutation sequence.
	if err := s.logFrame(frame, p.db.Name); err != nil {
		s.engine.RemoveSource(p.db.Name)
		s.dupIndex.RemoveSource(p.db.Name)
		return nil, err
	}
	addLink := func(l metadata.Link) {
		if stored, _, _ := s.Repo.AddLinkTracked(l); stored {
			report.LinksAdded[l.Type.String()]++
		}
	}
	for _, l := range p.links {
		addLink(l)
	}
	for _, l := range p.ontLinks {
		addLink(l)
	}
	for _, l := range p.dupLinks {
		addLink(l)
	}
	s.records[p.name] = p.records
	s.web.Install(p.web)
	s.Repo.RegisterSource(&metadata.SourceMeta{
		Name:       p.db.Name,
		Structure:  p.structure,
		Profiles:   p.profs,
		TupleCount: p.db.TotalTuples(),
	})
	s.sources[p.name] = p.db
	for _, r := range p.warehouse {
		s.warehouse.Put(r)
	}
	if p.searchIdx != nil {
		s.index.Merge(p.searchIdx)
	}
	report.Timings = append(report.Timings, StepTiming{"register-and-index", time.Since(t0)})
	return report, nil
}

// indexColumns maps each relation name (lower-cased) to the discovered
// columns worth indexing: the primary relation's accession attribute and
// both endpoints of every guessed foreign key (§4.2/§4.3) — the columns
// the object web navigates and the SQL optimizer probes.
func indexColumns(st *discovery.Structure) map[string][]string {
	out := make(map[string][]string)
	add := func(relName, col string) {
		if relName == "" || col == "" {
			return
		}
		out[strings.ToLower(relName)] = append(out[strings.ToLower(relName)], col)
	}
	if st != nil {
		add(st.Primary, st.PrimaryAccession)
		for _, fk := range st.ForeignKeys {
			add(fk.From.FromRelation, fk.From.FromColumn)
			add(fk.From.ToRelation, fk.From.ToColumn)
		}
	}
	return out
}

// buildRelationIndexes builds the declared-constraint indexes plus the
// given discovered columns; unknown columns are skipped.
func buildRelationIndexes(r *rel.Relation, discovered []string) {
	r.EnsureIndexes()
	for _, c := range discovered {
		_, _ = r.EnsureIndex(c)
	}
}

// qualifiedClone copies a source relation for the warehouse under its
// "<source>_<relation>" name. The source's freshly built indexes are
// copied (positions are identical on a clone) rather than rebuilt, and
// any gap is filled before the rename: EnsureIndexes matches declared
// FK endpoints by relation name, which the qualified name would no
// longer satisfy.
func qualifiedClone(r *rel.Relation, source string, discovered []string) *rel.Relation {
	q := r.Clone()
	q.CopyIndexesFrom(r)
	buildRelationIndexes(q, discovered)
	q.Name = source + "_" + r.Name
	return q
}

// failAt triggers the test failpoint for one pipeline stage.
func (s *System) failAt(stage string) error {
	if s.failpoint == nil {
		return nil
	}
	return s.failpoint(stage)
}

// SetFailpoint installs a hook invoked at named pipeline stages
// ("link-discovery", "duplicate-detection"); a non-nil return aborts the
// AddSource in flight and unwinds its partial state. It exists for tests
// exercising the failure and cancellation paths.
func (s *System) SetFailpoint(f func(stage string) error) { s.failpoint = f }

// indexSource feeds a source's text-bearing values into the search index.
func (s *System) indexSource(db *rel.Database, st *discovery.Structure, profs map[string]*profile.ColumnProfile) {
	s.index.Merge(buildSearchIndex(db, st, profs))
}

// buildSearchIndex tokenizes a source's text-bearing values into a fresh
// per-source index, ready to be spliced into the system index with Merge.
func buildSearchIndex(db *rel.Database, st *discovery.Structure, profs map[string]*profile.ColumnProfile) *search.Index {
	ix := search.NewIndex()
	resolver := newOwnerIndex(db, st)
	for _, r := range db.Relations() {
		isPrimary := strings.EqualFold(r.Name, st.Primary)
		for ci, c := range r.Schema.Columns {
			p := profs[profile.Key(r.Name, c.Name)]
			if p == nil || p.PurelyNumeric || p.IsSequenceField() {
				continue
			}
			for ti, t := range r.Tuples {
				v := t[ci]
				if v.IsNull() {
					continue
				}
				acc := resolver.owner(r.Name, ti)
				if acc == "" {
					continue
				}
				ix.Add(search.Document{
					Object: metadata.ObjectRef{
						Source: db.Name, Relation: st.Primary, Accession: acc,
					},
					Relation: r.Name,
					Column:   c.Name,
					Text:     v.AsString(),
					Primary:  isPrimary,
				})
			}
		}
	}
	return ix
}

// Sources returns the names of integrated sources in order.
func (s *System) Sources() []string {
	var out []string
	for _, m := range s.Repo.Sources() {
		out = append(out, m.Name)
	}
	return out
}

// Query runs SQL over the warehouse. Relations are addressable as
// "<source>_<relation>", e.g. "swissprot_protein".
func (s *System) Query(sql string) (*sqlx.Result, error) {
	return sqlx.Exec(s.warehouse, sql)
}

// WarehouseSnapshot returns a shallow clone of the warehouse: an
// immutable view for streaming readers. CommitAdd only ever adds new
// relations (existing ones are never mutated in place), so a cursor over
// the snapshot stays consistent while later integrations commit.
func (s *System) WarehouseSnapshot() *rel.Database {
	return s.warehouse.ShallowClone()
}

// Search runs ranked full-text search (§4.6), grouped per object.
func (s *System) Search(query string, f search.Filter, limit int) []search.Result {
	grouped := search.GroupByObject(s.index.Search(query, f, 0))
	if limit > 0 && len(grouped) > limit {
		grouped = grouped[:limit]
	}
	return grouped
}

// Browse returns the object view for one object.
func (s *System) Browse(ref metadata.ObjectRef) (*objectweb.ObjectView, error) {
	return s.web.Object(ref)
}

// Objects lists a source's primary objects.
func (s *System) Objects(source string) []metadata.ObjectRef {
	return s.web.Objects(source)
}

// Related ranks objects connected to ref by the [BLM+04] path criterion.
func (s *System) Related(ref metadata.ObjectRef, maxLen, limit int) []objectweb.ScoredRef {
	return s.web.RankRelated(ref, maxLen, limit)
}

// Crawl walks the object web from ref (the §1 "search engine can crawl
// the links" behaviour).
func (s *System) Crawl(ref metadata.ObjectRef, depth int) []metadata.ObjectRef {
	return s.web.Crawl(ref, depth)
}

// WebStats reports connectivity statistics of the object web.
func (s *System) WebStats() objectweb.WebStats {
	return s.web.Stats()
}

// IndexedDocuments returns the number of values in the search index.
func (s *System) IndexedDocuments() int {
	return s.index.Len()
}

// Conflicts reports field-level disagreements between two objects flagged
// as duplicates — "Conflicts are highlighted, and data lineage is shown"
// (§4.6).
func (s *System) Conflicts(a, b metadata.ObjectRef) ([]dup.Conflict, error) {
	ra, err := s.record(a)
	if err != nil {
		return nil, err
	}
	rb, err := s.record(b)
	if err != nil {
		return nil, err
	}
	return dup.Conflicts(dup.Match{A: ra, B: rb}), nil
}

func (s *System) record(ref metadata.ObjectRef) (dup.Record, error) {
	for _, r := range s.records[strings.ToLower(ref.Source)] {
		if r.Accession == ref.Accession {
			return r, nil
		}
	}
	return dup.Record{}, fmt.Errorf("core: no record for %s", ref)
}

// RemoveLinkFeedback deletes a link the user flagged as wrong (§6.2) and
// prevents rediscovery. The feedback is journaled before it is applied,
// so restored systems keep honoring it; a logging error means the
// feedback was NOT recorded.
func (s *System) RemoveLinkFeedback(l metadata.Link) (bool, error) {
	if err := s.logRecord(&store.WALRecord{Type: store.RecRemoveLink, Link: &l}); err != nil {
		return false, err
	}
	return s.Repo.RemoveLink(l), nil
}

// RecordChanges notes n changed tuples in a source and reports whether
// the §6.2 threshold policy now calls for re-analysis.
func (s *System) RecordChanges(source string, n int) bool {
	s.Repo.RecordChanges(source, n)
	return s.Repo.NeedsReanalysis(source, s.opts.ChangeThreshold)
}

// Reanalyze re-runs structural discovery and link discovery for one
// source after data changes, resetting its change counter (§6.2).
func (s *System) Reanalyze(source string) (*AddReport, error) {
	return s.ReanalyzeContext(context.Background(), source)
}

// ReanalyzeContext is Reanalyze with cancellation. Unlike AddSource,
// re-analysis mutates the engine's view of the source in place, so
// callers serving concurrent readers must hold their write lock for the
// whole call; a canceled ctx may leave the engine's structure refreshed
// but the link repository untouched (both are consistent states).
func (s *System) ReanalyzeContext(ctx context.Context, source string) (*AddReport, error) {
	name := strings.ToLower(source)
	db, ok := s.sources[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown source %q", source)
	}
	report := &AddReport{Source: db.Name, LinksAdded: make(map[string]int)}
	t0 := time.Now()
	profs, err := profile.ProfileDatabaseContext(ctx, db, s.opts.Profile)
	if err != nil {
		return nil, err
	}
	structure, err := discovery.AnalyzeContext(ctx, db, profs, s.opts.Discovery)
	if err != nil {
		return nil, err
	}
	report.Structure = structure
	report.Timings = append(report.Timings, StepTiming{"reanalyze-structure", time.Since(t0)})
	// Refresh hash indexes for any newly discovered key columns (the
	// caller holds its write lock for the whole re-analysis). The
	// warehouse side must not be mutated in place — snapshots share its
	// relations lock-free — so fresh indexed clones are published
	// instead; open cursors keep the relations of their snapshot.
	idxCols := indexColumns(structure)
	for _, r := range db.Relations() {
		buildRelationIndexes(r, idxCols[strings.ToLower(r.Name)])
		r.Stats = profile.RelationStats(r, profs)
		s.warehouse.Put(qualifiedClone(r, name, idxCols[strings.ToLower(r.Name)]))
	}

	t0 = time.Now()
	if src := s.engine.Source(source); src != nil {
		src.Structure = structure
		src.Profiles = profs
	}
	links, xattrs, lstats, err := s.engine.DiscoverForContext(ctx, db.Name)
	if err != nil {
		return nil, err
	}
	report.XRefAttributes = xattrs
	report.LinkStats = lstats
	for _, l := range links {
		if s.Repo.AddLink(l) {
			report.LinksAdded[l.Type.String()]++
		}
	}
	report.Timings = append(report.Timings, StepTiming{"reanalyze-links", time.Since(t0)})
	s.Repo.RegisterSource(&metadata.SourceMeta{
		Name: db.Name, Structure: structure, Profiles: profs,
		TupleCount: db.TotalTuples(),
	})
	s.Repo.ResetChanges(source)
	return report, nil
}

// ownerIndex is a forward resolver caching, per relation, the owning
// primary-object accession of each tuple, used for search indexing.
type ownerIndex struct {
	db  *rel.Database
	st  *discovery.Structure
	acc map[string][]string // relation -> per-tuple owner accession ("" = none)
}

func newOwnerIndex(db *rel.Database, st *discovery.Structure) *ownerIndex {
	oi := &ownerIndex{db: db, st: st, acc: make(map[string][]string)}
	pr := db.Relation(st.Primary)
	if pr == nil {
		return oi
	}
	ai := pr.Schema.Index(st.PrimaryAccession)
	owners := make([]string, len(pr.Tuples))
	for i, t := range pr.Tuples {
		if !t[ai].IsNull() {
			owners[i] = t[ai].AsString()
		}
	}
	oi.acc[strings.ToLower(pr.Name)] = owners
	for _, paths := range st.Paths {
		if len(paths) == 0 {
			continue
		}
		oi.propagate(paths[0])
	}
	return oi
}

// propagate walks one §4.3 path forward from the primary relation,
// carrying ownership through each join step.
func (oi *ownerIndex) propagate(path discovery.Path) {
	pr := oi.db.Relation(oi.st.Primary)
	if pr == nil {
		return
	}
	curOwners := oi.acc[strings.ToLower(pr.Name)]
	curRel := pr
	for _, step := range path.Steps {
		var curCol, nextRelName, nextCol string
		if step.Forward {
			curCol = step.Edge.From.FromColumn
			nextRelName = step.Edge.From.ToRelation
			nextCol = step.Edge.From.ToColumn
		} else {
			curCol = step.Edge.From.ToColumn
			nextRelName = step.Edge.From.FromRelation
			nextCol = step.Edge.From.FromColumn
		}
		ci := curRel.Schema.Index(curCol)
		nextRel := oi.db.Relation(nextRelName)
		if ci < 0 || nextRel == nil {
			return
		}
		ni := nextRel.Schema.Index(nextCol)
		if ni < 0 {
			return
		}
		valueOwner := make(map[string]string)
		for ti, t := range curRel.Tuples {
			if curOwners[ti] == "" || t[ci].IsNull() {
				continue
			}
			k := t[ci].Key()
			if _, ok := valueOwner[k]; !ok {
				valueOwner[k] = curOwners[ti]
			}
		}
		nextOwners := make([]string, len(nextRel.Tuples))
		for ti, t := range nextRel.Tuples {
			if t[ni].IsNull() {
				continue
			}
			nextOwners[ti] = valueOwner[t[ni].Key()]
		}
		key := strings.ToLower(nextRelName)
		if existing, ok := oi.acc[key]; ok {
			for i := range nextOwners {
				if nextOwners[i] == "" && existing[i] != "" {
					nextOwners[i] = existing[i]
				}
			}
		}
		oi.acc[key] = nextOwners
		curOwners = nextOwners
		curRel = nextRel
	}
}

func (oi *ownerIndex) owner(relation string, tupleIdx int) string {
	owners := oi.acc[strings.ToLower(relation)]
	if tupleIdx >= len(owners) {
		return ""
	}
	return owners[tupleIdx]
}
