package eval

import (
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/metadata"
	"repro/internal/rel"
)

func TestPRBasics(t *testing.T) {
	p := PR{TP: 8, FP: 2, FN: 2}
	if p.Precision() != 0.8 {
		t.Errorf("precision = %v", p.Precision())
	}
	if p.Recall() != 0.8 {
		t.Errorf("recall = %v", p.Recall())
	}
	if f1 := p.F1(); f1 < 0.8-1e-9 || f1 > 0.8+1e-9 {
		t.Errorf("f1 = %v", f1)
	}
}

func TestPREdgeCases(t *testing.T) {
	empty := PR{}
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("empty comparison should be perfect")
	}
	onlyFP := PR{FP: 5}
	if onlyFP.Precision() != 0 {
		t.Errorf("precision = %v", onlyFP.Precision())
	}
	if onlyFP.F1() != 0 {
		t.Errorf("f1 = %v", onlyFP.F1())
	}
}

func TestPRAdd(t *testing.T) {
	a := PR{TP: 1, FP: 2, FN: 3}
	a.Add(PR{TP: 10, FP: 20, FN: 30})
	if a.TP != 11 || a.FP != 22 || a.FN != 33 {
		t.Errorf("add = %+v", a)
	}
}

func TestCompareSets(t *testing.T) {
	pred := map[string]bool{"a": true, "b": true, "c": true}
	gold := map[string]bool{"b": true, "c": true, "d": true}
	pr := CompareSets(pred, gold)
	if pr.TP != 2 || pr.FP != 1 || pr.FN != 1 {
		t.Errorf("pr = %+v", pr)
	}
}

func TestLinkKeyUndirected(t *testing.T) {
	gold := []datagen.GoldLink{{FromSource: "a", FromAccession: "1", ToSource: "b", ToAccession: "2"}}
	// Predicted with reversed endpoints must still match.
	pred := []metadata.Link{{
		Type: metadata.LinkXRef,
		From: metadata.ObjectRef{Source: "b", Accession: "2"},
		To:   metadata.ObjectRef{Source: "a", Accession: "1"},
	}}
	pr := CompareLinks(pred, metadata.LinkXRef, gold)
	if pr.TP != 1 || pr.FP != 0 || pr.FN != 0 {
		t.Errorf("pr = %+v", pr)
	}
}

func TestCompareLinksTypeFilter(t *testing.T) {
	gold := []datagen.GoldLink{{FromSource: "a", FromAccession: "1", ToSource: "b", ToAccession: "2"}}
	pred := []metadata.Link{{
		Type: metadata.LinkDuplicate,
		From: metadata.ObjectRef{Source: "a", Accession: "1"},
		To:   metadata.ObjectRef{Source: "b", Accession: "2"},
	}}
	pr := CompareLinks(pred, metadata.LinkXRef, gold)
	if pr.TP != 0 || pr.FN != 1 {
		t.Errorf("type filter failed: %+v", pr)
	}
}

func TestCompareFKs(t *testing.T) {
	pred := []rel.ForeignKey{
		{FromRelation: "a", FromColumn: "x", ToRelation: "b", ToColumn: "y"},
		{FromRelation: "c", FromColumn: "z", ToRelation: "b", ToColumn: "y"},
	}
	gold := []rel.ForeignKey{
		{FromRelation: "A", FromColumn: "X", ToRelation: "B", ToColumn: "Y"}, // case-insensitive match
		{FromRelation: "d", FromColumn: "w", ToRelation: "b", ToColumn: "y"},
	}
	pr := CompareFKs(pred, gold)
	if pr.TP != 1 || pr.FP != 1 || pr.FN != 1 {
		t.Errorf("pr = %+v", pr)
	}
}

func TestCostModel(t *testing.T) {
	c := CostModel{Relations: 7, Attributes: 30, Tuples: 10000}
	if c.ManualCurationActions() != 10000 {
		t.Errorf("manual = %d", c.ManualCurationActions())
	}
	if c.SchemaMappingActions() != 31 {
		t.Errorf("schema = %d", c.SchemaMappingActions())
	}
	if c.ALADINActions(true) != 1 || c.ALADINActions(false) != 0 {
		t.Error("aladin cost model")
	}
	// The Table 1 ordering must hold: manual >> schema >> aladin.
	if !(c.ManualCurationActions() > c.SchemaMappingActions() &&
		c.SchemaMappingActions() > c.ALADINActions(true)) {
		t.Error("Table 1 cost ordering violated")
	}
}

// Property: precision and recall are always within [0,1] and F1 (a
// harmonic mean) lies between min and max of the two.
func TestPRBounds(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		p := PR{TP: int(tp), FP: int(fp), FN: int(fn)}
		pr, rc, f1 := p.Precision(), p.Recall(), p.F1()
		if pr < 0 || pr > 1 || rc < 0 || rc > 1 {
			return false
		}
		lo, hi := pr, rc
		if lo > hi {
			lo, hi = hi, lo
		}
		if f1 == 0 {
			return lo == 0 || pr+rc == 0
		}
		return f1 >= lo-1e-9 && f1 <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CompareSets of a set against itself is perfect.
func TestCompareSetsIdentity(t *testing.T) {
	f := func(keys []string) bool {
		s := make(map[string]bool)
		for _, k := range keys {
			s[k] = true
		}
		pr := CompareSets(s, s)
		return pr.FP == 0 && pr.FN == 0 && pr.TP == len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
