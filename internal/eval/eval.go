// Package eval implements the evaluation methodology the paper proposes
// in §3: "The standard procedure in such situations is to estimate the
// amount of errors of the system using performance measures, such as
// precision and recall", computed against the gold standard of the
// generated corpus (§5's "learning test set").
package eval

import (
	"fmt"
	"strings"

	"repro/internal/datagen"
	"repro/internal/metadata"
	"repro/internal/rel"
)

// PR holds the confusion counts of one comparison.
type PR struct {
	TP, FP, FN int
}

// Precision returns TP/(TP+FP), 1 when nothing was predicted.
func (p PR) Precision() float64 {
	if p.TP+p.FP == 0 {
		return 1
	}
	return float64(p.TP) / float64(p.TP+p.FP)
}

// Recall returns TP/(TP+FN), 1 when there is nothing to find.
func (p PR) Recall() float64 {
	if p.TP+p.FN == 0 {
		return 1
	}
	return float64(p.TP) / float64(p.TP+p.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (p PR) F1() float64 {
	pr, rc := p.Precision(), p.Recall()
	if pr+rc == 0 {
		return 0
	}
	return 2 * pr * rc / (pr + rc)
}

// String renders "P=0.95 R=0.90 F1=0.92 (tp=18 fp=1 fn=2)".
func (p PR) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)",
		p.Precision(), p.Recall(), p.F1(), p.TP, p.FP, p.FN)
}

// Add accumulates another comparison.
func (p *PR) Add(o PR) {
	p.TP += o.TP
	p.FP += o.FP
	p.FN += o.FN
}

// CompareSets computes PR between predicted and gold key sets.
func CompareSets(predicted, gold map[string]bool) PR {
	var pr PR
	for k := range predicted {
		if gold[k] {
			pr.TP++
		} else {
			pr.FP++
		}
	}
	for k := range gold {
		if !predicted[k] {
			pr.FN++
		}
	}
	return pr
}

// linkKey canonicalizes an undirected (source, accession) pair.
func linkKey(s1, a1, s2, a2 string) string {
	k1 := strings.ToLower(s1) + "\x00" + a1
	k2 := strings.ToLower(s2) + "\x00" + a2
	if k2 < k1 {
		k1, k2 = k2, k1
	}
	return k1 + "\x01" + k2
}

// GoldLinkSet converts gold links to a comparable key set.
func GoldLinkSet(ls []datagen.GoldLink) map[string]bool {
	out := make(map[string]bool, len(ls))
	for _, l := range ls {
		out[linkKey(l.FromSource, l.FromAccession, l.ToSource, l.ToAccession)] = true
	}
	return out
}

// PredictedLinkSet converts discovered links (optionally filtered by
// type; pass -1 for all) to a comparable key set.
func PredictedLinkSet(ls []metadata.Link, t metadata.LinkType) map[string]bool {
	out := make(map[string]bool, len(ls))
	for _, l := range ls {
		if t >= 0 && l.Type != t {
			continue
		}
		out[linkKey(l.From.Source, l.From.Accession, l.To.Source, l.To.Accession)] = true
	}
	return out
}

// CompareLinks scores discovered links of one type against gold links.
func CompareLinks(predicted []metadata.Link, t metadata.LinkType, gold []datagen.GoldLink) PR {
	return CompareSets(PredictedLinkSet(predicted, t), GoldLinkSet(gold))
}

// FKKey canonicalizes a foreign key for comparison.
func FKKey(fk rel.ForeignKey) string {
	return strings.ToLower(fk.FromRelation) + "." + strings.ToLower(fk.FromColumn) +
		">" + strings.ToLower(fk.ToRelation) + "." + strings.ToLower(fk.ToColumn)
}

// CompareFKs scores guessed foreign keys against gold foreign keys.
func CompareFKs(predicted []rel.ForeignKey, gold []rel.ForeignKey) PR {
	p := make(map[string]bool, len(predicted))
	for _, fk := range predicted {
		p[FKKey(fk)] = true
	}
	g := make(map[string]bool, len(gold))
	for _, fk := range gold {
		g[FKKey(fk)] = true
	}
	return CompareSets(p, g)
}

// CostModel quantifies Table 1's "cost of integration" column: the count
// of manual actions needed to integrate one source under each approach.
// Values follow the paper's qualitative analysis (§2, Table 1) made
// countable: every schema element a human must read/map/curate is one
// action.
type CostModel struct {
	// Relations and Attributes describe the source being integrated.
	Relations  int
	Attributes int
	// Tuples is the source size (manual curation scales with data).
	Tuples int
}

// ManualCurationActions models the data-focused approach: a curator
// touches every tuple.
func (c CostModel) ManualCurationActions() int { return c.Tuples }

// SchemaMappingActions models the schema-focused approach: a wrapper per
// source plus a semantic mapping per attribute (TAMBIS/OPM-style).
func (c CostModel) SchemaMappingActions() int { return 1 + c.Attributes }

// ALADINActions models ALADIN: at most one quick-and-dirty parser when no
// downloadable import method exists (§3, "this is the one point where
// ALADIN does require human work").
func (c CostModel) ALADINActions(parserNeeded bool) int {
	if parserNeeded {
		return 1
	}
	return 0
}
