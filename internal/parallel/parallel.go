// Package parallel provides the bounded worker pool used to parallelize
// the per-relation / per-column-pair inner loops of the integration
// pipeline (§3: "there is high potential for parallelization and
// combination of these steps"). Callers keep their output deterministic
// by writing results into indexed slots and reducing in input order.
//
// Every loop is context-aware: when ctx is canceled, workers stop
// picking up new iterations and For returns ctx.Err(), so a canceled
// request aborts a long pipeline run promptly. Panics in worker
// goroutines are recovered and re-raised on the calling goroutine as a
// *WorkerPanic, so one bad record cannot take down a serving process
// that has its own recovery in place.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count option: values <= 0 mean "use all
// available CPUs" (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// WorkerPanic is the value re-panicked on the calling goroutine when a
// worker goroutine panicked: it carries the original panic value and the
// worker's stack trace. Without this translation a goroutine panic would
// kill the whole process no matter what recovery the caller installed.
type WorkerPanic struct {
	Value any
	Stack []byte
}

// Error renders the panic for use as an error value after recover().
func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", p.Value, p.Stack)
}

// For runs fn(i) for every i in [0, n), distributing iterations over at
// most workers goroutines. With workers <= 1 (or n <= 1) it runs inline
// on the calling goroutine, so the zero Options value of every pipeline
// package stays serial. Iterations are handed out atomically one at a
// time, which balances skewed per-item costs (one huge relation next to
// many tiny ones).
//
// For returns ctx.Err() when the context is canceled before every
// iteration ran; iterations already started finish first, and fn is
// never invoked after cancellation is observed. Callers must treat any
// partially filled result slots as garbage when an error is returned.
// If a worker panics, the panic is re-raised on the calling goroutine
// as a *WorkerPanic once all workers have stopped.
func For(ctx context.Context, workers, n int, fn func(i int)) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var (
		next    atomic.Int64
		stop    atomic.Bool
		wg      sync.WaitGroup
		panicMu sync.Mutex
		wp      *WorkerPanic
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if wp == nil {
						wp = &WorkerPanic{Value: r, Stack: debug.Stack()}
					}
					panicMu.Unlock()
					stop.Store(true)
				}
			}()
			for {
				if stop.Load() {
					return
				}
				if ctx.Err() != nil {
					stop.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if wp != nil {
		panic(wp)
	}
	return ctx.Err()
}

// ForChunked is For with iterations handed out in contiguous chunks of
// the given size, amortizing the scheduling atomics when per-item work is
// tiny (e.g. one record-pair similarity). Cancellation is observed at
// chunk granularity.
func ForChunked(ctx context.Context, workers, n, chunk int, fn func(i int)) error {
	if chunk <= 1 {
		return For(ctx, workers, n, fn)
	}
	chunks := (n + chunk - 1) / chunk
	return For(ctx, workers, chunks, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}
