// Package parallel provides the bounded worker pool used to parallelize
// the per-relation / per-column-pair inner loops of the integration
// pipeline (§3: "there is high potential for parallelization and
// combination of these steps"). Callers keep their output deterministic
// by writing results into indexed slots and reducing in input order.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count option: values <= 0 mean "use all
// available CPUs" (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n), distributing iterations over at
// most workers goroutines. With workers <= 1 (or n <= 1) it runs inline
// on the calling goroutine, so the zero Options value of every pipeline
// package stays serial. Iterations are handed out atomically one at a
// time, which balances skewed per-item costs (one huge relation next to
// many tiny ones).
func For(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForChunked is For with iterations handed out in contiguous chunks of
// the given size, amortizing the scheduling atomics when per-item work is
// tiny (e.g. one record-pair similarity).
func ForChunked(workers, n, chunk int, fn func(i int)) {
	if chunk <= 1 {
		For(workers, n, fn)
		return
	}
	chunks := (n + chunk - 1) / chunk
	For(workers, chunks, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}
