package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		for _, n := range []int{0, 1, 7, 1000} {
			hits := make([]int32, n)
			For(workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForSerialRunsInline(t *testing.T) {
	// workers<=1 must not spawn goroutines: iteration order is sequential.
	var order []int
	For(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestForChunkedCoversEveryIndexOnce(t *testing.T) {
	for _, chunk := range []int{1, 3, 64, 1000} {
		n := 257
		hits := make([]int32, n)
		ForChunked(4, n, chunk, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("chunk=%d: index %d hit %d times", chunk, i, h)
			}
		}
	}
}
