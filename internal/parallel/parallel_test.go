package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		for _, n := range []int{0, 1, 7, 1000} {
			hits := make([]int32, n)
			if err := For(context.Background(), workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			}); err != nil {
				t.Fatalf("workers=%d n=%d: unexpected error %v", workers, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForSerialRunsInline(t *testing.T) {
	// workers<=1 must not spawn goroutines: iteration order is sequential.
	var order []int
	if err := For(context.Background(), 1, 5, func(i int) { order = append(order, i) }); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestForChunkedCoversEveryIndexOnce(t *testing.T) {
	for _, chunk := range []int{1, 3, 64, 1000} {
		n := 257
		hits := make([]int32, n)
		if err := ForChunked(context.Background(), 4, n, chunk, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("chunk=%d: index %d hit %d times", chunk, i, h)
			}
		}
	}
}

func TestForCanceledContextReturnsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := For(ctx, workers, 1000, func(i int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d iterations ran on a pre-canceled context", workers, ran.Load())
		}
	}
}

func TestForCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := For(ctx, 4, 100000, func(i int) {
		if ran.Add(1) == 50 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 100000 {
		t.Fatalf("cancellation did not stop the loop: %d iterations ran", n)
	}
}

func TestForWorkerPanicReraisedOnCaller(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a re-raised panic on the calling goroutine")
		}
		wp, ok := r.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T, want *WorkerPanic", r)
		}
		if wp.Value != "boom" {
			t.Fatalf("panic value = %v, want boom", wp.Value)
		}
		if len(wp.Stack) == 0 {
			t.Fatal("worker stack not captured")
		}
	}()
	For(context.Background(), 4, 1000, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

func TestForSerialPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want plain boom (serial path must not wrap)", r)
		}
	}()
	For(context.Background(), 1, 3, func(i int) { panic("boom") })
}
