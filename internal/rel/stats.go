package rel

import (
	"sort"
	"strings"
)

// lowerName is the canonical stats/index key for a column name.
func lowerName(name string) string { return strings.ToLower(name) }

// StatsHistBuckets is the target number of equi-depth histogram buckets
// per column. Small on purpose: the planner only needs coarse range
// selectivity, and the whole Stats block must stay cheap to clone and
// checkpoint.
const StatsHistBuckets = 16

// Stats is the compact per-relation statistics block the cost-based
// planner estimates from: row count, and per-column distinct/null
// counts, min/max, and a small equi-depth histogram. It is computed
// during profiling (or rebuilt by BuildStats after DML), maintained
// incrementally by Append, and shared by ShallowClone snapshots —
// published relations are immutable, so a snapshot's Stats never change
// underneath a reader.
type Stats struct {
	// Rows is the current cardinality, maintained exactly on Append.
	Rows int
	// Built is the cardinality at the time the distinct counts and
	// histograms were computed. When Rows has grown past Built, the
	// planner scales distinct counts by Rows/Built instead of treating
	// them as exact (histogram depths scale the same way implicitly,
	// since selectivities are fractions).
	Built int
	// Cols maps lower-cased column name to its statistics.
	Cols map[string]*ColStats
}

// ColStats summarizes one column.
type ColStats struct {
	// Nulls counts NULL values; maintained exactly on Append.
	Nulls int
	// Distinct counts distinct non-null values as of Built rows.
	Distinct int
	// Min and Max bound the non-null values (KindNull when the column
	// is all-NULL); maintained on Append.
	Min Value
	Max Value
	// Hist holds ascending equi-depth bucket upper bounds over the
	// non-null values as of Built rows; each bucket covers an equal
	// share of rows. Empty when the column had no non-null values.
	Hist []Value
}

// BuildStats computes a fresh Stats block with a full scan of r — the
// fallback used after in-place DML, where incremental maintenance is
// not possible. The profiling pipeline builds the same block without a
// second scan (see profile.RelationStats).
func BuildStats(r *Relation) *Stats {
	st := &Stats{Rows: len(r.Tuples), Built: len(r.Tuples), Cols: make(map[string]*ColStats, r.Schema.Len())}
	for i, col := range r.Schema.Columns {
		cs := &ColStats{Min: Null(), Max: Null()}
		seen := make(map[string]struct{})
		var vals []Value
		for _, t := range r.Tuples {
			v := t[i]
			if v.IsNull() {
				cs.Nulls++
				continue
			}
			if _, ok := seen[v.Key()]; !ok {
				seen[v.Key()] = struct{}{}
			}
			cs.observe(v)
			vals = append(vals, v)
		}
		cs.Distinct = len(seen)
		cs.Hist = EquiDepthHist(vals, StatsHistBuckets)
		st.Cols[lowerName(col.Name)] = cs
	}
	return st
}

// EquiDepthHist sorts vals (in place) and returns ~buckets ascending
// equi-depth upper bounds. Callers pass a full column or a sample; the
// bounds are quantiles either way.
func EquiDepthHist(vals []Value, buckets int) []Value {
	if len(vals) == 0 {
		return nil
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
	if buckets > len(vals) {
		buckets = len(vals)
	}
	out := make([]Value, buckets)
	for b := 0; b < buckets; b++ {
		out[b] = vals[(b+1)*len(vals)/buckets-1]
	}
	return out
}

// observe folds one non-null value into min/max.
func (cs *ColStats) observe(v Value) {
	if cs.Min.IsNull() || v.Compare(cs.Min) < 0 {
		cs.Min = v
	}
	if cs.Max.IsNull() || v.Compare(cs.Max) > 0 {
		cs.Max = v
	}
}

// maintain folds one appended tuple into the stats: exact row, null and
// min/max updates. Distinct counts and histograms are left as of Built;
// the planner scales them by row growth.
func (st *Stats) maintain(r *Relation, t Tuple) {
	st.Rows++
	for i, col := range r.Schema.Columns {
		cs := st.Cols[lowerName(col.Name)]
		if cs == nil {
			cs = &ColStats{Min: Null(), Max: Null()}
			st.Cols[lowerName(col.Name)] = cs
		}
		if t[i].IsNull() {
			cs.Nulls++
			continue
		}
		cs.observe(t[i])
	}
}

// Clone returns a deep copy (histogram slices shared: they are never
// mutated after construction).
func (st *Stats) Clone() *Stats {
	if st == nil {
		return nil
	}
	c := &Stats{Rows: st.Rows, Built: st.Built, Cols: make(map[string]*ColStats, len(st.Cols))}
	for k, cs := range st.Cols {
		cc := *cs
		c.Cols[k] = &cc
	}
	return c
}

// Col returns the named column's stats, or nil.
func (st *Stats) Col(name string) *ColStats {
	if st == nil {
		return nil
	}
	return st.Cols[lowerName(name)]
}

// growth returns the factor by which the relation has grown since the
// distinct counts and histograms were built (>= 1).
func (st *Stats) growth() float64 {
	if st.Built <= 0 || st.Rows <= st.Built {
		return 1
	}
	return float64(st.Rows) / float64(st.Built)
}

// DistinctEst returns the estimated number of distinct non-null values
// in the named column, scaled by row growth since the stats were built.
// Returns 0 when the column (or the stats block) is unknown.
func (st *Stats) DistinctEst(name string) float64 {
	cs := st.Col(name)
	if cs == nil {
		return 0
	}
	d := float64(cs.Distinct) * st.growth()
	if max := float64(st.Rows - cs.Nulls); d > max {
		d = max
	}
	return d
}

// NullFraction returns the fraction of rows where the column is NULL.
func (st *Stats) NullFraction(name string) float64 {
	cs := st.Col(name)
	if cs == nil || st.Rows == 0 {
		return 0
	}
	return float64(cs.Nulls) / float64(st.Rows)
}

// EqSelectivity estimates the fraction of rows where the column equals
// an (unknown) constant: 1/distinct, the uniform-frequency assumption.
// Returns (sel, true) when stats exist for the column, (0, false)
// otherwise.
func (st *Stats) EqSelectivity(name string) (float64, bool) {
	d := st.DistinctEst(name)
	if d <= 0 {
		return 0, false
	}
	sel := (1 - st.NullFraction(name)) / d
	return sel, true
}

// LessFraction estimates the fraction of non-null rows with value < v
// (or <= v when inclusive), from the equi-depth histogram: the share of
// buckets whose upper bound falls below v, plus half a bucket for the
// straddling one. Returns (frac, true) when a histogram exists.
func (st *Stats) LessFraction(name string, v Value, inclusive bool) (float64, bool) {
	cs := st.Col(name)
	if cs == nil || len(cs.Hist) == 0 {
		return 0, false
	}
	below := 0
	for _, bound := range cs.Hist {
		c := bound.Compare(v)
		if c < 0 || (inclusive && c == 0) {
			below++
		}
	}
	frac := float64(below) / float64(len(cs.Hist))
	if below < len(cs.Hist) {
		// The straddling bucket contributes, on average, half its depth.
		frac += 0.5 / float64(len(cs.Hist))
	}
	if frac > 1 {
		frac = 1
	}
	return frac, true
}
