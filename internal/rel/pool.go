package rel

import "sync"

// Streaming ingestion (internal/ingest) parses millions of short rows;
// allocating every Tuple with make() makes the garbage collector the
// bottleneck long before the parser is. A TupleAlloc carves tuples out
// of pooled value slabs instead: one slab allocation amortizes over
// slabValues/arity tuples, and the unused tail of each slab returns to
// a sync.Pool when the allocator is released.
//
// The contract that makes pooling safe with ALADIN's immutable
// published relations is strict: a Tuple carved from a slab is handed
// to its relation exactly once and never recycled — only the *unused*
// tail of a slab is ever returned to the pool. Published tuples keep
// their slab memory alive for as long as the relation lives, which is
// what a non-pooled allocation would do anyway.

// slabValues is the number of Values per pooled slab. At 5 values per
// tuple (a typical flat-file entry row) one slab serves ~800 tuples.
const slabValues = 4096

// minReuseValues is the smallest slab tail worth returning to the
// pool; shorter tails are left to the collector.
const minReuseValues = 256

// slab wraps the value array so the pool stores a pointer (one
// interface allocation per Put would defeat the point).
type slab struct{ vals []Value }

var slabPool = sync.Pool{
	New: func() any { return &slab{vals: make([]Value, slabValues)} },
}

// TupleAlloc carves tuples from pooled value slabs. The zero value is
// ready to use. Not safe for concurrent use; give each scanner its
// own.
type TupleAlloc struct {
	cur *slab
}

// Tuple returns a zeroed (all-NULL) tuple of n values carved from the
// current slab. Tuples wider than a slab fall back to a direct
// allocation.
func (a *TupleAlloc) Tuple(n int) Tuple {
	if n > slabValues {
		return make(Tuple, n)
	}
	if a.cur == nil || len(a.cur.vals) < n {
		a.release()
		// Pooled tails are still zero: carved tuples are capped three-index
		// slices, so no caller can ever write into the tail — handed-out
		// tuples are NULL-clean without re-clearing.
		a.cur = slabPool.Get().(*slab)
	}
	t := Tuple(a.cur.vals[:n:n])
	a.cur.vals = a.cur.vals[n:]
	return t
}

// release returns the current slab's unused tail to the pool when it
// is still big enough to serve future carves.
func (a *TupleAlloc) release() {
	if a.cur != nil && len(a.cur.vals) >= minReuseValues {
		slabPool.Put(a.cur)
	}
	a.cur = nil
}

// Release returns the allocator's unused slab tail to the pool. Tuples
// already carved remain valid forever — only memory never handed out
// is recycled. The allocator is reusable after Release.
func (a *TupleAlloc) Release() { a.release() }

// AppendPooled appends a tuple of uninterpreted text values carved
// from the allocator — AppendRaw semantics (empty string is NULL)
// without the per-row make. Fields beyond the schema arity are
// dropped; missing trailing fields stay NULL.
func (r *Relation) AppendPooled(a *TupleAlloc, fields []string) {
	t := a.Tuple(r.Schema.Len())
	n := min(len(fields), len(t))
	for i := 0; i < n; i++ {
		if f := fields[i]; f != "" {
			t[i] = Str(f)
		}
	}
	r.Append(t)
}
